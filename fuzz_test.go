package deepvalidation

import (
	"math"
	"testing"
)

// pixelsFromBytes decodes fuzz bytes into pixel values, deliberately
// mapping some bytes onto the adversarial values Validate must reject:
// NaN, ±Inf, and out-of-band magnitudes.
func pixelsFromBytes(data []byte) []float64 {
	px := make([]float64, len(data))
	for i, b := range data {
		switch b {
		case 255:
			px[i] = math.NaN()
		case 254:
			px[i] = math.Inf(1)
		case 253:
			px[i] = math.Inf(-1)
		case 252:
			px[i] = 1e300
		default:
			px[i] = float64(b) / 251
		}
	}
	return px
}

// FuzzImageValidate hardens the public input path: for arbitrary
// (Channels, Height, Width, Pixels) combinations — mismatched sizes,
// negative or overflowing dimensions, NaN/Inf pixels — Validate and
// tensorOf must either reject the image or produce a well-formed,
// finite tensor. Neither may panic.
func FuzzImageValidate(f *testing.F) {
	f.Add(1, 8, 8, make([]byte, 64))
	f.Add(3, 2, 2, make([]byte, 12))
	f.Add(1, 2, 2, []byte{255, 0, 0, 0})   // NaN pixel
	f.Add(1, 2, 2, []byte{254, 0, 0, 253}) // ±Inf pixels
	f.Add(-1, 8, 8, make([]byte, 64))      // negative dimension
	f.Add(0, 0, 0, []byte{})               // all-zero dimensions
	f.Add(1, 8, 8, make([]byte, 10))       // count mismatch
	f.Add(1<<31, 1<<31, 4, make([]byte, 16))
	f.Add(math.MaxInt, math.MaxInt, math.MaxInt, []byte{}) // overflow bait
	f.Fuzz(func(t *testing.T, c, h, w int, data []byte) {
		im := Image{Channels: c, Height: h, Width: w, Pixels: pixelsFromBytes(data)}
		err := im.Validate()
		if err == nil {
			if c <= 0 || h <= 0 || w <= 0 {
				t.Fatalf("Validate accepted non-positive dimensions (%d,%d,%d)", c, h, w)
			}
			if c*h*w != len(im.Pixels) || len(im.Pixels)/h/w != c {
				t.Fatalf("Validate accepted inconsistent geometry (%d,%d,%d) with %d pixels", c, h, w, len(im.Pixels))
			}
			for i, p := range im.Pixels {
				if math.IsNaN(p) || math.IsInf(p, 0) {
					t.Fatalf("Validate accepted non-finite pixel %d = %v", i, p)
				}
			}
		}

		x, terr := tensorOf(im)
		if (err == nil) != (terr == nil) {
			t.Fatalf("Validate err=%v but tensorOf err=%v", err, terr)
		}
		if terr != nil {
			return
		}
		if x.Len() != len(im.Pixels) {
			t.Fatalf("tensor has %d values for %d pixels", x.Len(), len(im.Pixels))
		}
		// The tensor must be a copy: mutating it must not touch the image.
		if len(im.Pixels) > 0 {
			orig := im.Pixels[0]
			x.Data[0] = orig + 42
			if im.Pixels[0] != orig {
				t.Fatal("tensorOf aliased the caller's pixel buffer")
			}
		}
	})
}
