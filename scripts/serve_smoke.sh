#!/usr/bin/env bash
# serve_smoke.sh — end-to-end check of the online serving subsystem.
#
# Trains a tiny model, fits a validator, then drives a real dvserve
# process over HTTP: /healthz and /readyz must answer, /v1/check and
# /v1/batch must agree verdict-for-verdict, malformed and wrong-shape
# bodies must be rejected with 400, /v1/reload and SIGHUP must hot-swap
# without dropping the listener, an overloaded instance must shed with
# 429 + Retry-After, and SIGTERM must drain the in-flight request to a
# 200 before the process exits 0. Used by `make smoke` and CI.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d /tmp/dv-serve-smoke-XXXXXX)
pids=()
cleanup() {
    rm -rf "$workdir"
    for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
}
trap cleanup EXIT

echo "== building CLIs"
go build -o "$workdir/dvtrain" ./cmd/dvtrain
go build -o "$workdir/dvvalidate" ./cmd/dvvalidate
go build -o "$workdir/dvserve" ./cmd/dvserve

echo "== training a tiny model + validator"
"$workdir/dvtrain" -dataset digits -train 400 -test 100 -epochs 6 \
    -width 4 -fc 16 -out "$workdir/model.gob" -quiet
"$workdir/dvvalidate" fit -model "$workdir/model.gob" -dataset digits \
    -train 400 -test 100 -max-per-class 40 -max-features 64 \
    -out "$workdir/validator.gob" >/dev/null

# Request bodies: digits images are 1x28x28 = 784 pixels.
zeros() { seq "$1" | sed 's/.*/0/' | paste -sd, -; }
printf '{"channels":1,"height":28,"width":28,"pixels":[%s]}' "$(zeros 784)" >"$workdir/check.json"
img=$(cat "$workdir/check.json")
printf '{"images":[%s,%s,%s]}' "$img" "$img" "$img" >"$workdir/batch.json"
printf '{"channels":1,"height":8,"width":8,"pixels":[%s]}' "$(zeros 64)" >"$workdir/badshape.json"

# start_dvserve LOGFILE ARGS... — starts dvserve on an ephemeral port,
# polls its stderr for the bound address, and sets $addr and $pid.
start_dvserve() {
    local log=$1; shift
    "$workdir/dvserve" -model "$workdir/model.gob" -validator "$workdir/validator.gob" \
        -addr 127.0.0.1:0 "$@" 2>"$log" &
    pid=$!
    pids+=("$pid")
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's|^dvserve: serving .* on http://||p' "$log" | head -n1)
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || { cat "$log"; echo "dvserve exited before serving"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { cat "$log"; echo "never saw the serving address"; exit 1; }
}

post() { # post PATH BODYFILE — sets $code and $body
    code=$(curl -sS -o "$workdir/resp.out" -w '%{http_code}' \
        -H 'Content-Type: application/json' --data-binary @"$2" "http://$addr$1")
    body=$(cat "$workdir/resp.out")
}

echo "== starting dvserve (ephemeral port, metrics enabled)"
start_dvserve "$workdir/serve.stderr" -metrics-addr 127.0.0.1:0 -eps 0.5
main_pid=$pid
maddr=$(sed -n 's|^metrics: serving .* on http://||p' "$workdir/serve.stderr" | head -n1)
[ -n "$maddr" ] || { cat "$workdir/serve.stderr"; echo "no metrics address"; exit 1; }
echo "   serving:  http://$addr"
echo "   metrics:  http://$maddr"

echo "== /healthz and /readyz"
hz=$(curl -sf "http://$addr/healthz")
grep -q ok <<<"$hz" || { echo "healthz not ok: $hz"; exit 1; }
rz=$(curl -sf "http://$addr/readyz")
grep -q ready <<<"$rz" || { echo "readyz not ready: $rz"; exit 1; }

echo "== POST /v1/check"
post /v1/check "$workdir/check.json"
check_body=$body
[ "$code" = 200 ] || { echo "check: want 200, got $code: $check_body"; exit 1; }
grep -q '"label"' <<<"$check_body" || { echo "check body lacks label: $check_body"; exit 1; }
grep -q '"valid"' <<<"$check_body" || { echo "check body lacks valid: $check_body"; exit 1; }

echo "== POST /v1/batch (verdicts must match /v1/check exactly)"
post /v1/batch "$workdir/batch.json"
batch_body=$body
[ "$code" = 200 ] || { echo "batch: want 200, got $code: $batch_body"; exit 1; }
# The same image three times must yield the single-check verdict,
# byte-for-byte, three times.
n=$(grep -o -F "$check_body" <<<"$batch_body" | wc -l)
[ "$n" = 3 ] || { echo "batch verdicts differ from check verdict ($n/3 matched):"; \
    echo " check: $check_body"; echo " batch: $batch_body"; exit 1; }

echo "== malformed and wrong-shape bodies are rejected"
printf 'not json' >"$workdir/garbage.json"
post /v1/check "$workdir/garbage.json"
[ "$code" = 400 ] || { echo "garbage: want 400, got $code"; exit 1; }
post /v1/check "$workdir/badshape.json"
[ "$code" = 400 ] || { echo "badshape: want 400, got $code"; exit 1; }
grep -q 'model expects' <<<"$body" || { echo "badshape error unhelpful: $body"; exit 1; }

echo "== POST /v1/reload and SIGHUP hot-swap"
printf '{}' >"$workdir/empty.json"
post /v1/reload "$workdir/empty.json"
[ "$code" = 200 ] || { echo "reload: want 200, got $code: $body"; exit 1; }
grep -q '"reloaded":true' <<<"$body" || { echo "reload body: $body"; exit 1; }
kill -HUP "$main_pid"
for _ in $(seq 1 50); do
    grep -q 'dvserve: reloaded' "$workdir/serve.stderr" && break
    sleep 0.1
done
grep -q 'dvserve: reloaded' "$workdir/serve.stderr" \
    || { cat "$workdir/serve.stderr"; echo "SIGHUP reload never logged"; exit 1; }
post /v1/check "$workdir/check.json"
[ "$code" = 200 ] || { echo "post-reload check: want 200, got $code"; exit 1; }

echo "== scraping serving metrics"
metrics=$(curl -sf "http://$maddr/metrics")
for want in \
    'dv_serve_requests_total{endpoint="check"}' \
    'dv_serve_requests_total{endpoint="batch"}' \
    'dv_serve_batch_size_bucket' \
    'dv_serve_reload_total 2' \
    'dv_checked_total'; do
    # here-string, not a pipe: with pipefail, `echo | grep -q` can fail
    # on echo's EPIPE when grep exits at an early match
    grep -qF "$want" <<<"$metrics" || { echo "missing metric: $want"; echo "$metrics"; exit 1; }
done

echo "== overload sheds 429 + Retry-After (queue-depth 1, single worker)"
start_dvserve "$workdir/shed.stderr" \
    -queue-depth 1 -max-batch 1 -batch-window 0 -dispatch-workers 1 -workers 1 \
    -request-timeout 10s
# Eight keep-alive flood clients against a one-deep queue and one
# sequential worker: most requests must shed, some must still score.
flood() {
    local urls=()
    for _ in $(seq 1 100); do urls+=("http://$addr/v1/check"); done
    curl -s -o /dev/null -w '%{http_code}\n' -D "$workdir/shed.headers.$1" \
        -H 'Content-Type: application/json' --data-binary @"$workdir/check.json" \
        "${urls[@]}" >"$workdir/shed.codes.$1"
}
flood_pids=()
for i in $(seq 1 7); do flood "$i" & flood_pids+=("$!"); done
flood 8
for p in "${flood_pids[@]}"; do wait "$p"; done
cat "$workdir"/shed.codes.* >"$workdir/shed.codes"
grep -q '^429$' "$workdir/shed.codes" \
    || { echo "overloaded instance never shed 429"; sort "$workdir/shed.codes" | uniq -c; exit 1; }
grep -q '^200$' "$workdir/shed.codes" \
    || { echo "overloaded instance never answered 200"; sort "$workdir/shed.codes" | uniq -c; exit 1; }
grep -qi '^retry-after:' "$workdir"/shed.headers.* \
    || { echo "429 responses lack Retry-After"; exit 1; }
echo "   codes: $(grep -c '^200$' "$workdir/shed.codes" || true)x200, $(grep -c '^429$' "$workdir/shed.codes" || true)x429"

echo "== SIGTERM drains the in-flight request to a 200"
start_dvserve "$workdir/drain.stderr" -max-batch 8 -batch-window 5s -eps 0.5
drain_pid=$pid
# The request parks in the 5s batch window; SIGTERM must cut the window
# short and answer it, not drop it.
curl -sS -o "$workdir/drain.body" -w '%{http_code}' \
    -H 'Content-Type: application/json' --data-binary @"$workdir/check.json" \
    "http://$addr/v1/check" >"$workdir/drain.code" &
curl_pid=$!
sleep 0.5
kill -TERM "$drain_pid"
wait "$curl_pid" || { echo "in-flight request failed during drain"; cat "$workdir/drain.stderr"; exit 1; }
[ "$(cat "$workdir/drain.code")" = 200 ] \
    || { echo "drained request: want 200, got $(cat "$workdir/drain.code")"; exit 1; }
grep -q -F "$check_body" "$workdir/drain.body" \
    || { echo "drained verdict differs: $(cat "$workdir/drain.body")"; exit 1; }
wait "$drain_pid" || { echo "dvserve exited non-zero after SIGTERM"; cat "$workdir/drain.stderr"; exit 1; }
grep -q 'drained cleanly' "$workdir/drain.stderr" \
    || { cat "$workdir/drain.stderr"; echo "no clean-drain log line"; exit 1; }

kill "$main_pid" 2>/dev/null || true
echo "serve smoke: OK"
