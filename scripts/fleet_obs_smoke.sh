#!/usr/bin/env bash
# fleet_obs_smoke.sh — end-to-end check of the fleet observability
# plane across real processes.
#
# Builds a race-instrumented dvserve + dvgateway with tracing on in
# BOTH tiers and the gateway SLO engine running, then drives the
# cross-tier triage loop over HTTP: an injected X-DV-Trace-Id must come
# back from the gateway's /debug/dv/trace/{id} as ONE stitched tree
# holding both the gateway's hop spans and the replica's verdict spans;
# /debug/dv/fleet and /debug/dv/flight must merge the fleet view; a
# kill -9'd replica must degrade the same trace lookup to an explicitly
# marked partial tree (never a 500); and a forced shed burst must raise
# a gateway availability burn-rate breach whose event cross-links a
# trace ID that resolves on the gateway. Used by `make smoke` and CI.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d /tmp/dv-fleet-obs-smoke-XXXXXX)
pids=()
cleanup() {
    rm -rf "$workdir"
    for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
}
trap cleanup EXIT

echo "== building CLIs (dvserve and dvgateway race-instrumented)"
go build -o "$workdir/dvtrain" ./cmd/dvtrain
go build -o "$workdir/dvvalidate" ./cmd/dvvalidate
go build -race -o "$workdir/dvserve" ./cmd/dvserve
go build -race -o "$workdir/dvgateway" ./cmd/dvgateway

echo "== training a tiny model + validator"
"$workdir/dvtrain" -dataset digits -train 400 -test 100 -epochs 6 \
    -width 4 -fc 16 -out "$workdir/model.gob" -quiet
"$workdir/dvvalidate" fit -model "$workdir/model.gob" -dataset digits \
    -train 400 -test 100 -max-per-class 40 -max-features 64 \
    -out "$workdir/validator.gob" >/dev/null

mkdir -p "$workdir/r1" "$workdir/r2"
cp "$workdir/validator.gob" "$workdir/r1/validator.gob"
cp "$workdir/validator.gob" "$workdir/r2/validator.gob"

zeros() { seq "$1" | sed 's/.*/0/' | paste -sd, -; }
printf '{"channels":1,"height":28,"width":28,"pixels":[%s]}' "$(zeros 784)" >"$workdir/check.json"

# start_replica NAME ADDR LOG — one dvserve replica with tracing at 1.0
# so every request that reaches it leaves a replica-side span tree.
start_replica() {
    local name=$1 want=$2 log=$3
    for _ in $(seq 1 30); do
        : >"$log"
        "$workdir/dvserve" -model "$workdir/model.gob" \
            -validator "$workdir/$name/validator.gob" -eps 0.5 \
            -trace-sample 1 -addr "$want" 2>"$log" &
        pid=$!
        addr=""
        for _ in $(seq 1 100); do
            addr=$(sed -n 's|^dvserve: serving .* on http://||p' "$log" | head -n1)
            [ -n "$addr" ] && break
            kill -0 "$pid" 2>/dev/null || break
            sleep 0.1
        done
        if [ -n "$addr" ]; then
            pids+=("$pid")
            return 0
        fi
        wait "$pid" 2>/dev/null || true
        sleep 0.2
    done
    cat "$log"
    echo "replica $name never bound $want"
    exit 1
}

gpost() { # gpost PATH BODYFILE [TRACEID] — sets $code and $body
    local hdr=()
    [ -n "${3:-}" ] && hdr=(-H "X-DV-Trace-Id: $3")
    code=$(curl -sS -o "$workdir/resp.out" -w '%{http_code}' \
        -H 'Content-Type: application/json' "${hdr[@]}" \
        --data-binary @"$2" "http://$gw_addr$1")
    body=$(cat "$workdir/resp.out")
}

gget() { # gget PATH — sets $code and $body
    code=$(curl -sS -o "$workdir/resp.out" -w '%{http_code}' "http://$gw_addr$1")
    body=$(cat "$workdir/resp.out")
}

# wait_for DESC PREDICATE... — polls PREDICATE until true (10s cap).
wait_for() {
    local desc=$1; shift
    for _ in $(seq 1 100); do
        "$@" && return 0
        sleep 0.1
    done
    echo "timeout waiting for: $desc"
    curl -sf "http://$gw_addr/admin/replicas" || true
    echo
    exit 1
}

in_rotation_is() { curl -sf "http://$gw_addr/admin/replicas" | grep -q "\"in_rotation\":$1,"; }
breach_raised() {
    curl -sf "http://$gw_addr/debug/dv/events?type=slo_breach&level=error" \
        | grep -q '"slo":"availability"'
}

echo "== starting 2 traced dvserve replicas + dvgateway (tracing + SLO on)"
start_replica r1 127.0.0.1:0 "$workdir/r1.stderr"
r1_pid=$pid r1_addr=$addr
start_replica r2 127.0.0.1:0 "$workdir/r2.stderr"
r2_pid=$pid r2_addr=$addr
"$workdir/dvgateway" -addr 127.0.0.1:0 \
    -replica "r1@$r1_addr" -replica "r2@$r2_addr" \
    -probe-interval 100ms -drain-after 2 -reinstate-after 2 \
    -reprobe-backoff 100ms -reprobe-backoff-cap 500ms \
    -trace-sample 1 -slo -slo-interval 100ms \
    2>"$workdir/gw.stderr" &
gw_pid=$!
pids+=("$gw_pid")
gw_addr=""
for _ in $(seq 1 100); do
    gw_addr=$(sed -n 's|^dvgateway: serving .* on http://||p' "$workdir/gw.stderr" | head -n1)
    [ -n "$gw_addr" ] && break
    kill -0 "$gw_pid" 2>/dev/null || { cat "$workdir/gw.stderr"; echo "dvgateway exited before serving"; exit 1; }
    sleep 0.1
done
[ -n "$gw_addr" ] || { cat "$workdir/gw.stderr"; echo "never saw the gateway address"; exit 1; }
echo "   r1:      http://$r1_addr"
echo "   r2:      http://$r2_addr"
echo "   gateway: http://$gw_addr"
wait_for "2 replicas in rotation" in_rotation_is 2

echo "== injected trace ID stitches into one two-tier tree"
gpost /v1/check "$workdir/check.json" smoke-stitch-1
[ "$code" = 200 ] || { echo "traced check: want 200, got $code: $body"; exit 1; }
gget /debug/dv/trace/smoke-stitch-1
[ "$code" = 200 ] || { echo "stitched trace: want 200, got $code: $body"; exit 1; }
grep -q '"partial":false' <<<"$body" || { echo "healthy stitch marked partial: $body"; exit 1; }
# Gateway tier spans...
grep -q '"name":"route"' <<<"$body" || { echo "stitched tree lacks the gateway route span: $body"; exit 1; }
grep -q '"name":"upstream"' <<<"$body" || { echo "stitched tree lacks the gateway upstream span: $body"; exit 1; }
# ...and the replica tier's verdict tree, grafted and marked.
grep -q '"name":"verdict"' <<<"$body" || { echo "stitched tree lacks the replica verdict span: $body"; exit 1; }
grep -q '"tier":"replica"' <<<"$body" || { echo "grafted replica root not tier-marked: $body"; exit 1; }
serving_replica=$(grep -o '"tier":"replica","replica":"r[12]"' <<<"$body" | head -n1 | grep -o 'r[12]')
[ -n "$serving_replica" ] || serving_replica=$(grep -o '"replica":"r[12]"' <<<"$body" | head -n1 | grep -o 'r[12]')
echo "   two-tier tree OK (served by $serving_replica)"

echo "== fleet + flight aggregation over the healthy fleet"
gget /debug/dv/fleet
[ "$code" = 200 ] || { echo "fleet view: want 200, got $code"; exit 1; }
grep -q '"partial":false' <<<"$body" || { echo "healthy fleet marked partial: $body"; exit 1; }
[ "$(grep -o '"fetch":"ok"' <<<"$body" | wc -l)" = 2 ] || { echo "fleet view lacks 2 ok rows: $body"; exit 1; }
grep -q '"gateway_slo":{"enabled":true' <<<"$body" || { echo "fleet view lacks gateway SLO: $body"; exit 1; }
gget '/debug/dv/flight?limit=5'
[ "$code" = 200 ] || { echo "fleet flight: want 200, got $code"; exit 1; }
grep -q '"replica":"r' <<<"$body" || { echo "merged flight entries lack replica annotations: $body"; exit 1; }

echo "== kill -9 the serving replica: same lookup degrades to a marked partial tree"
if [ "$serving_replica" = r1 ]; then victim=$r1_pid; else victim=$r2_pid; fi
kill -9 "$victim"
wait "$victim" 2>/dev/null || true
gget /debug/dv/trace/smoke-stitch-1
[ "$code" = 200 ] || { echo "degraded stitch: want 200, got $code: $body"; exit 1; }
grep -q '"partial":true' <<<"$body" || { echo "degraded stitch not marked partial: $body"; exit 1; }
grep -q '"state":"unreachable"' <<<"$body" || { echo "replica tier not marked unreachable: $body"; exit 1; }
grep -q '"name":"route"' <<<"$body" || { echo "partial tree lost the gateway spans: $body"; exit 1; }
gget /debug/dv/fleet
grep -q '"partial":true' <<<"$body" || { echo "fleet view not partial with a replica down: $body"; exit 1; }
grep -q '"fetch":"unreachable"' <<<"$body" || { echo "fleet view lacks the unreachable row: $body"; exit 1; }
echo "   partial tree + fleet row marked unreachable; no 500s"

echo "== kill the whole fleet: shed burst must breach availability with cross-linked traces"
for p in "$r1_pid" "$r2_pid"; do
    kill -9 "$p" 2>/dev/null || true
    wait "$p" 2>/dev/null || true
done
# Route-path failures + probes drain both replicas, then every traced
# request sheds 503 (unroutable) and lands in the SLO cross-link ring.
for i in $(seq 1 20); do
    gpost /v1/check "$workdir/check.json" "shed-$i" || true
done
wait_for "0 replicas in rotation" in_rotation_is 0
for i in $(seq 1 5); do
    gpost /v1/check "$workdir/check.json" "breach-$i"
    [ "$code" = 503 ] || { echo "drained-fleet check breach-$i: want 503, got $code"; exit 1; }
done
wait_for "availability burn-rate breach event" breach_raised
gget '/debug/dv/events?type=slo_breach&level=error'
linked=$(grep -o '"trace_ids":\["[^"]*"' <<<"$body" | head -n1 | cut -d'"' -f4)
[ -n "$linked" ] || { echo "breach event cross-links no trace IDs: $body"; exit 1; }
gget "/debug/dv/trace/$linked"
[ "$code" = 200 ] || { echo "cross-linked trace $linked: want 200, got $code: $body"; exit 1; }
grep -q "\"id\":\"$linked\"" <<<"$body" || { echo "cross-linked trace body mismatch: $body"; exit 1; }
gget /readyz
grep -q 'slo: BREACH' <<<"$body" || { echo "readyz lacks the breach line: $body"; exit 1; }
gget /debug/dv/slo
grep -q '"breaching":true' <<<"$body" || { echo "/debug/dv/slo not breaching: $body"; exit 1; }
echo "   breach event → $linked resolved on the gateway trace store"

echo "== SIGTERM drains the gateway cleanly"
kill -TERM "$gw_pid"
wait "$gw_pid" || { echo "dvgateway exited non-zero after SIGTERM"; cat "$workdir/gw.stderr"; exit 1; }
grep -q 'drained cleanly' "$workdir/gw.stderr" \
    || { cat "$workdir/gw.stderr"; echo "no clean-drain log line"; exit 1; }

echo "fleet obs smoke: OK"
