#!/usr/bin/env bash
# trace_smoke.sh — end-to-end check of the per-verdict observability
# path against a real dvserve process.
#
# Trains a tiny model, fits a validator (with the drift reference), and
# proves the full triage loop over HTTP: an injected X-DV-Trace-Id must
# be echoed and its span tree (admission → batch_wait → dispatch →
# score → forward + per-layer SVM spans) readable on
# /debug/dv/trace/{id}; explain=1 must surface per-layer discrepancies
# in the verdict; the flight recorder must hold the traced verdict and
# answer the ?valid=false triage query; the dv_drift_* gauges must warm
# up and export on /metrics with the drift line on /readyz; and a
# validator fitted with -drift=false must degrade the whole drift watch
# to "disabled" without affecting serving. dvserve is built with -race
# so the smoke doubles as a race check on the real serving binary.
# Used by `make smoke` and CI.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d /tmp/dv-trace-smoke-XXXXXX)
pids=()
cleanup() {
    rm -rf "$workdir"
    for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
}
trap cleanup EXIT

echo "== building CLIs (dvserve with -race)"
go build -o "$workdir/dvtrain" ./cmd/dvtrain
go build -o "$workdir/dvvalidate" ./cmd/dvvalidate
go build -race -o "$workdir/dvserve" ./cmd/dvserve

echo "== training a tiny model + validator (drift reference persisted)"
"$workdir/dvtrain" -dataset digits -train 400 -test 100 -epochs 6 \
    -width 4 -fc 16 -out "$workdir/model.gob" -quiet
"$workdir/dvvalidate" fit -model "$workdir/model.gob" -dataset digits \
    -train 400 -test 100 -max-per-class 40 -max-features 64 \
    -out "$workdir/validator.gob" >"$workdir/fit.out"
grep -q 'drift reference: persisted' "$workdir/fit.out" \
    || { cat "$workdir/fit.out"; echo "fit did not persist the drift reference"; exit 1; }

# Request bodies: digits images are 1x28x28 = 784 pixels.
zeros() { seq "$1" | sed 's/.*/0/' | paste -sd, -; }
img=$(printf '{"channels":1,"height":28,"width":28,"pixels":[%s]}' "$(zeros 784)")
printf '%s' "$img" >"$workdir/check.json"
# 16-image batch, posted thrice below: 48 accepted verdicts clears the
# drift watch's warm-up floor (32) with margin.
batch=$img
for _ in $(seq 2 16); do batch="$batch,$img"; done
printf '{"images":[%s]}' "$batch" >"$workdir/batch.json"

# start_dvserve LOGFILE ARGS... — starts dvserve on an ephemeral port,
# polls its stderr for the bound address, and sets $addr and $pid.
start_dvserve() {
    local log=$1; shift
    "$workdir/dvserve" -model "$workdir/model.gob" -validator "$workdir/validator.gob" \
        -addr 127.0.0.1:0 "$@" 2>"$log" &
    pid=$!
    pids+=("$pid")
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's|^dvserve: serving .* on http://||p' "$log" | head -n1)
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || { cat "$log"; echo "dvserve exited before serving"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { cat "$log"; echo "never saw the serving address"; exit 1; }
}

post() { # post PATH BODYFILE [CURL_ARGS...] — sets $code and $body
    local path=$1 bodyfile=$2; shift 2
    code=$(curl -sS -o "$workdir/resp.out" -w '%{http_code}' "$@" \
        -H 'Content-Type: application/json' --data-binary @"$bodyfile" "http://$addr$path")
    body=$(cat "$workdir/resp.out")
}

echo "== starting dvserve (trace-sample 1, metrics on, generous eps so verdicts are accepted)"
start_dvserve "$workdir/serve.stderr" -trace-sample 1 -metrics-addr 127.0.0.1:0 -eps 1000
main_pid=$pid
maddr=$(sed -n 's|^metrics: serving .* on http://||p' "$workdir/serve.stderr" | head -n1)
[ -n "$maddr" ] || { cat "$workdir/serve.stderr"; echo "no metrics address"; exit 1; }
grep -q 'drift on' "$workdir/serve.stderr" \
    || { cat "$workdir/serve.stderr"; echo "banner does not report the drift watch on"; exit 1; }
echo "   serving:  http://$addr"
echo "   metrics:  http://$maddr"

echo "== traced /v1/check: injected X-DV-Trace-Id is echoed"
post /v1/check "$workdir/check.json" -H 'X-DV-Trace-Id: smoke-trace-1' -D "$workdir/check.headers"
[ "$code" = 200 ] || { echo "traced check: want 200, got $code: $body"; exit 1; }
grep -qi '^x-dv-trace-id: smoke-trace-1' "$workdir/check.headers" \
    || { cat "$workdir/check.headers"; echo "trace id not echoed"; exit 1; }

echo "== GET /debug/dv/trace/smoke-trace-1: full span tree"
tr_json=$(curl -sf "http://$addr/debug/dv/trace/smoke-trace-1")
for want in '"id":"smoke-trace-1"' '"endpoint":"check"' '"name":"verdict"' \
    '"name":"admission"' '"name":"batch_wait"' '"name":"dispatch"' \
    '"name":"score"' '"name":"forward"' '"name":"svm_layer_' '"d":'; do
    grep -qF "$want" <<<"$tr_json" || { echo "trace missing $want:"; echo "$tr_json"; exit 1; }
done

echo "== explain=1 surfaces per-layer discrepancies in the verdict"
post '/v1/check?explain=1' "$workdir/check.json"
[ "$code" = 200 ] || { echo "explain check: want 200, got $code: $body"; exit 1; }
grep -qF '"per_layer"' <<<"$body" || { echo "explain verdict lacks per_layer: $body"; exit 1; }
post /v1/check "$workdir/check.json"
grep -qF '"per_layer"' <<<"$body" && { echo "per_layer leaked without explain: $body"; exit 1; }

echo "== flight recorder holds the traced verdict with per-layer d_i"
fl_json=$(curl -sf "http://$addr/debug/dv/flight")
for want in '"trace_id":"smoke-trace-1"' '"per_layer"' '"outcome":"ok"' '"endpoint":"check"'; do
    grep -qF "$want" <<<"$fl_json" || { echo "flight missing $want:"; echo "$fl_json"; exit 1; }
done

echo "== warming the drift window (3 x 16-image batches, all accepted)"
for _ in 1 2 3; do
    post /v1/batch "$workdir/batch.json"
    [ "$code" = 200 ] || { echo "warming batch: want 200, got $code: $body"; exit 1; }
done

echo "== dv_drift_* gauges on /metrics"
metrics=$(curl -sf "http://$maddr/metrics")
for want in 'dv_drift_score{layer="' 'dv_drift_alarm' 'dv_drift_window_fill'; do
    grep -qF "$want" <<<"$metrics" || { echo "missing metric: $want"; echo "$metrics" | grep dv_drift; exit 1; }
done
fill=$(sed -n 's/^dv_drift_window_fill //p' <<<"$metrics")
awk -v f="$fill" 'BEGIN { exit !(f >= 32) }' \
    || { echo "drift window never warmed: fill=$fill"; exit 1; }

echo "== /readyz carries the drift line, /debug/dv/drift reports warmed"
rz=$(curl -sf "http://$addr/readyz")
sed -n 1p <<<"$rz" | grep -q ready || { echo "readyz line 1 not ready: $rz"; exit 1; }
grep -q '^drift: \(ok\|ALARM\)' <<<"$rz" || { echo "readyz lacks a warmed drift line: $rz"; exit 1; }
dr=$(curl -sf "http://$addr/debug/dv/drift")
grep -qF '"enabled":true' <<<"$dr" || { echo "drift status not enabled: $dr"; exit 1; }
grep -qF '"scores"' <<<"$dr" || { echo "drift status lacks scores after warm-up: $dr"; exit 1; }

echo "== triage query: /debug/dv/flight?valid=false returns rejected verdicts"
# A second instance with a tiny eps rejects everything it scores.
start_dvserve "$workdir/reject.stderr" -trace-sample 1 -eps 0.000001
post /v1/check "$workdir/check.json" -H 'X-DV-Trace-Id: smoke-reject-1'
[ "$code" = 200 ] || { echo "reject check: want 200, got $code: $body"; exit 1; }
grep -qF '"valid":false' <<<"$body" || { echo "tiny-eps verdict unexpectedly valid: $body"; exit 1; }
fl_json=$(curl -sf "http://$addr/debug/dv/flight?valid=false")
for want in '"trace_id":"smoke-reject-1"' '"valid":false' '"per_layer"'; do
    grep -qF "$want" <<<"$fl_json" || { echo "triage query missing $want:"; echo "$fl_json"; exit 1; }
done
fl_json=$(curl -sf "http://$addr/debug/dv/flight?valid=true")
grep -qF '"count":0' <<<"$fl_json" || { echo "valid=true filter leaked rejected entries: $fl_json"; exit 1; }

echo "== legacy leg: validator without a drift reference degrades cleanly"
"$workdir/dvvalidate" fit -model "$workdir/model.gob" -dataset digits \
    -train 400 -test 100 -max-per-class 40 -max-features 64 -drift=false \
    -out "$workdir/validator-nodrift.gob" >"$workdir/fit2.out"
grep -q 'drift reference: none' "$workdir/fit2.out" \
    || { cat "$workdir/fit2.out"; echo "-drift=false still persisted a reference"; exit 1; }
"$workdir/dvserve" -model "$workdir/model.gob" -validator "$workdir/validator-nodrift.gob" \
    -addr 127.0.0.1:0 -trace-sample 1 2>"$workdir/legacy.stderr" &
pid=$!
pids+=("$pid")
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's|^dvserve: serving .* on http://||p' "$workdir/legacy.stderr" | head -n1)
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { cat "$workdir/legacy.stderr"; echo "legacy dvserve never served"; exit 1; }
grep -q 'drift off' "$workdir/legacy.stderr" \
    || { cat "$workdir/legacy.stderr"; echo "banner does not report the drift watch off"; exit 1; }
post /v1/check "$workdir/check.json"
[ "$code" = 200 ] || { echo "legacy check: want 200, got $code: $body"; exit 1; }
rz=$(curl -sf "http://$addr/readyz")
grep -q '^drift: disabled' <<<"$rz" || { echo "readyz lacks the disabled drift line: $rz"; exit 1; }
dr=$(curl -sf "http://$addr/debug/dv/drift")
grep -qF '"enabled":false' <<<"$dr" || { echo "legacy drift status not disabled: $dr"; exit 1; }

echo "== race check: no data races logged by the -race dvserve binaries"
if grep -q 'WARNING: DATA RACE' "$workdir"/*.stderr; then
    grep -A40 'WARNING: DATA RACE' "$workdir"/*.stderr
    exit 1
fi

echo "trace smoke: OK"
