#!/usr/bin/env bash
# gateway_smoke.sh — end-to-end check of the fleet gateway subsystem.
#
# Builds a race-instrumented dvserve + dvgateway, trains a tiny model
# with two distinct validators, and drives a real 2-replica fleet over
# HTTP: rendezvous routing must answer 200s across distinct keys, a
# kill -9'd replica must drain out of rotation with zero client 5xx
# once the drain settles, the restarted replica must reinstate, a
# corrupt staged artifact must be refused before any replica is
# touched, a rollout whose reload fails on replica 2 must halt and
# automatically roll replica 1 back to the prior artifact (on disk and
# in the fleet view), and the healed fleet must converge a retried
# rollout on the staged checksum. Used by `make smoke` and CI.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d /tmp/dv-gateway-smoke-XXXXXX)
pids=()
cleanup() {
    rm -rf "$workdir"
    for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
}
trap cleanup EXIT

echo "== building CLIs (dvserve and dvgateway race-instrumented)"
go build -o "$workdir/dvtrain" ./cmd/dvtrain
go build -o "$workdir/dvvalidate" ./cmd/dvvalidate
go build -race -o "$workdir/dvserve" ./cmd/dvserve
go build -race -o "$workdir/dvgateway" ./cmd/dvgateway

echo "== training a tiny model + two distinct validators"
"$workdir/dvtrain" -dataset digits -train 400 -test 100 -epochs 6 \
    -width 4 -fc 16 -out "$workdir/model.gob" -quiet
"$workdir/dvvalidate" fit -model "$workdir/model.gob" -dataset digits \
    -train 400 -test 100 -max-per-class 40 -max-features 64 \
    -out "$workdir/validator-v1.gob" >/dev/null
# A different SVM sample budget yields a payload-distinct (but
# compatible) validator — the staged rollout target.
"$workdir/dvvalidate" fit -model "$workdir/model.gob" -dataset digits \
    -train 400 -test 100 -max-per-class 24 -max-features 64 \
    -out "$workdir/validator-v2.gob" >/dev/null
cmp -s "$workdir/validator-v1.gob" "$workdir/validator-v2.gob" \
    && { echo "v1 and v2 validators are byte-identical; rollout would be a no-op"; exit 1; }

mkdir -p "$workdir/r1" "$workdir/r2"
cp "$workdir/validator-v1.gob" "$workdir/r1/validator.gob"
cp "$workdir/validator-v1.gob" "$workdir/r2/validator.gob"

# Request body: digits images are 1x28x28 = 784 pixels.
zeros() { seq "$1" | sed 's/.*/0/' | paste -sd, -; }
printf '{"channels":1,"height":28,"width":28,"pixels":[%s]}' "$(zeros 784)" >"$workdir/check.json"

# start_replica NAME ADDR LOG [FAULTSPEC] — starts a dvserve replica
# serving NAME's validator copy on ADDR (127.0.0.1:0 for ephemeral),
# polls its stderr for the bound address, and sets $addr and $pid. A
# fixed ADDR retries the bind: a kill -9'd listener's port can linger.
start_replica() {
    local name=$1 want=$2 log=$3 fault=${4:-}
    for _ in $(seq 1 30); do
        : >"$log"
        DV_FAULT="$fault" "$workdir/dvserve" -model "$workdir/model.gob" \
            -validator "$workdir/$name/validator.gob" -eps 0.5 \
            -addr "$want" 2>"$log" &
        pid=$!
        addr=""
        for _ in $(seq 1 100); do
            addr=$(sed -n 's|^dvserve: serving .* on http://||p' "$log" | head -n1)
            [ -n "$addr" ] && break
            kill -0 "$pid" 2>/dev/null || break
            sleep 0.1
        done
        if [ -n "$addr" ]; then
            pids+=("$pid")
            return 0
        fi
        wait "$pid" 2>/dev/null || true
        sleep 0.2
    done
    cat "$log"
    echo "replica $name never bound $want"
    exit 1
}

gpost() { # gpost PATH BODYFILE [TRACEID] — sets $code and $body
    local hdr=()
    [ -n "${3:-}" ] && hdr=(-H "X-DV-Trace-Id: $3")
    code=$(curl -sS -o "$workdir/resp.out" -w '%{http_code}' \
        -H 'Content-Type: application/json' "${hdr[@]}" \
        --data-binary @"$2" "http://$gw_addr$1")
    body=$(cat "$workdir/resp.out")
}

replicas_json() { curl -sf "http://$gw_addr/admin/replicas"; }

# wait_for DESC PREDICATE... — polls PREDICATE until true (10s cap).
wait_for() {
    local desc=$1; shift
    for _ in $(seq 1 100); do
        "$@" && return 0
        sleep 0.1
    done
    echo "timeout waiting for: $desc"
    replicas_json || true
    echo
    exit 1
}

in_rotation_is() { grep -q "\"in_rotation\":$1," <<<"$(replicas_json)"; }
has_state() { grep -q "\"state\":\"$1\"" <<<"$(replicas_json)"; }
sha_count_is() { # sha_count_is SHA N — N replicas report validator SHA
    local n
    n=$(grep -o "\"validator_sha256\":\"$1\"" <<<"$(replicas_json)" | wc -l)
    [ "$n" = "$2" ]
}

echo "== starting 2 dvserve replicas + dvgateway"
start_replica r1 127.0.0.1:0 "$workdir/r1.stderr"
r1_pid=$pid r1_addr=$addr
start_replica r2 127.0.0.1:0 "$workdir/r2.stderr"
r2_pid=$pid r2_addr=$addr
"$workdir/dvgateway" -addr 127.0.0.1:0 \
    -replica "r1@$r1_addr=$workdir/r1/validator.gob" \
    -replica "r2@$r2_addr=$workdir/r2/validator.gob" \
    -probe-interval 100ms -drain-after 2 -reinstate-after 2 \
    -reprobe-backoff 100ms -reprobe-backoff-cap 500ms \
    2>"$workdir/gw.stderr" &
gw_pid=$!
pids+=("$gw_pid")
gw_addr=""
for _ in $(seq 1 100); do
    gw_addr=$(sed -n 's|^dvgateway: serving .* on http://||p' "$workdir/gw.stderr" | head -n1)
    [ -n "$gw_addr" ] && break
    kill -0 "$gw_pid" 2>/dev/null || { cat "$workdir/gw.stderr"; echo "dvgateway exited before serving"; exit 1; }
    sleep 0.1
done
[ -n "$gw_addr" ] || { cat "$workdir/gw.stderr"; echo "never saw the gateway address"; exit 1; }
echo "   r1:      http://$r1_addr"
echo "   r2:      http://$r2_addr"
echo "   gateway: http://$gw_addr"

echo "== routing across the healthy fleet"
wait_for "2 replicas in rotation" in_rotation_is 2
for i in $(seq 1 8); do
    gpost /v1/check "$workdir/check.json" "trace-$i"
    [ "$code" = 200 ] || { echo "routed check trace-$i: want 200, got $code: $body"; exit 1; }
done
grep -q '"label"' <<<"$body" || { echo "check body lacks label: $body"; exit 1; }
v1_sha=$(grep -o '"validator_sha256":"[0-9a-f]*"' <<<"$(replicas_json)" | head -n1 | cut -d'"' -f4)
[ -n "$v1_sha" ] || { echo "fleet view lacks validator checksums"; replicas_json; exit 1; }
sha_count_is "$v1_sha" 2 || { echo "replicas disagree on the v1 checksum"; replicas_json; exit 1; }
echo "   fleet on validator $(cut -c1-12 <<<"$v1_sha")…"

echo "== kill -9 one replica: it must drain, clients must see zero 5xx"
kill -9 "$r2_pid"
wait "$r2_pid" 2>/dev/null || true
# Route-path failures plus probes feed the health machine; the victim's
# failure streak drains it out of rotation within a couple of probes.
for i in $(seq 1 20); do
    gpost /v1/check "$workdir/check.json" "kill-$i" || true
done
wait_for "victim replica drained" has_state drained
wait_for "1 replica in rotation" in_rotation_is 1
# Settled: every request must answer 200 — the drained replica takes
# no traffic, so not a single client-visible 5xx is acceptable.
for i in $(seq 1 20); do
    gpost /v1/check "$workdir/check.json" "settled-$i"
    [ "$code" = 200 ] || { echo "post-drain check settled-$i: want 200, got $code: $body"; exit 1; }
done
echo "   drained; 20/20 settled requests answered 200"

echo "== restart the replica: the success streak reinstates it"
start_replica r2 "$r2_addr" "$workdir/r2-back.stderr"
r2_pid=$pid
wait_for "2 replicas in rotation" in_rotation_is 2
gpost /v1/check "$workdir/check.json" reinstated
[ "$code" = 200 ] || { echo "post-reinstate check: want 200, got $code"; exit 1; }

echo "== corrupt staged artifact is refused before touching any replica"
cp "$workdir/validator-v2.gob" "$workdir/corrupt.gob"
printf 'XX' | dd of="$workdir/corrupt.gob" bs=1 seek=200 conv=notrunc 2>/dev/null
printf '{"artifact":"%s"}' "$workdir/corrupt.gob" >"$workdir/rollout-corrupt.json"
gpost /admin/rollout "$workdir/rollout-corrupt.json"
[ "$code" = 400 ] || { echo "corrupt rollout: want 400, got $code: $body"; exit 1; }
sha_count_is "$v1_sha" 2 || { echo "refused rollout changed the fleet view"; replicas_json; exit 1; }
cmp -s "$workdir/r1/validator.gob" "$workdir/validator-v1.gob" \
    || { echo "refused rollout touched r1's disk artifact"; exit 1; }

echo "== rollout halts on a reload-failing replica and rolls back"
# Re-arm replica 2 with an always-failing reload point: the staged
# switch succeeds on r1, exhausts every reload retry on r2, halts, and
# must roll r1 back to the prior artifact automatically.
kill -9 "$r2_pid"
wait "$r2_pid" 2>/dev/null || true
start_replica r2 "$r2_addr" "$workdir/r2-fault.stderr" serve.reload
r2_pid=$pid
wait_for "2 replicas in rotation" in_rotation_is 2
printf '{"artifact":"%s"}' "$workdir/validator-v2.gob" >"$workdir/rollout.json"
gpost /admin/rollout "$workdir/rollout.json"
[ "$code" = 500 ] || { echo "halted rollout: want 500, got $code: $body"; exit 1; }
grep -q 'rolled back' <<<"$body" || { echo "halted rollout not rolled back: $body"; exit 1; }
grep -q '"rolled_back":true' <<<"$body" || { echo "no replica reports rolled_back: $body"; exit 1; }
cmp -s "$workdir/r1/validator.gob" "$workdir/validator-v1.gob" \
    || { echo "r1 disk artifact not restored after rollback"; exit 1; }
cmp -s "$workdir/r2/validator.gob" "$workdir/validator-v1.gob" \
    || { echo "r2 disk artifact not restored after rollback"; exit 1; }
wait_for "fleet view back on v1" sha_count_is "$v1_sha" 2
echo "   halted on r2, rolled r1 back; every replica on the prior SHA"

echo "== healed fleet converges the retried rollout"
kill -9 "$r2_pid"
wait "$r2_pid" 2>/dev/null || true
start_replica r2 "$r2_addr" "$workdir/r2-heal.stderr"
r2_pid=$pid
wait_for "2 replicas in rotation" in_rotation_is 2
gpost /admin/rollout "$workdir/rollout.json"
[ "$code" = 200 ] || { echo "retried rollout: want 200, got $code: $body"; exit 1; }
grep -q '"completed":true' <<<"$body" || { echo "retried rollout incomplete: $body"; exit 1; }
target_sha=$(grep -o '"target_sha256":"[0-9a-f]*"' <<<"$body" | head -n1 | cut -d'"' -f4)
[ -n "$target_sha" ] && [ "$target_sha" != "$v1_sha" ] \
    || { echo "rollout target checksum missing or unchanged: $body"; exit 1; }
wait_for "fleet view converged on the target" sha_count_is "$target_sha" 2
cmp -s "$workdir/r1/validator.gob" "$workdir/validator-v2.gob" \
    || { echo "r1 disk artifact is not the staged v2"; exit 1; }
cmp -s "$workdir/r2/validator.gob" "$workdir/validator-v2.gob" \
    || { echo "r2 disk artifact is not the staged v2"; exit 1; }
gpost /v1/check "$workdir/check.json" converged
[ "$code" = 200 ] || { echo "post-rollout check: want 200, got $code"; exit 1; }
echo "   converged on $(cut -c1-12 <<<"$target_sha")…"

echo "== SIGTERM drains the gateway cleanly"
kill -TERM "$gw_pid"
wait "$gw_pid" || { echo "dvgateway exited non-zero after SIGTERM"; cat "$workdir/gw.stderr"; exit 1; }
grep -q 'drained cleanly' "$workdir/gw.stderr" \
    || { cat "$workdir/gw.stderr"; echo "no clean-drain log line"; exit 1; }

echo "gateway smoke: OK"
