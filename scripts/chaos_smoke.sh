#!/usr/bin/env bash
# chaos_smoke.sh — end-to-end check of the fault-tolerant artifact
# layer against real binaries.
#
# Trains a model, fits a validator, then proves the failure model the
# repository promises: saved artifacts are checksummed containers; a
# crash injected between temp-file write and rename (DV_FAULT) fails
# the save loudly and leaves the previous artifact byte-identical; a
# corrupted validator makes every reload fail with 500 while the old
# detector keeps answering the exact same verdict; enough consecutive
# reload failures flip /readyz to degraded; restoring the artifact
# heals the instance. Used by `make smoke` and CI.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d /tmp/dv-chaos-smoke-XXXXXX)
pids=()
cleanup() {
    rm -rf "$workdir"
    for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
}
trap cleanup EXIT

echo "== building CLIs"
go build -o "$workdir/dvtrain" ./cmd/dvtrain
go build -o "$workdir/dvvalidate" ./cmd/dvvalidate
go build -o "$workdir/dvserve" ./cmd/dvserve

echo "== training a tiny model + validator"
"$workdir/dvtrain" -dataset digits -train 400 -test 100 -epochs 6 \
    -width 4 -fc 16 -out "$workdir/model.gob" -quiet
"$workdir/dvvalidate" fit -model "$workdir/model.gob" -dataset digits \
    -train 400 -test 100 -max-per-class 40 -max-features 64 \
    -out "$workdir/validator.gob" >/dev/null

echo "== saved artifacts are checksummed containers"
for f in model.gob validator.gob; do
    magic=$(head -c 8 "$workdir/$f")
    [ "$magic" = "DVARTFC1" ] || { echo "$f lacks the container magic (got '$magic')"; exit 1; }
done

echo "== a crash between write and rename leaves the old artifact intact"
cp "$workdir/validator.gob" "$workdir/validator.backup"
if DV_FAULT=artifact.rename "$workdir/dvvalidate" fit -model "$workdir/model.gob" \
    -dataset digits -train 400 -test 100 -max-per-class 40 -max-features 64 \
    -out "$workdir/validator.gob" >/dev/null 2>"$workdir/crash.stderr"; then
    echo "fit with the rename fault armed exited 0"; exit 1
fi
grep -q 'injected fault' "$workdir/crash.stderr" \
    || { cat "$workdir/crash.stderr"; echo "crash-leg error does not mention the injected fault"; exit 1; }
cmp -s "$workdir/validator.gob" "$workdir/validator.backup" \
    || { echo "failed save mutated the previous artifact"; exit 1; }
ls "$workdir"/validator.gob.tmp-* 2>/dev/null \
    && { echo "failed save left temp litter behind"; exit 1; }

# start_dvserve LOGFILE ARGS... — starts dvserve on an ephemeral port,
# polls its stderr for the bound address, and sets $addr and $pid.
start_dvserve() {
    local log=$1; shift
    "$workdir/dvserve" -model "$workdir/model.gob" -validator "$workdir/validator.gob" \
        -addr 127.0.0.1:0 "$@" 2>"$log" &
    pid=$!
    pids+=("$pid")
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's|^dvserve: serving .* on http://||p' "$log" | head -n1)
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || { cat "$log"; echo "dvserve exited before serving"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { cat "$log"; echo "never saw the serving address"; exit 1; }
}

post() { # post PATH BODYFILE — sets $code and $body
    code=$(curl -sS -o "$workdir/resp.out" -w '%{http_code}' \
        -H 'Content-Type: application/json' --data-binary @"$2" "http://$addr$1")
    body=$(cat "$workdir/resp.out")
}

zeros() { seq "$1" | sed 's/.*/0/' | paste -sd, -; }
printf '{"channels":1,"height":28,"width":28,"pixels":[%s]}' "$(zeros 784)" >"$workdir/check.json"
printf '{}' >"$workdir/empty.json"

echo "== starting dvserve (reload-max-failures 3)"
start_dvserve "$workdir/serve.stderr" -metrics-addr 127.0.0.1:0 -eps 0.5 -reload-max-failures 3
maddr=$(sed -n 's|^metrics: serving .* on http://||p' "$workdir/serve.stderr" | head -n1)
[ -n "$maddr" ] || { cat "$workdir/serve.stderr"; echo "no metrics address"; exit 1; }

post /v1/check "$workdir/check.json"
good_verdict=$body
[ "$code" = 200 ] || { echo "baseline check: want 200, got $code: $body"; exit 1; }

echo "== corrupting the validator on disk (one byte, deep in the payload)"
size=$(wc -c <"$workdir/validator.gob")
off=$((size - 10))
orig=$(od -An -tu1 -j "$off" -N 1 "$workdir/validator.gob" | tr -d ' ')
printf "$(printf '\\x%02x' $(( (orig + 1) % 256 )))" \
    | dd of="$workdir/validator.gob" bs=1 seek="$off" conv=notrunc 2>/dev/null

echo "== every reload is rejected; the old detector keeps serving"
for i in 1 2 3; do
    post /v1/reload "$workdir/empty.json"
    [ "$code" = 500 ] || { echo "reload $i of corrupt artifact: want 500, got $code: $body"; exit 1; }
    grep -q 'corrupt' <<<"$body" || { echo "reload error does not mention corruption: $body"; exit 1; }
    post /v1/check "$workdir/check.json"
    [ "$code" = 200 ] || { echo "check after failed reload $i: want 200, got $code"; exit 1; }
    [ "$body" = "$good_verdict" ] \
        || { echo "verdict drifted after failed reload $i:"; echo " before: $good_verdict"; echo " after:  $body"; exit 1; }
done

echo "== after 3 consecutive failures /readyz is degraded (503)"
rz_code=$(curl -s -o "$workdir/readyz.out" -w '%{http_code}' "http://$addr/readyz")
[ "$rz_code" = 503 ] || { echo "degraded readyz: want 503, got $rz_code"; exit 1; }
grep -q 'degraded' "$workdir/readyz.out" \
    || { echo "readyz body lacks 'degraded': $(cat "$workdir/readyz.out")"; exit 1; }

echo "== reload-failure metrics are exported"
metrics=$(curl -sf "http://$maddr/metrics")
grep -qF 'dv_serve_reload_failed_total 3' <<<"$metrics" \
    || { echo "missing dv_serve_reload_failed_total 3"; grep reload <<<"$metrics" || true; exit 1; }
grep -qF 'dv_serve_reload_fail_streak 3' <<<"$metrics" \
    || { echo "missing dv_serve_reload_fail_streak 3"; grep reload <<<"$metrics" || true; exit 1; }

echo "== restoring the artifact heals the instance"
cp "$workdir/validator.backup" "$workdir/validator.gob"
post /v1/reload "$workdir/empty.json"
[ "$code" = 200 ] || { echo "reload of restored artifact: want 200, got $code: $body"; exit 1; }
rz=$(curl -sf "http://$addr/readyz")
grep -q ready <<<"$rz" || { echo "readyz after recovery not ready: $rz"; exit 1; }
post /v1/check "$workdir/check.json"
[ "$code" = 200 ] && [ "$body" = "$good_verdict" ] \
    || { echo "post-recovery verdict differs: $body"; exit 1; }

echo "chaos smoke: OK"
