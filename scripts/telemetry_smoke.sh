#!/usr/bin/env bash
# telemetry_smoke.sh — end-to-end check of the observability surface.
#
# Trains a tiny model, fits a validator, then runs a scoring pass with
# the metrics endpoint bound to an ephemeral port and scrapes it:
# /metrics must serve populated dv_* series in the Prometheus text
# format, /metrics?format=json must parse, and /debug/vars must carry
# the expvar bridge. Used by `make smoke` and CI.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d /tmp/dv-smoke-XXXXXX)
trap 'rm -rf "$workdir"; [ -n "${score_pid:-}" ] && kill "$score_pid" 2>/dev/null || true' EXIT

echo "== building CLIs"
go build -o "$workdir/dvtrain" ./cmd/dvtrain
go build -o "$workdir/dvvalidate" ./cmd/dvvalidate

echo "== training a tiny model"
"$workdir/dvtrain" -dataset digits -train 400 -test 100 -epochs 6 \
    -width 4 -fc 16 -out "$workdir/model.gob" -quiet

echo "== fitting the validator (with -telemetry summary)"
"$workdir/dvvalidate" fit -model "$workdir/model.gob" -dataset digits \
    -train 400 -test 100 -max-per-class 40 -max-features 64 \
    -out "$workdir/validator.gob" -telemetry

echo "== scoring with the metrics endpoint on an ephemeral port"
stderr_log="$workdir/score.stderr"
"$workdir/dvvalidate" score -model "$workdir/model.gob" \
    -validator "$workdir/validator.gob" -dataset digits \
    -train 400 -test 100 -telemetry \
    -metrics-addr 127.0.0.1:0 -metrics-linger 30s \
    2>"$stderr_log" &
score_pid=$!

# The CLI prints the bound address before it starts working; poll for it.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's|^metrics: serving .* on http://||p' "$stderr_log" | head -n1)
    [ -n "$addr" ] && break
    kill -0 "$score_pid" 2>/dev/null || { cat "$stderr_log"; echo "score exited before serving metrics"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { cat "$stderr_log"; echo "never saw the metrics address"; exit 1; }
echo "   endpoint: http://$addr"

# Let the scoring pass populate the histograms, then scrape while the
# endpoint lingers.
wait_for_metric() {
    local body
    for _ in $(seq 1 200); do
        body=$(curl -sf "http://$addr/metrics" || true)
        if echo "$body" | grep -q "$1"; then return 0; fi
        sleep 0.1
    done
    echo "metric $1 never appeared:"
    curl -sf "http://$addr/metrics" || true
    return 1
}

echo "== scraping /metrics (Prometheus text)"
wait_for_metric '^dv_checked_total [1-9]'
metrics=$(curl -sf "http://$addr/metrics")
for want in \
    '# TYPE dv_checked_total counter' \
    '# TYPE dv_verdict_latency_seconds histogram' \
    'dv_verdict_latency_seconds_bucket' \
    'dv_layer_discrepancy_bucket' \
    'dv_epsilon'; do
    echo "$metrics" | grep -q "$want" || { echo "missing: $want"; echo "$metrics"; exit 1; }
done

echo "== scraping /metrics?format=json"
# Capture bodies before grepping: with pipefail, `curl | grep -q` dies
# of curl's SIGPIPE when grep exits on an early match.
json=$(curl -sf "http://$addr/metrics?format=json")
echo "$json" | grep -q '"dv_checked_total"' \
    || { echo "JSON snapshot lacks dv_checked_total"; exit 1; }

echo "== scraping /debug/vars (expvar bridge)"
vars=$(curl -sf "http://$addr/debug/vars")
echo "$vars" | grep -q '"deepvalidation"' || { echo "expvar bridge missing"; exit 1; }
echo "$vars" | grep -q '"memstats"' || { echo "stock expvars missing"; exit 1; }

echo "== scraping /debug/pprof/"
pprof=$(curl -sf "http://$addr/debug/pprof/")
echo "$pprof" | grep -q goroutine \
    || { echo "pprof index not serving"; exit 1; }

kill "$score_pid" 2>/dev/null || true
wait "$score_pid" 2>/dev/null || true
score_pid=""
echo "telemetry smoke: OK"
