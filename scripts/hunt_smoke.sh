#!/usr/bin/env bash
# hunt_smoke.sh — end-to-end check of the corner-case miner against
# real binaries.
#
# Trains a tiny model + validator (the validator carries the fit-time
# drift reference dvhunt's coverage map needs), runs a short
# coverage-guided hunt, and proves the promises the repository makes
# about it: the corpus directory holds checksummed escape artifacts
# plus a manifest and a per-composition escape-rate table; a fixed-seed
# hunt is byte-identical at a different -workers setting; replaying the
# corpus against the same detector reproduces every recorded verdict
# (-strict); dvreport merges the escape-rate table; and the committed
# testdata/escapes corpus passes its replay regression test. Used by
# `make smoke` and CI.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d /tmp/dv-hunt-smoke-XXXXXX)
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT

echo "== building CLIs"
go build -o "$workdir/dvtrain" ./cmd/dvtrain
go build -o "$workdir/dvvalidate" ./cmd/dvvalidate
go build -o "$workdir/dvhunt" ./cmd/dvhunt
go build -o "$workdir/dvreport" ./cmd/dvreport

echo "== training a tiny model + validator (with drift reference)"
"$workdir/dvtrain" -dataset digits -train 400 -test 100 -epochs 6 \
    -width 4 -fc 16 -out "$workdir/model.gob" -quiet
"$workdir/dvvalidate" fit -model "$workdir/model.gob" -dataset digits \
    -train 400 -test 100 -max-per-class 40 -max-features 64 \
    -out "$workdir/validator.gob" >/dev/null

hunt_flags=(-model "$workdir/model.gob" -validator "$workdir/validator.gob"
    -dataset digits -train 400 -test 100
    -seeds 16 -seed 7 -budget 1200 -batch 64 -fpr 0.1 -max-saved 8)

echo "== short coverage-guided hunt (fixed seed)"
"$workdir/dvhunt" "${hunt_flags[@]}" -workers 1 -telemetry \
    -out "$workdir/escapes" | tee "$workdir/hunt.out"

echo "== corpus layout: manifest, rates table, checksummed artifacts"
[ -f "$workdir/escapes/manifest.json" ] || { echo "no manifest written"; exit 1; }
[ -f "$workdir/escapes/rates.json" ] || { echo "no rates.json written"; exit 1; }
grep -q 'Escape rate' "$workdir/hunt.out" \
    || { echo "hunt output lacks the escape-rate table"; exit 1; }
grep -q 'dv_hunt_evals_total' "$workdir/hunt.out" \
    || { echo "hunt output lacks dv_hunt_* telemetry"; exit 1; }
saved=$(ls "$workdir/escapes"/escape-*.dvart 2>/dev/null | wc -l)
[ "$saved" -ge 1 ] || { echo "hunt persisted no escape artifacts"; exit 1; }
for f in "$workdir/escapes"/escape-*.dvart; do
    magic=$(head -c 8 "$f")
    [ "$magic" = "DVARTFC1" ] || { echo "$f lacks the container magic (got '$magic')"; exit 1; }
done
echo "   $saved escape artifacts"

echo "== same seed, different -workers: byte-identical corpus"
"$workdir/dvhunt" "${hunt_flags[@]}" -workers 4 -out "$workdir/escapes2" >/dev/null
diff -r "$workdir/escapes" "$workdir/escapes2" \
    || { echo "corpus differs between -workers 1 and -workers 4"; exit 1; }

echo "== strict replay against the same detector reproduces every verdict"
"$workdir/dvhunt" -model "$workdir/model.gob" -validator "$workdir/validator.gob" \
    -replay "$workdir/escapes" -strict -workers 2 | tee "$workdir/replay.out"
grep -q '0 verdicts diverged from manifest, 0 with transformed-pixel drift' "$workdir/replay.out" \
    || { echo "replay diverged from the mining run"; exit 1; }

echo "== dvreport merges the escape-rate table"
"$workdir/dvreport" -scale quick -cache "$workdir/cache" -attacks=false \
    -datasets digits -hunt "$workdir/escapes" 2>/dev/null >"$workdir/report.out"
grep -q 'Detector-escape mining' "$workdir/report.out" \
    || { echo "dvreport output lacks the mining section"; exit 1; }
grep -q 'persisted escapes' "$workdir/report.out" \
    || { echo "dvreport output lacks the corpus summary"; exit 1; }

echo "== committed escape corpus passes its replay regression test"
go test -run TestEscapeCorpusReplay -count=1 .

echo "hunt smoke: OK"
