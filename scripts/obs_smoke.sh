#!/usr/bin/env bash
# obs_smoke.sh — end-to-end check of the wide-event logging, runtime
# self-observability, and SLO burn-rate path against a real dvserve
# process.
#
# Trains a tiny model, fits a validator, and starts a race-built
# dvserve with the SLO engine on, trace sampling at 1, and an NDJSON
# event log with a tiny rotation threshold. Drives healthy traffic and
# proves: dv_build_info / dv_runtime_* / dv_slo_* / dv_events_* export
# on /metrics; /debug/dv/events answers triage filters (and 400s on bad
# ones); /readyz carries the machine-parseable slo line. Then forces a
# 429 shedding burst (queue-depth 1, one dispatcher) until the
# availability objective burns through its budget, and proves the
# breach: /debug/dv/slo flips to breaching, the slo_breach event on
# /debug/dv/events cross-links shed trace IDs, and the first linked ID
# resolves on /debug/dv/trace/{id}. Finally checks that the event log
# rotated (events.ndjson.1) and that every NDJSON line parses as an
# event. dvserve is built with -race so the smoke doubles as a race
# check on the real serving binary. Used by `make smoke` and CI.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d /tmp/dv-obs-smoke-XXXXXX)
pids=()
cleanup() {
    rm -rf "$workdir"
    for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
}
trap cleanup EXIT

echo "== building CLIs (dvserve with -race)"
go build -o "$workdir/dvtrain" ./cmd/dvtrain
go build -o "$workdir/dvvalidate" ./cmd/dvvalidate
go build -race -o "$workdir/dvserve" ./cmd/dvserve

echo "== training a tiny model + validator"
"$workdir/dvtrain" -dataset digits -train 400 -test 100 -epochs 6 \
    -width 4 -fc 16 -out "$workdir/model.gob" -quiet
"$workdir/dvvalidate" fit -model "$workdir/model.gob" -dataset digits \
    -train 400 -test 100 -max-per-class 40 -max-features 64 \
    -out "$workdir/validator.gob" >"$workdir/fit.out"

# Request bodies: digits images are 1x28x28 = 784 pixels.
zeros() { seq "$1" | sed 's/.*/0/' | paste -sd, -; }
img=$(printf '{"channels":1,"height":28,"width":28,"pixels":[%s]}' "$(zeros 784)")
printf '%s' "$img" >"$workdir/check.json"
batch=$img
for _ in $(seq 2 16); do batch="$batch,$img"; done
printf '{"images":[%s]}' "$batch" >"$workdir/batch.json"

post() { # post PATH BODYFILE [CURL_ARGS...] — sets $code and $body
    local path=$1 bodyfile=$2; shift 2
    code=$(curl -sS -o "$workdir/resp.out" -w '%{http_code}' "$@" \
        -H 'Content-Type: application/json' --data-binary @"$bodyfile" "http://$addr$path")
    body=$(cat "$workdir/resp.out")
}

echo "== starting dvserve (-slo, trace-sample 1, NDJSON event log, queue-depth 16)"
# Admission is all-or-nothing per request: a 16-image batch fills the
# 16-slot queue and drains one image at a time through the single
# dispatcher, so any batch posted while another is still scoring sheds
# deterministically. The 1s SLO interval keeps the breach wait short;
# the 2000-byte rotation threshold guarantees the wide request events
# roll the log within one smoke run.
"$workdir/dvserve" -model "$workdir/model.gob" -validator "$workdir/validator.gob" \
    -addr 127.0.0.1:0 -metrics-addr 127.0.0.1:0 -eps 1000 \
    -slo -slo-interval 1s -trace-sample 1 \
    -queue-depth 16 -dispatch-workers 1 -max-batch 1 -batch-window 0 -workers 1 \
    -log info -log-file "$workdir/events.ndjson" -log-max-bytes 2000 \
    2>"$workdir/serve.stderr" &
pid=$!
pids+=("$pid")
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's|^dvserve: serving .* on http://||p' "$workdir/serve.stderr" | head -n1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { cat "$workdir/serve.stderr"; echo "dvserve exited before serving"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { cat "$workdir/serve.stderr"; echo "never saw the serving address"; exit 1; }
maddr=$(sed -n 's|^metrics: serving .* on http://||p' "$workdir/serve.stderr" | head -n1)
[ -n "$maddr" ] || { cat "$workdir/serve.stderr"; echo "no metrics address"; exit 1; }
echo "   serving:  http://$addr"
echo "   metrics:  http://$maddr"

echo "== healthy traffic (traced checks + one batch)"
for i in 1 2 3 4 5 6; do
    post /v1/check "$workdir/check.json" -H "X-DV-Trace-Id: obs-smoke-$i"
    [ "$code" = 200 ] || { echo "check $i: want 200, got $code: $body"; exit 1; }
done
post /v1/batch "$workdir/batch.json"
[ "$code" = 200 ] || { echo "batch: want 200, got $code: $body"; exit 1; }

echo "== dv_build_info, dv_runtime_*, dv_slo_*, dv_events_* on /metrics"
metrics=$(curl -sf "http://$maddr/metrics")
for want in 'dv_build_info{' 'model_sha256="' \
    'dv_runtime_goroutines' 'dv_runtime_heap_bytes' 'dv_runtime_gc_cycles_total' \
    'dv_slo_objective{slo="availability"}' \
    'dv_slo_burn_rate{slo="availability",window="5m"}' \
    'dv_slo_breach{slo="latency"}' \
    'dv_events_emitted_total{type="request"}'; do
    grep -qF "$want" <<<"$metrics" \
        || { echo "missing metric: $want"; grep 'dv_build\|dv_runtime\|dv_slo\|dv_events' <<<"$metrics" || true; exit 1; }
done
goro=$(sed -n 's/^dv_runtime_goroutines //p' <<<"$metrics")
awk -v g="$goro" 'BEGIN { exit !(g > 0) }' \
    || { echo "dv_runtime_goroutines not live: $goro"; exit 1; }
emitted_before=$(sed -n 's/^dv_events_emitted_total{type="request"} //p' <<<"$metrics")

echo "== /debug/dv/events triage filters"
ev_json=$(curl -sf "http://$addr/debug/dv/events?type=request&limit=3")
grep -qF '"type":"request"' <<<"$ev_json" || { echo "no request events: $ev_json"; exit 1; }
grep -qF '"count":3' <<<"$ev_json" || { echo "limit=3 not honored: $ev_json"; exit 1; }
ev_json=$(curl -sf "http://$addr/debug/dv/events?type=lifecycle")
grep -qF '"msg":"server ready"' <<<"$ev_json" || { echo "no server-ready lifecycle event: $ev_json"; exit 1; }
bad_code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/debug/dv/events?valid=maybe")
[ "$bad_code" = 400 ] || { echo "bad filter want 400, got $bad_code"; exit 1; }

echo "== /readyz carries the machine-parseable slo line + JSON body"
rz=$(curl -sf "http://$addr/readyz")
grep -q '^slo: ' <<<"$rz" || { echo "readyz lacks the slo line: $rz"; exit 1; }
grep -qF '"slo":{"enabled":true' <<<"$rz" || { echo "readyz JSON body lacks slo status: $rz"; exit 1; }

echo "== forcing 429 shedding bursts to burn the availability budget"
sheds=0
for round in 1 2 3 4 5 6; do
    : >"$workdir/burst.codes"
    curl_pids=()
    for _ in $(seq 1 6); do
        curl -sS -o /dev/null -w '%{http_code}\n' \
            -H 'Content-Type: application/json' --data-binary @"$workdir/batch.json" \
            "http://$addr/v1/batch" >>"$workdir/burst.codes" &
        curl_pids+=("$!")
    done
    wait "${curl_pids[@]}" || true
    got=$(grep -c '^429$' "$workdir/burst.codes" || true)
    sheds=$((sheds + got))
    echo "   round $round: $got sheds (total $sheds)"
    [ "$sheds" -ge 3 ] && break
done
[ "$sheds" -ge 1 ] || { echo "no requests shed; cannot burn the budget"; exit 1; }

echo "== waiting for the availability burn to breach"
ev_json=""
for _ in $(seq 1 40); do
    ev_json=$(curl -sf "http://$addr/debug/dv/events?type=slo_breach&level=error")
    grep -qF '"slo":"availability"' <<<"$ev_json" && break
    ev_json=""
    sleep 0.5
done
[ -n "$ev_json" ] || { echo "no availability breach event after 20s"; curl -sf "http://$addr/debug/dv/slo"; exit 1; }
slo_json=$(curl -sf "http://$addr/debug/dv/slo")
grep -qF '"breaching":true' <<<"$slo_json" || { echo "/debug/dv/slo not breaching: $slo_json"; exit 1; }
rz=$(curl -s "http://$addr/readyz")
grep -q '^slo: BREACH' <<<"$rz" || { echo "readyz does not surface the breach: $rz"; exit 1; }

echo "== slo_breach event cross-links shed trace IDs"
tid=$(sed -n 's/.*"trace_ids":\["\([^"]*\)".*/\1/p' <<<"$ev_json" | head -n1)
[ -n "$tid" ] || { echo "breach event carries no trace_ids: $ev_json"; exit 1; }
tr_json=$(curl -sf "http://$addr/debug/dv/trace/$tid") \
    || { echo "cross-linked trace $tid not retrievable"; exit 1; }
grep -qF "\"id\":\"$tid\"" <<<"$tr_json" || { echo "trace mismatch for $tid: $tr_json"; exit 1; }
grep -qF '"outcome":"shed"' <<<"$tr_json" || { echo "linked trace is not a shed: $tr_json"; exit 1; }

echo "== dv_slo_breach flipped and dv_events_emitted_total moved on /metrics"
metrics=$(curl -sf "http://$maddr/metrics")
grep -qF 'dv_slo_breach{slo="availability"} 1' <<<"$metrics" \
    || { echo "dv_slo_breach did not flip:"; grep dv_slo_breach <<<"$metrics"; exit 1; }
emitted_after=$(sed -n 's/^dv_events_emitted_total{type="request"} //p' <<<"$metrics")
awk -v a="$emitted_before" -v b="$emitted_after" 'BEGIN { exit !(b > a) }' \
    || { echo "event counter never moved: $emitted_before -> $emitted_after"; exit 1; }

echo "== NDJSON log rotated and both generations carry typed events"
[ -s "$workdir/events.ndjson" ] || { echo "event log missing or empty"; exit 1; }
[ -s "$workdir/events.ndjson.1" ] \
    || { echo "event log never rotated at 2000 bytes"; ls -l "$workdir"; exit 1; }
for f in "$workdir/events.ndjson" "$workdir/events.ndjson.1"; do
    grep -q '"type":"' "$f" || { echo "NDJSON file without typed events: $f"; exit 1; }
done
grep -qh '"type":"slo_breach"' "$workdir/events.ndjson" "$workdir/events.ndjson.1" \
    || { echo "breach event never reached the NDJSON sink"; exit 1; }

echo "== race check: no data races logged by the -race dvserve binary"
if grep -q 'WARNING: DATA RACE' "$workdir"/*.stderr; then
    grep -A40 'WARNING: DATA RACE' "$workdir"/*.stderr
    exit 1
fi

echo "obs smoke: OK"
