#!/usr/bin/env bash
# perf_smoke.sh — allocation-regression gate for the scoring hot path.
#
# Runs BenchmarkScoreBatch/workers=1 with -benchmem at a smoke-length
# benchtime and compares measured bytes/op against the committed
# baseline in BENCH_pipeline.json (the ScoreBatch workers=1 entry).
# Wall-clock timing is too noisy to gate on in shared CI, but bytes/op
# is deterministic for a fixed workload: a jump means someone
# reintroduced per-call buffers into the batched path that the
# allocation diet removed (pre-diet the same workload allocated ~2700x
# more). Fails when measured bytes/op exceeds 2x the baseline.
#
# Pass a worker list as $1 (e.g. "1 2 4") to also sweep multicore legs
# — the nightly CI job does — though only workers=1 is gated on.
# Used by `make check` and CI.
set -euo pipefail

cd "$(dirname "$0")/.."

sweep=${1:-}

# Baseline: bytes_per_op of the ScoreBatch workers=1 entry. The file is
# json.MarshalIndent output, so every key sits on its own line and the
# name/workers lines of an entry precede its bytes_per_op line.
baseline=$(awk '
    /"name":/       { name = $2; gsub(/[",]/, "", name) }
    /"workers":/    { workers = $2; gsub(/,/, "", workers) }
    /"bytes_per_op":/ {
        if (name == "ScoreBatch" && workers == 1) {
            bytes = $2; gsub(/,/, "", bytes); print bytes; exit
        }
    }
' BENCH_pipeline.json)
if [[ -z "$baseline" ]]; then
    echo "perf_smoke: no ScoreBatch workers=1 entry in BENCH_pipeline.json" >&2
    exit 1
fi
echo "== committed baseline: $baseline bytes/op (ScoreBatch, workers=1)"

echo "== running BenchmarkScoreBatch/workers=1 (-benchmem)"
out=$(go test -bench 'BenchmarkScoreBatch$/workers=1$' -benchmem -benchtime 2x -run '^$' -count 1 .)
echo "$out"
line=$(echo "$out" | grep -E '^BenchmarkScoreBatch/workers=1')
if [[ -z "$line" ]]; then
    echo "perf_smoke: benchmark produced no workers=1 result line" >&2
    exit 1
fi
measured=$(echo "$line" | awk '{ for (i = 2; i <= NF; i++) if ($i == "B/op") print $(i-1) }')
if [[ -z "$measured" ]]; then
    echo "perf_smoke: could not parse B/op from: $line" >&2
    exit 1
fi

limit=$((baseline * 2))
echo "== measured $measured bytes/op (limit: ${limit}, 2x baseline)"
if (( measured > limit )); then
    echo "perf_smoke: FAIL — ScoreBatch workers=1 allocates $measured bytes/op," >&2
    echo "perf_smoke: more than 2x the committed baseline of $baseline." >&2
    echo "perf_smoke: If the increase is intentional, refresh the snapshot (make snapshot)." >&2
    exit 1
fi
echo "perf_smoke: OK — bytes/op within 2x of the committed baseline"

if [[ -n "$sweep" ]]; then
    echo "== multicore sweep (informational, not gated): workers $sweep"
    for w in $sweep; do
        go test -bench "BenchmarkScoreBatch\$/workers=${w}\$" -benchmem -benchtime 3x -run '^$' -count 1 . \
            | grep -E "^BenchmarkScoreBatch/workers=${w}|^ok|no tests" || true
    done
fi
