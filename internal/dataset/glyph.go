package dataset

import (
	"math"
	"math/rand"
)

// glyphOp is one stroke of a digit glyph, in unit coordinates
// (x right, y down, both in [0,1]).
type glyphOp struct {
	arc bool
	// polyline points when arc is false.
	pts [][2]float64
	// cx, cy, rx, ry, a0, a1 when arc is true.
	cx, cy, rx, ry, a0, a1 float64
}

// digitGlyphs defines stroke skeletons for the digits 0–9. The shapes
// only need to be mutually distinguishable and human-recognizable; the
// classifier learns whatever the renderer draws.
var digitGlyphs = [10][]glyphOp{
	0: {
		{arc: true, cx: 0.5, cy: 0.5, rx: 0.28, ry: 0.40, a0: 0, a1: 2 * math.Pi},
	},
	1: {
		{pts: [][2]float64{{0.35, 0.26}, {0.55, 0.10}, {0.55, 0.90}}},
		{pts: [][2]float64{{0.35, 0.90}, {0.74, 0.90}}},
	},
	2: {
		{arc: true, cx: 0.5, cy: 0.30, rx: 0.27, ry: 0.20, a0: math.Pi, a1: 2 * math.Pi},
		{pts: [][2]float64{{0.77, 0.30}, {0.23, 0.90}, {0.80, 0.90}}},
	},
	3: {
		{arc: true, cx: 0.48, cy: 0.30, rx: 0.25, ry: 0.20, a0: math.Pi, a1: 2.4 * math.Pi},
		{arc: true, cx: 0.48, cy: 0.70, rx: 0.27, ry: 0.22, a0: -0.4 * math.Pi, a1: math.Pi},
	},
	4: {
		{pts: [][2]float64{{0.64, 0.10}, {0.20, 0.62}, {0.82, 0.62}}},
		{pts: [][2]float64{{0.64, 0.34}, {0.64, 0.92}}},
	},
	5: {
		{pts: [][2]float64{{0.76, 0.10}, {0.30, 0.10}, {0.27, 0.48}}},
		{arc: true, cx: 0.47, cy: 0.67, rx: 0.28, ry: 0.24, a0: -math.Pi/2 - 0.8, a1: 0.8 * math.Pi},
	},
	6: {
		{pts: [][2]float64{{0.68, 0.10}, {0.36, 0.52}}},
		{arc: true, cx: 0.50, cy: 0.64, rx: 0.25, ry: 0.26, a0: 0, a1: 2 * math.Pi},
	},
	7: {
		{pts: [][2]float64{{0.22, 0.10}, {0.78, 0.10}, {0.40, 0.92}}},
	},
	8: {
		{arc: true, cx: 0.50, cy: 0.30, rx: 0.21, ry: 0.20, a0: 0, a1: 2 * math.Pi},
		{arc: true, cx: 0.50, cy: 0.72, rx: 0.25, ry: 0.21, a0: 0, a1: 2 * math.Pi},
	},
	9: {
		{arc: true, cx: 0.50, cy: 0.34, rx: 0.23, ry: 0.23, a0: 0, a1: 2 * math.Pi},
		{pts: [][2]float64{{0.73, 0.36}, {0.64, 0.90}}},
	},
}

// glyphStyle controls the randomized rendering of one glyph instance.
type glyphStyle struct {
	// cx, cy place the glyph center in canvas pixels.
	cx, cy float64
	// scale maps unit glyph size to pixels.
	scale float64
	// rot rotates the glyph (radians).
	rot float64
	// thickness is the stroke width in pixels.
	thickness float64
	// color is the stroke color (1 or C entries).
	color []float64
}

// randomGlyphStyle draws a natural style for a digit roughly centered
// on a size×size canvas.
func randomGlyphStyle(rng *rand.Rand, size int, color []float64) glyphStyle {
	s := float64(size)
	return glyphStyle{
		cx:        s/2 + (rng.Float64()-0.5)*0.10*s,
		cy:        s/2 + (rng.Float64()-0.5)*0.10*s,
		scale:     s * (0.80 + 0.18*rng.Float64()),
		rot:       (rng.Float64() - 0.5) * 0.24,
		thickness: s * (0.055 + 0.03*rng.Float64()),
		color:     color,
	}
}

// place maps a unit-square glyph point through the style transform.
func (st glyphStyle) place(p [2]float64) (x, y float64) {
	dx, dy := p[0]-0.5, p[1]-0.5
	c, s := math.Cos(st.rot), math.Sin(st.rot)
	return st.cx + st.scale*(c*dx-s*dy), st.cy + st.scale*(s*dx+c*dy)
}

// DrawDigit renders digit d (0–9) onto the canvas with the given style
// randomness. It panics if d is out of range, which is a programmer
// error.
func DrawDigit(cv *Canvas, d int, rng *rand.Rand, size int, color []float64) {
	st := randomGlyphStyle(rng, size, color)
	drawGlyphStyled(cv, d, st)
}

func drawGlyphStyled(cv *Canvas, d int, st glyphStyle) {
	if d < 0 || d > 9 {
		panic("dataset: digit out of range")
	}
	for _, op := range digitGlyphs[d] {
		if op.arc {
			// Sample the arc in unit space and map each point, so the
			// style rotation applies to arcs too.
			steps := int(math.Abs(op.a1-op.a0)*st.scale*math.Max(op.rx, op.ry)) + 8
			prev := [2]float64{}
			for i := 0; i <= steps; i++ {
				a := op.a0 + (op.a1-op.a0)*float64(i)/float64(steps)
				p := [2]float64{op.cx + op.rx*math.Cos(a), op.cy + op.ry*math.Sin(a)}
				x, y := st.place(p)
				if i > 0 {
					cv.Line(prev[0], prev[1], x, y, st.thickness, st.color)
				}
				prev = [2]float64{x, y}
			}
			continue
		}
		pts := make([][2]float64, len(op.pts))
		for i, p := range op.pts {
			x, y := st.place(p)
			pts[i] = [2]float64{x, y}
		}
		cv.Polyline(pts, st.thickness, st.color)
	}
}
