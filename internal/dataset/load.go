package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"deepvalidation/internal/tensor"
)

// ReadPNM parses a binary PGM (P5) or PPM (P6) image into a (C,H,W)
// tensor with values scaled to [0,1] — the inverse of WritePNM. It
// accepts the comment lines real-world PNM writers emit.
func ReadPNM(r io.Reader) (*tensor.Tensor, error) {
	br := bufio.NewReader(r)
	magic, err := pnmToken(br)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading PNM magic: %w", err)
	}
	var channels int
	switch magic {
	case "P5":
		channels = 1
	case "P6":
		channels = 3
	default:
		return nil, fmt.Errorf("dataset: unsupported PNM magic %q (want P5 or P6)", magic)
	}
	w, err := pnmInt(br)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading PNM width: %w", err)
	}
	h, err := pnmInt(br)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading PNM height: %w", err)
	}
	maxVal, err := pnmInt(br)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading PNM max value: %w", err)
	}
	// Cap the accepted geometry so a malformed header cannot demand a
	// giant allocation (64 Mpixel is far beyond any sane input here).
	const maxPixels = 1 << 26
	if w <= 0 || h <= 0 || w > maxPixels/h/channels {
		return nil, fmt.Errorf("dataset: invalid PNM dimensions %dx%d", w, h)
	}
	if maxVal <= 0 || maxVal > 255 {
		return nil, fmt.Errorf("dataset: unsupported PNM max value %d (want 1..255)", maxVal)
	}

	buf := make([]byte, w*h*channels)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("dataset: reading PNM pixels: %w", err)
	}
	img := tensor.New(channels, h, w)
	scale := 1 / float64(maxVal)
	i := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			for ch := 0; ch < channels; ch++ {
				v := float64(buf[i]) * scale
				if v > 1 { // malformed writers may exceed their declared max value
					v = 1
				}
				img.Set(v, ch, y, x)
				i++
			}
		}
	}
	return img, nil
}

// maxPNMFileBytes bounds a PNM file on disk: the largest geometry
// ReadPNM accepts (64 Mpixel) plus slack for the header and comment
// lines. Larger files are rejected before a byte is parsed, so a
// mislabeled multi-gigabyte file cannot stall ingestion.
const maxPNMFileBytes = (1 << 26) + 4096

// LoadPNM reads a PGM/PPM file from disk, refusing files too large to
// be a valid PNM for the geometry cap in ReadPNM.
func LoadPNM(path string) (*tensor.Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: loading image: %w", err)
	}
	defer f.Close()
	if fi, err := f.Stat(); err != nil {
		return nil, fmt.Errorf("dataset: loading image: %w", err)
	} else if fi.Size() > maxPNMFileBytes {
		return nil, fmt.Errorf("dataset: %s is %d bytes, beyond the %d-byte PNM cap", path, fi.Size(), maxPNMFileBytes)
	}
	return ReadPNM(f)
}

// pnmToken reads the next whitespace-delimited token, skipping '#'
// comment lines.
func pnmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			if len(tok) > 0 && err == io.EOF {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case b == '#' && len(tok) == 0:
			if _, err := br.ReadString('\n'); err != nil {
				return "", err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

func pnmInt(br *bufio.Reader) (int, error) {
	tok, err := pnmToken(br)
	if err != nil {
		return 0, err
	}
	if len(tok) > 9 {
		return 0, fmt.Errorf("oversized header token %q", tok)
	}
	n := 0
	for _, c := range tok {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("non-numeric header token %q", tok)
		}
		n = n*10 + int(c-'0')
	}
	return n, nil
}
