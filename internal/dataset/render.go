// Package dataset provides deterministic, procedurally generated
// stand-ins for the paper's three corpora (MNIST, CIFAR-10, SVHN).
//
// The real datasets cannot ship with an offline, dependency-free
// module, so each generator renders images with the structural
// properties the paper leans on: Digits is clean and well-separated
// like MNIST, Objects is color with strong intra-class variation like
// CIFAR-10, and StreetDigits is deliberately noisy like SVHN ("a
// relatively 'noisy' dataset", Section IV-A). Every sample is a pure
// function of (seed, split, index), so training is reproducible and
// train/test splits never overlap.
package dataset

import (
	"math"
	"math/rand"

	"deepvalidation/internal/tensor"
)

// Canvas is a (C,H,W) image under construction with values in [0,1].
type Canvas struct {
	T       *tensor.Tensor
	C, H, W int
}

// NewCanvas returns a canvas of the given geometry filled with zeros.
func NewCanvas(c, h, w int) *Canvas {
	return &Canvas{T: tensor.New(c, h, w), C: c, H: h, W: w}
}

// FillBackground sets every pixel of channel ch to v.
func (cv *Canvas) FillBackground(color []float64) {
	for ch := 0; ch < cv.C; ch++ {
		v := color[ch%len(color)]
		plane := cv.T.Data[ch*cv.H*cv.W : (ch+1)*cv.H*cv.W]
		for i := range plane {
			plane[i] = v
		}
	}
}

// blend writes color into pixel (x,y) with weight a in [0,1],
// compositing over the existing value.
func (cv *Canvas) blend(x, y int, color []float64, a float64) {
	if x < 0 || x >= cv.W || y < 0 || y >= cv.H || a <= 0 {
		return
	}
	if a > 1 {
		a = 1
	}
	for ch := 0; ch < cv.C; ch++ {
		i := ch*cv.H*cv.W + y*cv.W + x
		c := color[ch%len(color)]
		cv.T.Data[i] = (1-a)*cv.T.Data[i] + a*c
	}
}

// Disk paints a filled anti-aliased disk of radius r centered at
// (cx, cy) in canvas coordinates.
func (cv *Canvas) Disk(cx, cy, r float64, color []float64) {
	x0, x1 := int(math.Floor(cx-r-1)), int(math.Ceil(cx+r+1))
	y0, y1 := int(math.Floor(cy-r-1)), int(math.Ceil(cy+r+1))
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			d := math.Hypot(float64(x)-cx, float64(y)-cy)
			cv.blend(x, y, color, r+0.5-d)
		}
	}
}

// Line paints an anti-aliased thick segment from (x0,y0) to (x1,y1).
func (cv *Canvas) Line(x0, y0, x1, y1, thickness float64, color []float64) {
	length := math.Hypot(x1-x0, y1-y0)
	steps := int(length*2) + 1
	r := thickness / 2
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		cv.Disk(x0+t*(x1-x0), y0+t*(y1-y0), r, color)
	}
}

// Polyline draws connected thick segments through the given points
// (pairs of x, y).
func (cv *Canvas) Polyline(pts [][2]float64, thickness float64, color []float64) {
	for i := 1; i < len(pts); i++ {
		cv.Line(pts[i-1][0], pts[i-1][1], pts[i][0], pts[i][1], thickness, color)
	}
}

// EllipseArc draws the arc of an axis-aligned ellipse centered at
// (cx, cy) with radii (rx, ry) from angle a0 to a1 (radians, clockwise
// with screen coordinates).
func (cv *Canvas) EllipseArc(cx, cy, rx, ry, a0, a1, thickness float64, color []float64) {
	arc := math.Abs(a1 - a0)
	steps := int(arc*math.Max(rx, ry)) + 8
	r := thickness / 2
	for i := 0; i <= steps; i++ {
		a := a0 + (a1-a0)*float64(i)/float64(steps)
		cv.Disk(cx+rx*math.Cos(a), cy+ry*math.Sin(a), r, color)
	}
}

// FillRect paints an axis-aligned filled rectangle.
func (cv *Canvas) FillRect(x0, y0, x1, y1 float64, color []float64) {
	for y := int(math.Floor(y0)); y <= int(math.Ceil(y1)); y++ {
		for x := int(math.Floor(x0)); x <= int(math.Ceil(x1)); x++ {
			ax := overlap1D(float64(x), x0, x1) * overlap1D(float64(y), y0, y1)
			cv.blend(x, y, color, ax)
		}
	}
}

// overlap1D returns how much the unit pixel centered at p overlaps
// [lo, hi], in [0,1].
func overlap1D(p, lo, hi float64) float64 {
	a := math.Max(p-0.5, lo)
	b := math.Min(p+0.5, hi)
	if b <= a {
		return 0
	}
	return b - a
}

// FillTriangle paints a filled triangle via per-pixel half-plane tests.
func (cv *Canvas) FillTriangle(p0, p1, p2 [2]float64, color []float64) {
	minX := int(math.Floor(math.Min(p0[0], math.Min(p1[0], p2[0]))))
	maxX := int(math.Ceil(math.Max(p0[0], math.Max(p1[0], p2[0]))))
	minY := int(math.Floor(math.Min(p0[1], math.Min(p1[1], p2[1]))))
	maxY := int(math.Ceil(math.Max(p0[1], math.Max(p1[1], p2[1]))))
	edge := func(a, b, p [2]float64) float64 {
		return (b[0]-a[0])*(p[1]-a[1]) - (b[1]-a[1])*(p[0]-a[0])
	}
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			p := [2]float64{float64(x), float64(y)}
			e0, e1, e2 := edge(p0, p1, p), edge(p1, p2, p), edge(p2, p0, p)
			inside := (e0 >= 0 && e1 >= 0 && e2 >= 0) || (e0 <= 0 && e1 <= 0 && e2 <= 0)
			if inside {
				cv.blend(x, y, color, 1)
			}
		}
	}
}

// AddNoise perturbs every pixel with independent N(0, sigma²) noise and
// clamps to [0,1].
func (cv *Canvas) AddNoise(rng *rand.Rand, sigma float64) {
	for i := range cv.T.Data {
		cv.T.Data[i] += sigma * rng.NormFloat64()
	}
	cv.T.ClampInPlace(0, 1)
}

// AddTexture overlays a smooth low-frequency pattern (sum of random
// sinusoids), scaled by amp, approximating natural background clutter.
func (cv *Canvas) AddTexture(rng *rand.Rand, amp float64) {
	type wave struct{ fx, fy, ph, w float64 }
	waves := make([]wave, 3)
	for i := range waves {
		waves[i] = wave{
			fx: (rng.Float64() - 0.5) * 0.8,
			fy: (rng.Float64() - 0.5) * 0.8,
			ph: rng.Float64() * 2 * math.Pi,
			w:  rng.Float64(),
		}
	}
	for ch := 0; ch < cv.C; ch++ {
		chShift := rng.Float64() * 2 * math.Pi
		for y := 0; y < cv.H; y++ {
			for x := 0; x < cv.W; x++ {
				v := 0.0
				for _, wv := range waves {
					v += wv.w * math.Sin(wv.fx*float64(x)+wv.fy*float64(y)+wv.ph+chShift)
				}
				i := ch*cv.H*cv.W + y*cv.W + x
				cv.T.Data[i] += amp * v / 3
			}
		}
	}
	cv.T.ClampInPlace(0, 1)
}

// Finish clamps the canvas into [0,1] and returns the image tensor.
func (cv *Canvas) Finish() *tensor.Tensor {
	return cv.T.ClampInPlace(0, 1)
}
