package dataset

import (
	"fmt"
	"io"
	"os"
	"strings"

	"deepvalidation/internal/tensor"
)

// WritePNM writes an image tensor as PGM (1 channel) or PPM (3
// channels), the formats used to export Figure 2's example corner
// cases. Values are clamped to [0,1] and quantized to 8 bits.
func WritePNM(w io.Writer, img *tensor.Tensor) error {
	if img.Rank() != 3 {
		return fmt.Errorf("dataset: WritePNM wants a (C,H,W) tensor, got shape %v", img.Shape)
	}
	c, h, wd := img.Shape[0], img.Shape[1], img.Shape[2]
	var magic string
	switch c {
	case 1:
		magic = "P5"
	case 3:
		magic = "P6"
	default:
		return fmt.Errorf("dataset: WritePNM supports 1 or 3 channels, got %d", c)
	}
	if _, err := fmt.Fprintf(w, "%s\n%d %d\n255\n", magic, wd, h); err != nil {
		return fmt.Errorf("dataset: writing PNM header: %w", err)
	}
	buf := make([]byte, 0, h*wd*c)
	for y := 0; y < h; y++ {
		for x := 0; x < wd; x++ {
			for ch := 0; ch < c; ch++ {
				v := img.At(ch, y, x)
				if v < 0 {
					v = 0
				} else if v > 1 {
					v = 1
				}
				buf = append(buf, byte(v*255+0.5))
			}
		}
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("dataset: writing PNM pixels: %w", err)
	}
	return nil
}

// SavePNM writes the image to a file; the conventional extensions are
// .pgm for greyscale and .ppm for color.
func SavePNM(path string, img *tensor.Tensor) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: saving image: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("dataset: closing %s: %w", path, cerr)
		}
	}()
	return WritePNM(f, img)
}

// ASCII renders a coarse text view of an image's luminance, handy for
// debugging renderers and transformations in a terminal.
func ASCII(img *tensor.Tensor) string {
	const ramp = " .:-=+*#%@"
	c, h, w := img.Shape[0], img.Shape[1], img.Shape[2]
	var b strings.Builder
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			lum := 0.0
			for ch := 0; ch < c; ch++ {
				lum += img.At(ch, y, x)
			}
			lum /= float64(c)
			idx := int(lum * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			} else if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
