package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"deepvalidation/internal/tensor"
)

func smallCfg() Config { return Config{TrainN: 60, TestN: 30, Seed: 5} }

func TestAllDatasetsBasicShape(t *testing.T) {
	tests := []struct {
		name string
		inC  int
		size int
	}{
		{"digits", 1, 28},
		{"objects", 3, 32},
		{"streetdigits", 3, 32},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			d, err := ByName(tc.name, smallCfg())
			if err != nil {
				t.Fatal(err)
			}
			if d.InC != tc.inC || d.Size != tc.size || d.Classes != 10 {
				t.Fatalf("geometry = (%d,%d,%d classes)", d.InC, d.Size, d.Classes)
			}
			if len(d.TrainX) != 60 || len(d.TestX) != 30 {
				t.Fatalf("split sizes %d/%d", len(d.TrainX), len(d.TestX))
			}
			if len(d.ClassNames) != 10 {
				t.Fatalf("class names: %d", len(d.ClassNames))
			}
			for i, x := range d.TrainX {
				if x.Shape[0] != tc.inC || x.Shape[1] != tc.size || x.Shape[2] != tc.size {
					t.Fatalf("sample %d shape %v", i, x.Shape)
				}
				if x.Min() < 0 || x.Max() > 1 {
					t.Fatalf("sample %d outside [0,1]: [%v, %v]", i, x.Min(), x.Max())
				}
				if y := d.TrainY[i]; y < 0 || y >= 10 {
					t.Fatalf("label %d out of range", y)
				}
			}
		})
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("imagenet", smallCfg()); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestNamesMatchByName(t *testing.T) {
	for _, n := range Names() {
		if _, err := ByName(n, Config{TrainN: 1, TestN: 1, Seed: 1}); err != nil {
			t.Errorf("Names() lists %q but ByName rejects it: %v", n, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Digits(smallCfg())
	b := Digits(smallCfg())
	for i := range a.TrainX {
		if !a.TrainX[i].AllClose(b.TrainX[i], 0) || a.TrainY[i] != b.TrainY[i] {
			t.Fatalf("sample %d differs across identical configs", i)
		}
	}
}

func TestSeedChangesContent(t *testing.T) {
	a := Digits(Config{TrainN: 10, TestN: 0, Seed: 1})
	b := Digits(Config{TrainN: 10, TestN: 0, Seed: 2})
	same := 0
	for i := range a.TrainX {
		if a.TrainX[i].AllClose(b.TrainX[i], 1e-9) {
			same++
		}
	}
	if same == len(a.TrainX) {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestTrainTestDisjoint(t *testing.T) {
	d := Digits(Config{TrainN: 40, TestN: 40, Seed: 3})
	for i, tr := range d.TrainX {
		for j, te := range d.TestX {
			if tr.AllClose(te, 1e-9) {
				t.Fatalf("train[%d] == test[%d]", i, j)
			}
		}
	}
}

func TestAllClassesRepresented(t *testing.T) {
	for _, name := range Names() {
		d, err := ByName(name, Config{TrainN: 300, TestN: 0, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, 10)
		for _, y := range d.TrainY {
			counts[y]++
		}
		for k, c := range counts {
			if c == 0 {
				t.Errorf("%s: class %d absent from 300 samples", name, k)
			}
		}
	}
}

func TestDigitsHaveInk(t *testing.T) {
	d := Digits(Config{TrainN: 30, TestN: 0, Seed: 6})
	for i, x := range d.TrainX {
		// A digit must put meaningful ink on a near-black background.
		if x.Mean() < 0.02 || x.Mean() > 0.5 {
			t.Fatalf("sample %d mean intensity %v implausible for a stroke digit", i, x.Mean())
		}
		if x.Max() < 0.7 {
			t.Fatalf("sample %d has no bright stroke (max %v)", i, x.Max())
		}
	}
}

func TestPropertySampleRNGIndependence(t *testing.T) {
	// Distinct (split, index) pairs must give distinct streams.
	f := func(i, j uint8) bool {
		if i == j {
			return true
		}
		a := sampleRNG(1, splitTrain, int(i)).Int63()
		b := sampleRNG(1, splitTrain, int(j)).Int63()
		return a != b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDrawDigitOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cv := NewCanvas(1, 28, 28)
	DrawDigit(cv, 10, rand.New(rand.NewSource(1)), 28, []float64{1})
}

func TestWritePNMGrey(t *testing.T) {
	img := tensor.New(1, 2, 3).Fill(0.5)
	var buf bytes.Buffer
	if err := WritePNM(&buf, img); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "P5\n3 2\n255\n") {
		t.Fatalf("bad PGM header: %q", s[:12])
	}
	if buf.Len() != len("P5\n3 2\n255\n")+6 {
		t.Fatalf("pixel payload length %d", buf.Len())
	}
}

func TestWritePNMColor(t *testing.T) {
	img := tensor.New(3, 2, 2)
	var buf bytes.Buffer
	if err := WritePNM(&buf, img); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P6\n2 2\n255\n") {
		t.Fatalf("bad PPM header")
	}
}

func TestWritePNMRejectsBadShapes(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePNM(&buf, tensor.New(4, 2, 2)); err == nil {
		t.Error("4-channel image accepted")
	}
	if err := WritePNM(&buf, tensor.New(4)); err == nil {
		t.Error("rank-1 tensor accepted")
	}
}

func TestASCIIArtDimensions(t *testing.T) {
	img := tensor.New(1, 3, 5)
	art := ASCII(img)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 3 || len(lines[0]) != 5 {
		t.Fatalf("ASCII art %dx%d, want 3x5", len(lines), len(lines[0]))
	}
}

func TestCanvasPrimitives(t *testing.T) {
	cv := NewCanvas(1, 10, 10)
	cv.Disk(5, 5, 2, []float64{1})
	if cv.T.At(0, 5, 5) < 0.9 {
		t.Error("disk center not painted")
	}
	if cv.T.At(0, 0, 0) != 0 {
		t.Error("disk painted far corner")
	}

	cv2 := NewCanvas(1, 10, 10)
	cv2.FillRect(2, 2, 7, 7, []float64{1})
	if cv2.T.At(0, 4, 4) < 0.99 {
		t.Error("rect interior not painted")
	}
	if cv2.T.At(0, 9, 9) != 0 {
		t.Error("rect painted outside")
	}

	cv3 := NewCanvas(1, 10, 10)
	cv3.FillTriangle([2]float64{1, 1}, [2]float64{8, 1}, [2]float64{4, 8}, []float64{1})
	if cv3.T.At(0, 2, 4) < 0.99 {
		t.Error("triangle interior not painted")
	}
	if cv3.T.At(0, 8, 9) != 0 {
		t.Error("triangle painted outside")
	}
}

func TestCanvasBlendOutOfBoundsIsSafe(t *testing.T) {
	cv := NewCanvas(1, 4, 4)
	// Must not panic.
	cv.Disk(-5, -5, 2, []float64{1})
	cv.Line(-3, -3, 10, 10, 1, []float64{1})
	if cv.T.HasNaN() {
		t.Fatal("NaN after out-of-bounds drawing")
	}
}

func TestNoiseClampsRange(t *testing.T) {
	cv := NewCanvas(3, 8, 8)
	cv.FillBackground([]float64{0.5, 0.5, 0.5})
	cv.AddNoise(rand.New(rand.NewSource(1)), 3.0)
	if cv.T.Min() < 0 || cv.T.Max() > 1 {
		t.Fatal("noise escaped [0,1]")
	}
}

func TestPNMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, c := range []int{1, 3} {
		img := tensor.New(c, 6, 9).FillUniform(rng, 0, 1)
		var buf bytes.Buffer
		if err := WritePNM(&buf, img); err != nil {
			t.Fatal(err)
		}
		back, err := ReadPNM(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !back.SameShape(img) {
			t.Fatalf("round trip shape %v, want %v", back.Shape, img.Shape)
		}
		// 8-bit quantization bounds the round-trip error.
		if !back.AllClose(img, 1.0/255+1e-9) {
			t.Fatal("round trip error exceeds quantization")
		}
	}
}

func TestReadPNMWithComments(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("P5\n# a comment line\n2 2\n# another\n255\n")
	buf.Write([]byte{0, 128, 255, 64})
	img, err := ReadPNM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Shape[1] != 2 || img.Shape[2] != 2 {
		t.Fatalf("shape %v", img.Shape)
	}
	if img.At(0, 0, 1) < 0.49 || img.At(0, 0, 1) > 0.51 {
		t.Fatalf("pixel = %v, want ~0.5", img.At(0, 0, 1))
	}
}

func TestReadPNMErrors(t *testing.T) {
	cases := map[string]string{
		"bad magic":    "P3\n2 2\n255\n",
		"zero width":   "P5\n0 2\n255\n",
		"big maxval":   "P5\n2 2\n65535\n",
		"alpha header": "P5\nxx 2\n255\n",
		"truncated":    "P5\n4 4\n255\nab",
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadPNM(strings.NewReader(data)); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestLoadPNMMissing(t *testing.T) {
	if _, err := LoadPNM("/nonexistent/file.pgm"); err == nil {
		t.Fatal("expected error")
	}
}
