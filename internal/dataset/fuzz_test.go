package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadPNM hardens the image parser against malformed files: it
// must either return an error or a well-formed tensor, never panic or
// return out-of-range pixels.
func FuzzReadPNM(f *testing.F) {
	f.Add([]byte("P5\n2 2\n255\nabcd"))
	f.Add([]byte("P6\n1 1\n255\nabc"))
	f.Add([]byte("P5\n# comment\n3 1\n15\nxyz"))
	f.Add([]byte("P5\n0 0\n255\n"))
	f.Add([]byte("garbage"))
	f.Add([]byte("P5\n99999999 99999999\n255\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Guard against adversarial headers demanding giant
		// allocations: cap the nominal pixel count relative to the
		// input size before parsing.
		img, err := ReadPNM(bytes.NewReader(data))
		if err != nil {
			return
		}
		if img.Rank() != 3 {
			t.Fatalf("parsed image has rank %d", img.Rank())
		}
		if img.Min() < 0 || img.Max() > 1 {
			t.Fatalf("pixels outside [0,1]: [%v, %v]", img.Min(), img.Max())
		}
	})
}

// FuzzLoadPNM drives the on-disk entry point — the stat-based size cap
// plus ReadPNM — with arbitrary file contents. Same contract: clean
// error or well-formed tensor, never a panic.
func FuzzLoadPNM(f *testing.F) {
	f.Add([]byte("P5\n2 2\n255\nabcd"))
	f.Add([]byte("P6\n1 1\n255\nabc"))
	f.Add([]byte(""))
	f.Add([]byte("P5"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.pnm")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		img, err := LoadPNM(path)
		if err != nil {
			return
		}
		if img.Rank() != 3 {
			t.Fatalf("parsed image has rank %d", img.Rank())
		}
		if img.Min() < 0 || img.Max() > 1 {
			t.Fatalf("pixels outside [0,1]: [%v, %v]", img.Min(), img.Max())
		}
	})
}

// TestLoadPNMSizeCap proves the disk-size guard: a file whose size
// exceeds the cap is refused without being parsed.
func TestLoadPNMSizeCap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "huge.pnm")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("P5\n2 2\n255\nabcd"); err != nil {
		t.Fatal(err)
	}
	// Sparse-extend past the cap without writing gigabytes.
	if err := f.Truncate(maxPNMFileBytes + 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPNM(path); err == nil {
		t.Fatal("LoadPNM accepted a file beyond the size cap")
	}
}
