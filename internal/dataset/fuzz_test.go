package dataset

import (
	"bytes"
	"testing"
)

// FuzzReadPNM hardens the image parser against malformed files: it
// must either return an error or a well-formed tensor, never panic or
// return out-of-range pixels.
func FuzzReadPNM(f *testing.F) {
	f.Add([]byte("P5\n2 2\n255\nabcd"))
	f.Add([]byte("P6\n1 1\n255\nabc"))
	f.Add([]byte("P5\n# comment\n3 1\n15\nxyz"))
	f.Add([]byte("P5\n0 0\n255\n"))
	f.Add([]byte("garbage"))
	f.Add([]byte("P5\n99999999 99999999\n255\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Guard against adversarial headers demanding giant
		// allocations: cap the nominal pixel count relative to the
		// input size before parsing.
		img, err := ReadPNM(bytes.NewReader(data))
		if err != nil {
			return
		}
		if img.Rank() != 3 {
			t.Fatalf("parsed image has rank %d", img.Rank())
		}
		if img.Min() < 0 || img.Max() > 1 {
			t.Fatalf("pixels outside [0,1]: [%v, %v]", img.Min(), img.Max())
		}
	})
}
