package dataset

import (
	"fmt"
	"math/rand"

	"deepvalidation/internal/tensor"
)

// Dataset is a labelled image corpus with the standard training/test
// partition the paper uses (Section IV-A).
type Dataset struct {
	Name       string
	InC        int
	Size       int
	Classes    int
	ClassNames []string
	TrainX     []*tensor.Tensor
	TrainY     []int
	TestX      []*tensor.Tensor
	TestY      []int
}

// Config sizes a generated dataset. Seed fully determines the content.
type Config struct {
	TrainN int
	TestN  int
	Seed   int64
}

// DefaultConfig returns the CPU-scale dataset size used across the
// experiments.
func DefaultConfig() Config { return Config{TrainN: 3000, TestN: 1000, Seed: 1} }

const (
	splitTrain = 0
	splitTest  = 1
)

// sampleRNG derives an independent random stream for one sample, making
// every image a pure function of (seed, split, index).
func sampleRNG(seed int64, split, index int) *rand.Rand {
	h := uint64(seed)*0x9E3779B97F4A7C15 + uint64(split)*0xBF58476D1CE4E5B9 + uint64(index)*0x94D049BB133111EB
	// splitmix64 finalizer for good bit diffusion.
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return rand.New(rand.NewSource(int64(h)))
}

type sampleGen func(rng *rand.Rand) (*tensor.Tensor, int)

func generate(name string, inC, size, classes int, names []string, cfg Config, gen sampleGen) *Dataset {
	d := &Dataset{Name: name, InC: inC, Size: size, Classes: classes, ClassNames: names}
	for i := 0; i < cfg.TrainN; i++ {
		x, y := gen(sampleRNG(cfg.Seed, splitTrain, i))
		d.TrainX = append(d.TrainX, x)
		d.TrainY = append(d.TrainY, y)
	}
	for i := 0; i < cfg.TestN; i++ {
		x, y := gen(sampleRNG(cfg.Seed, splitTest, i))
		d.TestX = append(d.TestX, x)
		d.TestY = append(d.TestY, y)
	}
	return d
}

// Digits generates the MNIST stand-in: 28×28 greyscale stroke digits on
// a near-black background.
func Digits(cfg Config) *Dataset {
	const size = 28
	names := []string{"0", "1", "2", "3", "4", "5", "6", "7", "8", "9"}
	return generate("digits", 1, size, 10, names, cfg, func(rng *rand.Rand) (*tensor.Tensor, int) {
		label := rng.Intn(10)
		cv := NewCanvas(1, size, size)
		cv.FillBackground([]float64{0.02 * rng.Float64()})
		ink := 0.85 + 0.15*rng.Float64()
		DrawDigit(cv, label, rng, size, []float64{ink})
		cv.AddNoise(rng, 0.015)
		return cv.Finish(), label
	})
}

// objectNames are the ten shape classes of the CIFAR-10 stand-in.
var objectNames = []string{
	"circle", "square", "triangle", "ring", "cross",
	"hstripes", "vstripes", "checker", "diamond", "twin-dots",
}

// Objects generates the CIFAR-10 stand-in: 32×32 color images of ten
// shape classes with randomized colors, placement, and mild clutter.
// Shape determines the class; color varies freely within a mid-range
// band, giving the intra-class variation that makes brightness and
// contrast corner cases meaningful.
func Objects(cfg Config) *Dataset {
	const size = 32
	return generate("objects", 3, size, 10, objectNames, cfg, func(rng *rand.Rand) (*tensor.Tensor, int) {
		label := rng.Intn(10)
		cv := NewCanvas(3, size, size)
		bg := []float64{
			0.10 + 0.30*rng.Float64(),
			0.10 + 0.30*rng.Float64(),
			0.10 + 0.30*rng.Float64(),
		}
		cv.FillBackground(bg)
		cv.AddTexture(rng, 0.05)
		fg := []float64{
			0.45 + 0.45*rng.Float64(),
			0.45 + 0.45*rng.Float64(),
			0.45 + 0.45*rng.Float64(),
		}
		drawObject(cv, label, rng, size, fg, bg)
		cv.AddNoise(rng, 0.02)
		return cv.Finish(), label
	})
}

func drawObject(cv *Canvas, label int, rng *rand.Rand, size int, fg, bg []float64) {
	s := float64(size)
	cx := s/2 + (rng.Float64()-0.5)*0.2*s
	cy := s/2 + (rng.Float64()-0.5)*0.2*s
	r := s * (0.22 + 0.10*rng.Float64())
	switch label {
	case 0: // circle
		cv.Disk(cx, cy, r, fg)
	case 1: // square
		cv.FillRect(cx-r, cy-r, cx+r, cy+r, fg)
	case 2: // triangle
		cv.FillTriangle(
			[2]float64{cx, cy - 1.2*r},
			[2]float64{cx - 1.1*r, cy + 0.9*r},
			[2]float64{cx + 1.1*r, cy + 0.9*r}, fg)
	case 3: // ring
		cv.Disk(cx, cy, r, fg)
		cv.Disk(cx, cy, r*0.55, bg)
	case 4: // cross
		w := r * 0.4
		cv.FillRect(cx-r, cy-w, cx+r, cy+w, fg)
		cv.FillRect(cx-w, cy-r, cx+w, cy+r, fg)
	case 5: // horizontal stripes
		for y := cy - r; y <= cy+r; y += r * 0.55 {
			cv.FillRect(cx-r, y, cx+r, y+r*0.25, fg)
		}
	case 6: // vertical stripes
		for x := cx - r; x <= cx+r; x += r * 0.55 {
			cv.FillRect(x, cy-r, x+r*0.25, cy+r, fg)
		}
	case 7: // checker
		cell := r * 0.6
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if (i+j)%2 == 0 {
					x0 := cx - r + float64(i)*cell
					y0 := cy - r + float64(j)*cell
					cv.FillRect(x0, y0, x0+cell, y0+cell, fg)
				}
			}
		}
	case 8: // diamond
		cv.FillTriangle(
			[2]float64{cx, cy - 1.3*r},
			[2]float64{cx - r, cy},
			[2]float64{cx + r, cy}, fg)
		cv.FillTriangle(
			[2]float64{cx, cy + 1.3*r},
			[2]float64{cx - r, cy},
			[2]float64{cx + r, cy}, fg)
	case 9: // twin dots
		cv.Disk(cx-0.6*r, cy-0.6*r, 0.55*r, fg)
		cv.Disk(cx+0.6*r, cy+0.6*r, 0.55*r, fg)
	default:
		panic(fmt.Sprintf("dataset: object label %d out of range", label))
	}
}

// StreetDigits generates the SVHN stand-in: 32×32 color digits over
// heavily textured, noisy backgrounds with distractor strokes — the
// "noisy dataset without much data preprocessing" of Section IV-A.
func StreetDigits(cfg Config) *Dataset {
	const size = 32
	names := []string{"0", "1", "2", "3", "4", "5", "6", "7", "8", "9"}
	return generate("streetdigits", 3, size, 10, names, cfg, func(rng *rand.Rand) (*tensor.Tensor, int) {
		label := rng.Intn(10)
		cv := NewCanvas(3, size, size)
		base := 0.15 + 0.35*rng.Float64()
		bg := []float64{
			base + 0.15*(rng.Float64()-0.5),
			base + 0.15*(rng.Float64()-0.5),
			base + 0.15*(rng.Float64()-0.5),
		}
		cv.FillBackground(bg)
		cv.AddTexture(rng, 0.12)

		// Digit color contrasts with the background: brighter or darker
		// at random, as house numbers are.
		var ink []float64
		if rng.Float64() < 0.5 {
			ink = []float64{
				minf(base+0.35+0.25*rng.Float64(), 1),
				minf(base+0.35+0.25*rng.Float64(), 1),
				minf(base+0.35+0.25*rng.Float64(), 1),
			}
		} else {
			ink = []float64{
				maxf(base-0.30-0.15*rng.Float64(), 0),
				maxf(base-0.30-0.15*rng.Float64(), 0),
				maxf(base-0.30-0.15*rng.Float64(), 0),
			}
		}

		// Distractor digit fragments at the edges mimic SVHN's cropped
		// neighbours.
		for k := 0; k < 1+rng.Intn(2); k++ {
			st := randomGlyphStyle(rng, size, ink)
			if rng.Float64() < 0.5 {
				st.cx = float64(size) * (0.02 + 0.05*rng.Float64())
			} else {
				st.cx = float64(size) * (0.93 + 0.05*rng.Float64())
			}
			st.scale *= 0.8
			drawGlyphStyled(cv, rng.Intn(10), st)
		}

		DrawDigit(cv, label, rng, size, ink)
		cv.AddNoise(rng, 0.07)
		return cv.Finish(), label
	})
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// ByName returns the generator for one of the three datasets, making
// CLI tools dataset-agnostic.
func ByName(name string, cfg Config) (*Dataset, error) {
	switch name {
	case "digits":
		return Digits(cfg), nil
	case "objects":
		return Objects(cfg), nil
	case "streetdigits":
		return StreetDigits(cfg), nil
	default:
		return nil, fmt.Errorf("dataset: unknown dataset %q (want digits, objects, or streetdigits)", name)
	}
}

// Names lists the available dataset names.
func Names() []string { return []string{"digits", "objects", "streetdigits"} }
