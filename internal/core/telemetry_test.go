package core

import (
	"math/rand"
	"path/filepath"
	"strconv"
	"testing"

	"deepvalidation/internal/telemetry"
)

func TestScoreTelemetry(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	reg := telemetry.New()
	v.SetTelemetry(reg)

	const n = 10
	for i := 0; i < n; i++ {
		v.Score(net, xs[i])
	}
	s := reg.Snapshot()
	lat := s.Histograms[MetricScoreLatency]
	if lat.Count != n {
		t.Errorf("score latency count = %d, want %d", lat.Count, n)
	}
	if lat.P50 <= 0 || lat.P99 < lat.P50 {
		t.Errorf("latency quantiles implausible: p50=%v p99=%v", lat.P50, lat.P99)
	}
	if s.Histograms[MetricJointDiscrepancy].Count != n {
		t.Errorf("joint discrepancy count = %d, want %d", s.Histograms[MetricJointDiscrepancy].Count, n)
	}
	for _, l := range v.LayerIdx {
		name := telemetry.Label(MetricLayerDiscrepancy, "layer", strconv.Itoa(l))
		if got := s.Histograms[name].Count; got != n {
			t.Errorf("layer %d discrepancy count = %d, want %d", l, got, n)
		}
	}

	// Detach: no further observations.
	v.SetTelemetry(nil)
	v.Score(net, xs[0])
	if got := reg.Snapshot().Histograms[MetricScoreLatency].Count; got != n {
		t.Errorf("detached Score still observed: count = %d, want %d", got, n)
	}
}

func TestScoreBatchTelemetryUnderWorkers(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	reg := telemetry.New()
	v.SetTelemetry(reg)
	v.ScoreBatchWorkers(net, xs[:40], 4)
	if got := reg.Snapshot().Histograms[MetricScoreLatency].Count; got != 40 {
		t.Errorf("parallel batch observed %d scores, want 40", got)
	}
}

func TestFitTelemetryStages(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	reg := telemetry.New()
	v, err := Fit(net, xs, ys, Config{Nu: 0.1, MaxPerClass: 60, MaxFeatures: 64, Workers: 2, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Histograms[MetricFitTotal].Count; got != 1 {
		t.Errorf("fit total spans = %d, want 1", got)
	}
	if got := s.Histograms[MetricFitCollect].Count; got != 1 {
		t.Errorf("collect spans = %d, want 1", got)
	}
	if got := s.Histograms[MetricFitForward].Count; got != int64(len(xs)) {
		t.Errorf("forward observations = %d, want %d (one per sample)", got, len(xs))
	}
	wantFits := int64(len(v.LayerIdx) * v.Classes)
	if got := s.Histograms[MetricFitSVM].Count; got != wantFits {
		t.Errorf("svm fit observations = %d, want %d", got, wantFits)
	}
	if got := s.Counters[MetricFitSamples]; got != int64(len(xs)) {
		t.Errorf("fit samples counter = %d, want %d", got, len(xs))
	}
	kept := s.Counters[MetricFitKept]
	if kept <= 0 || kept > int64(len(xs)) {
		t.Errorf("fit kept counter = %d, want in (0, %d]", kept, len(xs))
	}
	// Reduce observations: one per kept (correctly classified) sample.
	if got := s.Histograms[MetricFitReduce].Count; got != kept {
		t.Errorf("reduce observations = %d, want %d (one per kept sample)", got, kept)
	}
}

func TestMonitorTelemetry(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	m, err := NewMonitor(net, v, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	m.SetTelemetry(reg)

	rng := rand.New(rand.NewSource(71))
	cleanX, _ := toyProblem(rng, 30)
	eps := m.CalibrateEpsilon(cleanX, 0.1)
	if got := reg.Snapshot().Gauges[MetricEpsilon]; got != eps {
		t.Errorf("epsilon gauge = %v, want %v", got, eps)
	}

	for _, x := range cleanX[:10] {
		m.Check(x)
	}
	m.CheckBatch(cleanX[10:])

	s := reg.Snapshot()
	if got := s.Counters[MetricChecked]; got != int64(len(cleanX)) {
		t.Errorf("checked counter = %d, want %d", got, len(cleanX))
	}
	checked, flagged, _ := m.Stats()
	if int64(checked) != s.Counters[MetricChecked] || int64(flagged) != s.Counters[MetricFlagged] {
		t.Errorf("telemetry (%d, %d) disagrees with Stats (%d, %d)",
			s.Counters[MetricChecked], s.Counters[MetricFlagged], checked, flagged)
	}
	// Per-class counters partition the totals.
	var classSum int64
	for k := 0; k < v.Classes; k++ {
		classSum += s.Counters[telemetry.Label(MetricClassChecked, "class", strconv.Itoa(k))]
	}
	if classSum != s.Counters[MetricChecked] {
		t.Errorf("per-class checked sums to %d, want %d", classSum, s.Counters[MetricChecked])
	}
	// Verdict latency: one observation per verdict, including the
	// amortized batch observations.
	if got := s.Histograms[MetricVerdictLatency].Count; got != int64(len(cleanX)) {
		t.Errorf("verdict latency count = %d, want %d", got, len(cleanX))
	}
	// Monitor wiring also instruments the validator's score path.
	if got := s.Histograms[MetricScoreLatency].Count; got < int64(len(cleanX)) {
		t.Errorf("score latency count = %d, want ≥ %d", got, len(cleanX))
	}

	// SetEpsilon keeps the gauge current.
	m.SetEpsilon(1.5)
	if got := reg.Snapshot().Gauges[MetricEpsilon]; got != 1.5 {
		t.Errorf("epsilon gauge after SetEpsilon = %v, want 1.5", got)
	}
}

// TestMonitorStatsPartialWindow pins the documented semantics of
// recentAlarmRate before the 50-verdict window fills: the rate is
// computed over only the verdicts seen so far.
func TestMonitorStatsPartialWindow(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	m, err := NewMonitor(net, v, -1e9) // ε below every score: flag everything
	if err != nil {
		t.Fatal(err)
	}
	d := m.StatsDetail()
	if d.RecentWindow != 50 || d.RecentFill != 0 || d.RecentAlarmRate != 0 {
		t.Fatalf("fresh monitor detail = %+v", d)
	}

	const n = 7 // well below the 50-slot window
	for i := 0; i < n; i++ {
		m.Check(xs[i])
	}
	d = m.StatsDetail()
	if d.RecentFill != n {
		t.Errorf("recent fill = %d, want %d", d.RecentFill, n)
	}
	if d.RecentAlarmRate != 1 {
		t.Errorf("partial-window alarm rate = %v, want 1 (every check flagged, rate over %d not %d)",
			d.RecentAlarmRate, n, d.RecentWindow)
	}
	if _, _, rate := m.Stats(); rate != 1 {
		t.Errorf("Stats alarm rate = %v, want 1 over the partial window", rate)
	}

	// Accept everything from here on: the window mixes 7 alarms with
	// accepts, still partially filled.
	m.SetEpsilon(1e9)
	for i := 0; i < n; i++ {
		m.Check(xs[n+i])
	}
	d = m.StatsDetail()
	if d.RecentFill != 2*n {
		t.Errorf("recent fill = %d, want %d", d.RecentFill, 2*n)
	}
	if d.RecentAlarmRate != 0.5 {
		t.Errorf("mixed partial-window rate = %v, want 0.5", d.RecentAlarmRate)
	}
}

func TestMonitorStatsDetailPerClass(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	m, err := NewMonitor(net, v, -1e9) // flag everything
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	m.CheckBatch(xs[:n])
	d := m.StatsDetail()
	if len(d.PerClass) != v.Classes {
		t.Fatalf("per-class entries = %d, want %d", len(d.PerClass), v.Classes)
	}
	sumChecked, sumFlagged := 0, 0
	for _, c := range d.PerClass {
		sumChecked += c.Checked
		sumFlagged += c.Flagged
	}
	if sumChecked != d.Checked || sumFlagged != d.Flagged {
		t.Errorf("per-class sums (%d, %d) != totals (%d, %d)", sumChecked, sumFlagged, d.Checked, d.Flagged)
	}
	if d.Checked != n || d.Flagged != n {
		t.Errorf("totals = (%d, %d), want (%d, %d) with ε = -1e9", d.Checked, d.Flagged, n, n)
	}
	// The toy model is near-perfect, so every class must have seen
	// predictions — the breakdown is genuinely per-class, not lumped.
	for k, c := range d.PerClass {
		if c.Checked == 0 {
			t.Errorf("class %d saw no predictions; labels %v", k, ys[:5])
		}
	}
	// Window saturated past 50: fill caps at the window size.
	if d.RecentFill != d.RecentWindow {
		t.Errorf("fill = %d, want %d after %d checks", d.RecentFill, d.RecentWindow, n)
	}
}

// TestValidatorCloneDetachesTelemetry pins Clone's contract: shared
// fitted components, independent telemetry.
func TestValidatorCloneDetachesTelemetry(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	reg := telemetry.New()
	v.SetTelemetry(reg)
	c := v.Clone()
	c.Score(net, xs[0])
	if got := reg.Snapshot().Histograms[MetricScoreLatency].Count; got != 0 {
		t.Errorf("clone leaked %d observations into the parent registry", got)
	}
	if len(c.SVMs) != len(v.SVMs) || c.Classes != v.Classes {
		t.Error("clone lost fitted components")
	}
}

// TestGobRoundTripDropsTelemetry proves the unexported telemetry slot
// survives (as detached) a save/load cycle.
func TestGobRoundTripDropsTelemetry(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	v.SetTelemetry(telemetry.New())
	path := filepath.Join(t.TempDir(), "val.gob")
	if err := v.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadValidator(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	loaded.SetTelemetry(reg)
	loaded.Score(net, xs[0])
	if got := reg.Snapshot().Histograms[MetricScoreLatency].Count; got != 1 {
		t.Errorf("reloaded validator observed %d scores, want 1", got)
	}
	_ = ys
}
