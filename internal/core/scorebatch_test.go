package core

import (
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
)

// Allocation-budget and scratch-aliasing guards for the batched scoring
// hot path, plus the artifact-compatibility battery for the SVNorms
// field introduced with the norms-expansion decision path.

// TestScoreSteadyStateAllocBudget pins the per-sample allocation budget
// of a warmed-up Score. The Result itself owns one fresh Layer slice
// (callers retain Results, so it cannot alias scratch); everything else
// — forward-pass tensors, reduced features, SVM rows — must come from
// the per-worker arena. The budget is deliberately a hard small number:
// a regression that reintroduces per-call buffers jumps it by orders of
// magnitude.
func TestScoreSteadyStateAllocBudget(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race-detector instrumentation allocates; budgets apply to plain builds")
	}
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	v.Score(net, xs[0]) // warm the scratch pool
	allocs := testing.AllocsPerRun(30, func() {
		v.Score(net, xs[0])
	})
	// Observed: 2 allocs/op (the Result.Layer slice plus one pool
	// round-trip interface box). Allow slack for runtime variation but
	// fail hard before the pre-diet regime (hundreds per score).
	if allocs > 8 {
		t.Errorf("steady-state Score allocates %.1f/op, budget is 8", allocs)
	}
}

// TestScoreBatchSteadyStateAllocBudget pins the per-batch budget of
// ScoreBatchWorkers at workers=1: linear in the batch size with the
// same tiny per-sample constant, plus the Results slice.
func TestScoreBatchSteadyStateAllocBudget(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race-detector instrumentation allocates; budgets apply to plain builds")
	}
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	batch := xs[:8]
	v.ScoreBatchWorkers(net, batch, 1) // warm the scratch pool
	allocs := testing.AllocsPerRun(20, func() {
		v.ScoreBatchWorkers(net, batch, 1)
	})
	budget := float64(8*len(batch) + 8)
	if allocs > budget {
		t.Errorf("steady-state ScoreBatch(8) allocates %.1f/op, budget is %.0f", allocs, budget)
	}
}

// TestConcurrentScoresBitEqualSequential is the scratch-aliasing guard:
// many goroutines scoring through the shared pool concurrently (and
// concurrent ScoreBatchWorkers calls on top) must produce verdicts
// bit-identical to a single-threaded pass. Run under -race (the core
// package is part of the race gate) this also proves no arena is ever
// visible to two workers at once.
func TestConcurrentScoresBitEqualSequential(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	samples := xs[:12]

	want := make([]Result, len(samples))
	for i, x := range samples {
		want[i] = v.Score(net, x)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*len(samples))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				// Half the goroutines drive whole batches...
				rs := v.ScoreBatchWorkers(net, samples, 3)
				for i, r := range rs {
					if !resultBitsEqual(r, want[i]) {
						errs <- "batch verdict diverged under concurrency"
					}
				}
				return
			}
			// ...the other half hammer single scores in shuffled order.
			rng := rand.New(rand.NewSource(int64(g)))
			for _, i := range rng.Perm(len(samples)) {
				if r := v.Score(net, samples[i]); !resultBitsEqual(r, want[i]) {
					errs <- "single verdict diverged under concurrency"
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func resultBitsEqual(a, b Result) bool {
	if a.Label != b.Label || a.NonFinite != b.NonFinite ||
		math.Float64bits(a.Confidence) != math.Float64bits(b.Confidence) ||
		math.Float64bits(a.Joint) != math.Float64bits(b.Joint) ||
		len(a.Layer) != len(b.Layer) {
		return false
	}
	for i := range a.Layer {
		if math.Float64bits(a.Layer[i]) != math.Float64bits(b.Layer[i]) {
			return false
		}
	}
	return true
}

// TestSVNormsSurviveSaveLoad: a freshly fitted validator carries
// trained-in support-vector norms, and they round-trip through the
// .dvart container bit-for-bit.
func TestSVNormsSurviveSaveLoad(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	for p, row := range v.SVMs {
		for c, m := range row {
			if len(m.SVNorms) != len(m.Support) {
				t.Fatalf("fitted SVM [%d][%d] has %d norms for %d SVs", p, c, len(m.SVNorms), len(m.Support))
			}
		}
	}
	path := filepath.Join(t.TempDir(), "v.dvart")
	if err := v.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadValidator(path)
	if err != nil {
		t.Fatal(err)
	}
	for p, row := range v.SVMs {
		for c, m := range row {
			lm := loaded.SVMs[p][c]
			if len(lm.SVNorms) != len(m.SVNorms) {
				t.Fatalf("SVM [%d][%d]: %d norms after round-trip, want %d", p, c, len(lm.SVNorms), len(m.SVNorms))
			}
			for i := range m.SVNorms {
				if math.Float64bits(lm.SVNorms[i]) != math.Float64bits(m.SVNorms[i]) {
					t.Fatalf("SVM [%d][%d] norm %d moved across save/load", p, c, i)
				}
			}
		}
	}
}

// TestLegacyGoldenArtifactRecomputesNorms loads the committed
// pre-SVNorms golden validator: the decode path must materialize the
// norms eagerly, and they must equal a by-hand recomputation
// bit-for-bit.
func TestLegacyGoldenArtifactRecomputesNorms(t *testing.T) {
	v, err := LoadValidator("../../artifacts/golden/validator.dvart")
	if err != nil {
		t.Fatal(err)
	}
	for p, row := range v.SVMs {
		for c, m := range row {
			if len(m.SVNorms) != len(m.Support) {
				t.Fatalf("legacy SVM [%d][%d]: decode left %d norms for %d SVs", p, c, len(m.SVNorms), len(m.Support))
			}
			for i, sv := range m.Support {
				s := 0.0
				for _, x := range sv {
					s += x * x
				}
				if math.Float64bits(s) != math.Float64bits(m.SVNorms[i]) {
					t.Fatalf("legacy SVM [%d][%d] norm %d: %x, recompute %x", p, c, i, math.Float64bits(m.SVNorms[i]), math.Float64bits(s))
				}
			}
		}
	}
}

// TestGoldenNormsArtifactAgreesWithLegacy pins the upgraded golden
// (validator_norms.dvart, written by Save after a legacy load): its
// persisted norms and its decisions must be bit-identical to the
// legacy artifact's — upgrading an artifact must never move a verdict.
func TestGoldenNormsArtifactAgreesWithLegacy(t *testing.T) {
	legacy, err := LoadValidator("../../artifacts/golden/validator.dvart")
	if err != nil {
		t.Fatal(err)
	}
	upgraded, err := LoadValidator("../../artifacts/golden/validator_norms.dvart")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for p, row := range legacy.SVMs {
		for c, lm := range row {
			um := upgraded.SVMs[p][c]
			if len(um.SVNorms) != len(lm.SVNorms) {
				t.Fatalf("SVM [%d][%d]: norms count %d vs %d", p, c, len(um.SVNorms), len(lm.SVNorms))
			}
			for i := range lm.SVNorms {
				if math.Float64bits(um.SVNorms[i]) != math.Float64bits(lm.SVNorms[i]) {
					t.Fatalf("SVM [%d][%d] norm %d differs between artifacts", p, c, i)
				}
			}
			// Verdicts on random probes of the right dimensionality.
			xs := make([][]float64, 4)
			for i := range xs {
				xs[i] = make([]float64, lm.Dim)
				for j := range xs[i] {
					xs[i][j] = rng.NormFloat64()
				}
			}
			lv := lm.DecisionBatch(xs)
			uv := um.DecisionBatch(xs)
			for i := range lv {
				if math.Float64bits(lv[i]) != math.Float64bits(uv[i]) {
					t.Fatalf("SVM [%d][%d] probe %d: upgraded artifact moved the verdict", p, c, i)
				}
			}
		}
	}
}

// TestCheckCompatRejectsDimMismatch: a validator whose reducer/SVM
// dimensionalities disagree with the network's tap shapes must be
// rejected before it can panic inside a decision call.
func TestCheckCompatRejectsDimMismatch(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	if err := CheckCompat(net, v); err != nil {
		t.Fatalf("compatible pair rejected: %v", err)
	}
	broken := v.Clone()
	for _, m := range broken.SVMs[0] {
		m.Dim++ // simulates a validator fitted for a wider layer
	}
	if err := CheckCompat(net, broken); err == nil {
		t.Fatal("CheckCompat accepted a validator with mismatched feature dims")
	}
}
