package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"deepvalidation/internal/metrics"
	"deepvalidation/internal/nn"
	"deepvalidation/internal/tensor"
)

// Monitor wraps a classifier and its fitted validator into the runtime
// fail-safe component the paper motivates: every prediction is
// validated, and predictions whose joint discrepancy exceeds ε are
// flagged so the surrounding system can "call for human intervention"
// (Section VI). Monitor is safe for concurrent use.
type Monitor struct {
	net     *nn.Network
	val     *Validator
	epsilon float64

	mu           sync.Mutex
	workers      int
	checked      int
	flagged      int
	classChecked []int // indexed by predicted class
	classFlagged []int
	recent       []bool // ring buffer of recent validity flags
	next         int
	filled       bool

	// tel holds the attached telemetry handles (nil when detached);
	// read atomically so Check never takes the stats lock for it.
	tel atomic.Pointer[monTelemetry]

	// quarHook, when set, receives every quarantined verdict. It is
	// consulted only on the quarantine branch, so the valid-verdict hot
	// path never pays for it.
	quarHook atomic.Pointer[QuarantineHook]
}

// QuarantineHook observes one quarantined verdict together with its
// raw scoring result (whose per-layer values may be non-finite — that
// is why it was quarantined). Hooks run on the checking goroutine,
// outside the monitor's stats lock, and must be safe for concurrent
// calls.
type QuarantineHook func(v Verdict, res Result)

// SetQuarantineHook installs (or, with nil, removes) the quarantine
// observer. The serving layer uses it to emit wide events for
// numerics-rejected verdicts.
func (m *Monitor) SetQuarantineHook(h QuarantineHook) {
	if h == nil {
		m.quarHook.Store(nil)
		return
	}
	m.quarHook.Store(&h)
}

// recentWindow sizes the sliding alarm-rate window.
const recentWindow = 50

// Verdict is the outcome of one monitored prediction.
type Verdict struct {
	// Label and Confidence are the classifier's output.
	Label      int
	Confidence float64
	// Discrepancy is the joint discrepancy d of Algorithm 2. For a
	// quarantined verdict it covers only the finite layer terms, so it
	// stays representable everywhere (JSON cannot carry NaN).
	Discrepancy float64
	// Valid is true when d ≤ ε: the prediction may be trusted. A
	// quarantined verdict is never valid.
	Valid bool
	// Quarantined is true when scoring hit non-finite numerics (an
	// overflowing activation, a corrupt weight): the discrepancy is not
	// a trustworthy distance, so the sample is rejected outright
	// instead of being compared against ε. Counted separately in
	// telemetry (dv_quarantined_total) so operators can tell numeric
	// corruption apart from detected corner cases.
	Quarantined bool
}

// ClassStats is the per-predicted-class slice of a monitor's lifetime
// counts.
type ClassStats struct {
	// Checked counts verdicts whose predicted label was this class;
	// Flagged counts how many of those exceeded ε.
	Checked, Flagged int
}

// StatsSnapshot is the full statistics surface of a monitor.
type StatsSnapshot struct {
	// Checked and Flagged are lifetime totals.
	Checked, Flagged int
	// RecentAlarmRate is the flagged fraction over the RecentFill most
	// recent verdicts. Before RecentWindow verdicts have been seen the
	// window is only partially filled, so the rate is computed over
	// RecentFill < RecentWindow samples and is correspondingly noisy —
	// a supervisor should gate on RecentFill before alerting.
	RecentAlarmRate float64
	// RecentWindow is the window capacity (currently 50); RecentFill
	// is how many of its slots hold real verdicts.
	RecentWindow, RecentFill int
	// PerClass breaks Checked/Flagged down by *predicted* class. The
	// per-class flag rate PerClass[k].Flagged/PerClass[k].Checked
	// localizes drift: a single class flagging hard usually means a
	// class-specific environmental change rather than global drift.
	PerClass []ClassStats
}

// NewMonitor assembles a runtime monitor with detection threshold
// epsilon.
func NewMonitor(net *nn.Network, val *Validator, epsilon float64) (*Monitor, error) {
	if net == nil || val == nil {
		return nil, fmt.Errorf("core: monitor needs both a network and a validator")
	}
	if net.Classes != val.Classes {
		return nil, fmt.Errorf("core: network has %d classes but validator was fitted for %d", net.Classes, val.Classes)
	}
	for _, l := range val.LayerIdx {
		if l >= net.NumLayers()-1 {
			return nil, fmt.Errorf("core: validator probes layer %d but network has %d hidden layers", l, net.NumLayers()-1)
		}
	}
	return &Monitor{
		net: net, val: val, epsilon: epsilon,
		recent:       make([]bool, recentWindow),
		classChecked: make([]int, val.Classes),
		classFlagged: make([]int, val.Classes),
	}, nil
}

// SetWorkers bounds the worker pool CheckBatch and CalibrateEpsilon
// use (0 = GOMAXPROCS, 1 = sequential). Single-sample Check always runs
// on the calling goroutine.
func (m *Monitor) SetWorkers(n int) {
	m.mu.Lock()
	m.workers = n
	m.mu.Unlock()
}

// Workers returns the configured batch worker bound.
func (m *Monitor) Workers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.workers
}

// CalibrateEpsilon sets ε so that at most the given fraction of the
// provided clean samples is flagged (the false positive rate budget of
// Section IV-D3), and returns the chosen value.
func (m *Monitor) CalibrateEpsilon(clean []*tensor.Tensor, fpr float64) float64 {
	scores := JointScores(m.val.ScoreBatchWorkers(m.net, clean, m.Workers()))
	eps := metrics.ThresholdForFPR(scores, fpr)
	m.SetEpsilon(eps)
	return eps
}

// Epsilon returns the current detection threshold.
func (m *Monitor) Epsilon() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epsilon
}

// SetEpsilon overrides the detection threshold.
func (m *Monitor) SetEpsilon(eps float64) {
	m.mu.Lock()
	m.epsilon = eps
	m.mu.Unlock()
	if t := m.tel.Load(); t != nil {
		t.epsilon.Set(eps)
	}
}

// record folds one verdict into the lifetime statistics. Callers hold
// m.mu.
func (m *Monitor) record(label int, valid bool) {
	m.checked++
	m.classChecked[label]++
	if !valid {
		m.flagged++
		m.classFlagged[label]++
	}
	m.recent[m.next] = !valid
	m.next = (m.next + 1) % len(m.recent)
	if m.next == 0 {
		m.filled = true
	}
}

// Check classifies x and validates the prediction.
func (m *Monitor) Check(x *tensor.Tensor) Verdict {
	v, _ := m.CheckDetailed(x, nil)
	return v
}

// CheckDetailed is Check returning the underlying scoring Result too —
// the per-layer discrepancies the Verdict's joint score collapses —
// plus optional stage timing into tm (nil adds no clock reads). The
// verdict and all statistics updates are identical to Check.
func (m *Monitor) CheckDetailed(x *tensor.Tensor, tm *ScoreTimings) (Verdict, Result) {
	tel := m.tel.Load()
	var t0 time.Time
	if tel != nil {
		t0 = time.Now()
	}
	res := m.val.ScoreTimed(m.net, x, tm)
	m.mu.Lock()
	valid := !res.NonFinite && res.Joint < m.epsilon
	m.record(res.Label, valid)
	m.mu.Unlock()
	if tel != nil {
		tel.verdictLatency.ObserveSince(t0)
		tel.observe(res.Label, valid, res.NonFinite)
	}
	v := Verdict{
		Label:       res.Label,
		Confidence:  res.Confidence,
		Discrepancy: res.Joint,
		Valid:       valid,
		Quarantined: res.NonFinite,
	}
	if res.NonFinite {
		if hp := m.quarHook.Load(); hp != nil {
			(*hp)(v, res)
		}
	}
	return v, res
}

// CheckBatch classifies and validates many samples, returning verdicts
// in input order. Scoring fans across the monitor's worker pool; the
// lifetime statistics are then updated once, in input order, so Stats
// after CheckBatch is identical to a sequential sequence of Check
// calls. With telemetry attached, each verdict observes the batch's
// amortized per-sample latency (elapsed / batch size) into
// MetricVerdictLatency; per-sample score latency comes from the
// validator's own MetricScoreLatency histogram.
func (m *Monitor) CheckBatch(xs []*tensor.Tensor) []Verdict {
	out, _ := m.CheckBatchDetailed(xs, nil)
	return out
}

// CheckBatchDetailed is CheckBatch returning the underlying scoring
// Results as well, with optional per-sample stage timing (tms may be
// nil, short, or hold nil entries). Verdicts and statistics updates
// are identical to CheckBatch at every worker count.
func (m *Monitor) CheckBatchDetailed(xs []*tensor.Tensor, tms []*ScoreTimings) ([]Verdict, []Result) {
	tel := m.tel.Load()
	var t0 time.Time
	if tel != nil {
		t0 = time.Now()
	}
	results := m.val.ScoreBatchTimedWorkers(m.net, xs, tms, m.Workers())
	out := make([]Verdict, len(results))
	m.mu.Lock()
	for i, res := range results {
		valid := !res.NonFinite && res.Joint < m.epsilon
		m.record(res.Label, valid)
		out[i] = Verdict{
			Label:       res.Label,
			Confidence:  res.Confidence,
			Discrepancy: res.Joint,
			Valid:       valid,
			Quarantined: res.NonFinite,
		}
	}
	m.mu.Unlock()
	if tel != nil && len(out) > 0 {
		perSample := time.Since(t0).Seconds() / float64(len(out))
		for _, v := range out {
			tel.verdictLatency.Observe(perSample)
			tel.observe(v.Label, v.Valid, v.Quarantined)
		}
	}
	if hp := m.quarHook.Load(); hp != nil {
		for i, v := range out {
			if v.Quarantined {
				(*hp)(v, results[i])
			}
		}
	}
	return out, results
}

// Stats reports lifetime counts and the alarm rate over the most recent
// window — the signal a fail-safe supervisor watches for sustained
// environmental drift. Until recentWindow (50) verdicts have been
// seen, recentAlarmRate is computed over only the verdicts seen so far
// (a partially filled window); see StatsDetail's RecentFill to gate on
// warm-up. With zero checks the rate is 0.
func (m *Monitor) Stats() (checked, flagged int, recentAlarmRate float64) {
	s := m.StatsDetail()
	return s.Checked, s.Flagged, s.RecentAlarmRate
}

// StatsDetail reports the full statistics surface: lifetime totals,
// the recent-window alarm rate with its fill level, and per-class
// checked/flagged breakdowns.
func (m *Monitor) StatsDetail() StatsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.next
	if m.filled {
		n = len(m.recent)
	}
	alarms := 0
	for i := 0; i < n; i++ {
		if m.recent[i] {
			alarms++
		}
	}
	rate := 0.0
	if n > 0 {
		rate = float64(alarms) / float64(n)
	}
	per := make([]ClassStats, len(m.classChecked))
	for k := range per {
		per[k] = ClassStats{Checked: m.classChecked[k], Flagged: m.classFlagged[k]}
	}
	return StatsSnapshot{
		Checked:         m.checked,
		Flagged:         m.flagged,
		RecentAlarmRate: rate,
		RecentWindow:    len(m.recent),
		RecentFill:      n,
		PerClass:        per,
	}
}
