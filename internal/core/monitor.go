package core

import (
	"fmt"
	"sync"

	"deepvalidation/internal/metrics"
	"deepvalidation/internal/nn"
	"deepvalidation/internal/tensor"
)

// Monitor wraps a classifier and its fitted validator into the runtime
// fail-safe component the paper motivates: every prediction is
// validated, and predictions whose joint discrepancy exceeds ε are
// flagged so the surrounding system can "call for human intervention"
// (Section VI). Monitor is safe for concurrent use.
type Monitor struct {
	net     *nn.Network
	val     *Validator
	epsilon float64

	mu      sync.Mutex
	workers int
	checked int
	flagged int
	recent  []bool // ring buffer of recent validity flags
	next    int
	filled  bool
}

// recentWindow sizes the sliding alarm-rate window.
const recentWindow = 50

// Verdict is the outcome of one monitored prediction.
type Verdict struct {
	// Label and Confidence are the classifier's output.
	Label      int
	Confidence float64
	// Discrepancy is the joint discrepancy d of Algorithm 2.
	Discrepancy float64
	// Valid is true when d ≤ ε: the prediction may be trusted.
	Valid bool
}

// NewMonitor assembles a runtime monitor with detection threshold
// epsilon.
func NewMonitor(net *nn.Network, val *Validator, epsilon float64) (*Monitor, error) {
	if net == nil || val == nil {
		return nil, fmt.Errorf("core: monitor needs both a network and a validator")
	}
	if net.Classes != val.Classes {
		return nil, fmt.Errorf("core: network has %d classes but validator was fitted for %d", net.Classes, val.Classes)
	}
	for _, l := range val.LayerIdx {
		if l >= net.NumLayers()-1 {
			return nil, fmt.Errorf("core: validator probes layer %d but network has %d hidden layers", l, net.NumLayers()-1)
		}
	}
	return &Monitor{net: net, val: val, epsilon: epsilon, recent: make([]bool, recentWindow)}, nil
}

// SetWorkers bounds the worker pool CheckBatch and CalibrateEpsilon
// use (0 = GOMAXPROCS, 1 = sequential). Single-sample Check always runs
// on the calling goroutine.
func (m *Monitor) SetWorkers(n int) {
	m.mu.Lock()
	m.workers = n
	m.mu.Unlock()
}

// Workers returns the configured batch worker bound.
func (m *Monitor) Workers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.workers
}

// CalibrateEpsilon sets ε so that at most the given fraction of the
// provided clean samples is flagged (the false positive rate budget of
// Section IV-D3), and returns the chosen value.
func (m *Monitor) CalibrateEpsilon(clean []*tensor.Tensor, fpr float64) float64 {
	scores := JointScores(m.val.ScoreBatchWorkers(m.net, clean, m.Workers()))
	eps := metrics.ThresholdForFPR(scores, fpr)
	m.mu.Lock()
	m.epsilon = eps
	m.mu.Unlock()
	return eps
}

// Epsilon returns the current detection threshold.
func (m *Monitor) Epsilon() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epsilon
}

// SetEpsilon overrides the detection threshold.
func (m *Monitor) SetEpsilon(eps float64) {
	m.mu.Lock()
	m.epsilon = eps
	m.mu.Unlock()
}

// Check classifies x and validates the prediction.
func (m *Monitor) Check(x *tensor.Tensor) Verdict {
	res := m.val.Score(m.net, x)
	m.mu.Lock()
	valid := res.Joint < m.epsilon
	m.checked++
	if !valid {
		m.flagged++
	}
	m.recent[m.next] = !valid
	m.next = (m.next + 1) % len(m.recent)
	if m.next == 0 {
		m.filled = true
	}
	m.mu.Unlock()
	return Verdict{
		Label:       res.Label,
		Confidence:  res.Confidence,
		Discrepancy: res.Joint,
		Valid:       valid,
	}
}

// CheckBatch classifies and validates many samples, returning verdicts
// in input order. Scoring fans across the monitor's worker pool; the
// lifetime statistics are then updated once, in input order, so Stats
// after CheckBatch is identical to a sequential sequence of Check
// calls.
func (m *Monitor) CheckBatch(xs []*tensor.Tensor) []Verdict {
	results := m.val.ScoreBatchWorkers(m.net, xs, m.Workers())
	out := make([]Verdict, len(results))
	m.mu.Lock()
	for i, res := range results {
		valid := res.Joint < m.epsilon
		m.checked++
		if !valid {
			m.flagged++
		}
		m.recent[m.next] = !valid
		m.next = (m.next + 1) % len(m.recent)
		if m.next == 0 {
			m.filled = true
		}
		out[i] = Verdict{
			Label:       res.Label,
			Confidence:  res.Confidence,
			Discrepancy: res.Joint,
			Valid:       valid,
		}
	}
	m.mu.Unlock()
	return out
}

// Stats reports lifetime counts and the alarm rate over the most recent
// window — the signal a fail-safe supervisor watches for sustained
// environmental drift.
func (m *Monitor) Stats() (checked, flagged int, recentAlarmRate float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.next
	if m.filled {
		n = len(m.recent)
	}
	alarms := 0
	for i := 0; i < n; i++ {
		if m.recent[i] {
			alarms++
		}
	}
	rate := 0.0
	if n > 0 {
		rate = float64(alarms) / float64(n)
	}
	return m.checked, m.flagged, rate
}
