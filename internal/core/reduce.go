package core

import (
	"deepvalidation/internal/tensor"
)

// FeatureReducer maps a layer activation to the feature vector its
// one-class SVMs consume. Early convolutional taps are high-dimensional
// (e.g. 8×28×28); average-pooling the spatial grid caps the kernel cost
// while preserving the spatial-energy signature the validators key on.
// The reducer is fitted per layer and serialized with the validator so
// training and detection apply the identical mapping.
type FeatureReducer struct {
	// Pool is the spatial pooling window (1 = no pooling). It only
	// applies to rank-3 (C,H,W) activations; flat activations pass
	// through.
	Pool int
}

// fitReducer picks the smallest pooling window that brings a (C,H,W)
// activation of the given shape under maxFeatures.
func fitReducer(shape []int, maxFeatures int) FeatureReducer {
	if len(shape) != 3 || maxFeatures <= 0 {
		return FeatureReducer{Pool: 1}
	}
	c, h, w := shape[0], shape[1], shape[2]
	pool := 1
	for c*ceilDiv(h, pool)*ceilDiv(w, pool) > maxFeatures && pool < h && pool < w {
		pool++
	}
	return FeatureReducer{Pool: pool}
}

// Reduce converts an activation into the SVM feature vector.
func (r FeatureReducer) Reduce(t *tensor.Tensor) []float64 {
	return r.ReduceInto(nil, t)
}

// ReduceInto is Reduce appending into dst[:0], reusing its capacity —
// the scoring hot path calls it with a per-worker scratch buffer so
// steady-state reduction allocates nothing. The arithmetic is identical
// to Reduce; it returns the (possibly regrown) buffer.
func (r FeatureReducer) ReduceInto(dst []float64, t *tensor.Tensor) []float64 {
	if t.Rank() != 3 || r.Pool <= 1 {
		out := growFloats(dst, t.Len())
		copy(out, t.Data)
		return out
	}
	c, h, w := t.Shape[0], t.Shape[1], t.Shape[2]
	oh, ow := ceilDiv(h, r.Pool), ceilDiv(w, r.Pool)
	out := growFloats(dst, c*oh*ow)
	for ch := 0; ch < c; ch++ {
		plane := t.Data[ch*h*w : (ch+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			y0, y1 := oy*r.Pool, (oy+1)*r.Pool
			if y1 > h {
				y1 = h
			}
			for ox := 0; ox < ow; ox++ {
				x0, x1 := ox*r.Pool, (ox+1)*r.Pool
				if x1 > w {
					x1 = w
				}
				s := 0.0
				for y := y0; y < y1; y++ {
					row := plane[y*w+x0 : y*w+x1]
					for _, v := range row {
						s += v
					}
				}
				out[(ch*oh+oy)*ow+ox] = s / float64((y1-y0)*(x1-x0))
			}
		}
	}
	return out
}

// OutDim returns the reduced dimensionality for an activation shape.
func (r FeatureReducer) OutDim(shape []int) int {
	if len(shape) != 3 || r.Pool <= 1 {
		n := 1
		for _, d := range shape {
			n *= d
		}
		return n
	}
	return shape[0] * ceilDiv(shape[1], r.Pool) * ceilDiv(shape[2], r.Pool)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// growFloats returns a length-n slice on dst's storage, reallocating
// only when the capacity is too small.
func growFloats(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}
