package core

import (
	"bytes"
	"math"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestFitDriftReference(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	if !v.HasDriftReference() {
		t.Fatal("Fit did not record a drift reference")
	}
	if len(v.DriftProbs) != len(DefaultDriftProbs) {
		t.Fatalf("DriftProbs = %v", v.DriftProbs)
	}
	if len(v.DriftQuantiles) != len(v.LayerIdx) {
		t.Fatalf("%d quantile rows for %d layers", len(v.DriftQuantiles), len(v.LayerIdx))
	}
	for p, row := range v.DriftQuantiles {
		if len(row) != len(v.DriftProbs) {
			t.Fatalf("layer %d has %d quantiles", p, len(row))
		}
		for j, q := range row {
			if math.IsNaN(q) || math.IsInf(q, 0) {
				t.Fatalf("layer %d quantile %d is not finite: %v", p, j, q)
			}
			if j > 0 && row[j-1] > q {
				t.Fatalf("layer %d quantiles not monotone: %v", p, row)
			}
		}
	}
	if err := v.Validate(); err != nil {
		t.Fatalf("fitted validator with drift reference fails Validate: %v", err)
	}

	// In-distribution samples should mostly score inside the reference
	// envelope: the median of live training-data discrepancies must sit
	// within the recorded [q05, q95] band for every layer.
	res := v.ScoreBatch(net, xs[:50])
	for p := range v.LayerIdx {
		inside := 0
		for _, r := range res {
			if r.Layer[p] >= v.DriftQuantiles[p][0] && r.Layer[p] <= v.DriftQuantiles[p][len(v.DriftProbs)-1] {
				inside++
			}
		}
		if inside < len(res)/2 {
			t.Fatalf("layer %d: only %d/%d training samples inside the reference band %v",
				v.LayerIdx[p], inside, len(res), v.DriftQuantiles[p])
		}
	}
}

// TestFitDriftReferenceDeterministic: the reference must be
// bit-identical at any worker count, like every other Fit output.
func TestFitDriftReferenceDeterministic(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	cfg := Config{Nu: 0.1, MaxPerClass: 60, MaxFeatures: 64}
	var refs []*Validator
	for _, workers := range []int{1, 3, 8} {
		cfg.Workers = workers
		v, err := Fit(net, xs, ys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, v)
	}
	base := refs[0]
	for _, v := range refs[1:] {
		for p := range base.DriftQuantiles {
			for j := range base.DriftQuantiles[p] {
				a, b := base.DriftQuantiles[p][j], v.DriftQuantiles[p][j]
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("drift quantile [%d][%d] differs across worker counts: %x vs %x",
						p, j, math.Float64bits(a), math.Float64bits(b))
				}
			}
		}
	}
}

func TestFitSkipDriftSnapshot(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v, err := Fit(net, xs, ys, Config{Nu: 0.1, MaxPerClass: 60, MaxFeatures: 64, Workers: 2, SkipDriftSnapshot: true})
	if err != nil {
		t.Fatal(err)
	}
	if v.HasDriftReference() {
		t.Fatal("SkipDriftSnapshot still recorded a reference")
	}
	if err := v.Validate(); err != nil {
		t.Fatalf("drift-less validator fails Validate: %v", err)
	}
}

// TestDriftReferenceSurvivesSerialization pins the persistence story:
// the reference round-trips bit-for-bit through Save/Load, and a
// legacy payload (encoded without the fields) decodes to a validator
// with no reference — the drift-disabled degradation.
func TestDriftReferenceSurvivesSerialization(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)

	path := filepath.Join(t.TempDir(), "validator.dvart")
	if err := v.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadValidator(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.HasDriftReference() {
		t.Fatal("drift reference lost in Save/Load")
	}
	for p := range v.DriftQuantiles {
		for j := range v.DriftQuantiles[p] {
			if math.Float64bits(loaded.DriftQuantiles[p][j]) != math.Float64bits(v.DriftQuantiles[p][j]) {
				t.Fatalf("quantile [%d][%d] changed across Save/Load", p, j)
			}
		}
	}

	// Legacy path: encode with the drift fields stripped (what an old
	// binary would have written) and decode with today's schema.
	legacy := v.Clone()
	legacy.DriftProbs, legacy.DriftQuantiles = nil, nil
	var buf bytes.Buffer
	if err := legacy.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeValidator(&buf)
	if err != nil {
		t.Fatalf("legacy payload without drift fields rejected: %v", err)
	}
	if dec.HasDriftReference() {
		t.Fatal("legacy payload grew a drift reference out of nowhere")
	}
}

func TestValidateRejectsCorruptDriftReference(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	base := fitToyValidator(t, net, xs, ys)

	corrupt := func(mut func(v *Validator)) error {
		v := base.Clone()
		v.DriftProbs = append([]float64(nil), base.DriftProbs...)
		v.DriftQuantiles = make([][]float64, len(base.DriftQuantiles))
		for p := range v.DriftQuantiles {
			v.DriftQuantiles[p] = append([]float64(nil), base.DriftQuantiles[p]...)
		}
		mut(v)
		return v.Validate()
	}

	cases := map[string]func(v *Validator){
		"probs without quantiles": func(v *Validator) { v.DriftQuantiles = nil },
		"single prob":             func(v *Validator) { v.DriftProbs = v.DriftProbs[:1]; v.DriftQuantiles = nil },
		"unsorted probs":          func(v *Validator) { v.DriftProbs[0], v.DriftProbs[1] = v.DriftProbs[1], v.DriftProbs[0] },
		"prob out of range":       func(v *Validator) { v.DriftProbs[len(v.DriftProbs)-1] = 1.5 },
		"row count mismatch":      func(v *Validator) { v.DriftQuantiles = v.DriftQuantiles[:1] },
		"row length mismatch":     func(v *Validator) { v.DriftQuantiles[0] = v.DriftQuantiles[0][:2] },
		"non-finite quantile":     func(v *Validator) { v.DriftQuantiles[0][0] = math.NaN() },
		"non-monotone quantiles": func(v *Validator) {
			row := v.DriftQuantiles[0]
			row[0], row[len(row)-1] = row[len(row)-1]+1, row[0]
		},
	}
	for name, mut := range cases {
		if err := corrupt(mut); err == nil {
			t.Errorf("%s: Validate accepted a corrupt drift reference", name)
		}
	}
}

// TestScoreTimedMatchesScore pins the disabled-tracing guarantee at
// its root: timing must never change the arithmetic.
func TestScoreTimedMatchesScore(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)

	for i, x := range xs[:20] {
		plain := v.Score(net, x)
		var tm ScoreTimings
		timed := v.ScoreTimed(net, x, &tm)
		if math.Float64bits(plain.Joint) != math.Float64bits(timed.Joint) ||
			math.Float64bits(plain.Confidence) != math.Float64bits(timed.Confidence) ||
			plain.Label != timed.Label || plain.NonFinite != timed.NonFinite {
			t.Fatalf("sample %d: timed result differs: %+v vs %+v", i, timed, plain)
		}
		for p := range plain.Layer {
			if math.Float64bits(plain.Layer[p]) != math.Float64bits(timed.Layer[p]) {
				t.Fatalf("sample %d layer %d differs under timing", i, p)
			}
		}
		if tm.Forward <= 0 {
			t.Fatalf("sample %d: forward duration not recorded: %v", i, tm.Forward)
		}
		if len(tm.Layers) != len(v.LayerIdx) {
			t.Fatalf("sample %d: %d layer timings for %d layers", i, len(tm.Layers), len(v.LayerIdx))
		}
		for p, d := range tm.Layers {
			if d < 0 {
				t.Fatalf("sample %d: negative layer %d duration %v", i, p, d)
			}
		}
	}

	// Timings buffers are reused across calls without reallocation when
	// capacity suffices.
	tm := ScoreTimings{Layers: make([]time.Duration, 0, len(v.LayerIdx)+4)}
	v.ScoreTimed(net, xs[0], &tm)
	if len(tm.Layers) != len(v.LayerIdx) {
		t.Fatalf("reused buffer resized to %d", len(tm.Layers))
	}

	// Batch variant: nil tms, short tms, and sparse entries all score
	// identically to the plain batch.
	want := v.ScoreBatchWorkers(net, xs[:10], 2)
	tms := make([]*ScoreTimings, 4) // shorter than the batch
	tms[1] = &ScoreTimings{}
	got := v.ScoreBatchTimedWorkers(net, xs[:10], tms, 2)
	for i := range want {
		if math.Float64bits(want[i].Joint) != math.Float64bits(got[i].Joint) {
			t.Fatalf("batch sample %d differs under sparse timing", i)
		}
	}
	if tms[1].Forward <= 0 {
		t.Fatal("timed batch member recorded no forward duration")
	}
}

func TestCheckDetailedMatchesCheck(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	m1, err := NewMonitor(net, v, 0)
	if err != nil {
		t.Fatal(err)
	}
	eps := m1.CalibrateEpsilon(xs[:40], 0.1)
	m2, err := NewMonitor(net, v.Clone(), eps)
	if err != nil {
		t.Fatal(err)
	}
	m1.SetEpsilon(eps)

	for i, x := range xs[:20] {
		want := m1.Check(x)
		got, res := m2.CheckDetailed(x, nil)
		if got != want {
			t.Fatalf("sample %d: CheckDetailed verdict %+v != Check %+v", i, got, want)
		}
		if len(res.Layer) != len(v.LayerIdx) {
			t.Fatalf("sample %d: result carries %d layers", i, len(res.Layer))
		}
		if math.Float64bits(res.Joint) != math.Float64bits(got.Discrepancy) {
			t.Fatalf("sample %d: result joint %v != verdict discrepancy %v", i, res.Joint, got.Discrepancy)
		}
	}
	s1, s2 := m1.StatsDetail(), m2.StatsDetail()
	if s1.Checked != s2.Checked || s1.Flagged != s2.Flagged {
		t.Fatalf("stats diverge: %+v vs %+v", s1, s2)
	}

	// Batch form, with a timing slot on one member.
	m3, _ := NewMonitor(net, v.Clone(), eps)
	m3.SetWorkers(3)
	tms := make([]*ScoreTimings, 20)
	tms[7] = &ScoreTimings{}
	verdicts, results := m3.CheckBatchDetailed(xs[:20], tms)
	if len(verdicts) != 20 || len(results) != 20 {
		t.Fatalf("detailed batch returned %d/%d", len(verdicts), len(results))
	}
	for i := range verdicts {
		want := m1.Check(xs[i]) // m1 already has identical history? no — only verdict fields matter
		if verdicts[i].Label != want.Label || verdicts[i].Valid != want.Valid ||
			math.Float64bits(verdicts[i].Discrepancy) != math.Float64bits(want.Discrepancy) {
			t.Fatalf("batch sample %d verdict differs: %+v vs %+v", i, verdicts[i], want)
		}
		if math.Float64bits(results[i].Joint) != math.Float64bits(verdicts[i].Discrepancy) {
			t.Fatalf("batch sample %d result/verdict joint mismatch", i)
		}
	}
	if tms[7].Forward <= 0 {
		t.Fatal("batch timing slot not filled")
	}
}

// TestMonitorStatsUnderConcurrentCheckClone exercises Stats and
// StatsDetail (including the partial-window alarm-rate path) while
// checks, batch checks, and validator clones run concurrently — the
// race-mode coverage the PR 2 stats surface lacked.
func TestMonitorStatsUnderConcurrentCheckClone(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	m, err := NewMonitor(net, v, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	m.SetWorkers(2)

	const goroutines = 4
	var checkers, observers sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < goroutines; g++ {
		checkers.Add(1)
		go func(g int) {
			defer checkers.Done()
			for i := 0; i < 15; i++ {
				m.Check(xs[(g*7+i)%len(xs)])
				if i%5 == 0 {
					m.CheckBatch(xs[:3])
				}
			}
		}(g)
	}
	observers.Add(1)
	go func() {
		defer observers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c := v.Clone()
			if err := c.Validate(); err != nil {
				t.Error(err)
				return
			}
			_, _ = c.HasDriftReference(), c.Score(net, xs[0])
		}
	}()
	observers.Add(1)
	go func() {
		defer observers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			checked, flagged, rate := m.Stats()
			if flagged > checked {
				t.Errorf("flagged %d > checked %d", flagged, checked)
				return
			}
			s := m.StatsDetail()
			if s.RecentFill > s.RecentWindow || (s.RecentFill == 0 && s.RecentAlarmRate != 0) {
				t.Errorf("inconsistent snapshot %+v", s)
				return
			}
			if rate < 0 || rate > 1 || s.RecentAlarmRate < 0 || s.RecentAlarmRate > 1 {
				t.Errorf("alarm rate out of range: %v / %v", rate, s.RecentAlarmRate)
				return
			}
		}
	}()

	// Observers race against live checks until every checker is done.
	checkers.Wait()
	close(stop)
	observers.Wait()

	s := m.StatsDetail()
	if s.Checked == 0 {
		t.Fatal("no checks recorded")
	}
	sum := 0
	for _, cs := range s.PerClass {
		sum += cs.Checked
	}
	if sum != s.Checked {
		t.Fatalf("per-class checked sums to %d, want %d", sum, s.Checked)
	}
}
