package core

import (
	"fmt"
	"math"

	"deepvalidation/internal/nn"
	"deepvalidation/internal/tensor"
)

// FitNormalization estimates each validated layer's discrepancy mean
// and standard deviation on held-out *clean* data and stores them in
// the validator. NormalizedJoint then z-scores layers before summing,
// so no single layer's scale dominates Eq. 3 — the deployable version
// of the weighting improvement Section IV-D3 suggests (it needs no
// anomalous data, preserving the framework's scenario-agnosticism).
func (v *Validator) FitNormalization(net *nn.Network, clean []*tensor.Tensor) error {
	if len(clean) < 2 {
		return fmt.Errorf("core: normalization needs at least 2 clean samples, got %d", len(clean))
	}
	n := len(v.LayerIdx)
	mean := make([]float64, n)
	m2 := make([]float64, n)
	for _, x := range clean {
		r := v.Score(net, x)
		for p, d := range r.Layer {
			mean[p] += d
			m2[p] += d * d
		}
	}
	cnt := float64(len(clean))
	std := make([]float64, n)
	for p := range mean {
		mean[p] /= cnt
		variance := m2[p]/cnt - mean[p]*mean[p]
		if variance < 1e-12 {
			variance = 1e-12
		}
		std[p] = math.Sqrt(variance)
	}
	v.NormMean = mean
	v.NormStd = std
	return nil
}

// HasNormalization reports whether FitNormalization has run.
func (v *Validator) HasNormalization() bool {
	return len(v.NormMean) == len(v.LayerIdx) && len(v.NormStd) == len(v.LayerIdx) && len(v.NormMean) > 0
}

// NormalizedJoint returns Σ_i (d_i − μ_i)/σ_i for a scored result,
// using the statistics fitted by FitNormalization. It panics if
// normalization was never fitted (a programmer error).
func (v *Validator) NormalizedJoint(r Result) float64 {
	if !v.HasNormalization() {
		panic("core: NormalizedJoint called before FitNormalization")
	}
	if len(r.Layer) != len(v.LayerIdx) {
		panic(fmt.Sprintf("core: result has %d layers, validator %d", len(r.Layer), len(v.LayerIdx)))
	}
	s := 0.0
	for p, d := range r.Layer {
		s += (d - v.NormMean[p]) / v.NormStd[p]
	}
	return s
}

// NormalizedJointScores maps NormalizedJoint over a batch of results.
func (v *Validator) NormalizedJointScores(rs []Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = v.NormalizedJoint(r)
	}
	return out
}
