package core

import (
	"fmt"

	"deepvalidation/internal/nn"
	"deepvalidation/internal/tensor"
)

// NuCandidate reports one candidate ν's behaviour on held-out clean
// validation data.
type NuCandidate struct {
	Nu float64
	// CleanFlagRate is the fraction of clean validation samples whose
	// joint discrepancy is positive — the detector's natural
	// false-positive rate before any threshold calibration.
	CleanFlagRate float64
	// MeanJoint is the mean joint discrepancy on clean data (more
	// negative = a roomier valid region).
	MeanJoint float64
}

// TuneNu fits one validator per candidate ν and measures each on clean
// validation data, mirroring the paper's parameter-selection protocol
// ("we leave out 1000 examples as validation data", Section IV-C). It
// returns the per-candidate statistics and the largest ν whose clean
// flag rate stays within budget — the tightest support estimate that
// still accepts normal traffic.
func TuneNu(net *nn.Network, trainX []*tensor.Tensor, trainY []int,
	valX []*tensor.Tensor, budget float64, base Config, candidates []float64) ([]NuCandidate, float64, error) {
	if len(candidates) == 0 {
		return nil, 0, fmt.Errorf("core: no ν candidates")
	}
	if len(valX) == 0 {
		return nil, 0, fmt.Errorf("core: no validation samples")
	}
	out := make([]NuCandidate, 0, len(candidates))
	best := -1.0
	for _, nu := range candidates {
		if nu <= 0 || nu > 1 {
			return nil, 0, fmt.Errorf("core: ν candidate %v outside (0, 1]", nu)
		}
		cfg := base
		cfg.Nu = nu
		v, err := Fit(net, trainX, trainY, cfg)
		if err != nil {
			return nil, 0, fmt.Errorf("core: fitting ν=%v: %w", nu, err)
		}
		scores := JointScores(v.ScoreBatchWorkers(net, valX, cfg.Workers))
		flagged := 0
		mean := 0.0
		for _, s := range scores {
			if s > 0 {
				flagged++
			}
			mean += s
		}
		c := NuCandidate{
			Nu:            nu,
			CleanFlagRate: float64(flagged) / float64(len(scores)),
			MeanJoint:     mean / float64(len(scores)),
		}
		out = append(out, c)
		if c.CleanFlagRate <= budget && nu > best {
			best = nu
		}
	}
	if best < 0 {
		// Nothing met the budget; fall back to the candidate with the
		// lowest clean flag rate.
		bestRate := 2.0
		for _, c := range out {
			if c.CleanFlagRate < bestRate {
				bestRate = c.CleanFlagRate
				best = c.Nu
			}
		}
	}
	return out, best, nil
}
