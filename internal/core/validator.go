// Package core implements Deep Validation (paper Section III-B): it
// fits per-layer, per-class one-class SVMs on the hidden representations
// of correctly classified training images (Algorithm 1), and at
// inference time scores a sample by its joint discrepancy — the sum over
// validated layers of the negated signed distance to the reference
// SVM of the *predicted* class (Algorithm 2, Eqs. 2–3). Samples whose
// joint discrepancy exceeds a threshold ε are flagged as error-inducing
// corner cases.
package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"deepvalidation/internal/artifact"
	"deepvalidation/internal/metrics"
	"deepvalidation/internal/nn"
	"deepvalidation/internal/svm"
	"deepvalidation/internal/telemetry"
	"deepvalidation/internal/tensor"
)

// Config controls validator fitting.
type Config struct {
	// Nu is the one-class SVM ν for every layer (default 0.1).
	Nu float64
	// MaxPerClass caps the training samples per (layer, class) SVM;
	// classes with more correctly classified images are subsampled with
	// a deterministic stride (default 200).
	MaxPerClass int
	// MaxFeatures caps the SVM input dimensionality per layer via
	// spatial average pooling (default 256).
	MaxFeatures int
	// Layers lists the tap indices to validate. Nil validates every
	// hidden layer (taps 0..L-2), the paper's default; Section IV-C
	// restricts DenseNet to the rear layers instead.
	Layers []int
	// Workers bounds the concurrent SVM fits (default GOMAXPROCS).
	Workers int
	// SkipDriftSnapshot disables the fit-time drift reference (the
	// per-layer discrepancy quantiles persisted into the Validator for
	// the serving drift watch). The zero value records it.
	SkipDriftSnapshot bool
	// Telemetry, when non-nil, receives per-stage fit timings (tap
	// collection, per-sample forward/reduce, per-(layer, class) SVM
	// fits) and sample counters. Nil adds no overhead.
	Telemetry *telemetry.Registry
}

// DefaultConfig returns the configuration used across the experiments.
func DefaultConfig() Config {
	return Config{Nu: 0.1, MaxPerClass: 200, MaxFeatures: 256}
}

// RearLayers returns a Config.Layers value selecting the last k hidden
// layers of a network, the paper's DenseNet setting ("Deep Validation
// only works on the last six layers of DenseNet").
func RearLayers(net *nn.Network, k int) []int {
	hidden := net.NumLayers() - 1
	if k > hidden {
		k = hidden
	}
	out := make([]int, 0, k)
	for i := hidden - k; i < hidden; i++ {
		out = append(out, i)
	}
	return out
}

// Validator is a fitted Deep Validation detector. Fields are exported
// for gob serialization; treat them as read-only after Fit.
type Validator struct {
	ModelName string
	Classes   int
	// LayerIdx lists the validated tap indices, ascending.
	LayerIdx []int
	// Reducers[i] maps activations of layer LayerIdx[i] to SVM features.
	Reducers []FeatureReducer
	// SVMs[i][k] is SVM(LayerIdx[i], class k) of Algorithm 1.
	SVMs [][]*svm.OneClass
	// Nu records the fitting parameter for reporting.
	Nu float64
	// NormMean/NormStd hold per-layer clean-data discrepancy statistics
	// when FitNormalization has run; see NormalizedJoint.
	NormMean []float64
	NormStd  []float64
	// DriftProbs/DriftQuantiles are the fit-time drift reference:
	// DriftQuantiles[p][j] is the DriftProbs[j] quantile of the
	// discrepancy d over the layer LayerIdx[p] SVMs' own training
	// points. The serving drift watch compares live traffic against
	// these. Both are nil on validators fitted before this field
	// existed (legacy artifacts) or with SkipDriftSnapshot — drift
	// watching then degrades to disabled.
	DriftProbs     []float64
	DriftQuantiles [][]float64

	// tel holds the attached telemetry handles (nil when detached).
	// Unexported, so gob round-trips skip it; re-attach after Load.
	tel atomic.Pointer[valTelemetry]

	// scratch pools per-worker scoring arenas (forward-pass buffers,
	// reduced-feature buffers, SVM batch rows). Each ScoreTimed call
	// takes one arena for its whole duration and returns it afterwards,
	// so arenas are never shared between concurrent scores — the
	// ownership rule that keeps the allocation diet race-free.
	// Unexported: gob skips it, and Clone starts with a fresh pool.
	scratch sync.Pool
}

// scoreScratch is one worker's reusable scoring arena.
type scoreScratch struct {
	fwd  *nn.Scratch
	feat [][]float64  // per layer-position reduced features
	xrow [1][]float64 // single-row batch for DecisionBatchInto
	drow [1]float64
}

// getScratch takes an arena from the pool, building one on first use.
func (v *Validator) getScratch() *scoreScratch {
	if s, ok := v.scratch.Get().(*scoreScratch); ok {
		return s
	}
	return &scoreScratch{fwd: nn.NewScratch(), feat: make([][]float64, len(v.LayerIdx))}
}

func (v *Validator) putScratch(s *scoreScratch) {
	if len(s.feat) < len(v.LayerIdx) {
		s.feat = make([][]float64, len(v.LayerIdx))
	}
	v.scratch.Put(s)
}

// Result is the outcome of scoring one sample (Algorithm 2).
type Result struct {
	// Label is the model's prediction y'.
	Label int
	// Confidence is the softmax probability of Label.
	Confidence float64
	// Layer[i] is d_i for validated layer LayerIdx[i]:
	// −t(f_i(x)) per Eq. 2; positive means "outside the reference
	// distribution". Non-finite terms are preserved here for
	// diagnostics but excluded from Joint.
	Layer []float64
	// Joint is Σ_i d_i (Eq. 3), summed over the finite terms only.
	Joint float64
	// NonFinite is true when the forward pass or any per-layer
	// discrepancy produced NaN or ±Inf — numeric corruption (an
	// overflowing activation, a poisoned weight) rather than a
	// measurable distance. Such samples must be quarantined, never
	// compared against ε: NaN compares false with everything, so a
	// poisoned Joint would otherwise read as "valid".
	NonFinite bool
}

// Fit runs Algorithm 1: it drops misclassified training images, groups
// the remaining hidden representations by true label per validated
// layer, and trains one ν-one-class SVM per (layer, class). All SVMs
// within one layer share the same parameters (Section IV-C), including
// a common RBF bandwidth derived from the layer's pooled activations.
func Fit(net *nn.Network, trainX []*tensor.Tensor, trainY []int, cfg Config) (*Validator, error) {
	if len(trainX) == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	if len(trainX) != len(trainY) {
		return nil, fmt.Errorf("core: %d samples but %d labels", len(trainX), len(trainY))
	}
	if cfg.Nu <= 0 {
		cfg.Nu = 0.1
	}
	if cfg.MaxPerClass <= 0 {
		cfg.MaxPerClass = 200
	}
	if cfg.MaxFeatures <= 0 {
		cfg.MaxFeatures = 256
	}
	layers := cfg.Layers
	if layers == nil {
		for i := 0; i < net.NumLayers()-1; i++ {
			layers = append(layers, i)
		}
	}
	if len(layers) == 0 {
		return nil, fmt.Errorf("core: no layers selected for validation")
	}
	sorted := append([]int(nil), layers...)
	sort.Ints(sorted)
	for i, l := range sorted {
		if l < 0 || l >= net.NumLayers()-1 {
			return nil, fmt.Errorf("core: layer index %d outside hidden range [0, %d)", l, net.NumLayers()-1)
		}
		if i > 0 && sorted[i-1] == l {
			return nil, fmt.Errorf("core: duplicate layer index %d", l)
		}
	}
	layers = sorted
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Resolve fit-stage instruments once; every handle is nil (and
	// every observation a no-op) when cfg.Telemetry is nil.
	reg := cfg.Telemetry
	var (
		fitTotal   = reg.Histogram(MetricFitTotal, telemetry.DefLatencyBuckets)
		fitCollect = reg.Histogram(MetricFitCollect, telemetry.DefLatencyBuckets)
		fitForward = reg.Histogram(MetricFitForward, telemetry.DefLatencyBuckets)
		fitReduce  = reg.Histogram(MetricFitReduce, telemetry.DefLatencyBuckets)
		fitSVMAll  = reg.Histogram(MetricFitSVMStage, telemetry.DefLatencyBuckets)
		fitSVMOne  = reg.Histogram(MetricFitSVM, telemetry.DefLatencyBuckets)
	)
	totalSpan := telemetry.StartSpan(fitTotal)
	reg.Counter(MetricFitSamples).Add(int64(len(trainX)))

	// Algorithm 1 line 2: keep only correctly classified images, and
	// collect their reduced hidden representations in one tapped pass.
	// The reducers depend only on tap shapes, so they are sized up front
	// from the input geometry; the per-sample passes then fan across the
	// worker pool and merge in input order, making the fitted validator
	// independent of the worker count.
	tapShapes := net.TapShapes(trainX[0].Shape)
	reducers := make([]FeatureReducer, len(layers))
	for p, l := range layers {
		reducers[p] = fitReducer(tapShapes[l], cfg.MaxFeatures)
	}

	// collected[idx] is nil for misclassified samples, else the per-layer
	// reduced features of trainX[idx].
	collectSpan := telemetry.StartSpan(fitCollect)
	instrumented := reg != nil
	collected := make([][][]float64, len(trainX))
	forEachIndex(len(trainX), workers, func(idx int) {
		var t0 time.Time
		if instrumented {
			t0 = time.Now()
		}
		probs, taps := net.ForwardTapped(trainX[idx])
		if instrumented {
			fitForward.ObserveSince(t0)
		}
		if probs.ArgMax() != trainY[idx] {
			return
		}
		if instrumented {
			t0 = time.Now()
		}
		fs := make([][]float64, len(layers))
		for p, l := range layers {
			fs[p] = reducers[p].Reduce(taps[l])
		}
		if instrumented {
			fitReduce.ObserveSince(t0)
		}
		collected[idx] = fs
	})
	collectSpan.End()

	feats := make([][][]float64, len(layers)) // [layerPos][kept sample] -> features
	keptLabels := make([]int, 0, len(trainX))
	for idx, fs := range collected {
		if fs == nil {
			continue
		}
		for p := range layers {
			feats[p] = append(feats[p], fs[p])
		}
		keptLabels = append(keptLabels, trainY[idx])
	}
	if len(keptLabels) == 0 {
		return nil, fmt.Errorf("core: model misclassifies every training sample; nothing to fit")
	}
	reg.Counter(MetricFitKept).Add(int64(len(keptLabels)))

	// Group sample indices by class and subsample deterministically.
	byClass := make([][]int, net.Classes)
	for i, y := range keptLabels {
		byClass[y] = append(byClass[y], i)
	}
	for k := range byClass {
		if len(byClass[k]) == 0 {
			return nil, fmt.Errorf("core: class %d has no correctly classified training samples", k)
		}
		byClass[k] = stride(byClass[k], cfg.MaxPerClass)
	}

	v := &Validator{
		ModelName: net.ModelName,
		Classes:   net.Classes,
		LayerIdx:  layers,
		Reducers:  reducers,
		SVMs:      make([][]*svm.OneClass, len(layers)),
		Nu:        cfg.Nu,
	}
	for p := range layers {
		v.SVMs[p] = make([]*svm.OneClass, net.Classes)
	}

	// One gamma per layer, shared by all its class SVMs.
	gammas := make([]float64, len(layers))
	for p := range layers {
		gammas[p] = pooledScaleGamma(feats[p])
	}

	// Fan the (layer, class) fits across a worker pool; each fit is
	// independent (the paper: "the training and validation pipeline can
	// be parallelized based on our design").
	type job struct{ p, k int }
	jobs := make(chan job)
	errs := make([]error, len(layers)*net.Classes)
	svmSpan := telemetry.StartSpan(fitSVMAll)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				oneSpan := telemetry.StartSpan(fitSVMOne)
				data := make([][]float64, 0, len(byClass[j.k]))
				for _, i := range byClass[j.k] {
					data = append(data, feats[j.p][i])
				}
				m, err := svm.Train(data, svm.Config{
					Nu:     cfg.Nu,
					Kernel: svm.KernelRBF,
					Gamma:  gammas[j.p],
				})
				oneSpan.End()
				if err != nil {
					errs[j.p*net.Classes+j.k] = fmt.Errorf("core: SVM(layer %d, class %d): %w", v.LayerIdx[j.p], j.k, err)
					continue
				}
				v.SVMs[j.p][j.k] = m
			}
		}()
	}
	for p := range layers {
		for k := 0; k < net.Classes; k++ {
			jobs <- job{p, k}
		}
	}
	close(jobs)
	wg.Wait()
	svmSpan.End()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	if !cfg.SkipDriftSnapshot {
		driftSpan := telemetry.StartSpan(reg.Histogram(MetricFitDrift, telemetry.DefLatencyBuckets))
		v.snapshotDrift(feats, byClass, workers)
		driftSpan.End()
	}
	totalSpan.End()
	return v, nil
}

// DefaultDriftProbs are the quantile probabilities of the fit-time
// drift reference. Five probabilities spanning the tails and the body
// keep the persisted reference tiny while still catching both location
// and spread shifts.
var DefaultDriftProbs = []float64{0.05, 0.25, 0.5, 0.75, 0.95}

// snapshotDrift records the per-layer discrepancy quantiles over the
// SVMs' own training points — exactly the d_i = −t(f_i(x)) a correctly
// classified in-distribution sample produces at serve time, because
// for these samples the predicted class is the true class. The sample
// order is fixed (class-major over the deterministic subsample) and
// the values are sorted before taking exact quantiles, so the
// reference is bit-identical at any worker count.
func (v *Validator) snapshotDrift(feats [][][]float64, byClass [][]int, workers int) {
	quantiles := make([][]float64, len(v.LayerIdx))
	ok := true
	var mu sync.Mutex
	forEachIndex(len(v.LayerIdx), workers, func(p int) {
		ds := make([]float64, 0, 64)
		rows := make([][]float64, 0, 64)
		var dec []float64
		for k := range byClass {
			// One batched decision call per (layer, class) SVM over all
			// of its training points — bit-identical to the per-point
			// scalar Decision, just without the per-call overhead.
			rows = rows[:0]
			for _, i := range byClass[k] {
				rows = append(rows, feats[p][i])
			}
			dec = growFloats(dec, len(rows))
			v.SVMs[p][k].DecisionBatchInto(dec, rows)
			for _, f := range dec {
				if d := -f; finite(d) {
					ds = append(ds, d)
				}
			}
		}
		if len(ds) == 0 {
			mu.Lock()
			ok = false
			mu.Unlock()
			return
		}
		sort.Float64s(ds)
		quantiles[p] = metrics.QuantilesSorted(ds, DefaultDriftProbs)
	})
	if !ok {
		// A layer produced no finite discrepancies at all — leave the
		// reference absent rather than persisting NaNs.
		return
	}
	v.DriftProbs = append([]float64(nil), DefaultDriftProbs...)
	v.DriftQuantiles = quantiles
}

// HasDriftReference reports whether the validator carries a fit-time
// drift reference (false for legacy artifacts and SkipDriftSnapshot
// fits).
func (v *Validator) HasDriftReference() bool {
	return len(v.DriftQuantiles) == len(v.LayerIdx) && len(v.DriftQuantiles) > 0 &&
		len(v.DriftProbs) >= 2
}

// stride subsamples idx down to at most max entries with an even
// stride, keeping coverage across the original ordering.
func stride(idx []int, max int) []int {
	if len(idx) <= max {
		return idx
	}
	out := make([]int, 0, max)
	step := float64(len(idx)) / float64(max)
	for i := 0; i < max; i++ {
		out = append(out, idx[int(float64(i)*step)])
	}
	return out
}

// pooledScaleGamma computes the scikit-learn "scale" bandwidth over a
// whole layer's features (all classes pooled), so every SVM in the
// layer shares it.
func pooledScaleGamma(rows [][]float64) float64 {
	n := 0
	mean := 0.0
	for _, row := range rows {
		for _, v := range row {
			mean += v
			n++
		}
	}
	if n == 0 {
		return 1
	}
	mean /= float64(n)
	variance := 0.0
	for _, row := range rows {
		for _, v := range row {
			variance += (v - mean) * (v - mean)
		}
	}
	variance /= float64(n)
	if variance < 1e-12 {
		variance = 1e-12
	}
	return 1 / (float64(len(rows[0])) * variance)
}

// Clone returns a shallow copy sharing the fitted components (SVMs,
// reducers, slices) but carrying no telemetry attachment — the idiom
// for tweaking a validator (normalization, layer subsets) without
// mutating the original. The Validator struct itself must not be
// copied by assignment; it embeds an atomic telemetry slot.
func (v *Validator) Clone() *Validator {
	return &Validator{
		ModelName:      v.ModelName,
		Classes:        v.Classes,
		LayerIdx:       v.LayerIdx,
		Reducers:       v.Reducers,
		SVMs:           v.SVMs,
		Nu:             v.Nu,
		NormMean:       v.NormMean,
		NormStd:        v.NormStd,
		DriftProbs:     v.DriftProbs,
		DriftQuantiles: v.DriftQuantiles,
	}
}

// ScoreTimings receives the stage timings of one ScoreTimed call:
// the tapped forward pass and each per-layer SVM evaluation (indexed
// like LayerIdx). It exists for the serving trace spans; passing nil
// keeps scoring free of clock reads beyond what telemetry already
// takes.
type ScoreTimings struct {
	Forward time.Duration
	Layers  []time.Duration
}

// Score runs Algorithm 2 on one sample: a single tapped forward pass,
// then per-layer discrepancies against the SVMs of the predicted class.
// With telemetry attached (SetTelemetry), each call also observes its
// latency and its per-layer and joint discrepancies; detached, the
// only cost is one atomic pointer load.
func (v *Validator) Score(net *nn.Network, x *tensor.Tensor) Result {
	return v.ScoreTimed(net, x, nil)
}

// ScoreTimed is Score with optional stage timing: a non-nil tm is
// filled with the forward-pass and per-layer durations. The arithmetic
// is byte-for-byte the same as Score — timing only adds clock reads —
// so results are bit-identical with tm nil or not.
func (v *Validator) ScoreTimed(net *nn.Network, x *tensor.Tensor, tm *ScoreTimings) Result {
	tel := v.tel.Load()
	var t0 time.Time
	if tel != nil || tm != nil {
		t0 = time.Now()
	}
	sc := v.getScratch()
	defer v.putScratch(sc)
	probs, taps := net.ForwardTappedScratch(x, sc.fwd)
	if tm != nil {
		tm.Forward = time.Since(t0)
		if cap(tm.Layers) >= len(v.LayerIdx) {
			tm.Layers = tm.Layers[:len(v.LayerIdx)]
		} else {
			tm.Layers = make([]time.Duration, len(v.LayerIdx))
		}
	}
	label := probs.ArgMax()
	res := Result{
		Label:      label,
		Confidence: probs.Data[label],
		Layer:      make([]float64, len(v.LayerIdx)),
	}
	if !finite(res.Confidence) {
		// The softmax itself overflowed; zero the confidence so the
		// verdict stays JSON-encodable and flag the numeric corruption.
		res.Confidence = 0
		res.NonFinite = true
	}
	var lt time.Time
	for p, l := range v.LayerIdx {
		if tm != nil {
			lt = time.Now()
		}
		sc.feat[p] = v.Reducers[p].ReduceInto(sc.feat[p], taps[l])
		sc.xrow[0] = sc.feat[p]
		d := -v.SVMs[p][label].DecisionBatchInto(sc.drow[:], sc.xrow[:])[0]
		if tm != nil {
			tm.Layers[p] = time.Since(lt)
		}
		res.Layer[p] = d
		if !finite(d) {
			res.NonFinite = true
			continue // keep the poison out of the Eq. 3 sum
		}
		res.Joint += d
	}
	if tel != nil {
		tel.scoreLatency.ObserveSince(t0)
		if !res.NonFinite {
			// Non-finite samples are counted by the monitor's quarantine
			// counter; their partial sums would distort the histograms.
			tel.joint.Observe(res.Joint)
			for p, d := range res.Layer {
				tel.layers[p].Observe(d)
			}
		}
	}
	return res
}

// WeightedJoint recomputes the joint discrepancy of a Result with
// per-layer weights — the refinement Section IV-D3 suggests over the
// unweighted sum. len(weights) must equal len(r.Layer).
func (r Result) WeightedJoint(weights []float64) float64 {
	if len(weights) != len(r.Layer) {
		panic(fmt.Sprintf("core: %d weights for %d layers", len(weights), len(r.Layer)))
	}
	s := 0.0
	for i, d := range r.Layer {
		s += weights[i] * d
	}
	return s
}

// ScoreBatch scores many samples across a bounded worker pool sized to
// GOMAXPROCS, returning results in input order. Scoring is read-only on
// both the validator and the network, so the samples are independent;
// use ScoreBatchWorkers to pin the pool size (1 = sequential).
func (v *Validator) ScoreBatch(net *nn.Network, xs []*tensor.Tensor) []Result {
	return v.ScoreBatchWorkers(net, xs, 0)
}

// ScoreBatchWorkers scores many samples with an explicit worker bound,
// preserving input order. workers ≤ 0 uses GOMAXPROCS; workers == 1
// runs sequentially on the calling goroutine. Every worker count yields
// identical results.
func (v *Validator) ScoreBatchWorkers(net *nn.Network, xs []*tensor.Tensor, workers int) []Result {
	return v.ScoreBatchTimedWorkers(net, xs, nil, workers)
}

// ScoreBatchTimedWorkers is ScoreBatchWorkers with optional per-sample
// stage timing: tms may be nil, shorter than xs, or hold nil entries —
// only samples with a non-nil *ScoreTimings pay for clock reads. Used
// by the serving path to time only the traced members of a batch.
func (v *Validator) ScoreBatchTimedWorkers(net *nn.Network, xs []*tensor.Tensor, tms []*ScoreTimings, workers int) []Result {
	out := make([]Result, len(xs))
	forEachIndex(len(xs), workers, func(i int) {
		var tm *ScoreTimings
		if i < len(tms) {
			tm = tms[i]
		}
		out[i] = v.ScoreTimed(net, xs[i], tm)
	})
	return out
}

// forEachIndex runs fn(0..n-1) across a bounded worker pool. workers
// ≤ 0 uses GOMAXPROCS; the pool never exceeds n goroutines, and with a
// single worker fn runs inline on the caller. fn must be safe to call
// concurrently for distinct indices.
func forEachIndex(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// JointScores extracts the joint discrepancies from a batch of results.
func JointScores(rs []Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Joint
	}
	return out
}

// LayerScores extracts single-validator discrepancies for layer
// position p (an index into LayerIdx, not a tap index).
func LayerScores(rs []Result, p int) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Layer[p]
	}
	return out
}

// Encode writes the validator in gob format (the artifact payload
// format; Save wraps it in the checksummed container).
func (v *Validator) Encode(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(v); err != nil {
		return fmt.Errorf("core: encoding validator for %q: %w", v.ModelName, err)
	}
	return nil
}

// DecodeValidator reads a validator written by Encode and validates
// its structural invariants. Support-vector norms are materialized
// eagerly: legacy artifacts fitted before OneClass.SVNorms existed
// decode with the field nil and recompute it here, so scoring never
// pays the one-time cost mid-request and the next Save persists the
// upgraded model.
func DecodeValidator(r io.Reader) (*Validator, error) {
	var v Validator
	if err := gob.NewDecoder(r).Decode(&v); err != nil {
		return nil, fmt.Errorf("core: decoding validator: %w", err)
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	for _, row := range v.SVMs {
		for _, m := range row {
			m.EnsureNorms()
		}
	}
	return &v, nil
}

// Validate checks the invariants a freshly decoded validator must hold
// before it can score traffic: a positive class count, sorted unique
// layer indices, one reducer and one full row of fitted SVMs per
// layer, and finite SVM coefficients. Corrupt-but-decodable artifacts
// fail here with an error instead of panicking inside Score.
func (v *Validator) Validate() error {
	if v.Classes <= 0 {
		return fmt.Errorf("core: validator for %q declares %d classes", v.ModelName, v.Classes)
	}
	if len(v.LayerIdx) == 0 {
		return fmt.Errorf("core: validator for %q validates no layers", v.ModelName)
	}
	for i, l := range v.LayerIdx {
		if l < 0 {
			return fmt.Errorf("core: validator for %q has negative layer index %d", v.ModelName, l)
		}
		if i > 0 && v.LayerIdx[i-1] >= l {
			return fmt.Errorf("core: validator for %q has unsorted or duplicate layer indices %v", v.ModelName, v.LayerIdx)
		}
	}
	if len(v.Reducers) != len(v.LayerIdx) {
		return fmt.Errorf("core: validator for %q has %d reducers for %d layers", v.ModelName, len(v.Reducers), len(v.LayerIdx))
	}
	if len(v.SVMs) != len(v.LayerIdx) {
		return fmt.Errorf("core: validator for %q has %d SVM rows for %d layers", v.ModelName, len(v.SVMs), len(v.LayerIdx))
	}
	for p, row := range v.SVMs {
		if len(row) != v.Classes {
			return fmt.Errorf("core: validator for %q has %d SVMs at layer %d for %d classes", v.ModelName, len(row), v.LayerIdx[p], v.Classes)
		}
		for k, m := range row {
			if m == nil {
				return fmt.Errorf("core: validator for %q is missing SVM(layer %d, class %d)", v.ModelName, v.LayerIdx[p], k)
			}
			if m.Dim <= 0 || len(m.Support) != len(m.Alpha) {
				return fmt.Errorf("core: SVM(layer %d, class %d) of %q is malformed (%d-dim, %d support vectors, %d coefficients)",
					v.LayerIdx[p], k, v.ModelName, m.Dim, len(m.Support), len(m.Alpha))
			}
			if !finite(m.Rho) || !finite(m.Gamma) || !finiteAll(m.Alpha) {
				return fmt.Errorf("core: SVM(layer %d, class %d) of %q carries non-finite coefficients", v.LayerIdx[p], k, v.ModelName)
			}
			for _, sv := range m.Support {
				if len(sv) != m.Dim {
					return fmt.Errorf("core: SVM(layer %d, class %d) of %q has a %d-dim support vector in a %d-dim model",
						v.LayerIdx[p], k, v.ModelName, len(sv), m.Dim)
				}
				if !finiteAll(sv) {
					return fmt.Errorf("core: SVM(layer %d, class %d) of %q carries a non-finite support vector", v.LayerIdx[p], k, v.ModelName)
				}
			}
			// Precomputed SV norms are optional (legacy artifacts carry
			// none and recompute on demand), but when present they must
			// be shaped and finite like any other coefficient.
			if len(m.SVNorms) != 0 {
				if len(m.SVNorms) != len(m.Support) {
					return fmt.Errorf("core: SVM(layer %d, class %d) of %q carries %d SV norms for %d support vectors",
						v.LayerIdx[p], k, v.ModelName, len(m.SVNorms), len(m.Support))
				}
				if !finiteAll(m.SVNorms) {
					return fmt.Errorf("core: SVM(layer %d, class %d) of %q carries non-finite SV norms", v.LayerIdx[p], k, v.ModelName)
				}
			}
		}
	}
	for _, s := range [][]float64{v.NormMean, v.NormStd} {
		if len(s) != 0 && len(s) != len(v.LayerIdx) {
			return fmt.Errorf("core: validator for %q has %d normalization terms for %d layers", v.ModelName, len(s), len(v.LayerIdx))
		}
		if !finiteAll(s) {
			return fmt.Errorf("core: validator for %q carries non-finite normalization statistics", v.ModelName)
		}
	}
	// The drift reference is optional (legacy artifacts gob-decode with
	// both fields nil), but when present it must be shaped and finite —
	// a corrupted reference must fail the load, not poison drift scores.
	if len(v.DriftProbs) != 0 || len(v.DriftQuantiles) != 0 {
		if len(v.DriftProbs) < 2 {
			return fmt.Errorf("core: validator for %q has a drift reference with %d quantile probabilities (want >= 2)", v.ModelName, len(v.DriftProbs))
		}
		for j, q := range v.DriftProbs {
			if !finite(q) || q < 0 || q > 1 || (j > 0 && v.DriftProbs[j-1] >= q) {
				return fmt.Errorf("core: validator for %q has malformed drift probabilities %v", v.ModelName, v.DriftProbs)
			}
		}
		if len(v.DriftQuantiles) != len(v.LayerIdx) {
			return fmt.Errorf("core: validator for %q has %d drift quantile rows for %d layers", v.ModelName, len(v.DriftQuantiles), len(v.LayerIdx))
		}
		for p, row := range v.DriftQuantiles {
			if len(row) != len(v.DriftProbs) {
				return fmt.Errorf("core: validator for %q has %d drift quantiles at layer %d for %d probabilities", v.ModelName, len(row), v.LayerIdx[p], len(v.DriftProbs))
			}
			if !finiteAll(row) {
				return fmt.Errorf("core: validator for %q carries non-finite drift quantiles at layer %d", v.ModelName, v.LayerIdx[p])
			}
			for j := 1; j < len(row); j++ {
				if row[j-1] > row[j] {
					return fmt.Errorf("core: validator for %q has non-monotone drift quantiles at layer %d", v.ModelName, v.LayerIdx[p])
				}
			}
		}
	}
	return nil
}

// CheckCompat cross-checks a model/validator pair before they are
// trusted to serve together: matching model names and class counts,
// layer indices inside the network's hidden range, and — the check
// that prevents a panic deep inside svm.Decision — every reducer's
// output dimensionality against its SVMs' expected input. Run it on
// every load and hot reload; a mismatched pair (e.g. a validator
// fitted for last week's architecture) is an operator error that must
// be rejected while the previous detector keeps serving.
func CheckCompat(net *nn.Network, val *Validator) error {
	if net == nil || val == nil {
		return fmt.Errorf("core: compatibility check needs both a network and a validator")
	}
	if net.ModelName != val.ModelName {
		return fmt.Errorf("core: model %q and validator %q disagree on the model name", net.ModelName, val.ModelName)
	}
	if net.Classes != val.Classes {
		return fmt.Errorf("core: model %q has %d classes but its validator was fitted for %d", net.ModelName, net.Classes, val.Classes)
	}
	for _, l := range val.LayerIdx {
		if l >= net.NumLayers()-1 {
			return fmt.Errorf("core: validator probes layer %d but model %q has %d hidden layers", l, net.ModelName, net.NumLayers()-1)
		}
	}
	tapShapes := net.TapShapes(net.InShape)
	for p, l := range val.LayerIdx {
		want := val.SVMs[p][0].Dim
		if got := val.Reducers[p].OutDim(tapShapes[l]); got != want {
			return fmt.Errorf("core: layer %d of model %q yields %d features but its SVMs expect %d (validator fitted for a different architecture?)",
				l, net.ModelName, got, want)
		}
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func finiteAll(s []float64) bool {
	for _, v := range s {
		if !finite(v) {
			return false
		}
	}
	return true
}

// Save atomically persists the validator as a checksummed artifact
// container (see internal/artifact); a crash mid-save leaves any
// previous artifact at path intact.
func (v *Validator) Save(path string) error {
	var buf bytes.Buffer
	if err := v.Encode(&buf); err != nil {
		return err
	}
	h := artifact.Header{
		Kind:      artifact.KindValidator,
		ModelName: v.ModelName,
		Classes:   v.Classes,
		Layers:    append([]int(nil), v.LayerIdx...),
	}
	if err := artifact.WriteFile(path, h, buf.Bytes()); err != nil {
		return fmt.Errorf("core: saving validator: %w", err)
	}
	return nil
}

// LoadValidator reads a validator saved by Save, verifying the
// container checksum and header↔payload identity; legacy bare-gob
// files load through a transparent fallback. The decoded validator is
// structurally validated either way.
func LoadValidator(path string) (*Validator, error) {
	info, payload, err := artifact.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: loading validator: %w", err)
	}
	v, err := DecodeValidator(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("core: loading validator from %s: %w", path, err)
	}
	if !info.Legacy {
		h := info.Header
		if h.Kind != artifact.KindValidator {
			return nil, fmt.Errorf("core: %s is a %q artifact, want %q", path, h.Kind, artifact.KindValidator)
		}
		if h.ModelName != v.ModelName || h.Classes != v.Classes || !layersEqual(h.Layers, v.LayerIdx) {
			return nil, fmt.Errorf("core: %s header (%s, %d classes, layers %v) disagrees with its payload (%s, %d classes, layers %v)",
				path, h.ModelName, h.Classes, h.Layers, v.ModelName, v.Classes, v.LayerIdx)
		}
	}
	return v, nil
}

func layersEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
