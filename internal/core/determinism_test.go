package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"deepvalidation/internal/dataset"
	"deepvalidation/internal/nn"
	"deepvalidation/internal/opt"
	"deepvalidation/internal/tensor"
)

// The digits fixture backs the determinism tests: a small CNN trained
// on the MNIST stand-in, shared read-only across tests.
var digitsFixture struct {
	once sync.Once
	net  *nn.Network
	xs   []*tensor.Tensor
	ys   []int
	err  error
}

func trainedDigitsModel(t *testing.T) (*nn.Network, []*tensor.Tensor, []int) {
	t.Helper()
	digitsFixture.once.Do(func() {
		ds := dataset.Digits(dataset.Config{TrainN: 400, TestN: 0, Seed: 1})
		rng := rand.New(rand.NewSource(71))
		net, err := nn.NewSevenLayerCNN("digits", ds.InC, ds.Size, ds.Classes,
			nn.ArchConfig{Width: 4, FCWidth: 24}, rng)
		if err != nil {
			digitsFixture.err = err
			return
		}
		tr := nn.NewTrainer(net, opt.NewAdadelta(1.0, 0.95), rand.New(rand.NewSource(72)))
		tr.BatchSize = 32
		tr.Workers = 4
		if _, err := tr.Train(ds.TrainX, ds.TrainY, 6); err != nil {
			digitsFixture.err = err
			return
		}
		digitsFixture.net, digitsFixture.xs, digitsFixture.ys = net, ds.TrainX, ds.TrainY
	})
	if digitsFixture.err != nil {
		t.Fatal(digitsFixture.err)
	}
	return digitsFixture.net, digitsFixture.xs, digitsFixture.ys
}

func encodeValidator(t *testing.T, v *Validator) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := v.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFitDeterministicAcrossWorkers is the pipeline's core guarantee:
// the parallel collection pass and the SVM fit pool merge in input
// order, so the fitted validator is bit-identical no matter how many
// workers ran it.
func TestFitDeterministicAcrossWorkers(t *testing.T) {
	net, xs, ys := trainedDigitsModel(t)
	cfg := Config{Nu: 0.1, MaxPerClass: 25, MaxFeatures: 64}

	cfg.Workers = 1
	seq, err := Fit(net, xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := Fit(net, xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Structural spot checks first, for a readable failure.
	if len(seq.LayerIdx) != len(par.LayerIdx) {
		t.Fatalf("layer counts differ: %d vs %d", len(seq.LayerIdx), len(par.LayerIdx))
	}
	for p := range seq.LayerIdx {
		if seq.LayerIdx[p] != par.LayerIdx[p] {
			t.Fatalf("layer order differs at %d: %d vs %d", p, seq.LayerIdx[p], par.LayerIdx[p])
		}
		if seq.Reducers[p] != par.Reducers[p] {
			t.Fatalf("reducer %d differs: %+v vs %+v", p, seq.Reducers[p], par.Reducers[p])
		}
		for k := range seq.SVMs[p] {
			if seq.SVMs[p][k].NumSupport() != par.SVMs[p][k].NumSupport() {
				t.Fatalf("SVM(%d,%d) support counts differ: %d vs %d",
					seq.LayerIdx[p], k, seq.SVMs[p][k].NumSupport(), par.SVMs[p][k].NumSupport())
			}
		}
	}

	// The real bar: the gob encodings are byte-identical.
	if !bytes.Equal(encodeValidator(t, seq), encodeValidator(t, par)) {
		t.Fatal("Workers:1 and Workers:8 validators encode differently")
	}
}

// TestFitRepeatableAtFixedWorkers guards against per-run nondeterminism
// (map iteration, scheduler-order leaks) at a fixed worker count.
func TestFitRepeatableAtFixedWorkers(t *testing.T) {
	net, xs, ys := trainedDigitsModel(t)
	cfg := Config{Nu: 0.1, MaxPerClass: 25, MaxFeatures: 64, Workers: 8}
	a, err := Fit(net, xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(net, xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeValidator(t, a), encodeValidator(t, b)) {
		t.Fatal("two Workers:8 fits encode differently")
	}
}
