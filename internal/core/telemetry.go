package core

import (
	"fmt"
	"io"
	"strconv"

	"deepvalidation/internal/telemetry"
)

// Metric names for every instrument Deep Validation emits. Naming
// follows Prometheus conventions: dv_ prefix, snake_case, _total for
// counters, _seconds for timing histograms. Labeled families append
// {label="value"} via telemetry.Label.
const (
	// MetricChecked / MetricFlagged count monitored verdicts; the
	// per-class families break them down by *predicted* class
	// (label class="k").
	MetricChecked      = "dv_checked_total"
	MetricFlagged      = "dv_flagged_total"
	MetricClassChecked = "dv_class_checked_total"
	MetricClassFlagged = "dv_class_flagged_total"
	// MetricInvalidInput counts inputs rejected before scoring
	// (Image.Validate / CheckInput failures) — malformed data, not
	// detected corner cases.
	MetricInvalidInput = "dv_invalid_input_total"
	// MetricQuarantined counts verdicts quarantined because scoring hit
	// non-finite numerics (NaN/Inf activations or discrepancies) —
	// numeric corruption, distinct from both malformed inputs and
	// detected corner cases. Quarantined verdicts also count into
	// MetricChecked/MetricFlagged.
	MetricQuarantined = "dv_quarantined_total"
	// MetricVerdictLatency is the end-to-end Monitor.Check latency; in
	// CheckBatch each verdict observes the batch's amortized
	// per-sample latency (total elapsed / batch size), which is the
	// throughput-side number an operator provisions against.
	MetricVerdictLatency = "dv_verdict_latency_seconds"
	// MetricScoreLatency times Validator.Score (one tapped forward
	// pass + per-layer SVM evaluations), per sample even in batches.
	MetricScoreLatency = "dv_score_latency_seconds"
	// MetricJointDiscrepancy / MetricLayerDiscrepancy histogram the
	// Algorithm 2 scores; the layer family is labeled with the tap
	// index (layer="3").
	MetricJointDiscrepancy = "dv_joint_discrepancy"
	MetricLayerDiscrepancy = "dv_layer_discrepancy"
	// MetricEpsilon gauges the current detection threshold ε.
	MetricEpsilon = "dv_epsilon"
	// Fit-stage instruments (Algorithm 1): whole-run and per-stage
	// spans plus per-sample forward/reduce and per-(layer,class) SVM
	// fit timings.
	MetricFitTotal    = "dv_fit_total_seconds"
	MetricFitCollect  = "dv_fit_collect_seconds"
	MetricFitForward  = "dv_fit_forward_seconds"
	MetricFitReduce   = "dv_fit_reduce_seconds"
	MetricFitSVMStage = "dv_fit_svm_stage_seconds"
	MetricFitSVM      = "dv_fit_svm_fit_seconds"
	MetricFitSamples  = "dv_fit_samples_total"
	MetricFitKept     = "dv_fit_kept_total"
	// MetricFitDrift times the fit-time drift-reference snapshot (the
	// per-layer discrepancy quantiles the serving drift watch compares
	// against).
	MetricFitDrift = "dv_fit_drift_seconds"
)

// DiscrepancyBuckets cover the per-layer and joint discrepancy range:
// negative values sit inside the reference region (Eq. 2's −t(f_i(x))
// is negative for conforming activations), values near 0 straddle the
// boundary, and large positive values are far outside it.
var DiscrepancyBuckets = []float64{
	-5, -2.5, -1, -0.5, -0.25, -0.1, -0.05, 0,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25,
}

// valTelemetry holds the validator's resolved instrument handles. It
// is built once by SetTelemetry and read atomically on every Score, so
// scoring pays one pointer load when telemetry is off and no lock ever.
type valTelemetry struct {
	scoreLatency *telemetry.Histogram
	joint        *telemetry.Histogram
	layers       []*telemetry.Histogram // indexed like LayerIdx
}

// SetTelemetry attaches (or, with a nil registry, detaches) a metrics
// registry to the validator. Once attached, every Score observes its
// latency into MetricScoreLatency and its per-layer and joint
// discrepancies into the discrepancy histograms. Safe to call
// concurrently with scoring; handles swap atomically.
func (v *Validator) SetTelemetry(r *telemetry.Registry) {
	if r == nil {
		v.tel.Store(nil)
		return
	}
	t := &valTelemetry{
		scoreLatency: r.Histogram(MetricScoreLatency, telemetry.DefLatencyBuckets),
		joint:        r.Histogram(MetricJointDiscrepancy, DiscrepancyBuckets),
		layers:       make([]*telemetry.Histogram, len(v.LayerIdx)),
	}
	for p, l := range v.LayerIdx {
		name := telemetry.Label(MetricLayerDiscrepancy, "layer", strconv.Itoa(l))
		t.layers[p] = r.Histogram(name, DiscrepancyBuckets)
	}
	v.tel.Store(t)
}

// monTelemetry holds the monitor's resolved instrument handles,
// likewise swapped atomically.
type monTelemetry struct {
	checked        *telemetry.Counter
	flagged        *telemetry.Counter
	quarantined    *telemetry.Counter
	classChecked   []*telemetry.Counter // indexed by predicted class
	classFlagged   []*telemetry.Counter
	verdictLatency *telemetry.Histogram
	epsilon        *telemetry.Gauge
}

// SetTelemetry attaches a metrics registry to the monitor and, through
// it, to the underlying validator, so one call instruments the whole
// check path: verdict counters (total and per predicted class),
// verdict latency, the ε gauge, score latency, and the discrepancy
// histograms. A nil registry detaches everything.
func (m *Monitor) SetTelemetry(r *telemetry.Registry) {
	m.val.SetTelemetry(r)
	if r == nil {
		m.tel.Store(nil)
		return
	}
	t := &monTelemetry{
		checked:        r.Counter(MetricChecked),
		flagged:        r.Counter(MetricFlagged),
		quarantined:    r.Counter(MetricQuarantined),
		classChecked:   make([]*telemetry.Counter, m.val.Classes),
		classFlagged:   make([]*telemetry.Counter, m.val.Classes),
		verdictLatency: r.Histogram(MetricVerdictLatency, telemetry.DefLatencyBuckets),
		epsilon:        r.Gauge(MetricEpsilon),
	}
	for k := 0; k < m.val.Classes; k++ {
		label := strconv.Itoa(k)
		t.classChecked[k] = r.Counter(telemetry.Label(MetricClassChecked, "class", label))
		t.classFlagged[k] = r.Counter(telemetry.Label(MetricClassFlagged, "class", label))
	}
	t.epsilon.Set(m.Epsilon())
	m.tel.Store(t)
}

// observe folds one verdict into the monitor's counters; latency is
// recorded separately because batch paths amortize it.
func (t *monTelemetry) observe(label int, valid, quarantined bool) {
	t.checked.Inc()
	t.classChecked[label].Inc()
	if !valid {
		t.flagged.Inc()
		t.classFlagged[label].Inc()
	}
	if quarantined {
		t.quarantined.Inc()
	}
}

// TelemetrySummary renders the operator-facing digest of a snapshot:
// totals, flag rate, and latency quantiles. Verdict latency is
// preferred; runs that score without a monitor (dvbench experiments)
// fall back to the validator's score latency.
func TelemetrySummary(w io.Writer, s telemetry.Snapshot) {
	checked := s.Counters[MetricChecked]
	flagged := s.Counters[MetricFlagged]
	invalid := s.Counters[MetricInvalidInput]
	lat, latName := s.Histograms[MetricVerdictLatency], "verdict"
	if lat.Count == 0 {
		if sl, ok := s.Histograms[MetricScoreLatency]; ok && sl.Count > 0 {
			lat, latName = sl, "score"
		}
	}
	if checked == 0 && lat.Count > 0 {
		// No monitor in the loop: report scored samples as checks.
		checked = lat.Count
	}
	fmt.Fprintln(w, "telemetry summary:")
	fmt.Fprintf(w, "  checks total               %d\n", checked)
	rate := 0.0
	if checked > 0 {
		rate = 100 * float64(flagged) / float64(checked)
	}
	fmt.Fprintf(w, "  flagged total              %d (%.1f%%)\n", flagged, rate)
	fmt.Fprintf(w, "  invalid inputs             %d\n", invalid)
	if q := s.Counters[MetricQuarantined]; q > 0 {
		fmt.Fprintf(w, "  quarantined (non-finite)   %d\n", q)
	}
	if lat.Count > 0 {
		fmt.Fprintf(w, "  %s latency p50/p95/p99  %.3fms / %.3fms / %.3fms\n",
			latName, 1e3*lat.P50, 1e3*lat.P95, 1e3*lat.P99)
	}
	if eps, ok := s.Gauges[MetricEpsilon]; ok {
		fmt.Fprintf(w, "  epsilon                    %.4f\n", eps)
	}
	if ft, ok := s.Histograms[MetricFitTotal]; ok && ft.Count > 0 {
		fmt.Fprintf(w, "  validator fits             %d (%.0fms total)\n", ft.Count, 1e3*ft.Sum)
		if sv, ok := s.Histograms[MetricFitSVM]; ok && sv.Count > 0 {
			fmt.Fprintf(w, "  svm fits p50/p95           %.3fms / %.3fms (%d fits)\n",
				1e3*sv.P50, 1e3*sv.P95, sv.Count)
		}
	}
}
