package core

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"deepvalidation/internal/metrics"
	"deepvalidation/internal/nn"
	"deepvalidation/internal/opt"
	"deepvalidation/internal/tensor"
)

// toyProblem builds a linearly separable 3-class problem on 1×8×8
// images: class k has a bright horizontal band in rows 2k..2k+2.
func toyProblem(rng *rand.Rand, n int) (xs []*tensor.Tensor, ys []int) {
	for i := 0; i < n; i++ {
		k := rng.Intn(3)
		img := tensor.New(1, 8, 8).FillUniform(rng, 0, 0.15)
		for y := 2 * k; y < 2*k+3; y++ {
			for x := 0; x < 8; x++ {
				img.Set(0.8+0.2*rng.Float64(), 0, y, x)
			}
		}
		xs = append(xs, img)
		ys = append(ys, k)
	}
	return xs, ys
}

// The toy fixture is trained once and shared read-only across tests.
var toyFixture struct {
	once sync.Once
	net  *nn.Network
	xs   []*tensor.Tensor
	ys   []int
	err  error
}

// trainedToyModel returns a small CNN trained to high accuracy on the
// toy problem together with its training data. The model and data are
// shared between tests; callers must not mutate them.
func trainedToyModel(t *testing.T) (*nn.Network, []*tensor.Tensor, []int) {
	t.Helper()
	toyFixture.once.Do(func() {
		rng := rand.New(rand.NewSource(11))
		net, err := nn.NewSevenLayerCNN("toy", 1, 8, 3, nn.ArchConfig{Width: 4, FCWidth: 16}, rng)
		if err != nil {
			toyFixture.err = err
			return
		}
		xs, ys := toyProblem(rng, 150)
		tr := nn.NewTrainer(net, opt.NewAdadelta(1.0, 0.95), rand.New(rand.NewSource(12)))
		tr.BatchSize = 16
		tr.Workers = 2
		stats, err := tr.Train(xs, ys, 20)
		if err != nil {
			toyFixture.err = err
			return
		}
		if acc := stats[len(stats)-1].Accuracy; acc < 0.95 {
			toyFixture.err = fmt.Errorf("toy model accuracy %v too low for validator tests", acc)
			return
		}
		toyFixture.net, toyFixture.xs, toyFixture.ys = net, xs, ys
	})
	if toyFixture.err != nil {
		t.Fatal(toyFixture.err)
	}
	return toyFixture.net, toyFixture.xs, toyFixture.ys
}

func fitToyValidator(t *testing.T, net *nn.Network, xs []*tensor.Tensor, ys []int) *Validator {
	t.Helper()
	v, err := Fit(net, xs, ys, Config{Nu: 0.1, MaxPerClass: 60, MaxFeatures: 64, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestFitProducesAllSVMs(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	if len(v.LayerIdx) != net.NumLayers()-1 {
		t.Fatalf("validated layers = %d, want %d (all hidden)", len(v.LayerIdx), net.NumLayers()-1)
	}
	for p, row := range v.SVMs {
		if len(row) != 3 {
			t.Fatalf("layer %d has %d class SVMs", p, len(row))
		}
		for k, m := range row {
			if m == nil {
				t.Fatalf("SVM(%d, %d) missing", v.LayerIdx[p], k)
			}
			if m.NumSupport() == 0 {
				t.Fatalf("SVM(%d, %d) has no support vectors", v.LayerIdx[p], k)
			}
		}
	}
	if v.ModelName != "toy" || v.Classes != 3 {
		t.Fatalf("metadata: %q classes=%d", v.ModelName, v.Classes)
	}
}

func TestValidatorSeparatesCleanFromCorrupted(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)

	rng := rand.New(rand.NewSource(21))
	cleanX, _ := toyProblem(rng, 60)
	cleanScores := JointScores(v.ScoreBatch(net, cleanX))

	// Corner cases: pure-noise images the model never saw.
	var badX []*tensor.Tensor
	for i := 0; i < 60; i++ {
		badX = append(badX, tensor.New(1, 8, 8).FillUniform(rng, 0, 1))
	}
	badScores := JointScores(v.ScoreBatch(net, badX))

	if auc := metrics.AUC(badScores, cleanScores); auc < 0.85 {
		t.Fatalf("validator AUC on noise corner cases = %v, want ≥ 0.85", auc)
	}
}

func TestScoreFieldsConsistent(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	res := v.Score(net, xs[0])
	if res.Label < 0 || res.Label >= 3 {
		t.Fatalf("label %d", res.Label)
	}
	if res.Confidence <= 0 || res.Confidence > 1 {
		t.Fatalf("confidence %v", res.Confidence)
	}
	if len(res.Layer) != len(v.LayerIdx) {
		t.Fatalf("%d layer scores for %d layers", len(res.Layer), len(v.LayerIdx))
	}
	sum := 0.0
	for _, d := range res.Layer {
		sum += d
	}
	if diff := sum - res.Joint; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("joint %v != sum of layers %v", res.Joint, sum)
	}
	// Consistency with the bare model.
	label, conf := net.Predict(xs[0])
	if label != res.Label || conf != res.Confidence {
		t.Fatal("Score prediction disagrees with Network.Predict")
	}
}

func TestWeightedJoint(t *testing.T) {
	r := Result{Layer: []float64{1, 2, 3}}
	if got := r.WeightedJoint([]float64{1, 0, 2}); got != 7 {
		t.Fatalf("WeightedJoint = %v, want 7", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on weight arity mismatch")
		}
	}()
	r.WeightedJoint([]float64{1})
}

func TestFitInputValidation(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	if _, err := Fit(net, nil, nil, DefaultConfig()); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Fit(net, xs, ys[:1], DefaultConfig()); err == nil {
		t.Error("mismatched labels accepted")
	}
	if _, err := Fit(net, xs, ys, Config{Layers: []int{99}}); err == nil {
		t.Error("out-of-range layer accepted")
	}
	if _, err := Fit(net, xs, ys, Config{Layers: []int{6}}); err == nil {
		t.Error("output layer accepted as a validation tap")
	}
	if _, err := Fit(net, xs, ys, Config{Layers: []int{1, 1}}); err == nil {
		t.Error("duplicate layer accepted")
	}
}

func TestFitSubsetOfLayers(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v, err := Fit(net, xs, ys, Config{Layers: []int{4, 5}, MaxPerClass: 40, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.LayerIdx) != 2 || v.LayerIdx[0] != 4 || v.LayerIdx[1] != 5 {
		t.Fatalf("LayerIdx = %v", v.LayerIdx)
	}
	res := v.Score(net, xs[0])
	if len(res.Layer) != 2 {
		t.Fatalf("layer scores = %d", len(res.Layer))
	}
}

func TestRearLayers(t *testing.T) {
	net, _, _ := trainedToyModel(t)
	got := RearLayers(net, 3) // 7 taps, 6 hidden -> layers 3,4,5
	want := []int{3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("RearLayers = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RearLayers = %v, want %v", got, want)
		}
	}
	if got := RearLayers(net, 99); len(got) != 6 {
		t.Fatalf("RearLayers(99) = %v, want all 6 hidden layers", got)
	}
}

func TestValidatorSaveLoadRoundTrip(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	want := v.Score(net, xs[3])

	path := filepath.Join(t.TempDir(), "validator.gob")
	if err := v.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadValidator(path)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Score(net, xs[3])
	if got.Joint != want.Joint || got.Label != want.Label {
		t.Fatalf("loaded validator scores differently: %+v vs %+v", got, want)
	}
}

func TestLoadValidatorMissingFile(t *testing.T) {
	if _, err := LoadValidator(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("expected error")
	}
}

func TestStrideSubsample(t *testing.T) {
	idx := make([]int, 100)
	for i := range idx {
		idx[i] = i
	}
	out := stride(idx, 10)
	if len(out) != 10 {
		t.Fatalf("stride kept %d", len(out))
	}
	if out[0] != 0 || out[9] != 90 {
		t.Fatalf("stride coverage: %v", out)
	}
	short := stride([]int{1, 2}, 10)
	if len(short) != 2 {
		t.Fatal("stride padded a short slice")
	}
}

func TestFitReducer(t *testing.T) {
	tests := []struct {
		shape    []int
		max      int
		wantPool int
	}{
		{[]int{8, 28, 28}, 256, 6},
		{[]int{8, 4, 4}, 256, 1},
		{[]int{64}, 256, 1},
		{[]int{16, 16, 16}, 64, 8},
	}
	for _, tc := range tests {
		r := fitReducer(tc.shape, tc.max)
		if r.Pool != tc.wantPool {
			t.Errorf("fitReducer(%v, %d).Pool = %d, want %d", tc.shape, tc.max, r.Pool, tc.wantPool)
		}
		if len(tc.shape) == 3 {
			if got := r.OutDim(tc.shape); got > tc.max {
				t.Errorf("reduced dim %d exceeds cap %d for %v", got, tc.max, tc.shape)
			}
		}
	}
}

func TestReduceAverages(t *testing.T) {
	x := tensor.From([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	r := FeatureReducer{Pool: 2}
	got := r.Reduce(x)
	want := []float64{3.5, 5.5, 11.5, 13.5}
	if len(got) != 4 {
		t.Fatalf("reduced length %d", len(got))
	}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("Reduce[%d] = %v, want %v", i, got[i], w)
		}
	}
	if got := r.OutDim(x.Shape); got != len(want) {
		t.Fatalf("OutDim = %d, want %d", got, len(want))
	}
}

func TestReduceUnevenPool(t *testing.T) {
	x := tensor.New(2, 5, 5).Fill(1)
	r := FeatureReducer{Pool: 2}
	got := r.Reduce(x)
	// ceil(5/2)=3 per side: 2*3*3 = 18 features, all averaging ones.
	if len(got) != 18 {
		t.Fatalf("reduced length %d, want 18", len(got))
	}
	for i, v := range got {
		if v != 1 {
			t.Fatalf("Reduce[%d] = %v, want 1", i, v)
		}
	}
}

func TestReduceFlatPassThrough(t *testing.T) {
	x := tensor.From([]float64{1, 2, 3}, 3)
	got := FeatureReducer{Pool: 4}.Reduce(x)
	if len(got) != 3 || got[1] != 2 {
		t.Fatalf("flat Reduce = %v", got)
	}
	// Must be a copy, not an alias.
	got[0] = 99
	if x.Data[0] == 99 {
		t.Fatal("Reduce aliased the activation")
	}
}

func TestJointAndLayerScoreExtractors(t *testing.T) {
	rs := []Result{
		{Joint: 1, Layer: []float64{0.5, 0.5}},
		{Joint: -2, Layer: []float64{-1, -1}},
	}
	js := JointScores(rs)
	if js[0] != 1 || js[1] != -2 {
		t.Fatalf("JointScores = %v", js)
	}
	ls := LayerScores(rs, 1)
	if ls[0] != 0.5 || ls[1] != -1 {
		t.Fatalf("LayerScores = %v", ls)
	}
}

func TestMonitorLifecycle(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	m, err := NewMonitor(net, v, 0)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(31))
	cleanX, _ := toyProblem(rng, 40)
	eps := m.CalibrateEpsilon(cleanX, 0.1)
	if m.Epsilon() != eps {
		t.Fatal("CalibrateEpsilon did not store the threshold")
	}

	// Clean inputs: mostly valid.
	valid := 0
	for _, x := range cleanX {
		if m.Check(x).Valid {
			valid++
		}
	}
	if frac := float64(valid) / float64(len(cleanX)); frac < 0.8 {
		t.Fatalf("clean validity fraction %v, want ≥ 0.8", frac)
	}

	// Noise inputs: mostly flagged.
	flagged := 0
	for i := 0; i < 40; i++ {
		x := tensor.New(1, 8, 8).FillUniform(rng, 0, 1)
		verdict := m.Check(x)
		if !verdict.Valid {
			flagged++
		}
	}
	if frac := float64(flagged) / 40.0; frac < 0.6 {
		t.Fatalf("noise flag fraction %v, want ≥ 0.6", frac)
	}

	checked, totalFlagged, rate := m.Stats()
	if checked != 80 {
		t.Fatalf("checked = %d, want 80", checked)
	}
	if totalFlagged < flagged {
		t.Fatalf("flagged count %d < %d", totalFlagged, flagged)
	}
	if rate <= 0 || rate > 1 {
		t.Fatalf("recent alarm rate = %v", rate)
	}
}

func TestMonitorConstructorValidation(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	if _, err := NewMonitor(nil, v, 0); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := NewMonitor(net, nil, 0); err == nil {
		t.Error("nil validator accepted")
	}
	v2 := v.Clone()
	v2.Classes = 7
	if _, err := NewMonitor(net, v2, 0); err == nil {
		t.Error("class mismatch accepted")
	}
	v3 := v.Clone()
	v3.LayerIdx = []int{99}
	if _, err := NewMonitor(net, v3, 0); err == nil {
		t.Error("layer overflow accepted")
	}
}

func TestFitNormalization(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	if v.HasNormalization() {
		t.Fatal("normalization reported before fitting")
	}
	rng := rand.New(rand.NewSource(41))
	cleanX, _ := toyProblem(rng, 50)
	if err := v.FitNormalization(net, cleanX); err != nil {
		t.Fatal(err)
	}
	if !v.HasNormalization() {
		t.Fatal("normalization not recorded")
	}

	// Clean scores should be roughly centered after z-scoring.
	res := v.ScoreBatch(net, cleanX)
	norm := v.NormalizedJointScores(res)
	mean := 0.0
	for _, s := range norm {
		mean += s
	}
	mean /= float64(len(norm))
	if mean < -1 || mean > 1 {
		t.Fatalf("normalized clean mean %v far from 0", mean)
	}

	// Normalized scores must still separate noise from clean.
	var noise []*tensor.Tensor
	for i := 0; i < 50; i++ {
		noise = append(noise, tensor.New(1, 8, 8).FillUniform(rng, 0, 1))
	}
	noiseNorm := v.NormalizedJointScores(v.ScoreBatch(net, noise))
	if auc := metrics.AUC(noiseNorm, norm); auc < 0.85 {
		t.Fatalf("normalized joint AUC %v too low", auc)
	}
}

func TestFitNormalizationValidation(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	if err := v.FitNormalization(net, xs[:1]); err == nil {
		t.Fatal("single-sample normalization accepted")
	}
}

func TestNormalizedJointBeforeFitPanics(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v.NormalizedJoint(v.Score(net, xs[0]))
}

func TestNormalizationSurvivesSerialization(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	rng := rand.New(rand.NewSource(43))
	cleanX, _ := toyProblem(rng, 30)
	if err := v.FitNormalization(net, cleanX); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "v.gob")
	if err := v.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadValidator(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.HasNormalization() {
		t.Fatal("normalization lost in serialization")
	}
	want := v.NormalizedJoint(v.Score(net, xs[0]))
	got := loaded.NormalizedJoint(loaded.Score(net, xs[0]))
	if want != got {
		t.Fatalf("normalized joints differ: %v vs %v", got, want)
	}
}

func TestMonitorConcurrentChecks(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	m, err := NewMonitor(net, v, 100) // generous ε: everything valid
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const goroutines, perG = 8, 10
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.Check(xs[(g*perG+i)%len(xs)])
			}
		}(g)
	}
	wg.Wait()
	checked, _, _ := m.Stats()
	if checked != goroutines*perG {
		t.Fatalf("checked = %d, want %d", checked, goroutines*perG)
	}
}

func TestMonitorSetEpsilon(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	m, err := NewMonitor(net, v, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.SetEpsilon(42)
	if m.Epsilon() != 42 {
		t.Fatal("SetEpsilon not stored")
	}
}

func TestTuneNu(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	rng := rand.New(rand.NewSource(61))
	valX, _ := toyProblem(rng, 40)
	base := Config{MaxPerClass: 40, MaxFeatures: 64, Workers: 2}
	cands, best, err := TuneNu(net, xs, ys, valX, 0.15, base, []float64{0.05, 0.1, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 3 {
		t.Fatalf("candidates = %d", len(cands))
	}
	found := false
	for _, c := range cands {
		if c.CleanFlagRate < 0 || c.CleanFlagRate > 1 {
			t.Fatalf("flag rate %v out of range", c.CleanFlagRate)
		}
		if c.Nu == best {
			found = true
			if c.CleanFlagRate > 0.15 {
				// best may be the fallback; only check when some
				// candidate met the budget.
				for _, o := range cands {
					if o.CleanFlagRate <= 0.15 {
						t.Fatalf("selected ν=%v violates budget though %v met it", best, o.Nu)
					}
				}
			}
		}
	}
	if !found {
		t.Fatalf("selected ν=%v not among candidates", best)
	}
}

func TestTuneNuValidation(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	base := Config{MaxPerClass: 40, MaxFeatures: 64}
	if _, _, err := TuneNu(net, xs, ys, nil, 0.1, base, []float64{0.1}); err == nil {
		t.Error("empty validation set accepted")
	}
	if _, _, err := TuneNu(net, xs, ys, xs[:5], 0.1, base, nil); err == nil {
		t.Error("empty candidates accepted")
	}
	if _, _, err := TuneNu(net, xs, ys, xs[:5], 0.1, base, []float64{2}); err == nil {
		t.Error("ν > 1 accepted")
	}
}

func TestScoreBatchMatchesSequentialScore(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)

	// Ground truth: one sequential Score call per sample.
	want := make([]Result, 30)
	for i := range want {
		want[i] = v.Score(net, xs[i])
	}

	for _, workers := range []int{0, 1, 2, 4, 8, 64} {
		got := v.ScoreBatchWorkers(net, xs[:30], workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results for %d samples", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].Label != want[i].Label || got[i].Confidence != want[i].Confidence ||
				got[i].Joint != want[i].Joint {
				t.Fatalf("workers=%d sample %d differs: %+v vs %+v", workers, i, got[i], want[i])
			}
			for p := range want[i].Layer {
				if got[i].Layer[p] != want[i].Layer[p] {
					t.Fatalf("workers=%d sample %d layer %d differs", workers, i, p)
				}
			}
		}
	}

	// Degenerate batches must round-trip through the pool untouched.
	if got := v.ScoreBatch(net, nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
	if got := v.ScoreBatchWorkers(net, nil, 8); len(got) != 0 {
		t.Fatalf("empty batch with workers returned %d results", len(got))
	}
	single := v.ScoreBatchWorkers(net, xs[:1], 8)
	if len(single) != 1 || single[0].Joint != want[0].Joint {
		t.Fatalf("single-element batch differs: %+v vs %+v", single, want[0])
	}
}

func TestSaveLoadPreservesBatchScores(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)
	fixed := xs[:40]
	want := JointScores(v.ScoreBatch(net, fixed))

	path := filepath.Join(t.TempDir(), "validator.gob")
	if err := v.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadValidator(path)
	if err != nil {
		t.Fatal(err)
	}
	got := JointScores(loaded.ScoreBatch(net, fixed))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: loaded validator Joint %v != %v", i, got[i], want[i])
		}
	}
}

func TestMonitorCheckBatchMatchesCheck(t *testing.T) {
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)

	seq, err := NewMonitor(net, v, 0)
	if err != nil {
		t.Fatal(err)
	}
	eps := seq.CalibrateEpsilon(xs[:40], 0.1)

	par, err := NewMonitor(net, v, eps)
	if err != nil {
		t.Fatal(err)
	}
	par.SetWorkers(4)
	if par.Workers() != 4 {
		t.Fatal("SetWorkers not stored")
	}

	batch := par.CheckBatch(xs[:50])
	for i, x := range xs[:50] {
		want := seq.Check(x)
		if batch[i] != want {
			t.Fatalf("sample %d: CheckBatch %+v != Check %+v", i, batch[i], want)
		}
	}
	sc, sf, sr := seq.Stats()
	pc, pf, pr := par.Stats()
	if sc != pc || sf != pf || sr != pr {
		t.Fatalf("stats diverge: seq (%d,%d,%v) vs batch (%d,%d,%v)", sc, sf, sr, pc, pf, pr)
	}
	if empty := par.CheckBatch(nil); len(empty) != 0 {
		t.Fatalf("empty CheckBatch returned %d verdicts", len(empty))
	}
}

func TestMonitorFailsSafeOnCorruptedModel(t *testing.T) {
	// Failure injection: if the deployed model's weights are corrupted
	// (bit flips, bad checkpoint), activations go NaN and the verdict
	// must come back invalid — never "valid" by accident.
	net, xs, ys := trainedToyModel(t)
	v := fitToyValidator(t, net, xs, ys)

	// Work on a private copy of the network so the shared fixture
	// stays intact.
	path := filepath.Join(t.TempDir(), "m.gob")
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	corrupt, err := nn.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// A single NaN weight would be masked by ReLU (NaN > 0 is false),
	// so corrupt the whole first-layer weight tensor — activations are
	// then zeroed or NaN everywhere, far outside every reference
	// distribution.
	corrupt.Params()[0].Value.Fill(math.NaN())

	// Calibrate ε on the healthy model's clean scores, as a deployment
	// would, then swap in the corrupted weights.
	healthy, err := NewMonitor(net, v, 0)
	if err != nil {
		t.Fatal(err)
	}
	eps := healthy.CalibrateEpsilon(xs[:50], 0.1)

	m, err := NewMonitor(corrupt, v, eps)
	if err != nil {
		t.Fatal(err)
	}
	verdict := m.Check(xs[0])
	if verdict.Valid {
		t.Fatalf("corrupted model produced a valid verdict: %+v (ε=%v)", verdict, eps)
	}
}
