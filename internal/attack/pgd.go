package attack

import (
	"math/rand"

	"deepvalidation/internal/nn"
	"deepvalidation/internal/tensor"
)

// PGD runs the untargeted projected gradient descent attack of Madry et
// al. (paper reference [38]): BIM from a uniformly random start inside
// the ε-ball, optionally restarted. It is the strongest first-order
// L∞ attack in common use and extends the Table VIII battery.
func PGD(net *nn.Network, x *tensor.Tensor, label int, eps, alpha float64, iters, restarts int, rng *rand.Rand) Result {
	if restarts < 1 {
		restarts = 1
	}
	best := Result{Adversarial: x.Clone()}
	bestLoss := -1.0
	for r := 0; r < restarts; r++ {
		adv := x.Clone()
		for i := range adv.Data {
			adv.Data[i] += eps * (2*rng.Float64() - 1)
			adv.Data[i] = clampBox(adv.Data[i], x.Data[i], eps)
		}
		for it := 0; it < iters; it++ {
			g := lossGrad(net, adv, label)
			for i, v := range g.Data {
				adv.Data[i] += alpha * sign(v)
				adv.Data[i] = clampBox(adv.Data[i], x.Data[i], eps)
			}
		}
		res := finish(net, adv, label)
		probs := net.Forward(adv)
		loss, _ := nn.CrossEntropy(probs, label)
		if res.Success && !best.Success {
			best, bestLoss = res, loss
		} else if res.Success == best.Success && loss > bestLoss {
			best, bestLoss = res, loss
		}
	}
	return best
}

// clampBox projects v into [orig−eps, orig+eps] ∩ [0, 1].
func clampBox(v, orig, eps float64) float64 {
	if v < orig-eps {
		v = orig - eps
	} else if v > orig+eps {
		v = orig + eps
	}
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
