package attack

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"deepvalidation/internal/nn"
	"deepvalidation/internal/opt"
	"deepvalidation/internal/tensor"
)

func toyProblem(rng *rand.Rand, n int) (xs []*tensor.Tensor, ys []int) {
	for i := 0; i < n; i++ {
		k := rng.Intn(3)
		img := tensor.New(1, 8, 8).FillUniform(rng, 0, 0.15)
		for y := 2 * k; y < 2*k+3; y++ {
			for x := 0; x < 8; x++ {
				img.Set(0.8+0.2*rng.Float64(), 0, y, x)
			}
		}
		xs = append(xs, img)
		ys = append(ys, k)
	}
	return xs, ys
}

var fixture struct {
	once  sync.Once
	net   *nn.Network
	seeds []*tensor.Tensor
	ys    []int
	err   error
}

func toyNet(t *testing.T) (*nn.Network, []*tensor.Tensor, []int) {
	t.Helper()
	fixture.once.Do(func() {
		rng := rand.New(rand.NewSource(11))
		net, err := nn.NewSevenLayerCNN("toy", 1, 8, 3, nn.ArchConfig{Width: 4, FCWidth: 16}, rng)
		if err != nil {
			fixture.err = err
			return
		}
		xs, ys := toyProblem(rng, 150)
		tr := nn.NewTrainer(net, opt.NewAdadelta(1.0, 0.95), rand.New(rand.NewSource(12)))
		tr.BatchSize = 16
		stats, err := tr.Train(xs, ys, 20)
		if err != nil {
			fixture.err = err
			return
		}
		if acc := stats[len(stats)-1].Accuracy; acc < 0.95 {
			fixture.err = fmt.Errorf("toy accuracy %v too low", acc)
			return
		}
		// Correctly classified seeds only.
		for i, x := range xs {
			if len(fixture.seeds) == 12 {
				break
			}
			if pred, _ := net.Predict(x); pred == ys[i] {
				fixture.seeds = append(fixture.seeds, x)
				fixture.ys = append(fixture.ys, ys[i])
			}
		}
		fixture.net = net
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	return fixture.net, fixture.seeds, fixture.ys
}

func inBox(t *testing.T, img *tensor.Tensor) {
	t.Helper()
	if img.Min() < -1e-12 || img.Max() > 1+1e-12 {
		t.Fatalf("adversarial image escaped [0,1]: [%v, %v]", img.Min(), img.Max())
	}
}

func TestFGSMZeroEpsilonIsNoop(t *testing.T) {
	net, seeds, ys := toyNet(t)
	r := FGSM(net, seeds[0], ys[0], 0)
	if !r.Adversarial.AllClose(seeds[0], 0) {
		t.Fatal("eps=0 changed the image")
	}
	if r.Success {
		t.Fatal("eps=0 cannot succeed on a correctly classified seed")
	}
}

func TestFGSMBoundedPerturbation(t *testing.T) {
	net, seeds, ys := toyNet(t)
	eps := 0.2
	for i, x := range seeds {
		r := FGSM(net, x, ys[i], eps)
		inBox(t, r.Adversarial)
		if d := r.Adversarial.Sub(x).LInfNorm(); d > eps+1e-12 {
			t.Fatalf("FGSM L∞ = %v exceeds eps %v", d, eps)
		}
	}
}

func TestFGSMLargeEpsilonSucceedsSometimes(t *testing.T) {
	net, seeds, ys := toyNet(t)
	wins := 0
	for i, x := range seeds {
		if FGSM(net, x, ys[i], 0.5).Success {
			wins++
		}
	}
	if wins == 0 {
		t.Fatal("FGSM at eps=0.5 never succeeded on the fragile toy model")
	}
}

func TestBIMBoundedAndStrongerThanFGSM(t *testing.T) {
	net, seeds, ys := toyNet(t)
	eps := 0.25
	fgsmWins, bimWins := 0, 0
	for i, x := range seeds {
		rf := FGSM(net, x, ys[i], eps)
		rb := BIM(net, x, ys[i], eps, 0.05, 10)
		inBox(t, rb.Adversarial)
		if d := rb.Adversarial.Sub(x).LInfNorm(); d > eps+1e-12 {
			t.Fatalf("BIM L∞ = %v exceeds eps %v", d, eps)
		}
		if rf.Success {
			fgsmWins++
		}
		if rb.Success {
			bimWins++
		}
	}
	if bimWins < fgsmWins {
		t.Fatalf("BIM (%d wins) weaker than FGSM (%d wins) at equal eps", bimWins, fgsmWins)
	}
}

func TestNextClass(t *testing.T) {
	if NextClass(9, 10) != 0 || NextClass(3, 10) != 4 {
		t.Fatal("NextClass wrong")
	}
}

func TestLeastLikelyIsNotPrediction(t *testing.T) {
	net, seeds, _ := toyNet(t)
	for _, x := range seeds {
		pred, _ := net.Predict(x)
		ll := LeastLikely(net, x)
		if ll == pred {
			t.Fatal("least-likely class equals the prediction")
		}
	}
}

func TestJSMARespectsPixelBudget(t *testing.T) {
	net, seeds, ys := toyNet(t)
	maxFrac := 0.15
	for i, x := range seeds[:6] {
		target := NextClass(ys[i], 3)
		r := JSMA(net, x, ys[i], target, 1.0, maxFrac)
		inBox(t, r.Adversarial)
		changed := r.Adversarial.Sub(x).L0Norm()
		budget := int(maxFrac * float64(x.Len()))
		if changed > budget {
			t.Fatalf("JSMA changed %d pixels, budget %d", changed, budget)
		}
	}
}

func TestJSMASucceedsOnFragileModel(t *testing.T) {
	net, seeds, ys := toyNet(t)
	wins := 0
	for i, x := range seeds {
		if JSMA(net, x, ys[i], NextClass(ys[i], 3), 1.0, 0.3).Success {
			wins++
		}
	}
	if wins == 0 {
		t.Fatal("JSMA never succeeded")
	}
}

func TestCWL2FindsSmallPerturbations(t *testing.T) {
	net, seeds, ys := toyNet(t)
	cfg := CWConfig{BinarySearchSteps: 3, InitialC: 0.1, Iterations: 60, LR: 0.1}
	wins := 0
	var dists []float64
	for i, x := range seeds[:6] {
		r := CWL2(net, x, ys[i], NextClass(ys[i], 3), cfg)
		inBox(t, r.Adversarial)
		if r.Success {
			wins++
			dists = append(dists, r.Adversarial.Sub(x).L2Norm())
		}
	}
	if wins < 3 {
		t.Fatalf("CW2 won only %d/6 on the fragile toy model", wins)
	}
	for _, d := range dists {
		// The whole image has L2 ≈ sqrt(64)·0.5 ≈ 4; CW should perturb
		// far less than replacing the image.
		if d > 4 {
			t.Fatalf("CW2 perturbation L2 = %v implausibly large", d)
		}
	}
}

func TestCWLInfProducesBoundedPerturbations(t *testing.T) {
	net, seeds, ys := toyNet(t)
	cfg := CWConfig{BinarySearchSteps: 2, InitialC: 0.1, Iterations: 50, LR: 0.05}
	wins := 0
	for i, x := range seeds[:6] {
		r := CWLInf(net, x, ys[i], NextClass(ys[i], 3), cfg)
		inBox(t, r.Adversarial)
		if r.Success {
			wins++
			if d := r.Adversarial.Sub(x).LInfNorm(); d > 0.9 {
				t.Fatalf("CW∞ perturbation %v is as large as the pixel range", d)
			}
		}
	}
	if wins == 0 {
		t.Fatal("CW∞ never succeeded")
	}
}

func TestCWL0SparsePerturbations(t *testing.T) {
	net, seeds, ys := toyNet(t)
	cfg := CWConfig{BinarySearchSteps: 2, InitialC: 0.1, Iterations: 50, LR: 0.1}
	wins, sparseWins := 0, 0
	for i, x := range seeds[:4] {
		r := CWL0(net, x, ys[i], NextClass(ys[i], 3), cfg)
		inBox(t, r.Adversarial)
		if r.Success {
			wins++
			changed := 0
			for j := range x.Data {
				if absf(r.Adversarial.Data[j]-x.Data[j]) > 1e-3 {
					changed++
				}
			}
			if changed < x.Len() {
				sparseWins++
			}
		}
	}
	if wins == 0 {
		t.Fatal("CW0 never succeeded")
	}
	// Freezing cannot always shrink the support, but it must do so on
	// at least one seed or it is not doing anything.
	if sparseWins == 0 {
		t.Fatal("CW0 never produced a sparse perturbation; freezing had no effect")
	}
}

func TestCWObjectiveGradSignConvention(t *testing.T) {
	net, seeds, ys := toyNet(t)
	x := seeds[0]
	target := NextClass(ys[0], 3)
	margin, g := cwObjectiveGrad(net, x, target, 0)
	// Seed is classified as ys[0] ≠ target, so the margin must be
	// positive (attack not yet successful) with a usable gradient.
	if margin <= 0 {
		t.Fatalf("margin = %v on an unattacked seed", margin)
	}
	if g.L2Norm() == 0 {
		t.Fatal("zero gradient on active margin")
	}
	// Targeting the predicted class, the raw margin is negative; with
	// κ below |margin| the hinge is inactive: the gradient vanishes
	// but the raw margin is still reported for success detection.
	m0, _ := cwObjectiveGrad(net, x, ys[0], 0)
	if m0 >= 0 {
		t.Fatalf("margin targeting the prediction = %v, want < 0", m0)
	}
	m2, g2 := cwObjectiveGrad(net, x, ys[0], -m0/2)
	if m2 != m0 || g2.L2Norm() != 0 {
		t.Fatalf("hinged objective: margin %v (want %v) grad %v", m2, m0, g2.L2Norm())
	}
}

func TestPercentileMag(t *testing.T) {
	got := percentileMag([]float64{5, 1, 3, 2, 4}, 0.2)
	if got != 2 {
		t.Fatalf("20th percentile = %v, want 2", got)
	}
	if got := percentileMag([]float64{7}, 0.99); got != 7 {
		t.Fatalf("single-element percentile = %v", got)
	}
}

func TestSign(t *testing.T) {
	if sign(2) != 1 || sign(-0.5) != -1 || sign(0) != 0 {
		t.Fatal("sign wrong")
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestPGDBoundedAndAtLeastBIM(t *testing.T) {
	net, seeds, ys := toyNet(t)
	eps := 0.25
	rng := rand.New(rand.NewSource(91))
	pgdWins, bimWins := 0, 0
	for i, x := range seeds {
		rp := PGD(net, x, ys[i], eps, 0.05, 10, 2, rng)
		inBox(t, rp.Adversarial)
		if d := rp.Adversarial.Sub(x).LInfNorm(); d > eps+1e-12 {
			t.Fatalf("PGD L∞ = %v exceeds eps %v", d, eps)
		}
		if rp.Success {
			pgdWins++
		}
		if BIM(net, x, ys[i], eps, 0.05, 10).Success {
			bimWins++
		}
	}
	if pgdWins < bimWins-1 {
		t.Fatalf("PGD (%d wins) notably weaker than BIM (%d wins)", pgdWins, bimWins)
	}
}

func TestPGDZeroEpsilonStaysPut(t *testing.T) {
	net, seeds, ys := toyNet(t)
	rng := rand.New(rand.NewSource(92))
	r := PGD(net, seeds[0], ys[0], 0, 0.05, 5, 1, rng)
	if !r.Adversarial.AllClose(seeds[0], 1e-12) {
		t.Fatal("eps=0 PGD moved the image")
	}
}
