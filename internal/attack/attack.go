// Package attack implements the white-box adversarial attacks of the
// paper's Section IV-D5 evaluation (Table VIII): FGSM (Goodfellow et
// al.), BIM (Kurakin et al.), JSMA (Papernot et al.), and the
// Carlini–Wagner L2, L∞ and L0 attacks. All operate in the [0,1] pixel
// box on a single sample and rely on the nn package's exact input and
// logit gradients.
package attack

import (
	"fmt"
	"math"
	"sort"

	"deepvalidation/internal/nn"
	"deepvalidation/internal/tensor"
)

// Result reports one attack attempt.
type Result struct {
	// Adversarial is the crafted image (always returned, even on
	// failure: a failed adversarial example — FAE — is still evaluated
	// by the detectors, Section IV-D5).
	Adversarial *tensor.Tensor
	// Pred and Conf are the model's output on Adversarial.
	Pred int
	Conf float64
	// Success is true when Pred differs from the original label
	// ("successful adversarial samples (SAEs) still mean the ones that
	// cause wrong predictions regardless of their target labels").
	Success bool
}

func finish(net *nn.Network, adv *tensor.Tensor, origLabel int) Result {
	pred, conf := net.Predict(adv)
	return Result{Adversarial: adv, Pred: pred, Conf: conf, Success: pred != origLabel}
}

// lossGrad returns ∇ₓ CE(f(x), label).
func lossGrad(net *nn.Network, x *tensor.Tensor, label int) *tensor.Tensor {
	return net.InputGradient(x, label)
}

// FGSM runs the untargeted fast gradient sign method with step eps.
func FGSM(net *nn.Network, x *tensor.Tensor, label int, eps float64) Result {
	g := lossGrad(net, x, label)
	adv := x.Clone()
	for i, v := range g.Data {
		adv.Data[i] += eps * sign(v)
	}
	adv.ClampInPlace(0, 1)
	return finish(net, adv, label)
}

// BIM runs the untargeted basic iterative method: iters steps of size
// alpha, each projected back into the ε-ball around x and the pixel
// box.
func BIM(net *nn.Network, x *tensor.Tensor, label int, eps, alpha float64, iters int) Result {
	adv := x.Clone()
	for it := 0; it < iters; it++ {
		g := lossGrad(net, adv, label)
		for i, v := range g.Data {
			adv.Data[i] += alpha * sign(v)
			// Project into the ε-ball and the box.
			lo, hi := x.Data[i]-eps, x.Data[i]+eps
			if adv.Data[i] < lo {
				adv.Data[i] = lo
			} else if adv.Data[i] > hi {
				adv.Data[i] = hi
			}
			if adv.Data[i] < 0 {
				adv.Data[i] = 0
			} else if adv.Data[i] > 1 {
				adv.Data[i] = 1
			}
		}
	}
	return finish(net, adv, label)
}

// Target selection helpers for Table VIII's "Next" and "LL" rows.

// NextClass returns (label+1) mod classes, the paper's "Next" target.
func NextClass(label, classes int) int { return (label + 1) % classes }

// LeastLikely returns the class the model currently finds least likely
// for x, the paper's "LL" target.
func LeastLikely(net *nn.Network, x *tensor.Tensor) int {
	p := net.Forward(x)
	best := 0
	for i, v := range p.Data {
		if v < p.Data[best] {
			best = i
		}
	}
	return best
}

// JSMA runs a targeted Jacobian-based saliency map attack: per
// iteration it computes the logit Jacobian rows for the target and the
// complement, selects the most salient still-unmodified pixel, and
// moves it by theta. maxFrac bounds the fraction of modified pixels.
// This is the single-pixel variant of Papernot et al.'s pairwise
// search; the saliency rule is identical.
func JSMA(net *nn.Network, x *tensor.Tensor, origLabel, target int, theta, maxFrac float64) Result {
	adv := x.Clone()
	n := adv.Len()
	maxPixels := int(maxFrac * float64(n))
	used := make([]bool, n)
	for it := 0; it < maxPixels; it++ {
		if pred, _ := net.Predict(adv); pred == target {
			break
		}
		// Two backward passes give dZ_t/dx and d(Σ_j Z_j)/dx.
		ctx := nn.NewContext(false, nil)
		logits := net.ForwardToLogits(adv, ctx)
		gt := net.BackwardFromLogits(nn.OneHot(logits.Len(), target), ctx)

		ctx2 := nn.NewContext(false, nil)
		net.ForwardToLogits(adv, ctx2)
		ones := tensor.New(logits.Len()).Fill(1)
		gsum := net.BackwardFromLogits(ones, ctx2)

		// Saliency: prefer pixels that push the target logit up while
		// pulling the others down, with room to move.
		bestIdx := -1
		bestScore := 0.0
		bestDir := 0.0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			a := gt.Data[i]
			b := gsum.Data[i] - a // Σ_{j≠t} dZ_j/dx_i
			var s, dir float64
			switch {
			case a > 0 && b < 0 && adv.Data[i] < 1:
				s, dir = a*-b, 1
			case a < 0 && b > 0 && adv.Data[i] > 0:
				s, dir = -a*b, -1
			default:
				continue
			}
			if s > bestScore {
				bestScore, bestIdx, bestDir = s, i, dir
			}
		}
		if bestIdx < 0 {
			break
		}
		adv.Data[bestIdx] += bestDir * theta
		if adv.Data[bestIdx] > 1 {
			adv.Data[bestIdx] = 1
		} else if adv.Data[bestIdx] < 0 {
			adv.Data[bestIdx] = 0
		}
		used[bestIdx] = true
	}
	return finish(net, adv, origLabel)
}

// CWConfig parameterizes the Carlini–Wagner attacks.
type CWConfig struct {
	// Confidence is the κ margin of the CW objective (default 0).
	Confidence float64
	// BinarySearchSteps and InitialC drive the trade-off search
	// (defaults 3 and 1e-2).
	BinarySearchSteps int
	InitialC          float64
	// Iterations is the inner Adam loop length (default 80).
	Iterations int
	// LR is the Adam learning rate (default 0.05).
	LR float64
}

// DefaultCWConfig returns CPU-scale defaults; the attack loop matches
// Carlini & Wagner's, only the iteration budget is reduced.
func DefaultCWConfig() CWConfig {
	return CWConfig{BinarySearchSteps: 3, InitialC: 1e-2, Iterations: 80, LR: 0.05}
}

func (c CWConfig) withDefaults() CWConfig {
	if c.BinarySearchSteps <= 0 {
		c.BinarySearchSteps = 3
	}
	if c.InitialC <= 0 {
		c.InitialC = 1e-2
	}
	if c.Iterations <= 0 {
		c.Iterations = 80
	}
	if c.LR <= 0 {
		c.LR = 0.05
	}
	return c
}

// cwObjectiveGrad evaluates the CW margin loss
// f(x') = max(max_{i≠t} Z_i − Z_t, −κ) and its gradient with respect
// to the input.
func cwObjectiveGrad(net *nn.Network, x *tensor.Tensor, target int, kappa float64) (float64, *tensor.Tensor) {
	ctx := nn.NewContext(false, nil)
	z := net.ForwardToLogits(x, ctx)
	// Strongest competing logit.
	other := -1
	for i := range z.Data {
		if i == target {
			continue
		}
		if other < 0 || z.Data[i] > z.Data[other] {
			other = i
		}
	}
	margin := z.Data[other] - z.Data[target]
	if margin < -kappa {
		// Hinge inactive: the attack already clears the κ margin, so
		// the objective contributes no gradient. The raw margin is
		// still returned so callers can detect success (margin < 0).
		return margin, tensor.New(x.Shape...)
	}
	gz := tensor.New(z.Len())
	gz.Data[other] = 1
	gz.Data[target] = -1
	return margin, net.BackwardFromLogits(gz, ctx)
}

// CWL2 runs the targeted Carlini–Wagner L2 attack: minimize
// ‖x'−x‖² + c·f(x') over w with x' = (tanh(w)+1)/2, binary-searching c.
func CWL2(net *nn.Network, x *tensor.Tensor, origLabel, target int, cfg CWConfig) Result {
	cfg = cfg.withDefaults()
	n := x.Len()

	// Map x into tanh space, nudging off the boundary.
	w0 := make([]float64, n)
	for i, v := range x.Data {
		v = math.Min(math.Max(v, 1e-6), 1-1e-6)
		w0[i] = math.Atanh(2*v - 1)
	}

	c := cfg.InitialC
	lowerC, upperC := 0.0, math.Inf(1)
	var best *tensor.Tensor
	bestDist := math.Inf(1)

	for step := 0; step < cfg.BinarySearchSteps; step++ {
		w := append([]float64(nil), w0...)
		adam := newAdamState(n, cfg.LR)
		succeeded := false
		for it := 0; it < cfg.Iterations; it++ {
			adv, dxdw := tanhImage(w, x.Shape)
			margin, gAttack := cwObjectiveGrad(net, adv, target, cfg.Confidence)

			if margin < 0 {
				succeeded = true
				if d := adv.Sub(x).L2Norm(); d < bestDist {
					bestDist = d
					best = adv.Clone()
				}
			}
			// ∇_w [‖x'−x‖² + c·f(x')] = (2(x'−x) + c∇f) ⊙ dx'/dw.
			for i := 0; i < n; i++ {
				g := (2*(adv.Data[i]-x.Data[i]) + c*gAttack.Data[i]) * dxdw[i]
				w[i] += adam.step(i, g)
			}
		}
		if succeeded {
			upperC = c
			c = (lowerC + upperC) / 2
		} else {
			lowerC = c
			if math.IsInf(upperC, 1) {
				c *= 10
			} else {
				c = (lowerC + upperC) / 2
			}
		}
	}
	if best == nil {
		adv, _ := tanhImage(w0, x.Shape)
		return finish(net, adv, origLabel)
	}
	return finish(net, best, origLabel)
}

// CWLInf runs the targeted CW L∞ attack: repeated penalized descent
// minimizing c·f(x') + Σᵢ max(|x'ᵢ−xᵢ|−τ, 0), shrinking τ while the
// attack keeps succeeding (Carlini & Wagner's iterative refinement).
func CWLInf(net *nn.Network, x *tensor.Tensor, origLabel, target int, cfg CWConfig) Result {
	cfg = cfg.withDefaults()
	n := x.Len()
	tau := 1.0
	c := cfg.InitialC * 10
	var best *tensor.Tensor

	adv := x.Clone()
	for round := 0; round < cfg.BinarySearchSteps+3; round++ {
		adam := newAdamState(n, cfg.LR)
		succeeded := false
		cur := adv.Clone()
		for it := 0; it < cfg.Iterations; it++ {
			margin, gAttack := cwObjectiveGrad(net, cur, target, cfg.Confidence)
			if margin < 0 {
				succeeded = true
			}
			for i := 0; i < n; i++ {
				g := c * gAttack.Data[i]
				d := cur.Data[i] - x.Data[i]
				if d > tau {
					g += 1
				} else if d < -tau {
					g -= 1
				}
				cur.Data[i] += adam.step(i, g)
				if cur.Data[i] < 0 {
					cur.Data[i] = 0
				} else if cur.Data[i] > 1 {
					cur.Data[i] = 1
				}
			}
		}
		if !succeeded {
			c *= 5 // attack failed at this penalty; try harder
			continue
		}
		best = cur.Clone()
		adv = cur
		// Shrink the allowed perturbation toward the achieved L∞.
		actual := cur.Sub(x).LInfNorm()
		if actual < tau {
			tau = actual
		}
		tau *= 0.8
		if tau < 1.0/255 {
			break
		}
	}
	if best == nil {
		return finish(net, adv, origLabel)
	}
	return finish(net, best, origLabel)
}

// CWL0 runs the targeted CW L0 attack: repeatedly solve an L2 instance
// on a shrinking pixel support, freezing the pixels the L2 solution
// moved least (Carlini & Wagner's iterative freezing scheme).
func CWL0(net *nn.Network, x *tensor.Tensor, origLabel, target int, cfg CWConfig) Result {
	cfg = cfg.withDefaults()
	n := x.Len()
	allowed := make([]bool, n)
	for i := range allowed {
		allowed[i] = true
	}
	var best *tensor.Tensor

	for round := 0; round < 6; round++ {
		adv, ok := cwL2Masked(net, x, target, cfg, allowed)
		if !ok {
			break
		}
		best = adv
		// Freeze the ~20% least-perturbed still-allowed pixels.
		type pix struct {
			idx int
			mag float64
		}
		var moved []pix
		for i := 0; i < n; i++ {
			if allowed[i] {
				moved = append(moved, pix{i, math.Abs(adv.Data[i] - x.Data[i])})
			}
		}
		if len(moved) <= 1 {
			break
		}
		// Selection by threshold of the 20th percentile magnitude.
		mags := make([]float64, len(moved))
		for i, p := range moved {
			mags[i] = p.mag
		}
		kth := percentileMag(mags, 0.2)
		frozen := 0
		for _, p := range moved {
			if p.mag <= kth {
				allowed[p.idx] = false
				frozen++
			}
		}
		if frozen == 0 {
			break
		}
	}
	if best == nil {
		return finish(net, x.Clone(), origLabel)
	}
	return finish(net, best, origLabel)
}

// percentileMag returns the q-quantile of the given magnitudes.
func percentileMag(mags []float64, q float64) float64 {
	sort.Float64s(mags)
	k := int(q * float64(len(mags)))
	if k >= len(mags) {
		k = len(mags) - 1
	}
	return mags[k]
}

// cwL2Masked is CWL2 restricted to the allowed pixel support; it
// reports whether the target was reached.
func cwL2Masked(net *nn.Network, x *tensor.Tensor, target int, cfg CWConfig, allowed []bool) (*tensor.Tensor, bool) {
	n := x.Len()
	w := make([]float64, n)
	for i, v := range x.Data {
		v = math.Min(math.Max(v, 1e-6), 1-1e-6)
		w[i] = math.Atanh(2*v - 1)
	}
	c := cfg.InitialC * 10
	var best *tensor.Tensor
	bestDist := math.Inf(1)
	for step := 0; step < 2; step++ {
		adam := newAdamState(n, cfg.LR)
		cur := append([]float64(nil), w...)
		for it := 0; it < cfg.Iterations; it++ {
			adv, dxdw := tanhImage(cur, x.Shape)
			// Frozen pixels stay at their original values.
			for i := range allowed {
				if !allowed[i] {
					adv.Data[i] = x.Data[i]
				}
			}
			margin, gAttack := cwObjectiveGrad(net, adv, target, cfg.Confidence)
			if margin < 0 {
				if d := adv.Sub(x).L2Norm(); d < bestDist {
					bestDist = d
					best = adv.Clone()
				}
			}
			for i := 0; i < n; i++ {
				if !allowed[i] {
					continue
				}
				g := (2*(adv.Data[i]-x.Data[i]) + c*gAttack.Data[i]) * dxdw[i]
				cur[i] += adam.step(i, g)
			}
		}
		if best != nil {
			break
		}
		c *= 10
	}
	return best, best != nil
}

// tanhImage maps tanh-space variables to a [0,1] image and returns the
// elementwise derivative dx'/dw.
func tanhImage(w []float64, shape []int) (*tensor.Tensor, []float64) {
	img := tensor.New(shape...)
	dx := make([]float64, len(w))
	for i, v := range w {
		th := math.Tanh(v)
		img.Data[i] = (th + 1) / 2
		dx[i] = (1 - th*th) / 2
	}
	return img, dx
}

// adamState is a minimal per-attack Adam optimizer over flat vectors.
type adamState struct {
	lr      float64
	m, v    []float64
	t       int
	stepped bool
}

func newAdamState(n int, lr float64) *adamState {
	return &adamState{lr: lr, m: make([]float64, n), v: make([]float64, n)}
}

// step returns the (negative-gradient-direction) increment for index i.
// Callers must sweep i over 0..n−1 each iteration; the time counter
// advances on i == 0.
func (a *adamState) step(i int, g float64) float64 {
	const b1, b2, eps = 0.9, 0.999, 1e-8
	if i == 0 {
		a.t++
	}
	a.m[i] = b1*a.m[i] + (1-b1)*g
	a.v[i] = b2*a.v[i] + (1-b2)*g*g
	mh := a.m[i] / (1 - math.Pow(b1, float64(a.t)))
	vh := a.v[i] / (1 - math.Pow(b2, float64(a.t)))
	return -a.lr * mh / (math.Sqrt(vh) + eps)
}

func sign(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// Name helpers for experiment tables.

// Kind identifies an attack family for reporting.
type Kind string

// The attack kinds of Table VIII.
const (
	KindFGSM  Kind = "FGSM"
	KindBIM   Kind = "BIM"
	KindCWInf Kind = "CW∞"
	KindCW2   Kind = "CW2"
	KindCW0   Kind = "CW0"
	KindJSMA  Kind = "JSMA"
)

// String implements fmt.Stringer.
func (k Kind) String() string { return string(k) }

var _ fmt.Stringer = KindFGSM
