package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// BucketCount is one histogram bucket in a snapshot: the cumulative
// count of observations ≤ UpperBound (Prometheus "le" semantics).
// The final bucket has UpperBound +Inf.
type BucketCount struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// MarshalJSON renders the bound as a string so the +Inf bucket
// survives JSON (which has no infinity literal); "le" uses the same
// formatting as the Prometheus text output.
func (b BucketCount) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = formatFloat(b.UpperBound)
	}
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, le, b.Count)), nil
}

// UnmarshalJSON reverses MarshalJSON.
func (b *BucketCount) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    string `json:"le"`
		Count int64  `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	if raw.LE == "+Inf" {
		b.UpperBound = math.Inf(1)
		return nil
	}
	v, err := strconv.ParseFloat(raw.LE, 64)
	if err != nil {
		return fmt.Errorf("telemetry: bad bucket bound %q: %w", raw.LE, err)
	}
	b.UpperBound = v
	return nil
}

// HistogramSnapshot is a point-in-time copy of one histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketCount `json:"buckets"`
	// P50/P95/P99 are interpolated quantile estimates, NaN-free: 0
	// when the histogram is empty (JSON cannot carry NaN).
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Snapshot is a consistent-enough point-in-time copy of a registry:
// each instrument is read atomically, though the set is not read under
// one global lock (counters advance during a scrape; that is normal
// Prometheus behavior).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current values. A nil registry yields
// an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = h.snapshot()
	}
	return s
}

func (h *Histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Buckets: make([]BucketCount, len(h.counts)),
	}
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		out.Buckets[i] = BucketCount{UpperBound: ub, Count: cum}
	}
	q := func(p float64) float64 {
		v := h.Quantile(p)
		if math.IsNaN(v) {
			return 0
		}
		return v
	}
	out.P50, out.P95, out.P99 = q(0.50), q(0.95), q(0.99)
	return out
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4), deterministically ordered by
// metric name so the output is golden-testable.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	// Each series renders as one block of lines (a counter or gauge is
	// a single line; a histogram is its buckets in ascending le order
	// followed by _sum and _count). Series are grouped into families by
	// base name, families and series sort lexically, and bucket order
	// within a series is preserved — Prometheus requires ascending le.
	type series struct {
		name  string
		lines []string
	}
	type family struct {
		kind   string // counter, gauge, histogram
		series []series
	}
	families := map[string]*family{}
	add := func(base, kind, seriesName string, lines []string) {
		f, ok := families[base]
		if !ok {
			f = &family{kind: kind}
			families[base] = f
		}
		f.series = append(f.series, series{name: seriesName, lines: lines})
	}

	for name, v := range s.Counters {
		base, labels := splitName(name)
		add(base, "counter", name, []string{base + renderLabels(labels) + " " + strconv.FormatInt(v, 10)})
	}
	for name, v := range s.Gauges {
		base, labels := splitName(name)
		add(base, "gauge", name, []string{base + renderLabels(labels) + " " + formatFloat(v)})
	}
	for name, h := range s.Histograms {
		base, labels := splitName(name)
		lines := make([]string, 0, len(h.Buckets)+2)
		for _, b := range h.Buckets {
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = formatFloat(b.UpperBound)
			}
			withLE := append(append([]string(nil), labels...), `le="`+le+`"`)
			lines = append(lines, fmt.Sprintf("%s_bucket%s %d", base, renderLabels(withLE), b.Count))
		}
		lines = append(lines, base+"_sum"+renderLabels(labels)+" "+formatFloat(h.Sum))
		lines = append(lines, fmt.Sprintf("%s_count%s %d", base, renderLabels(labels), h.Count))
		add(base, "histogram", name, lines)
	}

	bases := make([]string, 0, len(families))
	for b := range families {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	for _, b := range bases {
		f := families[b]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].name < f.series[j].name })
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", b, f.kind); err != nil {
			return err
		}
		for _, sr := range f.series {
			for _, line := range sr.lines {
				if _, err := io.WriteString(w, line+"\n"); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WritePrometheus renders the registry's current state; see
// Snapshot.WritePrometheus.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// splitName separates `base{k="v",...}` into the base name and its
// label pairs; a plain name has no labels.
func splitName(name string) (base string, labels []string) {
	open := strings.IndexByte(name, '{')
	if open < 0 || !strings.HasSuffix(name, "}") {
		return name, nil
	}
	base = name[:open]
	inner := name[open+1 : len(name)-1]
	if inner == "" {
		return base, nil
	}
	// Labels were built by Label(), so commas inside quoted values are
	// the only hazard; split on commas that precede a key= run.
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(inner); i++ {
		c := inner[i]
		switch {
		case c == '"' && (i == 0 || inner[i-1] != '\\'):
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ',' && !inQuote:
			labels = append(labels, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		labels = append(labels, cur.String())
	}
	return base, labels
}

func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	return "{" + strings.Join(labels, ",") + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
