package telemetry

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Errorf("gauge = %v, want 3.5", got)
	}
	g.Set(-1.25)
	if got := g.Value(); got != -1.25 {
		t.Errorf("gauge = %v, want -1.25", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 100} {
		h.Observe(v)
	}
	// le=1: {0.5, 1}; le=2: +{1.5, 2}; le=5: +{3}; +Inf: +{100}.
	snap := h.snapshot()
	wantCum := []int64{2, 4, 5, 6}
	for i, b := range snap.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+3+100; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	// 100 observations uniform in (0, 1]: all land in the first bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	// First-bucket quantiles clamp to the bucket's upper bound (no
	// lower bound to interpolate from).
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %v, want 1 (first-bucket upper bound)", got)
	}

	h2 := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 50; i++ {
		h2.Observe(0.5) // le=1
		h2.Observe(3)   // le=4
	}
	// Rank 50 falls exactly at the end of the first bucket.
	if got := h2.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %v, want 1", got)
	}
	// p75 → rank 75: 25 of 50 into the (2,4] bucket → 2 + 0.5·2 = 3.
	if got := h2.Quantile(0.75); math.Abs(got-3) > 1e-9 {
		t.Errorf("p75 = %v, want 3", got)
	}
	// Values beyond the last finite bound clamp to it.
	h3 := NewHistogram([]float64{1, 2})
	h3.Observe(50)
	if got := h3.Quantile(0.99); got != 2 {
		t.Errorf("overflow p99 = %v, want 2 (largest finite bound)", got)
	}
	// Empty histogram: NaN.
	if got := NewHistogram([]float64{1}).Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty quantile = %v, want NaN", got)
	}
}

func TestNilInstrumentsNoOp(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	StartSpan(nil).End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments must read as zero")
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("nil histogram quantile must be NaN")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Error("nil registry must hand out nil instruments")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := New()
	c1 := r.Counter("a_total")
	c2 := r.Counter("a_total")
	if c1 != c2 {
		t.Error("same name must return the same counter")
	}
	h1 := r.Histogram("h", []float64{1, 2})
	h2 := r.Histogram("h", []float64{5, 6, 7}) // bounds ignored on re-lookup
	if h1 != h2 {
		t.Error("same name must return the same histogram")
	}
	if len(h2.bounds) != 2 {
		t.Error("first-registration bounds must win")
	}
}

func TestLabel(t *testing.T) {
	if got := Label("dv_x"); got != "dv_x" {
		t.Errorf("Label no-pairs = %q", got)
	}
	if got := Label("dv_x", "layer", "3", "class", "7"); got != `dv_x{layer="3",class="7"}` {
		t.Errorf("Label = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("odd label pairs must panic")
		}
	}()
	Label("dv_x", "only-key")
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0, 0.5, 3)
	if len(lin) != 3 || lin[0] != 0 || lin[1] != 0.5 || lin[2] != 1 {
		t.Errorf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(1, 10, 3)
	if len(exp) != 3 || exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Errorf("ExponentialBuckets = %v", exp)
	}
	for i := 1; i < len(DefLatencyBuckets); i++ {
		if DefLatencyBuckets[i] <= DefLatencyBuckets[i-1] {
			t.Fatalf("DefLatencyBuckets not ascending at %d: %v", i, DefLatencyBuckets)
		}
	}
}

// TestRegistryConcurrency hammers one registry from GOMAXPROCS
// goroutines — the exact sharing pattern of the PR-1 worker pools —
// mixing lookups, observations, and snapshot reads. Run under -race
// (make race / CI) this proves the registry is race-free; the count
// assertions prove no increment is lost.
func TestRegistryConcurrency(t *testing.T) {
	r := New()
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := r.Counter("hammer_total")
			h := r.Histogram("hammer_seconds", DefLatencyBuckets)
			g := r.Gauge("hammer_gauge")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i%100) * 1e-4)
				g.Set(float64(id))
				if i%1000 == 0 {
					// Concurrent scrapes must not disturb writers.
					_ = r.Snapshot()
				}
				// Concurrent get-or-create of a fresh name.
				r.Counter(Label("hammer_labeled_total", "w", string(rune('a'+id%26)))).Inc()
			}
		}(w)
	}
	wg.Wait()
	want := int64(workers * perWorker)
	if got := r.Counter("hammer_total").Value(); got != want {
		t.Errorf("counter lost increments: %d, want %d", got, want)
	}
	if got := r.Histogram("hammer_seconds", nil).Count(); got != want {
		t.Errorf("histogram lost observations: %d, want %d", got, want)
	}
	var labeled int64
	for name, v := range r.Snapshot().Counters {
		if name != "hammer_total" {
			labeled += v
		}
	}
	if labeled != want {
		t.Errorf("labeled counters lost increments: %d, want %d", labeled, want)
	}
}

// TestObservationAllocationFree pins the hot-path contract: observing
// into live instruments and no-oping through nil ones both allocate
// nothing. (Lookups allocate; hot paths hold handles.)
func TestObservationAllocationFree(t *testing.T) {
	r := New()
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_seconds", DefLatencyBuckets)
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(1)
		h.Observe(0.01)
	}); n != 0 {
		t.Errorf("live observation allocates %v/op, want 0", n)
	}
	var nc *Counter
	var nh *Histogram
	if n := testing.AllocsPerRun(100, func() {
		nc.Inc()
		nh.Observe(0.01)
		StartSpan(nil).End()
	}); n != 0 {
		t.Errorf("nil (no-sink) path allocates %v/op, want 0", n)
	}
}

// TestSpanNegativeElapsedClamped is the regression test for the
// monotonic-time guard: a span whose start time lies in the future and
// carries no monotonic reading (Round(0) strips it, modeling a
// serialized time or a wall-clock jump) must record 0, never a
// negative sample that would corrupt the histogram sum.
func TestSpanNegativeElapsedClamped(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	s := Span{h: h, start: time.Now().Add(time.Hour).Round(0)}
	s.End()
	if got := h.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
	if sum := h.Sum(); sum < 0 {
		t.Fatalf("negative sample recorded: sum = %v", sum)
	}
	if sum := h.Sum(); sum != 0 {
		t.Fatalf("future start should clamp to exactly 0, got sum %v", sum)
	}

	h2 := NewHistogram([]float64{1, 10})
	h2.ObserveSince(time.Now().Add(time.Hour).Round(0))
	if h2.Sum() != 0 || h2.Count() != 1 {
		t.Fatalf("ObserveSince: sum=%v count=%d, want 0 and 1", h2.Sum(), h2.Count())
	}

	// Sanity: a genuinely elapsed interval still records positive.
	h3 := NewHistogram([]float64{1, 10})
	h3.ObserveSince(time.Now().Add(-time.Millisecond))
	if h3.Sum() <= 0 {
		t.Fatalf("real elapsed time recorded %v, want > 0", h3.Sum())
	}
}
