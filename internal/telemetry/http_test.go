package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsHandler(t *testing.T) {
	r := New()
	r.Counter("dv_checked_total").Add(3)
	r.Histogram("dv_verdict_latency_seconds", DefLatencyBuckets).Observe(0.001)

	srv := httptest.NewServer(NewServeMux(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE dv_checked_total counter",
		"dv_checked_total 3",
		"# TYPE dv_verdict_latency_seconds histogram",
		"dv_verdict_latency_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, text)
		}
	}

	// JSON variant.
	resp, err = http.Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["dv_checked_total"] != 3 {
		t.Errorf("json snapshot counters = %v", snap.Counters)
	}
}

func TestExpvarBridge(t *testing.T) {
	r := New()
	r.Counter("dv_flagged_total").Add(9)
	srv := httptest.NewServer(NewServeMux(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	raw, ok := vars["deepvalidation"]
	if !ok {
		t.Fatalf("/debug/vars lacks the deepvalidation bridge; keys: %v", keys(vars))
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["dv_flagged_total"] != 9 {
		t.Errorf("expvar snapshot counters = %v", snap.Counters)
	}
	// cmdline/memstats prove the stock expvar handler is serving too.
	if _, ok := vars["memstats"]; !ok {
		t.Error("/debug/vars lacks memstats")
	}
}

// TestExpvarRepublishSafe proves PublishExpvar tolerates being called
// once per constructed mux (expvar.Publish itself panics on duplicate
// names).
func TestExpvarRepublishSafe(t *testing.T) {
	r := New()
	_ = NewServeMux(r)
	_ = NewServeMux(r) // must not panic
}

func TestPprofEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewServeMux(New()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index status %d, body %q", resp.StatusCode, truncate(string(body), 120))
	}
}

// TestServe exercises the real-listener path the CLIs use, including
// the ":0" ephemeral-port form the smoke test scrapes.
func TestServe(t *testing.T) {
	r := New()
	r.Counter("dv_checked_total").Inc()
	addr, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "dv_checked_total 1") {
		t.Errorf("served metrics = %q", truncate(string(body), 200))
	}
	if err := shutdown(); err != nil && err != http.ErrServerClosed {
		t.Errorf("shutdown: %v", err)
	}
}

func keys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
