package telemetry

import (
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exposition format byte-for-byte:
// family ordering, TYPE lines, label merging, ascending le order, and
// float formatting are all operator-facing surface.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("dv_checked_total").Add(7)
	r.Counter(Label("dv_class_checked_total", "class", "0")).Add(4)
	r.Counter(Label("dv_class_checked_total", "class", "1")).Add(3)
	r.Gauge("dv_epsilon").Set(0.25)
	h := r.Histogram(Label("dv_layer_discrepancy", "layer", "2"), []float64{-1, 0, 1})
	h.Observe(-2) // le=-1
	h.Observe(0.5)
	h.Observe(0.5) // le=1 ×2
	h.Observe(9)   // +Inf

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE dv_checked_total counter
dv_checked_total 7
# TYPE dv_class_checked_total counter
dv_class_checked_total{class="0"} 4
dv_class_checked_total{class="1"} 3
# TYPE dv_epsilon gauge
dv_epsilon 0.25
# TYPE dv_layer_discrepancy histogram
dv_layer_discrepancy_bucket{layer="2",le="-1"} 1
dv_layer_discrepancy_bucket{layer="2",le="0"} 1
dv_layer_discrepancy_bucket{layer="2",le="1"} 3
dv_layer_discrepancy_bucket{layer="2",le="+Inf"} 4
dv_layer_discrepancy_sum{layer="2"} 8
dv_layer_discrepancy_count{layer="2"} 4
`
	if got := b.String(); got != want {
		t.Errorf("prometheus text mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSnapshotQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	s := r.Snapshot()
	hs, ok := s.Histograms["lat_seconds"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.Count != 100 {
		t.Errorf("count = %d", hs.Count)
	}
	// All observations in (1,2]: every quantile interpolates inside it.
	for _, q := range []float64{hs.P50, hs.P95, hs.P99} {
		if q <= 1 || q > 2 {
			t.Errorf("quantile %v outside (1,2]", q)
		}
	}
	// Empty histograms snapshot quantiles as 0, not NaN (JSON-safe).
	r.Histogram("empty_seconds", []float64{1})
	if hs := r.Snapshot().Histograms["empty_seconds"]; hs.P50 != 0 || hs.P99 != 0 {
		t.Errorf("empty histogram quantiles = %v/%v, want 0/0", hs.P50, hs.P99)
	}
}

// TestPrometheusInfOnlyHistogramGolden pins the degenerate histogram
// layout: a histogram built with no finite bounds has exactly one
// bucket, and the exposition must still render an explicit le="+Inf"
// line (Prometheus clients reject histograms whose _count is not
// mirrored by a +Inf bucket).
func TestPrometheusInfOnlyHistogramGolden(t *testing.T) {
	r := New()
	h := r.Histogram("dv_untimed_seconds", nil)
	h.Observe(0.5)
	h.Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE dv_untimed_seconds histogram
dv_untimed_seconds_bucket{le="+Inf"} 2
dv_untimed_seconds_sum 3.5
dv_untimed_seconds_count 2
`
	if got := b.String(); got != want {
		t.Errorf("prometheus text mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestBucketBoundaryConsistency observes a value exactly on a bucket
// upper bound and requires it to land in the same (inclusive, le)
// bucket in the JSON snapshot and the Prometheus exposition — the two
// export paths must agree on edge semantics or dashboards built on one
// disagree with alerts built on the other.
func TestBucketBoundaryConsistency(t *testing.T) {
	r := New()
	h := r.Histogram("dv_edge_seconds", []float64{1, 2})
	h.Observe(1) // exactly on the first upper bound: le="1", not le="2"

	// JSON side: round-trip the snapshot through encoding/json and read
	// the cumulative counts back out of the wire form.
	snap := r.Snapshot().Histograms["dv_edge_seconds"]
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded HistogramSnapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Buckets) != 3 {
		t.Fatalf("JSON round-trip has %d buckets, want 3 (le=1, le=2, le=+Inf)", len(decoded.Buckets))
	}
	jsonCounts := map[string]int64{}
	for _, b := range decoded.Buckets {
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = formatFloat(b.UpperBound)
		}
		jsonCounts[le] = b.Count
	}

	// Prometheus side: parse the _bucket lines out of the exposition.
	var text strings.Builder
	if err := r.WritePrometheus(&text); err != nil {
		t.Fatal(err)
	}
	promCounts := map[string]int64{}
	for _, line := range strings.Split(text.String(), "\n") {
		if !strings.HasPrefix(line, "dv_edge_seconds_bucket") {
			continue
		}
		le := line[strings.Index(line, `le="`)+len(`le="`) : strings.Index(line, `"}`)]
		n, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		promCounts[le] = n
	}

	want := map[string]int64{"1": 1, "2": 1, "+Inf": 1} // cumulative: the boundary value is ≤ every bound
	for _, counts := range []map[string]int64{jsonCounts, promCounts} {
		for le, n := range want {
			if counts[le] != n {
				t.Errorf("JSON %v / Prometheus %v, want %v: boundary observation must be inclusive (le)", jsonCounts, promCounts, want)
				return
			}
		}
	}
}

func TestSplitName(t *testing.T) {
	base, labels := splitName(`dv_x{a="1",b="2,3"}`)
	if base != "dv_x" || len(labels) != 2 || labels[0] != `a="1"` || labels[1] != `b="2,3"` {
		t.Errorf("splitName = %q %v", base, labels)
	}
	base, labels = splitName("plain_total")
	if base != "plain_total" || labels != nil {
		t.Errorf("splitName plain = %q %v", base, labels)
	}
}
