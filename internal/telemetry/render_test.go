package telemetry

import (
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exposition format byte-for-byte:
// family ordering, TYPE lines, label merging, ascending le order, and
// float formatting are all operator-facing surface.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("dv_checked_total").Add(7)
	r.Counter(Label("dv_class_checked_total", "class", "0")).Add(4)
	r.Counter(Label("dv_class_checked_total", "class", "1")).Add(3)
	r.Gauge("dv_epsilon").Set(0.25)
	h := r.Histogram(Label("dv_layer_discrepancy", "layer", "2"), []float64{-1, 0, 1})
	h.Observe(-2) // le=-1
	h.Observe(0.5)
	h.Observe(0.5) // le=1 ×2
	h.Observe(9)   // +Inf

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE dv_checked_total counter
dv_checked_total 7
# TYPE dv_class_checked_total counter
dv_class_checked_total{class="0"} 4
dv_class_checked_total{class="1"} 3
# TYPE dv_epsilon gauge
dv_epsilon 0.25
# TYPE dv_layer_discrepancy histogram
dv_layer_discrepancy_bucket{layer="2",le="-1"} 1
dv_layer_discrepancy_bucket{layer="2",le="0"} 1
dv_layer_discrepancy_bucket{layer="2",le="1"} 3
dv_layer_discrepancy_bucket{layer="2",le="+Inf"} 4
dv_layer_discrepancy_sum{layer="2"} 8
dv_layer_discrepancy_count{layer="2"} 4
`
	if got := b.String(); got != want {
		t.Errorf("prometheus text mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSnapshotQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	s := r.Snapshot()
	hs, ok := s.Histograms["lat_seconds"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.Count != 100 {
		t.Errorf("count = %d", hs.Count)
	}
	// All observations in (1,2]: every quantile interpolates inside it.
	for _, q := range []float64{hs.P50, hs.P95, hs.P99} {
		if q <= 1 || q > 2 {
			t.Errorf("quantile %v outside (1,2]", q)
		}
	}
	// Empty histograms snapshot quantiles as 0, not NaN (JSON-safe).
	r.Histogram("empty_seconds", []float64{1})
	if hs := r.Snapshot().Histograms["empty_seconds"]; hs.P50 != 0 || hs.P99 != 0 {
		t.Errorf("empty histogram quantiles = %v/%v, want 0/0", hs.P50, hs.P99)
	}
}

func TestSplitName(t *testing.T) {
	base, labels := splitName(`dv_x{a="1",b="2,3"}`)
	if base != "dv_x" || len(labels) != 2 || labels[0] != `a="1"` || labels[1] != `b="2,3"` {
		t.Errorf("splitName = %q %v", base, labels)
	}
	base, labels = splitName("plain_total")
	if base != "plain_total" || labels != nil {
		t.Errorf("splitName plain = %q %v", base, labels)
	}
}
