// Package telemetry is a dependency-free metrics layer for the hot
// paths of this repository: atomic counters, gauges, and fixed-bucket
// histograms collected in a named registry, plus lightweight timing
// spans. It exists so the runtime fail-safe the paper motivates
// (Section VI: flag invalid inputs and "call for human intervention")
// can actually be operated — per-layer discrepancy distributions,
// verdict latency quantiles, and flag rates are the signals a
// supervisor watches.
//
// Design constraints, in order:
//
//  1. Zero cost when disabled. Every instrument is nil-safe: a nil
//     *Counter, *Gauge, *Histogram, or *Registry no-ops on every
//     method. Hot paths hold instrument handles resolved once from a
//     possibly-nil registry and never branch on configuration.
//  2. Race-free under the worker pools of core.Fit and
//     Validator.ScoreBatch: all mutation is atomic; observation never
//     takes a lock and never allocates.
//  3. No dependencies beyond the standard library.
//
// Metric names follow Prometheus conventions: snake_case, a unit
// suffix (_seconds, _total), and optional labels in curly braces
// rendered verbatim into the exposition format, e.g.
// dv_layer_discrepancy{layer="3"}. Use Label to build such names.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil Counter no-ops.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative for Prometheus semantics; this is
// not enforced).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count; 0 for a nil Counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 that can go up and down (thresholds,
// worker counts, window fills). The zero value is ready; nil no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value; 0 for a nil Gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets. Buckets are
// defined by ascending upper bounds; an implicit +Inf bucket catches
// the overflow. Observation is lock-free and allocation-free; a nil
// Histogram no-ops.
type Histogram struct {
	bounds []float64      // ascending upper bounds (exclusive of +Inf)
	counts []atomic.Int64 // len(bounds)+1; counts[i] = observations ≤ bounds[i]
	count  atomic.Int64
	sum    atomicFloat
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. Bounds are copied; an empty slice yields a single +Inf
// bucket (count/sum only).
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound ≥ v (Prometheus buckets are
	// inclusive upper bounds: le).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the elapsed time since t0, in seconds. When t0
// carries a monotonic clock reading (any ordinary time.Now result)
// time.Since is immune to wall-clock jumps; when it does not (a time
// that crossed serialization, or was stripped with Round) a backwards
// wall-clock step could yield a negative elapsed, which would corrupt
// the histogram sum — so negatives clamp to zero.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(elapsedSeconds(t0))
	}
}

// elapsedSeconds is time.Since clamped at zero, so a time value without
// a monotonic reading can never record a negative duration.
func elapsedSeconds(t0 time.Time) float64 {
	d := time.Since(t0)
	if d < 0 {
		d = 0
	}
	return d.Seconds()
}

// Count returns the number of observations; 0 for nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values; 0 for nil.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket
// counts by linear interpolation within the containing bucket, the
// standard Prometheus histogram_quantile estimate. Values in the +Inf
// bucket clamp to the largest finite bound. Returns NaN when empty or
// nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: clamp to the largest finite bound.
				if len(h.bounds) == 0 {
					return math.NaN()
				}
				return h.bounds[len(h.bounds)-1]
			}
			lower := math.Inf(-1)
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			if math.IsInf(lower, -1) {
				return upper
			}
			frac := (rank - float64(cum)) / float64(n)
			return lower + (upper-lower)*frac
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// CountAbove returns the number of observations recorded above the
// smallest bucket upper bound ≥ bound. The count is exact with respect
// to the bucket layout — no interpolation — so it is monotone under
// new observations; bounds that fall between bucket edges snap up to
// the next edge (an undercount of at most one bucket's width). This is
// the latency-SLO primitive: "requests slower than the target" with
// the target snapped onto the histogram grid. Returns 0 for nil.
func (h *Histogram) CountAbove(bound float64) int64 {
	if h == nil {
		return 0
	}
	// First bucket whose upper bound is ≥ bound; everything in later
	// buckets is strictly above that edge.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < bound {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	var above int64
	for i := lo + 1; i < len(h.counts); i++ {
		above += h.counts[i].Load()
	}
	return above
}

// atomicFloat is a float64 updated with a CAS loop so concurrent Adds
// never lose increments.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Span measures one timed region into a histogram of seconds. Start a
// span with StartSpan and finish it with End; when the histogram is
// nil the span is free (no clock read).
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing into h. A nil h yields a no-op span.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End records the elapsed seconds, clamped at zero: s.start normally
// holds a monotonic reading (StartSpan uses time.Now), but a Span built
// from a deserialized or Round-stripped time must still never push a
// negative sample into the histogram. Safe to call on a no-op span.
func (s Span) End() {
	if s.h != nil {
		s.h.Observe(elapsedSeconds(s.start))
	}
}

// Registry is a named collection of instruments. Lookups get-or-create
// under a mutex — hold the returned handles on hot paths rather than
// re-resolving per observation. A nil Registry returns nil instruments
// from every lookup, which in turn no-op, so "telemetry off" is a nil
// registry threaded everywhere.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use. Later calls return the existing
// histogram regardless of bounds, so one name always maps to one
// bucket layout.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Label renders name{k1="v1",k2="v2",...} from alternating key/value
// pairs, the naming convention the registry and the Prometheus
// renderer share. Panics on an odd pair count (a programming error).
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("telemetry: Label(%q) called with %d label arguments (want key/value pairs)", name, len(kv)))
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// LinearBuckets returns n ascending bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n ascending bounds start, start·factor,
// start·factor², ... Panics unless start > 0 and factor > 1.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 {
		panic("telemetry: ExponentialBuckets needs start > 0 and factor > 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefLatencyBuckets spans 100µs to ~100s exponentially — wide enough
// for both a single SVM evaluation and a full validator fit stage.
var DefLatencyBuckets = ExponentialBuckets(1e-4, 2.5, 16)
