package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Handler returns an http.Handler that serves the registry in the
// Prometheus text exposition format. With ?format=json it serves the
// JSON snapshot instead.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(r.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// expvarSlots holds one swappable registry pointer per published
// expvar name: expvar.Publish panics on duplicate names, so each name
// is published exactly once with a func that reads the slot, and
// re-publishing just swaps the slot (latest registry wins).
var expvarSlots sync.Map // name -> *atomic.Pointer[Registry]

// PublishExpvar exposes the registry's JSON snapshot as an expvar
// variable, so /debug/vars carries the same numbers as /metrics.
// Safe to call repeatedly; the most recently published registry for a
// name is the one served.
func PublishExpvar(name string, r *Registry) {
	slot, loaded := expvarSlots.LoadOrStore(name, &atomic.Pointer[Registry]{})
	p := slot.(*atomic.Pointer[Registry])
	p.Store(r)
	if !loaded {
		expvar.Publish(name, expvar.Func(func() any { return p.Load().Snapshot() }))
	}
}

// NewServeMux builds the observability mux: /metrics (Prometheus
// text, JSON with ?format=json), /debug/vars (expvar, including the
// registry snapshot published under "deepvalidation"), and the
// net/http/pprof profiling suite under /debug/pprof/.
func NewServeMux(r *Registry) *http.ServeMux {
	PublishExpvar("deepvalidation", r)
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the observability endpoint on addr (e.g. ":9090" or
// "127.0.0.1:0") and returns the bound address plus a shutdown
// function. Serving runs on a background goroutine; the caller owns
// the shutdown.
func Serve(addr string, r *Registry) (net.Addr, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("telemetry: listening on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewServeMux(r), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), srv.Close, nil
}
