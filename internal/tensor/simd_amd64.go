package tensor

// AVX dispatch for the scoring hot-path kernels. The assembly versions
// in simd_amd64.s perform the identical per-element rounding sequence
// as the Go references (vectorized across independent output elements
// only), so enabling them never moves a bit in any verdict. AVX is
// gated on both the CPU feature flag and OS XSAVE support; everything
// else falls back to the pure-Go path.

func cpuid(leaf uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() uint32

//go:noescape
func axpy4avx(d, b0, b1, b2, b3 *float64, n int, a0, a1, a2, a3 float64)

//go:noescape
func axpy4avx512(d, b0, b1, b2, b3 *float64, n int, a0, a1, a2, a3 float64)

//go:noescape
func axpy8avx512(d, b0, b1, b2, b3, b4, b5, b6, b7 *float64, n int, a0, a1, a2, a3, a4, a5, a6, a7 float64)

//go:noescape
func axpy1avx(d, b *float64, n int, a float64)

//go:noescape
func axpy1avx512(d, b *float64, n int, a float64)

//go:noescape
func addConstAVX(d *float64, n int, c float64)

//go:noescape
func reluAVX(dst, src *float64, n int)

var (
	useAVX    = detectAVX()
	useAVX512 = detectAVX512()
)

func detectAVX() bool {
	_, _, ecx, _ := cpuid(1)
	const osxsave, avx = 1 << 27, 1 << 28
	if ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be OS-enabled.
	return xgetbv0()&0x6 == 0x6
}

func detectAVX512() bool {
	if !detectAVX() {
		return false
	}
	maxLeaf, _, _, _ := cpuid(0)
	if maxLeaf < 7 {
		return false
	}
	_, ebx, _, _ := cpuid(7)
	const avx512f = 1 << 16
	if ebx&avx512f == 0 {
		return false
	}
	// XCR0 must also enable opmask (5), ZMM_Hi256 (6), Hi16_ZMM (7).
	return xgetbv0()&0xe6 == 0xe6
}

func axpy4(d, b0, b1, b2, b3 []float64, a0, a1, a2, a3 float64) {
	switch {
	case useAVX512 && len(d) > 0:
		axpy4avx512(&d[0], &b0[0], &b1[0], &b2[0], &b3[0], len(d), a0, a1, a2, a3)
	case useAVX && len(d) > 0:
		axpy4avx(&d[0], &b0[0], &b1[0], &b2[0], &b3[0], len(d), a0, a1, a2, a3)
	default:
		axpy4Generic(d, b0, b1, b2, b3, a0, a1, a2, a3)
	}
}

func axpy8(d, b0, b1, b2, b3, b4, b5, b6, b7 []float64, a0, a1, a2, a3, a4, a5, a6, a7 float64) {
	if useAVX512 && len(d) > 0 {
		axpy8avx512(&d[0], &b0[0], &b1[0], &b2[0], &b3[0], &b4[0], &b5[0], &b6[0], &b7[0],
			len(d), a0, a1, a2, a3, a4, a5, a6, a7)
		return
	}
	axpy4(d, b0, b1, b2, b3, a0, a1, a2, a3)
	axpy4(d, b4, b5, b6, b7, a4, a5, a6, a7)
}

func axpy1(d, b []float64, a float64) {
	switch {
	case useAVX512 && len(d) > 0:
		axpy1avx512(&d[0], &b[0], len(d), a)
	case useAVX && len(d) > 0:
		axpy1avx(&d[0], &b[0], len(d), a)
	default:
		axpy1Generic(d, b, a)
	}
}

// AddConstInto adds c to every element of d in place, one rounding per
// element — identical to the scalar loop.
func AddConstInto(d []float64, c float64) {
	if useAVX && len(d) > 0 {
		addConstAVX(&d[0], len(d), c)
		return
	}
	addConstGeneric(d, c)
}

// ReLUInto writes dst[i] = max-with-zero of src[i] using the exact
// comparison v > 0 (NaN and -0 map to +0). dst and src must have equal
// length; dst may alias src.
func ReLUInto(dst, src []float64) {
	if len(dst) != len(src) {
		panic("tensor: ReLUInto length mismatch")
	}
	if useAVX && len(dst) > 0 {
		reluAVX(&dst[0], &src[0], len(dst))
		return
	}
	reluGeneric(dst, src)
}
