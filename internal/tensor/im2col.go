package tensor

import "fmt"

// ConvOutSize returns the spatial output size of a convolution over an
// input of size in with the given kernel size, stride, and symmetric
// zero padding.
func ConvOutSize(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col unrolls a (C,H,W) image into a (C*kh*kw, outH*outW) matrix so
// that a convolution becomes a single matrix multiply against a
// (filters, C*kh*kw) weight matrix. Out-of-bounds taps read as zero
// (zero padding).
func Im2Col(img *Tensor, kh, kw, stride, pad int) *Tensor {
	if img.Rank() != 3 {
		panic(fmt.Sprintf("tensor: Im2Col input must be rank 3 (C,H,W), got %v", img.Shape))
	}
	c, h, w := img.Shape[0], img.Shape[1], img.Shape[2]
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col produces empty output for input %v kernel %dx%d stride %d pad %d", img.Shape, kh, kw, stride, pad))
	}
	cols := New(c*kh*kw, outH*outW)
	Im2ColInto(cols, img, kh, kw, stride, pad)
	return cols
}

// Im2ColInto is Im2Col writing into a caller-owned (C*kh*kw, outH*outW)
// tensor, for hot paths that reuse the column buffer across samples.
// Every element is written exactly once (padding taps are written as
// explicit zeros rather than relying on a pre-zeroed buffer), so dst's
// prior contents never leak through and no memclr pass is needed. The
// output is bit-identical to Im2Col.
func Im2ColInto(dst, img *Tensor, kh, kw, stride, pad int) {
	if img.Rank() != 3 {
		panic(fmt.Sprintf("tensor: Im2ColInto input must be rank 3 (C,H,W), got %v", img.Shape))
	}
	c, h, w := img.Shape[0], img.Shape[1], img.Shape[2]
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("tensor: Im2ColInto produces empty output for input %v kernel %dx%d stride %d pad %d", img.Shape, kh, kw, stride, pad))
	}
	if dst.Rank() != 2 || dst.Shape[0] != c*kh*kw || dst.Shape[1] != outH*outW {
		panic(fmt.Sprintf("tensor: Im2ColInto dst shape %v, want [%d %d]", dst.Shape, c*kh*kw, outH*outW))
	}
	ncols := outH * outW
	for ch := 0; ch < c; ch++ {
		plane := img.Data[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := dst.Data[((ch*kh+ky)*kw+kx)*ncols : ((ch*kh+ky)*kw+kx+1)*ncols]
				idx := 0
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						zeroRange(row, idx, idx+outW)
						idx += outW
						continue
					}
					base := iy * w
					if stride == 1 {
						// Unit stride: the in-bounds taps ix = ox−pad+kx
						// form one contiguous span — bulk-copy it and
						// zero the out-of-bounds edges explicitly.
						lo := pad - kx // first in-bounds ox
						if lo < 0 {
							lo = 0
						}
						hi := w - 1 + pad - kx + 1 // one past last in-bounds ox
						if hi > outW {
							hi = outW
						}
						if hi < lo {
							hi = lo
						}
						zeroRange(row, idx, idx+lo)
						copy(row[idx+lo:idx+hi], plane[base+lo-pad+kx:])
						zeroRange(row, idx+hi, idx+outW)
						idx += outW
						continue
					}
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride - pad + kx
						if ix >= 0 && ix < w {
							row[idx] = plane[base+ix]
						} else {
							row[idx] = 0
						}
						idx++
					}
				}
			}
		}
	}
}

func zeroRange(s []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		s[i] = 0
	}
}

// Col2Im scatter-adds a (C*kh*kw, outH*outW) column matrix back into a
// (C,H,W) image, the adjoint of Im2Col. Overlapping taps accumulate,
// which makes it the correct backward pass for convolution inputs.
func Col2Im(cols *Tensor, c, h, w, kh, kw, stride, pad int) *Tensor {
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)
	if cols.Rank() != 2 || cols.Shape[0] != c*kh*kw || cols.Shape[1] != outH*outW {
		panic(fmt.Sprintf("tensor: Col2Im shape %v incompatible with image (%d,%d,%d) kernel %dx%d stride %d pad %d",
			cols.Shape, c, h, w, kh, kw, stride, pad))
	}
	img := New(c, h, w)
	ncols := outH * outW
	for ch := 0; ch < c; ch++ {
		plane := img.Data[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := cols.Data[((ch*kh+ky)*kw+kx)*ncols : ((ch*kh+ky)*kw+kx+1)*ncols]
				idx := 0
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						idx += outW
						continue
					}
					base := iy * w
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride - pad + kx
						if ix >= 0 && ix < w {
							plane[base+ix] += row[idx]
						}
						idx++
					}
				}
			}
		}
	}
	return img
}
