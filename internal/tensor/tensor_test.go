package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	ts := New(2, 3, 4)
	if ts.Len() != 24 {
		t.Fatalf("Len() = %d, want 24", ts.Len())
	}
	if ts.Rank() != 3 {
		t.Fatalf("Rank() = %d, want 3", ts.Rank())
	}
	for i, v := range ts.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestNewScalar(t *testing.T) {
	s := New()
	if s.Len() != 1 {
		t.Fatalf("scalar Len() = %d, want 1", s.Len())
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer expectPanic(t, "negative dimension")
	New(2, -1)
}

func TestFromLengthMismatchPanics(t *testing.T) {
	defer expectPanic(t, "From length mismatch")
	From([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRowMajor(t *testing.T) {
	ts := New(2, 3)
	ts.Set(7, 1, 2)
	if got := ts.Data[5]; got != 7 {
		t.Fatalf("row-major offset: Data[5] = %v, want 7", got)
	}
	if got := ts.At(1, 2); got != 7 {
		t.Fatalf("At(1,2) = %v, want 7", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer expectPanic(t, "index out of range")
	New(2, 2).At(2, 0)
}

func TestAtWrongArityPanics(t *testing.T) {
	defer expectPanic(t, "wrong index arity")
	New(2, 2).At(1)
}

func TestCloneIndependence(t *testing.T) {
	a := From([]float64{1, 2, 3}, 3)
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone shares backing data with original")
	}
	b.Shape[0] = 5
	if a.Shape[0] != 3 {
		t.Fatal("Clone shares shape slice with original")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := From([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Data[0] = 42
	if a.Data[0] != 42 {
		t.Fatal("Reshape should share backing data")
	}
}

func TestReshapeInfer(t *testing.T) {
	a := New(4, 6)
	b := a.Reshape(-1, 8)
	if b.Shape[0] != 3 || b.Shape[1] != 8 {
		t.Fatalf("Reshape(-1, 8) shape = %v, want [3 8]", b.Shape)
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	defer expectPanic(t, "reshape element count mismatch")
	New(2, 3).Reshape(4, 2)
}

func TestReshapeTwoInferPanics(t *testing.T) {
	defer expectPanic(t, "two inferred dims")
	New(2, 3).Reshape(-1, -1)
}

func TestElementwiseOps(t *testing.T) {
	a := From([]float64{1, 2, 3, 4}, 2, 2)
	b := From([]float64{10, 20, 30, 40}, 2, 2)

	tests := []struct {
		name string
		got  *Tensor
		want []float64
	}{
		{"Add", a.Add(b), []float64{11, 22, 33, 44}},
		{"Sub", b.Sub(a), []float64{9, 18, 27, 36}},
		{"Mul", a.Mul(b), []float64{10, 40, 90, 160}},
		{"Scale", a.Scale(2), []float64{2, 4, 6, 8}},
		{"Axpy", a.Clone().AxpyInPlace(0.5, b), []float64{6, 12, 18, 24}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			for i, w := range tc.want {
				if tc.got.Data[i] != w {
					t.Fatalf("%s element %d = %v, want %v", tc.name, i, tc.got.Data[i], w)
				}
			}
		})
	}
	// Originals untouched by the non-in-place forms.
	if a.Data[0] != 1 || b.Data[0] != 10 {
		t.Fatal("non-in-place ops mutated their operands")
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "shape mismatch")
	New(2, 2).AddInPlace(New(4))
}

func TestClamp(t *testing.T) {
	a := From([]float64{-2, 0.5, 3}, 3).ClampInPlace(0, 1)
	want := []float64{0, 0.5, 1}
	for i, w := range want {
		if a.Data[i] != w {
			t.Fatalf("Clamp element %d = %v, want %v", i, a.Data[i], w)
		}
	}
}

func TestReductions(t *testing.T) {
	a := From([]float64{3, -1, 4, -1, 5}, 5)
	if got := a.Sum(); got != 10 {
		t.Errorf("Sum = %v, want 10", got)
	}
	if got := a.Mean(); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := a.Max(); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
	if got := a.Min(); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := a.ArgMax(); got != 4 {
		t.Errorf("ArgMax = %v, want 4", got)
	}
	if got := a.L1Norm(); got != 14 {
		t.Errorf("L1Norm = %v, want 14", got)
	}
	if got := a.LInfNorm(); got != 5 {
		t.Errorf("LInfNorm = %v, want 5", got)
	}
	if got := a.L2Norm(); math.Abs(got-math.Sqrt(52)) > 1e-12 {
		t.Errorf("L2Norm = %v, want sqrt(52)", got)
	}
	if got := a.L0Norm(); got != 5 {
		t.Errorf("L0Norm = %v, want 5", got)
	}
	if got := From([]float64{0, 1, 0}, 3).L0Norm(); got != 1 {
		t.Errorf("L0Norm sparse = %v, want 1", got)
	}
}

func TestArgMaxTieLowestIndex(t *testing.T) {
	a := From([]float64{2, 5, 5, 1}, 4)
	if got := a.ArgMax(); got != 1 {
		t.Fatalf("ArgMax tie = %d, want 1", got)
	}
}

func TestEmptyReductionsPanic(t *testing.T) {
	empty := New(0)
	for name, fn := range map[string]func(){
		"Max":    func() { empty.Max() },
		"Min":    func() { empty.Min() },
		"ArgMax": func() { empty.ArgMax() },
	} {
		t.Run(name, func(t *testing.T) {
			defer expectPanic(t, name+" of empty")
			fn()
		})
	}
	if got := empty.Mean(); got != 0 {
		t.Errorf("Mean of empty = %v, want 0", got)
	}
}

func TestDot(t *testing.T) {
	a := From([]float64{1, 2, 3}, 3)
	b := From([]float64{4, 5, 6}, 3)
	if got := a.Dot(b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestHasNaN(t *testing.T) {
	a := From([]float64{1, 2}, 2)
	if a.HasNaN() {
		t.Error("finite tensor reported NaN")
	}
	a.Data[1] = math.NaN()
	if !a.HasNaN() {
		t.Error("NaN not detected")
	}
	a.Data[1] = math.Inf(1)
	if !a.HasNaN() {
		t.Error("Inf not detected")
	}
}

func TestAllClose(t *testing.T) {
	a := From([]float64{1, 2}, 2)
	b := From([]float64{1.0001, 2}, 2)
	if !a.AllClose(b, 1e-3) {
		t.Error("AllClose should accept within tolerance")
	}
	if a.AllClose(b, 1e-6) {
		t.Error("AllClose should reject outside tolerance")
	}
	if a.AllClose(New(3), 1) {
		t.Error("AllClose should reject shape mismatch")
	}
}

func TestApplyMap(t *testing.T) {
	a := From([]float64{1, 4, 9}, 3)
	b := a.Map(math.Sqrt)
	if a.Data[1] != 4 {
		t.Error("Map mutated its receiver")
	}
	if b.Data[2] != 3 {
		t.Errorf("Map result = %v, want 3", b.Data[2])
	}
	a.Apply(func(x float64) float64 { return -x })
	if a.Data[0] != -1 {
		t.Error("Apply did not mutate in place")
	}
}

func TestStringTruncates(t *testing.T) {
	long := New(100)
	s := long.String()
	if len(s) > 200 {
		t.Errorf("String of large tensor too long: %d chars", len(s))
	}
}

// Property: (a+b)-b == a for arbitrary vectors.
func TestPropertyAddSubRoundTrip(t *testing.T) {
	f := func(av, bv []float64) bool {
		n := len(av)
		if len(bv) < n {
			n = len(bv)
		}
		if n == 0 {
			return true
		}
		a := From(append([]float64(nil), av[:n]...), n)
		b := From(append([]float64(nil), bv[:n]...), n)
		for i := 0; i < n; i++ {
			// Keep values in a sane range to avoid float cancellation noise.
			a.Data[i] = math.Mod(a.Data[i], 1e6)
			b.Data[i] = math.Mod(b.Data[i], 1e6)
			if math.IsNaN(a.Data[i]) || math.IsNaN(b.Data[i]) {
				return true
			}
		}
		got := a.Add(b).Sub(b)
		return got.AllClose(a, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling by s then 1/s is the identity for non-tiny s.
func TestPropertyScaleRoundTrip(t *testing.T) {
	f := func(vals []float64, s float64) bool {
		if len(vals) == 0 {
			return true
		}
		s = math.Mod(math.Abs(s), 100) + 0.5
		a := New(len(vals))
		for i, v := range vals {
			a.Data[i] = math.Mod(v, 1e6)
			if math.IsNaN(a.Data[i]) {
				return true
			}
		}
		got := a.Scale(s).ScaleInPlace(1 / s)
		return got.AllClose(a, 1e-6*s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFillUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(1000).FillUniform(rng, -2, 3)
	for i, v := range a.Data {
		if v < -2 || v >= 3 {
			t.Fatalf("FillUniform element %d = %v outside [-2, 3)", i, v)
		}
	}
}

func TestFillNormalMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(20000).FillNormal(rng, 5, 2)
	mean := a.Mean()
	if math.Abs(mean-5) > 0.1 {
		t.Errorf("FillNormal mean = %v, want ~5", mean)
	}
	varSum := 0.0
	for _, v := range a.Data {
		varSum += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(varSum / float64(a.Len()))
	if math.Abs(sd-2) > 0.1 {
		t.Errorf("FillNormal stddev = %v, want ~2", sd)
	}
}

func TestFillGlorotBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fanIn, fanOut := 50, 30
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	a := New(500).FillGlorot(rng, fanIn, fanOut)
	for i, v := range a.Data {
		if math.Abs(v) > limit {
			t.Fatalf("FillGlorot element %d = %v exceeds limit %v", i, v, limit)
		}
	}
}

func TestFillHeDeterministic(t *testing.T) {
	a := New(64).FillHe(rand.New(rand.NewSource(7)), 128)
	b := New(64).FillHe(rand.New(rand.NewSource(7)), 128)
	if !a.AllClose(b, 0) {
		t.Fatal("FillHe with same seed should be deterministic")
	}
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("expected panic: %s", what)
	}
}
