// Package tensor provides the dense numeric arrays underpinning the
// neural-network substrate, the one-class SVMs, and the image pipeline.
//
// Tensors are row-major, float64, and deliberately simple: a shape and a
// flat backing slice. Shape mismatches are programmer errors and panic
// with a descriptive message, mirroring the convention of mainstream Go
// numeric libraries; operations that touch I/O return errors instead.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major n-dimensional array of float64.
//
// The zero value is an empty tensor; use New or From to construct usable
// instances. Fields are exported so encoding/gob can serialize models and
// fitted detectors without custom codecs.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New returns a zero-filled tensor with the given shape.
// A tensor with no dimensions holds a single scalar element.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", s, shape))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// From wraps data in a tensor with the given shape. The slice is used
// directly (not copied); len(data) must equal the shape's element count.
func From(data []float64, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i, s := range t.Shape {
		if s != o.Shape[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float64, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of t with a new shape sharing the same backing
// data. The element counts must match. One dimension may be -1, in which
// case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	n := 1
	for i, s := range shape {
		if s == -1 {
			if infer >= 0 {
				panic("tensor: at most one dimension may be -1 in Reshape")
			}
			infer = i
			continue
		}
		n *= s
	}
	if infer >= 0 {
		if n == 0 || len(t.Data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.Shape, shape))
		}
		shape[infer] = len(t.Data) / n
		n *= shape[infer]
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elements) to %v (%d elements)", t.Shape, len(t.Data), shape, n))
	}
	return &Tensor{Shape: shape, Data: t.Data}
}

// index converts multi-indices to a flat offset.
func (t *Tensor) index(idx ...int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.Shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + ix
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.index(idx...)] }

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.index(idx...)] = v }

// Fill sets every element to v and returns t.
func (t *Tensor) Fill(v float64) *Tensor {
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Zero sets every element to 0 and returns t.
func (t *Tensor) Zero() *Tensor { return t.Fill(0) }

// Apply replaces each element x with fn(x) and returns t.
func (t *Tensor) Apply(fn func(float64) float64) *Tensor {
	for i, v := range t.Data {
		t.Data[i] = fn(v)
	}
	return t
}

// Map returns a new tensor whose elements are fn applied to t's.
func (t *Tensor) Map(fn func(float64) float64) *Tensor {
	c := t.Clone()
	return c.Apply(fn)
}

// AddInPlace adds o to t elementwise and returns t.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	t.requireSameShape(o, "AddInPlace")
	for i, v := range o.Data {
		t.Data[i] += v
	}
	return t
}

// SubInPlace subtracts o from t elementwise and returns t.
func (t *Tensor) SubInPlace(o *Tensor) *Tensor {
	t.requireSameShape(o, "SubInPlace")
	for i, v := range o.Data {
		t.Data[i] -= v
	}
	return t
}

// MulInPlace multiplies t by o elementwise (Hadamard) and returns t.
func (t *Tensor) MulInPlace(o *Tensor) *Tensor {
	t.requireSameShape(o, "MulInPlace")
	for i, v := range o.Data {
		t.Data[i] *= v
	}
	return t
}

// ScaleInPlace multiplies every element by s and returns t.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	for i := range t.Data {
		t.Data[i] *= s
	}
	return t
}

// ShiftInPlace adds s to every element and returns t.
func (t *Tensor) ShiftInPlace(s float64) *Tensor {
	for i := range t.Data {
		t.Data[i] += s
	}
	return t
}

// Add returns t + o as a new tensor.
func (t *Tensor) Add(o *Tensor) *Tensor { return t.Clone().AddInPlace(o) }

// Sub returns t - o as a new tensor.
func (t *Tensor) Sub(o *Tensor) *Tensor { return t.Clone().SubInPlace(o) }

// Mul returns the elementwise product as a new tensor.
func (t *Tensor) Mul(o *Tensor) *Tensor { return t.Clone().MulInPlace(o) }

// Scale returns s*t as a new tensor.
func (t *Tensor) Scale(s float64) *Tensor { return t.Clone().ScaleInPlace(s) }

// AxpyInPlace performs t += alpha*o and returns t.
func (t *Tensor) AxpyInPlace(alpha float64, o *Tensor) *Tensor {
	t.requireSameShape(o, "AxpyInPlace")
	for i, v := range o.Data {
		t.Data[i] += alpha * v
	}
	return t
}

// ClampInPlace limits every element to [lo, hi] and returns t.
func (t *Tensor) ClampInPlace(lo, hi float64) *Tensor {
	for i, v := range t.Data {
		if v < lo {
			t.Data[i] = lo
		} else if v > hi {
			t.Data[i] = hi
		}
	}
	return t
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Max returns the maximum element; it panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element; it panics on an empty tensor.
func (t *Tensor) Min() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the maximum element; it panics on an
// empty tensor. Ties resolve to the lowest index.
func (t *Tensor) ArgMax() int {
	if len(t.Data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best := 0
	for i, v := range t.Data {
		if v > t.Data[best] {
			best = i
		}
	}
	return best
}

// Dot returns the inner product of t and o viewed as flat vectors.
func (t *Tensor) Dot(o *Tensor) float64 {
	if len(t.Data) != len(o.Data) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(t.Data), len(o.Data)))
	}
	s := 0.0
	for i, v := range t.Data {
		s += v * o.Data[i]
	}
	return s
}

// L1Norm returns the sum of absolute values.
func (t *Tensor) L1Norm() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += math.Abs(v)
	}
	return s
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// LInfNorm returns the maximum absolute value (0 for empty tensors).
func (t *Tensor) LInfNorm() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// L0Norm returns the count of non-zero elements.
func (t *Tensor) L0Norm() int {
	n := 0
	for _, v := range t.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// AllClose reports whether every element of t is within tol of o's.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i, v := range t.Data {
		if math.Abs(v-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// HasNaN reports whether any element is NaN or infinite.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// String renders a compact description, truncating large tensors.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.Shape)
	for i, v := range t.Data {
		if i > 0 {
			b.WriteString(" ")
		}
		if i == 8 && len(t.Data) > 10 {
			fmt.Fprintf(&b, "... (%d elements)", len(t.Data))
			break
		}
		fmt.Fprintf(&b, "%.4g", v)
	}
	b.WriteString("]")
	return b.String()
}

func (t *Tensor) requireSameShape(o *Tensor, op string) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.Shape, o.Shape))
	}
}
