package tensor

import "fmt"

// MatMul computes the matrix product a×b of two rank-2 tensors,
// returning a new (rows(a) × cols(b)) tensor. The inner dimensions must
// agree. The loop order is i-k-j so the innermost loop walks both
// operands sequentially, which keeps the hot path cache-friendly without
// resorting to assembly.
func MatMul(a, b *Tensor) *Tensor {
	checkRank2(a, "MatMul lhs")
	checkRank2(b, "MatMul rhs")
	m, ka := a.Shape[0], a.Shape[1]
	kb, n := b.Shape[0], b.Shape[1]
	if ka != kb {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	matMulInto(out.Data, a.Data, b.Data, m, ka, n)
	return out
}

// MatMulInto computes dst = a×b, reusing dst's storage. dst must have
// shape (rows(a) × cols(b)); its prior contents are overwritten.
func MatMulInto(dst, a, b *Tensor) {
	checkRank2(a, "MatMulInto lhs")
	checkRank2(b, "MatMulInto rhs")
	checkRank2(dst, "MatMulInto dst")
	m, ka := a.Shape[0], a.Shape[1]
	kb, n := b.Shape[0], b.Shape[1]
	if ka != kb {
		panic(fmt.Sprintf("tensor: MatMulInto inner dimension mismatch %v x %v", a.Shape, b.Shape))
	}
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	matMulInto(dst.Data, a.Data, b.Data, m, ka, n)
}

func matMulInto(dst, a, b []float64, m, k, n int) {
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes a × bᵀ for rank-2 tensors a (m×k) and b (n×k),
// returning an m×n tensor. It avoids materializing the transpose.
func MatMulTransB(a, b *Tensor) *Tensor {
	checkRank2(a, "MatMulTransB lhs")
	checkRank2(b, "MatMulTransB rhs")
	m, ka := a.Shape[0], a.Shape[1]
	n, kb := b.Shape[0], b.Shape[1]
	if ka != kb {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v x %vᵀ", a.Shape, b.Shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*ka : (i+1)*ka]
		drow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*kb : (j+1)*kb]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			drow[j] = s
		}
	}
	return out
}

// MatMulTransA computes aᵀ × b for rank-2 tensors a (k×m) and b (k×n),
// returning an m×n tensor. It avoids materializing the transpose.
func MatMulTransA(a, b *Tensor) *Tensor {
	checkRank2(a, "MatMulTransA lhs")
	checkRank2(b, "MatMulTransA rhs")
	k, m := a.Shape[0], a.Shape[1]
	kb, n := b.Shape[0], b.Shape[1]
	if k != kb {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %vᵀ x %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : (p+1)*m]
		brow := b.Data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	return out
}

// Transpose2D returns the transpose of a rank-2 tensor as a new tensor.
func Transpose2D(a *Tensor) *Tensor {
	checkRank2(a, "Transpose2D")
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

// MatVec computes the matrix-vector product a×x for a rank-2 a (m×n) and
// a length-n vector x, returning a length-m rank-1 tensor.
func MatVec(a, x *Tensor) *Tensor {
	checkRank2(a, "MatVec lhs")
	m, n := a.Shape[0], a.Shape[1]
	if x.Len() != n {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v x vector(%d)", a.Shape, x.Len()))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		s := 0.0
		for j, v := range row {
			s += v * x.Data[j]
		}
		out.Data[i] = s
	}
	return out
}

func checkRank2(t *Tensor, what string) {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: %s must be rank 2, got shape %v", what, t.Shape))
	}
}
