package tensor

import "fmt"

// MatMul computes the matrix product a×b of two rank-2 tensors,
// returning a new (rows(a) × cols(b)) tensor. The inner dimensions must
// agree. The loop order is i-k-j so the innermost loop walks both
// operands sequentially, which keeps the hot path cache-friendly without
// resorting to assembly.
func MatMul(a, b *Tensor) *Tensor {
	checkRank2(a, "MatMul lhs")
	checkRank2(b, "MatMul rhs")
	m, ka := a.Shape[0], a.Shape[1]
	kb, n := b.Shape[0], b.Shape[1]
	if ka != kb {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	matMulInto(out.Data, a.Data, b.Data, m, ka, n)
	return out
}

// MatMulInto computes dst = a×b, reusing dst's storage. dst must have
// shape (rows(a) × cols(b)); its prior contents are overwritten.
func MatMulInto(dst, a, b *Tensor) {
	checkRank2(a, "MatMulInto lhs")
	checkRank2(b, "MatMulInto rhs")
	checkRank2(dst, "MatMulInto dst")
	m, ka := a.Shape[0], a.Shape[1]
	kb, n := b.Shape[0], b.Shape[1]
	if ka != kb {
		panic(fmt.Sprintf("tensor: MatMulInto inner dimension mismatch %v x %v", a.Shape, b.Shape))
	}
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	matMulInto(dst.Data, a.Data, b.Data, m, ka, n)
}

// matMulInto accumulates dst[i][j] = Σ_p a[i][p]·b[p][j] with the adds
// applied in ascending p per output element — the same rounding
// sequence as the plain i-p-j triple loop, so results are bit-identical
// (golden verdicts pin this). The loop nest is cache-blocked: columns
// are tiled so the output tile stays L1-resident, and within a tile
// four p-rows of b are applied to every output row before moving on,
// so b streams through cache once instead of once per output row.
// Blocks containing an exact zero weight fall back to the scalar path,
// which skips zero rows: the skip is semantically load-bearing (adding
// 0·b[j] would turn -0 sums into +0 and ±Inf·0 into NaN).
func matMulInto(dst, a, b []float64, m, k, n int) {
	for i := range dst {
		dst[i] = 0
	}
	// Tile width: keep the m output-row segments plus four b-row
	// segments (~(m+4)·jt·8 bytes) within a 32 KiB L1 budget.
	jt := 4096 / (m + 4) &^ 15
	if jt < 64 {
		jt = 64
	}
	if jt > n {
		jt = n
	}
	for j0 := 0; j0 < n; j0 += jt {
		j1 := j0 + jt
		if j1 > n {
			j1 = n
		}
		p := 0
		for ; p+8 <= k; p += 8 {
			b0 := b[p*n+j0 : p*n+j1]
			b1 := b[(p+1)*n+j0 : (p+1)*n+j1]
			b2 := b[(p+2)*n+j0 : (p+2)*n+j1]
			b3 := b[(p+3)*n+j0 : (p+3)*n+j1]
			b4 := b[(p+4)*n+j0 : (p+4)*n+j1]
			b5 := b[(p+5)*n+j0 : (p+5)*n+j1]
			b6 := b[(p+6)*n+j0 : (p+6)*n+j1]
			b7 := b[(p+7)*n+j0 : (p+7)*n+j1]
			for i := 0; i < m; i++ {
				arow := a[i*k : (i+1)*k]
				drow := dst[i*n+j0 : i*n+j1]
				if hasZero(arow[p : p+8]) {
					matMulAccumRange(drow, arow, b, p, p+8, n, j0, j1)
					continue
				}
				axpy8(drow, b0, b1, b2, b3, b4, b5, b6, b7,
					arow[p], arow[p+1], arow[p+2], arow[p+3],
					arow[p+4], arow[p+5], arow[p+6], arow[p+7])
			}
		}
		for ; p+4 <= k; p += 4 {
			b0 := b[p*n+j0 : p*n+j1]
			b1 := b[(p+1)*n+j0 : (p+1)*n+j1]
			b2 := b[(p+2)*n+j0 : (p+2)*n+j1]
			b3 := b[(p+3)*n+j0 : (p+3)*n+j1]
			for i := 0; i < m; i++ {
				arow := a[i*k : (i+1)*k]
				drow := dst[i*n+j0 : i*n+j1]
				a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
				if a0 == 0 || a1 == 0 || a2 == 0 || a3 == 0 {
					matMulAccumRange(drow, arow, b, p, p+4, n, j0, j1)
					continue
				}
				axpy4(drow, b0, b1, b2, b3, a0, a1, a2, a3)
			}
		}
		if p < k {
			for i := 0; i < m; i++ {
				matMulAccumRange(dst[i*n+j0:i*n+j1], a[i*k:(i+1)*k], b, p, k, n, j0, j1)
			}
		}
	}
}

func hasZero(s []float64) bool {
	for _, v := range s {
		if v == 0 {
			return true
		}
	}
	return false
}

// matMulAccumRange applies p-rows [p0, p1) of the accumulation over the
// column window [j0, j1) with the original scalar semantics (including
// the zero-row skip). drow is the output-row segment for that window.
func matMulAccumRange(drow, arow, b []float64, p0, p1, n, j0, j1 int) {
	for p := p0; p < p1; p++ {
		av := arow[p]
		if av == 0 {
			continue
		}
		axpy1(drow, b[p*n+j0:p*n+j1], av)
	}
}

// MatMulTransB computes a × bᵀ for rank-2 tensors a (m×k) and b (n×k),
// returning an m×n tensor. It avoids materializing the transpose.
func MatMulTransB(a, b *Tensor) *Tensor {
	checkRank2(a, "MatMulTransB lhs")
	checkRank2(b, "MatMulTransB rhs")
	m, ka := a.Shape[0], a.Shape[1]
	n, kb := b.Shape[0], b.Shape[1]
	if ka != kb {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v x %vᵀ", a.Shape, b.Shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*ka : (i+1)*ka]
		drow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*kb : (j+1)*kb]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			drow[j] = s
		}
	}
	return out
}

// MatMulTransA computes aᵀ × b for rank-2 tensors a (k×m) and b (k×n),
// returning an m×n tensor. It avoids materializing the transpose.
func MatMulTransA(a, b *Tensor) *Tensor {
	checkRank2(a, "MatMulTransA lhs")
	checkRank2(b, "MatMulTransA rhs")
	k, m := a.Shape[0], a.Shape[1]
	kb, n := b.Shape[0], b.Shape[1]
	if k != kb {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %vᵀ x %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : (p+1)*m]
		brow := b.Data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	return out
}

// Transpose2D returns the transpose of a rank-2 tensor as a new tensor.
func Transpose2D(a *Tensor) *Tensor {
	checkRank2(a, "Transpose2D")
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

// MatVec computes the matrix-vector product a×x for a rank-2 a (m×n) and
// a length-n vector x, returning a length-m rank-1 tensor.
func MatVec(a, x *Tensor) *Tensor {
	checkRank2(a, "MatVec lhs")
	m, n := a.Shape[0], a.Shape[1]
	if x.Len() != n {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v x vector(%d)", a.Shape, x.Len()))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		s := 0.0
		for j, v := range row {
			s += v * x.Data[j]
		}
		out.Data[i] = s
	}
	return out
}

// MatVecInto computes dst = a×x, reusing dst's storage. dst must be a
// length-m rank-1 tensor; the arithmetic matches MatVec exactly. Four
// rows are processed per pass with independent accumulators — each
// row's dot product still sums in ascending j, so results are
// bit-identical to MatVec, but the four dependency chains overlap
// instead of serializing on FP-add latency.
func MatVecInto(dst, a, x *Tensor) {
	checkRank2(a, "MatVecInto lhs")
	m, n := a.Shape[0], a.Shape[1]
	if x.Len() != n {
		panic(fmt.Sprintf("tensor: MatVecInto dimension mismatch %v x vector(%d)", a.Shape, x.Len()))
	}
	if dst.Len() != m {
		panic(fmt.Sprintf("tensor: MatVecInto dst length %d, want %d", dst.Len(), m))
	}
	xv := x.Data[:n]
	i := 0
	for ; i+4 <= m; i += 4 {
		r0 := a.Data[i*n : i*n+n]
		r1 := a.Data[(i+1)*n : (i+1)*n+n]
		r2 := a.Data[(i+2)*n : (i+2)*n+n]
		r3 := a.Data[(i+3)*n : (i+3)*n+n]
		var s0, s1, s2, s3 float64
		for j, v := range xv {
			s0 += r0[j] * v
			s1 += r1[j] * v
			s2 += r2[j] * v
			s3 += r3[j] * v
		}
		dst.Data[i] = s0
		dst.Data[i+1] = s1
		dst.Data[i+2] = s2
		dst.Data[i+3] = s3
	}
	for ; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		s := 0.0
		for j, v := range row {
			s += v * xv[j]
		}
		dst.Data[i] = s
	}
}

func checkRank2(t *Tensor, what string) {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: %s must be rank 2, got shape %v", what, t.Shape))
	}
}
