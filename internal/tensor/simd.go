package tensor

// Axpy4 applies the four-row multiply-add block
// d[j] = (((d[j] + a0*b0[j]) + a1*b1[j]) + a2*b2[j]) + a3*b3[j]
// for j in [0, len(d)), each add rounded separately in that order.
// The b slices must be at least len(d) long.
func Axpy4(d, b0, b1, b2, b3 []float64, a0, a1, a2, a3 float64) {
	axpy4(d, b0, b1, b2, b3, a0, a1, a2, a3)
}

// Axpy applies d[j] += a*b[j] for j in [0, len(d)), one rounding for
// the multiply and one for the add. b must be at least len(d) long.
func Axpy(d, b []float64, a float64) {
	axpy1(d, b, a)
}

// Axpy8 is two consecutive Axpy4 passes fused into one kernel call:
// per element the eight adds are applied in ascending tap order with
// identical rounding. The b slices must be at least len(d) long.
func Axpy8(d, b0, b1, b2, b3, b4, b5, b6, b7 []float64, a0, a1, a2, a3, a4, a5, a6, a7 float64) {
	axpy8(d, b0, b1, b2, b3, b4, b5, b6, b7, a0, a1, a2, a3, a4, a5, a6, a7)
}

// axpy4Generic is the portable reference for the four-row multiply-add
// block: d[j] = (((d[j] + a0*b0[j]) + a1*b1[j]) + a2*b2[j]) + a3*b3[j]
// with each add rounded separately in ascending row order. The AVX
// kernel must match it bit-for-bit on every input.
func axpy4Generic(d, b0, b1, b2, b3 []float64, a0, a1, a2, a3 float64) {
	b0 = b0[:len(d)]
	for j, v := range b0 {
		s := d[j] + a0*v
		s += a1 * b1[j]
		s += a2 * b2[j]
		s += a3 * b3[j]
		d[j] = s
	}
}

// axpy1Generic is the portable reference for the single-row
// multiply-add: d[j] += a*b[j].
func axpy1Generic(d, b []float64, a float64) {
	b = b[:len(d)]
	for j, v := range b {
		d[j] += a * v
	}
}

// addConstGeneric is the portable reference for AddConstInto.
func addConstGeneric(d []float64, c float64) {
	for i := range d {
		d[i] += c
	}
}

// reluGeneric is the portable reference for ReLUInto.
func reluGeneric(dst, src []float64) {
	for i, v := range src {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}
