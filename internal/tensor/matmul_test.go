package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulBasic(t *testing.T) {
	a := From([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := From([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := From([]float64{58, 64, 139, 154}, 2, 2)
	if !got.AllClose(want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := New(5, 5).FillNormal(rng, 0, 1)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(1, i, i)
	}
	if got := MatMul(a, id); !got.AllClose(a, 1e-12) {
		t.Fatal("A x I != A")
	}
	if got := MatMul(id, a); !got.AllClose(a, 1e-12) {
		t.Fatal("I x A != A")
	}
}

func TestMatMulInnerMismatchPanics(t *testing.T) {
	defer expectPanic(t, "inner dimension mismatch")
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulRankPanics(t *testing.T) {
	defer expectPanic(t, "rank check")
	MatMul(New(2, 3, 1), New(3, 2))
}

func TestMatMulInto(t *testing.T) {
	a := From([]float64{1, 2, 3, 4}, 2, 2)
	b := From([]float64{5, 6, 7, 8}, 2, 2)
	dst := New(2, 2).Fill(99) // prior contents must be overwritten
	MatMulInto(dst, a, b)
	want := MatMul(a, b)
	if !dst.AllClose(want, 1e-12) {
		t.Fatalf("MatMulInto = %v, want %v", dst, want)
	}
}

func TestMatMulIntoBadDstPanics(t *testing.T) {
	defer expectPanic(t, "dst shape")
	MatMulInto(New(3, 3), New(2, 2), New(2, 2))
}

func TestTranspose2D(t *testing.T) {
	a := From([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	got := Transpose2D(a)
	want := From([]float64{1, 4, 2, 5, 3, 6}, 3, 2)
	if !got.AllClose(want, 0) {
		t.Fatalf("Transpose2D = %v, want %v", got, want)
	}
}

func TestMatMulTransBMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := New(4, 7).FillNormal(rng, 0, 1)
	b := New(3, 7).FillNormal(rng, 0, 1)
	got := MatMulTransB(a, b)
	want := MatMul(a, Transpose2D(b))
	if !got.AllClose(want, 1e-10) {
		t.Fatal("MatMulTransB disagrees with explicit transpose")
	}
}

func TestMatMulTransAMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := New(7, 4).FillNormal(rng, 0, 1)
	b := New(7, 3).FillNormal(rng, 0, 1)
	got := MatMulTransA(a, b)
	want := MatMul(Transpose2D(a), b)
	if !got.AllClose(want, 1e-10) {
		t.Fatal("MatMulTransA disagrees with explicit transpose")
	}
}

func TestMatVec(t *testing.T) {
	a := From([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := From([]float64{1, 0, -1}, 3)
	got := MatVec(a, x)
	want := From([]float64{-2, -2}, 2)
	if !got.AllClose(want, 1e-12) {
		t.Fatalf("MatVec = %v, want %v", got, want)
	}
}

func TestMatVecMismatchPanics(t *testing.T) {
	defer expectPanic(t, "dimension mismatch")
	MatVec(New(2, 3), New(4))
}

// Property: matrix multiplication is associative within tolerance.
func TestPropertyMatMulAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n, p := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := New(m, k).FillNormal(rng, 0, 1)
		b := New(k, n).FillNormal(rng, 0, 1)
		c := New(n, p).FillNormal(rng, 0, 1)
		lhs := MatMul(MatMul(a, b), c)
		rhs := MatMul(a, MatMul(b, c))
		return lhs.AllClose(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: (AB)ᵀ == BᵀAᵀ.
func TestPropertyMatMulTransposeRule(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := New(m, k).FillNormal(rng, 0, 1)
		b := New(k, n).FillNormal(rng, 0, 1)
		lhs := Transpose2D(MatMul(a, b))
		rhs := MatMul(Transpose2D(b), Transpose2D(a))
		return lhs.AllClose(rhs, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := New(64, 64).FillNormal(rng, 0, 1)
	y := New(64, 64).FillNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkIm2Col28(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	img := New(8, 28, 28).FillNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(img, 3, 3, 1, 1)
	}
}
