package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvOutSize(t *testing.T) {
	tests := []struct {
		in, kernel, stride, pad, want int
	}{
		{28, 3, 1, 1, 28},
		{28, 3, 1, 0, 26},
		{28, 2, 2, 0, 14},
		{32, 5, 1, 2, 32},
		{7, 7, 1, 0, 1},
	}
	for _, tc := range tests {
		if got := ConvOutSize(tc.in, tc.kernel, tc.stride, tc.pad); got != tc.want {
			t.Errorf("ConvOutSize(%d,%d,%d,%d) = %d, want %d",
				tc.in, tc.kernel, tc.stride, tc.pad, got, tc.want)
		}
	}
}

// naiveConv computes a single-filter convolution directly, as ground
// truth for the im2col + matmul path.
func naiveConv(img *Tensor, w *Tensor, kh, kw, stride, pad int) *Tensor {
	c, h, wd := img.Shape[0], img.Shape[1], img.Shape[2]
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(wd, kw, stride, pad)
	out := New(outH, outW)
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			s := 0.0
			for ch := 0; ch < c; ch++ {
				for ky := 0; ky < kh; ky++ {
					for kx := 0; kx < kw; kx++ {
						iy := oy*stride - pad + ky
						ix := ox*stride - pad + kx
						if iy < 0 || iy >= h || ix < 0 || ix >= wd {
							continue
						}
						s += img.At(ch, iy, ix) * w.At(ch, ky, kx)
					}
				}
			}
			out.Set(s, oy, ox)
		}
	}
	return out
}

func TestIm2ColMatchesNaiveConv(t *testing.T) {
	tests := []struct {
		name                  string
		c, h, w, kh, kw, s, p int
	}{
		{"3x3 pad1", 3, 8, 8, 3, 3, 1, 1},
		{"3x3 nopad", 2, 7, 9, 3, 3, 1, 0},
		{"5x5 stride2", 1, 11, 11, 5, 5, 2, 2},
		{"1x1", 4, 6, 6, 1, 1, 1, 0},
		{"rect kernel", 2, 9, 7, 3, 2, 1, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			img := New(tc.c, tc.h, tc.w).FillNormal(rng, 0, 1)
			weight := New(tc.c, tc.kh, tc.kw).FillNormal(rng, 0, 1)

			cols := Im2Col(img, tc.kh, tc.kw, tc.s, tc.p)
			wRow := weight.Reshape(1, tc.c*tc.kh*tc.kw)
			viaCols := MatMul(wRow, cols)

			want := naiveConv(img, weight, tc.kh, tc.kw, tc.s, tc.p)
			got := viaCols.Reshape(want.Shape[0], want.Shape[1])
			if !got.AllClose(want, 1e-10) {
				t.Fatal("im2col+matmul disagrees with naive convolution")
			}
		})
	}
}

func TestIm2ColRankPanics(t *testing.T) {
	defer expectPanic(t, "rank-3 input required")
	Im2Col(New(8, 8), 3, 3, 1, 1)
}

func TestIm2ColEmptyOutputPanics(t *testing.T) {
	defer expectPanic(t, "kernel larger than image")
	Im2Col(New(1, 4, 4), 9, 9, 1, 0)
}

func TestCol2ImShapePanics(t *testing.T) {
	defer expectPanic(t, "cols shape mismatch")
	Col2Im(New(3, 3), 1, 8, 8, 3, 3, 1, 1)
}

// Property: Col2Im is the adjoint of Im2Col, i.e.
// <Im2Col(x), y> == <x, Col2Im(y)> for all x, y. This is exactly the
// condition for the convolution backward pass to be correct.
func TestPropertyCol2ImAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, h, w := 1+rng.Intn(3), 4+rng.Intn(5), 4+rng.Intn(5)
		kh, kw := 1+rng.Intn(3), 1+rng.Intn(3)
		stride, pad := 1+rng.Intn(2), rng.Intn(2)

		x := New(c, h, w).FillNormal(rng, 0, 1)
		colsShape := Im2Col(x, kh, kw, stride, pad)
		y := New(colsShape.Shape[0], colsShape.Shape[1]).FillNormal(rng, 0, 1)

		lhs := colsShape.Dot(y)
		rhs := x.Dot(Col2Im(y, c, h, w, kh, kw, stride, pad))
		diff := lhs - rhs
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCol2ImAccumulatesOverlaps(t *testing.T) {
	// With a 2x2 kernel, stride 1, no pad on a 3x3 image, the center
	// pixel is covered by all 4 windows; ones in cols must sum to 4.
	cols := New(4, 4).Fill(1) // c*kh*kw = 4 rows, outH*outW = 4 cols
	img := Col2Im(cols, 1, 3, 3, 2, 2, 1, 0)
	if got := img.At(0, 1, 1); got != 4 {
		t.Fatalf("center accumulation = %v, want 4", got)
	}
	if got := img.At(0, 0, 0); got != 1 {
		t.Fatalf("corner accumulation = %v, want 1", got)
	}
}
