//go:build !amd64

package tensor

func axpy4(d, b0, b1, b2, b3 []float64, a0, a1, a2, a3 float64) {
	axpy4Generic(d, b0, b1, b2, b3, a0, a1, a2, a3)
}

func axpy8(d, b0, b1, b2, b3, b4, b5, b6, b7 []float64, a0, a1, a2, a3, a4, a5, a6, a7 float64) {
	axpy4Generic(d, b0, b1, b2, b3, a0, a1, a2, a3)
	axpy4Generic(d, b4, b5, b6, b7, a4, a5, a6, a7)
}

func axpy1(d, b []float64, a float64) {
	axpy1Generic(d, b, a)
}

// AddConstInto adds c to every element of d in place, one rounding per
// element — identical to the scalar loop.
func AddConstInto(d []float64, c float64) {
	addConstGeneric(d, c)
}

// ReLUInto writes dst[i] = max-with-zero of src[i] using the exact
// comparison v > 0 (NaN and -0 map to +0). dst and src must have equal
// length; dst may alias src.
func ReLUInto(dst, src []float64) {
	if len(dst) != len(src) {
		panic("tensor: ReLUInto length mismatch")
	}
	reluGeneric(dst, src)
}
