package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// The SIMD kernels carry a hard contract: bit-identical results to the
// portable Go references on every input, including NaN, ±Inf, -0 and
// denormals. Golden artifacts pin verdict bits end to end, so a single
// ULP of drift in any kernel is a broken build. The tests below are the
// differential battery enforcing that contract: on amd64 they compare
// the dispatched (assembly) kernels against the *Generic references; on
// other GOARCHes dispatch and reference coincide and the battery is a
// tautology, which is exactly the point — the references define the
// semantics.

// specials is the adversarial float corpus every kernel must round-trip
// bit-for-bit. MaxFloat64 products overflow to ±Inf; the denormal
// exercises flush-to-zero misconfigurations (x87/DAZ would flush it).
var specials = []float64{
	0, math.Copysign(0, -1), 1, -1,
	math.NaN(), math.Inf(1), math.Inf(-1),
	math.MaxFloat64, -math.MaxFloat64,
	math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	5e-324, 2.2250738585072014e-308, // smallest denormal, smallest normal
	math.Pi, -math.E, 1e-300, 1e300,
}

// kernelSizes covers the vector-width seams: scalar tails 1..17 span
// every remainder class of the 4-, 8- and 16-wide loops, and the larger
// sizes hit the unrolled main bodies with non-empty tails.
var kernelSizes = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 24, 31, 32, 33, 63, 64, 65, 100, 127, 128, 129, 784}

// fillMixed fills s with random finite values, then splices in entries
// from the specials corpus so every test vector carries a few
// adversarial floats at pseudo-random positions.
func fillMixed(rng *rand.Rand, s []float64) {
	for i := range s {
		s[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(13)-6))
	}
	nSpecial := 1 + len(s)/8
	for k := 0; k < nSpecial; k++ {
		s[rng.Intn(len(s))] = specials[rng.Intn(len(specials))]
	}
}

// bitsEqual compares element-wise with exact bit equality for every
// non-NaN value; two NaNs compare equal regardless of payload. Payload
// propagation through x86 MUL/ADD follows the first-source operand,
// which for compiled Go loops depends on register allocation — two
// bit-identical Go loops can legally disagree on which input NaN's
// payload survives. The class-level contract is the enforceable (and
// sufficient) one: a NaN payload can never become a value difference
// downstream, because ReLU maps every NaN to +0, the pooling compare
// treats every NaN the same, and math.Exp canonicalizes NaN inputs.
func bitsEqual(a, b []float64) (int, bool) {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) &&
			!(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			return i, false
		}
	}
	return 0, true
}

// TestAxpy4AsmMatchesGeneric pins the 4-row multiply-add kernel to the
// generic reference with random/NaN/Inf/-0 inputs across all tail
// lengths. (The simd_amd64.s header promises this test by name.)
func TestAxpy4AsmMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range kernelSizes {
		for trial := 0; trial < 20; trial++ {
			d := make([]float64, n)
			want := make([]float64, n)
			rows := make([][]float64, 4)
			coef := make([]float64, 4)
			fillMixed(rng, d)
			copy(want, d)
			for r := range rows {
				rows[r] = make([]float64, n)
				fillMixed(rng, rows[r])
				coef[r] = rng.NormFloat64()
				if trial%5 == 1 {
					coef[r] = specials[rng.Intn(len(specials))]
				}
			}
			axpy4Generic(want, rows[0], rows[1], rows[2], rows[3], coef[0], coef[1], coef[2], coef[3])
			Axpy4(d, rows[0], rows[1], rows[2], rows[3], coef[0], coef[1], coef[2], coef[3])
			if i, ok := bitsEqual(d, want); !ok {
				t.Fatalf("n=%d trial=%d: Axpy4 diverges from generic at [%d]: got %x want %x",
					n, trial, i, math.Float64bits(d[i]), math.Float64bits(want[i]))
			}
		}
	}
}

// TestAxpy8AsmMatchesGeneric pins the fused 8-row kernel to two generic
// 4-row passes — the defining decomposition of Axpy8.
func TestAxpy8AsmMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range kernelSizes {
		for trial := 0; trial < 20; trial++ {
			d := make([]float64, n)
			want := make([]float64, n)
			rows := make([][]float64, 8)
			coef := make([]float64, 8)
			fillMixed(rng, d)
			copy(want, d)
			for r := range rows {
				rows[r] = make([]float64, n)
				fillMixed(rng, rows[r])
				coef[r] = rng.NormFloat64()
				if trial%5 == 2 {
					coef[r] = specials[rng.Intn(len(specials))]
				}
			}
			axpy4Generic(want, rows[0], rows[1], rows[2], rows[3], coef[0], coef[1], coef[2], coef[3])
			axpy4Generic(want, rows[4], rows[5], rows[6], rows[7], coef[4], coef[5], coef[6], coef[7])
			Axpy8(d, rows[0], rows[1], rows[2], rows[3], rows[4], rows[5], rows[6], rows[7],
				coef[0], coef[1], coef[2], coef[3], coef[4], coef[5], coef[6], coef[7])
			if i, ok := bitsEqual(d, want); !ok {
				t.Fatalf("n=%d trial=%d: Axpy8 diverges from generic at [%d]: got %x want %x",
					n, trial, i, math.Float64bits(d[i]), math.Float64bits(want[i]))
			}
		}
	}
}

// TestAxpyAsmMatchesGeneric pins the single-row kernel.
func TestAxpyAsmMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range kernelSizes {
		for trial := 0; trial < 20; trial++ {
			d := make([]float64, n)
			want := make([]float64, n)
			b := make([]float64, n)
			fillMixed(rng, d)
			copy(want, d)
			fillMixed(rng, b)
			a := rng.NormFloat64()
			if trial%4 == 3 {
				a = specials[rng.Intn(len(specials))]
			}
			axpy1Generic(want, b, a)
			Axpy(d, b, a)
			if i, ok := bitsEqual(d, want); !ok {
				t.Fatalf("n=%d trial=%d a=%x: Axpy diverges from generic at [%d]: got %x want %x",
					n, trial, math.Float64bits(a), i, math.Float64bits(d[i]), math.Float64bits(want[i]))
			}
		}
	}
}

// TestAddConstIntoMatchesGeneric pins the bias-broadcast kernel.
func TestAddConstIntoMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, n := range kernelSizes {
		for trial := 0; trial < 10; trial++ {
			d := make([]float64, n)
			want := make([]float64, n)
			fillMixed(rng, d)
			copy(want, d)
			c := rng.NormFloat64()
			if trial%3 == 0 {
				c = specials[rng.Intn(len(specials))]
			}
			addConstGeneric(want, c)
			AddConstInto(d, c)
			if i, ok := bitsEqual(d, want); !ok {
				t.Fatalf("n=%d trial=%d c=%x: AddConstInto diverges at [%d]: got %x want %x",
					n, trial, math.Float64bits(c), i, math.Float64bits(d[i]), math.Float64bits(want[i]))
			}
		}
	}
}

// TestReLUIntoMatchesGeneric pins the rectifier: the comparison is
// exactly v > 0, so NaN and -0 both map to +0 — the vector compare must
// use an ordered GT predicate to match.
func TestReLUIntoMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, n := range kernelSizes {
		for trial := 0; trial < 10; trial++ {
			src := make([]float64, n)
			fillMixed(rng, src)
			want := make([]float64, n)
			got := make([]float64, n)
			reluGeneric(want, src)
			ReLUInto(got, src)
			if i, ok := bitsEqual(got, want); !ok {
				t.Fatalf("n=%d trial=%d: ReLUInto diverges at [%d]: src %x got %x want %x",
					n, trial, i, math.Float64bits(src[i]), math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
			// In-place form: dst aliasing src is part of the contract.
			inPlace := make([]float64, n)
			copy(inPlace, src)
			ReLUInto(inPlace, inPlace)
			if i, ok := bitsEqual(inPlace, want); !ok {
				t.Fatalf("n=%d trial=%d: in-place ReLUInto diverges at [%d]", n, trial, i)
			}
		}
	}
}

// TestReLUIntoSpecialValuesExact spells out the rectifier's edge table
// explicitly rather than trusting the random corpus to cover it.
func TestReLUIntoSpecialValuesExact(t *testing.T) {
	src := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 0, 5e-324, -5e-324, 1.5, -1.5}
	want := []float64{0, math.Inf(1), 0, 0, 0, 5e-324, 0, 1.5, 0}
	got := make([]float64, len(src))
	ReLUInto(got, src)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Errorf("ReLU(%x) = %x, want %x", math.Float64bits(src[i]), math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestAxpyKernelsEmptyAndShortSlices guards the len==0 dispatch path
// (taking &d[0] of an empty slice would panic).
func TestAxpyKernelsEmptyAndShortSlices(t *testing.T) {
	empty := []float64{}
	Axpy(empty, empty, 2)
	Axpy4(empty, empty, empty, empty, empty, 1, 2, 3, 4)
	Axpy8(empty, empty, empty, empty, empty, empty, empty, empty, empty, 1, 2, 3, 4, 5, 6, 7, 8)
	AddConstInto(empty, 1)
	ReLUInto(empty, empty)

	// b longer than d: only len(d) elements may be touched.
	d := []float64{1}
	b := []float64{10, math.NaN()}
	Axpy(d, b, 2)
	if d[0] != 21 {
		t.Fatalf("Axpy short dst: got %v, want 21", d[0])
	}
}

// TestMatMulBlockedMatchesNaive pins the cache-blocked/SIMD matMulInto
// against the plain i-p-j triple loop with the zero-skip — the original
// scalar semantics — across shapes straddling every block boundary,
// with zeros dense enough to force the scalar fallback rows and
// specials to verify NaN/Inf propagation through the skip logic.
func TestMatMulBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	shapes := [][3]int{
		{1, 1, 1}, {1, 8, 1}, {3, 4, 5}, {4, 9, 7}, {5, 16, 11},
		{6, 54, 676}, {12, 108, 676}, {32, 588, 1}, {7, 17, 130}, {2, 100, 100},
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		for trial := 0; trial < 6; trial++ {
			a := New(m, k)
			b := New(k, n)
			fillMixed(rng, a.Data)
			fillMixed(rng, b.Data)
			// Sprinkle zeros into a to exercise the hasZero fallback.
			for z := 0; z < m*k/5+1; z++ {
				a.Data[rng.Intn(m * k)] = 0
			}
			want := make([]float64, m*n)
			for i := 0; i < m; i++ {
				for p := 0; p < k; p++ {
					av := a.Data[i*k+p]
					if av == 0 {
						continue
					}
					for j := 0; j < n; j++ {
						want[i*n+j] += av * b.Data[p*n+j]
					}
				}
			}
			dst := New(m, n)
			MatMulInto(dst, a, b)
			if i, ok := bitsEqual(dst.Data, want); !ok {
				t.Fatalf("(%dx%d)x(%dx%d) trial=%d: blocked matmul diverges at [%d]: got %x want %x",
					m, k, k, n, trial, i, math.Float64bits(dst.Data[i]), math.Float64bits(want[i]))
			}
		}
	}
}

// TestMatVecIntoMatchesMatVec pins the 4-row-blocked MatVecInto against
// the reference MatVec across row-count remainders 0..3.
func TestMatVecIntoMatchesMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, m := range []int{1, 2, 3, 4, 5, 7, 8, 32, 33, 588} {
		for _, n := range []int{1, 3, 32, 100} {
			a := New(m, n)
			x := New(n)
			fillMixed(rng, a.Data)
			fillMixed(rng, x.Data)
			want := MatVec(a, x)
			dst := New(m)
			MatVecInto(dst, a, x)
			if i, ok := bitsEqual(dst.Data, want.Data); !ok {
				t.Fatalf("(%dx%d): MatVecInto diverges at [%d]: got %x want %x",
					m, n, i, math.Float64bits(dst.Data[i]), math.Float64bits(want.Data[i]))
			}
		}
	}
}

// FuzzAxpyKernelEquivalence drives the axpy family from fuzzed bytes:
// any byte string decodes to a (length, coefficients, data) triple and
// the assembly must match the generic reference bit-for-bit.
func FuzzAxpyKernelEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{0xff, 0xf0, 0, 0, 0, 0, 0, 1, 0x7f, 0xf8, 0, 0, 0, 0, 0, 1, 0x80, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 16 {
			return
		}
		n := int(raw[0])%65 + 1
		// Decode float64s cyclically from the raw bytes.
		nextF := func(i int) float64 {
			var u uint64
			for k := 0; k < 8; k++ {
				u = u<<8 | uint64(raw[(i*8+k)%len(raw)])
			}
			return math.Float64frombits(u)
		}
		d := make([]float64, n)
		b := make([][]float64, 8)
		coef := make([]float64, 8)
		for j := range d {
			d[j] = nextF(j)
		}
		for r := range b {
			b[r] = make([]float64, n)
			for j := range b[r] {
				b[r][j] = nextF(n + r*n + j)
			}
			coef[r] = nextF(9*n + r)
		}
		want := make([]float64, n)

		copy(want, d)
		got := make([]float64, n)
		copy(got, d)
		axpy1Generic(want, b[0], coef[0])
		Axpy(got, b[0], coef[0])
		if i, ok := bitsEqual(got, want); !ok {
			t.Fatalf("Axpy diverges at [%d]", i)
		}

		copy(want, d)
		copy(got, d)
		axpy4Generic(want, b[0], b[1], b[2], b[3], coef[0], coef[1], coef[2], coef[3])
		Axpy4(got, b[0], b[1], b[2], b[3], coef[0], coef[1], coef[2], coef[3])
		if i, ok := bitsEqual(got, want); !ok {
			t.Fatalf("Axpy4 diverges at [%d]", i)
		}

		copy(want, d)
		copy(got, d)
		axpy4Generic(want, b[0], b[1], b[2], b[3], coef[0], coef[1], coef[2], coef[3])
		axpy4Generic(want, b[4], b[5], b[6], b[7], coef[4], coef[5], coef[6], coef[7])
		Axpy8(got, b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
			coef[0], coef[1], coef[2], coef[3], coef[4], coef[5], coef[6], coef[7])
		if i, ok := bitsEqual(got, want); !ok {
			t.Fatalf("Axpy8 diverges at [%d]", i)
		}
	})
}

func benchAxpy(b *testing.B, n int, fn func(d, r0, r1, r2, r3 []float64)) {
	d := make([]float64, n)
	rows := make([][]float64, 4)
	rng := rand.New(rand.NewSource(7))
	for r := range rows {
		rows[r] = make([]float64, n)
		for j := range rows[r] {
			rows[r][j] = rng.NormFloat64()
		}
	}
	b.SetBytes(int64(n * 8 * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(d, rows[0], rows[1], rows[2], rows[3])
	}
}

func BenchmarkAxpy4Dispatch784(b *testing.B) {
	benchAxpy(b, 784, func(d, r0, r1, r2, r3 []float64) {
		Axpy4(d, r0, r1, r2, r3, 1.1, 2.2, 3.3, 4.4)
	})
}

func BenchmarkAxpy4Generic784(b *testing.B) {
	benchAxpy(b, 784, func(d, r0, r1, r2, r3 []float64) {
		axpy4Generic(d, r0, r1, r2, r3, 1.1, 2.2, 3.3, 4.4)
	})
}
