// AVX kernels for the scoring hot path. Every kernel performs the
// exact same per-element rounding sequence as its Go reference
// (axpy4Generic): vectorization is across independent output elements
// j, never across the accumulation axis, so results are bit-identical.
// TestAxpy4AsmMatchesGeneric pins this with random/NaN/Inf/-0 inputs.
//
// NaN-payload discipline: MULPD/ADDPD propagate the NaN of their FIRST
// source operand (src1), so operand order is part of the bit contract.
// The compiled Go reference for d[j] += a*b[j] propagates b's NaN over
// a's in the multiply and the product's NaN over d's in the add; every
// kernel below therefore loads b into a register and multiplies with b
// as src1 (memory operands can only be src2), and adds with the product
// as src1. In Go asm syntax (operands reversed from Intel) that reads
// VMULPD Ya, Yb, Ydst and VADDPD Yacc, Yprod, Yacc.

#include "textflag.h"

// func cpuid(leaf uint32) (eax, ebx, ecx, edx uint32)
// Executes CPUID with the given leaf and subleaf 0.
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	XORL CX, CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() uint32
// Returns the low 32 bits of XCR0 (OS-enabled state: SSE=1, AVX=2).
TEXT ·xgetbv0(SB), NOSPLIT, $0-4
	XORL CX, CX
	XGETBV
	MOVL AX, ret+0(FP)
	RET

// func axpy4avx(d, b0, b1, b2, b3 *float64, n int, a0, a1, a2, a3 float64)
//
// For j in [0,n): d[j] = (((d[j] + a0*b0[j]) + a1*b1[j]) + a2*b2[j]) + a3*b3[j]
// with each add rounded separately in that order (no FMA — fusing
// would change the rounding and break golden-verdict bit pinning).
TEXT ·axpy4avx(SB), NOSPLIT, $0-80
	MOVQ d+0(FP), DI
	MOVQ b0+8(FP), SI
	MOVQ b1+16(FP), R8
	MOVQ b2+24(FP), R9
	MOVQ b3+32(FP), R10
	MOVQ n+40(FP), CX
	VBROADCASTSD a0+48(FP), Y0
	VBROADCASTSD a1+56(FP), Y1
	VBROADCASTSD a2+64(FP), Y2
	VBROADCASTSD a3+72(FP), Y3
	XORQ BX, BX
	MOVQ CX, R11
	ANDQ $-8, R11
	MOVQ CX, DX
	ANDQ $-4, DX

vec8:
	CMPQ BX, R11
	JGE  vec
	VMOVUPD (DI)(BX*8), Y4
	VMOVUPD 32(DI)(BX*8), Y6
	VMOVUPD (SI)(BX*8), Y5
	VMOVUPD 32(SI)(BX*8), Y7
	VMULPD  Y0, Y5, Y5
	VMULPD  Y0, Y7, Y7
	VADDPD  Y4, Y5, Y4
	VADDPD  Y6, Y7, Y6
	VMOVUPD (R8)(BX*8), Y5
	VMOVUPD 32(R8)(BX*8), Y7
	VMULPD  Y1, Y5, Y5
	VMULPD  Y1, Y7, Y7
	VADDPD  Y4, Y5, Y4
	VADDPD  Y6, Y7, Y6
	VMOVUPD (R9)(BX*8), Y5
	VMOVUPD 32(R9)(BX*8), Y7
	VMULPD  Y2, Y5, Y5
	VMULPD  Y2, Y7, Y7
	VADDPD  Y4, Y5, Y4
	VADDPD  Y6, Y7, Y6
	VMOVUPD (R10)(BX*8), Y5
	VMOVUPD 32(R10)(BX*8), Y7
	VMULPD  Y3, Y5, Y5
	VMULPD  Y3, Y7, Y7
	VADDPD  Y4, Y5, Y4
	VADDPD  Y6, Y7, Y6
	VMOVUPD Y4, (DI)(BX*8)
	VMOVUPD Y6, 32(DI)(BX*8)
	ADDQ    $8, BX
	JMP     vec8

vec:
	CMPQ BX, DX
	JGE  tail
	VMOVUPD (DI)(BX*8), Y4
	VMOVUPD (SI)(BX*8), Y5
	VMULPD  Y0, Y5, Y5
	VADDPD  Y4, Y5, Y4
	VMOVUPD (R8)(BX*8), Y5
	VMULPD  Y1, Y5, Y5
	VADDPD  Y4, Y5, Y4
	VMOVUPD (R9)(BX*8), Y5
	VMULPD  Y2, Y5, Y5
	VADDPD  Y4, Y5, Y4
	VMOVUPD (R10)(BX*8), Y5
	VMULPD  Y3, Y5, Y5
	VADDPD  Y4, Y5, Y4
	VMOVUPD Y4, (DI)(BX*8)
	ADDQ    $4, BX
	JMP     vec

tail:
	CMPQ BX, CX
	JGE  done
	VMOVSD (DI)(BX*8), X4
	VMOVSD (SI)(BX*8), X5
	VMULSD X0, X5, X5
	VADDSD X4, X5, X4
	VMOVSD (R8)(BX*8), X5
	VMULSD X1, X5, X5
	VADDSD X4, X5, X4
	VMOVSD (R9)(BX*8), X5
	VMULSD X2, X5, X5
	VADDSD X4, X5, X4
	VMOVSD (R10)(BX*8), X5
	VMULSD X3, X5, X5
	VADDSD X4, X5, X4
	VMOVSD X4, (DI)(BX*8)
	INCQ   BX
	JMP    tail

done:
	VZEROUPPER
	RET

// func axpy4avx512(d, b0, b1, b2, b3 *float64, n int, a0, a1, a2, a3 float64)
//
// AVX-512 variant of axpy4avx: identical per-element rounding
// sequence, 8 (or 16, unrolled) elements per pass.
TEXT ·axpy4avx512(SB), NOSPLIT, $0-80
	MOVQ d+0(FP), DI
	MOVQ b0+8(FP), SI
	MOVQ b1+16(FP), R8
	MOVQ b2+24(FP), R9
	MOVQ b3+32(FP), R10
	MOVQ n+40(FP), CX
	VBROADCASTSD a0+48(FP), Z0
	VBROADCASTSD a1+56(FP), Z1
	VBROADCASTSD a2+64(FP), Z2
	VBROADCASTSD a3+72(FP), Z3
	XORQ BX, BX
	MOVQ CX, R11
	ANDQ $-16, R11
	MOVQ CX, DX
	ANDQ $-8, DX

zvec16:
	CMPQ BX, R11
	JGE  zvec8
	VMOVUPD (DI)(BX*8), Z4
	VMOVUPD 64(DI)(BX*8), Z6
	VMOVUPD (SI)(BX*8), Z5
	VMOVUPD 64(SI)(BX*8), Z7
	VMULPD  Z0, Z5, Z5
	VMULPD  Z0, Z7, Z7
	VADDPD  Z4, Z5, Z4
	VADDPD  Z6, Z7, Z6
	VMOVUPD (R8)(BX*8), Z5
	VMOVUPD 64(R8)(BX*8), Z7
	VMULPD  Z1, Z5, Z5
	VMULPD  Z1, Z7, Z7
	VADDPD  Z4, Z5, Z4
	VADDPD  Z6, Z7, Z6
	VMOVUPD (R9)(BX*8), Z5
	VMOVUPD 64(R9)(BX*8), Z7
	VMULPD  Z2, Z5, Z5
	VMULPD  Z2, Z7, Z7
	VADDPD  Z4, Z5, Z4
	VADDPD  Z6, Z7, Z6
	VMOVUPD (R10)(BX*8), Z5
	VMOVUPD 64(R10)(BX*8), Z7
	VMULPD  Z3, Z5, Z5
	VMULPD  Z3, Z7, Z7
	VADDPD  Z4, Z5, Z4
	VADDPD  Z6, Z7, Z6
	VMOVUPD Z4, (DI)(BX*8)
	VMOVUPD Z6, 64(DI)(BX*8)
	ADDQ    $16, BX
	JMP     zvec16

zvec8:
	CMPQ BX, DX
	JGE  ztail
	VMOVUPD (DI)(BX*8), Z4
	VMOVUPD (SI)(BX*8), Z5
	VMULPD  Z0, Z5, Z5
	VADDPD  Z4, Z5, Z4
	VMOVUPD (R8)(BX*8), Z5
	VMULPD  Z1, Z5, Z5
	VADDPD  Z4, Z5, Z4
	VMOVUPD (R9)(BX*8), Z5
	VMULPD  Z2, Z5, Z5
	VADDPD  Z4, Z5, Z4
	VMOVUPD (R10)(BX*8), Z5
	VMULPD  Z3, Z5, Z5
	VADDPD  Z4, Z5, Z4
	VMOVUPD Z4, (DI)(BX*8)
	ADDQ    $8, BX
	JMP     zvec8

ztail:
	CMPQ BX, CX
	JGE  zdone
	VMOVSD (DI)(BX*8), X4
	VMOVSD (SI)(BX*8), X5
	VMULSD X0, X5, X5
	VADDSD X4, X5, X4
	VMOVSD (R8)(BX*8), X5
	VMULSD X1, X5, X5
	VADDSD X4, X5, X4
	VMOVSD (R9)(BX*8), X5
	VMULSD X2, X5, X5
	VADDSD X4, X5, X4
	VMOVSD (R10)(BX*8), X5
	VMULSD X3, X5, X5
	VADDSD X4, X5, X4
	VMOVSD X4, (DI)(BX*8)
	INCQ   BX
	JMP    ztail

zdone:
	VZEROUPPER
	RET

// func axpy8avx512(d, b0, b1, b2, b3, b4, b5, b6, b7 *float64, n int, a0, a1, a2, a3, a4, a5, a6, a7 float64)
//
// Eight-tap variant: per element the eight adds are applied in
// ascending tap order, identical to two consecutive four-tap passes.
TEXT ·axpy8avx512(SB), NOSPLIT, $0-144
	MOVQ d+0(FP), DI
	MOVQ b0+8(FP), SI
	MOVQ b1+16(FP), R8
	MOVQ b2+24(FP), R9
	MOVQ b3+32(FP), R10
	MOVQ b4+40(FP), R11
	MOVQ b5+48(FP), R12
	MOVQ b6+56(FP), R13
	MOVQ b7+64(FP), R15
	MOVQ n+72(FP), CX
	VBROADCASTSD a0+80(FP), Z0
	VBROADCASTSD a1+88(FP), Z1
	VBROADCASTSD a2+96(FP), Z2
	VBROADCASTSD a3+104(FP), Z3
	VBROADCASTSD a4+112(FP), Z4
	VBROADCASTSD a5+120(FP), Z5
	VBROADCASTSD a6+128(FP), Z6
	VBROADCASTSD a7+136(FP), Z7
	XORQ BX, BX
	MOVQ CX, DX
	ANDQ $-8, DX

y8vec:
	CMPQ BX, DX
	JGE  y8tail
	VMOVUPD (DI)(BX*8), Z8
	VMOVUPD (SI)(BX*8), Z9
	VMULPD  Z0, Z9, Z9
	VADDPD  Z8, Z9, Z8
	VMOVUPD (R8)(BX*8), Z9
	VMULPD  Z1, Z9, Z9
	VADDPD  Z8, Z9, Z8
	VMOVUPD (R9)(BX*8), Z9
	VMULPD  Z2, Z9, Z9
	VADDPD  Z8, Z9, Z8
	VMOVUPD (R10)(BX*8), Z9
	VMULPD  Z3, Z9, Z9
	VADDPD  Z8, Z9, Z8
	VMOVUPD (R11)(BX*8), Z9
	VMULPD  Z4, Z9, Z9
	VADDPD  Z8, Z9, Z8
	VMOVUPD (R12)(BX*8), Z9
	VMULPD  Z5, Z9, Z9
	VADDPD  Z8, Z9, Z8
	VMOVUPD (R13)(BX*8), Z9
	VMULPD  Z6, Z9, Z9
	VADDPD  Z8, Z9, Z8
	VMOVUPD (R15)(BX*8), Z9
	VMULPD  Z7, Z9, Z9
	VADDPD  Z8, Z9, Z8
	VMOVUPD Z8, (DI)(BX*8)
	ADDQ    $8, BX
	JMP     y8vec

y8tail:
	CMPQ BX, CX
	JGE  y8done
	VMOVSD (DI)(BX*8), X8
	VMOVSD (SI)(BX*8), X9
	VMULSD X0, X9, X9
	VADDSD X8, X9, X8
	VMOVSD (R8)(BX*8), X9
	VMULSD X1, X9, X9
	VADDSD X8, X9, X8
	VMOVSD (R9)(BX*8), X9
	VMULSD X2, X9, X9
	VADDSD X8, X9, X8
	VMOVSD (R10)(BX*8), X9
	VMULSD X3, X9, X9
	VADDSD X8, X9, X8
	VMOVSD (R11)(BX*8), X9
	VMULSD X4, X9, X9
	VADDSD X8, X9, X8
	VMOVSD (R12)(BX*8), X9
	VMULSD X5, X9, X9
	VADDSD X8, X9, X8
	VMOVSD (R13)(BX*8), X9
	VMULSD X6, X9, X9
	VADDSD X8, X9, X8
	VMOVSD (R15)(BX*8), X9
	VMULSD X7, X9, X9
	VADDSD X8, X9, X8
	VMOVSD X8, (DI)(BX*8)
	INCQ   BX
	JMP    y8tail

y8done:
	VZEROUPPER
	RET

// func axpy1avx512(d, b *float64, n int, a float64)
//
// AVX-512 variant of axpy1avx: identical rounding, 8 elements per pass.
TEXT ·axpy1avx512(SB), NOSPLIT, $0-32
	MOVQ d+0(FP), DI
	MOVQ b+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSD a+24(FP), Z0
	XORQ BX, BX
	MOVQ CX, DX
	ANDQ $-8, DX

z1vec:
	CMPQ BX, DX
	JGE  z1tail
	VMOVUPD (DI)(BX*8), Z4
	VMOVUPD (SI)(BX*8), Z5
	VMULPD  Z0, Z5, Z5
	VADDPD  Z4, Z5, Z4
	VMOVUPD Z4, (DI)(BX*8)
	ADDQ    $8, BX
	JMP     z1vec

z1tail:
	CMPQ BX, CX
	JGE  z1done
	VMOVSD (DI)(BX*8), X4
	VMOVSD (SI)(BX*8), X5
	VMULSD X0, X5, X5
	VADDSD X4, X5, X4
	VMOVSD X4, (DI)(BX*8)
	INCQ   BX
	JMP    z1tail

z1done:
	VZEROUPPER
	RET

// func axpy1avx(d, b *float64, n int, a float64)
//
// For j in [0,n): d[j] += a*b[j], one rounding for the multiply and
// one for the add, matching the scalar loop exactly.
TEXT ·axpy1avx(SB), NOSPLIT, $0-32
	MOVQ d+0(FP), DI
	MOVQ b+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSD a+24(FP), Y0
	XORQ BX, BX
	MOVQ CX, DX
	ANDQ $-4, DX

vec1:
	CMPQ BX, DX
	JGE  tail1
	VMOVUPD (DI)(BX*8), Y4
	VMOVUPD (SI)(BX*8), Y5
	VMULPD  Y0, Y5, Y5
	VADDPD  Y4, Y5, Y4
	VMOVUPD Y4, (DI)(BX*8)
	ADDQ    $4, BX
	JMP     vec1

tail1:
	CMPQ BX, CX
	JGE  done1
	VMOVSD (DI)(BX*8), X4
	VMOVSD (SI)(BX*8), X5
	VMULSD X0, X5, X5
	VADDSD X4, X5, X4
	VMOVSD X4, (DI)(BX*8)
	INCQ   BX
	JMP    tail1

done1:
	VZEROUPPER
	RET

// func addConstAVX(d *float64, n int, c float64)
//
// For j in [0,n): d[j] += c, one rounding per element.
TEXT ·addConstAVX(SB), NOSPLIT, $0-24
	MOVQ d+0(FP), DI
	MOVQ n+8(FP), CX
	VBROADCASTSD c+16(FP), Y0
	XORQ BX, BX
	MOVQ CX, DX
	ANDQ $-4, DX

avec:
	CMPQ BX, DX
	JGE  atail
	VMOVUPD (DI)(BX*8), Y4
	VADDPD  Y0, Y4, Y4
	VMOVUPD Y4, (DI)(BX*8)
	ADDQ    $4, BX
	JMP     avec

atail:
	CMPQ BX, CX
	JGE  adone
	VMOVSD (DI)(BX*8), X4
	VADDSD X0, X4, X4
	VMOVSD X4, (DI)(BX*8)
	INCQ   BX
	JMP    atail

adone:
	VZEROUPPER
	RET

// func reluAVX(dst, src *float64, n int)
//
// dst[i] = src[i] if src[i] > 0 else 0, matching the Go reference for
// every input class: NaN compares false under the ordered GT_OQ
// predicate (-> 0), -0 > 0 is false (-> +0), and positives copy
// through unchanged.
TEXT ·reluAVX(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	VXORPD Y0, Y0, Y0
	XORQ BX, BX
	MOVQ CX, DX
	ANDQ $-4, DX

rvec:
	CMPQ BX, DX
	JGE  rtail
	VMOVUPD (SI)(BX*8), Y1
	VCMPPD  $0x1e, Y0, Y1, Y2
	VANDPD  Y2, Y1, Y1
	VMOVUPD Y1, (DI)(BX*8)
	ADDQ    $4, BX
	JMP     rvec

rtail:
	CMPQ BX, CX
	JGE  rdone
	VMOVSD (SI)(BX*8), X1
	VCMPSD $0x1e, X0, X1, X2
	VANDPD X2, X1, X1
	VMOVSD X1, (DI)(BX*8)
	INCQ   BX
	JMP    rtail

rdone:
	VZEROUPPER
	RET
