package tensor

import (
	"math"
	"math/rand"
)

// FillUniform sets every element to an independent draw from
// U[lo, hi) using rng, and returns t.
func (t *Tensor) FillUniform(rng *rand.Rand, lo, hi float64) *Tensor {
	span := hi - lo
	for i := range t.Data {
		t.Data[i] = lo + span*rng.Float64()
	}
	return t
}

// FillNormal sets every element to an independent draw from
// N(mean, stddev²) using rng, and returns t.
func (t *Tensor) FillNormal(rng *rand.Rand, mean, stddev float64) *Tensor {
	for i := range t.Data {
		t.Data[i] = mean + stddev*rng.NormFloat64()
	}
	return t
}

// FillGlorot initializes t with the Glorot/Xavier uniform scheme for a
// layer with the given fan-in and fan-out, and returns t. This is the
// standard initialization for the tanh/softmax layers of the paper's
// CNNs.
func (t *Tensor) FillGlorot(rng *rand.Rand, fanIn, fanOut int) *Tensor {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return t.FillUniform(rng, -limit, limit)
}

// FillHe initializes t with the He normal scheme for ReLU layers with
// the given fan-in, and returns t.
func (t *Tensor) FillHe(rng *rand.Rand, fanIn int) *Tensor {
	return t.FillNormal(rng, 0, math.Sqrt(2.0/float64(fanIn)))
}
