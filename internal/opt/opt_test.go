package opt

import (
	"fmt"
	"math"
	"testing"

	"deepvalidation/internal/tensor"
)

// quadratic is f(x) = Σ (x_i - target_i)², gradient 2(x - target).
type quadratic struct {
	target *tensor.Tensor
}

func (q quadratic) loss(x *tensor.Tensor) float64 {
	s := 0.0
	for i, v := range x.Data {
		d := v - q.target.Data[i]
		s += d * d
	}
	return s
}

func (q quadratic) grad(x *tensor.Tensor) *tensor.Tensor {
	g := tensor.New(x.Shape...)
	for i, v := range x.Data {
		g.Data[i] = 2 * (v - q.target.Data[i])
	}
	return g
}

type stepper interface {
	Step(name string, value, grad *tensor.Tensor)
}

func converges(t *testing.T, o stepper, iters int, tol float64) {
	t.Helper()
	q := quadratic{target: tensor.From([]float64{3, -1, 0.5}, 3)}
	x := tensor.From([]float64{-5, 4, 2}, 3)
	for i := 0; i < iters; i++ {
		o.Step("x", x, q.grad(x))
	}
	if got := q.loss(x); got > tol {
		t.Fatalf("loss after %d iters = %v, want < %v (x=%v)", iters, got, tol, x)
	}
}

func TestSGDConverges(t *testing.T)         { converges(t, NewSGD(0.1, 0), 200, 1e-6) }
func TestSGDMomentumConverges(t *testing.T) { converges(t, NewSGD(0.05, 0.9), 300, 1e-6) }
func TestAdadeltaConverges(t *testing.T)    { converges(t, NewAdadelta(1.0, 0.95), 3000, 1e-3) }
func TestAdamConverges(t *testing.T)        { converges(t, NewAdam(0.1), 500, 1e-6) }

func TestSGDPlainStepExact(t *testing.T) {
	o := NewSGD(0.5, 0)
	x := tensor.From([]float64{1, 2}, 2)
	g := tensor.From([]float64{2, -4}, 2)
	o.Step("x", x, g)
	if x.Data[0] != 0 || x.Data[1] != 4 {
		t.Fatalf("SGD step = %v, want [0 4]", x.Data)
	}
}

func TestOptimizersKeepPerParamState(t *testing.T) {
	// Two parameters optimized with one Adam must not share moments:
	// after identical gradients their values must match exactly.
	o := NewAdam(0.01)
	a := tensor.From([]float64{1}, 1)
	b := tensor.From([]float64{1}, 1)
	for i := 0; i < 10; i++ {
		g := tensor.From([]float64{0.5}, 1)
		o.Step("a", a, g)
		o.Step("b", b, g.Clone())
	}
	if math.Abs(a.Data[0]-b.Data[0]) > 1e-15 {
		t.Fatalf("independent params diverged: %v vs %v", a.Data[0], b.Data[0])
	}
}

func TestAdamResetClearsState(t *testing.T) {
	o := NewAdam(0.1)
	x := tensor.From([]float64{1}, 1)
	g := tensor.From([]float64{1}, 1)
	o.Step("x", x, g)
	first := 1 - x.Data[0]

	o.Reset()
	y := tensor.From([]float64{1}, 1)
	o.Step("x", y, g.Clone())
	second := 1 - y.Data[0]
	if math.Abs(first-second) > 1e-15 {
		t.Fatalf("post-Reset step %v differs from fresh step %v", second, first)
	}
}

func TestAdadeltaFirstStepSmall(t *testing.T) {
	// Adadelta's signature behaviour: the first update magnitude is
	// ~sqrt(eps/( (1-rho) g² + eps )) · g, tiny for large gradients.
	o := NewAdadelta(1.0, 0.95)
	x := tensor.From([]float64{0}, 1)
	o.Step("x", x, tensor.From([]float64{100}, 1))
	if math.Abs(x.Data[0]) > 0.1 {
		t.Fatalf("first Adadelta step too large: %v", x.Data[0])
	}
	if x.Data[0] >= 0 {
		t.Fatalf("step direction wrong: %v (gradient positive, update must be negative)", x.Data[0])
	}
}

func TestStringers(t *testing.T) {
	for _, s := range []fmt.Stringer{NewSGD(0.1, 0.9), NewAdadelta(1, 0.95), NewAdam(0.001)} {
		if s.String() == "" {
			t.Error("empty optimizer description")
		}
	}
}
