// Package opt provides the gradient-descent optimizers used to train
// the paper's classifiers (Adadelta, Section IV-A) and to drive the
// Carlini–Wagner attack's inner optimization (Adam).
//
// Optimizers keep per-parameter state keyed by the parameter's stable
// name, so they satisfy nn.Optimizer without opt depending on nn.
package opt

import (
	"fmt"
	"math"

	"deepvalidation/internal/tensor"
)

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity map[string]*tensor.Tensor
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[string]*tensor.Tensor)}
}

// Step implements nn.Optimizer.
func (o *SGD) Step(name string, value, grad *tensor.Tensor) {
	if o.Momentum == 0 {
		value.AxpyInPlace(-o.LR, grad)
		return
	}
	v, ok := o.velocity[name]
	if !ok {
		v = tensor.New(grad.Shape...)
		o.velocity[name] = v
	}
	for i := range v.Data {
		v.Data[i] = o.Momentum*v.Data[i] - o.LR*grad.Data[i]
		value.Data[i] += v.Data[i]
	}
}

// Adadelta implements Zeiler's adaptive learning-rate method — the
// optimizer the paper trains with ("an Adadelta optimizer, with an
// initial learning rate of 1.0 and a decay factor of 0.95").
type Adadelta struct {
	LR    float64
	Rho   float64
	Eps   float64
	accG  map[string]*tensor.Tensor // running average of squared gradients
	accDX map[string]*tensor.Tensor // running average of squared updates
}

// NewAdadelta returns an Adadelta optimizer; the paper's configuration
// is NewAdadelta(1.0, 0.95).
func NewAdadelta(lr, rho float64) *Adadelta {
	return &Adadelta{
		LR:    lr,
		Rho:   rho,
		Eps:   1e-6,
		accG:  make(map[string]*tensor.Tensor),
		accDX: make(map[string]*tensor.Tensor),
	}
}

// Step implements nn.Optimizer.
func (o *Adadelta) Step(name string, value, grad *tensor.Tensor) {
	ag, ok := o.accG[name]
	if !ok {
		ag = tensor.New(grad.Shape...)
		o.accG[name] = ag
	}
	ad, ok := o.accDX[name]
	if !ok {
		ad = tensor.New(grad.Shape...)
		o.accDX[name] = ad
	}
	for i, g := range grad.Data {
		ag.Data[i] = o.Rho*ag.Data[i] + (1-o.Rho)*g*g
		dx := -math.Sqrt(ad.Data[i]+o.Eps) / math.Sqrt(ag.Data[i]+o.Eps) * g
		ad.Data[i] = o.Rho*ad.Data[i] + (1-o.Rho)*dx*dx
		value.Data[i] += o.LR * dx
	}
}

// Adam implements Kingma & Ba's optimizer. The CW attacks use it to
// minimize their box-constrained objective.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	m, v  map[string]*tensor.Tensor
	t     map[string]int
}

// NewAdam returns an Adam optimizer with the canonical defaults for the
// moment decay rates.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR:    lr,
		Beta1: 0.9,
		Beta2: 0.999,
		Eps:   1e-8,
		m:     make(map[string]*tensor.Tensor),
		v:     make(map[string]*tensor.Tensor),
		t:     make(map[string]int),
	}
}

// Step implements nn.Optimizer.
func (o *Adam) Step(name string, value, grad *tensor.Tensor) {
	m, ok := o.m[name]
	if !ok {
		m = tensor.New(grad.Shape...)
		o.m[name] = m
		o.v[name] = tensor.New(grad.Shape...)
	}
	v := o.v[name]
	o.t[name]++
	tt := float64(o.t[name])
	c1 := 1 - math.Pow(o.Beta1, tt)
	c2 := 1 - math.Pow(o.Beta2, tt)
	for i, g := range grad.Data {
		m.Data[i] = o.Beta1*m.Data[i] + (1-o.Beta1)*g
		v.Data[i] = o.Beta2*v.Data[i] + (1-o.Beta2)*g*g
		mh := m.Data[i] / c1
		vh := v.Data[i] / c2
		value.Data[i] -= o.LR * mh / (math.Sqrt(vh) + o.Eps)
	}
}

// Reset clears all per-parameter state, letting one optimizer be reused
// across independent optimizations (the CW attack does this per seed).
func (o *Adam) Reset() {
	o.m = make(map[string]*tensor.Tensor)
	o.v = make(map[string]*tensor.Tensor)
	o.t = make(map[string]int)
}

// String implementations aid experiment logging.

func (o *SGD) String() string      { return fmt.Sprintf("SGD(lr=%g, momentum=%g)", o.LR, o.Momentum) }
func (o *Adadelta) String() string { return fmt.Sprintf("Adadelta(lr=%g, rho=%g)", o.LR, o.Rho) }
func (o *Adam) String() string     { return fmt.Sprintf("Adam(lr=%g)", o.LR) }
