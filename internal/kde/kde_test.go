package kde

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"deepvalidation/internal/metrics"
	"deepvalidation/internal/nn"
	"deepvalidation/internal/opt"
	"deepvalidation/internal/tensor"
)

func toyProblem(rng *rand.Rand, n int) (xs []*tensor.Tensor, ys []int) {
	for i := 0; i < n; i++ {
		k := rng.Intn(3)
		img := tensor.New(1, 8, 8).FillUniform(rng, 0, 0.15)
		for y := 2 * k; y < 2*k+3; y++ {
			for x := 0; x < 8; x++ {
				img.Set(0.8+0.2*rng.Float64(), 0, y, x)
			}
		}
		xs = append(xs, img)
		ys = append(ys, k)
	}
	return xs, ys
}

var fixture struct {
	once sync.Once
	net  *nn.Network
	xs   []*tensor.Tensor
	ys   []int
	err  error
}

func toyNet(t *testing.T) (*nn.Network, []*tensor.Tensor, []int) {
	t.Helper()
	fixture.once.Do(func() {
		rng := rand.New(rand.NewSource(11))
		net, err := nn.NewSevenLayerCNN("toy", 1, 8, 3, nn.ArchConfig{Width: 4, FCWidth: 16}, rng)
		if err != nil {
			fixture.err = err
			return
		}
		xs, ys := toyProblem(rng, 150)
		tr := nn.NewTrainer(net, opt.NewAdadelta(1.0, 0.95), rand.New(rand.NewSource(12)))
		tr.BatchSize = 16
		stats, err := tr.Train(xs, ys, 20)
		if err != nil {
			fixture.err = err
			return
		}
		if acc := stats[len(stats)-1].Accuracy; acc < 0.95 {
			fixture.err = fmt.Errorf("toy accuracy %v too low", acc)
			return
		}
		fixture.net, fixture.xs, fixture.ys = net, xs, ys
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	return fixture.net, fixture.xs, fixture.ys
}

func TestFitDefaultsToPenultimateLayer(t *testing.T) {
	net, xs, ys := toyNet(t)
	d, err := Fit(net, xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.Layer != net.NumLayers()-2 {
		t.Fatalf("layer = %d, want %d", d.Layer, net.NumLayers()-2)
	}
	if d.Bandwidth <= 0 {
		t.Fatalf("bandwidth = %v", d.Bandwidth)
	}
	for k, pts := range d.Points {
		if len(pts) == 0 {
			t.Fatalf("class %d empty", k)
		}
	}
}

func TestScoreRanksNoiseAboveClean(t *testing.T) {
	net, xs, ys := toyNet(t)
	d, err := Fit(net, xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	cleanX, _ := toyProblem(rng, 40)
	clean := d.ScoreBatch(net, cleanX)
	var noise []float64
	for i := 0; i < 40; i++ {
		noise = append(noise, d.Score(net, tensor.New(1, 8, 8).FillUniform(rng, 0, 1)))
	}
	// KDE should notice at least some distribution shift on pure noise;
	// its weakness in the paper is on *natural* corner cases, not on
	// white noise.
	if auc := metrics.AUC(noise, clean); auc < 0.6 {
		t.Fatalf("KDE AUC on noise = %v, want ≥ 0.6", auc)
	}
}

func TestFitValidation(t *testing.T) {
	net, xs, ys := toyNet(t)
	if _, err := Fit(net, nil, nil, DefaultConfig()); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Fit(net, xs, ys[:3], DefaultConfig()); err == nil {
		t.Error("mismatched labels accepted")
	}
	if _, err := Fit(net, xs, ys, Config{Layer: 99}); err == nil {
		t.Error("layer out of range accepted")
	}
}

func TestExplicitBandwidthRespected(t *testing.T) {
	net, xs, ys := toyNet(t)
	d, err := Fit(net, xs, ys, Config{Layer: -1, Bandwidth: 1.25, MaxPerClass: 50})
	if err != nil {
		t.Fatal(err)
	}
	if d.Bandwidth != 1.25 {
		t.Fatalf("bandwidth = %v, want 1.25", d.Bandwidth)
	}
	for _, pts := range d.Points {
		if len(pts) > 50 {
			t.Fatalf("class exceeded MaxPerClass: %d", len(pts))
		}
	}
}

func TestScoreDeterministic(t *testing.T) {
	net, xs, ys := toyNet(t)
	d, err := Fit(net, xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := d.Score(net, xs[0])
	b := d.Score(net, xs[0])
	if a != b {
		t.Fatalf("scores differ: %v vs %v", a, b)
	}
}

func TestCloseToTrainingPointScoresLow(t *testing.T) {
	net, xs, ys := toyNet(t)
	d, err := Fit(net, xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	// A training sample itself must score lower (less anomalous) than
	// uniform noise, on average.
	trainScore := d.Score(net, xs[0])
	noiseScore := d.Score(net, tensor.New(1, 8, 8).FillUniform(rng, 0, 1))
	if trainScore >= noiseScore {
		t.Fatalf("training sample scored %v ≥ noise %v", trainScore, noiseScore)
	}
}
