// Package kde implements the kernel-density-estimation detector of
// Feinman et al. ("Detecting adversarial samples from artifacts",
// 2017), the statistical-detection baseline of the paper's Table VII:
// a Gaussian KDE is fitted per class on the penultimate-layer
// activations of the training data, and a test input is scored by the
// (negated log) density under the KDE of its predicted class — low
// density suggests the input is off the data manifold.
package kde

import (
	"fmt"
	"math"

	"deepvalidation/internal/nn"
	"deepvalidation/internal/tensor"
)

// Config controls fitting.
type Config struct {
	// Bandwidth is the Gaussian kernel width; 0 selects Scott's rule
	// from the pooled training activations. (Feinman et al. tuned one
	// bandwidth per dataset.)
	Bandwidth float64
	// Layer is the tap index whose activations are modelled; a negative
	// value selects the penultimate layer (the paper's choice: "they
	// exploit only the outputs from the fully connected hidden
	// layers").
	Layer int
	// MaxPerClass caps the per-class reference points (default 200).
	MaxPerClass int
}

// DefaultConfig mirrors the deployment in the paper's comparison.
func DefaultConfig() Config { return Config{Layer: -1, MaxPerClass: 200} }

// Detector is a fitted KDE detector. Fields are exported for gob.
type Detector struct {
	Bandwidth float64
	Layer     int
	Dim       int
	// Points[k] holds the reference activations of class k.
	Points [][][]float64
}

// Fit builds per-class KDEs from correctly classified training samples.
func Fit(net *nn.Network, trainX []*tensor.Tensor, trainY []int, cfg Config) (*Detector, error) {
	if len(trainX) == 0 {
		return nil, fmt.Errorf("kde: empty training set")
	}
	if len(trainX) != len(trainY) {
		return nil, fmt.Errorf("kde: %d samples but %d labels", len(trainX), len(trainY))
	}
	layer := cfg.Layer
	if layer < 0 {
		layer = net.NumLayers() - 2
	}
	if layer >= net.NumLayers() {
		return nil, fmt.Errorf("kde: layer %d out of range", layer)
	}
	maxPer := cfg.MaxPerClass
	if maxPer <= 0 {
		maxPer = 200
	}

	points := make([][][]float64, net.Classes)
	var dim int
	for i, x := range trainX {
		probs, taps := net.ForwardTapped(x)
		if probs.ArgMax() != trainY[i] {
			continue
		}
		f := taps[layer]
		if dim == 0 {
			dim = f.Len()
		}
		if len(points[trainY[i]]) >= maxPer {
			continue
		}
		v := make([]float64, f.Len())
		copy(v, f.Data)
		points[trainY[i]] = append(points[trainY[i]], v)
	}
	for k, pts := range points {
		if len(pts) == 0 {
			return nil, fmt.Errorf("kde: class %d has no correctly classified training samples", k)
		}
	}

	bw := cfg.Bandwidth
	if bw <= 0 {
		bw = scottBandwidth(points, dim)
	}
	return &Detector{Bandwidth: bw, Layer: layer, Dim: dim, Points: points}, nil
}

// scottBandwidth applies Scott's rule h = σ·n^(−1/(d+4)) with σ the
// pooled per-coordinate standard deviation.
func scottBandwidth(points [][][]float64, dim int) float64 {
	n := 0
	mean := 0.0
	cnt := 0
	for _, cls := range points {
		n += len(cls)
		for _, p := range cls {
			for _, v := range p {
				mean += v
				cnt++
			}
		}
	}
	mean /= float64(cnt)
	variance := 0.0
	for _, cls := range points {
		for _, p := range cls {
			for _, v := range p {
				variance += (v - mean) * (v - mean)
			}
		}
	}
	variance /= float64(cnt)
	sigma := math.Sqrt(variance)
	if sigma < 1e-6 {
		sigma = 1e-6
	}
	return sigma * math.Pow(float64(n), -1/float64(dim+4))
}

// Score returns the anomaly score of x: the negated log kernel density
// of its penultimate activation under the predicted class's KDE.
// Higher means more anomalous.
func (d *Detector) Score(net *nn.Network, x *tensor.Tensor) float64 {
	probs, taps := net.ForwardTapped(x)
	label := probs.ArgMax()
	return -d.logDensity(taps[d.Layer].Data, label)
}

// ScoreBatch scores many samples.
func (d *Detector) ScoreBatch(net *nn.Network, xs []*tensor.Tensor) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = d.Score(net, x)
	}
	return out
}

// logDensity computes log(1/n Σ exp(−‖x−xᵢ‖²/(2h²))) via logsumexp,
// dropping the normalization constant common to all scores.
func (d *Detector) logDensity(x []float64, class int) float64 {
	pts := d.Points[class]
	inv := 1 / (2 * d.Bandwidth * d.Bandwidth)
	maxE := math.Inf(-1)
	es := make([]float64, len(pts))
	for i, p := range pts {
		s := 0.0
		for j, v := range x {
			dd := v - p[j]
			s += dd * dd
		}
		e := -s * inv
		es[i] = e
		if e > maxE {
			maxE = e
		}
	}
	sum := 0.0
	for _, e := range es {
		sum += math.Exp(e - maxE)
	}
	return maxE + math.Log(sum) - math.Log(float64(len(pts)))
}
