// Package squeeze implements the feature-squeezing detector of Xu,
// Evans & Qi (NDSS 2018), the prediction-inconsistency baseline of the
// paper's Tables VII and VIII. An input is scored by the largest L1
// shift of the model's softmax output under a battery of "hard-coded"
// squeezers (bit-depth reduction, median smoothing, non-local means);
// adversarial or otherwise fragile inputs move the prediction far more
// than clean ones.
package squeeze

import (
	"fmt"
	"math"
	"sort"

	"deepvalidation/internal/nn"
	"deepvalidation/internal/tensor"
)

// Squeezer is one input-denoising transformation.
type Squeezer interface {
	// Name identifies the squeezer, e.g. "bit-1".
	Name() string
	// Apply returns the squeezed copy of img.
	Apply(img *tensor.Tensor) *tensor.Tensor
}

// BitDepth reduces each pixel to the given bit depth:
// round(x·(2^b − 1)) / (2^b − 1).
type BitDepth struct {
	Bits int
}

// Name implements Squeezer.
func (s BitDepth) Name() string { return fmt.Sprintf("bit-%d", s.Bits) }

// Apply implements Squeezer.
func (s BitDepth) Apply(img *tensor.Tensor) *tensor.Tensor {
	levels := math.Pow(2, float64(s.Bits)) - 1
	return img.Map(func(v float64) float64 {
		return math.Round(v*levels) / levels
	})
}

// Median replaces each pixel by the median of its K×K neighbourhood
// (per channel, edge-replicated) — Xu et al.'s median smoothing.
type Median struct {
	K int
}

// Name implements Squeezer.
func (s Median) Name() string { return fmt.Sprintf("median-%dx%d", s.K, s.K) }

// Apply implements Squeezer.
func (s Median) Apply(img *tensor.Tensor) *tensor.Tensor {
	c, h, w := img.Shape[0], img.Shape[1], img.Shape[2]
	out := tensor.New(c, h, w)
	win := make([]float64, 0, s.K*s.K)
	// The window is anchored like SciPy's median_filter with origin at
	// the top-left for even K (Xu et al. use 2×2 on MNIST).
	off := (s.K - 1) / 2
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				win = win[:0]
				for dy := -off; dy < s.K-off; dy++ {
					for dx := -off; dx < s.K-off; dx++ {
						yy := clampInt(y+dy, 0, h-1)
						xx := clampInt(x+dx, 0, w-1)
						win = append(win, img.At(ch, yy, xx))
					}
				}
				sort.Float64s(win)
				m := len(win) / 2
				var v float64
				if len(win)%2 == 1 {
					v = win[m]
				} else {
					v = (win[m-1] + win[m]) / 2
				}
				out.Set(v, ch, y, x)
			}
		}
	}
	return out
}

// NonLocalMeans denoises each pixel as a similarity-weighted average of
// pixels in a search window, with patch-distance weights
// exp(−‖patch_p − patch_q‖²/h²). Search and Patch are window sizes
// (odd); H controls the filtering strength. This is the third squeezer
// Xu et al. deploy on color datasets.
type NonLocalMeans struct {
	Search int
	Patch  int
	H      float64
}

// Name implements Squeezer.
func (s NonLocalMeans) Name() string {
	return fmt.Sprintf("nlmeans-%d-%d-%g", s.Search, s.Patch, s.H)
}

// Apply implements Squeezer.
func (s NonLocalMeans) Apply(img *tensor.Tensor) *tensor.Tensor {
	c, h, w := img.Shape[0], img.Shape[1], img.Shape[2]
	out := tensor.New(c, h, w)
	sr := s.Search / 2
	pr := s.Patch / 2
	h2 := s.H * s.H
	patchDist := func(ch, y0, x0, y1, x1 int) float64 {
		d := 0.0
		for dy := -pr; dy <= pr; dy++ {
			for dx := -pr; dx <= pr; dx++ {
				a := img.At(ch, clampInt(y0+dy, 0, h-1), clampInt(x0+dx, 0, w-1))
				b := img.At(ch, clampInt(y1+dy, 0, h-1), clampInt(x1+dx, 0, w-1))
				d += (a - b) * (a - b)
			}
		}
		return d / float64(s.Patch*s.Patch)
	}
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				num, den := 0.0, 0.0
				for dy := -sr; dy <= sr; dy++ {
					for dx := -sr; dx <= sr; dx++ {
						yy := clampInt(y+dy, 0, h-1)
						xx := clampInt(x+dx, 0, w-1)
						wgt := math.Exp(-patchDist(ch, y, x, yy, xx) / h2)
						num += wgt * img.At(ch, yy, xx)
						den += wgt
					}
				}
				out.Set(num/den, ch, y, x)
			}
		}
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Detector scores inputs by the maximum L1 distance between the
// model's softmax output on the original and on each squeezed version
// (the "joint detection" of Xu et al.).
type Detector struct {
	Squeezers []Squeezer
}

// ForGreyscale returns the configuration Xu et al. report best for
// MNIST: 1-bit depth plus 2×2 median smoothing. The paper reuses it
// ("we employ the same squeezer configurations as they suggested").
func ForGreyscale() *Detector {
	return &Detector{Squeezers: []Squeezer{
		BitDepth{Bits: 1},
		Median{K: 2},
	}}
}

// ForColor returns the configuration Xu et al. report best for
// CIFAR-10/SVHN-class data: 5-bit depth, 2×2 median smoothing, and
// non-local means. The search window is trimmed from 13 to 9 pixels to
// stay CPU-tractable; the code path and scoring are unchanged.
func ForColor() *Detector {
	return &Detector{Squeezers: []Squeezer{
		BitDepth{Bits: 5},
		Median{K: 2},
		NonLocalMeans{Search: 9, Patch: 3, H: 0.1},
	}}
}

// Score returns the anomaly score of x: max over squeezers of
// ‖f(x) − f(squeeze(x))‖₁. Higher means more anomalous.
func (d *Detector) Score(net *nn.Network, x *tensor.Tensor) float64 {
	base := net.Forward(x)
	best := 0.0
	for _, s := range d.Squeezers {
		sq := net.Forward(s.Apply(x))
		if l1 := base.Sub(sq).L1Norm(); l1 > best {
			best = l1
		}
	}
	return best
}

// ScoreBatch scores many samples.
func (d *Detector) ScoreBatch(net *nn.Network, xs []*tensor.Tensor) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = d.Score(net, x)
	}
	return out
}
