package squeeze

import (
	"math"
	"math/rand"
	"testing"

	"deepvalidation/internal/tensor"
)

func TestBitDepthOneBit(t *testing.T) {
	img := tensor.From([]float64{0.1, 0.49, 0.51, 0.9}, 1, 2, 2)
	out := BitDepth{Bits: 1}.Apply(img)
	want := []float64{0, 0, 1, 1}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("bit-1[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestBitDepthIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	img := tensor.New(1, 6, 6).FillUniform(rng, 0, 1)
	s := BitDepth{Bits: 3}
	once := s.Apply(img)
	twice := s.Apply(once)
	if !twice.AllClose(once, 0) {
		t.Fatal("bit depth squeezing must be idempotent")
	}
	// Output is quantized to 2^3 levels.
	for _, v := range once.Data {
		q := v * 7
		if math.Abs(q-math.Round(q)) > 1e-9 {
			t.Fatalf("value %v not on the 3-bit grid", v)
		}
	}
}

func TestMedianRemovesSaltNoise(t *testing.T) {
	img := tensor.New(1, 7, 7).Fill(0.2)
	img.Set(1.0, 0, 3, 3) // single hot pixel
	out := Median{K: 3}.Apply(img)
	if got := out.At(0, 3, 3); got != 0.2 {
		t.Fatalf("median at hot pixel = %v, want 0.2", got)
	}
}

func TestMedianConstantInvariant(t *testing.T) {
	img := tensor.New(3, 5, 5).Fill(0.7)
	out := Median{K: 2}.Apply(img)
	if !out.AllClose(img, 1e-12) {
		t.Fatal("median of constant image changed values")
	}
}

func TestMedianEvenWindow(t *testing.T) {
	// 2×2 median = average of the two middle values of four samples.
	img := tensor.From([]float64{
		0, 1,
		2, 3,
	}, 1, 2, 2)
	out := Median{K: 2}.Apply(img)
	// At (0,0) the window (with top-left anchoring) covers all four
	// pixels: sorted [0 1 2 3], median (1+2)/2 = 1.5.
	if got := out.At(0, 0, 0); got != 1.5 {
		t.Fatalf("even median = %v, want 1.5", got)
	}
}

func TestNonLocalMeansSmoothsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	img := tensor.New(1, 12, 12).Fill(0.5)
	noisy := img.Clone()
	for i := range noisy.Data {
		noisy.Data[i] += 0.1 * rng.NormFloat64()
	}
	out := NonLocalMeans{Search: 7, Patch: 3, H: 0.3}.Apply(noisy)
	// Residual variance must shrink.
	varOf := func(t_ *tensor.Tensor) float64 {
		m := t_.Mean()
		s := 0.0
		for _, v := range t_.Data {
			s += (v - m) * (v - m)
		}
		return s / float64(t_.Len())
	}
	if varOf(out) >= varOf(noisy) {
		t.Fatalf("NL-means did not reduce variance: %v -> %v", varOf(noisy), varOf(out))
	}
}

func TestNonLocalMeansConstantInvariant(t *testing.T) {
	img := tensor.New(3, 8, 8).Fill(0.3)
	out := NonLocalMeans{Search: 5, Patch: 3, H: 0.1}.Apply(img)
	if !out.AllClose(img, 1e-9) {
		t.Fatal("NL-means changed a constant image")
	}
}

func TestSqueezersPreserveShapeAndInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	img := tensor.New(3, 9, 9).FillUniform(rng, 0, 1)
	orig := img.Clone()
	for _, s := range []Squeezer{
		BitDepth{Bits: 4}, Median{K: 3}, NonLocalMeans{Search: 5, Patch: 3, H: 0.2},
	} {
		out := s.Apply(img)
		if !out.SameShape(img) {
			t.Fatalf("%s changed shape to %v", s.Name(), out.Shape)
		}
		if !img.AllClose(orig, 0) {
			t.Fatalf("%s mutated its input", s.Name())
		}
		if s.Name() == "" {
			t.Fatal("empty squeezer name")
		}
	}
}

func TestDetectorConfigurations(t *testing.T) {
	g := ForGreyscale()
	if len(g.Squeezers) != 2 {
		t.Fatalf("greyscale squeezers = %d, want 2", len(g.Squeezers))
	}
	c := ForColor()
	if len(c.Squeezers) != 3 {
		t.Fatalf("color squeezers = %d, want 3", len(c.Squeezers))
	}
}
