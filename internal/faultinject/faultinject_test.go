package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestCheckDisarmed(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	if err := Check("nothing.armed"); err != nil {
		t.Fatalf("disarmed point returned %v", err)
	}
}

func TestArmNilFails(t *testing.T) {
	t.Cleanup(Reset)
	Arm("test.point", nil)
	err := Check("test.point")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("armed point returned %v, want ErrInjected", err)
	}
	if err := Check("test.other"); err != nil {
		t.Fatalf("unarmed sibling point returned %v", err)
	}
}

func TestArmError(t *testing.T) {
	t.Cleanup(Reset)
	sentinel := errors.New("boom")
	ArmError("test.point", sentinel)
	if err := Check("test.point"); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want the armed sentinel", err)
	}
}

func TestDisarm(t *testing.T) {
	t.Cleanup(Reset)
	Arm("test.point", nil)
	Disarm("test.point")
	if err := Check("test.point"); err != nil {
		t.Fatalf("disarmed point returned %v", err)
	}
}

func TestArmCount(t *testing.T) {
	t.Cleanup(Reset)
	ArmCount("test.flaky", 2)
	for i := 0; i < 2; i++ {
		if err := Check("test.flaky"); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: got %v, want ErrInjected", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := Check("test.flaky"); err != nil {
			t.Fatalf("post-budget call %d: got %v, want nil", i, err)
		}
	}
}

// TestConcurrentArmCheck exercises the copy-on-write map under -race:
// concurrent Arm/Disarm/Check must never trip the detector or observe
// a partial map.
func TestConcurrentArmCheck(t *testing.T) {
	t.Cleanup(Reset)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				Arm("test.race", nil)
				_ = Check("test.race")
				Disarm("test.race")
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				_ = Check("test.race")
				_ = Check("test.unrelated")
			}
		}()
	}
	wg.Wait()
}

func TestFlipBit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte{0x00, 0xFF}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, 1, 0); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x08 || got[1] != 0xFE {
		t.Fatalf("file is % x, want 08 fe", got)
	}
	// Flip back restores the original.
	if err := FlipBit(path, 0, 3); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if got[0] != 0x00 {
		t.Fatalf("double flip left byte 0 at %#x", got[0])
	}
	if err := FlipBit(path, 0, 8); err == nil {
		t.Fatal("bit 8 accepted")
	}
	if err := FlipBit(path, 99, 0); err == nil {
		t.Fatal("offset beyond EOF accepted")
	}
}

func TestTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Truncate(path, 4); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "0123" {
		t.Fatalf("truncated file is %q", got)
	}
	if err := Truncate(filepath.Join(t.TempDir(), "missing"), 0); err == nil {
		t.Fatal("truncating a missing file succeeded")
	}
}
