// Package faultinject is the chaos-testing seam of this repository: a
// registry of named fault points that production code consults at the
// moments most likely to fail in the field — artifact writes between
// temp file and rename, reload swaps, batch scoring. Disarmed (the
// default), a point costs one atomic pointer load and no allocation;
// armed, it runs an arbitrary injected function, so tests can simulate
// crashes (return an error), slow paths (sleep, then return nil), or
// flaky behavior (fail N times, then succeed).
//
// Points can also be armed from outside the process via the DV_FAULT
// environment variable — a comma-separated list of point names that
// fail with ErrInjected — so shell-level chaos suites
// (scripts/chaos_smoke.sh) can drive the real binaries through their
// failure paths:
//
//	DV_FAULT=artifact.rename dvtrain -out model.gob   # save must fail,
//	                                                  # old artifact intact
//
// The package also carries the file-corruption helpers (FlipBit,
// Truncate) the corruption-matrix tests are built on.
package faultinject

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrInjected is the error returned by points armed without a custom
// function (including every point armed via DV_FAULT).
var ErrInjected = errors.New("faultinject: injected fault")

// Names of the fault points compiled into production code. Tests may
// arm ad-hoc names too; these constants exist so call sites and tests
// cannot drift apart.
const (
	// PointArtifactRename fires after an artifact's temp file is fully
	// written and synced, immediately before the rename that publishes
	// it — the crash window atomic writes must tolerate.
	PointArtifactRename = "artifact.rename"
	// PointArtifactWrite fires before the temp file's payload is
	// written, simulating a crash mid-save with nothing durable yet.
	PointArtifactWrite = "artifact.write"
	// PointServeReload fires at the top of a serving reload, before the
	// loader runs — the injectable "reload is failing/slow" seam.
	PointServeReload = "serve.reload"
	// PointServeBatch fires before a micro-batch is scored; an injected
	// error forces the batch onto the per-request fallback path.
	PointServeBatch = "serve.batch"
	// PointGatewayRoute fires before the gateway forwards a request to
	// the replica routing chose, simulating a connect failure so the
	// retry-budget path can be driven deterministically.
	PointGatewayRoute = "gateway.route"
	// PointGatewayProbe fires before a gateway health probe, forcing the
	// probe to count as a failure — the "replica unreachable" shape
	// without killing a process.
	PointGatewayProbe = "gateway.probe"
	// PointGatewayRollout fires before each per-replica switch of a
	// staged rollout; armed with a count it halts the rollout midway and
	// exercises the rollback path.
	PointGatewayRollout = "gateway.rollout"
)

// points holds the armed fault functions. The map is copy-on-write
// behind an atomic pointer: Check (the hot path) is a single load, and
// Arm/Disarm (test-time only) clone under a lock.
var (
	armMu  sync.Mutex
	points atomic.Pointer[map[string]func() error]
)

func init() {
	ArmFromSpec(os.Getenv("DV_FAULT"))
}

// ArmFromSpec arms points from a DV_FAULT-style spec: a comma-separated
// list of point names, each optionally suffixed `:N` to fail only the
// first N checks (ArmCount) instead of failing forever. Unparseable
// counts arm the bare name, keeping the env path forgiving — chaos
// scripts prefer an always-failing point over a silently disarmed one.
func ArmFromSpec(spec string) {
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if name, count, ok := strings.Cut(entry, ":"); ok {
			if n, err := strconv.ParseInt(count, 10, 64); err == nil && n > 0 {
				ArmCount(name, n)
				continue
			}
			entry = name
		}
		Arm(entry, nil)
	}
}

// Check consults the named fault point: nil when disarmed (the fast
// path), otherwise whatever the armed function returns. Production
// call sites treat a non-nil result as the failure of the operation
// the point guards.
func Check(name string) error {
	m := points.Load()
	if m == nil {
		return nil
	}
	fn, ok := (*m)[name]
	if !ok {
		return nil
	}
	if fn == nil {
		return fmt.Errorf("%w at %s", ErrInjected, name)
	}
	return fn()
}

// Arm installs fn at the named point. A nil fn arms the point with
// ErrInjected. Arming is test-time machinery; it clones the point map
// so concurrent Check calls never see a partial update.
func Arm(name string, fn func() error) {
	mutate(func(m map[string]func() error) { m[name] = fn })
}

// ArmError arms the point to fail with a fixed error.
func ArmError(name string, err error) {
	Arm(name, func() error { return err })
}

// ArmCount arms the point to fail with ErrInjected for the first n
// Check calls and succeed afterwards — the "flaky until it isn't"
// shape reload-retry tests need. It is safe under concurrent Check.
func ArmCount(name string, n int64) {
	var remaining atomic.Int64
	remaining.Store(n)
	Arm(name, func() error {
		if remaining.Add(-1) >= 0 {
			return fmt.Errorf("%w at %s", ErrInjected, name)
		}
		return nil
	})
}

// Disarm removes the named point.
func Disarm(name string) {
	mutate(func(m map[string]func() error) { delete(m, name) })
}

// Reset disarms every point. Tests that arm points should
// t.Cleanup(faultinject.Reset).
func Reset() {
	armMu.Lock()
	defer armMu.Unlock()
	points.Store(nil)
}

func mutate(f func(map[string]func() error)) {
	armMu.Lock()
	defer armMu.Unlock()
	next := make(map[string]func() error)
	if m := points.Load(); m != nil {
		for k, v := range *m {
			next[k] = v
		}
	}
	f(next)
	if len(next) == 0 {
		points.Store(nil)
		return
	}
	points.Store(&next)
}

// FlipBit flips one bit of the file in place — the single-event-upset
// shape of the corruption matrix. offset addresses the byte, bit the
// bit within it (0..7).
func FlipBit(path string, offset int64, bit uint) error {
	if bit > 7 {
		return fmt.Errorf("faultinject: bit %d outside 0..7", bit)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("faultinject: flipping bit: %w", err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		f.Close()
		return fmt.Errorf("faultinject: reading byte %d of %s: %w", offset, path, err)
	}
	b[0] ^= 1 << bit
	if _, err := f.WriteAt(b[:], offset); err != nil {
		f.Close()
		return fmt.Errorf("faultinject: writing byte %d of %s: %w", offset, path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("faultinject: closing %s: %w", path, err)
	}
	return nil
}

// Truncate cuts the file to size bytes — the torn-write shape of the
// corruption matrix.
func Truncate(path string, size int64) error {
	if err := os.Truncate(path, size); err != nil {
		return fmt.Errorf("faultinject: truncating %s: %w", path, err)
	}
	return nil
}
