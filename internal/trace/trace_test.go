package trace

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestNewIDShape(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewID()
		if len(id) != 16 {
			t.Fatalf("NewID() = %q, want 16 chars", id)
		}
		if !ValidID(id) {
			t.Fatalf("NewID() produced invalid ID %q", id)
		}
		if seen[id] {
			t.Fatalf("NewID() repeated %q within 100 draws", id)
		}
		seen[id] = true
	}
}

func TestValidID(t *testing.T) {
	for _, ok := range []string{"a", "abc123", "A-b_c.9", strings.Repeat("x", 64)} {
		if !ValidID(ok) {
			t.Errorf("ValidID(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", " ", "a b", "a/b", "a\nb", "ümlaut", "a{b}", strings.Repeat("x", 65), "id\x00"} {
		if ValidID(bad) {
			t.Errorf("ValidID(%q) = true, want false", bad)
		}
	}
}

func TestFromHeader(t *testing.T) {
	if id, ok := FromHeader("  abc-123  "); !ok || id != "abc-123" {
		t.Fatalf("FromHeader trimmed = (%q, %v), want (abc-123, true)", id, ok)
	}
	for _, bad := range []string{"", "   ", "a b", strings.Repeat("x", 65)} {
		if id, ok := FromHeader(bad); ok || id != "" {
			t.Fatalf("FromHeader(%q) = (%q, %v), want rejection", bad, id, ok)
		}
	}
}

func TestItemID(t *testing.T) {
	id := ItemID("base", 3)
	if id != "base.3" {
		t.Fatalf("ItemID = %q, want base.3", id)
	}
	if !ValidID(id) {
		t.Fatalf("ItemID result %q is not a valid ID", id)
	}
}

func TestSamplerEdges(t *testing.T) {
	if s := NewSampler(0); s != nil {
		t.Fatal("rate 0 should return a nil (never) sampler")
	}
	if s := NewSampler(-1); s.Sample("x") {
		t.Fatal("negative rate sampled")
	}
	if !NewSampler(1).Sample("anything") {
		t.Fatal("rate 1 must always sample")
	}
	if !NewSampler(2).Sample("anything") {
		t.Fatal("rate > 1 must always sample")
	}
	var nilS *Sampler
	if nilS.Sample("x") {
		t.Fatal("nil sampler sampled")
	}
}

func TestSamplerDeterministic(t *testing.T) {
	s := NewSampler(0.5)
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("trace-%d", i)
		first := s.Sample(id)
		for rep := 0; rep < 5; rep++ {
			if s.Sample(id) != first {
				t.Fatalf("sampling decision for %q not deterministic", id)
			}
		}
		// A fresh sampler with the same rate must agree: the decision is
		// a pure function of (rate, id), stable across restarts.
		if NewSampler(0.5).Sample(id) != first {
			t.Fatalf("decision for %q differs across sampler instances", id)
		}
	}
}

func TestSamplerRate(t *testing.T) {
	const n = 20000
	for _, rate := range []float64{0.1, 0.5, 0.9} {
		s := NewSampler(rate)
		kept := 0
		for i := 0; i < n; i++ {
			if s.Sample(fmt.Sprintf("id-%d", i)) {
				kept++
			}
		}
		got := float64(kept) / n
		if got < rate-0.03 || got > rate+0.03 {
			t.Errorf("rate %v sampled %v of %d IDs", rate, got, n)
		}
	}
}

func TestStoreEviction(t *testing.T) {
	st := NewStore(2)
	add := func(id string) *Trace {
		tr := &Trace{ID: id, Root: NewSpan("verdict", time.Unix(0, 1), time.Unix(0, 2))}
		st.Add(tr)
		return tr
	}
	a, b := add("a"), add("b")
	if st.Get("a") != a || st.Get("b") != b {
		t.Fatal("store lost traces before capacity")
	}
	c := add("c") // evicts a
	if st.Get("a") != nil {
		t.Fatal("oldest trace not evicted")
	}
	if st.Get("b") != b || st.Get("c") != c {
		t.Fatal("eviction removed the wrong trace")
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}

	// Re-adding an ID must not let a later eviction of the stale copy
	// delete the fresh one from the index.
	b2 := add("b") // ring: [c, b2]; evicted b (same ID, older pointer)
	if st.Get("b") != b2 {
		t.Fatal("re-added ID not the latest copy")
	}
	add("d") // evicts c
	add("e") // evicts b2 — now "b" should really be gone
	if st.Get("b") != nil {
		t.Fatal("evicted re-added ID still resolvable")
	}
}

func TestStoreNilAndDisabled(t *testing.T) {
	if NewStore(0) != nil || NewStore(-5) != nil {
		t.Fatal("non-positive size should disable the store")
	}
	var st *Store
	st.Add(&Trace{ID: "x"})
	if st.Get("x") != nil || st.Len() != 0 {
		t.Fatal("nil store must no-op")
	}
}

func TestSpanTree(t *testing.T) {
	t0 := time.Unix(100, 0)
	root := NewSpan("verdict", t0, t0.Add(10*time.Millisecond))
	root.SetAttr("label", 3)
	child := root.AddChild(NewSpan("score", t0.Add(time.Millisecond), t0.Add(9*time.Millisecond)))
	child.SetAttr("d_0", 1.5)
	if len(root.Children) != 1 || root.Children[0].Name != "score" {
		t.Fatalf("span tree wrong: %+v", root)
	}
	if root.DurNs != int64(10*time.Millisecond) {
		t.Fatalf("root DurNs = %d", root.DurNs)
	}
	if root.Attrs["label"] != 3 || child.Attrs["d_0"] != 1.5 {
		t.Fatal("attrs lost")
	}
	// A span whose end precedes its start (wall-clock jump on times
	// without monotonic readings) clamps to zero duration.
	neg := NewSpan("x", t0.Add(time.Hour), t0)
	if neg.DurNs != 0 {
		t.Fatalf("negative duration not clamped: %d", neg.DurNs)
	}
}
