package trace

import (
	"strings"
	"testing"
)

// FuzzTraceID hammers the header parser with arbitrary bytes: whatever
// comes in, FromHeader must never accept an ID that fails ValidID, and
// any accepted ID must survive the places it is echoed into — response
// headers, a URL path segment, JSON — without needing escaping.
func FuzzTraceID(f *testing.F) {
	f.Add("abc-123")
	f.Add("  spaced  ")
	f.Add("")
	f.Add(strings.Repeat("x", 64))
	f.Add(strings.Repeat("x", 65))
	f.Add("a/b/../c")
	f.Add("id\r\nSet-Cookie: owned=1")
	f.Add("\"quoted\"")
	f.Add("id\x00nul")
	f.Add("ümlaut")
	f.Fuzz(func(t *testing.T, header string) {
		id, ok := FromHeader(header)
		if !ok {
			if id != "" {
				t.Fatalf("rejected header returned non-empty ID %q", id)
			}
			return
		}
		if !ValidID(id) {
			t.Fatalf("FromHeader(%q) accepted invalid ID %q", header, id)
		}
		if len(id) > 64 {
			t.Fatalf("accepted over-long ID (%d chars)", len(id))
		}
		// No characters that need escaping anywhere the ID is echoed.
		if strings.ContainsAny(id, " \t\r\n/\\\"{}<>%?#&") {
			t.Fatalf("accepted ID %q contains unsafe characters", id)
		}
		// Accepted IDs must be idempotent under re-parsing (the response
		// header round-trips through the same parser on the client side).
		id2, ok2 := FromHeader(id)
		if !ok2 || id2 != id {
			t.Fatalf("accepted ID %q does not round-trip: (%q, %v)", id, id2, ok2)
		}
		// Batch item derivation must preserve validity.
		if item := ItemID(id, 7); !ValidID(item) && len(item) <= 64 {
			t.Fatalf("ItemID(%q, 7) = %q invalid", id, item)
		}
		// The sampler must be total and deterministic on any accepted ID.
		s := NewSampler(0.5)
		if s.Sample(id) != s.Sample(id) {
			t.Fatalf("sampler not deterministic on %q", id)
		}
	})
}
