package trace

import (
	"math"
	"sort"
	"strconv"
	"sync"

	"deepvalidation/internal/metrics"
	"deepvalidation/internal/telemetry"
)

// Drift metric names (see internal/core/telemetry.go for the naming
// scheme shared across the repo).
const (
	// MetricDriftScore is a per-layer gauge (label layer="N", N the tap
	// index) holding the current quantile-shift score of the live
	// discrepancy window against the fit-time reference.
	MetricDriftScore = "dv_drift_score"
	// MetricDriftAlarm is 1 while any layer's drift score is at or
	// above the threshold, else 0.
	MetricDriftAlarm = "dv_drift_alarm"
	// MetricDriftWindowFill is the number of verdicts currently in the
	// sliding window.
	MetricDriftWindowFill = "dv_drift_window_fill"
)

// Default drift-watch tuning. MinFill is clamped to the window size so
// tiny test windows still warm up.
const (
	DefaultDriftWindow    = 512
	DefaultDriftMinFill   = 32
	DefaultDriftThreshold = 0.5
	driftRecomputeEvery   = 16
)

// DriftConfig describes a drift watch over the serving path's per-layer
// discrepancies.
type DriftConfig struct {
	Layers    []int       // tap indices, parallel to Ref (gauge labels)
	Probs     []float64   // quantile probabilities of the reference
	Ref       [][]float64 // fit-time reference quantiles, [layer][prob]
	Window    int         // sliding-window size; <= 0 means DefaultDriftWindow
	Threshold float64     // alarm threshold; <= 0 means DefaultDriftThreshold
	Registry  *telemetry.Registry
	// OnAlarm, when non-nil, is invoked with the fresh status on every
	// alarm transition (raise and clear), outside the watch's mutex —
	// the hook the serving layer uses to emit drift-alarm events.
	// Callbacks run on the Observe caller's goroutine and must not call
	// back into the watch synchronously in a way that blocks.
	OnAlarm func(DriftStatus)
}

// DriftStatus is the JSON-ready summary served on /debug/dv/drift and
// folded into /readyz.
type DriftStatus struct {
	Enabled   bool      `json:"enabled"`
	Warming   bool      `json:"warming,omitempty"`
	Fill      int       `json:"fill"`
	Window    int       `json:"window"`
	MinFill   int       `json:"min_fill"`
	Threshold float64   `json:"threshold"`
	Layers    []int     `json:"layers,omitempty"`
	Scores    []float64 `json:"scores,omitempty"`
	MaxScore  float64   `json:"max_score"`
	Alarm     bool      `json:"alarm"`
}

// DriftWatch maintains a sliding window of per-layer discrepancies and
// scores each layer's live quantiles against the fit-time reference:
//
//	score_l = mean_q |Q_live_l(q) − Q_ref_l(q)| / max(range(Q_ref_l), 1e-9)
//
// i.e. the mean absolute quantile shift, normalized by the reference's
// quantile range so the score is comparable across layers with very
// different discrepancy scales. Scores (and the alarm) recompute every
// driftRecomputeEvery observations once the window has warmed past
// MinFill. Both sketches are exact quantiles with linear interpolation
// (metrics.QuantilesSorted), so the comparison is deterministic — no
// randomized summaries, no merge order to worry about.
type DriftWatch struct {
	cfg     DriftConfig
	minFill int

	mu       sync.Mutex
	rings    [][]float64 // [layer][window]
	next     int
	fill     int
	sinceRec int
	scores   []float64
	maxScore float64
	alarm    bool

	gScores []*telemetry.Gauge
	gAlarm  *telemetry.Gauge
	gFill   *telemetry.Gauge
}

// NewDriftWatch builds a watch from a fit-time reference. It returns
// nil — the disabled, nil-safe state — when the reference is absent or
// malformed (legacy artifacts decode with no drift fields and land
// here).
func NewDriftWatch(cfg DriftConfig) *DriftWatch {
	if len(cfg.Layers) == 0 || len(cfg.Probs) < 2 || len(cfg.Ref) != len(cfg.Layers) {
		return nil
	}
	for _, q := range cfg.Ref {
		if len(q) != len(cfg.Probs) {
			return nil
		}
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultDriftWindow
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = DefaultDriftThreshold
	}
	w := &DriftWatch{
		cfg:     cfg,
		minFill: min(DefaultDriftMinFill, cfg.Window),
		rings:   make([][]float64, len(cfg.Layers)),
		scores:  make([]float64, len(cfg.Layers)),
		gScores: make([]*telemetry.Gauge, len(cfg.Layers)),
	}
	for i := range w.rings {
		w.rings[i] = make([]float64, cfg.Window)
	}
	// Register gauges eagerly so /metrics exposes the drift family as
	// soon as the server is up, not only after the first recompute.
	for i, l := range cfg.Layers {
		w.gScores[i] = cfg.Registry.Gauge(telemetry.Label(MetricDriftScore, "layer", strconv.Itoa(l)))
	}
	w.gAlarm = cfg.Registry.Gauge(MetricDriftAlarm)
	w.gFill = cfg.Registry.Gauge(MetricDriftWindowFill)
	return w
}

// Observe feeds one verdict's per-layer discrepancies (parallel to
// cfg.Layers) into the window. Vectors containing non-finite values —
// quarantined verdicts — are skipped entirely: they carry no
// distributional information, only numerical failure. Nil-safe.
func (w *DriftWatch) Observe(perLayer []float64) {
	if w == nil || len(perLayer) != len(w.rings) {
		return
	}
	for _, v := range perLayer {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return
		}
	}
	w.mu.Lock()
	for l, v := range perLayer {
		w.rings[l][w.next] = v
	}
	w.next = (w.next + 1) % w.cfg.Window
	if w.fill < w.cfg.Window {
		w.fill++
	}
	w.gFill.Set(float64(w.fill))
	w.sinceRec++
	var notify *DriftStatus
	if w.fill >= w.minFill && (w.sinceRec >= driftRecomputeEvery || w.fill == w.minFill) {
		prev := w.alarm
		w.recomputeLocked()
		if w.alarm != prev && w.cfg.OnAlarm != nil {
			st := w.statusLocked()
			notify = &st
		}
	}
	w.mu.Unlock()
	// The transition callback runs outside the mutex so it may take
	// other locks (event ring, sinks) without ordering constraints.
	if notify != nil {
		w.cfg.OnAlarm(*notify)
	}
}

// recomputeLocked refreshes per-layer scores, the alarm, and their
// gauges. Caller holds w.mu.
func (w *DriftWatch) recomputeLocked() {
	w.sinceRec = 0
	w.maxScore = 0
	live := make([]float64, w.fill)
	for l := range w.rings {
		copy(live, w.rings[l][:w.fill])
		sort.Float64s(live)
		qs := metrics.QuantilesSorted(live, w.cfg.Probs)
		ref := w.cfg.Ref[l]
		scale := math.Abs(ref[len(ref)-1] - ref[0])
		if scale < 1e-9 {
			scale = 1e-9
		}
		sum := 0.0
		for i := range qs {
			sum += math.Abs(qs[i] - ref[i])
		}
		score := sum / float64(len(qs)) / scale
		w.scores[l] = score
		w.gScores[l].Set(score)
		if score > w.maxScore {
			w.maxScore = score
		}
	}
	w.alarm = w.maxScore >= w.cfg.Threshold
	if w.alarm {
		w.gAlarm.Set(1)
	} else {
		w.gAlarm.Set(0)
	}
}

// Status returns the current drift summary. A nil watch reports
// Enabled: false — the legacy-artifact degradation.
func (w *DriftWatch) Status() DriftStatus {
	if w == nil {
		return DriftStatus{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.statusLocked()
}

// statusLocked builds the status snapshot; caller holds w.mu.
func (w *DriftWatch) statusLocked() DriftStatus {
	st := DriftStatus{
		Enabled:   true,
		Warming:   w.fill < w.minFill,
		Fill:      w.fill,
		Window:    w.cfg.Window,
		MinFill:   w.minFill,
		Threshold: w.cfg.Threshold,
		Layers:    append([]int(nil), w.cfg.Layers...),
		MaxScore:  w.maxScore,
		Alarm:     w.alarm,
	}
	if !st.Warming {
		st.Scores = append([]float64(nil), w.scores...)
	}
	return st
}
