package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"strconv"
)

// This file holds the cross-tier helpers: filter parsing shared by the
// dvserve and dvgateway triage endpoints, and span-tree decode/clone
// primitives the gateway's trace stitcher uses to merge a replica's
// span tree into its own hop tree.

// ParseFilter parses the shared flight-recorder query grammar
// (?valid=, ?class=, ?outcome=, ?limit=) into a Filter. Both tiers use
// it, so a bad filter value produces the same 400 message whether the
// client asked a replica or the gateway's fleet-wide aggregation.
func ParseFilter(q url.Values) (Filter, error) {
	var f Filter
	if v := q.Get("valid"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return Filter{}, fmt.Errorf("bad valid filter: %s", err)
		}
		f.Valid = &b
	}
	if v := q.Get("class"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil {
			return Filter{}, fmt.Errorf("bad class filter: %s", err)
		}
		f.Class = &k
	}
	f.Outcome = q.Get("outcome")
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return Filter{}, fmt.Errorf("bad limit: %s", err)
		}
		f.Limit = n
	}
	return f, nil
}

// DecodeTrace parses the JSON a trace endpoint serves (the wire form
// of Trace) back into a tree — the fetch half of cross-tier stitching.
func DecodeTrace(data []byte) (*Trace, error) {
	var tr Trace
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("decoding trace: %w", err)
	}
	if tr.Root == nil {
		return nil, errors.New("decoding trace: no root span")
	}
	return &tr, nil
}

// CloneSpan deep-copies a span tree. Stitching grafts remote subtrees
// onto a stored tree; cloning first keeps the store's copy immutable
// under concurrent readers.
func CloneSpan(s *Span) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: s.Name, StartNs: s.StartNs, DurNs: s.DurNs}
	if len(s.Attrs) > 0 {
		c.Attrs = make(map[string]any, len(s.Attrs))
		for k, v := range s.Attrs {
			c.Attrs[k] = v
		}
	}
	if len(s.Children) > 0 {
		c.Children = make([]*Span, len(s.Children))
		for i, ch := range s.Children {
			c.Children[i] = CloneSpan(ch)
		}
	}
	return c
}

// CountSpans returns the number of spans in the tree rooted at s.
func CountSpans(s *Span) int {
	if s == nil {
		return 0
	}
	n := 1
	for _, c := range s.Children {
		n += CountSpans(c)
	}
	return n
}

// FindSpan returns the first span (depth-first, children in order) for
// which pred is true, or nil.
func FindSpan(s *Span, pred func(*Span) bool) *Span {
	if s == nil {
		return nil
	}
	if pred(s) {
		return s
	}
	for _, c := range s.Children {
		if m := FindSpan(c, pred); m != nil {
			return m
		}
	}
	return nil
}
