package trace

import (
	"math"
	"sort"
	"strconv"
	"testing"

	"deepvalidation/internal/metrics"
	"deepvalidation/internal/telemetry"
)

var testProbs = []float64{0.05, 0.25, 0.5, 0.75, 0.95}

// refFromSamples builds a reference the same way core.Fit does: sort,
// then exact quantiles.
func refFromSamples(samples ...[]float64) [][]float64 {
	out := make([][]float64, len(samples))
	for i, s := range samples {
		sorted := append([]float64(nil), s...)
		sort.Float64s(sorted)
		out[i] = metrics.QuantilesSorted(sorted, testProbs)
	}
	return out
}

func ramp(n int, lo, hi float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

func TestDriftWatchDisabledOnBadConfig(t *testing.T) {
	// Legacy artifacts decode with no drift fields: nil layers/ref.
	if w := NewDriftWatch(DriftConfig{}); w != nil {
		t.Fatal("empty config should disable drift")
	}
	// Mismatched shapes must disable rather than panic later.
	if w := NewDriftWatch(DriftConfig{Layers: []int{0, 1}, Probs: testProbs, Ref: refFromSamples(ramp(50, 0, 1))}); w != nil {
		t.Fatal("layer/ref length mismatch should disable drift")
	}
	if w := NewDriftWatch(DriftConfig{Layers: []int{0}, Probs: testProbs, Ref: [][]float64{{1, 2}}}); w != nil {
		t.Fatal("prob/ref length mismatch should disable drift")
	}
	var nilW *DriftWatch
	nilW.Observe([]float64{1})
	if st := nilW.Status(); st.Enabled {
		t.Fatal("nil watch must report disabled")
	}
}

func TestDriftWatchWarmingThenStable(t *testing.T) {
	reg := telemetry.New()
	w := NewDriftWatch(DriftConfig{
		Layers:   []int{2, 5},
		Probs:    testProbs,
		Ref:      refFromSamples(ramp(200, 0, 1), ramp(200, 10, 20)),
		Window:   64,
		Registry: reg,
	})
	if w == nil {
		t.Fatal("watch unexpectedly disabled")
	}
	st := w.Status()
	if !st.Enabled || !st.Warming || st.Fill != 0 || st.MinFill != DefaultDriftMinFill {
		t.Fatalf("initial status %+v", st)
	}
	// Gauges exist from construction.
	if reg.Gauge(telemetry.Label(MetricDriftScore, "layer", "2")) == nil {
		t.Fatal("drift score gauge not registered")
	}

	// Feed the same distribution as the reference: score should settle
	// near zero and no alarm.
	r0, r1 := ramp(200, 0, 1), ramp(200, 10, 20)
	for i := 0; i < 64; i++ {
		w.Observe([]float64{r0[(i*3)%200], r1[(i*7)%200]})
	}
	st = w.Status()
	if st.Warming || st.Fill != 64 || st.Alarm {
		t.Fatalf("stable status %+v", st)
	}
	if len(st.Scores) != 2 {
		t.Fatalf("want 2 scores, got %v", st.Scores)
	}
	for i, s := range st.Scores {
		if s > 0.2 {
			t.Fatalf("in-distribution score[%d] = %v, want near 0", i, s)
		}
	}
	if g := reg.Gauge(MetricDriftAlarm).Value(); g != 0 {
		t.Fatalf("alarm gauge = %v, want 0", g)
	}
	if g := reg.Gauge(MetricDriftWindowFill).Value(); g != 64 {
		t.Fatalf("fill gauge = %v, want 64", g)
	}
}

func TestDriftWatchDetectsShift(t *testing.T) {
	reg := telemetry.New()
	w := NewDriftWatch(DriftConfig{
		Layers:    []int{0, 1},
		Probs:     testProbs,
		Ref:       refFromSamples(ramp(200, 0, 1), ramp(200, 0, 1)),
		Window:    64,
		Threshold: 0.5,
		Registry:  reg,
	})
	// Layer 0 stays in distribution, layer 1 shifts by +5 (five times
	// the reference's quantile range → score ≈ 5).
	r := ramp(200, 0, 1)
	for i := 0; i < 64; i++ {
		w.Observe([]float64{r[(i*3)%200], r[(i*3)%200] + 5})
	}
	st := w.Status()
	if st.Scores[0] > 0.2 {
		t.Fatalf("unshifted layer scored %v", st.Scores[0])
	}
	if st.Scores[1] < 2 {
		t.Fatalf("shifted layer scored %v, want >> threshold", st.Scores[1])
	}
	if !st.Alarm || st.MaxScore < 2 {
		t.Fatalf("alarm not raised: %+v", st)
	}
	if g := reg.Gauge(MetricDriftAlarm).Value(); g != 1 {
		t.Fatalf("alarm gauge = %v, want 1", g)
	}
	if g := reg.Gauge(telemetry.Label(MetricDriftScore, "layer", "1")).Value(); g < 2 {
		t.Fatalf("score gauge = %v, want >= 2", g)
	}
}

func TestDriftWatchSkipsNonFinite(t *testing.T) {
	w := NewDriftWatch(DriftConfig{
		Layers: []int{0},
		Probs:  testProbs,
		Ref:    refFromSamples(ramp(100, 0, 1)),
		Window: 8,
	})
	w.Observe([]float64{math.NaN()})
	w.Observe([]float64{math.Inf(1)})
	w.Observe([]float64{0.5, 0.5}) // wrong arity
	if st := w.Status(); st.Fill != 0 {
		t.Fatalf("non-finite/malformed observations were recorded: fill=%d", st.Fill)
	}
	w.Observe([]float64{0.5})
	if st := w.Status(); st.Fill != 1 {
		t.Fatalf("finite observation dropped: fill=%d", st.Fill)
	}
}

// TestDriftWatchSlidingWindow proves old observations age out: after a
// full window of shifted values, the in-distribution prefix no longer
// dampens the score.
func TestDriftWatchSlidingWindow(t *testing.T) {
	w := NewDriftWatch(DriftConfig{
		Layers: []int{0},
		Probs:  testProbs,
		Ref:    refFromSamples(ramp(100, 0, 1)),
		Window: 32,
	})
	r := ramp(100, 0, 1)
	for i := 0; i < 32; i++ {
		w.Observe([]float64{r[(i*3)%100]})
	}
	if st := w.Status(); st.Alarm {
		t.Fatalf("alarm on in-distribution data: %+v", st)
	}
	for i := 0; i < 32; i++ {
		w.Observe([]float64{r[(i*3)%100] + 10})
	}
	st := w.Status()
	if !st.Alarm || st.Scores[0] < 5 {
		t.Fatalf("full shifted window should alarm hard: %+v", st)
	}
}

func TestDriftWatchDeterministicScores(t *testing.T) {
	build := func() *DriftWatch {
		return NewDriftWatch(DriftConfig{
			Layers: []int{3},
			Probs:  testProbs,
			Ref:    refFromSamples(ramp(100, -2, 2)),
			Window: 40,
		})
	}
	a, b := build(), build()
	r := ramp(100, -1, 3)
	for i := 0; i < 40; i++ {
		a.Observe([]float64{r[(i*7)%100]})
		b.Observe([]float64{r[(i*7)%100]})
	}
	sa, sb := a.Status(), b.Status()
	if math.Float64bits(sa.Scores[0]) != math.Float64bits(sb.Scores[0]) {
		t.Fatalf("drift score not bit-deterministic: %x vs %x",
			math.Float64bits(sa.Scores[0]), math.Float64bits(sb.Scores[0]))
	}
}

func TestDriftGaugeLabels(t *testing.T) {
	// The gauge naming must match what the Prometheus renderer expects.
	for _, l := range []int{0, 7, 12} {
		want := "dv_drift_score{layer=\"" + strconv.Itoa(l) + "\"}"
		if got := telemetry.Label(MetricDriftScore, "layer", strconv.Itoa(l)); got != want {
			t.Fatalf("label = %q, want %q", got, want)
		}
	}
}
