package trace

import (
	"sync"
	"time"
)

// Span is one timed region of a verdict's life. Spans form a tree:
// the root covers the whole request and children cover admission,
// batcher wait, dispatch, the forward pass, and per-layer SVM scoring.
// Times are wall-clock nanoseconds since the Unix epoch (StartNs) plus
// a duration (DurNs), both computed from monotonic readings at record
// time so a wall-clock jump cannot produce a negative duration.
type Span struct {
	Name     string         `json:"name"`
	StartNs  int64          `json:"start_ns"`
	DurNs    int64          `json:"dur_ns"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*Span        `json:"children,omitempty"`
}

// NewSpan builds a span from two time.Time readings, clamping negative
// durations (possible only when a reading lost its monotonic clock) to
// zero.
func NewSpan(name string, start, end time.Time) *Span {
	d := end.Sub(start)
	if d < 0 {
		d = 0
	}
	return &Span{Name: name, StartNs: start.UnixNano(), DurNs: int64(d)}
}

// SetAttr attaches a key/value attribute, allocating the map lazily.
func (s *Span) SetAttr(k string, v any) *Span {
	if s.Attrs == nil {
		s.Attrs = make(map[string]any)
	}
	s.Attrs[k] = v
	return s
}

// AddChild appends a child span and returns it for chaining.
func (s *Span) AddChild(c *Span) *Span {
	s.Children = append(s.Children, c)
	return c
}

// Trace is one recorded verdict trace: the ID, the endpoint it entered
// through, and the span tree.
type Trace struct {
	ID       string `json:"id"`
	Endpoint string `json:"endpoint"`
	Root     *Span  `json:"root"`
}

// Store holds the most recent sampled traces in a bounded ring: when
// full, adding a trace evicts the oldest. Lookup is by ID. All methods
// are safe for concurrent use and nil-safe.
type Store struct {
	mu   sync.Mutex
	ring []*Trace
	byID map[string]*Trace
	next int
}

// NewStore returns a store keeping the last size traces, or nil when
// size <= 0 (store disabled).
func NewStore(size int) *Store {
	if size <= 0 {
		return nil
	}
	return &Store{ring: make([]*Trace, size), byID: make(map[string]*Trace, size)}
}

// Add records a trace, evicting the oldest when the ring is full.
// Re-adding an ID replaces the lookup entry (last write wins).
func (st *Store) Add(tr *Trace) {
	if st == nil || tr == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if old := st.ring[st.next]; old != nil {
		// Delete the evictee from the index only if the index still
		// points at it — a newer trace may have reused the ID.
		if cur, ok := st.byID[old.ID]; ok && cur == old {
			delete(st.byID, old.ID)
		}
	}
	st.ring[st.next] = tr
	st.byID[tr.ID] = tr
	st.next = (st.next + 1) % len(st.ring)
}

// Get returns the trace with the given ID, or nil when absent (or the
// store is nil).
func (st *Store) Get(id string) *Trace {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.byID[id]
}

// Len returns the number of traces currently held.
func (st *Store) Len() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.byID)
}
