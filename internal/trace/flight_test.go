package trace

import (
	"sync"
	"testing"
)

// TestFlightWraparoundExactlyN fills the ring to exactly capacity: all
// N entries must be retained, newest first.
func TestFlightWraparoundExactlyN(t *testing.T) {
	const n = 4
	f := NewFlight(n)
	for i := 0; i < n; i++ {
		f.Record(Entry{Label: i, Outcome: OutcomeOK})
	}
	if f.Len() != n {
		t.Fatalf("Len = %d, want %d", f.Len(), n)
	}
	got := f.Snapshot(Filter{})
	if len(got) != n {
		t.Fatalf("snapshot has %d entries, want %d", len(got), n)
	}
	for i, e := range got {
		if want := n - 1 - i; e.Label != want {
			t.Fatalf("entry %d label = %d, want %d (newest first)", i, e.Label, want)
		}
		if e.Seq != uint64(n-i) {
			t.Fatalf("entry %d seq = %d, want %d", i, e.Seq, n-i)
		}
	}
}

// TestFlightWraparoundNPlusOne pushes one past capacity: the oldest
// entry must be overwritten, everything else retained in order.
func TestFlightWraparoundNPlusOne(t *testing.T) {
	const n = 4
	f := NewFlight(n)
	for i := 0; i <= n; i++ { // n+1 records
		f.Record(Entry{Label: i, Outcome: OutcomeOK})
	}
	if f.Len() != n {
		t.Fatalf("Len = %d, want %d after wrap", f.Len(), n)
	}
	got := f.Snapshot(Filter{})
	if len(got) != n {
		t.Fatalf("snapshot has %d entries, want %d", len(got), n)
	}
	for i, e := range got {
		if want := n - i; e.Label != want {
			t.Fatalf("entry %d label = %d, want %d (label 0 must be evicted)", i, e.Label, want)
		}
	}
	// Entry with label 0 (seq 1) must be gone.
	for _, e := range got {
		if e.Label == 0 {
			t.Fatal("oldest entry survived the wrap")
		}
	}
}

func TestFlightFilters(t *testing.T) {
	f := NewFlight(16)
	f.Record(Entry{Outcome: OutcomeOK, Valid: true, Label: 1})
	f.Record(Entry{Outcome: OutcomeOK, Valid: false, Label: 2})
	f.Record(Entry{Outcome: OutcomeQuarantined, Valid: false, Label: 2})
	f.Record(Entry{Outcome: OutcomeShed})
	f.Record(Entry{Outcome: OutcomeDeadline})

	fv := false
	got := f.Snapshot(Filter{Valid: &fv})
	if len(got) != 2 {
		t.Fatalf("valid=false matched %d entries, want 2 (shed/deadline are not verdicts)", len(got))
	}
	for _, e := range got {
		if e.Valid || !verdictBearing(e.Outcome) {
			t.Fatalf("valid=false matched %+v", e)
		}
	}

	tv := true
	if got := f.Snapshot(Filter{Valid: &tv}); len(got) != 1 || got[0].Label != 1 {
		t.Fatalf("valid=true matched %+v", got)
	}

	cls := 2
	if got := f.Snapshot(Filter{Class: &cls}); len(got) != 2 {
		t.Fatalf("class=2 matched %d, want 2", len(got))
	}
	// Class filter must not match a shed entry whose zero-valued Label
	// happens to equal the class.
	zero := 0
	if got := f.Snapshot(Filter{Class: &zero}); len(got) != 0 {
		t.Fatalf("class=0 matched %d shed/deadline entries, want 0", len(got))
	}

	if got := f.Snapshot(Filter{Outcome: OutcomeShed}); len(got) != 1 || got[0].Outcome != OutcomeShed {
		t.Fatalf("outcome=shed matched %+v", got)
	}

	if got := f.Snapshot(Filter{Limit: 2}); len(got) != 2 {
		t.Fatalf("limit=2 returned %d", len(got))
	}
	// Limit applies after filtering, newest-first.
	if got := f.Snapshot(Filter{Valid: &fv, Limit: 1}); len(got) != 1 || got[0].Outcome != OutcomeQuarantined {
		t.Fatalf("filtered limit returned %+v", got)
	}
}

func TestFlightNilAndDisabled(t *testing.T) {
	if NewFlight(0) != nil || NewFlight(-1) != nil {
		t.Fatal("non-positive size should disable the recorder")
	}
	var f *Flight
	f.Record(Entry{})
	if f.Len() != 0 || f.Snapshot(Filter{}) != nil {
		t.Fatal("nil flight must no-op")
	}
}

func TestFlightConcurrentRecordSnapshot(t *testing.T) {
	f := NewFlight(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Record(Entry{Label: g, Outcome: OutcomeOK})
				_ = f.Snapshot(Filter{Limit: 3})
			}
		}(g)
	}
	wg.Wait()
	if f.Len() != 8 {
		t.Fatalf("Len = %d, want 8", f.Len())
	}
	// Sequence numbers must be unique and the newest snapshot ordered.
	got := f.Snapshot(Filter{})
	for i := 1; i < len(got); i++ {
		if got[i].Seq >= got[i-1].Seq {
			t.Fatalf("snapshot not newest-first: seq %d then %d", got[i-1].Seq, got[i].Seq)
		}
	}
}
