package trace

import (
	"sync"
	"testing"
)

// TestFlightWraparoundExactlyN fills the ring to exactly capacity: all
// N entries must be retained, newest first.
func TestFlightWraparoundExactlyN(t *testing.T) {
	const n = 4
	f := NewFlight(n)
	for i := 0; i < n; i++ {
		f.Record(Entry{Label: i, Outcome: OutcomeOK})
	}
	if f.Len() != n {
		t.Fatalf("Len = %d, want %d", f.Len(), n)
	}
	got := f.Snapshot(Filter{})
	if len(got) != n {
		t.Fatalf("snapshot has %d entries, want %d", len(got), n)
	}
	for i, e := range got {
		if want := n - 1 - i; e.Label != want {
			t.Fatalf("entry %d label = %d, want %d (newest first)", i, e.Label, want)
		}
		if e.Seq != uint64(n-i) {
			t.Fatalf("entry %d seq = %d, want %d", i, e.Seq, n-i)
		}
	}
}

// TestFlightWraparoundNPlusOne pushes one past capacity: the oldest
// entry must be overwritten, everything else retained in order.
func TestFlightWraparoundNPlusOne(t *testing.T) {
	const n = 4
	f := NewFlight(n)
	for i := 0; i <= n; i++ { // n+1 records
		f.Record(Entry{Label: i, Outcome: OutcomeOK})
	}
	if f.Len() != n {
		t.Fatalf("Len = %d, want %d after wrap", f.Len(), n)
	}
	got := f.Snapshot(Filter{})
	if len(got) != n {
		t.Fatalf("snapshot has %d entries, want %d", len(got), n)
	}
	for i, e := range got {
		if want := n - i; e.Label != want {
			t.Fatalf("entry %d label = %d, want %d (label 0 must be evicted)", i, e.Label, want)
		}
	}
	// Entry with label 0 (seq 1) must be gone.
	for _, e := range got {
		if e.Label == 0 {
			t.Fatal("oldest entry survived the wrap")
		}
	}
}

func TestFlightFilters(t *testing.T) {
	f := NewFlight(16)
	f.Record(Entry{Outcome: OutcomeOK, Valid: true, Label: 1})
	f.Record(Entry{Outcome: OutcomeOK, Valid: false, Label: 2})
	f.Record(Entry{Outcome: OutcomeQuarantined, Valid: false, Label: 2})
	f.Record(Entry{Outcome: OutcomeShed})
	f.Record(Entry{Outcome: OutcomeDeadline})

	fv := false
	got := f.Snapshot(Filter{Valid: &fv})
	if len(got) != 2 {
		t.Fatalf("valid=false matched %d entries, want 2 (shed/deadline are not verdicts)", len(got))
	}
	for _, e := range got {
		if e.Valid || !verdictBearing(e.Outcome) {
			t.Fatalf("valid=false matched %+v", e)
		}
	}

	tv := true
	if got := f.Snapshot(Filter{Valid: &tv}); len(got) != 1 || got[0].Label != 1 {
		t.Fatalf("valid=true matched %+v", got)
	}

	cls := 2
	if got := f.Snapshot(Filter{Class: &cls}); len(got) != 2 {
		t.Fatalf("class=2 matched %d, want 2", len(got))
	}
	// Class filter must not match a shed entry whose zero-valued Label
	// happens to equal the class.
	zero := 0
	if got := f.Snapshot(Filter{Class: &zero}); len(got) != 0 {
		t.Fatalf("class=0 matched %d shed/deadline entries, want 0", len(got))
	}

	if got := f.Snapshot(Filter{Outcome: OutcomeShed}); len(got) != 1 || got[0].Outcome != OutcomeShed {
		t.Fatalf("outcome=shed matched %+v", got)
	}

	if got := f.Snapshot(Filter{Limit: 2}); len(got) != 2 {
		t.Fatalf("limit=2 returned %d", len(got))
	}
	// Limit applies after filtering, newest-first.
	if got := f.Snapshot(Filter{Valid: &fv, Limit: 1}); len(got) != 1 || got[0].Outcome != OutcomeQuarantined {
		t.Fatalf("filtered limit returned %+v", got)
	}
}

// TestFlightFilterCombinations exercises every pair-and-triple of the
// triage dimensions (valid, class, outcome, limit) against one
// population, including contradictory combinations that must match
// nothing and a ring smaller than the traffic so filters run over a
// wrapped buffer. Expected matches are identified by Seq: entries are
// recorded in order, so seq == record index + 1.
func TestFlightFilterCombinations(t *testing.T) {
	// Ring of 8 sees 12 records: seqs 1-4 are evicted, 5-12 remain.
	f := NewFlight(8)
	population := []Entry{
		{Outcome: OutcomeOK, Valid: true, Label: 1},           // seq 1 (evicted)
		{Outcome: OutcomeShed},                                // seq 2 (evicted)
		{Outcome: OutcomeOK, Valid: false, Label: 2},          // seq 3 (evicted)
		{Outcome: OutcomeDeadline},                            // seq 4 (evicted)
		{Outcome: OutcomeOK, Valid: true, Label: 1},           // seq 5
		{Outcome: OutcomeOK, Valid: true, Label: 2},           // seq 6
		{Outcome: OutcomeOK, Valid: false, Label: 2},          // seq 7
		{Outcome: OutcomeQuarantined, Valid: false, Label: 1}, // seq 8
		{Outcome: OutcomeShed},                                // seq 9
		{Outcome: OutcomeDeadline},                            // seq 10
		{Outcome: OutcomeError},                               // seq 11
		{Outcome: OutcomeOK, Valid: false, Label: 1},          // seq 12
	}
	for _, e := range population {
		f.Record(e)
	}

	vTrue, vFalse := true, false
	cls1, cls2, cls9 := 1, 2, 9
	cases := []struct {
		name     string
		filter   Filter
		wantSeqs []uint64 // newest first
	}{
		{"all", Filter{}, []uint64{12, 11, 10, 9, 8, 7, 6, 5}},
		{"valid+class", Filter{Valid: &vTrue, Class: &cls1}, []uint64{5}},
		{"invalid+class", Filter{Valid: &vFalse, Class: &cls1}, []uint64{12, 8}},
		{"invalid+class+limit", Filter{Valid: &vFalse, Class: &cls1, Limit: 1}, []uint64{12}},
		{"valid+outcome", Filter{Valid: &vFalse, Outcome: OutcomeQuarantined}, []uint64{8}},
		{"class+outcome", Filter{Class: &cls2, Outcome: OutcomeOK}, []uint64{7, 6}},
		{"valid+class+outcome", Filter{Valid: &vFalse, Class: &cls2, Outcome: OutcomeOK}, []uint64{7}},
		{"limit over match count", Filter{Class: &cls2, Limit: 99}, []uint64{7, 6}},
		{"limit zero means all", Filter{Outcome: OutcomeOK, Limit: 0}, []uint64{12, 7, 6, 5}},
		{"negative limit means all", Filter{Outcome: OutcomeOK, Limit: -3}, []uint64{12, 7, 6, 5}},
		// Contradictory combinations: individually each dimension
		// matches something, together they must match nothing.
		{"valid=true + outcome=shed", Filter{Valid: &vTrue, Outcome: OutcomeShed}, nil},
		{"valid=true + outcome=error", Filter{Valid: &vTrue, Outcome: OutcomeError}, nil},
		{"class + outcome=deadline", Filter{Class: &cls1, Outcome: OutcomeDeadline}, nil},
		{"valid=true + class=2 + outcome=quarantined", Filter{Valid: &vTrue, Class: &cls2, Outcome: OutcomeQuarantined}, nil},
		{"unknown class", Filter{Class: &cls9}, nil},
		{"unknown outcome", Filter{Outcome: "nope"}, nil},
		// Matches that only existed in evicted slots must stay gone.
		{"evicted-only combination", Filter{Valid: &vFalse, Class: &cls2, Outcome: OutcomeOK, Limit: 5}, []uint64{7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := f.Snapshot(tc.filter)
			if len(got) != len(tc.wantSeqs) {
				t.Fatalf("matched %d entries %+v, want seqs %v", len(got), got, tc.wantSeqs)
			}
			for i, e := range got {
				if e.Seq != tc.wantSeqs[i] {
					t.Errorf("entry %d seq = %d, want %d", i, e.Seq, tc.wantSeqs[i])
				}
			}
		})
	}
}

func TestFlightNilAndDisabled(t *testing.T) {
	if NewFlight(0) != nil || NewFlight(-1) != nil {
		t.Fatal("non-positive size should disable the recorder")
	}
	var f *Flight
	f.Record(Entry{})
	if f.Len() != 0 || f.Snapshot(Filter{}) != nil {
		t.Fatal("nil flight must no-op")
	}
}

func TestFlightConcurrentRecordSnapshot(t *testing.T) {
	f := NewFlight(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Record(Entry{Label: g, Outcome: OutcomeOK})
				_ = f.Snapshot(Filter{Limit: 3})
			}
		}(g)
	}
	wg.Wait()
	if f.Len() != 8 {
		t.Fatalf("Len = %d, want 8", f.Len())
	}
	// Sequence numbers must be unique and the newest snapshot ordered.
	got := f.Snapshot(Filter{})
	for i := 1; i < len(got); i++ {
		if got[i].Seq >= got[i-1].Seq {
			t.Fatalf("snapshot not newest-first: seq %d then %d", got[i-1].Seq, got[i].Seq)
		}
	}
}
