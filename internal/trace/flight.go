package trace

import "sync"

// Outcome classifies how a request left the serving path.
const (
	OutcomeOK          = "ok"          // scored, verdict returned
	OutcomeQuarantined = "quarantined" // scored but hit non-finite numerics
	OutcomeShed        = "shed"        // rejected 429 at admission
	OutcomeDeadline    = "deadline"    // 504 before a verdict arrived
	OutcomeError       = "error"       // scoring returned an error
)

// Entry is one flight-recorder record: everything needed to answer
// "what did the detector decide and which layer drove it" without
// replaying traffic. Layers/PerLayer carry the per-tap discrepancies
// d_i for verdict-bearing outcomes; they are nil for shed/deadline
// entries, which never reached scoring.
type Entry struct {
	Seq        uint64    `json:"seq"`
	TimeNs     int64     `json:"time_ns"`
	TraceID    string    `json:"trace_id,omitempty"`
	Endpoint   string    `json:"endpoint"`
	Outcome    string    `json:"outcome"`
	Label      int       `json:"label"`
	Confidence float64   `json:"confidence"`
	Joint      float64   `json:"joint"`
	Valid      bool      `json:"valid"`
	Layers     []int     `json:"layers,omitempty"`
	PerLayer   []float64 `json:"per_layer,omitempty"`
	LatencySec float64   `json:"latency_sec"`
}

// Flight is a bounded ring buffer of the last N verdicts. Recording is
// a short critical section (one slot write); snapshots copy out under
// the same lock. Nil-safe throughout.
type Flight struct {
	mu   sync.Mutex
	ring []Entry
	next int
	n    int // entries recorded so far, saturating at len(ring)
	seq  uint64
}

// NewFlight returns a recorder keeping the last size entries, or nil
// when size <= 0 (recorder disabled).
func NewFlight(size int) *Flight {
	if size <= 0 {
		return nil
	}
	return &Flight{ring: make([]Entry, size)}
}

// Record stores one entry, overwriting the oldest when full. The
// sequence number is assigned here, monotonically.
func (f *Flight) Record(e Entry) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	e.Seq = f.seq
	f.ring[f.next] = e
	f.next = (f.next + 1) % len(f.ring)
	if f.n < len(f.ring) {
		f.n++
	}
}

// Len returns the number of entries currently held.
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Filter selects flight entries. Zero value matches everything.
type Filter struct {
	Valid   *bool  // match entries whose Valid equals this (verdict-bearing outcomes only)
	Class   *int   // match entries whose Label equals this
	Outcome string // match entries with this outcome
	Limit   int    // max entries returned; <= 0 means all
}

// verdictBearing reports whether the outcome carried an actual verdict
// (so Valid/Label/PerLayer are meaningful).
func verdictBearing(outcome string) bool {
	return outcome == OutcomeOK || outcome == OutcomeQuarantined
}

// Snapshot returns matching entries newest-first. PerLayer/Layers
// slices are shared with the ring's stored entries — they are written
// once at record time and never mutated, so sharing is safe.
func (f *Flight) Snapshot(fl Filter) []Entry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Entry, 0, f.n)
	for i := 0; i < f.n; i++ {
		// Walk backwards from the most recently written slot.
		idx := (f.next - 1 - i + len(f.ring)*2) % len(f.ring)
		e := f.ring[idx]
		if fl.Valid != nil && (!verdictBearing(e.Outcome) || e.Valid != *fl.Valid) {
			continue
		}
		if fl.Class != nil && (!verdictBearing(e.Outcome) || e.Label != *fl.Class) {
			continue
		}
		if fl.Outcome != "" && e.Outcome != fl.Outcome {
			continue
		}
		out = append(out, e)
		if fl.Limit > 0 && len(out) >= fl.Limit {
			break
		}
	}
	return out
}
