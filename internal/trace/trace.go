// Package trace is the request-scoped observability layer for the
// serving path: per-verdict trace IDs and span trees, a deterministic
// head sampler, a bounded trace store, a flight recorder of recent
// verdicts, and a drift watch comparing the live per-layer discrepancy
// distribution against the fit-time reference persisted in the
// Validator. The paper's diagnostic signal is the per-layer
// discrepancy d_i (Eq. 2) — this package is what keeps d_i visible per
// request in production instead of collapsing it into the joint score.
//
// Like internal/telemetry, everything here is nil-safe: a nil *Store,
// *Flight, or *DriftWatch no-ops on every method, so the disabled path
// stays allocation-free and branch-light.
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// HeaderTraceID is the HTTP request/response header carrying the trace
// ID through the serving path.
const HeaderTraceID = "X-DV-Trace-Id"

// maxIDLen bounds accepted trace IDs; anything longer is rejected so a
// hostile client cannot use the header as a memory amplifier.
const maxIDLen = 64

// NewID returns a fresh random trace ID: 16 lowercase hex characters.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable; fall back to a fixed ID
		// rather than panicking the serving path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidID reports whether s is an acceptable trace ID: 1–64 characters
// from [A-Za-z0-9._-]. The charset is deliberately narrow — IDs are
// echoed into response headers, URL paths (/debug/dv/trace/{id}), and
// JSON, so nothing that needs escaping is allowed.
func ValidID(s string) bool {
	if len(s) == 0 || len(s) > maxIDLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// FromHeader parses a client-supplied trace-ID header value: surrounding
// whitespace is trimmed, then the result must pass ValidID. It returns
// the cleaned ID and whether it was usable; an empty or invalid header
// yields ("", false) and the caller generates an ID instead.
func FromHeader(v string) (string, bool) {
	v = strings.TrimSpace(v)
	if !ValidID(v) {
		return "", false
	}
	return v, true
}

// ItemID derives the trace ID for item i of a batch request from the
// request's base ID, as base.i — '.' keeps the result a ValidID and
// safe in a URL path segment.
func ItemID(base string, i int) string {
	return base + "." + strconv.Itoa(i)
}

// Sampler decides deterministically whether a trace ID is head-sampled:
// the FNV-1a hash of the ID is compared against a threshold derived
// from the sampling rate, so the same ID always gets the same decision
// regardless of process, replica, or time — replaying a request with
// the same injected ID reproduces its sampling fate.
type Sampler struct {
	threshold uint64
	always    bool
}

// NewSampler returns a sampler keeping approximately rate of IDs.
// rate <= 0 returns nil (never sample; nil-safe), rate >= 1 always
// samples.
func NewSampler(rate float64) *Sampler {
	if rate <= 0 || math.IsNaN(rate) {
		return nil
	}
	if rate >= 1 {
		return &Sampler{always: true}
	}
	return &Sampler{threshold: uint64(rate * float64(math.MaxUint64))}
}

// Sample reports whether the ID is kept. A nil Sampler keeps nothing.
func (s *Sampler) Sample(id string) bool {
	if s == nil {
		return false
	}
	if s.always {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	return h.Sum64() < s.threshold
}
