package corner

import (
	"math"
	"math/rand"
	"testing"

	"deepvalidation/internal/tensor"
)

func TestSpacesCoverFamiliesAndGeometry(t *testing.T) {
	gray := Spaces(true, 8, 8)
	color := Spaces(false, 8, 8)
	if len(gray) != len(color)+1 {
		t.Fatalf("grayscale spaces = %d, color = %d (complement must be grayscale-only)", len(gray), len(color))
	}
	names := map[string]bool{}
	for _, s := range gray {
		if names[s.Family] {
			t.Fatalf("duplicate family %q", s.Family)
		}
		names[s.Family] = true
	}
	if _, ok := SpaceByFamily(gray, "complement"); !ok {
		t.Fatal("grayscale spaces miss complement")
	}
	if _, ok := SpaceByFamily(color, "complement"); ok {
		t.Fatal("color spaces include complement")
	}
	if _, ok := SpaceByFamily(gray, "no-such-family"); ok {
		t.Fatal("SpaceByFamily invented a family")
	}

	// Pixel-denominated ranges must scale with the image.
	small, _ := SpaceByFamily(Spaces(true, 8, 8), "translation")
	large, _ := SpaceByFamily(Spaces(true, 28, 28), "translation")
	if small.Params[0].Max >= large.Params[0].Max {
		t.Fatalf("translation range did not grow with the image: %v vs %v",
			small.Params[0].Max, large.Params[0].Max)
	}
}

func TestSpacesSampleClampNeutral(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	img := tensor.New(1, 8, 8).FillUniform(rng, 0, 1)
	for _, sp := range Spaces(true, 8, 8) {
		for trial := 0; trial < 50; trial++ {
			p := sp.Sample(rng)
			if len(p) != len(sp.Params) {
				t.Fatalf("%s: Sample returned %d params, want %d", sp.Family, len(p), len(sp.Params))
			}
			for i, r := range sp.Params {
				if p[i] < r.Min || p[i] > r.Max {
					t.Fatalf("%s: sampled %s = %v outside [%v, %v]", sp.Family, r.Name, p[i], r.Min, r.Max)
				}
			}
			out := sp.Make(p).Apply(img)
			for _, v := range out.Data {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: sampled transform produced non-finite pixels", sp.Family)
				}
			}
		}

		// Clamp must repair anything, NaNs included, in place.
		wild := make([]float64, len(sp.Params))
		for i := range wild {
			switch i % 3 {
			case 0:
				wild[i] = math.NaN()
			case 1:
				wild[i] = -1e18
			default:
				wild[i] = 1e18
			}
		}
		got := sp.Clamp(wild)
		for i, r := range sp.Params {
			if got[i] < r.Min || got[i] > r.Max || math.IsNaN(got[i]) {
				t.Fatalf("%s: Clamp left %s = %v outside [%v, %v]", sp.Family, r.Name, got[i], r.Min, r.Max)
			}
		}
		out := sp.Make(got).Apply(img)
		for _, v := range out.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: clamped wild transform produced non-finite pixels", sp.Family)
			}
		}

		// The neutral vector must be a (near) no-op for every family that
		// has parameters; noise with σ=0 and blur with σ=0 included.
		if len(sp.Params) == 0 {
			continue
		}
		if sp.Family == "occlusion" {
			// Occlusion has no true no-op: its minimal patch is 1 px.
			continue
		}
		out = sp.Make(sp.Neutral()).Apply(img)
		for i, v := range out.Data {
			if math.Abs(v-img.Data[i]) > 1e-9 {
				t.Fatalf("%s: neutral transform moved pixel %d: %v -> %v", sp.Family, i, img.Data[i], v)
			}
		}
	}
}

func TestSelectSeedsSeededDeterminism(t *testing.T) {
	net := toyNet(t)
	testX, testY := toyProblem(rand.New(rand.NewSource(50)), 60)
	pick := func(seed int64) []int {
		xs, ys, err := SelectSeeds(net, testX, testY, 10, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		idx := make([]int, len(xs))
		for i, x := range xs {
			found := -1
			for j := range testX {
				if testX[j] == x {
					found = j
					break
				}
			}
			if found < 0 {
				t.Fatal("SelectSeeds returned an image not in the test set")
			}
			if testY[found] != ys[i] {
				t.Fatal("SelectSeeds mislabeled a seed")
			}
			idx[i] = found
		}
		return idx
	}
	a, b := pick(7), pick(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed picked different images: %v vs %v", a, b)
		}
	}
	c := pick(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds picked identical seed sets (suspicious for a 60-image pool)")
	}
}
