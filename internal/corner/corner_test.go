package corner

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"deepvalidation/internal/imgtrans"
	"deepvalidation/internal/nn"
	"deepvalidation/internal/opt"
	"deepvalidation/internal/tensor"
)

// toyProblem builds a linearly separable 3-class problem on 1×8×8
// images (bright band at a class-specific height).
func toyProblem(rng *rand.Rand, n int) (xs []*tensor.Tensor, ys []int) {
	for i := 0; i < n; i++ {
		k := rng.Intn(3)
		img := tensor.New(1, 8, 8).FillUniform(rng, 0, 0.15)
		for y := 2 * k; y < 2*k+3; y++ {
			for x := 0; x < 8; x++ {
				img.Set(0.8+0.2*rng.Float64(), 0, y, x)
			}
		}
		xs = append(xs, img)
		ys = append(ys, k)
	}
	return xs, ys
}

var fixture struct {
	once sync.Once
	net  *nn.Network
	err  error
}

func toyNet(t *testing.T) *nn.Network {
	t.Helper()
	fixture.once.Do(func() {
		rng := rand.New(rand.NewSource(11))
		net, err := nn.NewSevenLayerCNN("toy", 1, 8, 3, nn.ArchConfig{Width: 4, FCWidth: 16}, rng)
		if err != nil {
			fixture.err = err
			return
		}
		xs, ys := toyProblem(rng, 150)
		tr := nn.NewTrainer(net, opt.NewAdadelta(1.0, 0.95), rand.New(rand.NewSource(12)))
		tr.BatchSize = 16
		stats, err := tr.Train(xs, ys, 20)
		if err != nil {
			fixture.err = err
			return
		}
		if acc := stats[len(stats)-1].Accuracy; acc < 0.95 {
			fixture.err = fmt.Errorf("toy accuracy %v too low", acc)
			return
		}
		fixture.net = net
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	return fixture.net
}

func seeds(t *testing.T, n int) ([]*tensor.Tensor, []int) {
	t.Helper()
	net := toyNet(t)
	rng := rand.New(rand.NewSource(50))
	testX, testY := toyProblem(rng, 3*n)
	xs, ys, err := SelectSeeds(net, testX, testY, n, rng)
	if err != nil {
		t.Fatal(err)
	}
	return xs, ys
}

func TestFamiliesGrayscaleGetsComplement(t *testing.T) {
	withC := Families(true)
	without := Families(false)
	if len(withC) != len(without)+1 {
		t.Fatalf("grayscale families = %d, color = %d", len(withC), len(without))
	}
	names := map[string]bool{}
	for _, f := range withC {
		if names[f.Name] {
			t.Fatalf("duplicate family %q", f.Name)
		}
		names[f.Name] = true
		if len(f.Grid) == 0 {
			t.Fatalf("family %q has empty grid", f.Name)
		}
	}
	if !names["complement"] {
		t.Fatal("complement missing for greyscale")
	}
	for _, f := range without {
		if f.Name == "complement" {
			t.Fatal("complement offered for color images")
		}
	}
	// All six Table IV families plus complement.
	for _, want := range []string{"brightness", "contrast", "rotation", "shear", "scale", "translation"} {
		if !names[want] {
			t.Fatalf("family %q missing", want)
		}
	}
}

func TestGenerateIdentityHasZeroSuccess(t *testing.T) {
	net := toyNet(t)
	xs, ys := seeds(t, 30)
	g := Generate(net, xs, ys, "identity", imgtrans.Identity{})
	if g.SuccessRate != 0 {
		t.Fatalf("identity success rate = %v on correctly classified seeds", g.SuccessRate)
	}
	if len(g.Images) != 30 || len(g.Preds) != 30 || len(g.Confs) != 30 {
		t.Fatal("output arity mismatch")
	}
	scc, _ := g.SCC()
	fcc, fccLabels := g.FCC()
	if len(scc) != 0 || len(fcc) != 30 {
		t.Fatalf("SCC/FCC split %d/%d, want 0/30", len(scc), len(fcc))
	}
	if len(fccLabels) != 30 {
		t.Fatal("FCC labels missing")
	}
}

func TestGenerateComplementBreaksToyModel(t *testing.T) {
	// The toy model has only ever seen bright-band-on-dark images;
	// complement inverts them entirely.
	net := toyNet(t)
	xs, ys := seeds(t, 30)
	g := Generate(net, xs, ys, "complement", imgtrans.Complement{})
	scc, sccLabels := g.SCC()
	fcc, _ := g.FCC()
	if len(scc)+len(fcc) != 30 {
		t.Fatalf("SCC+FCC = %d, want 30", len(scc)+len(fcc))
	}
	if len(scc) != len(sccLabels) {
		t.Fatal("SCC labels mismatch")
	}
	wantRate := float64(len(scc)) / 30
	if g.SuccessRate != wantRate {
		t.Fatalf("success rate %v inconsistent with SCC count %d", g.SuccessRate, len(scc))
	}
}

func TestGenerateMeanWrongConfidence(t *testing.T) {
	net := toyNet(t)
	xs, ys := seeds(t, 20)
	g := Generate(net, xs, ys, "complement", imgtrans.Complement{})
	if g.SuccessRate > 0 {
		if g.MeanWrongConfidence <= 0 || g.MeanWrongConfidence > 1 {
			t.Fatalf("mean wrong confidence = %v", g.MeanWrongConfidence)
		}
	} else if g.MeanWrongConfidence != 0 {
		t.Fatal("confidence reported without successes")
	}
}

func TestSearchStopsAtTarget(t *testing.T) {
	net := toyNet(t)
	xs, ys := seeds(t, 30)
	fams := Families(true)
	results := Search(net, xs, ys, fams)
	if len(results) != len(fams) {
		t.Fatalf("results = %d, want %d", len(results), len(fams))
	}
	for _, r := range results {
		if !r.Kept {
			continue
		}
		if r.Best.SuccessRate < MinSuccess {
			t.Fatalf("%s kept with success %v < %v", r.Family, r.Best.SuccessRate, MinSuccess)
		}
		if r.Steps == 0 {
			t.Fatalf("%s evaluated no grid points", r.Family)
		}
	}
	// On this fragile toy model at least one geometric family must
	// become error-inducing.
	anyKept := false
	for _, r := range results {
		if r.Kept {
			anyKept = true
		}
	}
	if !anyKept {
		t.Fatal("no family produced corner cases on the toy model")
	}
}

func TestSearchEarlyStopDoesNotExhaustGrid(t *testing.T) {
	net := toyNet(t)
	xs, ys := seeds(t, 30)
	// Translation quickly destroys the band position signal, so the
	// search should stop well before the 18-step grid is exhausted.
	results := Search(net, xs, ys, []Family{
		{Name: "translation", Grid: Families(true)[5].Grid},
	})
	r := results[0]
	if !r.Kept {
		t.Skip("translation not error-inducing on this toy model")
	}
	if r.Best.SuccessRate >= TargetSuccess && r.Steps == len(Families(true)[5].Grid) {
		t.Fatal("search hit the target but still walked the whole grid")
	}
}

func TestCombineSearch(t *testing.T) {
	net := toyNet(t)
	xs, ys := seeds(t, 30)
	kept := Search(net, xs, ys, Families(true))
	nKept := 0
	for _, r := range kept {
		if r.Kept {
			nKept++
		}
	}
	if nKept < 2 {
		t.Skip("need at least two kept families to combine")
	}
	g, ok := CombineSearch(net, xs, ys, kept)
	if !ok {
		t.Fatal("no combination cleared the success threshold")
	}
	if g.SuccessRate < MinSuccess {
		t.Fatalf("combined success %v < %v", g.SuccessRate, MinSuccess)
	}
	if g.Family != "combined" {
		t.Fatalf("family = %q", g.Family)
	}
}

func TestCombineSearchEmptyKept(t *testing.T) {
	net := toyNet(t)
	xs, ys := seeds(t, 5)
	if _, ok := CombineSearch(net, xs, ys, nil); ok {
		t.Fatal("combination found with no kept families")
	}
}

func TestSelectSeedsAllCorrect(t *testing.T) {
	net := toyNet(t)
	rng := rand.New(rand.NewSource(60))
	testX, testY := toyProblem(rng, 100)
	xs, ys, err := SelectSeeds(net, testX, testY, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 40 {
		t.Fatalf("seeds = %d", len(xs))
	}
	for i, x := range xs {
		if pred, _ := net.Predict(x); pred != ys[i] {
			t.Fatalf("seed %d misclassified", i)
		}
	}
}

func TestSelectSeedsInsufficient(t *testing.T) {
	net := toyNet(t)
	rng := rand.New(rand.NewSource(61))
	testX, testY := toyProblem(rng, 10)
	if _, _, err := SelectSeeds(net, testX, testY, 50, rng); err == nil {
		t.Fatal("expected error for insufficient seeds")
	}
}

func TestSelectSeedsMismatchedLabels(t *testing.T) {
	net := toyNet(t)
	rng := rand.New(rand.NewSource(62))
	testX, testY := toyProblem(rng, 10)
	if _, _, err := SelectSeeds(net, testX, testY[:5], 2, rng); err == nil {
		t.Fatal("expected error for mismatched labels")
	}
}

func TestMeanDeformation(t *testing.T) {
	a := []*tensor.Tensor{tensor.New(1, 2, 2).Fill(0.5)}
	same := []*tensor.Tensor{tensor.New(1, 2, 2).Fill(0.5)}
	if d := meanDeformation(a, same); d != 0 {
		t.Fatalf("identical deformation = %v", d)
	}
	far := []*tensor.Tensor{tensor.New(1, 2, 2).Fill(1.5)}
	if d := meanDeformation(a, far); d != 1 {
		t.Fatalf("unit offset deformation = %v, want 1", d)
	}
	if d := meanDeformation(nil, nil); d != 0 {
		t.Fatalf("empty deformation = %v", d)
	}
}
