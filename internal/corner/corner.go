// Package corner synthesizes real-world corner cases by metamorphic
// testing (paper Section III-A): it applies naturally occurring image
// transformations to correctly classified seed images with growing
// distortion, stopping when the model's success rate (1 − accuracy on
// the transformed set) reaches the target, and drops families that
// never become error-inducing (Section IV-B).
package corner

import (
	"fmt"
	"math"
	"math/rand"

	"deepvalidation/internal/imgtrans"
	"deepvalidation/internal/nn"
	"deepvalidation/internal/tensor"
)

// Family is one parameterized transformation family with its search
// grid ordered by increasing distortion strength (Table IV). The grids
// here follow the paper's ranges with coarser steps, which keeps the
// trial-and-error search CPU-tractable without changing the procedure.
type Family struct {
	Name string
	Grid []imgtrans.Transform
}

// Families returns the transformation families applicable to a
// dataset. Complement only applies to greyscale images: "the
// complements of color images look peculiar and are unlikely to appear
// in reality" (Section III-A1).
func Families(grayscale bool) []Family {
	var fams []Family

	var brightness Family
	brightness.Name = "brightness"
	for b := 0.05; b <= 0.95; b += 0.05 {
		brightness.Grid = append(brightness.Grid, imgtrans.Brightness{Beta: b})
	}
	fams = append(fams, brightness)

	var contrast Family
	contrast.Name = "contrast"
	// Distortion grows away from α = 1 in both directions; interleave
	// amplification and attenuation by growing |log α|.
	for i := 1; i <= 16; i++ {
		up := 1 + float64(i)*0.25
		contrast.Grid = append(contrast.Grid, imgtrans.Contrast{Alpha: up})
	}
	fams = append(fams, contrast)

	var rotation Family
	rotation.Name = "rotation"
	for th := 2.0; th <= 70; th += 2 {
		rotation.Grid = append(rotation.Grid, imgtrans.Rotation(th))
	}
	fams = append(fams, rotation)

	var shear Family
	shear.Name = "shear"
	for s := 0.05; s <= 0.5+1e-9; s += 0.05 {
		shear.Grid = append(shear.Grid, imgtrans.Shear(s, 0.75*s))
	}
	fams = append(fams, shear)

	var scale Family
	scale.Name = "scale"
	for s := 0.95; s >= 0.4-1e-9; s -= 0.05 {
		scale.Grid = append(scale.Grid, imgtrans.Scale(s, s))
	}
	fams = append(fams, scale)

	var translation Family
	translation.Name = "translation"
	for t := 1.0; t <= 18; t++ {
		translation.Grid = append(translation.Grid, imgtrans.Translation(t, math.Ceil(0.75*t)))
	}
	fams = append(fams, translation)

	if grayscale {
		fams = append(fams, Family{
			Name: "complement",
			Grid: []imgtrans.Transform{imgtrans.Complement{}},
		})
	}
	return fams
}

// Search thresholds from Section IV-B: stop a family's grid walk once
// the success rate reaches TargetSuccess; discard families that never
// exceed MinSuccess.
const (
	TargetSuccess = 0.60
	MinSuccess    = 0.30
)

// Generated is the outcome of applying one transformation to every
// seed.
type Generated struct {
	Family    string
	Transform imgtrans.Transform
	// Images[i] is the transformed seeds[i].
	Images []*tensor.Tensor
	// SeedLabels[i] is the original (preserved) label.
	SeedLabels []int
	// Preds[i] and Confs[i] are the model's prediction on Images[i].
	Preds []int
	Confs []float64
	// SuccessRate is 1 − accuracy on Images (the fraction of SCCs).
	SuccessRate float64
	// MeanWrongConfidence averages the model's top-1 confidence over
	// the successful corner cases, Table V's last column.
	MeanWrongConfidence float64
}

// Generate applies tr to every seed and records the model's behaviour.
func Generate(net *nn.Network, seeds []*tensor.Tensor, labels []int, family string, tr imgtrans.Transform) Generated {
	g := Generated{
		Family:     family,
		Transform:  tr,
		SeedLabels: labels,
	}
	wrong := 0
	wrongConf := 0.0
	for i, s := range seeds {
		img := tr.Apply(s)
		pred, conf := net.Predict(img)
		g.Images = append(g.Images, img)
		g.Preds = append(g.Preds, pred)
		g.Confs = append(g.Confs, conf)
		if pred != labels[i] {
			wrong++
			wrongConf += conf
		}
	}
	if len(seeds) > 0 {
		g.SuccessRate = float64(wrong) / float64(len(seeds))
	}
	if wrong > 0 {
		g.MeanWrongConfidence = wrongConf / float64(wrong)
	}
	return g
}

// SCC returns the successful corner cases (misclassified) and FCC the
// failed ones, the split of Section IV-D1.
func (g Generated) SCC() (imgs []*tensor.Tensor, seedLabels []int) {
	for i, img := range g.Images {
		if g.Preds[i] != g.SeedLabels[i] {
			imgs = append(imgs, img)
			seedLabels = append(seedLabels, g.SeedLabels[i])
		}
	}
	return imgs, seedLabels
}

// FCC returns the failed corner cases (still classified correctly).
func (g Generated) FCC() (imgs []*tensor.Tensor, seedLabels []int) {
	for i, img := range g.Images {
		if g.Preds[i] == g.SeedLabels[i] {
			imgs = append(imgs, img)
			seedLabels = append(seedLabels, g.SeedLabels[i])
		}
	}
	return imgs, seedLabels
}

// SearchResult reports one family's grid search.
type SearchResult struct {
	Family string
	// Kept is false when the family never reached MinSuccess on this
	// model/dataset (a "-" row of Table V).
	Kept bool
	// Best is the selected configuration's outcome (valid when Kept).
	Best Generated
	// Steps is how many grid points were evaluated.
	Steps int
}

// Search walks each family's grid in increasing distortion until the
// success rate reaches TargetSuccess, mirroring "the search stops when
// the average accuracy of the model on the transformed image set starts
// to drop by a notable margin" realized as the ≈60% success-rate
// criterion of Section IV-B.
func Search(net *nn.Network, seeds []*tensor.Tensor, labels []int, fams []Family) []SearchResult {
	out := make([]SearchResult, 0, len(fams))
	for _, fam := range fams {
		res := SearchResult{Family: fam.Name}
		var best Generated
		for _, tr := range fam.Grid {
			res.Steps++
			g := Generate(net, seeds, labels, fam.Name, tr)
			if g.SuccessRate > best.SuccessRate || best.Images == nil {
				best = g
			}
			if g.SuccessRate >= TargetSuccess {
				break
			}
		}
		if best.SuccessRate >= MinSuccess {
			res.Kept = true
			res.Best = best
		}
		out = append(out, res)
	}
	return out
}

// CombineSearch evaluates pairwise combinations of the kept families'
// final parameters and picks, among pairs clearing MinSuccess, the one
// with the smallest deformation — quantified as the mean per-pixel L2
// distance from the seeds, realizing "we select one transformation
// combination ... that results in the smallest deformation"
// (Section IV-B).
func CombineSearch(net *nn.Network, seeds []*tensor.Tensor, labels []int, kept []SearchResult) (Generated, bool) {
	var best Generated
	bestDeform := math.Inf(1)
	found := false
	for i := 0; i < len(kept); i++ {
		for j := 0; j < len(kept); j++ {
			if i == j || !kept[i].Kept || !kept[j].Kept {
				continue
			}
			tr := imgtrans.Compose{
				First:  kept[i].Best.Transform,
				Second: kept[j].Best.Transform,
			}
			g := Generate(net, seeds, labels, "combined", tr)
			if g.SuccessRate < MinSuccess {
				continue
			}
			d := meanDeformation(seeds, g.Images)
			if d < bestDeform {
				bestDeform = d
				best = g
				found = true
			}
		}
	}
	return best, found
}

func meanDeformation(seeds, transformed []*tensor.Tensor) float64 {
	if len(seeds) == 0 {
		return 0
	}
	s := 0.0
	for i := range seeds {
		diff := seeds[i].Sub(transformed[i])
		s += diff.L2Norm() / math.Sqrt(float64(diff.Len()))
	}
	return s / float64(len(seeds))
}

// SelectSeeds samples n test images that the model classifies
// correctly, the seed-set construction of Section IV-B ("We make sure
// that all get correctly classified before any modification").
func SelectSeeds(net *nn.Network, testX []*tensor.Tensor, testY []int, n int, rng *rand.Rand) ([]*tensor.Tensor, []int, error) {
	if len(testX) != len(testY) {
		return nil, nil, fmt.Errorf("corner: %d images but %d labels", len(testX), len(testY))
	}
	perm := rng.Perm(len(testX))
	var xs []*tensor.Tensor
	var ys []int
	for _, i := range perm {
		if len(xs) == n {
			break
		}
		if pred, _ := net.Predict(testX[i]); pred == testY[i] {
			xs = append(xs, testX[i])
			ys = append(ys, testY[i])
		}
	}
	if len(xs) < n {
		return nil, nil, fmt.Errorf("corner: only %d of %d requested correctly classified seeds available", len(xs), n)
	}
	return xs, ys, nil
}
