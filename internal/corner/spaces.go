package corner

import (
	"math"
	"math/rand"

	"deepvalidation/internal/imgtrans"
)

// ParamRange bounds one continuous parameter of a transformation
// family. Neutral is the value at which the parameter distorts nothing
// (β = 0, α = 1, θ = 0, ...); minimizers shrink escapes toward it.
type ParamRange struct {
	Name              string
	Min, Max, Neutral float64
}

// Space is one transformation family's continuous parameter space —
// the search domain the corner-case miner explores, generalizing the
// fixed grids of Families to arbitrary points. Make materializes a
// parameter vector (one value per ParamRange, already clamped) into a
// concrete transform.
type Space struct {
	Family string
	Params []ParamRange
	Make   func(p []float64) imgtrans.Transform
}

// Sample draws a uniform random parameter vector from the space.
func (s Space) Sample(rng *rand.Rand) []float64 {
	p := make([]float64, len(s.Params))
	for i, r := range s.Params {
		p[i] = r.Min + rng.Float64()*(r.Max-r.Min)
	}
	return p
}

// Clamp forces p into the space's bounds in place (NaNs land on the
// neutral value) and returns it, so arbitrary inputs — a fuzzer's raw
// bytes, an over-stepped mutation — always materialize into a
// well-defined transform.
func (s Space) Clamp(p []float64) []float64 {
	for i, r := range s.Params {
		switch {
		case math.IsNaN(p[i]):
			p[i] = r.Neutral
		case p[i] < r.Min:
			p[i] = r.Min
		case p[i] > r.Max:
			p[i] = r.Max
		}
	}
	return p
}

// Neutral returns the no-op parameter vector.
func (s Space) Neutral() []float64 {
	p := make([]float64, len(s.Params))
	for i, r := range s.Params {
		p[i] = r.Neutral
	}
	return p
}

// Spaces returns the parameterized transformation spaces for images of
// the given geometry. The ranges follow Table IV where the paper fixes
// them (brightness, contrast, rotation, shear) and scale with the image
// for the pixel-denominated families (translation, occlusion), so the
// same search runs on 8×8 toy images and 28×28 digits. Complement is
// grayscale-only, as in Families. Scale's lower bound stays well away
// from zero: a zero scale ratio is a singular affine matrix.
func Spaces(grayscale bool, height, width int) []Space {
	h, w := float64(height), float64(width)
	maxShift := math.Max(1, 0.6*math.Min(h, w))
	maxPatch := math.Max(1, math.Floor(math.Min(h, w)/2))
	spaces := []Space{
		{
			Family: "brightness",
			Params: []ParamRange{{Name: "beta", Min: -0.95, Max: 0.95, Neutral: 0}},
			Make: func(p []float64) imgtrans.Transform {
				return imgtrans.Brightness{Beta: p[0]}
			},
		},
		{
			Family: "contrast",
			Params: []ParamRange{{Name: "alpha", Min: 0.2, Max: 5, Neutral: 1}},
			Make: func(p []float64) imgtrans.Transform {
				return imgtrans.Contrast{Alpha: p[0]}
			},
		},
		{
			Family: "rotation",
			Params: []ParamRange{{Name: "theta_deg", Min: -70, Max: 70, Neutral: 0}},
			Make: func(p []float64) imgtrans.Transform {
				return imgtrans.Rotation(p[0])
			},
		},
		{
			Family: "shear",
			Params: []ParamRange{
				{Name: "s_h", Min: -0.5, Max: 0.5, Neutral: 0},
				{Name: "s_v", Min: -0.5, Max: 0.5, Neutral: 0},
			},
			Make: func(p []float64) imgtrans.Transform {
				return imgtrans.Shear(p[0], p[1])
			},
		},
		{
			Family: "scale",
			Params: []ParamRange{
				{Name: "s_x", Min: 0.4, Max: 1.6, Neutral: 1},
				{Name: "s_y", Min: 0.4, Max: 1.6, Neutral: 1},
			},
			Make: func(p []float64) imgtrans.Transform {
				return imgtrans.Scale(p[0], p[1])
			},
		},
		{
			Family: "translation",
			Params: []ParamRange{
				{Name: "t_x", Min: -maxShift, Max: maxShift, Neutral: 0},
				{Name: "t_y", Min: -maxShift, Max: maxShift, Neutral: 0},
			},
			Make: func(p []float64) imgtrans.Transform {
				return imgtrans.Translation(math.Round(p[0]), math.Round(p[1]))
			},
		},
		{
			Family: "blur",
			Params: []ParamRange{{Name: "sigma", Min: 0, Max: 4, Neutral: 0}},
			Make: func(p []float64) imgtrans.Transform {
				return imgtrans.GaussianBlur{Sigma: p[0]}
			},
		},
		{
			Family: "noise",
			Params: []ParamRange{
				{Name: "sigma", Min: 0, Max: 0.3, Neutral: 0},
				{Name: "seed", Min: 0, Max: 1 << 20, Neutral: 0},
			},
			Make: func(p []float64) imgtrans.Transform {
				return imgtrans.AdditiveNoise{Sigma: p[0], Seed: int64(math.Round(p[1]))}
			},
		},
		{
			Family: "occlusion",
			Params: []ParamRange{
				{Name: "x", Min: 0, Max: math.Max(0, w-1), Neutral: 0},
				{Name: "y", Min: 0, Max: math.Max(0, h-1), Neutral: 0},
				{Name: "size", Min: 1, Max: maxPatch, Neutral: 1},
				{Name: "fill", Min: 0, Max: 1, Neutral: 0},
			},
			Make: func(p []float64) imgtrans.Transform {
				return imgtrans.Occlusion{
					X:    int(math.Round(p[0])),
					Y:    int(math.Round(p[1])),
					Size: int(math.Round(p[2])),
					Fill: p[3],
				}
			},
		},
	}
	if grayscale {
		spaces = append(spaces, Space{
			Family: "complement",
			Make: func([]float64) imgtrans.Transform {
				return imgtrans.Complement{}
			},
		})
	}
	return spaces
}

// SpaceByFamily finds a family's space by name.
func SpaceByFamily(spaces []Space, family string) (Space, bool) {
	for _, s := range spaces {
		if s.Family == family {
			return s, true
		}
	}
	return Space{}, false
}
