package svm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// gaussianCluster samples n points from N(center, sigma²·I) in dim d.
func gaussianCluster(rng *rand.Rand, n, d int, center, sigma float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, d)
		for j := range row {
			row[j] = center + sigma*rng.NormFloat64()
		}
		out[i] = row
	}
	return out
}

func TestTrainSeparatesClusterFromOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := gaussianCluster(rng, 200, 2, 0, 1)
	m, err := Train(data, Config{Nu: 0.1, Kernel: KernelRBF})
	if err != nil {
		t.Fatal(err)
	}
	// Center of the cluster: clearly inside.
	if d := m.Decision([]float64{0, 0}); d <= 0 {
		t.Fatalf("decision at cluster center = %v, want > 0", d)
	}
	// Far away: clearly outside.
	if d := m.Decision([]float64{10, 10}); d >= 0 {
		t.Fatalf("decision far from cluster = %v, want < 0", d)
	}
	if m.Predict([]float64{0, 0}) != 1 || m.Predict([]float64{10, 10}) != -1 {
		t.Fatal("Predict signs wrong")
	}
}

func TestNuControlsTrainingOutlierFraction(t *testing.T) {
	// The ν-property: the fraction of training points classified as
	// outliers is at most ν (asymptotically ≈ ν), and the fraction of
	// support vectors is at least ν.
	rng := rand.New(rand.NewSource(2))
	data := gaussianCluster(rng, 300, 3, 0, 1)
	for _, nu := range []float64{0.05, 0.1, 0.3} {
		m, err := Train(data, Config{Nu: nu, Kernel: KernelRBF})
		if err != nil {
			t.Fatal(err)
		}
		outliers := 0
		for _, x := range data {
			if m.Decision(x) < 0 {
				outliers++
			}
		}
		frac := float64(outliers) / float64(len(data))
		if frac > nu+0.05 {
			t.Errorf("nu=%v: training outlier fraction %v exceeds nu", nu, frac)
		}
		svFrac := float64(m.NumSupport()) / float64(len(data))
		if svFrac < nu-0.05 {
			t.Errorf("nu=%v: SV fraction %v below nu", nu, svFrac)
		}
	}
}

func TestAlphaConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := gaussianCluster(rng, 150, 2, 0, 1)
	nu := 0.2
	m, err := Train(data, Config{Nu: nu, Kernel: KernelRBF})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, a := range m.Alpha {
		if a < -1e-12 || a > 1+1e-12 {
			t.Fatalf("alpha %v outside [0,1]", a)
		}
		sum += a
	}
	want := nu * float64(len(data))
	if math.Abs(sum-want) > 1e-6 {
		t.Fatalf("sum(alpha) = %v, want %v", sum, want)
	}
}

func TestDecisionContinuityNearBoundary(t *testing.T) {
	// Walking outward from the center, the decision value must
	// decrease (RBF on an isotropic cluster).
	rng := rand.New(rand.NewSource(4))
	data := gaussianCluster(rng, 200, 2, 0, 1)
	m, err := Train(data, Config{Nu: 0.1, Kernel: KernelRBF})
	if err != nil {
		t.Fatal(err)
	}
	// The surface need not be strictly radially monotone, but moving
	// clearly outside the cluster must strictly lower the score.
	d0 := m.Decision([]float64{0, 0})
	d3 := m.Decision([]float64{3, 0})
	d6 := m.Decision([]float64{6, 0})
	if !(d0 > d3 && d3 > d6) {
		t.Fatalf("decision not decreasing outward: f(0)=%v f(3)=%v f(6)=%v", d0, d3, d6)
	}
}

func TestLinearKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Points on the positive orthant shell; linear one-class SVM
	// separates from the origin direction.
	data := make([][]float64, 100)
	for i := range data {
		data[i] = []float64{1 + 0.2*rng.NormFloat64(), 1 + 0.2*rng.NormFloat64()}
	}
	m, err := Train(data, Config{Nu: 0.1, Kernel: KernelLinear})
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Decision([]float64{1, 1}); d <= 0 {
		t.Fatalf("decision at data mean = %v, want > 0", d)
	}
	if d := m.Decision([]float64{-2, -2}); d >= 0 {
		t.Fatalf("decision opposite the data = %v, want < 0", d)
	}
}

func TestTrainValidation(t *testing.T) {
	good := [][]float64{{1, 2}, {3, 4}}
	tests := []struct {
		name string
		data [][]float64
		cfg  Config
	}{
		{"empty", nil, DefaultConfig()},
		{"zero-dim", [][]float64{{}}, DefaultConfig()},
		{"ragged", [][]float64{{1, 2}, {3}}, DefaultConfig()},
		{"nu zero", good, Config{Nu: 0, Kernel: KernelRBF}},
		{"nu > 1", good, Config{Nu: 1.5, Kernel: KernelRBF}},
		{"bad kernel", good, Config{Nu: 0.5, Kernel: "sigmoid"}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Train(tc.data, tc.cfg); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestDecisionDimMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, err := Train(gaussianCluster(rng, 50, 2, 0, 1), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Decision([]float64{1, 2, 3})
}

func TestDeterministicTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := gaussianCluster(rng, 120, 3, 0, 1)
	a, err := Train(data, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(data, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Rho != b.Rho || a.NumSupport() != b.NumSupport() {
		t.Fatal("training is not deterministic")
	}
}

func TestScaleGammaHeuristic(t *testing.T) {
	// For unit-variance data in d dims, gamma ≈ 1/d.
	rng := rand.New(rand.NewSource(8))
	data := gaussianCluster(rng, 2000, 4, 0, 1)
	g := scaleGamma(data)
	if g < 0.15 || g > 0.40 {
		t.Fatalf("scale gamma = %v, want ≈ 0.25", g)
	}
	// Constant data must not divide by zero.
	if g := scaleGamma([][]float64{{1, 1}, {1, 1}}); math.IsInf(g, 0) || math.IsNaN(g) {
		t.Fatalf("degenerate gamma = %v", g)
	}
}

func TestNuOneUsesAllPointsAsSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := gaussianCluster(rng, 50, 2, 0, 1)
	m, err := Train(data, Config{Nu: 1, Kernel: KernelRBF})
	if err != nil {
		t.Fatal(err)
	}
	// With ν=1 every α is forced to its upper bound: all points are
	// (bounded) support vectors — the Parzen-window limit.
	if m.NumSupport() != len(data) {
		t.Fatalf("support vectors = %d, want %d", m.NumSupport(), len(data))
	}
}

func TestSmallTrainingSets(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		rng := rand.New(rand.NewSource(int64(10 + n)))
		data := gaussianCluster(rng, n, 2, 0, 1)
		m, err := Train(data, Config{Nu: 0.5, Kernel: KernelRBF})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := m.Decision([]float64{50, 50}); d >= 0 {
			t.Fatalf("n=%d: far point scored inside (%v)", n, d)
		}
	}
}

// Property: translating the training data and the query by the same
// offset leaves the RBF decision value unchanged.
func TestPropertyRBFTranslationInvariance(t *testing.T) {
	f := func(seed int64, shift float64) bool {
		shift = math.Mod(shift, 10)
		if math.IsNaN(shift) {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		data := gaussianCluster(rng, 60, 2, 0, 1)
		shifted := make([][]float64, len(data))
		for i, row := range data {
			shifted[i] = []float64{row[0] + shift, row[1] + shift}
		}
		// Pin gamma so both models use the same bandwidth.
		cfg := Config{Nu: 0.2, Kernel: KernelRBF, Gamma: 0.5}
		a, err := Train(data, cfg)
		if err != nil {
			return false
		}
		b, err := Train(shifted, cfg)
		if err != nil {
			return false
		}
		// SMO stops at tolerance 1e-3, so the two runs may settle at
		// slightly different dual points; the decision values must
		// still agree to that order.
		q := []float64{0.3, -0.2}
		qs := []float64{0.3 + shift, -0.2 + shift}
		return math.Abs(a.Decision(q)-b.Decision(qs)) < 5e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTrain200x64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := gaussianCluster(rng, 200, 64, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(data, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecision(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	data := gaussianCluster(rng, 200, 64, 0, 1)
	m, err := Train(data, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	q := data[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Decision(q)
	}
}

func TestPolyKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data := gaussianCluster(rng, 120, 2, 1, 0.3)
	m, err := Train(data, Config{Nu: 0.1, Kernel: KernelPoly, Gamma: 0.5, Degree: 3, Coef0: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Degree != 3 {
		t.Fatalf("degree = %d", m.Degree)
	}
	if d := m.Decision([]float64{1, 1}); d <= 0 {
		t.Fatalf("decision at cluster center = %v, want > 0", d)
	}
	// Polynomial kernels are directional, not radial: the clear outside
	// is the half-space opposite the data, where an odd-degree kernel
	// goes negative.
	if d := m.Decision([]float64{-5, -5}); d >= 0 {
		t.Fatalf("decision opposite the data = %v, want < 0", d)
	}
}

func TestPolyDefaultDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	data := gaussianCluster(rng, 60, 2, 1, 0.3)
	m, err := Train(data, Config{Nu: 0.2, Kernel: KernelPoly})
	if err != nil {
		t.Fatal(err)
	}
	if m.Degree != 3 {
		t.Fatalf("default degree = %d, want 3", m.Degree)
	}
}
