// Batched decision evaluation.
//
// Deep Validation's serving hot path evaluates f(x) = Σ αᵢK(xᵢ,x) − ρ
// once per (layer, sample); at scale the per-call [][]float64 walk and
// math.Pow dominate. This file provides two batched paths:
//
//   - DecisionBatch / DecisionBatchInto: the production path. It walks a
//     flattened, contiguous support-vector matrix but performs exactly
//     the same floating-point operations in exactly the same order as
//     the scalar Decision, so results are bit-identical — including
//     NaN/±Inf propagation. Golden artifacts pin verdict bits, which
//     makes this the only form the serving path may use.
//
//   - DecisionBatchExpanded: the textbook vectorized form, computing the
//     RBF distance via ‖a−b‖² = ‖a‖² + ‖b‖² − 2a·b with support-vector
//     norms precomputed at training time (OneClass.SVNorms). The
//     expansion reassociates the summation, so results agree with
//     Decision only to a relative tolerance (see ExpandedRelTol) and
//     only for finite inputs: with x containing ±Inf the exact path
//     yields exp(−Inf) = 0 while the expansion yields Inf − Inf = NaN.
//     It exists for offline workloads (drift studies, bulk rescoring)
//     that want the extra arithmetic regularity; nothing bit-pinned may
//     route through it.
package svm

import (
	"fmt"
	"math"
)

// ExpandedRelTol is the documented relative tolerance between
// DecisionBatchExpanded and the scalar Decision for well-conditioned
// finite inputs. The expansion computes ‖a−b‖² by cancellation between
// O(‖a‖²) terms, so the squared distance — and hence the exponent —
// carries a relative error of a few ULP amplified by the ratio
// ‖a‖²/‖a−b‖²; the equivalence battery asserts this bound on random
// models and inputs.
const ExpandedRelTol = 1e-9

// DecisionScratch holds the reusable per-worker buffers of the batched
// decision paths. A DecisionScratch must not be shared between
// concurrently scoring goroutines; pool one per worker.
type DecisionScratch struct {
	kdot []float64
}

// grow returns a length-n buffer, reusing the existing allocation when
// it is large enough.
func (sc *DecisionScratch) grow(n int) []float64 {
	if cap(sc.kdot) < n {
		sc.kdot = make([]float64, n)
	}
	sc.kdot = sc.kdot[:n]
	return sc.kdot
}

// DecisionBatch evaluates f(x) for every row of xs, returning a fresh
// slice. Results are bit-identical to calling Decision per row.
func (m *OneClass) DecisionBatch(xs [][]float64) []float64 {
	return m.DecisionBatchInto(make([]float64, len(xs)), xs)
}

// DecisionBatchInto is DecisionBatch writing into dst; len(dst) must
// equal len(xs). After the one-time flat-matrix build it allocates
// nothing, which is what keeps steady-state scoring on an allocation
// diet. It returns dst.
func (m *OneClass) DecisionBatchInto(dst []float64, xs [][]float64) []float64 {
	if len(dst) != len(xs) {
		panic(fmt.Sprintf("svm: DecisionBatchInto dst holds %d slots for %d inputs", len(dst), len(xs)))
	}
	flat := m.flatSupport()
	d := m.Dim
	switch m.Kind {
	case KernelLinear:
		for bi, x := range xs {
			m.checkDim(x)
			s := 0.0
			for i, a := range m.Alpha {
				s += a * dotFlat(flat[i*d:(i+1)*d], x)
			}
			dst[bi] = s - m.Rho
		}
	case KernelPoly:
		for bi, x := range xs {
			m.checkDim(x)
			s := 0.0
			for i, a := range m.Alpha {
				s += a * ipow(m.Gamma*dotFlat(flat[i*d:(i+1)*d], x)+m.Coef0, m.Degree)
			}
			dst[bi] = s - m.Rho
		}
	default: // RBF
		for bi, x := range xs {
			m.checkDim(x)
			s := 0.0
			// Four support vectors per pass: each squared distance
			// still sums over features in ascending order with its own
			// accumulator, and the kernel contributions are added to s
			// in ascending support-vector order, so the result is
			// bit-identical to the one-vector-at-a-time loop — the four
			// independent accumulator chains just overlap in the FPU.
			i := 0
			for ; i+4 <= len(m.Alpha); i += 4 {
				r0 := flat[i*d : i*d+d]
				r1 := flat[(i+1)*d : (i+1)*d+d]
				r2 := flat[(i+2)*d : (i+2)*d+d]
				r3 := flat[(i+3)*d : (i+3)*d+d]
				var q0, q1, q2, q3 float64
				for j, xv := range x {
					dv0 := r0[j] - xv
					q0 += dv0 * dv0
					dv1 := r1[j] - xv
					q1 += dv1 * dv1
					dv2 := r2[j] - xv
					q2 += dv2 * dv2
					dv3 := r3[j] - xv
					q3 += dv3 * dv3
				}
				s += m.Alpha[i] * math.Exp(-m.Gamma*q0)
				s += m.Alpha[i+1] * math.Exp(-m.Gamma*q1)
				s += m.Alpha[i+2] * math.Exp(-m.Gamma*q2)
				s += m.Alpha[i+3] * math.Exp(-m.Gamma*q3)
			}
			for ; i < len(m.Alpha); i++ {
				row := flat[i*d : (i+1)*d]
				sq := 0.0
				for j, v := range row {
					dv := v - x[j]
					sq += dv * dv
				}
				s += m.Alpha[i] * math.Exp(-m.Gamma*sq)
			}
			dst[bi] = s - m.Rho
		}
	}
	return dst
}

// DecisionBatchExpanded evaluates f(x) for every row of xs using the
// norms-expansion RBF form (see the file comment for the tolerance and
// the finite-input requirement); for linear and polynomial kernels the
// expansion is the exact dot-product arithmetic and results are
// bit-identical to Decision. sc may be nil (a batch-local scratch is
// then allocated). It returns dst; len(dst) must equal len(xs).
func (m *OneClass) DecisionBatchExpanded(dst []float64, xs [][]float64, sc *DecisionScratch) []float64 {
	if m.Kind != KernelRBF {
		return m.DecisionBatchInto(dst, xs)
	}
	if len(dst) != len(xs) {
		panic(fmt.Sprintf("svm: DecisionBatchExpanded dst holds %d slots for %d inputs", len(dst), len(xs)))
	}
	if sc == nil {
		sc = &DecisionScratch{}
	}
	norms := m.EnsureNorms()
	flat := m.flatSupport()
	d := m.Dim
	kdot := sc.grow(len(m.Alpha))
	for bi, x := range xs {
		m.checkDim(x)
		xn := 0.0
		for _, v := range x {
			xn += v * v
		}
		for i := range kdot {
			kdot[i] = dotFlat(flat[i*d:(i+1)*d], x)
		}
		s := 0.0
		for i, a := range m.Alpha {
			sq := norms[i] + xn - 2*kdot[i]
			s += a * math.Exp(-m.Gamma*sq)
		}
		dst[bi] = s - m.Rho
	}
	return dst
}

// EnsureNorms returns the support-vector squared norms, computing and
// caching them into SVNorms when absent — the upgrade path for legacy
// artifacts fitted before the field existed: they decode with SVNorms
// nil, recompute here on first use, and persist the norms on their next
// save. Safe for concurrent callers.
func (m *OneClass) EnsureNorms() []float64 {
	m.normsOnce.Do(func() {
		if len(m.SVNorms) == len(m.Support) && len(m.Support) > 0 {
			return
		}
		m.SVNorms = supportNorms(m.Support)
	})
	return m.SVNorms
}

// supportNorms computes ‖sv‖² per support vector.
func supportNorms(support [][]float64) []float64 {
	out := make([]float64, len(support))
	for i, sv := range support {
		s := 0.0
		for _, v := range sv {
			s += v * v
		}
		out[i] = s
	}
	return out
}

// flatSupport returns the support vectors as one contiguous row-major
// matrix, built once per model. The flat copy keeps the hot loops on a
// single cache-friendly allocation instead of chasing len(Support)
// pointers per evaluation.
func (m *OneClass) flatSupport() []float64 {
	m.flatOnce.Do(func() {
		flat := make([]float64, len(m.Support)*m.Dim)
		for i, sv := range m.Support {
			copy(flat[i*m.Dim:(i+1)*m.Dim], sv)
		}
		m.flat = flat
	})
	return m.flat
}

func (m *OneClass) checkDim(x []float64) {
	if len(x) != m.Dim {
		panic(fmt.Sprintf("svm: Decision input has %d features, model expects %d", len(x), m.Dim))
	}
}

func dotFlat(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// ipow computes base^n for n ≥ 0 by left-to-right iterated
// multiplication — one rounding per step, the same sequence the scalar
// and batched poly kernels share so their results agree bit-for-bit.
// It replaces math.Pow, which costs an order of magnitude more for the
// small integer degrees poly kernels use.
func ipow(base float64, n int) float64 {
	if n <= 0 {
		return 1
	}
	r := base
	for i := 1; i < n; i++ {
		r *= base
	}
	return r
}
