//go:build !race

package svm

// See race_enabled_test.go.
const raceDetectorEnabled = false
