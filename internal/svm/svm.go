// Package svm implements the ν-one-class support vector machine of
// Schölkopf et al. (2001), "Estimating the support of a high-dimensional
// distribution" — the estimator Deep Validation fits per (layer, class)
// to model reference distributions (paper Section III-B2).
//
// The dual problem solved is the libsvm formulation:
//
//	min ½ αᵀQα   s.t.  0 ≤ αᵢ ≤ 1,  Σαᵢ = ν·l,   Q_ij = K(xᵢ, xⱼ)
//
// via sequential minimal optimization with maximal-violating-pair
// working-set selection. The decision function
//
//	f(x) = Σ αᵢ K(xᵢ, x) − ρ
//
// is non-negative on the region holding most of the training mass and
// negative outside — exactly the convention the paper's discrepancy
// DISCREPANCY(y', f_i(x)) := −t(f_i(x)) expects (Eq. 2).
package svm

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// KernelKind selects the kernel function.
type KernelKind string

// Supported kernels.
const (
	KernelRBF    KernelKind = "rbf"
	KernelLinear KernelKind = "linear"
	KernelPoly   KernelKind = "poly"
)

// Config parameterizes training.
type Config struct {
	// Nu bounds the fraction of training outliers from above and the
	// fraction of support vectors from below; must be in (0, 1].
	Nu float64
	// Kernel selects the kernel; RBF is the paper's setting.
	Kernel KernelKind
	// Gamma is the RBF bandwidth (also the polynomial scale). If 0,
	// the scikit-learn "scale" heuristic 1/(d·Var(X)) is used.
	Gamma float64
	// Degree and Coef0 parameterize the polynomial kernel
	// (γ·aᵀb + coef0)^degree; Degree defaults to 3.
	Degree int
	Coef0  float64
	// Tol is the SMO stopping tolerance (default 1e-3).
	Tol float64
	// MaxIter caps SMO iterations (default 100·l, at least 10000).
	MaxIter int
}

// DefaultConfig mirrors scikit-learn's OneClassSVM defaults, which the
// paper's implementation used.
func DefaultConfig() Config {
	return Config{Nu: 0.1, Kernel: KernelRBF}
}

// OneClass is a trained one-class SVM. Fields are exported for gob
// serialization of fitted validators; treat them as read-only.
//
// A OneClass must not be copied by value after first use: the batched
// decision paths guard their lazily built runtime caches with
// sync.Once. Share models by pointer, as Train returns them.
type OneClass struct {
	Kind     KernelKind
	Gamma    float64
	Degree   int
	Coef0    float64
	Nu       float64
	Support  [][]float64 // support vectors
	Alpha    []float64   // dual coefficients of the support vectors
	Rho      float64
	Dim      int
	TrainedN int
	Iters    int
	// SVNorms[i] is ‖Support[i]‖², precomputed at training time for the
	// norms-expansion decision path and persisted with the model. Legacy
	// artifacts decode with it nil; EnsureNorms recomputes it on demand.
	SVNorms []float64

	// Runtime caches, built lazily and skipped by gob.
	flatOnce  sync.Once
	flat      []float64 // Support flattened row-major, len(Support)×Dim
	normsOnce sync.Once
}

// Train fits a one-class SVM on the rows of data.
func Train(data [][]float64, cfg Config) (*OneClass, error) {
	l := len(data)
	if l == 0 {
		return nil, errors.New("svm: empty training set")
	}
	d := len(data[0])
	if d == 0 {
		return nil, errors.New("svm: zero-dimensional training points")
	}
	for i, row := range data {
		if len(row) != d {
			return nil, fmt.Errorf("svm: row %d has %d features, want %d", i, len(row), d)
		}
	}
	if cfg.Nu <= 0 || cfg.Nu > 1 {
		return nil, fmt.Errorf("svm: nu = %v outside (0, 1]", cfg.Nu)
	}
	if cfg.Kernel == "" {
		cfg.Kernel = KernelRBF
	}
	if cfg.Kernel != KernelRBF && cfg.Kernel != KernelLinear && cfg.Kernel != KernelPoly {
		return nil, fmt.Errorf("svm: unknown kernel %q", cfg.Kernel)
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 3
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-3
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100 * l
		if cfg.MaxIter < 10000 {
			cfg.MaxIter = 10000
		}
	}
	gamma := cfg.Gamma
	if gamma <= 0 && cfg.Kernel != KernelLinear {
		gamma = scaleGamma(data)
	}

	k := func(a, b []float64) float64 {
		return kernel(cfg.Kernel, gamma, cfg.Degree, cfg.Coef0, a, b)
	}

	// Precompute the kernel matrix; Deep Validation caps per-SVM
	// training sizes in the hundreds, so the l×l matrix is small.
	q := make([][]float64, l)
	for i := range q {
		q[i] = make([]float64, l)
		for j := 0; j <= i; j++ {
			v := k(data[i], data[j])
			q[i][j] = v
			q[j][i] = v
		}
	}

	// Initialize α per libsvm: the first ⌊νl⌋ points at the upper
	// bound, the next taking the fractional remainder.
	alpha := make([]float64, l)
	total := cfg.Nu * float64(l)
	n := int(total)
	for i := 0; i < n && i < l; i++ {
		alpha[i] = 1
	}
	if n < l {
		alpha[n] = total - float64(n)
	}

	// Gradient G = Qα.
	grad := make([]float64, l)
	for i := 0; i < l; i++ {
		s := 0.0
		for j := 0; j < l; j++ {
			if alpha[j] != 0 {
				s += q[i][j] * alpha[j]
			}
		}
		grad[i] = s
	}

	const tau = 1e-12
	iters := 0
	for ; iters < cfg.MaxIter; iters++ {
		// Maximal violating pair: i maximizes −G over α<1 (can grow),
		// j minimizes −G over α>0 (can shrink).
		i, j := -1, -1
		gmax, gmin := math.Inf(-1), math.Inf(1)
		for t := 0; t < l; t++ {
			if alpha[t] < 1 && -grad[t] > gmax {
				gmax = -grad[t]
				i = t
			}
			if alpha[t] > 0 && -grad[t] < gmin {
				gmin = -grad[t]
				j = t
			}
		}
		if i < 0 || j < 0 || gmax-gmin < cfg.Tol {
			break
		}

		a := q[i][i] + q[j][j] - 2*q[i][j]
		if a <= 0 {
			a = tau
		}
		delta := (grad[j] - grad[i]) / a // step increasing α_i, decreasing α_j
		if delta > 0 {
			if room := 1 - alpha[i]; delta > room {
				delta = room
			}
			if alpha[j] < delta {
				delta = alpha[j]
			}
		} else {
			// The pair selection guarantees a descent direction with
			// delta ≥ 0; numerical ties can give 0, which the progress
			// check below treats as convergence.
			delta = 0
		}
		if delta == 0 {
			break
		}
		alpha[i] += delta
		alpha[j] -= delta
		for t := 0; t < l; t++ {
			grad[t] += delta * (q[t][i] - q[t][j])
		}
	}

	// ρ: average gradient over free support vectors, or the bound
	// midpoint when none are free (libsvm's rule).
	var rho float64
	nFree := 0
	sumFree := 0.0
	ub, lb := math.Inf(1), math.Inf(-1)
	for t := 0; t < l; t++ {
		switch {
		case alpha[t] > 0 && alpha[t] < 1:
			nFree++
			sumFree += grad[t]
		case alpha[t] == 0:
			if grad[t] < ub {
				ub = grad[t]
			}
		default: // alpha == 1
			if grad[t] > lb {
				lb = grad[t]
			}
		}
	}
	if nFree > 0 {
		rho = sumFree / float64(nFree)
	} else {
		if math.IsInf(ub, 1) {
			ub = lb
		}
		if math.IsInf(lb, -1) {
			lb = ub
		}
		rho = (ub + lb) / 2
	}

	m := &OneClass{
		Kind:     cfg.Kernel,
		Gamma:    gamma,
		Degree:   cfg.Degree,
		Coef0:    cfg.Coef0,
		Nu:       cfg.Nu,
		Rho:      rho,
		Dim:      d,
		TrainedN: l,
		Iters:    iters,
	}
	for t := 0; t < l; t++ {
		if alpha[t] > 0 {
			sv := make([]float64, d)
			copy(sv, data[t])
			m.Support = append(m.Support, sv)
			m.Alpha = append(m.Alpha, alpha[t])
		}
	}
	m.SVNorms = supportNorms(m.Support)
	return m, nil
}

// Decision evaluates f(x) = Σ αᵢK(xᵢ,x) − ρ: non-negative inside the
// estimated support, negative outside.
func (m *OneClass) Decision(x []float64) float64 {
	if len(x) != m.Dim {
		panic(fmt.Sprintf("svm: Decision input has %d features, model expects %d", len(x), m.Dim))
	}
	s := 0.0
	for i, sv := range m.Support {
		s += m.Alpha[i] * kernel(m.Kind, m.Gamma, m.Degree, m.Coef0, sv, x)
	}
	return s - m.Rho
}

// Predict returns +1 for inliers (Decision ≥ 0) and −1 for outliers.
func (m *OneClass) Predict(x []float64) int {
	if m.Decision(x) >= 0 {
		return 1
	}
	return -1
}

// NumSupport returns the number of support vectors.
func (m *OneClass) NumSupport() int { return len(m.Support) }

func kernel(kind KernelKind, gamma float64, degree int, coef0 float64, a, b []float64) float64 {
	switch kind {
	case KernelLinear:
		return dot(a, b)
	case KernelPoly:
		// Iterated multiply, not math.Pow: an order of magnitude cheaper
		// for the small integer degrees poly kernels use, and the same
		// rounding sequence as the batched path (bit-exact agreement).
		return ipow(gamma*dot(a, b)+coef0, degree)
	default: // RBF
		s := 0.0
		for i, v := range a {
			d := v - b[i]
			s += d * d
		}
		return math.Exp(-gamma * s)
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// scaleGamma implements scikit-learn's gamma="scale":
// 1 / (n_features · Var(X)) with the variance pooled over all entries.
func scaleGamma(data [][]float64) float64 {
	d := len(data[0])
	n := 0
	mean := 0.0
	for _, row := range data {
		for _, v := range row {
			mean += v
			n++
		}
	}
	mean /= float64(n)
	variance := 0.0
	for _, row := range data {
		for _, v := range row {
			variance += (v - mean) * (v - mean)
		}
	}
	variance /= float64(n)
	if variance < 1e-12 {
		variance = 1e-12
	}
	return 1 / (float64(d) * variance)
}
