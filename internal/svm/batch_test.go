package svm

import (
	"math"
	"math/rand"
	"testing"
)

// Differential-equivalence battery for the batched decision paths.
// DecisionBatch is the serving path and must agree with the scalar
// Decision bit-for-bit on every non-NaN output; NaN outputs must agree
// as NaNs (payload propagation through compiled loops is register-
// allocation dependent and carries no information — see the tensor
// package's SIMD battery for the full argument). DecisionBatchExpanded
// reassociates the RBF distance and is held to ExpandedRelTol instead.

var svmSpecials = []float64{
	math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1),
	0, math.MaxFloat64, 5e-324, -1e300,
}

// randModel builds a OneClass directly, bypassing Train, so the battery
// controls support-vector counts and dimensions exactly — including
// shapes Train would never emit (single SV, remainder counts around the
// 4-SV blocking seam).
func randModel(rng *rand.Rand, kind KernelKind, nsv, dim, degree int) *OneClass {
	m := &OneClass{
		Kind:   kind,
		Gamma:  0.01 + rng.Float64(),
		Degree: degree,
		Coef0:  rng.NormFloat64(),
		Nu:     0.1,
		Rho:    rng.NormFloat64(),
		Dim:    dim,
	}
	for i := 0; i < nsv; i++ {
		sv := make([]float64, dim)
		for j := range sv {
			sv[j] = rng.NormFloat64()
		}
		m.Support = append(m.Support, sv)
		m.Alpha = append(m.Alpha, rng.Float64())
	}
	return m
}

func randBatch(rng *rand.Rand, n, dim int, withSpecials bool) [][]float64 {
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = make([]float64, dim)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64() * 3
		}
		if withSpecials && i%2 == 1 {
			for k := 0; k < 1+dim/4; k++ {
				xs[i][rng.Intn(dim)] = svmSpecials[rng.Intn(len(svmSpecials))]
			}
		}
	}
	return xs
}

func sameVerdictBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) ||
		(math.IsNaN(a) && math.IsNaN(b))
}

// TestDecisionBatchMatchesDecision is the core differential table: all
// three kernels, SV counts straddling the 4-SV blocking seam, several
// dims, batch sizes 1..N, and rows salted with NaN/±Inf/-0.
func TestDecisionBatchMatchesDecision(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	kernels := []KernelKind{KernelLinear, KernelPoly, KernelRBF}
	for _, kind := range kernels {
		for _, nsv := range []int{1, 2, 3, 4, 5, 7, 8, 9, 60} {
			for _, dim := range []int{1, 2, 7, 32, 128} {
				m := randModel(rng, kind, nsv, dim, 3)
				for _, batch := range []int{1, 2, 5} {
					xs := randBatch(rng, batch, dim, true)
					got := m.DecisionBatch(xs)
					if len(got) != batch {
						t.Fatalf("%s nsv=%d dim=%d: DecisionBatch returned %d results for %d inputs", kind, nsv, dim, len(got), batch)
					}
					for bi, x := range xs {
						want := m.Decision(x)
						if !sameVerdictBits(got[bi], want) {
							t.Fatalf("%s nsv=%d dim=%d row=%d: batch %x scalar %x",
								kind, nsv, dim, bi, math.Float64bits(got[bi]), math.Float64bits(want))
						}
					}
				}
			}
		}
	}
}

// TestDecisionBatchIntoReusesDst pins the in-place form: same bits as
// DecisionBatch, dst returned, and an empty batch is a no-op.
func TestDecisionBatchIntoReusesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	m := randModel(rng, KernelRBF, 6, 16, 3)
	xs := randBatch(rng, 4, 16, false)
	dst := make([]float64, 4)
	out := m.DecisionBatchInto(dst, xs)
	if &out[0] != &dst[0] {
		t.Fatal("DecisionBatchInto did not return dst")
	}
	want := m.DecisionBatch(xs)
	for i := range want {
		if math.Float64bits(out[i]) != math.Float64bits(want[i]) {
			t.Fatalf("row %d: into %x fresh %x", i, math.Float64bits(out[i]), math.Float64bits(want[i]))
		}
	}
	if got := m.DecisionBatchInto(nil, nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

// TestPolyDegreesScalarBatchExact is the polynomial-degree sweep: for
// every degree 1..6 the batched path, the scalar path, and a
// math.Pow-free reference built from explicit repeated multiplication
// must agree exactly on finite inputs (satellite: the ipow swap must
// never move a bit relative to iterated multiply).
func TestPolyDegreesScalarBatchExact(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for degree := 1; degree <= 6; degree++ {
		m := randModel(rng, KernelPoly, 5, 9, degree)
		xs := randBatch(rng, 8, 9, false)
		got := m.DecisionBatch(xs)
		for bi, x := range xs {
			scalar := m.Decision(x)
			if math.Float64bits(got[bi]) != math.Float64bits(scalar) {
				t.Fatalf("degree %d row %d: batch %x scalar %x",
					degree, bi, math.Float64bits(got[bi]), math.Float64bits(scalar))
			}
			// Reference: f(x) rebuilt with left-to-right multiplies.
			ref := 0.0
			for i, sv := range m.Support {
				base := m.Gamma*dotRef(sv, x) + m.Coef0
				p := base
				for k := 1; k < degree; k++ {
					p *= base
				}
				ref += m.Alpha[i] * p
			}
			ref -= m.Rho
			if math.Float64bits(ref) != math.Float64bits(scalar) {
				t.Fatalf("degree %d row %d: reference %x scalar %x",
					degree, bi, math.Float64bits(ref), math.Float64bits(scalar))
			}
		}
	}
}

func dotRef(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// TestIpowEdgeCases pins ipow on the degree and operand edges the poly
// kernel can see.
func TestIpowEdgeCases(t *testing.T) {
	cases := []struct {
		base float64
		n    int
		want float64
	}{
		{2, 0, 1}, {2, -1, 1}, {2, 1, 2}, {2, 3, 8}, {-2, 3, -8}, {-2, 4, 16},
		{0, 3, 0}, {math.Inf(1), 2, math.Inf(1)}, {math.Inf(-1), 3, math.Inf(-1)},
		{math.Inf(-1), 2, math.Inf(1)}, {1e200, 2, math.Inf(1)},
	}
	for _, c := range cases {
		if got := ipow(c.base, c.n); math.Float64bits(got) != math.Float64bits(c.want) {
			t.Errorf("ipow(%v, %d) = %v, want %v", c.base, c.n, got, c.want)
		}
	}
	if !math.IsNaN(ipow(math.NaN(), 2)) {
		t.Error("ipow(NaN, 2) should be NaN")
	}
}

// TestDecisionBatchExpandedTolerance holds the norms-expansion path to
// its documented contract: bit-identical for non-RBF kernels, within
// ExpandedRelTol of the scalar decision for finite RBF inputs.
func TestDecisionBatchExpandedTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for _, kind := range []KernelKind{KernelLinear, KernelPoly, KernelRBF} {
		m := randModel(rng, kind, 12, 24, 2)
		xs := randBatch(rng, 16, 24, false)
		exact := m.DecisionBatch(xs)
		sc := &DecisionScratch{}
		expanded := m.DecisionBatchExpanded(make([]float64, len(xs)), xs, sc)
		for i := range xs {
			if kind != KernelRBF {
				if math.Float64bits(expanded[i]) != math.Float64bits(exact[i]) {
					t.Fatalf("%s row %d: expanded %x exact %x", kind, i, math.Float64bits(expanded[i]), math.Float64bits(exact[i]))
				}
				continue
			}
			diff := math.Abs(expanded[i] - exact[i])
			scale := math.Abs(exact[i])
			if scale < 1 {
				scale = 1
			}
			if diff/scale > ExpandedRelTol {
				t.Fatalf("rbf row %d: expanded %v exact %v rel err %g > %g",
					i, expanded[i], exact[i], diff/scale, ExpandedRelTol)
			}
		}
	}
	// Nil scratch must work too (allocates batch-locally).
	m := randModel(rng, KernelRBF, 4, 8, 3)
	xs := randBatch(rng, 3, 8, false)
	m.DecisionBatchExpanded(make([]float64, 3), xs, nil)
}

// TestEnsureNormsLegacyRecompute covers the legacy-artifact upgrade
// path: a model decoded without SVNorms recomputes them on demand, and
// the recomputation matches the trained-in values bit-for-bit.
func TestEnsureNormsLegacyRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	data := make([][]float64, 40)
	for i := range data {
		data[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	m, err := Train(data, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.SVNorms) != len(m.Support) {
		t.Fatalf("Train left SVNorms with %d entries for %d SVs", len(m.SVNorms), len(m.Support))
	}
	legacy := &OneClass{
		Kind: m.Kind, Gamma: m.Gamma, Degree: m.Degree, Coef0: m.Coef0,
		Nu: m.Nu, Support: m.Support, Alpha: m.Alpha, Rho: m.Rho, Dim: m.Dim,
	}
	norms := legacy.EnsureNorms()
	if len(norms) != len(m.SVNorms) {
		t.Fatalf("EnsureNorms returned %d norms, want %d", len(norms), len(m.SVNorms))
	}
	for i := range norms {
		if math.Float64bits(norms[i]) != math.Float64bits(m.SVNorms[i]) {
			t.Fatalf("norm %d: recomputed %x trained %x", i, math.Float64bits(norms[i]), math.Float64bits(m.SVNorms[i]))
		}
	}
	// And the expanded path on the upgraded model matches the exact one.
	xs := randBatch(rng, 4, 3, false)
	exact := legacy.DecisionBatch(xs)
	expanded := legacy.DecisionBatchExpanded(make([]float64, 4), xs, nil)
	for i := range xs {
		diff := math.Abs(expanded[i] - exact[i])
		if diff > ExpandedRelTol*(1+math.Abs(exact[i])) {
			t.Fatalf("row %d: expanded %v exact %v", i, expanded[i], exact[i])
		}
	}
}

// TestDecisionBatchPanics pins the dst-length and feature-dim guards.
func TestDecisionBatchPanics(t *testing.T) {
	m := randModel(rand.New(rand.NewSource(106)), KernelRBF, 3, 4, 3)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("short dst", func() {
		m.DecisionBatchInto(make([]float64, 1), make([][]float64, 2))
	})
	mustPanic("dim mismatch", func() {
		m.DecisionBatch([][]float64{{1, 2}})
	})
	mustPanic("expanded short dst", func() {
		m.DecisionBatchExpanded(nil, [][]float64{{1, 2, 3, 4}}, nil)
	})
}

// TestDecisionBatchSteadyStateAllocs is the allocation-budget guard:
// after the one-time flat-matrix (and, for the expanded path, norms)
// build, batched scoring must allocate nothing.
func TestDecisionBatchSteadyStateAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race-detector instrumentation allocates; budgets apply to plain builds")
	}
	rng := rand.New(rand.NewSource(107))
	for _, kind := range []KernelKind{KernelLinear, KernelPoly, KernelRBF} {
		m := randModel(rng, kind, 8, 16, 3)
		xs := randBatch(rng, 6, 16, false)
		dst := make([]float64, len(xs))
		m.DecisionBatchInto(dst, xs) // warm the flat-support cache
		if n := testing.AllocsPerRun(50, func() {
			m.DecisionBatchInto(dst, xs)
		}); n != 0 {
			t.Errorf("%s: DecisionBatchInto allocates %.1f/op in steady state, want 0", kind, n)
		}
	}
	m := randModel(rng, KernelRBF, 8, 16, 3)
	xs := randBatch(rng, 6, 16, false)
	dst := make([]float64, len(xs))
	sc := &DecisionScratch{}
	m.DecisionBatchExpanded(dst, xs, sc) // warm flat support + norms + scratch
	if n := testing.AllocsPerRun(50, func() {
		m.DecisionBatchExpanded(dst, xs, sc)
	}); n != 0 {
		t.Errorf("DecisionBatchExpanded allocates %.1f/op in steady state, want 0", n)
	}
}

// FuzzDecisionBatchEquivalence decodes arbitrary bytes into a model and
// batch — kernel kind, SV count, dim, batch size, and every float drawn
// from the raw input — and requires the batched verdicts to match the
// scalar ones (bit-exact for non-NaN, NaN-class otherwise).
func FuzzDecisionBatchEquivalence(f *testing.F) {
	f.Add([]byte{0, 4, 3, 2, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{1, 1, 1, 1, 0x7f, 0xf0, 0, 0, 0, 0, 0, 0, 0xff, 0xf0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{2, 9, 5, 3, 0x7f, 0xf8, 0, 0, 0, 0, 0, 1, 0x80, 0, 0, 0, 0, 0, 0, 0, 13, 200})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 8 {
			return
		}
		kinds := []KernelKind{KernelLinear, KernelPoly, KernelRBF}
		kind := kinds[int(raw[0])%3]
		nsv := int(raw[1])%9 + 1
		dim := int(raw[2])%17 + 1
		batch := int(raw[3])%5 + 1
		nextF := func(i int) float64 {
			var u uint64
			for k := 0; k < 8; k++ {
				u = u<<8 | uint64(raw[(4+i*8+k)%len(raw)])
			}
			return math.Float64frombits(u)
		}
		fi := 0
		next := func() float64 { v := nextF(fi); fi++; return v }
		m := &OneClass{Kind: kind, Degree: int(raw[4])%6 + 1, Dim: dim}
		m.Gamma = math.Abs(next())
		if math.IsInf(m.Gamma, 0) || math.IsNaN(m.Gamma) || m.Gamma == 0 {
			m.Gamma = 0.5
		}
		m.Coef0 = next()
		m.Rho = next()
		for i := 0; i < nsv; i++ {
			sv := make([]float64, dim)
			for j := range sv {
				sv[j] = next()
			}
			m.Support = append(m.Support, sv)
			m.Alpha = append(m.Alpha, next())
		}
		xs := make([][]float64, batch)
		for i := range xs {
			xs[i] = make([]float64, dim)
			for j := range xs[i] {
				xs[i][j] = next()
			}
		}
		got := m.DecisionBatch(xs)
		for bi, x := range xs {
			want := m.Decision(x)
			if !sameVerdictBits(got[bi], want) {
				t.Fatalf("%s nsv=%d dim=%d row=%d: batch %x scalar %x",
					kind, nsv, dim, bi, math.Float64bits(got[bi]), math.Float64bits(want))
			}
		}
	})
}

func BenchmarkDecisionBatchRBF(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m := randModel(rng, KernelRBF, 60, 128, 3)
	xs := randBatch(rng, 16, 128, false)
	dst := make([]float64, len(xs))
	m.DecisionBatchInto(dst, xs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DecisionBatchInto(dst, xs)
	}
}

func BenchmarkDecisionScalarRBF(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m := randModel(rng, KernelRBF, 60, 128, 3)
	xs := randBatch(rng, 16, 128, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range xs {
			m.Decision(x)
		}
	}
}
