package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"deepvalidation/internal/obs"
	"deepvalidation/internal/serve"
	"deepvalidation/internal/trace"
)

// The fleet aggregation surface: GET /debug/dv/fleet merges every
// replica's /readyz (its own drift scores, SLO status, and artifact
// checksums) with the gateway's health-machine view into one JSON
// document, and GET /debug/dv/flight fans the flight-recorder triage
// filters out to every replica and merges the recent verdicts. Both
// are read-only — an aggregation fetch never feeds the health machine,
// so triage cannot perturb routing — and both degrade per replica:
// an unreachable replica is marked, never a 500.

// FleetReplica is one replica's row in /debug/dv/fleet: the gateway's
// routing view (embedded) plus the replica's own /readyz document
// fetched live for this request.
type FleetReplica struct {
	ReplicaStatus
	// Fetch is this fetch's result: "ok" or "unreachable".
	Fetch      string            `json:"fetch"`
	FetchError string            `json:"fetch_error,omitempty"`
	Readyz     *serve.ReadyzBody `json:"readyz,omitempty"`
}

// FleetResponse is the body of GET /debug/dv/fleet — the fleet's
// single pane of glass.
type FleetResponse struct {
	Count      int            `json:"count"`
	InRotation int            `json:"in_rotation"`
	Partial    bool           `json:"partial"`
	GatewaySLO obs.Status     `json:"gateway_slo"`
	Replicas   []FleetReplica `json:"replicas"`
}

// handleFleet fans one /readyz fetch out to every configured replica
// concurrently and merges the results with the gateway's own view.
func (g *Gateway) handleFleet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	rows := make([]FleetReplica, len(g.replicas))
	var wg sync.WaitGroup
	for i, rep := range g.replicas {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			row := FleetReplica{ReplicaStatus: rep.status(), Fetch: TierOK}
			body, err := g.fetchReadyz(rep, g.cfg.ProbeTimeout)
			if err != nil {
				row.Fetch = TierUnreachable
				row.FetchError = err.Error()
			} else {
				row.Readyz = body
			}
			rows[i] = row
		}(i, rep)
	}
	wg.Wait()
	resp := FleetResponse{
		Count:      len(rows),
		InRotation: g.InRotation(),
		GatewaySLO: g.SLOStatus(),
		Replicas:   rows,
	}
	for _, row := range rows {
		if row.Fetch != TierOK {
			resp.Partial = true
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// FleetFlightEntry is one merged flight-recorder entry, annotated with
// the replica it was recorded on.
type FleetFlightEntry struct {
	Replica string `json:"replica"`
	trace.Entry
}

// FleetFlightResponse is the body of the gateway's GET
// /debug/dv/flight: recent verdicts merged across the fleet, newest
// first, with per-replica fetch states.
type FleetFlightResponse struct {
	Count    int                `json:"count"`
	Partial  bool               `json:"partial"`
	Replicas map[string]string  `json:"replicas"`
	Entries  []FleetFlightEntry `json:"entries"`
}

// handleFleetFlight validates the triage filters locally (the same 400s
// a replica would give), fans the query out to every replica — or just
// one, under the gateway-only ?replica= axis — and merges the entries
// newest-first. The merged set honors ?limit=; each replica fetch also
// carries it, so no replica ships more than the client can receive.
func (g *Gateway) handleFleetFlight(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	q := r.URL.Query()
	f, err := trace.ParseFilter(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	targets := g.replicas
	if name := q.Get("replica"); name != "" {
		rep := g.replicaByName(name)
		if rep == nil {
			writeError(w, http.StatusBadRequest, "bad replica filter: no replica named "+name)
			return
		}
		targets = []*replica{rep}
	}
	q.Del("replica")
	query := q.Encode()
	results := make([]flightFetch, len(targets))
	var wg sync.WaitGroup
	for i, rep := range targets {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			results[i] = g.fetchFlight(rep, query)
		}(i, rep)
	}
	wg.Wait()
	resp := FleetFlightResponse{
		Replicas: make(map[string]string, len(targets)),
		Entries:  []FleetFlightEntry{},
	}
	for i, rep := range targets {
		resp.Replicas[rep.name] = results[i].state
		if results[i].state != TierOK {
			resp.Partial = true
			continue
		}
		for _, e := range results[i].entries {
			resp.Entries = append(resp.Entries, FleetFlightEntry{Replica: rep.name, Entry: e})
		}
	}
	sort.SliceStable(resp.Entries, func(a, b int) bool {
		return resp.Entries[a].TimeNs > resp.Entries[b].TimeNs
	})
	if f.Limit > 0 && len(resp.Entries) > f.Limit {
		resp.Entries = resp.Entries[:f.Limit]
	}
	resp.Count = len(resp.Entries)
	writeJSON(w, http.StatusOK, resp)
}

// flightFetch is one replica's contribution to the merged flight view.
type flightFetch struct {
	state   string
	entries []trace.Entry
}

// fetchFlight pulls one replica's flight recorder with the forwarded
// query. Transport failure marks the replica unreachable; a non-200
// (e.g. the recorder disabled on that replica) is reported as its
// status so the operator sees which replica opted out.
func (g *Gateway) fetchFlight(rep *replica, query string) (out flightFetch) {
	url := rep.base + "/debug/dv/flight"
	if query != "" {
		url += "?" + query
	}
	client := *g.client
	client.Timeout = g.cfg.ProbeTimeout
	resp, err := client.Get(url)
	if err != nil {
		out.state = TierUnreachable
		return out
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		out.state = TierUnreachable
		return out
	}
	if resp.StatusCode != http.StatusOK {
		out.state = fmt.Sprintf("status %d", resp.StatusCode)
		return out
	}
	var fr serve.FlightResponse
	if err := json.Unmarshal(raw, &fr); err != nil {
		out.state = "bad_response"
		return out
	}
	out.state = TierOK
	out.entries = fr.Entries
	return out
}
