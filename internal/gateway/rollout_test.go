package gateway

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"deepvalidation/internal/faultinject"
)

func rolloutPost(t *testing.T, gwURL, artifactPath string) (*http.Response, RolloutResponse) {
	t.Helper()
	body, _ := json.Marshal(RolloutRequest{Artifact: artifactPath})
	resp, err := http.Post(gwURL+"/admin/rollout", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out RolloutResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding rollout response: %v", err)
	}
	return resp, out
}

func fleetReplicas(t *testing.T, gwURL string) replicasResponse {
	t.Helper()
	resp, err := http.Get(gwURL + "/admin/replicas")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out replicasResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRolloutConverges pushes the v2 validator across a 2-replica fleet
// and verifies convergence end to end: HTTP outcome, on-disk payload
// checksums, the gateway's fleet view, and post-rollout serving.
func TestRolloutConverges(t *testing.T) {
	g, procs, reg := newFleet(t, 2, nil)
	ts := gwServer(t, g)
	v1 := headerSHA(testValPath)
	v2 := headerSHA(testValV2Path)
	if v1 == v2 || v1 == "" || v2 == "" {
		t.Fatalf("fixture validators must differ: v1 %q v2 %q", v1, v2)
	}

	// The fleet view starts on v1 (seeded by newFleet's ProbeAll).
	for _, st := range fleetReplicas(t, ts.URL).Replicas {
		if st.ValidatorSHA256 != v1 {
			t.Fatalf("replica %s starts on %s, want v1 %s", st.Name, shortSHA(st.ValidatorSHA256), shortSHA(v1))
		}
	}

	resp, out := rolloutPost(t, ts.URL, testValV2Path)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollout status %d: %+v", resp.StatusCode, out)
	}
	if !out.Completed || out.TargetSHA256 != v2 {
		t.Fatalf("rollout response %+v, want completed on %s", out, shortSHA(v2))
	}
	if len(out.Replicas) != 2 {
		t.Fatalf("rollout touched %d replicas, want 2", len(out.Replicas))
	}
	for _, rr := range out.Replicas {
		if !rr.Switched || !rr.Converged || rr.RolledBack || rr.Error != "" {
			t.Fatalf("replica %s outcome %+v, want switched+converged", rr.Name, rr)
		}
	}
	for _, p := range procs {
		if got := headerSHA(p.valP); got != v2 {
			t.Fatalf("replica %s disk artifact is %s, want v2 %s", p.name, shortSHA(got), shortSHA(v2))
		}
	}
	for _, st := range fleetReplicas(t, ts.URL).Replicas {
		if st.ValidatorSHA256 != v2 {
			t.Fatalf("fleet view: replica %s on %s, want v2 %s", st.Name, shortSHA(st.ValidatorSHA256), shortSHA(v2))
		}
		if !st.InRotation {
			t.Fatalf("replica %s out of rotation after rollout", st.Name)
		}
	}
	if n := counterValue(t, reg, MetricRollouts); n != 1 {
		t.Fatalf("rollouts counter %d, want 1", n)
	}
	if n := counterValue(t, reg, MetricRollbacks); n != 0 {
		t.Fatalf("rollbacks counter %d, want 0", n)
	}

	// The converged fleet still serves.
	for _, body := range distinctBodies(t, 6) {
		rc, data := post(t, ts.URL+"/v1/check", body)
		if rc.StatusCode != http.StatusOK {
			t.Fatalf("post-rollout check: status %d body %s", rc.StatusCode, data)
		}
	}
}

// TestRolloutHaltsAndRollsBack is the acceptance scenario: the staged
// switch fails on replica 2 (its reloads are fault-injected to fail
// through every retry), the rollout halts, and replica 1 — already
// switched — rolls back, leaving every replica on the prior SHA both on
// disk and in the serving processes.
func TestRolloutHaltsAndRollsBack(t *testing.T) {
	g, procs, reg := newFleet(t, 3, nil)
	ts := gwServer(t, g)
	v1 := headerSHA(testValPath)
	v2 := headerSHA(testValV2Path)

	// Reload call #1 is replica 1's rollout reload (succeeds); calls
	// #2..#4 are replica 2's ReloadRetries=3 attempts (all fail, halting
	// the rollout); call #5 is replica 1's rollback reload (succeeds).
	var call atomic.Int64
	faultinject.Arm(faultinject.PointServeReload, func() error {
		if n := call.Add(1); n >= 2 && n <= 4 {
			return errors.New("injected reload failure")
		}
		return nil
	})
	t.Cleanup(faultinject.Reset)

	resp, out := rolloutPost(t, ts.URL, testValV2Path)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("halted rollout status %d, want 500 (%+v)", resp.StatusCode, out)
	}
	if out.Completed {
		t.Fatal("halted rollout reported completed")
	}
	if out.Error == "" || !strings.Contains(out.Error, "rolled back") {
		t.Fatalf("rollout error %q, want a halted-and-rolled-back report", out.Error)
	}
	if len(out.Replicas) != 2 {
		t.Fatalf("rollout report covers %d replicas, want 2 (halt must stop before replica 3)", len(out.Replicas))
	}
	r1, r2 := out.Replicas[0], out.Replicas[1]
	if !r1.Switched || !r1.RolledBack || r1.Converged {
		t.Fatalf("replica 1 outcome %+v, want switched then rolled back", r1)
	}
	if r2.Switched || !strings.Contains(r2.Error, "reload failed") {
		t.Fatalf("replica 2 outcome %+v, want reload failure without a switch", r2)
	}

	// Every replica — switched, failed, and untouched — is back on v1.
	for _, p := range procs {
		if got := headerSHA(p.valP); got != v1 {
			t.Fatalf("replica %s disk artifact is %s after rollback, want v1 %s", p.name, shortSHA(got), shortSHA(v1))
		}
	}
	faultinject.Reset()
	g.ProbeAll()
	view := fleetReplicas(t, ts.URL)
	if view.InRotation != 3 {
		t.Fatalf("%d replicas in rotation after rollback, want 3", view.InRotation)
	}
	for _, st := range view.Replicas {
		if st.ValidatorSHA256 != v1 {
			t.Fatalf("fleet view: replica %s on %s after rollback, want v1 %s", st.Name, shortSHA(st.ValidatorSHA256), shortSHA(v1))
		}
	}
	if n := counterValue(t, reg, MetricRolloutsFailed); n != 1 {
		t.Fatalf("rollouts-failed counter %d, want 1", n)
	}
	if n := counterValue(t, reg, MetricRollbacks); n != 1 {
		t.Fatalf("rollbacks counter %d, want 1", n)
	}
	if n := counterValue(t, reg, MetricRollouts); n != 0 {
		t.Fatalf("completed-rollouts counter %d, want 0", n)
	}

	// The healed fleet accepts the same rollout cleanly.
	resp, out = rolloutPost(t, ts.URL, testValV2Path)
	if resp.StatusCode != http.StatusOK || !out.Completed {
		t.Fatalf("retried rollout status %d (%+v), want success after healing", resp.StatusCode, out)
	}
	for _, p := range procs {
		if got := headerSHA(p.valP); got != v2 {
			t.Fatalf("replica %s on %s after retried rollout, want v2 %s", p.name, shortSHA(got), shortSHA(v2))
		}
	}
}

// TestRolloutPreconditions pins the refusal paths: corrupt or
// wrong-kind staged artifacts are rejected before any replica is
// touched, and a degraded fleet refuses to roll at all.
func TestRolloutPreconditions(t *testing.T) {
	g, procs, _ := newFleet(t, 2, nil)
	ts := gwServer(t, g)
	v1 := headerSHA(testValPath)

	t.Run("missing artifact", func(t *testing.T) {
		resp, out := rolloutPost(t, ts.URL, "/nonexistent/staged.dvart")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400 (%+v)", resp.StatusCode, out)
		}
	})
	t.Run("wrong kind", func(t *testing.T) {
		resp, out := rolloutPost(t, ts.URL, testModelPath)
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(out.Error, "kind") {
			t.Fatalf("status %d error %q, want 400 rejecting a model artifact", resp.StatusCode, out.Error)
		}
	})
	t.Run("degraded fleet", func(t *testing.T) {
		r := g.replicas[1]
		r.mu.Lock()
		prev := r.hm.state
		r.hm.state = StateDrained
		r.mu.Unlock()
		defer func() {
			r.mu.Lock()
			r.hm.state = prev
			r.mu.Unlock()
		}()
		resp, out := rolloutPost(t, ts.URL, testValV2Path)
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("status %d, want 409 with a drained replica (%+v)", resp.StatusCode, out)
		}
	})
	// No precondition failure may have touched any disk.
	for _, p := range procs {
		if got := headerSHA(p.valP); got != v1 {
			t.Fatalf("replica %s disk artifact is %s after refused rollouts, want v1 %s", p.name, shortSHA(got), shortSHA(v1))
		}
	}
}

func TestRolloutRequiresValidatorPath(t *testing.T) {
	g, _ := fakeFleet(t, map[string]http.HandlerFunc{"a": echoReplica("a")}, nil)
	ts := gwServer(t, g)
	resp, out := rolloutPost(t, ts.URL, testValV2Path)
	if resp.StatusCode != http.StatusConflict || !strings.Contains(out.Error, "validator path") {
		t.Fatalf("status %d error %q, want 409 for a replica without a validator path", resp.StatusCode, out.Error)
	}
}

func TestRolloutEndpointValidation(t *testing.T) {
	g, _ := fakeFleet(t, map[string]http.HandlerFunc{"a": echoReplica("a")}, nil)
	ts := gwServer(t, g)
	for _, tc := range []struct {
		name string
		do   func() (*http.Response, error)
		want int
	}{
		{"GET refused", func() (*http.Response, error) {
			return http.Get(ts.URL + "/admin/rollout")
		}, http.StatusMethodNotAllowed},
		{"bad JSON", func() (*http.Response, error) {
			return http.Post(ts.URL+"/admin/rollout", "application/json", strings.NewReader("{"))
		}, http.StatusBadRequest},
		{"unknown field", func() (*http.Response, error) {
			return http.Post(ts.URL+"/admin/rollout", "application/json", strings.NewReader(`{"artifcat":"x"}`))
		}, http.StatusBadRequest},
		{"empty artifact", func() (*http.Response, error) {
			return http.Post(ts.URL+"/admin/rollout", "application/json", strings.NewReader(`{}`))
		}, http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := tc.do()
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}
