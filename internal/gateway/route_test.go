package gateway

import (
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"deepvalidation/internal/serve"
	"deepvalidation/internal/telemetry"
	"deepvalidation/internal/trace"
)

// echoReplica is a fake dvserve: ready on /readyz, and answers routed
// requests with its own name so tests can see where a key landed.
func echoReplica(name string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			io.WriteString(w, "ready\n{\"status\":\"ready\"}\n")
			return
		}
		io.WriteString(w, name)
	}
}

// traceIDTargeting finds a trace ID whose rendezvous winner among names
// is want — the same placement arithmetic route.go uses.
func traceIDTargeting(t *testing.T, names []string, want string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		id := fmt.Sprintf("trace-%d", i)
		h := fnv.New64a()
		io.WriteString(h, id)
		key := h.Sum64()
		winner, winScore := "", uint64(0)
		for _, n := range names {
			score := rendezvousScore(key, n)
			if winner == "" || score > winScore || (score == winScore && n < winner) {
				winner, winScore = n, score
			}
		}
		if winner == want {
			return id
		}
	}
	t.Fatalf("no trace ID targeting %q found", want)
	return ""
}

func postTraced(t *testing.T, url, traceID string, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(trace.HeaderTraceID, traceID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(data)
}

// TestRendezvousPlacement pins the placement properties routing relies
// on: determinism, full-fleet coverage, and minimal remap when a
// replica drains.
func TestRendezvousPlacement(t *testing.T) {
	g, _ := fakeFleet(t, map[string]http.HandlerFunc{
		"a": echoReplica("a"), "b": echoReplica("b"), "c": echoReplica("c"),
	}, nil)

	const keys = 256
	place := func() map[uint64]string {
		m := make(map[uint64]string, keys)
		for k := uint64(0); k < keys; k++ {
			rep, _, err := g.pick(k, nil)
			if err != nil {
				t.Fatal(err)
			}
			m[k] = rep.name
		}
		return m
	}
	base := place()
	if again := place(); len(again) != keys {
		t.Fatal("second placement incomplete")
	} else {
		for k, name := range base {
			if again[k] != name {
				t.Fatalf("key %d moved %s -> %s with no fleet change", k, name, again[k])
			}
		}
	}
	hit := map[string]int{}
	for _, name := range base {
		hit[name]++
	}
	if len(hit) != 3 {
		t.Fatalf("rendezvous used %d of 3 replicas over %d keys: %v", len(hit), keys, hit)
	}

	// Drain one replica: only its keys may move.
	var drained *replica
	for _, r := range g.replicas {
		if r.name == base[0] {
			drained = r
		}
	}
	drained.mu.Lock()
	drained.hm.state = StateDrained
	drained.mu.Unlock()
	moved := 0
	for k, name := range base {
		rep, _, err := g.pick(k, nil)
		if err != nil {
			t.Fatal(err)
		}
		if name == drained.name {
			if rep.name == drained.name {
				t.Fatalf("key %d still routed to drained replica %s", k, name)
			}
			moved++
			continue
		}
		if rep.name != name {
			t.Fatalf("key %d moved %s -> %s though its replica stayed in rotation", k, name, rep.name)
		}
	}
	if moved != hit[drained.name] {
		t.Fatalf("%d keys moved, want exactly the drained replica's %d", moved, hit[drained.name])
	}
}

// TestRoutingEquivalenceUnderProbes is the race-mode leg: a fixed key
// set must route to exactly the same replicas no matter how probe
// rounds interleave with traffic. Run under -race this also exercises
// every routing/probing lock.
func TestRoutingEquivalenceUnderProbes(t *testing.T) {
	g, _ := fakeFleet(t, map[string]http.HandlerFunc{
		"a": echoReplica("a"), "b": echoReplica("b"), "c": echoReplica("c"),
	}, nil)
	ts := gwServer(t, g)

	ids := make([]string, 48)
	for i := range ids {
		ids[i] = "equiv-" + strings.Repeat("x", i%7) + "-" + string(rune('a'+i%26))
	}
	baseline := make(map[string]string, len(ids))
	for _, id := range ids {
		resp, body := postTraced(t, ts.URL+"/v1/check", id, "{}")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("baseline %s: status %d", id, resp.StatusCode)
		}
		baseline[id] = body
	}

	stop := make(chan struct{})
	var probers sync.WaitGroup
	for i := 0; i < 3; i++ {
		probers.Add(1)
		go func() {
			defer probers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					g.ProbeAll()
				}
			}
		}()
	}
	var routers sync.WaitGroup
	for w := 0; w < 4; w++ {
		routers.Add(1)
		go func(w int) {
			defer routers.Done()
			for round := 0; round < 5; round++ {
				for _, id := range ids {
					resp, body := postTraced(t, ts.URL+"/v1/check", id, "{}")
					if resp.StatusCode != http.StatusOK {
						t.Errorf("worker %d %s: status %d", w, id, resp.StatusCode)
						return
					}
					if body != baseline[id] {
						t.Errorf("worker %d: key %s routed to %s, baseline %s", w, id, body, baseline[id])
						return
					}
				}
			}
		}(w)
	}
	routers.Wait()
	close(stop)
	probers.Wait()
}

// TestRetryOnReplica500 re-routes a 500 to a different replica and
// spends one budget token doing it.
func TestRetryOnReplica500(t *testing.T) {
	bad := func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			io.WriteString(w, "ready\n{\"status\":\"ready\"}\n")
			return
		}
		http.Error(w, "boom", http.StatusInternalServerError)
	}
	g, reg := fakeFleet(t, map[string]http.HandlerFunc{"bad": bad, "good": echoReplica("good")}, nil)
	ts := gwServer(t, g)

	id := traceIDTargeting(t, []string{"bad", "good"}, "bad")
	resp, body := postTraced(t, ts.URL+"/v1/check", id, "{}")
	if resp.StatusCode != http.StatusOK || body != "good" {
		t.Fatalf("status %d body %q, want 200 from good", resp.StatusCode, body)
	}
	if n := counterValue(t, reg, MetricRetries); n != 1 {
		t.Fatalf("retries counter %d, want 1", n)
	}
}

// TestRetryOnConnectFailure re-routes a transport failure and marks the
// dead replica degraded from the route path alone — no probe ticks.
func TestRetryOnConnectFailure(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := strings.TrimPrefix(dead.URL, "http://")
	dead.Close() // port now refuses connections

	up := httptest.NewServer(echoReplica("up"))
	t.Cleanup(up.Close)

	g, err := New(Config{
		Replicas: []ReplicaSpec{
			{Name: "dead", Addr: deadAddr},
			{Name: "up", Addr: strings.TrimPrefix(up.URL, "http://")},
		},
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	ts := gwServer(t, g)

	id := traceIDTargeting(t, []string{"dead", "up"}, "dead")
	resp, body := postTraced(t, ts.URL+"/v1/check", id, "{}")
	if resp.StatusCode != http.StatusOK || body != "up" {
		t.Fatalf("status %d body %q, want 200 from up", resp.StatusCode, body)
	}
	var deadRep *replica
	for _, r := range g.replicas {
		if r.name == "dead" {
			deadRep = r
		}
	}
	if st := deadRep.state(); st != StateDegraded {
		t.Fatalf("dead replica state %v after failed forward, want degraded", st)
	}
}

// TestRetryDeniedOnEmptyBudget pins the amplification bound: with the
// budget dry, a transport failure is answered 502 instead of doubling
// traffic onto the surviving replica.
func TestRetryDeniedOnEmptyBudget(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := strings.TrimPrefix(dead.URL, "http://")
	dead.Close()
	up := httptest.NewServer(echoReplica("up"))
	t.Cleanup(up.Close)

	g, reg := fakeFleet(t, map[string]http.HandlerFunc{"up": echoReplica("up")}, func(c *Config) {
		c.Replicas = append(c.Replicas, ReplicaSpec{Name: "dead", Addr: deadAddr})
	})
	ts := gwServer(t, g)
	g.budget.mu.Lock()
	g.budget.tokens = 0
	g.budget.mu.Unlock()

	id := traceIDTargeting(t, []string{"dead", "up"}, "dead")
	resp, _ := postTraced(t, ts.URL+"/v1/check", id, "{}")
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 with empty retry budget", resp.StatusCode)
	}
	if n := counterValue(t, reg, MetricRetryBudgetSpent); n != 1 {
		t.Fatalf("budget-exhausted counter %d, want 1", n)
	}
	if n := counterValue(t, reg, MetricRetries); n != 0 {
		t.Fatalf("retries counter %d, want 0", n)
	}
}

func TestRetryBudgetBucket(t *testing.T) {
	b := retryBudget{ratio: 0.5, cap: 2, tokens: 2}
	if !b.spend() || !b.spend() {
		t.Fatal("full bucket denied a spend")
	}
	if b.spend() {
		t.Fatal("empty bucket allowed a spend")
	}
	b.earn()
	if b.spend() {
		t.Fatal("half a token allowed a spend")
	}
	b.earn()
	if !b.spend() {
		t.Fatal("earned token denied")
	}
	for i := 0; i < 10; i++ {
		b.earn()
	}
	if b.tokens != b.cap {
		t.Fatalf("bucket %v exceeds cap %v", b.tokens, b.cap)
	}
}

// TestBackpressurePassthrough pins the unified Retry-After contract:
// replica backpressure is relayed untouched when the replica set the
// header, and gets the gateway default otherwise — never retried.
func TestBackpressurePassthrough(t *testing.T) {
	t.Run("429 with replica header", func(t *testing.T) {
		h := func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/readyz" {
				io.WriteString(w, "ready\n{\"status\":\"ready\"}\n")
				return
			}
			w.Header().Set("Retry-After", "7")
			http.Error(w, "shed", http.StatusTooManyRequests)
		}
		g, reg := fakeFleet(t, map[string]http.HandlerFunc{"bp": h}, nil)
		ts := gwServer(t, g)
		resp, _ := postTraced(t, ts.URL+"/v1/check", "", "{}")
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429", resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "7" {
			t.Fatalf("Retry-After %q, want the replica's own %q", ra, "7")
		}
		if n := counterValue(t, reg, telemetry.Label(MetricPassthrough, "code", "429")); n != 1 {
			t.Fatalf("429 passthrough counter %d, want 1", n)
		}
		if n := counterValue(t, reg, MetricRetries); n != 0 {
			t.Fatalf("backpressure was retried %d times, want 0", n)
		}
	})
	t.Run("503 without replica header", func(t *testing.T) {
		h := func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/readyz" {
				io.WriteString(w, "ready\n{\"status\":\"ready\"}\n")
				return
			}
			http.Error(w, "draining", http.StatusServiceUnavailable)
		}
		g, _ := fakeFleet(t, map[string]http.HandlerFunc{"bp": h}, func(c *Config) {
			c.RetryAfter = 1500 * time.Millisecond
		})
		ts := gwServer(t, g)
		resp, _ := postTraced(t, ts.URL+"/v1/check", "", "{}")
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != serve.RetryAfterHeader(1500*time.Millisecond) {
			t.Fatalf("Retry-After %q, want gateway default %q", ra, serve.RetryAfterHeader(1500*time.Millisecond))
		}
	})
}

// TestRetryAfterFormat is the format regression pin for the single
// source of the Retry-After header: whole seconds, rounded up, never
// below one — shared by the dvserve shed path and every gateway
// backpressure answer.
func TestRetryAfterFormat(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{10 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1001 * time.Millisecond, "2"},
		{1500 * time.Millisecond, "2"},
		{2 * time.Second, "2"},
		{9500 * time.Millisecond, "10"},
	} {
		if got := serve.RetryAfterHeader(tc.d); got != tc.want {
			t.Errorf("RetryAfterHeader(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

// TestShedWhenSaturated sheds 429 once every in-rotation replica is at
// its in-flight cap.
func TestShedWhenSaturated(t *testing.T) {
	g, reg := fakeFleet(t, map[string]http.HandlerFunc{
		"a": echoReplica("a"), "b": echoReplica("b"),
	}, func(c *Config) { c.MaxInflight = 1 })
	ts := gwServer(t, g)
	for _, r := range g.replicas {
		r.inflight.Add(1)
	}
	resp, _ := postTraced(t, ts.URL+"/v1/check", "", "{}")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After %q, want %q", ra, "1")
	}
	if n := counterValue(t, reg, MetricShed); n != 1 {
		t.Fatalf("shed counter %d, want 1", n)
	}
	for _, r := range g.replicas {
		r.inflight.Add(-1)
	}
	resp, _ = postTraced(t, ts.URL+"/v1/check", "", "{}")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after load released, want 200", resp.StatusCode)
	}
}

// TestUnroutableFleet answers 503 when every replica is drained, and
// the gateway's own /readyz flips to unroutable.
func TestUnroutableFleet(t *testing.T) {
	g, reg := fakeFleet(t, map[string]http.HandlerFunc{"a": echoReplica("a")}, nil)
	ts := gwServer(t, g)
	for _, r := range g.replicas {
		r.mu.Lock()
		r.hm.state = StateDrained
		r.mu.Unlock()
	}
	resp, _ := postTraced(t, ts.URL+"/v1/check", "", "{}")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After %q, want %q", ra, "1")
	}
	if n := counterValue(t, reg, MetricUnroutable); n != 1 {
		t.Fatalf("unroutable counter %d, want 1", n)
	}
	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(rz.Body)
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("gateway /readyz status %d, want 503", rz.StatusCode)
	}
	if !strings.HasPrefix(string(raw), "unroutable\n") {
		t.Fatalf("gateway /readyz body %q, want unroutable first line", raw)
	}
}
