package gateway

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"

	"deepvalidation/internal/faultinject"
	"deepvalidation/internal/serve"
	"deepvalidation/internal/trace"
)

// routeKey derives the placement key for one request: the client's
// X-DV-Trace-Id when present (so a traced request is replayable against
// the same replica), otherwise the FNV-1a hash of the body — identical
// payloads land on the same replica, which keeps any replica-local
// caching and flight-recorder context coherent.
func routeKey(r *http.Request, body []byte) uint64 {
	h := fnv.New64a()
	if id := r.Header.Get(trace.HeaderTraceID); id != "" {
		_, _ = io.WriteString(h, id)
	} else {
		_, _ = h.Write(body)
	}
	return h.Sum64()
}

// rendezvousScore is the highest-random-weight score of (key, replica):
// each replica hashes the key with its own name salted in, and the
// highest score wins. Adding or removing a replica only remaps the keys
// whose winner changed — no ring maintenance, no global reshuffle.
func rendezvousScore(key uint64, name string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(key >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	_, _ = io.WriteString(h, name)
	return h.Sum64()
}

// Routing failure modes pick distinguishes for the shed paths.
var (
	errNoReplicas   = errors.New("gateway: no replicas in rotation")
	errAllSaturated = errors.New("gateway: every in-rotation replica is at its in-flight cap")
)

// pick places a key: the rendezvous winner among in-rotation replicas
// not in exclude, falling back to the least-loaded eligible replica
// when the winner is at its in-flight cap. Deterministic given the same
// rotation set and loads — the race-mode equivalence tests rely on it.
func (g *Gateway) pick(key uint64, exclude *replica) (*replica, error) {
	var winner *replica
	var winScore uint64
	var fallback *replica
	var fallbackLoad int64
	inRotation := 0
	for _, r := range g.replicas {
		if r == exclude || !r.state().InRotation() {
			continue
		}
		inRotation++
		load := r.inflight.Load()
		if load < int64(g.cfg.MaxInflight) && (fallback == nil || load < fallbackLoad) {
			fallback, fallbackLoad = r, load
		}
		score := rendezvousScore(key, r.name)
		if winner == nil || score > winScore || (score == winScore && r.name < winner.name) {
			winner, winScore = r, score
		}
	}
	if inRotation == 0 {
		return nil, errNoReplicas
	}
	if winner.inflight.Load() < int64(g.cfg.MaxInflight) {
		return winner, nil
	}
	if fallback == nil {
		return nil, errAllSaturated
	}
	return fallback, nil
}

// upstreamResponse is one buffered replica response. Buffering (rather
// than streaming) is what makes the retry path safe: nothing has been
// written to the client before the gateway decides the response is
// final.
type upstreamResponse struct {
	status      int
	contentType string
	retryAfter  string
	traceID     string
	body        []byte
}

// forward sends one buffered request to a replica and buffers its
// response, accounting in-flight load for the duration.
func (g *Gateway) forward(ctx context.Context, rep *replica, path, query, contentType, traceID string, body []byte) (*upstreamResponse, error) {
	if err := faultinject.Check(faultinject.PointGatewayRoute); err != nil {
		return nil, err
	}
	n := rep.inflight.Add(1)
	rep.inflightGauge.Set(float64(n))
	defer func() {
		rep.inflightGauge.Set(float64(rep.inflight.Add(-1)))
	}()
	url := rep.base + path
	if query != "" {
		url += "?" + query
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if traceID != "" {
		req.Header.Set(trace.HeaderTraceID, traceID)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("reading replica response: %w", err)
	}
	rep.routed.Inc()
	return &upstreamResponse{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  resp.Header.Get("Retry-After"),
		traceID:     resp.Header.Get(trace.HeaderTraceID),
		body:        respBody,
	}, nil
}

// retryableStatus reports replica responses worth one attempt on a
// different replica: 500 and 502 mean this replica failed the request,
// while 429/503 are deliberate backpressure (relayed, never retried —
// hammering a second replica is how one overload becomes two) and 504
// means the work deadline already expired.
func retryableStatus(code int) bool {
	return code == http.StatusInternalServerError || code == http.StatusBadGateway
}

// proxy routes one request: read + cap the body, place it by rendezvous
// hash, forward, and retry at most MaxRetries times on a different
// replica when transport fails or the replica answers 500/502 — each
// retry spending a budget token. Transport outcomes feed the health
// machine, so a dead replica drains from the route path alone.
func (g *Gateway) proxy(endpoint string, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", g.cfg.MaxBodyBytes))
		} else {
			writeError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		}
		return
	}
	key := routeKey(r, body)
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.ProxyTimeout)
	defer cancel()
	contentType := r.Header.Get("Content-Type")
	traceID := r.Header.Get(trace.HeaderTraceID)

	var exclude *replica // the replica a retry must avoid
	var lastErr error
	for attempt := 0; ; attempt++ {
		rep, pickErr := g.pick(key, exclude)
		if rep == nil {
			if errors.Is(pickErr, errNoReplicas) {
				// A first-attempt routing failure means the fleet is gone
				// (503, try later); mid-retry it means the one replica that
				// could have rescued the request was just excluded — fall
				// through to the transport-failure answer below.
				if attempt == 0 {
					g.unroutable.Inc()
					w.Header().Set("Retry-After", serve.RetryAfterHeader(g.cfg.RetryAfter))
					writeError(w, http.StatusServiceUnavailable, "no replicas in rotation; retry later")
					return
				}
				g.badGateway.Inc()
				writeError(w, http.StatusBadGateway, "replica failed and no other replica is in rotation: "+lastErr.Error())
				return
			}
			g.shed.Inc()
			w.Header().Set("Retry-After", serve.RetryAfterHeader(g.cfg.RetryAfter))
			writeError(w, http.StatusTooManyRequests, "all replicas at capacity; retry later")
			return
		}
		up, err := g.forward(ctx, rep, r.URL.Path, r.URL.RawQuery, contentType, traceID, body)
		if err != nil {
			// Transport failure: the replica never answered. Feed the
			// health machine so a dead replica drains fast, then retry on
			// a different replica if the budget allows.
			lastErr = err
			g.observe(rep, false, nil, err.Error())
			if attempt < g.cfg.MaxRetries {
				if g.budget.spend() {
					g.retries.Inc()
					exclude = rep
					continue
				}
				g.budgetExhausted.Inc()
			}
			g.badGateway.Inc()
			writeError(w, http.StatusBadGateway, "replica unreachable: "+err.Error())
			return
		}
		g.observe(rep, true, nil, "")
		if retryableStatus(up.status) && attempt < g.cfg.MaxRetries {
			if g.budget.spend() {
				g.retries.Inc()
				exclude = rep
				lastErr = fmt.Errorf("replica %s answered %d", rep.name, up.status)
				continue
			}
			g.budgetExhausted.Inc()
		}
		g.budget.earn()
		g.writeUpstream(w, up)
		return
	}
}

// writeUpstream relays a buffered replica response. Replica
// backpressure (429/503) carries a unified Retry-After: the replica's
// own header when present — dvserve renders it with
// serve.RetryAfterHeader, the same function the gateway uses — or the
// gateway default otherwise, so clients always get the one format.
func (g *Gateway) writeUpstream(w http.ResponseWriter, up *upstreamResponse) {
	if up.contentType != "" {
		w.Header().Set("Content-Type", up.contentType)
	}
	if up.traceID != "" {
		w.Header().Set(trace.HeaderTraceID, up.traceID)
	}
	switch up.status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		retryAfter := up.retryAfter
		if retryAfter == "" {
			retryAfter = serve.RetryAfterHeader(g.cfg.RetryAfter)
		}
		w.Header().Set("Retry-After", retryAfter)
		if up.status == http.StatusTooManyRequests {
			g.pass429.Inc()
		} else {
			g.pass503.Inc()
		}
	}
	w.WriteHeader(up.status)
	_, _ = w.Write(up.body)
}
