package gateway

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"time"

	"deepvalidation/internal/faultinject"
	"deepvalidation/internal/serve"
	"deepvalidation/internal/trace"
)

// Gateway route outcomes: how one proxied request left the gateway.
// They label the dv_gw_route_latency_seconds histograms, the gateway's
// hop-span trees, and the SLO cross-link ring.
const (
	outcomeOK          = "ok"          // routed, replica answered, no retry needed
	outcomeRetry       = "retry"       // routed successfully after >= 1 retry hop
	outcomeShed        = "shed"        // gateway-origin 429/503 (saturated or unroutable)
	outcomePassthrough = "passthrough" // replica 429/503 backpressure relayed
	outcomeBadGateway  = "bad_gateway" // 502 or a relayed replica 500/502
)

// Route-decision reasons recorded on the route span of each hop.
const (
	reasonRendezvous  = "rendezvous"   // the highest-random-weight winner took it
	reasonLeastLoaded = "least_loaded" // winner at capacity; least-loaded fallback
)

// recentOutcomes bounds the ring of route outcomes kept for SLO breach
// cross-linking.
const recentOutcomes = 256

// routeKey derives the placement key for one request: the client's
// X-DV-Trace-Id when present (so a traced request is replayable against
// the same replica), otherwise the FNV-1a hash of the body — identical
// payloads land on the same replica, which keeps any replica-local
// caching and flight-recorder context coherent. A gateway-minted trace
// ID deliberately does not participate: it is random, and routing by it
// would scatter identical payloads.
func routeKey(r *http.Request, body []byte) uint64 {
	h := fnv.New64a()
	if id := r.Header.Get(trace.HeaderTraceID); id != "" {
		_, _ = io.WriteString(h, id)
	} else {
		_, _ = h.Write(body)
	}
	return h.Sum64()
}

// rendezvousScore is the highest-random-weight score of (key, replica):
// each replica hashes the key with its own name salted in, and the
// highest score wins. Adding or removing a replica only remaps the keys
// whose winner changed — no ring maintenance, no global reshuffle.
func rendezvousScore(key uint64, name string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(key >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	_, _ = io.WriteString(h, name)
	return h.Sum64()
}

// Routing failure modes pick distinguishes for the shed paths.
var (
	errNoReplicas   = errors.New("gateway: no replicas in rotation")
	errAllSaturated = errors.New("gateway: every in-rotation replica is at its in-flight cap")
)

// pick places a key: the rendezvous winner among in-rotation replicas
// not in exclude, falling back to the least-loaded eligible replica
// when the winner is at its in-flight cap. The reason string says which
// of the two happened — it is recorded on the hop's route span.
// Deterministic given the same rotation set and loads — the race-mode
// equivalence tests rely on it.
func (g *Gateway) pick(key uint64, exclude *replica) (*replica, string, error) {
	var winner *replica
	var winScore uint64
	var fallback *replica
	var fallbackLoad int64
	inRotation := 0
	for _, r := range g.replicas {
		if r == exclude || !r.state().InRotation() {
			continue
		}
		inRotation++
		load := r.inflight.Load()
		if load < int64(g.cfg.MaxInflight) && (fallback == nil || load < fallbackLoad) {
			fallback, fallbackLoad = r, load
		}
		score := rendezvousScore(key, r.name)
		if winner == nil || score > winScore || (score == winScore && r.name < winner.name) {
			winner, winScore = r, score
		}
	}
	if inRotation == 0 {
		return nil, "", errNoReplicas
	}
	if winner.inflight.Load() < int64(g.cfg.MaxInflight) {
		return winner, reasonRendezvous, nil
	}
	if fallback == nil {
		return nil, "", errAllSaturated
	}
	return fallback, reasonLeastLoaded, nil
}

// upstreamResponse is one buffered replica response. Buffering (rather
// than streaming) is what makes the retry path safe: nothing has been
// written to the client before the gateway decides the response is
// final.
type upstreamResponse struct {
	status      int
	contentType string
	retryAfter  string
	traceID     string
	body        []byte
}

// forward sends one buffered request to a replica and buffers its
// response, accounting in-flight load for the duration.
func (g *Gateway) forward(ctx context.Context, rep *replica, path, query, contentType, traceID string, body []byte) (*upstreamResponse, error) {
	if err := faultinject.Check(faultinject.PointGatewayRoute); err != nil {
		return nil, err
	}
	n := rep.inflight.Add(1)
	rep.inflightGauge.Set(float64(n))
	defer func() {
		rep.inflightGauge.Set(float64(rep.inflight.Add(-1)))
	}()
	url := rep.base + path
	if query != "" {
		url += "?" + query
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if traceID != "" {
		req.Header.Set(trace.HeaderTraceID, traceID)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("reading replica response: %w", err)
	}
	rep.routed.Inc()
	return &upstreamResponse{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  resp.Header.Get("Retry-After"),
		traceID:     resp.Header.Get(trace.HeaderTraceID),
		body:        respBody,
	}, nil
}

// retryableStatus reports replica responses worth one attempt on a
// different replica: 500 and 502 mean this replica failed the request,
// while 429/503 are deliberate backpressure (relayed, never retried —
// hammering a second replica is how one overload becomes two) and 504
// means the work deadline already expired.
func retryableStatus(code int) bool {
	return code == http.StatusInternalServerError || code == http.StatusBadGateway
}

// hopRecord is one routing attempt as seen by the hop-span tree: the
// route decision (or its failure) and the upstream round-trip.
type hopRecord struct {
	replica   string // empty when the pick itself failed
	reason    string
	pickStart time.Time
	pickEnd   time.Time
	fwdEnd    time.Time
	status    int // replica's HTTP status; 0 when transport failed
	err       string
	retry     bool
}

// routeResult is the terminal state of one routed request: either a
// final upstream response or a gateway-origin error, plus the hop
// history and the outcome classification.
type routeResult struct {
	up      *upstreamResponse
	status  int    // gateway-origin status when up == nil
	msg     string // gateway-origin error body when up == nil
	outcome string
	hops    []hopRecord
}

// clientStatus is the HTTP status the client will see.
func (rr *routeResult) clientStatus() int {
	if rr.up != nil {
		return rr.up.status
	}
	return rr.status
}

// route runs the placement/retry loop for one request and classifies
// the terminal outcome. Hop records are collected only when keepHops —
// the untraced path allocates nothing for them.
func (g *Gateway) route(ctx context.Context, key uint64, path, query, contentType, fwdID string, body []byte, keepHops bool) routeResult {
	var res routeResult
	var exclude *replica // the replica a retry must avoid
	var lastErr error
	record := func(h hopRecord) {
		if keepHops {
			res.hops = append(res.hops, h)
		}
	}
	for attempt := 0; ; attempt++ {
		pickStart := time.Now()
		rep, reason, pickErr := g.pick(key, exclude)
		pickEnd := time.Now()
		if rep == nil {
			record(hopRecord{pickStart: pickStart, pickEnd: pickEnd, err: pickErr.Error(), retry: attempt > 0})
			if errors.Is(pickErr, errNoReplicas) {
				// A first-attempt routing failure means the fleet is gone
				// (503, try later); mid-retry it means the one replica that
				// could have rescued the request was just excluded — answer
				// like a transport failure.
				if attempt == 0 {
					g.unroutable.Inc()
					res.status, res.msg = http.StatusServiceUnavailable, "no replicas in rotation; retry later"
					res.outcome = outcomeShed
					return res
				}
				g.badGateway.Inc()
				res.status, res.msg = http.StatusBadGateway, "replica failed and no other replica is in rotation: "+lastErr.Error()
				res.outcome = outcomeBadGateway
				return res
			}
			g.shed.Inc()
			res.status, res.msg = http.StatusTooManyRequests, "all replicas at capacity; retry later"
			res.outcome = outcomeShed
			return res
		}
		hop := hopRecord{replica: rep.name, reason: reason, pickStart: pickStart, pickEnd: pickEnd, retry: attempt > 0}
		up, err := g.forward(ctx, rep, path, query, contentType, fwdID, body)
		hop.fwdEnd = time.Now()
		if err != nil {
			// Transport failure: the replica never answered. Feed the
			// health machine so a dead replica drains fast, then retry on
			// a different replica if the budget allows.
			hop.err = err.Error()
			record(hop)
			lastErr = err
			g.observe(rep, false, nil, err.Error())
			if attempt < g.cfg.MaxRetries {
				if g.budget.spend() {
					g.retries.Inc()
					exclude = rep
					continue
				}
				g.budgetExhausted.Inc()
			}
			g.badGateway.Inc()
			res.status, res.msg = http.StatusBadGateway, "replica unreachable: "+err.Error()
			res.outcome = outcomeBadGateway
			return res
		}
		hop.status = up.status
		record(hop)
		g.observe(rep, true, nil, "")
		if retryableStatus(up.status) && attempt < g.cfg.MaxRetries {
			if g.budget.spend() {
				g.retries.Inc()
				exclude = rep
				lastErr = fmt.Errorf("replica %s answered %d", rep.name, up.status)
				continue
			}
			g.budgetExhausted.Inc()
		}
		g.budget.earn()
		res.up = up
		switch {
		case up.status == http.StatusTooManyRequests || up.status == http.StatusServiceUnavailable:
			res.outcome = outcomePassthrough
		case retryableStatus(up.status):
			// A relayed replica 500/502 after the retry allowance — the
			// gateway failed to shield the client from a replica failure.
			res.outcome = outcomeBadGateway
		case attempt > 0:
			res.outcome = outcomeRetry
		default:
			res.outcome = outcomeOK
		}
		return res
	}
}

// proxy routes one request: read + cap the body, resolve its trace
// identity, place it by rendezvous hash, forward, and retry at most
// MaxRetries times on a different replica when transport fails or the
// replica answers 500/502 — each retry spending a budget token.
// Transport outcomes feed the health machine, so a dead replica drains
// from the route path alone. Every terminal outcome is observed into
// the per-outcome latency histograms, the SLO cross-link ring, and —
// when the request is traced — the gateway's hop-span store.
func (g *Gateway) proxy(endpoint string, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	t0 := time.Now()
	id, traced := g.traceDecision(r)
	if id != "" {
		// Echo the gateway's trace identity on every response — success
		// or error — so any request seen while tracing is on can be
		// looked up afterwards, even if it never reached a replica.
		w.Header().Set(trace.HeaderTraceID, id)
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", g.cfg.MaxBodyBytes))
		} else {
			writeError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		}
		return
	}
	key := routeKey(r, body)
	admissionEnd := time.Now()
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.ProxyTimeout)
	defer cancel()
	// Forward the request's trace identity on every hop: the resolved
	// gateway ID when tracing is on (minted or client-supplied), else
	// whatever the client sent, verbatim — tracing off must not change
	// the wire behavior.
	fwdID := id
	if fwdID == "" {
		fwdID = r.Header.Get(trace.HeaderTraceID)
	}
	res := g.route(ctx, key, r.URL.Path, r.URL.RawQuery, r.Header.Get("Content-Type"), fwdID, body, traced)
	g.finishProxy(endpoint, id, traced, t0, admissionEnd, &res)
	if res.up == nil {
		if res.status == http.StatusServiceUnavailable || res.status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", serve.RetryAfterHeader(g.cfg.RetryAfter))
		}
		writeError(w, res.status, res.msg)
		return
	}
	g.writeUpstream(w, res.up, id)
}

// writeUpstream relays a buffered replica response. The trace header
// prefers the gateway's own ID (already set by proxy) over the
// replica's echo — they are the same value on the stitched path, but a
// replica must not be able to overwrite the identity the gateway
// advertised. Replica backpressure (429/503) carries a unified
// Retry-After: the replica's own header when present — dvserve renders
// it with serve.RetryAfterHeader, the same function the gateway uses —
// or the gateway default otherwise, so clients always get the one
// format.
func (g *Gateway) writeUpstream(w http.ResponseWriter, up *upstreamResponse, gatewayID string) {
	if up.contentType != "" {
		w.Header().Set("Content-Type", up.contentType)
	}
	if gatewayID == "" && up.traceID != "" {
		w.Header().Set(trace.HeaderTraceID, up.traceID)
	}
	switch up.status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		retryAfter := up.retryAfter
		if retryAfter == "" {
			retryAfter = serve.RetryAfterHeader(g.cfg.RetryAfter)
		}
		w.Header().Set("Retry-After", retryAfter)
		if up.status == http.StatusTooManyRequests {
			g.pass429.Inc()
		} else {
			g.pass503.Inc()
		}
	}
	w.WriteHeader(up.status)
	_, _ = w.Write(up.body)
}
