package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"deepvalidation/internal/artifact"
	"deepvalidation/internal/faultinject"
	"deepvalidation/internal/obs"
)

// RolloutRequest is the body of POST /admin/rollout: the staged
// validator artifact to push across the fleet.
type RolloutRequest struct {
	Artifact string `json:"artifact"`
}

// RolloutReplica reports one replica's outcome within a rollout.
type RolloutReplica struct {
	Name       string `json:"name"`
	Switched   bool   `json:"switched"`              // new artifact written and reloaded
	Converged  bool   `json:"converged"`             // /readyz reported the target checksum
	RolledBack bool   `json:"rolled_back,omitempty"` // restored to the prior artifact after a halt
	Error      string `json:"error,omitempty"`
}

// RolloutResponse is the body answering POST /admin/rollout.
type RolloutResponse struct {
	TargetSHA256 string           `json:"target_sha256"`
	Completed    bool             `json:"completed"`
	Replicas     []RolloutReplica `json:"replicas"`
	Error        string           `json:"error,omitempty"`
}

// Rollout pushes the staged validator artifact across the fleet, one
// replica at a time:
//
//  1. Preconditions: the staged file must be a valid checksummed
//     container (its payload SHA-256 is the convergence target), and
//     every replica must be in rotation with a configured
//     ValidatorPath. A fleet that is already degraded does not get a
//     rollout on top.
//  2. Per replica, in configuration order: back up the current artifact
//     bytes in memory, atomically write the staged bytes over the
//     replica's validator path, POST /v1/reload (bounded retries), and
//     poll /readyz until its ValidatorSHA256 equals the target.
//  3. On a replica's reload-failure streak: restore that replica's disk
//     file, halt, and roll back every already-switched replica in
//     reverse order (restore bytes, reload, verify the prior checksum)
//     — so a halted rollout leaves the whole fleet serving the prior
//     artifact.
//
// One rollout runs at a time; concurrent requests serialize.
func (g *Gateway) Rollout(stagedPath string) (RolloutResponse, int) {
	g.rolloutMu.Lock()
	defer g.rolloutMu.Unlock()

	resp := RolloutResponse{}
	// Validate the staged artifact before touching any replica: ReadFile
	// checksums the payload, so a torn or corrupt staged file is
	// rejected here, not discovered halfway through the fleet.
	info, _, err := artifact.ReadFile(stagedPath)
	if err != nil {
		resp.Error = fmt.Sprintf("staged artifact rejected: %v", err)
		return resp, http.StatusBadRequest
	}
	if info.Legacy || info.Header.PayloadSHA256 == "" {
		resp.Error = "staged artifact is a legacy bare gob with no checksum; rollout convergence cannot be verified"
		return resp, http.StatusBadRequest
	}
	if info.Header.Kind != artifact.KindValidator {
		resp.Error = fmt.Sprintf("staged artifact is kind %q, want %q", info.Header.Kind, artifact.KindValidator)
		return resp, http.StatusBadRequest
	}
	target := info.Header.PayloadSHA256
	resp.TargetSHA256 = target
	// Raw container bytes are what lands on each replica's disk, so the
	// on-disk payload checksum is bit-identical to the target.
	raw, err := os.ReadFile(stagedPath)
	if err != nil {
		resp.Error = fmt.Sprintf("reading staged artifact: %v", err)
		return resp, http.StatusBadRequest
	}
	for _, r := range g.replicas {
		if r.validatorPath == "" {
			resp.Error = fmt.Sprintf("replica %s has no validator path configured; rollout needs every replica writable", r.name)
			return resp, http.StatusConflict
		}
		if !r.state().InRotation() {
			resp.Error = fmt.Sprintf("replica %s is %s; rollout requires the whole fleet in rotation", r.name, r.state())
			return resp, http.StatusConflict
		}
	}

	g.emitRollout(obs.LevelInfo, fmt.Sprintf("rollout started: %d replicas -> %s", len(g.replicas), shortSHA(target)), "", map[string]any{
		"target_sha256": target, "replicas": len(g.replicas), "artifact": stagedPath,
	})

	// switched tracks completed replicas with the backups a rollback
	// would restore.
	type switched struct {
		rep      *replica
		backup   []byte
		priorSHA string
	}
	var done []switched
	resp.Replicas = make([]RolloutReplica, 0, len(g.replicas))
	for _, r := range g.replicas {
		out := RolloutReplica{Name: r.name}
		backup, priorSHA, err := g.switchReplica(r, raw, target)
		if err == nil {
			out.Switched, out.Converged = true, true
			done = append(done, switched{rep: r, backup: backup, priorSHA: priorSHA})
			resp.Replicas = append(resp.Replicas, out)
			g.emitRollout(obs.LevelInfo, fmt.Sprintf("rollout: replica %s converged on %s", r.name, shortSHA(target)), "", map[string]any{
				"replica": r.name, "target_sha256": target,
			})
			continue
		}
		// Reload-failure streak on this replica: halt and roll back.
		out.Error = err.Error()
		resp.Replicas = append(resp.Replicas, out)
		g.rolloutsFailed.Inc()
		g.emitRollout(obs.LevelError, fmt.Sprintf("rollout halted at replica %s; rolling back %d switched replicas", r.name, len(done)), err.Error(), map[string]any{
			"replica": r.name, "target_sha256": target, "switched": len(done),
		})
		for j := len(done) - 1; j >= 0; j-- {
			d := done[j]
			rbErr := g.restoreReplica(d.rep, d.backup, d.priorSHA)
			g.rollbacks.Inc()
			for k := range resp.Replicas {
				if resp.Replicas[k].Name == d.rep.name {
					resp.Replicas[k].RolledBack = rbErr == nil
					resp.Replicas[k].Converged = false
					if rbErr != nil {
						resp.Replicas[k].Error = "rollback failed: " + rbErr.Error()
					}
				}
			}
			if rbErr != nil {
				g.emitRollout(obs.LevelError, fmt.Sprintf("rollback of replica %s failed", d.rep.name), rbErr.Error(), map[string]any{"replica": d.rep.name})
			} else {
				g.emitRollout(obs.LevelWarn, fmt.Sprintf("rolled back replica %s to %s", d.rep.name, shortSHA(d.priorSHA)), "", map[string]any{
					"replica": d.rep.name, "prior_sha256": d.priorSHA,
				})
			}
		}
		resp.Error = fmt.Sprintf("rollout halted at replica %s and rolled back: %v", r.name, err)
		return resp, http.StatusInternalServerError
	}
	resp.Completed = true
	g.rollouts.Inc()
	g.emitRollout(obs.LevelInfo, fmt.Sprintf("rollout completed: %d replicas on %s", len(g.replicas), shortSHA(target)), "", map[string]any{
		"target_sha256": target, "replicas": len(g.replicas),
	})
	return resp, http.StatusOK
}

// switchReplica performs one replica's staged switch: back up the
// current artifact, write the staged bytes, reload, and verify
// convergence. On failure the replica's own disk file is restored (the
// replica never reloaded, so it still serves — and reports — the prior
// artifact) and the error propagates to halt the rollout.
func (g *Gateway) switchReplica(r *replica, raw []byte, target string) (backup []byte, priorSHA string, err error) {
	if err := faultinject.Check(faultinject.PointGatewayRollout); err != nil {
		return nil, "", err
	}
	backup, err = os.ReadFile(r.validatorPath)
	if err != nil {
		return nil, "", fmt.Errorf("backing up %s: %w", r.validatorPath, err)
	}
	priorSHA = r.validatorSHA()
	if err := atomicWriteFile(r.validatorPath, raw); err != nil {
		return nil, "", fmt.Errorf("staging artifact on %s: %w", r.name, err)
	}
	if err := g.reloadAndVerify(r, target); err != nil {
		// Put the prior bytes back so the replica's disk matches what it
		// is still serving; a later manual reload must not pick up the
		// artifact this rollout failed to land.
		if restoreErr := atomicWriteFile(r.validatorPath, backup); restoreErr != nil {
			return nil, "", fmt.Errorf("%w (and restoring the prior artifact failed: %v)", err, restoreErr)
		}
		return nil, "", err
	}
	return backup, priorSHA, nil
}

// restoreReplica rolls one switched replica back: prior bytes on disk,
// reload, and (when the prior artifact had a checksum) convergence back
// onto it.
func (g *Gateway) restoreReplica(r *replica, backup []byte, priorSHA string) error {
	if err := atomicWriteFile(r.validatorPath, backup); err != nil {
		return fmt.Errorf("restoring %s: %w", r.validatorPath, err)
	}
	return g.reloadAndVerify(r, priorSHA)
}

// reloadAndVerify POSTs /v1/reload with bounded retries, then polls the
// replica's /readyz until its validator checksum equals target (skipped
// when target is empty — a legacy prior artifact has no checksum to
// converge on).
func (g *Gateway) reloadAndVerify(r *replica, target string) error {
	var lastErr error
	for attempt := 1; ; attempt++ {
		lastErr = g.postReload(r)
		if lastErr == nil {
			break
		}
		if attempt >= g.cfg.ReloadRetries {
			return fmt.Errorf("reload failed after %d attempts: %w", attempt, lastErr)
		}
	}
	if target == "" {
		return nil
	}
	for attempt := 1; ; attempt++ {
		body, err := g.fetchReadyz(r, g.cfg.ProbeTimeout)
		if err == nil && body.ValidatorSHA256 == target {
			// Feed the fresh identity into the replica's status so
			// /admin/replicas reflects the converged fleet immediately.
			ok := body.Status == "ready"
			g.observe(r, ok, body, "")
			return nil
		}
		if attempt >= g.cfg.RolloutVerifyAttempts {
			got := "unreachable"
			if err == nil {
				got = shortSHA(body.ValidatorSHA256)
			}
			return fmt.Errorf("replica %s did not converge on %s after %d polls (last saw %s)", r.name, shortSHA(target), attempt, got)
		}
		time.Sleep(g.cfg.RolloutVerifyDelay)
	}
}

// postReload POSTs the replica's /v1/reload and demands a 200.
func (g *Gateway) postReload(r *replica) error {
	req, err := http.NewRequest(http.MethodPost, r.base+"/v1/reload", nil)
	if err != nil {
		return err
	}
	client := *g.client
	client.Timeout = g.cfg.ProxyTimeout
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("reload answered %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return nil
}

// atomicWriteFile lands data at path with the repository's atomic-write
// discipline (temp file in the same directory, fsync, rename, directory
// fsync) so a crash mid-rollout leaves either the old artifact or the
// new one, never a hybrid.
func atomicWriteFile(path string, data []byte) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".rollout-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(data); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	artifact.SyncDir(dir)
	return nil
}

// emitRollout files one rollout wide event.
func (g *Gateway) emitRollout(level obs.Level, msg, errStr string, extra map[string]any) {
	g.events.Emit(obs.Event{Type: obs.TypeRollout, Level: level, Msg: msg, Err: errStr, Extra: extra})
}

// shortSHA abbreviates a checksum for log lines.
func shortSHA(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	if sha == "" {
		return "(none)"
	}
	return sha
}

// handleRollout is POST /admin/rollout.
func (g *Gateway) handleRollout(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req RolloutRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding rollout request: "+err.Error())
		return
	}
	if req.Artifact == "" {
		writeError(w, http.StatusBadRequest, `rollout request needs {"artifact": "/path/to/staged.dvart"}`)
		return
	}
	resp, status := g.Rollout(req.Artifact)
	writeJSON(w, status, resp)
}
