package gateway

import (
	"fmt"
	"net/http"
	"time"

	"deepvalidation/internal/obs"
	"deepvalidation/internal/trace"
)

// SLOOptions declares the gateway's burn-rate objectives, evaluated by
// the same obs.Engine dvserve uses — over the dv_gw_* instruments
// instead of the serving counters.
type SLOOptions struct {
	// Enabled turns the engine on; it also needs Config.Registry, which
	// carries the counters and histograms the objectives difference.
	Enabled bool
	// Availability is the goal fraction of requests the gateway routed
	// at all — not shed at capacity (429) and not refused unroutable
	// (503); default 0.999.
	Availability float64
	// PassthroughGoal is the goal fraction of requests not answered
	// with relayed replica backpressure (429/503 passthrough); default
	// 0.99 — replicas shedding is an expected, bounded regime.
	PassthroughGoal float64
	// BadGatewayGoal is the goal fraction of requests not answered 502
	// (or a relayed replica 500/502 the retry budget could not absorb);
	// default 0.999.
	BadGatewayGoal float64
	// LatencyTarget and LatencyGoal declare the route-latency
	// objective: at least LatencyGoal of successfully routed requests
	// (ok + retry outcomes) finish within LatencyTarget (defaults
	// 250ms and 0.99). The target snaps up to the enclosing
	// latency-histogram bucket edge.
	LatencyTarget time.Duration
	LatencyGoal   float64
	// Windows, Interval, and Burn tune the engine; zero values mean
	// obs.DefaultWindows, obs.DefaultSLOInterval, and
	// obs.DefaultBurnThreshold.
	Windows  []obs.Window
	Interval time.Duration
	Burn     float64
}

// sloDefaults fills unset objective goals in place.
func (o *SLOOptions) sloDefaults() {
	if o.Availability <= 0 || o.Availability >= 1 {
		o.Availability = 0.999
	}
	if o.PassthroughGoal <= 0 || o.PassthroughGoal >= 1 {
		o.PassthroughGoal = 0.99
	}
	if o.BadGatewayGoal <= 0 || o.BadGatewayGoal >= 1 {
		o.BadGatewayGoal = 0.999
	}
	if o.LatencyTarget <= 0 {
		o.LatencyTarget = 250 * time.Millisecond
	}
	if o.LatencyGoal <= 0 || o.LatencyGoal >= 1 {
		o.LatencyGoal = 0.99
	}
}

// buildSLO assembles the burn-rate engine over the gateway objectives.
// All sources difference monotone counters/histograms the route path
// already maintains, so evaluation costs nothing on the hot path.
func (g *Gateway) buildSLO() {
	o := g.cfg.SLO
	if !o.Enabled || g.cfg.Registry == nil {
		return
	}
	target := o.LatencyTarget.Seconds()
	objectives := []obs.Objective{
		{
			Name:        "availability",
			Description: fmt.Sprintf("fraction of requests routed without gateway-origin shedding (goal %g)", o.Availability),
			Goal:        o.Availability,
			Source: func() (float64, float64) {
				bad := float64(g.shed.Value() + g.unroutable.Value())
				tot := float64(g.reqCheck.Value() + g.reqBatch.Value())
				return bad, tot
			},
		},
		{
			Name:        "passthrough",
			Description: fmt.Sprintf("fraction of requests not answered with relayed replica backpressure (goal %g)", o.PassthroughGoal),
			Goal:        o.PassthroughGoal,
			Source: func() (float64, float64) {
				bad := float64(g.pass429.Value() + g.pass503.Value())
				tot := float64(g.reqCheck.Value() + g.reqBatch.Value())
				return bad, tot
			},
		},
		{
			Name:        "bad_gateway",
			Description: fmt.Sprintf("fraction of requests not answered 502 after the retry allowance (goal %g)", o.BadGatewayGoal),
			Goal:        o.BadGatewayGoal,
			Source: func() (float64, float64) {
				bad := float64(g.latBadGateway.Count())
				tot := float64(g.reqCheck.Value() + g.reqBatch.Value())
				return bad, tot
			},
		},
		{
			Name:        "route_latency",
			Description: fmt.Sprintf("fraction of routed requests under %v end to end (goal %g)", o.LatencyTarget, o.LatencyGoal),
			Goal:        o.LatencyGoal,
			Source: func() (float64, float64) {
				bad := float64(g.latOK.CountAbove(target) + g.latRetry.CountAbove(target))
				tot := float64(g.latOK.Count() + g.latRetry.Count())
				return bad, tot
			},
		},
	}
	g.slo = obs.NewEngine(obs.SLOConfig{
		Objectives: objectives,
		Windows:    o.Windows,
		Interval:   o.Interval,
		Burn:       o.Burn,
		Registry:   g.cfg.Registry,
		Events:     g.events,
		TraceIDs:   g.sloTraceIDs(target),
	})
}

// sloTraceIDs builds the breach cross-linking callback: up to n recent
// trace IDs whose outcome violates the breached objective, pulled from
// the gateway's outcome ring. With tracing on, every returned ID
// resolves on the gateway's own /debug/dv/trace/{id}.
func (g *Gateway) sloTraceIDs(latencyTarget float64) func(string, int) []string {
	return func(objective string, n int) []string {
		if g.recent == nil || n <= 0 {
			return nil
		}
		var outcomes []string
		switch objective {
		case "availability":
			outcomes = []string{outcomeShed}
		case "passthrough":
			outcomes = []string{outcomePassthrough}
		case "bad_gateway":
			outcomes = []string{outcomeBadGateway}
		case "route_latency":
			outcomes = []string{outcomeOK, outcomeRetry}
		default:
			return nil
		}
		var ids []string
		for _, oc := range outcomes {
			for _, e := range g.recent.Snapshot(trace.Filter{Outcome: oc}) {
				if e.TraceID == "" {
					continue
				}
				if objective == "route_latency" && e.LatencySec <= latencyTarget {
					continue
				}
				ids = append(ids, e.TraceID)
				if len(ids) >= n {
					return ids
				}
			}
		}
		return ids
	}
}

// SLOStatus returns the gateway SLO engine's last evaluation (Enabled
// false when the engine is off).
func (g *Gateway) SLOStatus() obs.Status {
	return g.slo.Status()
}

// SLOTick forces one synchronous SLO evaluation — the deterministic
// hook tests and smoke drivers use instead of waiting out the engine's
// interval. Nil-safe when the engine is disabled.
func (g *Gateway) SLOTick() { g.slo.Tick() }

// handleSLO serves the burn-rate engine's per-objective evaluation.
func (g *Gateway) handleSLO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, g.SLOStatus())
}

// handleEvents serves the gateway's wide-event ring (replica health,
// rollouts, SLO breaches) through obs.HandleEvents, the handler shared
// with dvserve.
func (g *Gateway) handleEvents(w http.ResponseWriter, r *http.Request) {
	obs.HandleEvents(g.events, w, r)
}
