package gateway

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"deepvalidation/internal/trace"
)

// The gateway's leg of cross-tier tracing. Each traced request gets a
// hop-span tree:
//
//	gateway — attrs endpoint, outcome, status
//	├── admission            (read + cap body, resolve trace identity)
//	├── route    {hop 0}     (pick decision: replica + reason, or error)
//	├── upstream {hop 0}     (round-trip to the chosen replica)
//	└── route/upstream {hop 1...}  — one pair per retry
//
// The same trace ID travels to the replica on every hop, so the
// replica's own verdict span tree shares the identity; GET
// /debug/dv/trace/{id} on the gateway stitches the two tiers into one
// merged tree, degrading to an explicitly-marked partial tree when the
// replica's tree cannot be fetched.

// stitchItemProbes bounds how many {id}.{i} batch-item traces the
// stitcher probes a replica for when the base ID itself has no replica
// trace (batch requests are traced per item on the replica).
const stitchItemProbes = 32

// traceDecision resolves one request's trace identity, mirroring
// dvserve's rule: a validated client X-DV-Trace-Id is always traced
// (the caller injected it to follow this exact request); otherwise a
// minted ID is head-sampled deterministically. With tracing off both
// returns are zero — no ID is minted at all.
func (g *Gateway) traceDecision(r *http.Request) (id string, traced bool) {
	if g.sampler == nil {
		return "", false
	}
	if hid, ok := trace.FromHeader(r.Header.Get(trace.HeaderTraceID)); ok {
		return hid, true
	}
	id = trace.NewID()
	return id, g.sampler.Sample(id)
}

// observeRouteLatency files one terminal outcome's end-to-end latency
// into its per-outcome histogram.
func (g *Gateway) observeRouteLatency(outcome string, sec float64) {
	switch outcome {
	case outcomeOK:
		g.latOK.Observe(sec)
	case outcomeRetry:
		g.latRetry.Observe(sec)
	case outcomeShed:
		g.latShed.Observe(sec)
	case outcomePassthrough:
		g.latPassthrough.Observe(sec)
	case outcomeBadGateway:
		g.latBadGateway.Observe(sec)
	}
}

// finishProxy is the single accounting site for a routed request:
// latency histogram by outcome, the SLO cross-link ring, and — when
// traced — assembly and storage of the hop-span tree.
func (g *Gateway) finishProxy(endpoint, id string, traced bool, t0, admissionEnd time.Time, res *routeResult) {
	end := time.Now()
	lat := end.Sub(t0)
	g.observeRouteLatency(res.outcome, lat.Seconds())
	if g.recent != nil {
		g.recent.Record(trace.Entry{
			TimeNs:     end.UnixNano(),
			TraceID:    id,
			Endpoint:   endpoint,
			Outcome:    res.outcome,
			LatencySec: lat.Seconds(),
		})
	}
	if !traced || g.traces == nil || id == "" {
		return
	}
	root := trace.NewSpan("gateway", t0, end)
	root.SetAttr("endpoint", endpoint)
	root.SetAttr("outcome", res.outcome)
	root.SetAttr("status", res.clientStatus())
	root.AddChild(trace.NewSpan("admission", t0, admissionEnd))
	for i, h := range res.hops {
		rs := root.AddChild(trace.NewSpan("route", h.pickStart, h.pickEnd))
		rs.SetAttr("hop", i)
		if h.retry {
			rs.SetAttr("retry", true)
		}
		if h.replica == "" {
			// The pick itself failed — shed/unroutable terminal hops.
			rs.SetAttr("error", h.err)
			continue
		}
		rs.SetAttr("replica", h.replica)
		rs.SetAttr("reason", h.reason)
		us := root.AddChild(trace.NewSpan("upstream", h.pickEnd, h.fwdEnd))
		us.SetAttr("hop", i)
		us.SetAttr("replica", h.replica)
		if h.err != "" {
			us.SetAttr("error", h.err)
		} else {
			us.SetAttr("status", h.status)
		}
	}
	g.traces.Add(&trace.Trace{ID: id, Endpoint: endpoint, Root: root})
}

// Tier fetch states reported per tier in a stitched trace.
const (
	TierOK          = "ok"
	TierUnreachable = "unreachable"
	TierNotFound    = "not_found"
	TierUnknown     = "unknown_replica"
)

// TierFetch reports one tier's contribution to a stitched trace.
type TierFetch struct {
	Tier    string `json:"tier"` // "gateway" or "replica"
	Replica string `json:"replica,omitempty"`
	State   string `json:"state"`
	Error   string `json:"error,omitempty"`
	Spans   int    `json:"spans"`
}

// StitchedTrace is the body of the gateway's GET /debug/dv/trace/{id}:
// the gateway's hop tree with the replica's own span tree(s) grafted
// under the upstream span that carried the request. Partial is true
// when the replica tier could not be fully merged — the response is
// then an explicitly-marked partial tree, never a 500.
type StitchedTrace struct {
	ID       string      `json:"id"`
	Endpoint string      `json:"endpoint"`
	Partial  bool        `json:"partial"`
	Tiers    []TierFetch `json:"tiers"`
	Root     *trace.Span `json:"root"`
}

// handleTrace serves one stitched cross-tier trace.
func (g *Gateway) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if g.traces == nil {
		writeError(w, http.StatusNotFound, "tracing disabled (run dvgateway with -trace-sample > 0)")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/dv/trace/")
	if id == "" {
		writeError(w, http.StatusBadRequest, "missing trace id: GET /debug/dv/trace/{id}")
		return
	}
	tr := g.traces.Get(id)
	if tr == nil {
		writeError(w, http.StatusNotFound, "no trace "+id+" (evicted, unsampled, or never seen)")
		return
	}
	writeJSON(w, http.StatusOK, g.stitch(r.Context(), tr))
}

// lastUpstream returns the gateway tree's last answered upstream span —
// the hop whose response the client actually received and therefore the
// graft point for the replica's tree.
func lastUpstream(root *trace.Span) *trace.Span {
	var last *trace.Span
	for _, c := range root.Children {
		if c.Name == "upstream" {
			if _, failed := c.Attrs["error"]; !failed {
				last = c
			}
		}
	}
	return last
}

// stitch merges the replica's span tree(s) for tr.ID under the gateway
// tree's final upstream span. The gateway tree is cloned first so the
// stored copy stays immutable. Any replica-side failure degrades to a
// partial tree with the tier's fetch state marked — the gateway spans
// are always served.
func (g *Gateway) stitch(ctx context.Context, tr *trace.Trace) StitchedTrace {
	root := trace.CloneSpan(tr.Root)
	st := StitchedTrace{
		ID:       tr.ID,
		Endpoint: tr.Endpoint,
		Root:     root,
		Tiers:    []TierFetch{{Tier: "gateway", State: TierOK, Spans: trace.CountSpans(root)}},
	}
	target := lastUpstream(root)
	if target == nil {
		// The request never got a replica answer (shed, unroutable, all
		// transports failed): the gateway tree is the whole story.
		return st
	}
	name, _ := target.Attrs["replica"].(string)
	tier := TierFetch{Tier: "replica", Replica: name}
	rep := g.replicaByName(name)
	if rep == nil {
		tier.State = TierUnknown
	} else {
		tier = g.fetchAndGraft(ctx, rep, tr, target, tier)
	}
	st.Partial = tier.State != TierOK
	st.Tiers = append(st.Tiers, tier)
	return st
}

// fetchAndGraft pulls the replica's trace for tr.ID (or, for batch
// requests, its per-item {id}.{i} traces) and grafts each tree under
// the target span, marked with the tier it came from.
func (g *Gateway) fetchAndGraft(ctx context.Context, rep *replica, tr *trace.Trace, target *trace.Span, tier TierFetch) TierFetch {
	graft := func(rt *trace.Trace) {
		rt.Root.SetAttr("tier", "replica")
		rt.Root.SetAttr("replica", rep.name)
		rt.Root.SetAttr("trace_id", rt.ID)
		target.AddChild(rt.Root)
		tier.Spans += trace.CountSpans(rt.Root)
	}
	rt, state, err := g.fetchReplicaTrace(ctx, rep, tr.ID)
	if state == TierUnreachable {
		tier.State = TierUnreachable
		if err != nil {
			tier.Error = err.Error()
		}
		return tier
	}
	if rt != nil {
		graft(rt)
		tier.State = TierOK
		return tier
	}
	// No trace under the base ID. Batch requests are traced per item on
	// the replica ({base}.{i}), so probe item IDs until the first miss.
	if tr.Endpoint == "batch" {
		for i := 0; i < stitchItemProbes; i++ {
			it, istate, _ := g.fetchReplicaTrace(ctx, rep, trace.ItemID(tr.ID, i))
			if it == nil {
				if istate == TierUnreachable {
					tier.State = TierUnreachable
					return tier
				}
				break
			}
			graft(it)
		}
		if tier.Spans > 0 {
			tier.State = TierOK
			return tier
		}
	}
	tier.State = TierNotFound
	return tier
}

// fetchReplicaTrace GETs one trace from a replica's own trace endpoint.
// The state distinguishes transport failure (unreachable — the partial
// marker the degraded-path tests pin) from a replica that answered but
// has no such trace.
func (g *Gateway) fetchReplicaTrace(ctx context.Context, rep *replica, id string) (*trace.Trace, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.base+"/debug/dv/trace/"+id, nil)
	if err != nil {
		return nil, TierUnreachable, err
	}
	client := *g.client
	client.Timeout = g.cfg.ProbeTimeout
	resp, err := client.Do(req)
	if err != nil {
		return nil, TierUnreachable, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, TierNotFound, nil
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, TierUnreachable, fmt.Errorf("reading replica trace: %w", err)
	}
	rt, err := trace.DecodeTrace(raw)
	if err != nil {
		return nil, TierNotFound, err
	}
	return rt, TierOK, nil
}

// replicaByName resolves a configured replica by its rendezvous name.
func (g *Gateway) replicaByName(name string) *replica {
	for _, r := range g.replicas {
		if r.name == name {
			return r
		}
	}
	return nil
}
