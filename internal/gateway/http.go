package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"

	"deepvalidation/internal/obs"
)

// errorResponse mirrors dvserve's uniform error body, so clients parse
// one shape no matter which layer answered.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// Handler returns the gateway's routing table:
//
//	POST /v1/check            — route one image to a replica (retried per budget)
//	POST /v1/batch            — route one batch to a replica
//	POST /admin/rollout       — staged artifact rollout across the fleet
//	GET  /admin/replicas      — per-replica health, load, and artifact identity
//	GET  /healthz             — gateway process liveness
//	GET  /readyz              — fleet routability (200 while ≥1 replica is in rotation)
//	GET  /debug/dv/trace/{id} — stitched cross-tier span tree (gateway hops + replica verdict)
//	GET  /debug/dv/fleet      — every replica's /readyz, drift, SLO, and artifact identity in one view
//	GET  /debug/dv/flight     — recent verdicts merged across replicas (?valid=, ?class=, ?outcome=, ?limit=, ?replica=)
//	GET  /debug/dv/events     — recent gateway wide events (?type=, ?level=, ?limit=, ...)
//	GET  /debug/dv/slo        — gateway SLO burn-rate engine status per objective and window
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/check", func(w http.ResponseWriter, r *http.Request) {
		g.reqCheck.Inc()
		g.proxy("check", w, r)
	})
	mux.HandleFunc("/v1/batch", func(w http.ResponseWriter, r *http.Request) {
		g.reqBatch.Inc()
		g.proxy("batch", w, r)
	})
	mux.HandleFunc("/admin/rollout", g.handleRollout)
	mux.HandleFunc("/admin/replicas", g.handleReplicas)
	mux.HandleFunc("/healthz", g.handleHealthz)
	mux.HandleFunc("/readyz", g.handleReadyz)
	mux.HandleFunc("/debug/dv/trace/", g.handleTrace)
	mux.HandleFunc("/debug/dv/fleet", g.handleFleet)
	mux.HandleFunc("/debug/dv/flight", g.handleFleetFlight)
	mux.HandleFunc("/debug/dv/events", g.handleEvents)
	mux.HandleFunc("/debug/dv/slo", g.handleSLO)
	return mux
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// ReplicaStatus is one replica's row in /admin/replicas and the /readyz
// JSON tail.
type ReplicaStatus struct {
	Name       string `json:"name"`
	Addr       string `json:"addr"`
	State      string `json:"state"`
	InRotation bool   `json:"in_rotation"`
	Inflight   int64  `json:"inflight"`
	FailStreak int    `json:"fail_streak"`
	// ModelSHA256 and ValidatorSHA256 are the artifact checksums last
	// seen on the replica's /readyz JSON tail — the identity rollouts
	// converge on.
	ModelSHA256     string `json:"model_sha256,omitempty"`
	ValidatorSHA256 string `json:"validator_sha256,omitempty"`
	LastError       string `json:"last_error,omitempty"`
}

// status snapshots one replica under its lock.
func (r *replica) status() ReplicaStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReplicaStatus{
		Name:            r.name,
		Addr:            r.addr,
		State:           r.hm.state.String(),
		InRotation:      r.hm.state.InRotation(),
		Inflight:        r.inflight.Load(),
		FailStreak:      r.hm.failStreak,
		ModelSHA256:     r.lastReadyz.ModelSHA256,
		ValidatorSHA256: r.lastReadyz.ValidatorSHA256,
		LastError:       r.lastErr,
	}
}

// ReplicaStatuses snapshots the whole fleet in configuration order.
func (g *Gateway) ReplicaStatuses() []ReplicaStatus {
	out := make([]ReplicaStatus, len(g.replicas))
	for i, r := range g.replicas {
		out[i] = r.status()
	}
	return out
}

// replicasResponse is the body of GET /admin/replicas.
type replicasResponse struct {
	Count      int             `json:"count"`
	InRotation int             `json:"in_rotation"`
	Replicas   []ReplicaStatus `json:"replicas"`
}

func (g *Gateway) handleReplicas(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, replicasResponse{
		Count:      len(g.replicas),
		InRotation: g.InRotation(),
		Replicas:   g.ReplicaStatuses(),
	})
}

// ReadyzBody is the machine-parseable JSON tail of the gateway's own
// /readyz, mirroring dvserve's layout: plain-text lines first for
// probes and smoke scripts, one JSON line last for machines.
type ReadyzBody struct {
	Status     string          `json:"status"`
	InRotation int             `json:"in_rotation"`
	SLO        obs.Status      `json:"slo"`
	Replicas   []ReplicaStatus `json:"replicas"`
}

// handleReadyz reports fleet routability. Like dvserve's /readyz the
// body is layered: line 1 the bare status word, line 2 the rotation
// summary, line 3 the SLO summary, line 4 the full JSON document —
// the same plain-text-then-JSON-tail contract dvserve keeps, so one
// probe grammar works on both tiers. The gateway is ready while at
// least one replica is in rotation — a degraded fleet that can still
// serve should keep receiving traffic.
func (g *Gateway) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	statuses := g.ReplicaStatuses()
	in := 0
	for _, st := range statuses {
		if st.InRotation {
			in++
		}
	}
	status, code := "ready", http.StatusOK
	if in == 0 {
		status, code = "unroutable", http.StatusServiceUnavailable
	}
	slo := g.SLOStatus()
	w.WriteHeader(code)
	fmt.Fprintln(w, status)
	fmt.Fprintf(w, "replicas: %d/%d in rotation\n", in, len(statuses))
	fmt.Fprintln(w, slo.Line())
	body, err := json.Marshal(ReadyzBody{Status: status, InRotation: in, SLO: slo, Replicas: statuses})
	if err == nil {
		w.Write(body)
		fmt.Fprintln(w)
	}
}
