package gateway

import (
	"testing"
	"time"
)

// step is one scripted observation fed to the health machine.
type step struct {
	ok   bool
	want State
}

func runScript(t *testing.T, cfg healthConfig, script []step) *healthMachine {
	t.Helper()
	m := &healthMachine{cfg: cfg}
	now := time.Unix(0, 0)
	for i, s := range script {
		now = now.Add(time.Second)
		prev, next := m.observe(s.ok, now)
		if next != s.want {
			t.Fatalf("step %d (ok=%v): state %v, want %v (prev %v)", i, s.ok, next, s.want, prev)
		}
		if m.state != next {
			t.Fatalf("step %d: observe returned %v but machine holds %v", i, next, m.state)
		}
	}
	return m
}

func TestHealthTransitions(t *testing.T) {
	cfg := healthConfig{drainAfter: 3, reinstateAfter: 2, backoff: time.Second, backoffCap: 4 * time.Second}
	tests := []struct {
		name   string
		script []step
	}{
		{"stays healthy on success", []step{
			{true, StateHealthy}, {true, StateHealthy},
		}},
		{"single failure only degrades", []step{
			{false, StateDegraded}, {true, StateHealthy},
		}},
		{"failure streak drains", []step{
			{false, StateDegraded}, {false, StateDegraded}, {false, StateDrained},
		}},
		{"success resets the failure streak", []step{
			{false, StateDegraded}, {false, StateDegraded}, {true, StateHealthy},
			{false, StateDegraded}, {false, StateDegraded}, {false, StateDrained},
		}},
		{"full lifecycle healthy to drained to reprobing to healthy", []step{
			{false, StateDegraded}, {false, StateDegraded}, {false, StateDrained},
			{true, StateReprobing}, {true, StateHealthy},
		}},
		{"failure mid-reinstatement re-drains", []step{
			{false, StateDegraded}, {false, StateDegraded}, {false, StateDrained},
			{true, StateReprobing}, {false, StateDrained},
			{true, StateReprobing}, {true, StateHealthy},
		}},
		{"ok streak must be consecutive", []step{
			{false, StateDegraded}, {false, StateDegraded}, {false, StateDrained},
			{true, StateReprobing}, {false, StateDrained}, {true, StateReprobing},
			{false, StateDrained}, {true, StateReprobing}, {true, StateHealthy},
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			runScript(t, cfg, tc.script)
		})
	}
}

func TestHealthRotationMembership(t *testing.T) {
	for _, tc := range []struct {
		state State
		want  bool
	}{
		{StateHealthy, true},
		{StateDegraded, true},
		{StateDrained, false},
		{StateReprobing, false},
	} {
		if got := tc.state.InRotation(); got != tc.want {
			t.Errorf("%v.InRotation() = %v, want %v", tc.state, got, tc.want)
		}
	}
}

// TestHealthBackoffDoublesAndCaps pins the capped-exponential re-probe
// schedule: each failure while drained doubles the delay up to the cap,
// and reinstatement resets it.
func TestHealthBackoffDoublesAndCaps(t *testing.T) {
	cfg := healthConfig{drainAfter: 1, reinstateAfter: 1, backoff: time.Second, backoffCap: 4 * time.Second}
	m := &healthMachine{cfg: cfg}
	now := time.Unix(0, 0)

	m.observe(false, now) // drains immediately (drainAfter 1)
	if m.state != StateDrained {
		t.Fatalf("state %v after first failure, want drained", m.state)
	}
	for i, want := range []time.Duration{2 * time.Second, 4 * time.Second, 4 * time.Second, 4 * time.Second} {
		m.observe(false, now)
		if m.backoff != want {
			t.Fatalf("failure %d while drained: backoff %v, want %v", i+2, m.backoff, want)
		}
		if got := m.nextProbe; got != now.Add(want) {
			t.Fatalf("failure %d: nextProbe %v, want %v", i+2, got, now.Add(want))
		}
	}

	// probeDue honors the schedule while drained...
	if m.probeDue(now) {
		t.Fatal("probe due immediately despite backoff")
	}
	if !m.probeDue(now.Add(4 * time.Second)) {
		t.Fatal("probe not due at the scheduled instant")
	}

	// ...and reinstatement clears the backoff for the next incident.
	m.observe(true, now)
	if m.state != StateHealthy {
		t.Fatalf("state %v after reinstating success, want healthy", m.state)
	}
	if m.backoff != 0 {
		t.Fatalf("backoff %v after reinstatement, want 0", m.backoff)
	}
	if !m.probeDue(now) {
		t.Fatal("healthy replica must always be probe-due")
	}
}

func TestHealthProbeDueInRotation(t *testing.T) {
	m := &healthMachine{cfg: healthConfig{drainAfter: 2, reinstateAfter: 1, backoff: time.Hour, backoffCap: time.Hour}}
	now := time.Unix(0, 0)
	if !m.probeDue(now) {
		t.Fatal("healthy replica not probe-due")
	}
	m.observe(false, now)
	if !m.probeDue(now) {
		t.Fatal("degraded replica not probe-due")
	}
	m.observe(false, now)
	if m.state != StateDrained {
		t.Fatalf("state %v, want drained", m.state)
	}
	if m.probeDue(now.Add(time.Minute)) {
		t.Fatal("drained replica probe-due inside its backoff window")
	}
	// Reprobing replicas poll on the regular cadence again.
	m.observe(true, now.Add(time.Hour))
	if m.state != StateHealthy {
		t.Fatalf("state %v, want healthy (reinstateAfter 1)", m.state)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		StateHealthy:   "healthy",
		StateDegraded:  "degraded",
		StateDrained:   "drained",
		StateReprobing: "reprobing",
		State(42):      "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}
