package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"deepvalidation"
	"deepvalidation/internal/obs"
	"deepvalidation/internal/serve"
	"deepvalidation/internal/telemetry"
	"deepvalidation/internal/trace"
)

// Tests for the gateway's observability plane: hop-span tracing and
// cross-tier stitching, the fleet aggregation surface, per-outcome
// route-latency instruments, and the gateway SLO engine.

// gwGetJSON GETs url and decodes the JSON body into v, returning the
// status code. Body text rides along for failure messages.
func gwGetJSON(t testing.TB, url string, v any) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(raw, v); err != nil {
			t.Fatalf("decoding %s: %v (body %q)", url, err, raw)
		}
	}
	return resp.StatusCode, string(raw)
}

func gwBatchBody(t testing.TB, imgs []deepvalidation.Image) []byte {
	t.Helper()
	req := serve.BatchRequest{}
	for _, img := range imgs {
		req.Images = append(req.Images, serve.CheckRequest{
			Channels: img.Channels, Height: img.Height, Width: img.Width, Pixels: img.Pixels,
		})
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// obsOnGateway builds a second, fully instrumented gateway over the
// same replica fleet procs: tracing at 1.0, SLO engine on, wide events.
func obsOnGateway(t testing.TB, procs []*replicaProc) (*Gateway, *telemetry.Registry, *obs.Logger) {
	t.Helper()
	specs := make([]ReplicaSpec, len(procs))
	for i, p := range procs {
		specs[i] = ReplicaSpec{Name: p.name, Addr: p.addr, ValidatorPath: p.valP}
	}
	reg := telemetry.New()
	events := obs.New(obs.Config{Registry: reg})
	g, err := New(Config{
		Replicas:      specs,
		ProbeInterval: -1,
		DrainAfter:    2,
		Registry:      reg,
		Events:        events,
		TraceSample:   1,
		SLO:           SLOOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	g.ProbeAll()
	return g, reg, events
}

// TestGatewayObsOffResponsesIdentical is the acceptance criterion for
// the zero-cost-off contract: with every gateway observability sink off,
// proxied /v1/check and /v1/batch responses are byte-identical to the
// fully instrumented gateway's, and no trace header is invented.
func TestGatewayObsOffResponsesIdentical(t *testing.T) {
	gOff, procs, _ := newFleet(t, 1, nil)
	gOn, _, _ := obsOnGateway(t, procs)
	tsOff, tsOn := gwServer(t, gOff), gwServer(t, gOn)

	imgs, _ := testImages(11, 3)
	check := checkBody(t, imgs[0])
	batch := gwBatchBody(t, imgs)
	for _, c := range []struct {
		path string
		body []byte
	}{
		{"/v1/check", check},
		{"/v1/batch", batch},
	} {
		respOff, bodyOff := post(t, tsOff.URL+c.path, c.body)
		respOn, bodyOn := post(t, tsOn.URL+c.path, c.body)
		if respOff.StatusCode != http.StatusOK || respOn.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d / %d, want 200", c.path, respOff.StatusCode, respOn.StatusCode)
		}
		if bodyOff != bodyOn {
			t.Fatalf("%s bodies diverge with sinks on:\noff: %s\non:  %s", c.path, bodyOff, bodyOn)
		}
		if h := respOff.Header.Get(trace.HeaderTraceID); h != "" {
			t.Fatalf("sinks-off gateway minted a trace header %q", h)
		}
		if h := respOn.Header.Get(trace.HeaderTraceID); !trace.ValidID(h) {
			t.Fatalf("instrumented gateway echoed invalid trace header %q", h)
		}
	}
}

// TestGatewayMintedAndEchoedTraceIDs pins the identity contract: the
// gateway mints a valid ID when the client sends none, echoes a
// client-supplied ID verbatim, and a client-supplied ID always resolves
// on the gateway's own trace endpoint.
func TestGatewayMintedAndEchoedTraceIDs(t *testing.T) {
	_, procs, _ := newFleet(t, 2, nil)
	g, _, _ := obsOnGateway(t, procs)
	ts := gwServer(t, g)
	body := checkBody(t, func() deepvalidation.Image { i, _ := testImages(7, 1); return i[0] }())

	resp, _ := post(t, ts.URL+"/v1/check", body)
	minted := resp.Header.Get(trace.HeaderTraceID)
	if !trace.ValidID(minted) {
		t.Fatalf("minted trace ID %q not valid", minted)
	}

	resp, _ = postTraced(t, ts.URL+"/v1/check", "triage-check-1", string(body))
	if got := resp.Header.Get(trace.HeaderTraceID); got != "triage-check-1" {
		t.Fatalf("client trace ID echoed as %q, want verbatim", got)
	}
	var st StitchedTrace
	if code, raw := gwGetJSON(t, ts.URL+"/debug/dv/trace/triage-check-1", &st); code != http.StatusOK {
		t.Fatalf("GET injected trace = %d (%s)", code, raw)
	}
	if st.ID != "triage-check-1" || st.Root == nil || st.Root.Name != "gateway" {
		t.Fatalf("stitched trace = %+v", st)
	}

	// The bad-ID and wrong-method edges of the endpoint.
	if code, raw := gwGetJSON(t, ts.URL+"/debug/dv/trace/nope-never-seen", nil); code != http.StatusNotFound {
		t.Fatalf("unknown trace = %d (%s)", code, raw)
	}
	if code, raw := gwGetJSON(t, ts.URL+"/debug/dv/trace/", nil); code != http.StatusBadRequest {
		t.Fatalf("empty trace id = %d (%s)", code, raw)
	}
}

// TestGatewayTraceDisabled pins the tracing-off endpoint message.
func TestGatewayTraceDisabled(t *testing.T) {
	g, _, _ := newFleet(t, 1, nil)
	ts := gwServer(t, g)
	code, raw := gwGetJSON(t, ts.URL+"/debug/dv/trace/x", nil)
	if code != http.StatusNotFound || !strings.Contains(raw, "tracing disabled") {
		t.Fatalf("tracing-off trace endpoint = %d (%s)", code, raw)
	}
}

// TestStitchedTraceTwoTiers drives the tentpole path end to end: an
// injected trace ID flows gateway → replica, and the gateway's trace
// endpoint returns ONE merged tree holding both tiers' spans. Killing
// the replica afterwards degrades the same lookup to an explicitly
// marked partial tree — never a 500.
func TestStitchedTraceTwoTiers(t *testing.T) {
	_, procs, _ := newFleet(t, 2, nil, func(c *serve.Config) { c.TraceSample = 1 })
	g, _, _ := obsOnGateway(t, procs)
	ts := gwServer(t, g)
	imgs, _ := testImages(23, 2)

	if resp, body := postTraced(t, ts.URL+"/v1/check", "stitch-check-1", string(checkBody(t, imgs[0]))); resp.StatusCode != http.StatusOK {
		t.Fatalf("traced check = %d (%s)", resp.StatusCode, body)
	}
	var st StitchedTrace
	if code, raw := gwGetJSON(t, ts.URL+"/debug/dv/trace/stitch-check-1", &st); code != http.StatusOK {
		t.Fatalf("GET stitched trace = %d (%s)", code, raw)
	}
	if st.Partial {
		t.Fatalf("stitched trace partial with replica up: %+v", st.Tiers)
	}
	if len(st.Tiers) != 2 || st.Tiers[0].Tier != "gateway" || st.Tiers[1].Tier != "replica" || st.Tiers[1].State != TierOK {
		t.Fatalf("tiers = %+v", st.Tiers)
	}
	// Both tiers' spans live in the one tree: the gateway's route and
	// upstream hops, and the replica's verdict tree grafted beneath.
	if trace.FindSpan(st.Root, func(s *trace.Span) bool { return s.Name == "route" }) == nil {
		t.Fatal("merged tree missing gateway route span")
	}
	up := trace.FindSpan(st.Root, func(s *trace.Span) bool { return s.Name == "upstream" })
	if up == nil {
		t.Fatal("merged tree missing gateway upstream span")
	}
	verdict := trace.FindSpan(up, func(s *trace.Span) bool { return s.Name == "verdict" })
	if verdict == nil {
		t.Fatal("replica verdict tree not grafted under the upstream span")
	}
	if tier, _ := verdict.Attrs["tier"].(string); tier != "replica" {
		t.Fatalf("grafted root tier attr = %v", verdict.Attrs["tier"])
	}
	if trace.FindSpan(verdict, func(s *trace.Span) bool { return s.Name == "score" }) == nil {
		t.Fatal("grafted replica tree missing its score span")
	}

	// Batch requests are traced per item on the replica; the stitcher
	// probes {id}.{i} and grafts every item tree.
	if resp, body := postTraced(t, ts.URL+"/v1/batch", "stitch-batch-1", string(gwBatchBody(t, imgs))); resp.StatusCode != http.StatusOK {
		t.Fatalf("traced batch = %d (%s)", resp.StatusCode, body)
	}
	var bt StitchedTrace
	if code, raw := gwGetJSON(t, ts.URL+"/debug/dv/trace/stitch-batch-1", &bt); code != http.StatusOK {
		t.Fatalf("GET stitched batch trace = %d (%s)", code, raw)
	}
	if bt.Partial || bt.Tiers[1].State != TierOK {
		t.Fatalf("batch stitch tiers = %+v", bt.Tiers)
	}
	grafted := 0
	bup := trace.FindSpan(bt.Root, func(s *trace.Span) bool { return s.Name == "upstream" })
	for _, c := range bup.Children {
		if c.Name == "verdict" {
			grafted++
		}
	}
	if grafted != len(imgs) {
		t.Fatalf("grafted %d item trees, want %d", grafted, len(imgs))
	}

	// Kill the replica that served the check; the same lookup must now
	// return 200 with the replica tier marked unreachable.
	name := st.Tiers[1].Replica
	for _, p := range procs {
		if p.name == name {
			p.kill()
		}
	}
	var part StitchedTrace
	if code, raw := gwGetJSON(t, ts.URL+"/debug/dv/trace/stitch-check-1", &part); code != http.StatusOK {
		t.Fatalf("GET with replica down = %d (%s), want 200", code, raw)
	}
	if !part.Partial || part.Tiers[1].State != TierUnreachable {
		t.Fatalf("degraded stitch = partial %v tiers %+v", part.Partial, part.Tiers)
	}
	if trace.FindSpan(part.Root, func(s *trace.Span) bool { return s.Name == "route" }) == nil {
		t.Fatal("partial tree lost the gateway spans")
	}
}

// TestFleetViewDegradesPerReplica checks /debug/dv/fleet: one merged
// JSON view of every replica's /readyz, and a killed replica marks only
// its own row unreachable — the endpoint never 500s.
func TestFleetViewDegradesPerReplica(t *testing.T) {
	_, procs, _ := newFleet(t, 2, nil)
	g, _, _ := obsOnGateway(t, procs)
	ts := gwServer(t, g)

	var fr FleetResponse
	if code, raw := gwGetJSON(t, ts.URL+"/debug/dv/fleet", &fr); code != http.StatusOK {
		t.Fatalf("GET fleet = %d (%s)", code, raw)
	}
	if fr.Count != 2 || fr.Partial {
		t.Fatalf("healthy fleet view = %+v", fr)
	}
	for _, row := range fr.Replicas {
		if row.Fetch != TierOK || row.Readyz == nil {
			t.Fatalf("replica row %s = %+v", row.Name, row)
		}
		if row.Readyz.ValidatorSHA256 == "" {
			t.Fatalf("replica %s readyz missing validator sha", row.Name)
		}
	}
	if !fr.GatewaySLO.Enabled {
		t.Fatal("fleet view reports gateway SLO disabled on an SLO-enabled gateway")
	}

	procs[1].kill()
	if code, raw := gwGetJSON(t, ts.URL+"/debug/dv/fleet", &fr); code != http.StatusOK {
		t.Fatalf("GET fleet with replica down = %d (%s), want 200", code, raw)
	}
	if !fr.Partial {
		t.Fatal("fleet view not marked partial with a replica down")
	}
	states := map[string]string{}
	for _, row := range fr.Replicas {
		states[row.Name] = row.Fetch
	}
	if states[procs[0].name] != TierOK || states[procs[1].name] != TierUnreachable {
		t.Fatalf("fleet fetch states = %v", states)
	}
}

// TestFleetFlightMergesAndFilters checks the gateway's fleet-wide
// flight view: merged entries annotated per replica, newest first, the
// gateway-only ?replica= axis, and 400s on bad filter values that match
// the replica's own messages exactly.
func TestFleetFlightMergesAndFilters(t *testing.T) {
	_, procs, _ := newFleet(t, 2, nil)
	g, _, _ := obsOnGateway(t, procs)
	ts := gwServer(t, g)
	for _, b := range distinctBodies(t, 6) {
		if resp, body := post(t, ts.URL+"/v1/check", b); resp.StatusCode != http.StatusOK {
			t.Fatalf("check = %d (%s)", resp.StatusCode, body)
		}
	}

	var fr FleetFlightResponse
	if code, raw := gwGetJSON(t, ts.URL+"/debug/dv/flight", &fr); code != http.StatusOK {
		t.Fatalf("GET fleet flight = %d (%s)", code, raw)
	}
	if fr.Count != 6 || fr.Partial {
		t.Fatalf("fleet flight = count %d partial %v", fr.Count, fr.Partial)
	}
	perReplica := map[string]int{}
	for i, e := range fr.Entries {
		if e.Replica == "" || e.Outcome == "" {
			t.Fatalf("entry %d missing annotation: %+v", i, e)
		}
		perReplica[e.Replica]++
		if i > 0 && fr.Entries[i-1].TimeNs < e.TimeNs {
			t.Fatalf("entries not newest-first at %d", i)
		}
	}
	if len(perReplica) != 2 {
		t.Fatalf("rendezvous spread landed on %d replicas: %v", len(perReplica), perReplica)
	}

	// The ?replica= axis narrows to one replica; ?limit= caps the merge.
	name := procs[0].name
	if code, _ := gwGetJSON(t, ts.URL+"/debug/dv/flight?replica="+name+"&limit=2", &fr); code != http.StatusOK {
		t.Fatal("replica-filtered flight failed")
	}
	if fr.Count > 2 {
		t.Fatalf("limit ignored: %d entries", fr.Count)
	}
	for _, e := range fr.Entries {
		if e.Replica != name {
			t.Fatalf("replica filter leaked entry from %s", e.Replica)
		}
	}

	// Bad filter values 400 at the gateway with the same message the
	// replica itself gives — one grammar, two tiers.
	repURL := "http://" + procs[0].addr
	for _, tc := range []string{"valid=zorp", "class=x", "limit=x"} {
		gwCode, gwBody := gwGetJSON(t, ts.URL+"/debug/dv/flight?"+tc, nil)
		repCode, repBody := gwGetJSON(t, repURL+"/debug/dv/flight?"+tc, nil)
		if gwCode != http.StatusBadRequest || repCode != http.StatusBadRequest {
			t.Fatalf("%s: gateway %d, replica %d, want 400s", tc, gwCode, repCode)
		}
		if gwBody != repBody {
			t.Fatalf("%s: gateway error %q != replica error %q", tc, gwBody, repBody)
		}
	}
	if code, raw := gwGetJSON(t, ts.URL+"/debug/dv/flight?replica=ghost", nil); code != http.StatusBadRequest ||
		!strings.Contains(raw, "bad replica filter: no replica named ghost") {
		t.Fatalf("unknown replica filter = %d (%s)", code, raw)
	}
}

// TestRouteLatencyHistogramsGolden checks the per-outcome route-latency
// instruments two ways: the Prometheus text rendering, and that the
// JSON snapshot's bucket boundaries agree with the rendered le= edges.
func TestRouteLatencyHistogramsGolden(t *testing.T) {
	_, procs, _ := newFleet(t, 1, nil)
	g, reg, _ := obsOnGateway(t, procs)
	ts := gwServer(t, g)
	for _, b := range distinctBodies(t, 3) {
		if resp, _ := post(t, ts.URL+"/v1/check", b); resp.StatusCode != http.StatusOK {
			t.Fatal("check failed")
		}
	}
	// Drain the fleet so one request sheds (503 unroutable → outcome
	// "shed") and the shed histogram fills too.
	procs[0].kill()
	g.ProbeAll()
	g.ProbeAll()
	if resp, _ := post(t, ts.URL+"/v1/check", distinctBodies(t, 1)[0]); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatal("expected unroutable 503 after drain")
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE dv_gw_route_latency_seconds histogram",
		`dv_gw_route_latency_seconds_bucket{outcome="ok",le="+Inf"} 3`,
		`dv_gw_route_latency_seconds_count{outcome="ok"} 3`,
		`dv_gw_route_latency_seconds_count{outcome="shed"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}

	// JSON-vs-Prometheus consistency: every bucket boundary in the
	// snapshot must appear as an le= edge with the same cumulative count.
	snap := reg.Snapshot()
	h, ok := snap.Histograms[telemetry.Label(MetricRouteLatency, "outcome", "ok")]
	if !ok {
		t.Fatalf("snapshot missing ok-outcome histogram; have %v", len(snap.Histograms))
	}
	if len(h.Buckets) != len(telemetry.DefLatencyBuckets)+1 {
		t.Fatalf("snapshot has %d buckets, want %d+Inf", len(h.Buckets), len(telemetry.DefLatencyBuckets))
	}
	for _, b := range h.Buckets {
		le := "+Inf"
		if !strings.Contains(fmt.Sprint(b.UpperBound), "Inf") {
			le = strings.TrimRight(strings.TrimRight(fmt.Sprintf("%g", b.UpperBound), "0"), ".")
		}
		line := fmt.Sprintf(`dv_gw_route_latency_seconds_bucket{outcome="ok",le="%s"} %d`, le, b.Count)
		if !strings.Contains(text, line) {
			t.Fatalf("snapshot bucket %v/%d has no matching prometheus line %q:\n%s", b.UpperBound, b.Count, line, text)
		}
	}
}

// TestGatewaySLOBreachCrossLinksTraces is the fleet-tier acceptance
// path: drain the fleet, shed a burst, tick the engine, and require an
// availability breach event whose cross-linked trace IDs resolve on the
// gateway's own trace endpoint. Also pins /debug/dv/slo and the /readyz
// SLO line + JSON tail.
func TestGatewaySLOBreachCrossLinksTraces(t *testing.T) {
	_, procs, _ := newFleet(t, 1, nil)
	g, _, events := obsOnGateway(t, procs)
	ts := gwServer(t, g)
	body := distinctBodies(t, 1)[0]

	if resp, _ := post(t, ts.URL+"/v1/check", body); resp.StatusCode != http.StatusOK {
		t.Fatal("baseline check failed")
	}
	g.SLOTick() // baseline sample: burn rates difference against it

	procs[0].kill()
	g.ProbeAll()
	g.ProbeAll() // DrainAfter=2 → drained, fleet unroutable
	var shedIDs []string
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("breach-%d", i)
		resp, _ := postTraced(t, ts.URL+"/v1/check", id, string(body))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("drained fleet check = %d, want 503", resp.StatusCode)
		}
		if got := resp.Header.Get(trace.HeaderTraceID); got != id {
			t.Fatalf("shed response echoed %q, want %q", got, id)
		}
		shedIDs = append(shedIDs, id)
	}
	g.SLOTick()

	st := g.SLOStatus()
	if !st.Enabled || !st.Breaching {
		t.Fatalf("SLO status after shed burst = %+v", st)
	}
	var breach *obs.Event
	snaps := events.Snapshot(obs.Filter{Type: obs.TypeSLOBreach})
	for i := range snaps {
		if snaps[i].SLO == "availability" && snaps[i].Level == obs.LevelError {
			breach = &snaps[i]
			break
		}
	}
	if breach == nil {
		t.Fatalf("no availability breach event; got %+v", snaps)
	}
	if len(breach.TraceIDs) == 0 {
		t.Fatalf("breach event cross-links no trace IDs: %+v", breach)
	}
	// Every cross-linked ID is one of the shed requests and resolves on
	// the gateway's trace endpoint as a gateway-only (but complete) tree.
	var stitched StitchedTrace
	if code, raw := gwGetJSON(t, ts.URL+"/debug/dv/trace/"+breach.TraceIDs[0], &stitched); code != http.StatusOK {
		t.Fatalf("cross-linked trace = %d (%s)", code, raw)
	}
	if stitched.Partial || len(stitched.Tiers) != 1 {
		t.Fatalf("shed trace should be gateway-only and complete: %+v", stitched.Tiers)
	}
	found := false
	for _, id := range shedIDs {
		if id == stitched.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("cross-linked ID %q is not one of the shed requests %v", stitched.ID, shedIDs)
	}

	// /debug/dv/slo serves the same status; /debug/dv/events serves the
	// breach; /readyz carries the slo line and the JSON tail.
	var hst obs.Status
	if code, _ := gwGetJSON(t, ts.URL+"/debug/dv/slo", &hst); code != http.StatusOK || !hst.Breaching {
		t.Fatalf("GET /debug/dv/slo = %d breaching %v", code, hst.Breaching)
	}
	var er obs.EventsResponse
	if code, _ := gwGetJSON(t, ts.URL+"/debug/dv/events?type=slo_breach&level=error", &er); code != http.StatusOK || len(er.Events) == 0 {
		t.Fatalf("GET events = %d with %d events", code, len(er.Events))
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 4 {
		t.Fatalf("readyz body has %d lines, want 4:\n%s", len(lines), raw)
	}
	if !strings.HasPrefix(lines[2], "slo: BREACH") {
		t.Fatalf("readyz slo line = %q", lines[2])
	}
	var rb ReadyzBody
	if err := json.Unmarshal([]byte(lines[3]), &rb); err != nil {
		t.Fatalf("readyz JSON tail: %v (%q)", err, lines[3])
	}
	if !rb.SLO.Enabled || !rb.SLO.Breaching {
		t.Fatalf("readyz JSON tail SLO = %+v", rb.SLO)
	}
}

// TestGatewayReadyzQuietTail checks the layered /readyz format on a
// healthy, SLO-less gateway: the slo line degrades to "slo: disabled"
// and the JSON tail still parses with the same struct.
func TestGatewayReadyzQuietTail(t *testing.T) {
	g, _, _ := newFleet(t, 1, nil)
	ts := gwServer(t, g)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 4 || lines[0] != "ready" || lines[2] != "slo: disabled" {
		t.Fatalf("readyz body = %q", raw)
	}
	var rb ReadyzBody
	if err := json.Unmarshal([]byte(lines[3]), &rb); err != nil {
		t.Fatal(err)
	}
	if rb.Status != "ready" || rb.InRotation != 1 || rb.SLO.Enabled {
		t.Fatalf("readyz JSON tail = %+v", rb)
	}
}
