package gateway

// Fleet-level battery for the gateway. TestMain builds one tiny
// detector (and a second, differently seeded validator for rollout
// tests) and saves the artifacts; each test then assembles its own
// fleet of real serve.Servers — or cheap fake replicas where detector
// behavior is irrelevant — behind a Gateway with the background prober
// disabled, so every health observation in a test is one it injected
// deterministically via ProbeAll or the route path.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"deepvalidation"
	"deepvalidation/internal/artifact"
	"deepvalidation/internal/serve"
	"deepvalidation/internal/telemetry"
)

var (
	testModelPath string // v1 model container
	testValPath   string // v1 validator container
	testValV2Path string // differently-fitted validator, same geometry
	testEps       float64
)

// testImages generates the deterministic 3-class band corpus the
// fixture detector is trained on (same recipe as the serve tests).
func testImages(seed int64, n int) ([]deepvalidation.Image, []int) {
	rng := rand.New(rand.NewSource(seed))
	imgs := make([]deepvalidation.Image, 0, n)
	labels := make([]int, 0, n)
	for i := 0; i < n; i++ {
		k := rng.Intn(3)
		px := make([]float64, 64)
		for j := range px {
			px[j] = 0.15 * rng.Float64()
		}
		for y := 2 * k; y < 2*k+3; y++ {
			for x := 0; x < 8; x++ {
				px[y*8+x] = 0.8 + 0.2*rng.Float64()
			}
		}
		imgs = append(imgs, deepvalidation.Image{Channels: 1, Height: 8, Width: 8, Pixels: px})
		labels = append(labels, k)
	}
	return imgs, labels
}

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "dv-gateway-test-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	imgs, labels := testImages(1, 90)
	build := func(seed int64) (*deepvalidation.Detector, error) {
		return deepvalidation.Build(imgs, labels, deepvalidation.BuildConfig{
			Classes: 3, Epochs: 6, Width: 4, FCWidth: 16,
			SVMPerClass: 30, SVMFeatures: 64, Seed: seed,
		})
	}
	det, err := build(5)
	if err != nil {
		fmt.Fprintln(os.Stderr, "building fixture detector:", err)
		os.Exit(1)
	}
	clean, _ := testImages(2, 60)
	if testEps, err = det.Calibrate(clean, 0.2); err != nil {
		fmt.Fprintln(os.Stderr, "calibrating fixture detector:", err)
		os.Exit(1)
	}
	testModelPath = filepath.Join(dir, "model.dvart")
	testValPath = filepath.Join(dir, "validator.dvart")
	if err := det.Save(testModelPath, testValPath); err != nil {
		fmt.Fprintln(os.Stderr, "saving fixture detector:", err)
		os.Exit(1)
	}
	// The rollout target: a validator fitted under a different seed.
	// Same architecture, classes, and tap geometry — so it is a
	// compatible hot-swap for the v1 model — but a different payload,
	// hence a different SHA-256 for convergence to verify.
	det2, err := build(9)
	if err != nil {
		fmt.Fprintln(os.Stderr, "building v2 detector:", err)
		os.Exit(1)
	}
	testValV2Path = filepath.Join(dir, "validator_v2.dvart")
	if err := det2.Save(filepath.Join(dir, "model_v2.dvart"), testValV2Path); err != nil {
		fmt.Fprintln(os.Stderr, "saving v2 artifacts:", err)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// replicaProc is one in-process dvserve replica: its own artifact
// copies (so rollouts touch per-replica files), a serve.Server, and a
// manually managed listener the chaos tests can kill and resurrect on
// the same address.
type replicaProc struct {
	t        testing.TB
	name     string
	modelP   string
	valP     string
	srv      *serve.Server
	hs       *http.Server
	addr     string
	listenWG chan error
}

func copyFileTo(t testing.TB, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// startReplica builds one real replica backed by private artifact
// copies under dir. Optional repTune callbacks adjust the replica's
// serve.Config (e.g. to enable tracing) before the server is built.
func startReplica(t testing.TB, dir, name string, repTune ...func(*serve.Config)) *replicaProc {
	t.Helper()
	rdir := filepath.Join(dir, name)
	if err := os.MkdirAll(rdir, 0o755); err != nil {
		t.Fatal(err)
	}
	p := &replicaProc{
		t:      t,
		name:   name,
		modelP: filepath.Join(rdir, "model.dvart"),
		valP:   filepath.Join(rdir, "validator.dvart"),
	}
	copyFileTo(t, testModelPath, p.modelP)
	copyFileTo(t, testValPath, p.valP)
	loader := func() (*deepvalidation.Detector, error) {
		return deepvalidation.Load(p.modelP, p.valP)
	}
	det, err := loader()
	if err != nil {
		t.Fatal(err)
	}
	det.SetEpsilon(testEps)
	scfg := serve.Config{
		MaxBatch: 4, BatchWindow: time.Millisecond,
		Loader:       loader,
		ArtifactInfo: artifactInfoFor(p),
	}
	for _, tune := range repTune {
		tune(&scfg)
	}
	srv, err := serve.New(deepvalidation.NewHandle(det), scfg)
	if err != nil {
		t.Fatal(err)
	}
	p.srv = srv
	p.listen("127.0.0.1:0")
	t.Cleanup(func() {
		p.kill()
		srv.Close()
	})
	return p
}

// artifactInfoFor mirrors dvserve's wiring: payload checksums read from
// the replica's own artifact files.
func artifactInfoFor(p *replicaProc) func() (string, string) {
	return func() (string, string) {
		return headerSHA(p.modelP), headerSHA(p.valP)
	}
}

func headerSHA(path string) string {
	info, err := artifact.ReadHeader(path)
	if err != nil {
		return ""
	}
	return info.Header.PayloadSHA256
}

// listen binds the replica's HTTP front on addr and starts serving.
func (p *replicaProc) listen(addr string) {
	p.t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		p.t.Fatalf("replica %s: listen %s: %v", p.name, addr, err)
	}
	p.addr = ln.Addr().String()
	p.hs = &http.Server{Handler: p.srv.Handler()}
	done := make(chan error, 1)
	p.listenWG = done
	go func() { done <- p.hs.Serve(ln) }()
}

// kill closes the replica's HTTP front (listener and connections); the
// serve.Server behind it stays alive, so restart resurrects the same
// state on the same address.
func (p *replicaProc) kill() {
	if p.hs == nil {
		return
	}
	_ = p.hs.Close()
	<-p.listenWG
	p.hs = nil
}

// restart re-binds the same address. The OS may briefly hold the port,
// so bind attempts retry.
func (p *replicaProc) restart() {
	p.t.Helper()
	if p.hs != nil {
		return
	}
	var lastErr error
	for i := 0; i < 100; i++ {
		ln, err := net.Listen("tcp", p.addr)
		if err == nil {
			p.hs = &http.Server{Handler: p.srv.Handler()}
			done := make(chan error, 1)
			p.listenWG = done
			go func() { done <- p.hs.Serve(ln) }()
			return
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	p.t.Fatalf("replica %s: could not rebind %s: %v", p.name, p.addr, lastErr)
}

// newFleet builds n real replicas and a gateway over them with the
// background prober disabled. Tests drive health deterministically.
func newFleet(t testing.TB, n int, tune func(*Config), repTune ...func(*serve.Config)) (*Gateway, []*replicaProc, *telemetry.Registry) {
	t.Helper()
	dir := t.TempDir()
	procs := make([]*replicaProc, n)
	specs := make([]ReplicaSpec, n)
	for i := range procs {
		name := fmt.Sprintf("replica%d", i+1)
		procs[i] = startReplica(t, dir, name, repTune...)
		specs[i] = ReplicaSpec{Name: name, Addr: procs[i].addr, ValidatorPath: procs[i].valP}
	}
	reg := telemetry.New()
	cfg := Config{
		Replicas:           specs,
		ProbeInterval:      -1, // tests own the probe schedule
		DrainAfter:         2,
		ReinstateAfter:     2,
		ReprobeBackoff:     time.Millisecond,
		ReprobeBackoffCap:  8 * time.Millisecond,
		RolloutVerifyDelay: 5 * time.Millisecond,
		Registry:           reg,
	}
	if tune != nil {
		tune(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	g.ProbeAll()
	return g, procs, reg
}

// fakeFleet builds a gateway over httptest fake replicas — for routing
// logic tests where real detectors would only add noise.
func fakeFleet(t testing.TB, handlers map[string]http.HandlerFunc, tune func(*Config)) (*Gateway, *telemetry.Registry) {
	t.Helper()
	var specs []ReplicaSpec
	for name, h := range handlers {
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		specs = append(specs, ReplicaSpec{Name: name, Addr: strings.TrimPrefix(ts.URL, "http://")})
	}
	reg := telemetry.New()
	cfg := Config{Replicas: specs, ProbeInterval: -1, Registry: reg}
	if tune != nil {
		tune(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g, reg
}

// gwServer mounts the gateway handler on an httptest server.
func gwServer(t testing.TB, g *Gateway) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func checkBody(t testing.TB, img deepvalidation.Image) []byte {
	t.Helper()
	b, err := json.Marshal(serve.CheckRequest{Channels: img.Channels, Height: img.Height, Width: img.Width, Pixels: img.Pixels})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func post(t testing.TB, url string, body []byte) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(data)
}

// distinctBodies builds n structurally valid, pairwise-distinct check
// bodies so rendezvous routing spreads them across replicas.
func distinctBodies(t testing.TB, n int) [][]byte {
	t.Helper()
	imgs, _ := testImages(42, n)
	out := make([][]byte, n)
	for i, img := range imgs {
		out[i] = checkBody(t, img)
	}
	return out
}

// counterValue reads one dv_gw_* counter from the gateway's registry.
func counterValue(t testing.TB, reg *telemetry.Registry, name string) int64 {
	t.Helper()
	return reg.Counter(name).Value()
}
