package gateway

import (
	"time"
)

// State is a replica's position in the gateway's health lifecycle.
//
//	Healthy ──fail── Degraded ──fail streak── Drained
//	   ▲                │                        │ ▲
//	   │◄──ok───────────┘            ok (probe)  │ │ fail
//	   │                                         ▼ │
//	   └────────ok streak──────────────────── Reprobing
//
// Healthy and Degraded replicas stay in rotation: a single probe
// failure is routine (GC pause, packet loss) and draining on it would
// amplify blips into outages. Drained and Reprobing replicas receive no
// traffic; reinstatement requires ReinstateAfter consecutive probe
// successes so a flapping replica cannot oscillate in and out.
type State int8

const (
	StateHealthy State = iota
	StateDegraded
	StateDrained
	StateReprobing
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateDrained:
		return "drained"
	case StateReprobing:
		return "reprobing"
	}
	return "unknown"
}

// InRotation reports whether a replica in this state receives routed
// traffic.
func (s State) InRotation() bool {
	return s == StateHealthy || s == StateDegraded
}

// healthConfig parameterizes one replica's health machine.
type healthConfig struct {
	// drainAfter is the consecutive-failure streak that takes the
	// replica out of rotation.
	drainAfter int
	// reinstateAfter is the consecutive-success streak a drained replica
	// must accumulate before rejoining rotation.
	reinstateAfter int
	// backoff and backoffCap bound the capped-exponential re-probe
	// schedule while drained: each further failure doubles the delay
	// until the next probe attempt, up to the cap.
	backoff    time.Duration
	backoffCap time.Duration
}

// healthMachine is the per-replica state machine. It is pure — no
// clocks, no goroutines, no I/O — so transitions are table-testable;
// the prober owns the clock and feeds observations in. Not
// goroutine-safe: callers serialize access (the gateway holds the
// replica mutex).
type healthMachine struct {
	cfg        healthConfig
	state      State
	failStreak int
	okStreak   int
	// backoff is the current re-probe delay while drained; nextProbe is
	// the earliest instant the prober should try again.
	backoff   time.Duration
	nextProbe time.Time
}

// observe feeds one health observation (a probe result, or a route-path
// transport outcome) into the machine and returns the transition it
// caused (prev == next when nothing changed).
func (m *healthMachine) observe(ok bool, now time.Time) (prev, next State) {
	prev = m.state
	if ok {
		m.failStreak = 0
		switch m.state {
		case StateHealthy, StateDegraded:
			m.state = StateHealthy
		case StateDrained, StateReprobing:
			m.okStreak++
			if m.okStreak >= m.cfg.reinstateAfter {
				m.state = StateHealthy
				m.okStreak = 0
				m.backoff = 0
			} else {
				m.state = StateReprobing
			}
		}
		return prev, m.state
	}
	m.okStreak = 0
	m.failStreak++
	switch m.state {
	case StateHealthy, StateDegraded:
		if m.failStreak >= m.cfg.drainAfter {
			m.drain(now)
		} else {
			m.state = StateDegraded
		}
	case StateDrained, StateReprobing:
		// A failure mid-reinstatement re-drains and doubles the backoff:
		// the replica is flapping, so probe it less often.
		m.state = StateDrained
		m.backoff *= 2
		if m.backoff <= 0 {
			m.backoff = m.cfg.backoff
		}
		if m.backoff > m.cfg.backoffCap {
			m.backoff = m.cfg.backoffCap
		}
		m.nextProbe = now.Add(m.backoff)
	}
	return prev, m.state
}

// drain moves the machine to Drained and starts the re-probe schedule.
func (m *healthMachine) drain(now time.Time) {
	m.state = StateDrained
	m.backoff = m.cfg.backoff
	m.nextProbe = now.Add(m.backoff)
}

// probeDue reports whether the re-probe backoff allows probing at now.
// Replicas in rotation are always due: the jittered interval is their
// only schedule.
func (m *healthMachine) probeDue(now time.Time) bool {
	if m.state != StateDrained {
		return true
	}
	return !now.Before(m.nextProbe)
}
