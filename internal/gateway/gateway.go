// Package gateway is the horizontal-scale front of the serving
// subsystem: one HTTP process that routes /v1/check and /v1/batch
// across N dvserve replicas. The paper frames corner-case detection as
// a fail-safe systems property; at fleet scale the serving layer itself
// becomes part of that property — a replica serving a stale or corrupt
// artifact, or silently dropping traffic, is a corner case the fleet
// must detect and heal. The gateway does that with three mechanisms:
//
//   - Health-checked routing. Requests are placed by rendezvous
//     (highest-random-weight) hashing over the replicas currently in
//     rotation, so a fixed key always lands on the same replica while
//     any replica set change only remaps the keys that must move. Each
//     replica is probed through /readyz on a jittered interval; probe
//     failures degrade it, a failure streak drains it out of rotation,
//     and capped-exponential re-probes reinstate it only after a
//     success streak (internal/gateway/health.go).
//
//   - Per-request robustness. Connect failures and replica-side
//     500/502s are retried once against a different replica, spending a
//     token from a retry budget earned by successful requests — so
//     retries help isolated failures but cannot double traffic during a
//     fleet-wide incident. Replica 429/503 responses pass through with
//     a unified Retry-After header, and per-replica in-flight caps stop
//     one slow replica from absorbing the fleet's queue.
//
//   - Coordinated rollout. POST /admin/rollout stages a new validator
//     artifact onto each replica one at a time, reloading and verifying
//     through /readyz that the replica's validator SHA-256 converged on
//     the staged payload checksum; a reload-failure streak halts the
//     rollout and rolls already-switched replicas back to the prior
//     artifact (internal/gateway/rollout.go).
package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deepvalidation/internal/faultinject"
	"deepvalidation/internal/obs"
	"deepvalidation/internal/serve"
	"deepvalidation/internal/telemetry"
	"deepvalidation/internal/trace"
)

// Metric names for the gateway instruments (dv_gw_ prefix). Per-replica
// families carry a replica label.
const (
	// MetricRequests counts requests the gateway accepted for routing,
	// labeled by endpoint (check, batch).
	MetricRequests = "dv_gw_requests_total"
	// MetricReplicaRequests counts requests forwarded to each replica.
	MetricReplicaRequests = "dv_gw_replica_requests_total"
	// MetricRetries counts forwards re-attempted on a second replica
	// after a connect failure or replica-side 500/502.
	MetricRetries = "dv_gw_retries_total"
	// MetricRetryBudgetSpent counts retries denied because the budget
	// was empty — the signal that failures are fleet-wide, not isolated.
	MetricRetryBudgetSpent = "dv_gw_retry_budget_exhausted_total"
	// MetricShed counts requests answered 429 by the gateway itself
	// because every in-rotation replica was at its in-flight cap.
	MetricShed = "dv_gw_shed_total"
	// MetricUnroutable counts requests answered 503 because no replica
	// was in rotation at all.
	MetricUnroutable = "dv_gw_unroutable_total"
	// MetricBadGateway counts requests answered 502 after transport
	// failures exhausted the retry allowance.
	MetricBadGateway = "dv_gw_bad_gateway_total"
	// MetricPassthrough counts replica backpressure responses relayed to
	// the client, labeled by code (429, 503).
	MetricPassthrough = "dv_gw_passthrough_total"
	// MetricProbes counts health probes, labeled by result (ok, fail).
	MetricProbes = "dv_gw_probes_total"
	// MetricReplicaState gauges each replica's health state as its State
	// enum value (0 healthy, 1 degraded, 2 drained, 3 reprobing).
	MetricReplicaState = "dv_gw_replica_state"
	// MetricInflight gauges each replica's in-flight forwarded requests.
	MetricInflight = "dv_gw_inflight"
	// MetricDrains counts replicas taken out of rotation.
	MetricDrains = "dv_gw_drains_total"
	// MetricReinstates counts replicas returned to rotation.
	MetricReinstates = "dv_gw_reinstates_total"
	// MetricRollouts counts staged rollouts completed on every replica.
	MetricRollouts = "dv_gw_rollouts_total"
	// MetricRolloutsFailed counts rollouts halted by a reload-failure
	// streak.
	MetricRolloutsFailed = "dv_gw_rollouts_failed_total"
	// MetricRollbacks counts replicas rolled back to the prior artifact
	// after a halted rollout.
	MetricRollbacks = "dv_gw_rollbacks_total"
	// MetricRouteLatency is the end-to-end routed-request latency
	// histogram, labeled by outcome (ok, retry, shed, passthrough,
	// bad_gateway) — the SLO engine's route-latency and error-rate
	// source.
	MetricRouteLatency = "dv_gw_route_latency_seconds"
)

// ReplicaSpec declares one dvserve replica to front.
type ReplicaSpec struct {
	// Name identifies the replica in metrics, events, and rendezvous
	// hashing; it defaults to Addr. Renaming a replica remaps the keys
	// rendezvous-assigned to it, so keep names stable across restarts.
	Name string
	// Addr is the replica's HTTP listener, host:port.
	Addr string
	// ValidatorPath, when set, is the on-disk validator artifact this
	// replica loads from — the file a staged rollout replaces. The
	// gateway writes it directly, so the fleet model is replicas on the
	// same host (or a shared filesystem). Empty opts the replica out of
	// rollouts; a rollout request then fails its preconditions.
	ValidatorPath string
}

// Config tunes a Gateway. The zero value (plus at least one replica)
// fronts with the documented defaults.
type Config struct {
	// Replicas is the fleet; at least one is required.
	Replicas []ReplicaSpec
	// ProbeInterval is the health-check cadence per replica, jittered
	// ±ProbeJitter to decorrelate probes across replicas and gateways.
	// 0 means the default (1s); negative disables the background prober
	// entirely — tests then drive ProbeAll deterministically.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /readyz probe (default 2s).
	ProbeTimeout time.Duration
	// ProbeJitter is the fraction of ProbeInterval randomized away
	// (default 0.2, clamped to [0, 1]).
	ProbeJitter float64
	// DrainAfter is the consecutive health-failure streak that drains a
	// replica out of rotation (default 3).
	DrainAfter int
	// ReinstateAfter is the consecutive probe-success streak a drained
	// replica needs to rejoin rotation (default 2).
	ReinstateAfter int
	// ReprobeBackoff and ReprobeBackoffCap bound the capped-exponential
	// re-probe schedule for drained replicas (defaults 500ms and 15s).
	ReprobeBackoff    time.Duration
	ReprobeBackoffCap time.Duration
	// MaxInflight caps concurrently forwarded requests per replica;
	// beyond it routing falls back to the least-loaded replica, and when
	// every replica is at the cap the gateway sheds with 429
	// (default 64).
	MaxInflight int
	// MaxBodyBytes caps request bodies; larger ones get 413
	// (default 8 MiB, matching dvserve).
	MaxBodyBytes int64
	// ProxyTimeout bounds one forwarded request (default 30s).
	ProxyTimeout time.Duration
	// RetryAfter is the gateway's own backoff hint: advertised on
	// gateway-origin 429/503 responses and on relayed replica
	// backpressure that carried no Retry-After of its own (default 1s).
	// It is rendered by serve.RetryAfterHeader, the single source of the
	// header format.
	RetryAfter time.Duration
	// MaxRetries bounds per-request re-routes after connect failures or
	// replica-side 500/502 (default 1 — one retry on a second replica).
	MaxRetries int
	// RetryBudgetRatio is the retry-budget earn rate: tokens added per
	// successfully forwarded request (default 0.1, i.e. retries may add
	// at most ~10% traffic). The budget starts full at RetryBudgetCap
	// tokens (default 16) so cold-start failures can still be retried.
	RetryBudgetRatio float64
	RetryBudgetCap   float64
	// ReloadRetries bounds per-replica /v1/reload attempts during a
	// rollout before the replica counts as failed and the rollout halts
	// (default 3).
	ReloadRetries int
	// RolloutVerifyAttempts and RolloutVerifyDelay bound the /readyz
	// convergence poll after each rollout reload (defaults 20 and 50ms).
	RolloutVerifyAttempts int
	RolloutVerifyDelay    time.Duration
	// Registry, when non-nil, receives the dv_gw_* instruments. Nil
	// disables collection at zero cost.
	Registry *telemetry.Registry
	// Events, when non-nil, receives replica-health, rollout, and SLO
	// wide events.
	Events *obs.Logger
	// TraceSample is the fraction of requests recorded as gateway hop
	// span trees (admission → route decision → each retry hop →
	// upstream round-trip) on /debug/dv/trace/{id}. Client-supplied
	// X-DV-Trace-Id headers are always traced; otherwise the gateway
	// mints an ID, head-samples it, and forwards it on every hop so the
	// replica's own span tree shares the identity. 0 disables tracing
	// entirely — no IDs are minted and responses are byte-identical to
	// the untraced gateway.
	TraceSample float64
	// TraceStore bounds the ring of retained gateway traces
	// (default 256).
	TraceStore int
	// SLO declares the gateway's own burn-rate objectives over the
	// dv_gw_* instruments; it also needs Registry. See SLOOptions.
	SLO SLOOptions
}

// defaults fills unset fields in place.
func (c *Config) defaults() {
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.ProbeJitter == 0 {
		c.ProbeJitter = 0.2
	}
	if c.ProbeJitter < 0 {
		c.ProbeJitter = 0
	}
	if c.ProbeJitter > 1 {
		c.ProbeJitter = 1
	}
	if c.DrainAfter <= 0 {
		c.DrainAfter = 3
	}
	if c.ReinstateAfter <= 0 {
		c.ReinstateAfter = 2
	}
	if c.ReprobeBackoff <= 0 {
		c.ReprobeBackoff = 500 * time.Millisecond
	}
	if c.ReprobeBackoffCap <= 0 {
		c.ReprobeBackoffCap = 15 * time.Second
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.ProxyTimeout <= 0 {
		c.ProxyTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 1
	}
	if c.RetryBudgetRatio <= 0 {
		c.RetryBudgetRatio = 0.1
	}
	if c.RetryBudgetCap <= 0 {
		c.RetryBudgetCap = 16
	}
	if c.ReloadRetries <= 0 {
		c.ReloadRetries = 3
	}
	if c.RolloutVerifyAttempts <= 0 {
		c.RolloutVerifyAttempts = 20
	}
	if c.RolloutVerifyDelay <= 0 {
		c.RolloutVerifyDelay = 50 * time.Millisecond
	}
	if c.TraceStore <= 0 {
		c.TraceStore = 256
	}
	c.SLO.sloDefaults()
}

// replica is the gateway's view of one dvserve instance: its identity,
// its mutex-guarded health machine, and its traffic accounting.
type replica struct {
	name          string
	addr          string
	base          string // "http://" + addr
	validatorPath string

	mu         sync.Mutex
	hm         healthMachine
	lastReadyz serve.ReadyzBody // last parsed /readyz JSON tail (any status)
	lastErr    string           // last probe/transport failure, for /admin/replicas

	inflight atomic.Int64

	routed        *telemetry.Counter
	stateGauge    *telemetry.Gauge
	inflightGauge *telemetry.Gauge
}

// state returns the replica's health state under its lock.
func (r *replica) state() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hm.state
}

// validatorSHA returns the validator checksum last seen on the
// replica's /readyz.
func (r *replica) validatorSHA() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastReadyz.ValidatorSHA256
}

// Gateway fronts a replica fleet. Construct with New, mount Handler on
// an http.Server, stop with Close.
type Gateway struct {
	cfg      Config
	replicas []*replica
	client   *http.Client

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	budget    retryBudget
	rolloutMu sync.Mutex // one rollout at a time
	events    *obs.Logger

	sampler *trace.Sampler
	traces  *trace.Store
	// recent is a bounded ring of route outcomes (trace ID, outcome,
	// latency) kept solely so SLO breach events can cross-link the
	// offending trace IDs; it is not an endpoint of its own — the
	// gateway's /debug/dv/flight aggregates the replicas' recorders.
	recent *trace.Flight
	slo    *obs.Engine

	reqCheck        *telemetry.Counter
	reqBatch        *telemetry.Counter
	retries         *telemetry.Counter
	budgetExhausted *telemetry.Counter
	shed            *telemetry.Counter
	unroutable      *telemetry.Counter
	badGateway      *telemetry.Counter
	pass429         *telemetry.Counter
	pass503         *telemetry.Counter
	probeOK         *telemetry.Counter
	probeFail       *telemetry.Counter
	drains          *telemetry.Counter
	reinstates      *telemetry.Counter
	rollouts        *telemetry.Counter
	rolloutsFailed  *telemetry.Counter
	rollbacks       *telemetry.Counter

	latOK          *telemetry.Histogram
	latRetry       *telemetry.Histogram
	latShed        *telemetry.Histogram
	latPassthrough *telemetry.Histogram
	latBadGateway  *telemetry.Histogram
}

// New builds a gateway over the configured fleet and starts one prober
// goroutine per replica (unless ProbeInterval < 0). Replicas start
// Healthy — optimistic admission means a cold fleet serves immediately,
// and genuinely dead replicas drain within DrainAfter observations.
func New(cfg Config) (*Gateway, error) {
	cfg.defaults()
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("gateway: need at least one replica")
	}
	reg := cfg.Registry
	g := &Gateway{
		cfg:    cfg,
		stop:   make(chan struct{}),
		events: cfg.Events,
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        4 * len(cfg.Replicas),
				MaxIdleConnsPerHost: 4,
				IdleConnTimeout:     90 * time.Second,
			},
		},
		budget: retryBudget{ratio: cfg.RetryBudgetRatio, cap: cfg.RetryBudgetCap, tokens: cfg.RetryBudgetCap},

		reqCheck:        reg.Counter(telemetry.Label(MetricRequests, "endpoint", "check")),
		reqBatch:        reg.Counter(telemetry.Label(MetricRequests, "endpoint", "batch")),
		retries:         reg.Counter(MetricRetries),
		budgetExhausted: reg.Counter(MetricRetryBudgetSpent),
		shed:            reg.Counter(MetricShed),
		unroutable:      reg.Counter(MetricUnroutable),
		badGateway:      reg.Counter(MetricBadGateway),
		pass429:         reg.Counter(telemetry.Label(MetricPassthrough, "code", "429")),
		pass503:         reg.Counter(telemetry.Label(MetricPassthrough, "code", "503")),
		probeOK:         reg.Counter(telemetry.Label(MetricProbes, "result", "ok")),
		probeFail:       reg.Counter(telemetry.Label(MetricProbes, "result", "fail")),
		drains:          reg.Counter(MetricDrains),
		reinstates:      reg.Counter(MetricReinstates),
		rollouts:        reg.Counter(MetricRollouts),
		rolloutsFailed:  reg.Counter(MetricRolloutsFailed),
		rollbacks:       reg.Counter(MetricRollbacks),

		latOK:          reg.Histogram(telemetry.Label(MetricRouteLatency, "outcome", outcomeOK), telemetry.DefLatencyBuckets),
		latRetry:       reg.Histogram(telemetry.Label(MetricRouteLatency, "outcome", outcomeRetry), telemetry.DefLatencyBuckets),
		latShed:        reg.Histogram(telemetry.Label(MetricRouteLatency, "outcome", outcomeShed), telemetry.DefLatencyBuckets),
		latPassthrough: reg.Histogram(telemetry.Label(MetricRouteLatency, "outcome", outcomePassthrough), telemetry.DefLatencyBuckets),
		latBadGateway:  reg.Histogram(telemetry.Label(MetricRouteLatency, "outcome", outcomeBadGateway), telemetry.DefLatencyBuckets),
	}
	if cfg.TraceSample > 0 {
		g.sampler = trace.NewSampler(cfg.TraceSample)
		g.traces = trace.NewStore(cfg.TraceStore)
	}
	if g.traces != nil || cfg.SLO.Enabled {
		g.recent = trace.NewFlight(recentOutcomes)
	}
	seen := make(map[string]bool, len(cfg.Replicas))
	for _, spec := range cfg.Replicas {
		if spec.Addr == "" {
			return nil, errors.New("gateway: replica with empty address")
		}
		name := spec.Name
		if name == "" {
			name = spec.Addr
		}
		if seen[name] {
			return nil, fmt.Errorf("gateway: duplicate replica name %q (rendezvous hashing needs distinct names)", name)
		}
		seen[name] = true
		g.replicas = append(g.replicas, &replica{
			name:          name,
			addr:          spec.Addr,
			base:          "http://" + spec.Addr,
			validatorPath: spec.ValidatorPath,
			hm: healthMachine{cfg: healthConfig{
				drainAfter:     cfg.DrainAfter,
				reinstateAfter: cfg.ReinstateAfter,
				backoff:        cfg.ReprobeBackoff,
				backoffCap:     cfg.ReprobeBackoffCap,
			}},
			routed:        reg.Counter(telemetry.Label(MetricReplicaRequests, "replica", name)),
			stateGauge:    reg.Gauge(telemetry.Label(MetricReplicaState, "replica", name)),
			inflightGauge: reg.Gauge(telemetry.Label(MetricInflight, "replica", name)),
		})
	}
	g.buildSLO()
	g.slo.Start()
	if cfg.ProbeInterval > 0 {
		for _, r := range g.replicas {
			g.wg.Add(1)
			go g.probeLoop(r)
		}
	}
	g.events.Emit(obs.Event{
		Type: obs.TypeLifecycle, Level: obs.LevelInfo, Msg: "gateway ready",
		Extra: map[string]any{"replicas": len(g.replicas), "probe_interval": cfg.ProbeInterval.String()},
	})
	return g, nil
}

// Close stops the probers and waits for them. Idempotent.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() {
		close(g.stop)
		g.slo.Stop()
		g.events.Emit(obs.Event{Type: obs.TypeLifecycle, Level: obs.LevelInfo, Msg: "gateway closing"})
	})
	g.wg.Wait()
}

// probeLoop probes one replica on the jittered interval until Close.
// Each iteration redraws its jitter so replica probes decorrelate over
// time instead of marching in lockstep.
func (g *Gateway) probeLoop(r *replica) {
	defer g.wg.Done()
	for {
		d := g.cfg.ProbeInterval
		if j := g.cfg.ProbeJitter; j > 0 {
			d += time.Duration((rand.Float64()*2 - 1) * j * float64(d))
		}
		t := time.NewTimer(d)
		select {
		case <-g.stop:
			t.Stop()
			return
		case <-t.C:
		}
		g.probeOne(r, false)
	}
}

// ProbeAll force-probes every replica once, synchronously, ignoring the
// re-probe backoff — the deterministic hook tests and smoke drivers use
// instead of waiting out the prober interval.
func (g *Gateway) ProbeAll() {
	for _, r := range g.replicas {
		g.probeOne(r, true)
	}
}

// probeOne runs one health probe against r unless its re-probe backoff
// says not yet (force overrides). The result feeds the health machine.
func (g *Gateway) probeOne(r *replica, force bool) {
	if !force {
		r.mu.Lock()
		due := r.hm.probeDue(time.Now())
		r.mu.Unlock()
		if !due {
			return
		}
	}
	body, err := g.fetchReadyz(r, g.cfg.ProbeTimeout)
	ok := err == nil && body != nil && body.Status == "ready"
	errStr := ""
	if err != nil {
		errStr = err.Error()
	} else if !ok && body != nil {
		errStr = "replica not ready: " + body.Status
	}
	if ok {
		g.probeOK.Inc()
	} else {
		g.probeFail.Inc()
	}
	g.observe(r, ok, body, errStr)
}

// fetchReadyz GETs the replica's /readyz and parses the one-line JSON
// tail (the last non-empty line of the body — serve.ReadyzBody is the
// wire contract). A non-200 status is not an error here: degraded and
// draining replicas still serve a parseable body whose artifact
// checksums the rollout verifier needs; the caller judges readiness
// from Status.
func (g *Gateway) fetchReadyz(r *replica, timeout time.Duration) (*serve.ReadyzBody, error) {
	if err := faultinject.Check(faultinject.PointGatewayProbe); err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodGet, r.base+"/readyz", nil)
	if err != nil {
		return nil, err
	}
	client := *g.client
	client.Timeout = timeout
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("reading /readyz body: %w", err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	tail := strings.TrimSpace(lines[len(lines)-1])
	var body serve.ReadyzBody
	if err := json.Unmarshal([]byte(tail), &body); err != nil {
		return nil, fmt.Errorf("parsing /readyz JSON tail: %w", err)
	}
	return &body, nil
}

// observe feeds one health observation into r's machine, updates the
// state gauge, and emits a replica_health event on transitions. Both
// the prober and the route path (transport outcomes) funnel through
// here, so a dead replica drains after DrainAfter failed forwards
// without waiting for probe ticks.
func (g *Gateway) observe(r *replica, ok bool, body *serve.ReadyzBody, errStr string) {
	r.mu.Lock()
	prev, next := r.hm.observe(ok, time.Now())
	if body != nil {
		r.lastReadyz = *body
	}
	r.lastErr = errStr
	failStreak := r.hm.failStreak
	r.mu.Unlock()
	r.stateGauge.Set(float64(next))
	if prev == next {
		return
	}
	if next == StateDrained && prev.InRotation() {
		g.drains.Inc()
	}
	if next == StateHealthy && !prev.InRotation() {
		g.reinstates.Inc()
	}
	level := obs.LevelWarn
	if next == StateHealthy {
		level = obs.LevelInfo
	}
	g.events.Emit(obs.Event{
		Type: obs.TypeReplicaHealth, Level: level,
		Msg: fmt.Sprintf("replica %s: %s -> %s", r.name, prev, next),
		Err: errStr,
		Extra: map[string]any{
			"replica": r.name, "from": prev.String(), "to": next.String(),
			"fail_streak": failStreak, "in_rotation": next.InRotation(),
		},
	})
}

// InRotation returns how many replicas currently receive traffic.
func (g *Gateway) InRotation() int {
	n := 0
	for _, r := range g.replicas {
		if r.state().InRotation() {
			n++
		}
	}
	return n
}

// retryBudget is the token bucket that bounds retry amplification:
// successful forwards earn ratio tokens (up to cap), each retry spends
// one. During a fleet-wide incident successes dry up, the bucket
// drains, and the gateway stops multiplying traffic at exactly the
// moment retries stop helping.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
	cap    float64
}

func (b *retryBudget) earn() {
	b.mu.Lock()
	if b.tokens += b.ratio; b.tokens > b.cap {
		b.tokens = b.cap
	}
	b.mu.Unlock()
}

func (b *retryBudget) spend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
