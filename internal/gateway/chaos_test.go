package gateway

import (
	"bytes"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deepvalidation/internal/telemetry"
)

// TestChaosKillRestartMidLoad is the fleet chaos leg: kill one replica
// while load is flowing, let the drain settle, and demand zero client
// 5xx afterwards — then restart the replica and watch the success
// streak reinstate it and traffic return. Every assertion is a counter
// or a state, never a wall-clock measurement.
func TestChaosKillRestartMidLoad(t *testing.T) {
	g, procs, reg := newFleet(t, 3, func(c *Config) {
		c.DrainAfter = 2
		c.ReinstateAfter = 2
		c.MaxRetries = 1
		// Ample budget: the kill window's retries must never be denied,
		// or the zero-5xx guarantee would hinge on traffic volume.
		c.RetryBudgetCap = 256
	})
	ts := gwServer(t, g)
	bodies := distinctBodies(t, 24)

	routedTo := func(name string) int64 {
		return counterValue(t, reg, telemetry.Label(MetricReplicaRequests, "replica", name))
	}
	sendAll := func(strict bool) (fiveXX int) {
		t.Helper()
		for _, body := range bodies {
			resp, data := post(t, ts.URL+"/v1/check", body)
			if resp.StatusCode >= 500 {
				if strict {
					t.Fatalf("client got %d after drain settled: %s", resp.StatusCode, data)
				}
				fiveXX++
				continue
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("unexpected status %d: %s", resp.StatusCode, data)
			}
		}
		return fiveXX
	}

	// Healthy fleet: all 200s, and rendezvous uses every replica.
	sendAll(true)
	for _, p := range procs {
		if routedTo(p.name) == 0 {
			t.Fatalf("replica %s got no traffic across %d distinct keys", p.name, len(bodies))
		}
	}

	victim := procs[1]
	victimRep := g.replicas[1]
	victim.kill()

	// Mid-load: concurrent clients while the victim is dead. Retries
	// should absorb the failures (tolerated, not asserted — that is what
	// the settled phase pins down); the route-path observations drain
	// the victim without a single probe tick.
	var midFiveXX atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for _, body := range bodies {
					resp, err := http.Post(ts.URL+"/v1/check", "application/json", bytes.NewReader(body))
					if err != nil {
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode >= 500 {
						midFiveXX.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()

	// Drive load until the drain settles (bounded; each round routes
	// victim-keyed requests into transport failures that feed the
	// health machine).
	for i := 0; victimRep.state() != StateDrained; i++ {
		if i >= 50 {
			t.Fatalf("victim never drained; state %v", victimRep.state())
		}
		sendAll(false)
	}
	if g.InRotation() != 2 {
		t.Fatalf("%d replicas in rotation after drain, want 2", g.InRotation())
	}
	if n := counterValue(t, reg, MetricDrains); n != 1 {
		t.Fatalf("drains counter %d, want 1", n)
	}

	// Settled: zero 5xx, and the bad-gateway counter must not move.
	badBefore := counterValue(t, reg, MetricBadGateway)
	for round := 0; round < 3; round++ {
		sendAll(true)
	}
	if badAfter := counterValue(t, reg, MetricBadGateway); badAfter != badBefore {
		t.Fatalf("bad-gateway counter moved %d -> %d after drain settled", badBefore, badAfter)
	}
	t.Logf("mid-kill 5xx seen by clients: %d (tolerated; settled phase saw none)", midFiveXX.Load())

	// Resurrect the victim: one probe success only re-probes, the
	// second reinstates (ReinstateAfter 2).
	victim.restart()
	g.ProbeAll()
	if st := victimRep.state(); st != StateReprobing {
		t.Fatalf("victim state %v after first good probe, want reprobing", st)
	}
	if g.InRotation() != 2 {
		t.Fatal("reprobing replica must not yet be in rotation")
	}
	g.ProbeAll()
	if st := victimRep.state(); st != StateHealthy {
		t.Fatalf("victim state %v after success streak, want healthy", st)
	}
	if g.InRotation() != 3 {
		t.Fatalf("%d replicas in rotation after reinstatement, want 3", g.InRotation())
	}
	if n := counterValue(t, reg, MetricReinstates); n != 1 {
		t.Fatalf("reinstates counter %d, want 1", n)
	}

	// Traffic returns to the reinstated replica: rendezvous hands its
	// keys back.
	before := routedTo(victim.name)
	sendAll(true)
	if after := routedTo(victim.name); after <= before {
		t.Fatalf("reinstated replica got no traffic (routed %d -> %d)", before, after)
	}
}

// TestBatchEndpointRoutes pins that /v1/batch flows through the same
// routing as /v1/check and increments its own request counter.
func TestBatchEndpointRoutes(t *testing.T) {
	g, reg := fakeFleet(t, map[string]http.HandlerFunc{"a": echoReplica("a")}, nil)
	ts := gwServer(t, g)
	resp, body := post(t, ts.URL+"/v1/batch", []byte(`{"images":[]}`))
	if resp.StatusCode != http.StatusOK || body != "a" {
		t.Fatalf("batch status %d body %q, want 200 from a", resp.StatusCode, body)
	}
	if n := counterValue(t, reg, telemetry.Label(MetricRequests, "endpoint", "batch")); n != 1 {
		t.Fatalf("batch request counter %d, want 1", n)
	}
}

// TestGatewayGracefulClose pins that Close stops the probers promptly
// even with a short probe interval armed.
func TestGatewayGracefulClose(t *testing.T) {
	g, _ := fakeFleet(t, map[string]http.HandlerFunc{"a": echoReplica("a")}, func(c *Config) {
		c.ProbeInterval = 5 * time.Millisecond
	})
	done := make(chan struct{})
	go func() {
		g.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not stop the probers")
	}
}
