package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"time"

	"testing"

	"deepvalidation/internal/obs"
	"deepvalidation/internal/telemetry"
)

// gwBenchSnapshotPath mirrors the serve bench: snapshots merge into the
// one committed perf-trajectory file at the repo root.
const gwBenchSnapshotPath = "../../BENCH_pipeline.json"

// gwObsVariant is one gateway configuration's per-request cost in the
// snapshot. Allocations are the enforced axis (deterministic for the
// fixed workload); wall clock on the shared 1-CPU bench host is noise
// at this granularity and is recorded as information only.
type gwObsVariant struct {
	Name         string  `json:"name"`
	AllocsPerReq float64 `json:"allocs_per_request"`
	MsPerReq     float64 `json:"ms_per_request_informational"`
}

// benchGateway builds a gateway over one fake fast replica (an
// in-process httptest handler answering instantly) so the measured
// per-request cost is the gateway's own proxy path, not detector work.
func benchGateway(t *testing.T, tune func(*Config)) *Gateway {
	t.Helper()
	ts := httptest.NewServer(echoReplica("a"))
	t.Cleanup(ts.Close)
	cfg := Config{
		Replicas:      []ReplicaSpec{{Name: "a", Addr: strings.TrimPrefix(ts.URL, "http://")}},
		ProbeInterval: -1,
	}
	if tune != nil {
		tune(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// TestBenchGatewayObsSnapshot records the gateway observability plane's
// per-request cost into BENCH_pipeline.json under a "gateway_obs" key:
// a bare gateway (no registry), the sinks-off production shape
// (registry only — the configuration the byte-identical-off contract
// covers), and the fully instrumented plane (tracing at 1.0 plus the
// SLO engine and wide events). The enforced guard is allocation parity
// for the sinks-off shape: metrics-only instrumentation is atomic
// counter/histogram math and may not allocate per request beyond the
// bare gateway plus a small fixed slack, which fails loudly if span
// assembly, flight-ring records, or SLO bookkeeping creep into the
// disabled path. The tracing+SLO delta and all wall-clock figures are
// recorded as information, never gated.
func TestBenchGatewayObsSnapshot(t *testing.T) {
	if os.Getenv("DV_BENCH_SNAPSHOT") == "" {
		t.Skip("set DV_BENCH_SNAPSHOT=1 to refresh BENCH_pipeline.json")
	}

	imgs, _ := testImages(7, 1)
	body := checkBody(t, imgs[0])

	variants := []struct {
		name string
		tune func(*Config)
	}{
		{"bare", nil},
		{"sinks_off_metrics_only", func(c *Config) { c.Registry = telemetry.New() }},
		{"traced", func(c *Config) {
			c.Registry = telemetry.New()
			c.TraceSample = 1
			c.TraceStore = 512
		}},
		{"traced_slo_events", func(c *Config) {
			reg := telemetry.New()
			c.Registry = reg
			c.Events = obs.New(obs.Config{Registry: reg})
			c.TraceSample = 1
			c.TraceStore = 512
			c.SLO = SLOOptions{Enabled: true, Interval: time.Hour}
		}},
	}

	results := make([]gwObsVariant, 0, len(variants))
	for _, v := range variants {
		g := benchGateway(t, v.tune)
		h := g.Handler()
		oneRequest := func() {
			req := httptest.NewRequest(http.MethodPost, "/v1/check", strings.NewReader(string(body)))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Fatalf("%s: proxied check = %d, want 200: %s", v.name, rec.Code, rec.Body.String())
			}
		}
		// Warm the upstream keep-alive connection and every lazy pool
		// before counting, so connection setup is not billed to run 1.
		for i := 0; i < 20; i++ {
			oneRequest()
		}
		allocs := testing.AllocsPerRun(200, oneRequest)
		runtime.GC()
		const timed = 300
		t0 := time.Now()
		for i := 0; i < timed; i++ {
			oneRequest()
		}
		ms := time.Since(t0).Seconds() * 1e3 / timed
		results = append(results, gwObsVariant{Name: v.name, AllocsPerReq: allocs, MsPerReq: ms})
		t.Logf("%-22s %7.1f allocs/req, %6.3f ms/req (wall clock informational)", v.name, allocs, ms)
	}

	byName := func(name string) gwObsVariant {
		for _, r := range results {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("no variant %q", name)
		return gwObsVariant{}
	}
	bare, off := byName("bare"), byName("sinks_off_metrics_only")
	full := byName("traced_slo_events")
	// The gate: registering metrics must stay allocation-free per
	// request. The slack absorbs HTTP-transport jitter (an occasional
	// keep-alive re-dial inside the averaging window), not per-request
	// observability work, which costs far more than 12 allocations.
	if off.AllocsPerReq > bare.AllocsPerReq+12 {
		t.Errorf("sinks-off gateway allocates %.1f/req vs bare %.1f/req; observability work leaked into the disabled path",
			off.AllocsPerReq, bare.AllocsPerReq)
	}
	onDelta := full.AllocsPerReq - off.AllocsPerReq
	t.Logf("tracing+SLO+events adds %.1f allocs/req over sinks-off (informational)", onDelta)

	raw, err := os.ReadFile(gwBenchSnapshotPath)
	if err != nil {
		t.Fatalf("pipeline snapshot must exist before the gateway merge (run it first, as `make snapshot` does): %v", err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	section, err := json.Marshal(struct {
		Note          string         `json:"note"`
		Variants      []gwObsVariant `json:"variants"`
		SinksOnDelta  float64        `json:"sinks_on_delta_allocs_per_request"`
		SinksOffDelta float64        `json:"sinks_off_delta_allocs_per_request"`
	}{
		"gateway observability plane cost per proxied /v1/check against an instant fake replica; " +
			"the enforced guard is sinks-off allocation parity with the bare gateway " +
			"(wall clock on the shared bench host is informational, never gated)",
		results, onDelta, off.AllocsPerReq - bare.AllocsPerReq,
	})
	if err != nil {
		t.Fatal(err)
	}
	doc["gateway_obs"] = section
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(gwBenchSnapshotPath, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Println("gateway_obs snapshot merged into", gwBenchSnapshotPath)
}
