package hunt

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"deepvalidation/internal/core"
	"deepvalidation/internal/corner"
	"deepvalidation/internal/nn"
	"deepvalidation/internal/opt"
	"deepvalidation/internal/tensor"
)

// toyProblem builds a linearly separable 3-class problem on 1×8×8
// images (bright band at a class-specific height) — the same toy the
// corner package's tests train on.
func toyProblem(rng *rand.Rand, n int) (xs []*tensor.Tensor, ys []int) {
	for i := 0; i < n; i++ {
		k := rng.Intn(3)
		img := tensor.New(1, 8, 8).FillUniform(rng, 0, 0.15)
		for y := 2 * k; y < 2*k+3; y++ {
			for x := 0; x < 8; x++ {
				img.Set(0.8+0.2*rng.Float64(), 0, y, x)
			}
		}
		xs = append(xs, img)
		ys = append(ys, k)
	}
	return xs, ys
}

var fixture struct {
	once    sync.Once
	tgt     Target
	epsilon float64
	seedX   []*tensor.Tensor
	seedY   []int
	err     error
}

// toyTarget trains a small CNN on the toy problem, fits a validator
// with the drift reference, calibrates ε on held-out clean images, and
// selects correctly classified seeds — one detector for every hunt
// test.
func toyTarget(t *testing.T) (Target, float64, []*tensor.Tensor, []int) {
	t.Helper()
	fixture.once.Do(func() {
		fail := func(err error) { fixture.err = err }
		rng := rand.New(rand.NewSource(11))
		net, err := nn.NewSevenLayerCNN("toy", 1, 8, 3, nn.ArchConfig{Width: 4, FCWidth: 16}, rng)
		if err != nil {
			fail(err)
			return
		}
		xs, ys := toyProblem(rng, 150)
		tr := nn.NewTrainer(net, opt.NewAdadelta(1.0, 0.95), rand.New(rand.NewSource(12)))
		tr.BatchSize = 16
		stats, err := tr.Train(xs, ys, 20)
		if err != nil {
			fail(err)
			return
		}
		if acc := stats[len(stats)-1].Accuracy; acc < 0.95 {
			fail(fmt.Errorf("toy accuracy %v too low", acc))
			return
		}
		val, err := core.Fit(net, xs, ys, core.Config{Nu: 0.1, MaxPerClass: 60, MaxFeatures: 64, Workers: 2})
		if err != nil {
			fail(err)
			return
		}
		if !val.HasDriftReference() {
			fail(fmt.Errorf("fit recorded no drift reference"))
			return
		}
		mon, err := core.NewMonitor(net, val, 0)
		if err != nil {
			fail(err)
			return
		}
		cleanX, cleanY := toyProblem(rand.New(rand.NewSource(50)), 90)
		fixture.epsilon = mon.CalibrateEpsilon(cleanX, 0.1)
		fixture.seedX, fixture.seedY, err = corner.SelectSeeds(net, cleanX, cleanY, 12, rand.New(rand.NewSource(51)))
		if err != nil {
			fail(err)
			return
		}
		fixture.tgt = Target{Net: net, Val: val}
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	return fixture.tgt, fixture.epsilon, fixture.seedX, fixture.seedY
}

func toySpaces() []corner.Space { return corner.Spaces(true, 8, 8) }

func TestChainCloneDoesNotAlias(t *testing.T) {
	c := Chain{{Family: "brightness", Params: []float64{0.3}}}
	d := c.Clone()
	d[0].Params[0] = -0.5
	if c[0].Params[0] != 0.3 {
		t.Fatalf("Clone aliases parameter storage: %v", c[0].Params[0])
	}
}

func TestChainKeyCanonical(t *testing.T) {
	a := Chain{{Family: "rotation", Params: []float64{30}}, {Family: "blur", Params: []float64{1.5}}}
	b := Chain{{Family: "rotation", Params: []float64{30}}, {Family: "blur", Params: []float64{1.5}}}
	if a.Key() != b.Key() {
		t.Fatalf("identical chains disagree on key: %q vs %q", a.Key(), b.Key())
	}
	c := Chain{{Family: "blur", Params: []float64{1.5}}, {Family: "rotation", Params: []float64{30}}}
	if a.Key() == c.Key() {
		t.Fatal("stage order lost in key")
	}
	if got := a.FamilyKey(); got != "rotation+blur" {
		t.Fatalf("FamilyKey = %q", got)
	}
	if got := (Chain{}).FamilyKey(); got != "identity" {
		t.Fatalf("empty FamilyKey = %q", got)
	}
}

func TestChainMaterialize(t *testing.T) {
	spaces := toySpaces()
	c := Chain{{Family: "brightness", Params: []float64{0.4}}, {Family: "complement", Params: nil}}
	tr, err := c.Materialize(spaces)
	if err != nil {
		t.Fatal(err)
	}
	img := tensor.New(1, 8, 8)
	out := tr.Apply(img)
	// brightness +0.4 then complement: 1 − (0 + 0.4) = 0.6 everywhere.
	if got := out.At(0, 3, 3); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("composed transform applied wrong: got %v, want 0.6", got)
	}

	if _, err := (Chain{{Family: "nope", Params: nil}}).Materialize(spaces); err == nil {
		t.Fatal("unknown family materialized")
	}
	if _, err := (Chain{{Family: "brightness", Params: []float64{1, 2}}}).Materialize(spaces); err == nil {
		t.Fatal("wrong parameter count materialized")
	}
	// Out-of-range parameters clamp rather than fail: a scale of 0 would
	// be a singular affine matrix, so the clamp is load-bearing.
	wild := Chain{{Family: "scale", Params: []float64{0, 1e9}}}
	tr, err = wild.Materialize(spaces)
	if err != nil {
		t.Fatal(err)
	}
	out = tr.Apply(tensor.New(1, 8, 8).Fill(0.5))
	for _, v := range out.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("clamped wild chain produced non-finite pixels")
		}
	}
}

func TestMutatorStaysInBoundsAndNonEmpty(t *testing.T) {
	spaces := toySpaces()
	m := &Mutator{Spaces: spaces, MaxStages: 3}
	rng := rand.New(rand.NewSource(1))
	c := m.Random(rng)
	for step := 0; step < 2000; step++ {
		c = m.Mutate(c, rng)
		if len(c) == 0 || len(c) > m.MaxStages {
			t.Fatalf("step %d: chain length %d outside [1, %d]", step, len(c), m.MaxStages)
		}
		for _, st := range c {
			sp, ok := corner.SpaceByFamily(spaces, st.Family)
			if !ok {
				t.Fatalf("step %d: unknown family %q", step, st.Family)
			}
			if len(st.Params) != len(sp.Params) {
				t.Fatalf("step %d: family %q carries %d params, want %d", step, st.Family, len(st.Params), len(sp.Params))
			}
		}
		if _, err := c.Materialize(spaces); err != nil {
			t.Fatalf("step %d: mutator output fails to materialize: %v", step, err)
		}
	}
}

func TestMutatorDeterministic(t *testing.T) {
	spaces := toySpaces()
	m := &Mutator{Spaces: spaces, MaxStages: 3}
	run := func() []string {
		rng := rand.New(rand.NewSource(9))
		c := m.Random(rng)
		keys := []string{c.Key()}
		for i := 0; i < 200; i++ {
			c = m.Mutate(c, rng)
			keys = append(keys, c.Key())
		}
		return keys
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mutation %d diverged for a fixed seed:\n%s\n%s", i, a[i], b[i])
		}
	}
}

func TestCoverageBinsAndNovelty(t *testing.T) {
	quantiles := [][]float64{{-1, 0, 1}, {-2, 0, 2}}
	cov := NewCoverage(quantiles)
	if cov == nil {
		t.Fatal("NewCoverage rejected a well-formed reference")
	}
	if !cov.Observe(0, []float64{-5, -5}) {
		t.Fatal("first signature not novel")
	}
	if cov.Observe(0, []float64{-5, -5}) {
		t.Fatal("repeated signature reported novel")
	}
	if !cov.Observe(1, []float64{-5, -5}) {
		t.Fatal("same bins under a different label should be novel")
	}
	if !cov.Observe(0, []float64{5, 5}) {
		t.Fatal("top bins not novel")
	}
	if cov.Observe(0, []float64{math.NaN(), 0}) {
		t.Fatal("non-finite vector reported novel")
	}
	if cov.Observe(0, []float64{0}) {
		t.Fatal("wrong-arity vector reported novel")
	}
	if got := cov.Signatures(); got != 3 {
		t.Fatalf("Signatures = %d, want 3", got)
	}
	hit, total := cov.Bins()
	if total != 8 {
		t.Fatalf("total bins = %d, want 8 (two layers × four bins)", total)
	}
	if hit != 4 {
		t.Fatalf("hit bins = %d, want 4", hit)
	}
	if NewCoverage(nil) != nil || NewCoverage([][]float64{{0.5}}) != nil {
		t.Fatal("malformed references should yield a nil coverage map")
	}
	var nilCov *Coverage
	if nilCov.Observe(0, []float64{1}) || nilCov.Signatures() != 0 {
		t.Fatal("nil coverage map is not inert")
	}
}

func testEscape(seedVal float64) *Escape {
	seed := tensor.New(1, 8, 8).Fill(seedVal)
	return &Escape{
		ModelName:         "toy",
		SeedShape:         []int{1, 8, 8},
		SeedData:          append([]float64(nil), seed.Data...),
		SeedLabel:         0,
		Chain:             Chain{{Family: "brightness", Params: []float64{0.4}}},
		TransformedSHA256: TensorSHA256(tensor.New(1, 8, 8).Fill(seedVal + 0.4)),
		Pred:              2,
		Confidence:        0.9,
		Joint:             -1.5,
		Epsilon:           1.0,
	}
}

// TestEscapeIDPinned pins the content-addressed ID of a fixed escape to
// a literal. The ID must hash the canonical field fingerprint, never the
// gob payload: gob assigns type IDs in global first-use order, so
// payload bytes (and a payload-derived ID) change in processes that
// gob-encoded other types first — exactly how dvreport, which runs the
// experiment lab before loading a corpus, once rejected every manifest.
func TestEscapeIDPinned(t *testing.T) {
	id, err := testEscape(0.1).ID()
	if err != nil {
		t.Fatal(err)
	}
	if want := "escape-738c033bccaf"; id != want {
		t.Fatalf("pinned escape ID drifted: got %s, want %s (an intentional identity-scheme change must bump escapeVersion and regenerate committed corpora)", id, want)
	}
}

func TestCorpusAddDedupes(t *testing.T) {
	c := &Corpus{}
	if added, err := c.Add(testEscape(0.1)); err != nil || !added {
		t.Fatalf("first Add = (%v, %v)", added, err)
	}
	if added, err := c.Add(testEscape(0.1)); err != nil || added {
		t.Fatalf("identical Add = (%v, %v), want deduplicated", added, err)
	}
	if added, err := c.Add(testEscape(0.2)); err != nil || !added {
		t.Fatalf("distinct Add = (%v, %v)", added, err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestCorpusSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := &Corpus{}
	for _, v := range []float64{0.3, 0.1, 0.2} {
		if _, err := c.Add(testEscape(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Save(dir, toySpaces(), "toy", 1.0); err != nil {
		t.Fatal(err)
	}
	got, m, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Model != "toy" || m.Epsilon != 1.0 || m.Version != 1 {
		t.Fatalf("manifest header = %+v", m)
	}
	if got.Len() != 3 {
		t.Fatalf("loaded %d escapes, want 3", got.Len())
	}
	for i := 1; i < len(m.Escapes); i++ {
		if m.Escapes[i-1].ID >= m.Escapes[i].ID {
			t.Fatal("manifest not sorted by ID")
		}
	}
	for i, e := range got.Escapes {
		id, err := e.ID()
		if err != nil {
			t.Fatal(err)
		}
		if id != m.Escapes[i].ID {
			t.Fatalf("escape %d ID %s != manifest %s", i, id, m.Escapes[i].ID)
		}
		img, match, err := e.CornerImage()
		if err != nil {
			t.Fatal(err)
		}
		if !match {
			t.Fatalf("escape %d: replayed pixels differ from pinned checksum", i)
		}
		if img.Shape[0] != 1 || img.Shape[1] != 8 || img.Shape[2] != 8 {
			t.Fatalf("escape %d: replayed shape %v", i, img.Shape)
		}
	}

	// A corrupted artifact must be rejected, not silently replayed.
	raw, err := os.ReadFile(filepath.Join(dir, m.Escapes[0].File))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, m.Escapes[0].File), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCorpus(dir); err == nil {
		t.Fatal("LoadCorpus accepted a corrupted escape artifact")
	}
}

func TestEscapeValidateRejectsGarbage(t *testing.T) {
	bad := testEscape(0.1)
	bad.Version = escapeVersion
	bad.SeedData = bad.SeedData[:5]
	if err := bad.Validate(); err == nil {
		t.Fatal("short seed data validated")
	}
	bad = testEscape(0.1)
	bad.Version = escapeVersion
	bad.Chain = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("empty chain validated")
	}
	bad = testEscape(0.1)
	bad.Version = escapeVersion
	bad.Joint = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Fatal("NaN verdict validated")
	}
}

func TestMinimizeDropsStagesAndShrinksParams(t *testing.T) {
	tgt, _, seedX, _ := toyTarget(t)
	spaces := toySpaces()
	chain := Chain{
		{Family: "brightness", Params: []float64{0.5}},
		{Family: "rotation", Params: []float64{40}},
		{Family: "blur", Params: []float64{2}},
	}
	// accept-everything: minimization must collapse to one stage with
	// near-neutral parameters.
	min, _, evals := Minimize(tgt, seedX[0], chain, spaces, func(core.Result) bool { return true })
	if len(min) != 1 {
		t.Fatalf("minimized to %d stages, want 1", len(min))
	}
	if evals <= 1 {
		t.Fatalf("evals = %d, want > 1", evals)
	}
	sp, _ := corner.SpaceByFamily(spaces, min[0].Family)
	for j, r := range sp.Params {
		dist := math.Abs(min[0].Params[j] - r.Neutral)
		full := math.Abs(r.Max - r.Min)
		if dist > full/100 {
			t.Fatalf("param %s not shrunk toward neutral: %v (neutral %v)", r.Name, min[0].Params[j], r.Neutral)
		}
	}

	// accept-nothing-simpler: the original chain must come back intact.
	orig := chain.Key()
	min, _, _ = Minimize(tgt, seedX[0], chain, spaces, func(core.Result) bool { return false })
	if min.Key() != orig {
		t.Fatalf("minimizer changed a chain it could not simplify:\n%s\n%s", orig, min.Key())
	}
	if chain.Key() != orig {
		t.Fatal("Minimize mutated its input chain")
	}
}

// huntOnce runs a fixed-seed hunt and saves corpus + report to dir.
func huntOnce(t *testing.T, dir string, workers int) (*Corpus, *Report) {
	t.Helper()
	tgt, eps, seedX, seedY := toyTarget(t)
	cfg := Config{
		Budget:    2400,
		BatchSize: 64,
		Seed:      7,
		Workers:   workers,
		Epsilon:   eps,
	}
	corpus, report, err := Hunt(tgt, seedX, seedY, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := corpus.Save(dir, toySpaces(), tgt.Net.ModelName, eps); err != nil {
		t.Fatal(err)
	}
	if err := report.Save(filepath.Join(dir, RatesName)); err != nil {
		t.Fatal(err)
	}
	return corpus, report
}

func TestHuntFindsMinimizedEscapes(t *testing.T) {
	dir := t.TempDir()
	corpus, report, eps := func() (*Corpus, *Report, float64) {
		_, eps, _, _ := toyTarget(t)
		c, r := huntOnce(t, dir, 0)
		return c, r, eps
	}()
	if report.Escapes+report.NearEscapes == 0 {
		t.Fatalf("hunt found no escapes within budget %d (eps=%v)", report.Budget, eps)
	}
	if corpus.Len() == 0 {
		t.Fatal("hunt saved no escapes")
	}
	if report.Evals != report.Budget {
		t.Fatalf("spent %d evals for budget %d", report.Evals, report.Budget)
	}
	if report.Signatures == 0 || report.BinsHit == 0 {
		t.Fatalf("coverage never advanced: %d signatures, %d bins", report.Signatures, report.BinsHit)
	}
	if len(report.Rows) == 0 {
		t.Fatal("report has no per-composition rows")
	}
	evals := 0
	for _, row := range report.Rows {
		evals += row.Evals
	}
	if evals != report.Evals {
		t.Fatalf("per-composition evals sum to %d, report says %d", evals, report.Evals)
	}

	tgt, _, _, _ := toyTarget(t)
	for i, e := range corpus.Escapes {
		if err := e.Validate(); err != nil {
			t.Fatalf("escape %d invalid: %v", i, err)
		}
		// The recorded verdict must reproduce exactly on replay.
		img, match, err := e.CornerImage()
		if err != nil {
			t.Fatal(err)
		}
		if !match {
			t.Fatalf("escape %d: pixel pin broken immediately after mining", i)
		}
		res := tgt.Val.Score(tgt.Net, img)
		if res.Label != e.Pred || res.Joint != e.Joint || res.Confidence != e.Confidence {
			t.Fatalf("escape %d: recorded verdict (%d, %v, %v) does not reproduce (%d, %v, %v)",
				i, e.Pred, e.Confidence, e.Joint, res.Label, res.Confidence, res.Joint)
		}
		if res.Label == e.SeedLabel {
			t.Fatalf("escape %d is not a misprediction", i)
		}
		bound := e.Epsilon
		if e.Near {
			bound = 1.1 * e.Epsilon
		}
		if !(res.Joint < bound) {
			t.Fatalf("escape %d: joint %v not under bound %v (near=%v)", i, res.Joint, bound, e.Near)
		}
	}

	// Replay straight from disk: every mined escape still escapes
	// against the detector it was mined on.
	loaded, _, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	outcomes, err := Replay(tgt, loaded, eps, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, oc := range outcomes {
		if !oc.PixelsMatch {
			t.Fatalf("%s: transformed-pixel drift on immediate replay", oc.ID)
		}
	}
}

func TestHuntDeterministicAcrossWorkerCounts(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	huntOnce(t, dirA, 1)
	huntOnce(t, dirB, 4)
	entriesA, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	entriesB, err := os.ReadDir(dirB)
	if err != nil {
		t.Fatal(err)
	}
	if len(entriesA) != len(entriesB) {
		t.Fatalf("corpus trees differ in size: %d vs %d files", len(entriesA), len(entriesB))
	}
	if len(entriesA) < 2 {
		t.Fatalf("corpus tree suspiciously small: %d files", len(entriesA))
	}
	for i := range entriesA {
		na, nb := entriesA[i].Name(), entriesB[i].Name()
		if na != nb {
			t.Fatalf("file %d name differs: %s vs %s", i, na, nb)
		}
		a, err := os.ReadFile(filepath.Join(dirA, na))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, nb))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between workers=1 and workers=4 runs", na)
		}
	}
}

func TestHuntRejectsBadInputs(t *testing.T) {
	tgt, eps, seedX, seedY := toyTarget(t)
	if _, _, err := Hunt(Target{}, seedX, seedY, Config{Epsilon: eps}); err == nil {
		t.Fatal("empty target accepted")
	}
	if _, _, err := Hunt(tgt, nil, nil, Config{Epsilon: eps}); err == nil {
		t.Fatal("no seeds accepted")
	}
	if _, _, err := Hunt(tgt, seedX, seedY[:1], Config{Epsilon: eps}); err == nil {
		t.Fatal("mismatched labels accepted")
	}
	if _, _, err := Hunt(tgt, seedX, seedY, Config{Epsilon: 0}); err == nil {
		t.Fatal("zero epsilon accepted")
	}
	xs, ys := toyProblem(rand.New(rand.NewSource(13)), 60)
	noDrift, err := core.Fit(tgt.Net, xs, ys, core.Config{Nu: 0.1, MaxPerClass: 40, MaxFeatures: 32, Workers: 2, SkipDriftSnapshot: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Hunt(Target{Net: tgt.Net, Val: noDrift}, seedX, seedY, Config{Epsilon: eps}); err == nil {
		t.Fatal("drift-less validator accepted")
	}
}
