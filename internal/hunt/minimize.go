package hunt

import (
	"deepvalidation/internal/core"
	"deepvalidation/internal/corner"
	"deepvalidation/internal/nn"
	"deepvalidation/internal/tensor"
)

// shrinkRounds bounds how many halving steps each parameter gets during
// minimization; 8 rounds shrink a parameter to within 1/256 of the
// smallest escaping distance from neutral.
const shrinkRounds = 8

// Target is the system under test: the classifier plus its fitted
// validator. Scoring is read-only on both, so one Target serves the
// whole hunt concurrently.
type Target struct {
	Net *nn.Network
	Val *core.Validator
}

// score evaluates one chain on one seed, returning the scoring result
// and the transformed image. Chains produced by the Mutator always
// materialize; an error here means a corrupted corpus chain.
func (t Target) score(seed *tensor.Tensor, c Chain, spaces []corner.Space) (core.Result, *tensor.Tensor, error) {
	tr, err := c.Materialize(spaces)
	if err != nil {
		return core.Result{}, nil, err
	}
	img := tr.Apply(seed)
	return t.Val.Score(t.Net, img), img, nil
}

// Minimize greedily simplifies an escape: it repeatedly tries to drop
// whole composition stages, then to shrink every remaining parameter
// toward its neutral (no-op) value by binary halving, keeping each
// simplification only while accept still holds on the re-scored result
// (the crash-minimization discipline of go-fuzz, lifted to
// transformation space). It returns the minimized chain, its scoring
// result, and how many evaluations were spent. The input chain is not
// modified; accept must hold for it.
func Minimize(tgt Target, seed *tensor.Tensor, chain Chain, spaces []corner.Space, accept func(core.Result) bool) (Chain, core.Result, int) {
	cur := chain.Clone()
	res, _, err := tgt.score(seed, cur, spaces)
	evals := 1
	if err != nil {
		return cur, res, evals
	}

	// Stage-drop passes: retry from the front after every successful
	// drop, since removing one stage can make another removable.
	for dropped := true; dropped && len(cur) > 1; {
		dropped = false
		for i := 0; i < len(cur); i++ {
			cand := append(cur[:i:i].Clone(), cur[i+1:].Clone()...)
			r, _, err := tgt.score(seed, cand, spaces)
			evals++
			if err == nil && accept(r) {
				cur, res = cand, r
				dropped = true
				break
			}
		}
	}

	// Parameter shrink: halve each parameter's distance to neutral while
	// the escape persists.
	for i := range cur {
		sp, ok := corner.SpaceByFamily(spaces, cur[i].Family)
		if !ok {
			continue
		}
		for j, r := range sp.Params {
			for round := 0; round < shrinkRounds; round++ {
				p := cur[i].Params[j]
				mid := p + (r.Neutral-p)/2
				if mid == p {
					break
				}
				cand := cur.Clone()
				cand[i].Params[j] = mid
				rr, _, err := tgt.score(seed, cand, spaces)
				evals++
				if err != nil || !accept(rr) {
					break
				}
				cur, res = cand, rr
			}
		}
	}
	return cur, res, evals
}
