// Package hunt is the coverage-guided corner-case miner (ROADMAP item
// 4, in the spirit of DeepXplore's coverage-guided whitebox testing and
// SINVAD's search-based input-space navigation): it searches the
// metamorphic transformation parameter space — and transformation
// *compositions* — for detector escapes, inputs the CNN mispredicts
// with high confidence while the Deep Validation detector still
// accepts the prediction as valid.
//
// The search is structured in the Go-native fuzzing idiom:
//
//   - a genome (Chain) encodes a candidate as an ordered list of
//     parameterized transformation stages drawn from corner.Spaces;
//   - a Mutator perturbs, resamples, adds, drops, and reorders stages;
//   - a Coverage map built from the validator's own fit-time
//     per-layer discrepancy quantiles (the PR 5 drift reference) keeps
//     candidates that reach unexplored discrepancy regions in the
//     queue, so the search is rewarded for novelty rather than pure
//     random mutation;
//   - escapes (and near-escapes within a configurable margin of ε) are
//     Minimized — stages dropped, parameters shrunk toward neutral —
//     and persisted as a checksummed regression Corpus under
//     testdata/escapes/.
//
// Everything is deterministic for a fixed Config.Seed: the scheduler's
// control flow is single-threaded, scoring fans across the validator's
// worker pool (bit-identical at any worker count), and corpus files are
// canonical gob payloads in artifact containers — so a fixed-seed hunt
// produces byte-identical corpora at any -workers setting.
package hunt

import (
	"fmt"
	"strconv"
	"strings"

	"deepvalidation/internal/corner"
	"deepvalidation/internal/imgtrans"
)

// Stage is one parameterized transformation of a candidate chain. The
// parameter vector is indexed like the family's corner.Space.Params.
type Stage struct {
	Family string
	Params []float64
}

// Chain is the genome of one candidate: an ordered transformation
// composition applied left to right to a seed image.
type Chain []Stage

// Clone deep-copies the chain so mutations never alias a queued parent.
func (c Chain) Clone() Chain {
	out := make(Chain, len(c))
	for i, st := range c {
		out[i] = Stage{Family: st.Family, Params: append([]float64(nil), st.Params...)}
	}
	return out
}

// Key renders the chain canonically — family names with full-precision
// parameters — for corpus deduplication. Two chains share a key iff
// they materialize into the same transform.
func (c Chain) Key() string {
	var b strings.Builder
	for i, st := range c {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(st.Family)
		b.WriteByte('(')
		for j, p := range st.Params {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatFloat(p, 'g', -1, 64))
		}
		b.WriteByte(')')
	}
	return b.String()
}

// FamilyKey is the composition signature the escape-rate tables group
// by: the "+"-joined family names, e.g. "rotation+blur".
func (c Chain) FamilyKey() string {
	if len(c) == 0 {
		return "identity"
	}
	parts := make([]string, len(c))
	for i, st := range c {
		parts[i] = st.Family
	}
	return strings.Join(parts, "+")
}

// Materialize clamps every stage's parameters into its family's space
// and builds the concrete transform. Unknown families are an error —
// they mean a corpus written against a newer transformation set.
func (c Chain) Materialize(spaces []corner.Space) (imgtrans.Transform, error) {
	chain := make(imgtrans.Chain, len(c))
	for i, st := range c {
		sp, ok := corner.SpaceByFamily(spaces, st.Family)
		if !ok {
			return nil, fmt.Errorf("hunt: unknown transformation family %q", st.Family)
		}
		if len(st.Params) != len(sp.Params) {
			return nil, fmt.Errorf("hunt: family %q wants %d parameters, chain carries %d",
				st.Family, len(sp.Params), len(st.Params))
		}
		chain[i] = sp.Make(sp.Clamp(append([]float64(nil), st.Params...)))
	}
	return chain, nil
}

// Describe renders the materialized chain's human-readable form; chains
// that fail to materialize render their key instead.
func (c Chain) Describe(spaces []corner.Space) string {
	tr, err := c.Materialize(spaces)
	if err != nil {
		return c.Key()
	}
	return tr.Describe()
}
