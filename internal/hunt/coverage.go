package hunt

import (
	"math"
	"sort"
)

// Coverage is the search's novelty signal: it discretizes each
// verdict's per-layer discrepancies into the quantile bins of the
// validator's fit-time drift reference (the PR 5 snapshot — five
// probabilities per layer, so six bins from "below the 5% quantile of
// the training distribution" to "beyond the 95%"), and tracks which
// (predicted label, per-layer bin vector) signatures have been seen.
//
// A candidate whose signature is new has pushed some layer's
// representation into a discrepancy region no earlier candidate
// reached — the analogue of new branch coverage in a fuzzer, using the
// detector's own calibrated view of feature space instead of neuron
// activation thresholds.
type Coverage struct {
	edges [][]float64 // [layerPos][prob] reference quantiles (ascending)
	seen  map[string]struct{}
	// binHit[p][b] counts observations of layer position p in bin b.
	binHit [][]int
}

// NewCoverage builds a coverage map from a drift reference
// (Validator.DriftQuantiles rows, parallel to LayerIdx). It returns
// nil when the reference is absent or malformed; the scheduler treats
// a nil map as an error — without the reference there is no coverage
// signal to guide the search.
func NewCoverage(quantiles [][]float64) *Coverage {
	if len(quantiles) == 0 {
		return nil
	}
	edges := make([][]float64, len(quantiles))
	binHit := make([][]int, len(quantiles))
	for p, row := range quantiles {
		if len(row) < 2 {
			return nil
		}
		edges[p] = append([]float64(nil), row...)
		binHit[p] = make([]int, len(row)+1)
	}
	return &Coverage{edges: edges, seen: make(map[string]struct{}), binHit: binHit}
}

// bin places one discrepancy into its quantile bin: 0 below the first
// reference quantile, len(edges) beyond the last.
func bin(edges []float64, d float64) int {
	return sort.SearchFloat64s(edges, d)
}

// Observe folds one verdict into the map and reports whether its
// signature is novel. Non-finite discrepancy vectors (quarantined
// verdicts) carry no distributional information and are never novel.
func (c *Coverage) Observe(label int, perLayer []float64) bool {
	if c == nil || len(perLayer) != len(c.edges) {
		return false
	}
	for _, d := range perLayer {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return false
		}
	}
	// Signature bytes: predicted label then one bin index per layer.
	// Bin counts are small (len(probs)+1 ≤ a few dozen), so one byte
	// each is exact.
	sig := make([]byte, 0, len(perLayer)+1)
	sig = append(sig, byte(label))
	for p, d := range perLayer {
		b := bin(c.edges[p], d)
		c.binHit[p][b]++
		sig = append(sig, byte(b))
	}
	key := string(sig)
	if _, ok := c.seen[key]; ok {
		return false
	}
	c.seen[key] = struct{}{}
	return true
}

// Signatures returns how many distinct (label, bin-vector) signatures
// have been observed.
func (c *Coverage) Signatures() int {
	if c == nil {
		return 0
	}
	return len(c.seen)
}

// Bins reports how many of the per-layer quantile bins have been hit
// at least once, and how many exist — the coarse "how much of the
// discrepancy space did the hunt visit" number for reports.
func (c *Coverage) Bins() (hit, total int) {
	if c == nil {
		return 0, 0
	}
	for _, row := range c.binHit {
		for _, n := range row {
			total++
			if n > 0 {
				hit++
			}
		}
	}
	return hit, total
}
