package hunt

import (
	"fmt"

	"deepvalidation/internal/corner"
	"deepvalidation/internal/tensor"
)

// SpacesFor returns the transformation spaces matching an escape's
// seed geometry — the same ones the hunt that mined it used.
func (e *Escape) SpacesFor() []corner.Space {
	return corner.Spaces(e.SeedShape[0] == 1, e.SeedShape[1], e.SeedShape[2])
}

// CornerImage re-applies the chain to the seed and cross-checks the
// result against the pinned pixel checksum. pixelsMatch is false when
// the transformation pipeline no longer reproduces the mined image —
// expected after an intentional imgtrans change, alarming otherwise.
func (e *Escape) CornerImage() (img *tensor.Tensor, pixelsMatch bool, err error) {
	img, err = e.Image(e.SpacesFor())
	if err != nil {
		return nil, false, err
	}
	return img, TensorSHA256(img) == e.TransformedSHA256, nil
}

// ReplayOutcome is one escape's current verdict next to its recorded
// one.
type ReplayOutcome struct {
	ID string
	// PixelsMatch reports whether the re-applied chain reproduced the
	// recorded image bit for bit.
	PixelsMatch bool
	// Current verdict fields.
	Pred       int
	Confidence float64
	Joint      float64
	Valid      bool
	// Caught is true when the detector now handles the case — the
	// prediction is flagged invalid, or the model now predicts the seed
	// label correctly. A previously mined escape flipping to Caught
	// means a detector improvement fixed it.
	Caught bool
}

// Replay re-runs every corpus escape through the target at the given
// threshold and reports the current outcomes in corpus order.
func Replay(tgt Target, corpus *Corpus, epsilon float64, workers int) ([]ReplayOutcome, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("hunt: replay epsilon must be positive")
	}
	out := make([]ReplayOutcome, corpus.Len())
	imgs := make([]*tensor.Tensor, corpus.Len())
	for i, e := range corpus.Escapes {
		img, match, err := e.CornerImage()
		if err != nil {
			return nil, err
		}
		id, err := e.ID()
		if err != nil {
			return nil, err
		}
		out[i] = ReplayOutcome{ID: id, PixelsMatch: match}
		imgs[i] = img
	}
	results := tgt.Val.ScoreBatchWorkers(tgt.Net, imgs, workers)
	for i, res := range results {
		e := corpus.Escapes[i]
		valid := !res.NonFinite && res.Joint < epsilon
		out[i].Pred = res.Label
		out[i].Confidence = res.Confidence
		out[i].Joint = res.Joint
		out[i].Valid = valid
		out[i].Caught = !valid || res.Label == e.SeedLabel
	}
	return out, nil
}
