package hunt

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"deepvalidation/internal/artifact"
	"deepvalidation/internal/corner"
	"deepvalidation/internal/tensor"
)

// Escape is one mined regression case: the clean seed image, the
// transformation chain that produced the detector escape, and the
// verdict recorded at mining time. The transformed image itself is NOT
// stored — replay re-applies the chain, so the corpus doubles as a
// regression test over the transformation pipeline: TransformedSHA256
// pins the transformed pixels, separating "imgtrans changed" from "the
// detector changed" when a replay diverges.
type Escape struct {
	// Version guards the gob schema (bump on incompatible change).
	Version int
	// ModelName names the detector the escape was mined against.
	ModelName string
	// SeedShape/SeedData are the clean seed tensor (C,H,W; pixels in
	// [0,1]); SeedLabel its ground-truth class.
	SeedShape []int
	SeedData  []float64
	SeedLabel int
	// Chain is the minimized transformation composition.
	Chain Chain
	// TransformedSHA256 (hex) pins the transformed image's pixel bits.
	TransformedSHA256 string
	// Recorded verdict at mining time: the model predicted Pred with
	// Confidence while the validator's joint discrepancy Joint sat
	// under (Near: within NearFactor of) the threshold Epsilon.
	Pred       int
	Confidence float64
	Joint      float64
	Epsilon    float64
	Near       bool
}

// escapeVersion is the current Escape gob schema version.
const escapeVersion = 1

// Seed reconstructs the seed tensor.
func (e *Escape) Seed() *tensor.Tensor {
	return tensor.From(append([]float64(nil), e.SeedData...), e.SeedShape...)
}

// Image re-applies the chain to the seed, returning the corner-case
// image the escape was recorded on.
func (e *Escape) Image(spaces []corner.Space) (*tensor.Tensor, error) {
	tr, err := e.Chain.Materialize(spaces)
	if err != nil {
		return nil, err
	}
	return tr.Apply(e.Seed()), nil
}

// TensorSHA256 hashes a tensor's shape and exact pixel bit patterns —
// the pin that tells transformation-pipeline drift apart from detector
// drift during corpus replay.
func TensorSHA256(t *tensor.Tensor) string {
	h := sha256.New()
	var buf [8]byte
	for _, d := range t.Shape {
		binary.LittleEndian.PutUint64(buf[:], uint64(d))
		h.Write(buf[:])
	}
	for _, v := range t.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// encode produces the storage gob payload. Within one process gob
// output is deterministic, which is what makes fixed-seed corpora
// byte-identical across worker counts; it is NOT hashed for identity —
// gob assigns type IDs in global first-use order, so the same escape
// can encode to different bytes in processes that gob-encoded other
// types first (ID hashes the canonical fingerprint instead).
func (e *Escape) encode() ([]byte, error) {
	e.Version = escapeVersion
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return nil, fmt.Errorf("hunt: encoding escape: %w", err)
	}
	return buf.Bytes(), nil
}

// fingerprint writes the canonical byte rendering of every identity-
// bearing field — exact IEEE-754 bits for floats, length-prefixed
// strings — so the derived ID is identical in every process, unlike
// the gob payload.
func (e *Escape) fingerprint() []byte {
	var b bytes.Buffer
	writeU64 := func(v uint64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		b.Write(buf[:])
	}
	writeStr := func(s string) {
		writeU64(uint64(len(s)))
		b.WriteString(s)
	}
	writeU64(escapeVersion)
	writeStr(e.ModelName)
	writeU64(uint64(len(e.SeedShape)))
	for _, d := range e.SeedShape {
		writeU64(uint64(d))
	}
	writeU64(uint64(len(e.SeedData)))
	for _, v := range e.SeedData {
		writeU64(math.Float64bits(v))
	}
	writeU64(uint64(int64(e.SeedLabel)))
	writeStr(e.Chain.Key())
	writeStr(e.TransformedSHA256)
	writeU64(uint64(int64(e.Pred)))
	writeU64(math.Float64bits(e.Confidence))
	writeU64(math.Float64bits(e.Joint))
	writeU64(math.Float64bits(e.Epsilon))
	if e.Near {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
	return b.Bytes()
}

// ID derives the content-addressed identifier of an escape (the first
// 12 hex digits of its fingerprint SHA-256).
func (e *Escape) ID() (string, error) {
	sum := sha256.Sum256(e.fingerprint())
	return "escape-" + hex.EncodeToString(sum[:])[:12], nil
}

// Validate checks the invariants a decoded escape must hold before its
// chain is re-applied.
func (e *Escape) Validate() error {
	if e.Version != escapeVersion {
		return fmt.Errorf("hunt: escape schema version %d, want %d", e.Version, escapeVersion)
	}
	if len(e.SeedShape) != 3 {
		return fmt.Errorf("hunt: escape seed has shape %v, want (C,H,W)", e.SeedShape)
	}
	n := 1
	for _, d := range e.SeedShape {
		if d <= 0 {
			return fmt.Errorf("hunt: escape seed has non-positive dimension in %v", e.SeedShape)
		}
		n *= d
	}
	if len(e.SeedData) != n {
		return fmt.Errorf("hunt: escape seed has %d pixels for shape %v", len(e.SeedData), e.SeedShape)
	}
	for i, v := range e.SeedData {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("hunt: escape seed pixel %d is %v", i, v)
		}
	}
	if len(e.Chain) == 0 {
		return fmt.Errorf("hunt: escape carries an empty chain")
	}
	if !finite(e.Joint) || !finite(e.Epsilon) || !finite(e.Confidence) {
		return fmt.Errorf("hunt: escape carries non-finite recorded verdict numbers")
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// ManifestEntry is one escape's row in the corpus manifest — the
// human-auditable summary of what was mined, and the key the replay
// regression test compares current verdicts against.
type ManifestEntry struct {
	ID         string  `json:"id"`
	File       string  `json:"file"`
	Families   string  `json:"families"`
	Chain      string  `json:"chain"`
	SeedLabel  int     `json:"seed_label"`
	Pred       int     `json:"pred"`
	Confidence float64 `json:"confidence"`
	Joint      float64 `json:"joint"`
	Near       bool    `json:"near"`
}

// Manifest indexes a persisted corpus.
type Manifest struct {
	Version int             `json:"version"`
	Model   string          `json:"model"`
	Epsilon float64         `json:"epsilon"`
	Escapes []ManifestEntry `json:"escapes"`
}

// ManifestName is the corpus index filename.
const ManifestName = "manifest.json"

// Corpus is an in-memory escape collection, deduplicated by content.
type Corpus struct {
	Escapes []*Escape

	ids  []string
	keys map[string]struct{}
}

// Add appends an escape unless an identical one (same seed, chain, and
// recorded verdict → same content ID) is already present. It reports
// whether the escape was new.
func (c *Corpus) Add(e *Escape) (bool, error) {
	id, err := e.ID()
	if err != nil {
		return false, err
	}
	if c.keys == nil {
		c.keys = make(map[string]struct{})
	}
	if _, ok := c.keys[id]; ok {
		return false, nil
	}
	c.keys[id] = struct{}{}
	c.Escapes = append(c.Escapes, e)
	c.ids = append(c.ids, id)
	return true, nil
}

// Len returns the number of distinct escapes.
func (c *Corpus) Len() int { return len(c.Escapes) }

// Save persists every escape as a checksummed artifact container
// (<id>.dvart, Kind "escape") plus the manifest, all written atomically
// and in a canonical order (sorted by ID) so fixed-seed corpora are
// byte-identical directory trees. spaces is used to render the
// manifest's human-readable chain descriptions. epsilon/model label the
// manifest; they should match the detector the hunt ran against.
func (c *Corpus) Save(dir string, spaces []corner.Space, model string, epsilon float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("hunt: creating corpus dir: %w", err)
	}
	type item struct {
		id string
		e  *Escape
	}
	items := make([]item, len(c.Escapes))
	for i, e := range c.Escapes {
		items[i] = item{c.ids[i], e}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].id < items[j].id })

	m := Manifest{Version: 1, Model: model, Epsilon: epsilon}
	for _, it := range items {
		payload, err := it.e.encode()
		if err != nil {
			return err
		}
		file := it.id + ".dvart"
		h := artifact.Header{
			Kind:       artifact.KindEscape,
			ModelName:  it.e.ModelName,
			InputShape: append([]int(nil), it.e.SeedShape...),
		}
		if err := artifact.WriteFile(filepath.Join(dir, file), h, payload); err != nil {
			return err
		}
		m.Escapes = append(m.Escapes, ManifestEntry{
			ID:         it.id,
			File:       file,
			Families:   it.e.Chain.FamilyKey(),
			Chain:      it.e.Chain.Describe(spaces),
			SeedLabel:  it.e.SeedLabel,
			Pred:       it.e.Pred,
			Confidence: it.e.Confidence,
			Joint:      it.e.Joint,
			Near:       it.e.Near,
		})
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("hunt: encoding manifest: %w", err)
	}
	return writeFileAtomic(filepath.Join(dir, ManifestName), append(data, '\n'))
}

// writeFileAtomic writes small metadata files with the same
// temp+rename discipline the artifact layer uses, minus the fsyncs —
// corpora are regenerable, so torn-write durability matters less than
// never leaving a half-written manifest.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadEscape reads and validates one escape artifact.
func LoadEscape(path string) (*Escape, error) {
	info, payload, err := artifact.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if !info.Legacy && info.Header.Kind != artifact.KindEscape {
		return nil, fmt.Errorf("hunt: %s is a %q artifact, want %q", path, info.Header.Kind, artifact.KindEscape)
	}
	var e Escape
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
		return nil, fmt.Errorf("hunt: decoding escape %s: %w", path, err)
	}
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("hunt: %s: %w", path, err)
	}
	return &e, nil
}

// LoadCorpus reads a persisted corpus directory: the manifest plus
// every escape artifact it lists. Escapes come back in manifest order
// (sorted by ID at save time).
func LoadCorpus(dir string) (*Corpus, *Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, nil, fmt.Errorf("hunt: reading corpus manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, nil, fmt.Errorf("hunt: parsing corpus manifest: %w", err)
	}
	if m.Version != 1 {
		return nil, nil, fmt.Errorf("hunt: corpus manifest version %d, want 1", m.Version)
	}
	c := &Corpus{}
	for _, ent := range m.Escapes {
		if ent.File != filepath.Base(ent.File) || !strings.HasSuffix(ent.File, ".dvart") {
			return nil, nil, fmt.Errorf("hunt: manifest entry %q has suspicious file name %q", ent.ID, ent.File)
		}
		e, err := LoadEscape(filepath.Join(dir, ent.File))
		if err != nil {
			return nil, nil, err
		}
		id, err := e.ID()
		if err != nil {
			return nil, nil, err
		}
		if id != ent.ID {
			return nil, nil, fmt.Errorf("hunt: %s content ID %s disagrees with manifest entry %s", ent.File, id, ent.ID)
		}
		if _, err := c.Add(e); err != nil {
			return nil, nil, err
		}
	}
	return c, &m, nil
}
