package hunt

import (
	"math/rand"

	"deepvalidation/internal/corner"
)

// perturbScale sizes a parameter-perturbation step relative to the
// parameter's range — small enough to walk a discrepancy contour,
// large enough to leave a local plateau within a few mutations.
const perturbScale = 0.15

// Mutator generates and mutates candidate chains over a fixed set of
// transformation spaces. It is stateless: all randomness comes from the
// *rand.Rand passed per call, which keeps the scheduler's determinism
// in one place.
type Mutator struct {
	Spaces []corner.Space
	// MaxStages bounds chain length (composition depth).
	MaxStages int
}

// Random draws a fresh single-stage chain from a uniformly chosen
// family.
func (m *Mutator) Random(rng *rand.Rand) Chain {
	return Chain{m.randomStage(rng)}
}

// RandomInFamily draws a single-stage chain from the given space — the
// scheduler's bootstrap uses it to cover every family before mutation
// takes over.
func (m *Mutator) RandomInFamily(sp corner.Space, rng *rand.Rand) Chain {
	return Chain{Stage{Family: sp.Family, Params: sp.Sample(rng)}}
}

func (m *Mutator) randomStage(rng *rand.Rand) Stage {
	sp := m.Spaces[rng.Intn(len(m.Spaces))]
	return Stage{Family: sp.Family, Params: sp.Sample(rng)}
}

// Mutate returns a mutated copy of c, leaving c untouched. Operators
// mirror a fuzzer's byte mutations lifted to transformation space:
// perturb one parameter, resample a stage, add/drop/replace a stage,
// swap two stages. The result always stays within MaxStages and never
// comes back empty.
func (m *Mutator) Mutate(c Chain, rng *rand.Rand) Chain {
	out := c.Clone()
	if len(out) == 0 {
		return Chain{m.randomStage(rng)}
	}
	switch op := rng.Intn(6); op {
	case 0, 1: // perturb one parameter (weighted: the bread-and-butter op)
		i := rng.Intn(len(out))
		sp, ok := corner.SpaceByFamily(m.Spaces, out[i].Family)
		if !ok || len(sp.Params) == 0 {
			out[i] = m.randomStage(rng)
			break
		}
		j := rng.Intn(len(sp.Params))
		r := sp.Params[j]
		out[i].Params[j] += rng.NormFloat64() * perturbScale * (r.Max - r.Min)
		out[i].Params = sp.Clamp(out[i].Params)
	case 2: // resample one stage's whole parameter vector
		i := rng.Intn(len(out))
		if sp, ok := corner.SpaceByFamily(m.Spaces, out[i].Family); ok {
			out[i].Params = sp.Sample(rng)
		} else {
			out[i] = m.randomStage(rng)
		}
	case 3: // add a stage at a random position
		if len(out) >= m.MaxStages {
			i := rng.Intn(len(out))
			out[i] = m.randomStage(rng)
			break
		}
		i := rng.Intn(len(out) + 1)
		out = append(out[:i], append(Chain{m.randomStage(rng)}, out[i:]...)...)
	case 4: // drop a stage
		if len(out) <= 1 {
			out[0] = m.randomStage(rng)
			break
		}
		i := rng.Intn(len(out))
		out = append(out[:i], out[i+1:]...)
	default: // swap two stages (composition order matters: T2∘T1 ≠ T1∘T2)
		if len(out) <= 1 {
			i := rng.Intn(len(out))
			out[i] = m.randomStage(rng)
			break
		}
		i, j := rng.Intn(len(out)), rng.Intn(len(out))
		out[i], out[j] = out[j], out[i]
	}
	return out
}
