package hunt

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"deepvalidation/internal/core"
	"deepvalidation/internal/corner"
	"deepvalidation/internal/obs"
	"deepvalidation/internal/telemetry"
	"deepvalidation/internal/tensor"
)

// Config tunes a hunt. The zero value is completed with the defaults
// below; Seed, Epsilon, and the seed set are the only things a caller
// must provide.
type Config struct {
	// Budget is the number of candidate evaluations the search loop may
	// spend (default 2000). Minimization evaluations are accounted
	// separately (Report.MinimizeEvals) so a fixed budget always walks
	// the same search trajectory regardless of how many finds it has to
	// minimize.
	Budget int
	// BatchSize is how many candidates are scored per ScoreBatch call
	// (default 64) — the unit of parallelism.
	BatchSize int
	// Seed drives all search randomness. Fixed seed + fixed budget ⇒
	// byte-identical corpus at any worker count.
	Seed int64
	// Workers bounds the scoring pool (0 = GOMAXPROCS, 1 = sequential).
	Workers int
	// Epsilon is the detection threshold the escapes must slip under
	// (required, > 0).
	Epsilon float64
	// MinConfidence is the misprediction confidence floor for a find
	// (default 0.5): the paper's corner cases are *confidently* wrong
	// predictions, not borderline ones.
	MinConfidence float64
	// NearFactor admits near-escapes: mispredictions whose joint
	// discrepancy is within NearFactor·ε (default 1.1). 1.0 disables
	// near-escapes.
	NearFactor float64
	// MaxStages bounds composition depth (default 3).
	MaxStages int
	// MaxSaved caps the distinct escapes persisted per hunt (default
	// 64); finds beyond the cap still count toward the rate tables.
	MaxSaved int
	// Registry, when non-nil, receives dv_hunt_* counters and gauges.
	Registry *telemetry.Registry
	// Log, when non-nil, receives one line per saved escape and periodic
	// progress.
	Log io.Writer
	// Events, when non-nil, receives one TypeHuntEscape wide event per
	// escape admitted to the corpus.
	Events *obs.Logger
}

func (cfg *Config) setDefaults() {
	if cfg.Budget <= 0 {
		cfg.Budget = 2000
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.MinConfidence <= 0 {
		cfg.MinConfidence = 0.5
	}
	if cfg.NearFactor < 1 {
		cfg.NearFactor = 1.1
	}
	if cfg.MaxStages <= 0 {
		cfg.MaxStages = 3
	}
	if cfg.MaxSaved <= 0 {
		cfg.MaxSaved = 64
	}
}

// queueCap bounds the interesting-candidate queue; once full, new
// novel candidates overwrite the oldest slots round-robin so the
// search keeps drifting toward fresh coverage instead of stalling.
const queueCap = 1024

// eliteCap bounds the exploitation pool: the lowest-joint mispredicting
// candidates seen so far. Novelty alone drags the search toward
// out-of-distribution inputs — exactly the ones the detector flags; the
// elites pull it back toward the escape frontier, mispredictions the
// validator still scores as in-distribution.
const eliteCap = 16

// candidate is one queued (seed, chain) pair.
type candidate struct {
	seedIdx int
	chain   Chain
}

// Hunt runs the coverage-guided search over the given correctly
// classified seeds (tensors with labels, e.g. from corner.SelectSeeds)
// and returns the deduplicated escape corpus plus the run report. The
// validator must carry the fit-time drift reference — its per-layer
// discrepancy quantiles are the coverage signal; refit without
// SkipDriftSnapshot if it does not.
func Hunt(tgt Target, seeds []*tensor.Tensor, labels []int, cfg Config) (*Corpus, *Report, error) {
	if tgt.Net == nil || tgt.Val == nil {
		return nil, nil, fmt.Errorf("hunt: target needs both a network and a validator")
	}
	if len(seeds) == 0 {
		return nil, nil, fmt.Errorf("hunt: no seed images")
	}
	if len(seeds) != len(labels) {
		return nil, nil, fmt.Errorf("hunt: %d seeds but %d labels", len(seeds), len(labels))
	}
	if cfg.Epsilon <= 0 {
		return nil, nil, fmt.Errorf("hunt: epsilon must be positive (calibrate the detector or pass -eps)")
	}
	if !tgt.Val.HasDriftReference() {
		return nil, nil, fmt.Errorf("hunt: validator carries no drift reference — the coverage signal; refit it (dvvalidate fit records one by default)")
	}
	for i, s := range seeds {
		if s.Rank() != 3 {
			return nil, nil, fmt.Errorf("hunt: seed %d has shape %v, want (C,H,W)", i, s.Shape)
		}
	}
	cfg.setDefaults()

	shape := seeds[0].Shape
	spaces := corner.Spaces(shape[0] == 1, shape[1], shape[2])
	cov := NewCoverage(tgt.Val.DriftQuantiles)
	if cov == nil {
		return nil, nil, fmt.Errorf("hunt: malformed drift reference (%d quantile rows)", len(tgt.Val.DriftQuantiles))
	}
	mut := &Mutator{Spaces: spaces, MaxStages: cfg.MaxStages}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tel := newHuntTelemetry(cfg.Registry)

	corpus := &Corpus{}
	report := &Report{
		Seed:          cfg.Seed,
		Budget:        cfg.Budget,
		Epsilon:       cfg.Epsilon,
		MinConfidence: cfg.MinConfidence,
		NearFactor:    cfg.NearFactor,
	}
	famStats := map[string]*FamilyStats{}
	stat := func(families string) *FamilyStats {
		fs, ok := famStats[families]
		if !ok {
			fs = &FamilyStats{Families: families}
			famStats[families] = fs
		}
		return fs
	}

	// isEscape/isNear classify one scoring result against a seed label.
	isFind := func(label int, res core.Result, bound float64) bool {
		return !res.NonFinite && res.Label != label &&
			res.Confidence >= cfg.MinConfidence && res.Joint < bound
	}

	var queue []candidate
	queueNext := 0 // round-robin parent cursor and overwrite cursor
	pushQueue := func(c candidate) {
		if len(queue) < queueCap {
			queue = append(queue, c)
			return
		}
		queue[queueNext%len(queue)] = c
	}

	// elites: sorted ascending by joint, ties by chain key so the pool's
	// contents never depend on arrival order races (there are none — the
	// loop is single-threaded — but the tiebreak keeps the invariant
	// explicit).
	type elite struct {
		cand  candidate
		joint float64
	}
	var elites []elite
	eliteNext := 0
	pushElite := func(c candidate, joint float64) {
		at := sort.Search(len(elites), func(i int) bool {
			if elites[i].joint != joint {
				return elites[i].joint > joint
			}
			return elites[i].cand.chain.Key() > c.chain.Key()
		})
		if at == len(elites) && len(elites) >= eliteCap {
			return
		}
		elites = append(elites, elite{})
		copy(elites[at+1:], elites[at:])
		elites[at] = elite{c, joint}
		if len(elites) > eliteCap {
			elites = elites[:eliteCap]
		}
	}

	// nextBatch assembles up to n candidates: the family-coverage
	// bootstrap first (one random draw per family per seed, the analogue
	// of a fuzzer's seed corpus), then mutations of queued parents.
	bootstrap := make([]candidate, 0, len(spaces)*len(seeds))
	for _, sp := range spaces {
		for si := range seeds {
			bootstrap = append(bootstrap, candidate{si, mut.RandomInFamily(sp, rng)})
		}
	}
	bootNext := 0
	drawCount := 0
	nextBatch := func(n int) []candidate {
		batch := make([]candidate, 0, n)
		for len(batch) < n && bootNext < len(bootstrap) {
			batch = append(batch, bootstrap[bootNext])
			bootNext++
		}
		for len(batch) < n {
			drawCount++
			// Alternate exploitation (mutate a low-joint misprediction)
			// with exploration (mutate a coverage-novel parent).
			if len(elites) > 0 && (drawCount%2 == 0 || len(queue) == 0) {
				parent := elites[eliteNext%len(elites)].cand
				eliteNext++
				batch = append(batch, candidate{parent.seedIdx, mut.Mutate(parent.chain, rng)})
				continue
			}
			if len(queue) == 0 {
				// Coverage found nothing interesting yet: keep drawing
				// fresh random candidates.
				batch = append(batch, candidate{rng.Intn(len(seeds)), mut.Random(rng)})
				continue
			}
			parent := queue[queueNext%len(queue)]
			queueNext++
			batch = append(batch, candidate{parent.seedIdx, mut.Mutate(parent.chain, rng)})
		}
		return batch
	}

	for report.Evals < cfg.Budget {
		n := cfg.BatchSize
		if left := cfg.Budget - report.Evals; n > left {
			n = left
		}
		batch := nextBatch(n)
		imgs := make([]*tensor.Tensor, len(batch))
		for i, c := range batch {
			tr, err := c.chain.Materialize(spaces)
			if err != nil {
				// Mutator output always materializes; treat failure as the
				// programming error it is.
				return nil, nil, err
			}
			imgs[i] = tr.Apply(seeds[c.seedIdx])
		}
		results := tgt.Val.ScoreBatchWorkers(tgt.Net, imgs, cfg.Workers)

		// Process in input order — the only order-sensitive section, so
		// the worker count cannot influence the search trajectory.
		for i, res := range results {
			c := batch[i]
			report.Evals++
			tel.evals.Inc()
			fs := stat(c.chain.FamilyKey())
			fs.Evals++
			tel.familyEvals(fs.Families).Inc()

			if cov.Observe(res.Label, res.Layer) {
				pushQueue(candidate{c.seedIdx, c.chain})
			}

			seedLabel := labels[c.seedIdx]
			if !res.NonFinite && res.Label != seedLabel {
				pushElite(candidate{c.seedIdx, c.chain}, res.Joint)
			}
			nearBound := cfg.NearFactor * cfg.Epsilon
			if !isFind(seedLabel, res, nearBound) {
				continue
			}
			full := res.Joint < cfg.Epsilon
			if full {
				report.Escapes++
				fs.Escapes++
				tel.escapes.Inc()
				tel.familyEscapes(fs.Families).Inc()
			} else {
				report.NearEscapes++
				fs.Near++
				tel.nearEscapes.Inc()
			}
			if corpus.Len() >= cfg.MaxSaved {
				continue
			}
			// Minimize under the bound that admitted the find, then
			// re-classify: shrinking often turns a near-escape into a full
			// one (or vice versa), and the recorded verdict must match the
			// minimized chain.
			minChain, minRes, spent := Minimize(tgt, seeds[c.seedIdx], c.chain, spaces,
				func(r core.Result) bool { return isFind(seedLabel, r, nearBound) })
			report.MinimizeEvals += spent
			tel.minimizeEvals.Add(int64(spent))
			tr, err := minChain.Materialize(spaces)
			if err != nil {
				return nil, nil, err
			}
			seed := seeds[c.seedIdx]
			esc := &Escape{
				ModelName:         tgt.Net.ModelName,
				SeedShape:         append([]int(nil), seed.Shape...),
				SeedData:          append([]float64(nil), seed.Data...),
				SeedLabel:         seedLabel,
				Chain:             minChain,
				TransformedSHA256: TensorSHA256(tr.Apply(seed)),
				Pred:              minRes.Label,
				Confidence:        minRes.Confidence,
				Joint:             minRes.Joint,
				Epsilon:           cfg.Epsilon,
				Near:              !(minRes.Joint < cfg.Epsilon),
			}
			added, err := corpus.Add(esc)
			if err != nil {
				return nil, nil, err
			}
			if added {
				report.Saved++
				tel.saved.Inc()
				kind := "escape"
				if esc.Near {
					kind = "near-escape"
				}
				if cfg.Log != nil {
					fmt.Fprintf(cfg.Log, "hunt: %s seed=%d label=%d pred=%d conf=%.3f joint=%.6g eps=%.6g chain=%s\n",
						kind, c.seedIdx, esc.SeedLabel, esc.Pred, esc.Confidence, esc.Joint, cfg.Epsilon, minChain.Describe(spaces))
				}
				cfg.Events.Emit(obs.Event{
					Type:  obs.TypeHuntEscape,
					Level: obs.LevelWarn,
					Msg:   fmt.Sprintf("detector %s saved", kind),
					Class: esc.Pred,
					Joint: esc.Joint,
					Extra: map[string]any{
						"kind":       kind,
						"seed_label": esc.SeedLabel,
						"confidence": esc.Confidence,
						"epsilon":    cfg.Epsilon,
						"chain":      minChain.Describe(spaces),
					},
				})
			}
		}
		sig := cov.Signatures()
		hit, total := cov.Bins()
		tel.signatures.Set(float64(sig))
		tel.bins.Set(float64(hit))
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "hunt: %d/%d evals, %d escapes, %d near, %d saved, %d signatures, %d/%d bins, queue %d\n",
				report.Evals, cfg.Budget, report.Escapes, report.NearEscapes, report.Saved, sig, hit, total, len(queue))
		}
	}

	report.Signatures = cov.Signatures()
	report.BinsHit, report.BinsTotal = cov.Bins()
	for _, fs := range famStats {
		report.Rows = append(report.Rows, *fs)
	}
	report.sortRows()
	return corpus, report, nil
}
