package hunt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// FamilyStats aggregates one composition signature's outcomes.
type FamilyStats struct {
	// Families is the composition signature, e.g. "rotation+blur".
	Families string `json:"families"`
	// Evals counts candidates evaluated with this signature; Escapes and
	// Near count finds (before deduplication).
	Evals   int `json:"evals"`
	Escapes int `json:"escapes"`
	Near    int `json:"near_escapes"`
}

// Rate is the escape frequency: finds (full + near) per evaluation.
func (f FamilyStats) Rate() float64 {
	if f.Evals == 0 {
		return 0
	}
	return float64(f.Escapes+f.Near) / float64(f.Evals)
}

// Report summarizes one hunt: budgets spent, finds, coverage reached,
// and the per-composition escape-rate table dvreport renders.
type Report struct {
	Seed          int64   `json:"seed"`
	Budget        int     `json:"budget"`
	Evals         int     `json:"evals"`
	MinimizeEvals int     `json:"minimize_evals"`
	Escapes       int     `json:"escapes"`
	NearEscapes   int     `json:"near_escapes"`
	Saved         int     `json:"saved"`
	Signatures    int     `json:"coverage_signatures"`
	BinsHit       int     `json:"coverage_bins_hit"`
	BinsTotal     int     `json:"coverage_bins_total"`
	Epsilon       float64 `json:"epsilon"`
	MinConfidence float64 `json:"min_confidence"`
	NearFactor    float64 `json:"near_factor"`
	// Rows is sorted by descending escape rate, ties by signature.
	Rows []FamilyStats `json:"rows"`
}

// RatesName is the per-hunt report filename written next to the corpus.
const RatesName = "rates.json"

// sortRows fixes the canonical row order.
func (r *Report) sortRows() {
	sort.Slice(r.Rows, func(i, j int) bool {
		ri, rj := r.Rows[i].Rate(), r.Rows[j].Rate()
		if ri != rj {
			return ri > rj
		}
		return r.Rows[i].Families < r.Rows[j].Families
	})
}

// Save writes the report as canonical JSON (atomic, trailing newline).
func (r *Report) Save(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("hunt: encoding report: %w", err)
	}
	return writeFileAtomic(path, append(data, '\n'))
}

// LoadReport reads a report written by Save.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("hunt: reading report: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("hunt: parsing report %s: %w", path, err)
	}
	return &r, nil
}

// WriteTable renders the escape-rate table, plain or markdown — the
// same rows dvreport merges into its evaluation report.
func (r *Report) WriteTable(w io.Writer, markdown bool) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	if markdown {
		p("| Composition | Evals | Escapes | Near | Escape rate |\n")
		p("|---|---:|---:|---:|---:|\n")
		for _, row := range r.Rows {
			p("| %s | %d | %d | %d | %.4f |\n", row.Families, row.Evals, row.Escapes, row.Near, row.Rate())
		}
	} else {
		p("%-36s  %8s  %8s  %6s  %11s\n", "Composition", "Evals", "Escapes", "Near", "Escape rate")
		for _, row := range r.Rows {
			p("%-36s  %8d  %8d  %6d  %11.4f\n", row.Families, row.Evals, row.Escapes, row.Near, row.Rate())
		}
	}
	p("%d evals (+%d minimizing), %d escapes, %d near-escapes, %d saved; %d coverage signatures, %d/%d bins; eps=%.6g, min-conf=%.2f, near=%.2f\n",
		r.Evals, r.MinimizeEvals, r.Escapes, r.NearEscapes, r.Saved,
		r.Signatures, r.BinsHit, r.BinsTotal, r.Epsilon, r.MinConfidence, r.NearFactor)
	return err
}
