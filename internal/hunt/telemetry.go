package hunt

import "deepvalidation/internal/telemetry"

// Metric names for the hunt instruments (naming per
// internal/core/telemetry.go: dv_ prefix, _total for counters).
const (
	// MetricEvals counts candidate evaluations spent by the search loop;
	// MetricMinimizeEvals the extra evaluations spent minimizing finds.
	MetricEvals         = "dv_hunt_evals_total"
	MetricMinimizeEvals = "dv_hunt_minimize_evals_total"
	// MetricEscapes / MetricNearEscapes count finds before
	// deduplication; MetricSaved counts distinct escapes admitted to the
	// corpus.
	MetricEscapes     = "dv_hunt_escapes_total"
	MetricNearEscapes = "dv_hunt_near_escapes_total"
	MetricSaved       = "dv_hunt_saved_total"
	// MetricCoverageSignatures gauges the distinct (label, quantile-bin
	// vector) coverage signatures reached so far; MetricCoverageBins the
	// per-layer quantile bins hit at least once.
	MetricCoverageSignatures = "dv_hunt_coverage_signatures"
	MetricCoverageBins       = "dv_hunt_coverage_bins"
	// MetricFamilyEvals / MetricFamilyEscapes are labeled by the
	// composition signature (families="rotation+blur") and feed the
	// per-family escape-rate tables.
	MetricFamilyEvals   = "dv_hunt_family_evals_total"
	MetricFamilyEscapes = "dv_hunt_family_escapes_total"
)

// huntTelemetry resolves the unlabeled instrument handles once; every
// handle is nil (and every observation a no-op) when the registry is
// nil, matching the repo-wide nil-safe telemetry discipline.
type huntTelemetry struct {
	reg           *telemetry.Registry
	evals         *telemetry.Counter
	minimizeEvals *telemetry.Counter
	escapes       *telemetry.Counter
	nearEscapes   *telemetry.Counter
	saved         *telemetry.Counter
	signatures    *telemetry.Gauge
	bins          *telemetry.Gauge
}

func newHuntTelemetry(reg *telemetry.Registry) huntTelemetry {
	return huntTelemetry{
		reg:           reg,
		evals:         reg.Counter(MetricEvals),
		minimizeEvals: reg.Counter(MetricMinimizeEvals),
		escapes:       reg.Counter(MetricEscapes),
		nearEscapes:   reg.Counter(MetricNearEscapes),
		saved:         reg.Counter(MetricSaved),
		signatures:    reg.Gauge(MetricCoverageSignatures),
		bins:          reg.Gauge(MetricCoverageBins),
	}
}

// familyEvals resolves the labeled per-composition counter; nil-safe.
func (t huntTelemetry) familyEvals(families string) *telemetry.Counter {
	return t.reg.Counter(telemetry.Label(MetricFamilyEvals, "families", families))
}

func (t huntTelemetry) familyEscapes(families string) *telemetry.Counter {
	return t.reg.Counter(telemetry.Label(MetricFamilyEscapes, "families", families))
}
