package nn

import (
	"fmt"
	"math/rand"

	"deepvalidation/internal/tensor"
)

// ArchConfig sizes the reference architectures. The defaults mirror the
// paper's models scaled to CPU-trainable widths; absolute widths do not
// change which code paths run.
type ArchConfig struct {
	// Width is the base convolution filter count (paper: 32/64 per
	// Table II; default here 8/16).
	Width int
	// FCWidth is the fully connected hidden width (paper: 256/200;
	// default here 64).
	FCWidth int
	// Dropout is the dropout rate applied after the pooled conv stacks
	// and the first FC layer; 0 disables.
	Dropout float64
	// Growth is the DenseNet growth rate (paper: 12; default here 8).
	Growth int
	// BlockConvs is the number of convolutions per dense block
	// (paper: 12 for DenseNet-40; default here 4).
	BlockConvs int
	// StemStride strides the DenseNet stem convolution (default 1;
	// 2 quarters the spatial cost of every block, the CPU-scale
	// compromise for 32×32 inputs).
	StemStride int
}

// DefaultArchConfig returns the CPU-scale defaults used across the
// experiments.
func DefaultArchConfig() ArchConfig {
	return ArchConfig{Width: 8, FCWidth: 64, Dropout: 0, Growth: 8, BlockConvs: 4}
}

// NewSevenLayerCNN builds the seven-layer CNN of paper Table II:
//
//	Conv+ReLU / Conv+ReLU+MaxPool / Conv+ReLU / Conv+ReLU+MaxPool /
//	FC+ReLU / FC+ReLU / FC+Softmax
//
// Each table row is one composite layer, so the network has exactly
// seven validation taps; Deep Validation probes the first six (the
// paper's "Single Validator" rows 1–6 for MNIST and SVHN).
func NewSevenLayerCNN(name string, inC, size, classes int, cfg ArchConfig, rng *rand.Rand) (*Network, error) {
	w := cfg.Width
	if w <= 0 {
		return nil, fmt.Errorf("nn: non-positive conv width %d", w)
	}
	fc := cfg.FCWidth
	if fc <= 0 {
		return nil, fmt.Errorf("nn: non-positive FC width %d", fc)
	}
	pooled := size / 2 / 2
	flat := 2 * w * pooled * pooled

	mk := func(n string, ls ...Layer) Layer { return NewSeq(n, ls...) }
	l2 := []Layer{
		NewConv2D("conv2", w, w, 3, 1, 1, rng),
		NewReLU("relu2"),
		NewMaxPool2D("pool2", 2, 2),
	}
	l4 := []Layer{
		NewConv2D("conv4", 2*w, 2*w, 3, 1, 1, rng),
		NewReLU("relu4"),
		NewMaxPool2D("pool4", 2, 2),
	}
	l5 := []Layer{
		NewFlatten("flatten"),
		NewDense("fc5", flat, fc, rng),
		NewReLU("relu5"),
	}
	if cfg.Dropout > 0 {
		l2 = append(l2, NewDropout("drop2", cfg.Dropout))
		l4 = append(l4, NewDropout("drop4", cfg.Dropout))
		l5 = append(l5, NewDropout("drop5", cfg.Dropout))
	}
	return NewNetwork(name, []int{inC, size, size}, classes,
		mk("layer1", NewConv2D("conv1", inC, w, 3, 1, 1, rng), NewReLU("relu1")),
		mk("layer2", l2...),
		mk("layer3", NewConv2D("conv3", w, 2*w, 3, 1, 1, rng), NewReLU("relu3")),
		mk("layer4", l4...),
		mk("layer5", l5...),
		mk("layer6", NewDense("fc6", fc, fc, rng), NewReLU("relu6")),
		mk("layer7", NewDense("fc7", fc, classes, rng), NewSoftmax("softmax")),
	)
}

// NewDenseNetLite builds a reduced DenseNet (Huang et al.) for the
// CIFAR-10-like dataset: a stem convolution, three dense blocks with
// transitions, and a BN+ReLU+global-average-pool head. Composite units
// are the validation taps, mirroring how the paper validates only the
// rear layers of its 40-layer DenseNet (Section IV-C).
func NewDenseNetLite(name string, inC, size, classes int, cfg ArchConfig, rng *rand.Rand) (*Network, error) {
	g := cfg.Growth
	if g <= 0 {
		return nil, fmt.Errorf("nn: non-positive growth rate %d", g)
	}
	nc := cfg.BlockConvs
	if nc <= 0 {
		return nil, fmt.Errorf("nn: non-positive block size %d", nc)
	}
	stride := cfg.StemStride
	if stride <= 0 {
		stride = 1
	}
	stemC := 2 * g
	b1 := NewDenseBlock("block1", stemC, g, nc, rng)
	t1C := b1.OutC() / 2
	b2 := NewDenseBlock("block2", t1C, g, nc, rng)
	t2C := b2.OutC() / 2
	b3 := NewDenseBlock("block3", t2C, g, nc, rng)
	headC := b3.OutC()

	return NewNetwork(name, []int{inC, size, size}, classes,
		NewSeq("stem", NewConv2D("stem.conv", inC, stemC, 3, stride, 1, rng)),
		b1,
		NewTransition("trans1", b1.OutC(), t1C, rng),
		b2,
		NewTransition("trans2", b2.OutC(), t2C, rng),
		b3,
		NewSeq("head",
			NewBatchNorm("head.bn", headC),
			NewReLU("head.relu"),
			NewGlobalAvgPool("head.gap"),
		),
		NewSeq("classifier",
			NewDense("head.fc", headC, classes, rng),
			NewSoftmax("softmax"),
		),
	)
}

// Ensure the concrete layers keep satisfying Layer; a build failure
// here beats a runtime surprise.
var (
	_ Layer = (*Conv2D)(nil)
	_ Layer = (*Dense)(nil)
	_ Layer = (*ReLU)(nil)
	_ Layer = (*Softmax)(nil)
	_ Layer = (*MaxPool2D)(nil)
	_ Layer = (*AvgPool2D)(nil)
	_ Layer = (*GlobalAvgPool)(nil)
	_ Layer = (*Flatten)(nil)
	_ Layer = (*Dropout)(nil)
	_ Layer = (*BatchNorm)(nil)
	_ Layer = (*Seq)(nil)
	_ Layer = (*DenseBlock)(nil)
	_ Layer = blockReluKey{}
)

// inputShapeElems is a small helper used by arch validation.
func inputShapeElems(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// CheckInput validates that x matches the network's declared input
// shape, returning a descriptive error for API misuse.
func (n *Network) CheckInput(x *tensor.Tensor) error {
	if x.Len() != inputShapeElems(n.InShape) {
		return fmt.Errorf("nn: network %q expects input shape %v (%d elements), got %v",
			n.ModelName, n.InShape, inputShapeElems(n.InShape), x.Shape)
	}
	return nil
}

// NewLeNet builds the classic LeNet-5 style network (LeCun et al., the
// paper's reference [30]): two conv+tanh+avgpool stages followed by two
// fully connected tanh layers and a softmax head. It is provided as an
// alternative substrate for experiments on architecture sensitivity;
// each stage is one validation tap.
func NewLeNet(name string, inC, size, classes int, rng *rand.Rand) (*Network, error) {
	if size < 12 {
		return nil, fmt.Errorf("nn: LeNet needs inputs of at least 12px, got %d", size)
	}
	s1 := size / 2
	s2 := s1 / 2
	flat := 16 * s2 * s2
	return NewNetwork(name, []int{inC, size, size}, classes,
		NewSeq("c1",
			NewConv2D("c1.conv", inC, 6, 5, 1, 2, rng),
			NewTanh("c1.tanh"),
			NewAvgPool2D("c1.pool", 2, 2),
		),
		NewSeq("c2",
			NewConv2D("c2.conv", 6, 16, 5, 1, 2, rng),
			NewTanh("c2.tanh"),
			NewAvgPool2D("c2.pool", 2, 2),
		),
		NewSeq("f3",
			NewFlatten("f3.flatten"),
			NewDense("f3.fc", flat, 120, rng),
			NewTanh("f3.tanh"),
		),
		NewSeq("f4",
			NewDense("f4.fc", 120, 84, rng),
			NewTanh("f4.tanh"),
		),
		NewSeq("out",
			NewDense("out.fc", 84, classes, rng),
			NewSoftmax("softmax"),
		),
	)
}
