package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sync"
)

// gobOnce registers the concrete layer types with encoding/gob exactly
// once. Registration is lazy (rather than in an init function) so
// importing nn stays side-effect free.
var gobOnce sync.Once

func registerGob() {
	gobOnce.Do(func() {
		gob.Register(&Conv2D{})
		gob.Register(&Dense{})
		gob.Register(&ReLU{})
		gob.Register(&Softmax{})
		gob.Register(&MaxPool2D{})
		gob.Register(&AvgPool2D{})
		gob.Register(&GlobalAvgPool{})
		gob.Register(&Flatten{})
		gob.Register(&Dropout{})
		gob.Register(&BatchNorm{})
		gob.Register(&Seq{})
		gob.Register(&DenseBlock{})
	})
}

// Encode writes the network to w in gob format.
func (n *Network) Encode(w io.Writer) error {
	registerGob()
	if err := gob.NewEncoder(w).Encode(n); err != nil {
		return fmt.Errorf("nn: encoding network %q: %w", n.ModelName, err)
	}
	return nil
}

// Decode reads a network from r.
func Decode(r io.Reader) (*Network, error) {
	registerGob()
	var n Network
	if err := gob.NewDecoder(r).Decode(&n); err != nil {
		return nil, fmt.Errorf("nn: decoding network: %w", err)
	}
	return &n, nil
}

// Save writes the network to a file, creating or truncating it.
func (n *Network) Save(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: saving network: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("nn: closing %s: %w", path, cerr)
		}
	}()
	return n.Encode(f)
}

// Load reads a network from a file written by Save.
func Load(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: loading network: %w", err)
	}
	defer f.Close()
	return Decode(f)
}
