package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"sync"

	"deepvalidation/internal/artifact"
)

// gobOnce registers the concrete layer types with encoding/gob exactly
// once. Registration is lazy (rather than in an init function) so
// importing nn stays side-effect free.
var gobOnce sync.Once

func registerGob() {
	gobOnce.Do(func() {
		gob.Register(&Conv2D{})
		gob.Register(&Dense{})
		gob.Register(&ReLU{})
		gob.Register(&Softmax{})
		gob.Register(&MaxPool2D{})
		gob.Register(&AvgPool2D{})
		gob.Register(&GlobalAvgPool{})
		gob.Register(&Flatten{})
		gob.Register(&Dropout{})
		gob.Register(&BatchNorm{})
		gob.Register(&Seq{})
		gob.Register(&DenseBlock{})
	})
}

// Encode writes the network to w in gob format (the artifact payload
// format; Save wraps it in the checksummed container).
func (n *Network) Encode(w io.Writer) error {
	registerGob()
	if err := gob.NewEncoder(w).Encode(n); err != nil {
		return fmt.Errorf("nn: encoding network %q: %w", n.ModelName, err)
	}
	return nil
}

// Decode reads a network from r and validates its structural
// invariants, so a corrupt-but-decodable stream cannot produce a
// network that panics at first Forward.
func Decode(r io.Reader) (*Network, error) {
	registerGob()
	var n Network
	if err := gob.NewDecoder(r).Decode(&n); err != nil {
		return nil, fmt.Errorf("nn: decoding network: %w", err)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return &n, nil
}

// Validate checks the invariants a freshly decoded network must hold
// before it can be trusted to serve: a positive (C,H,W) input shape, a
// non-empty layer stack whose shapes chain to a Classes-long output,
// and finite parameters (a NaN or Inf weight would poison every
// activation downstream — the corruption mode checksums cannot catch
// on legacy bare-gob artifacts).
func (n *Network) Validate() (err error) {
	if len(n.Layers) == 0 {
		return fmt.Errorf("nn: network %q has no layers", n.ModelName)
	}
	if len(n.InShape) != 3 {
		return fmt.Errorf("nn: network %q input shape %v is not (C,H,W)", n.ModelName, n.InShape)
	}
	for _, d := range n.InShape {
		if d <= 0 {
			return fmt.Errorf("nn: network %q has non-positive input shape %v", n.ModelName, n.InShape)
		}
	}
	if n.Classes <= 0 {
		return fmt.Errorf("nn: network %q declares %d classes", n.ModelName, n.Classes)
	}
	// Layer shape inference panics on inconsistent geometry; convert
	// that to an error so load stays panic-free on corrupt artifacts.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("nn: network %q has inconsistent layer shapes: %v", n.ModelName, r)
		}
	}()
	shape := n.InShape
	for _, l := range n.Layers {
		if l == nil {
			return fmt.Errorf("nn: network %q contains a nil layer", n.ModelName)
		}
		shape = l.OutShape(shape)
	}
	if len(shape) != 1 || shape[0] != n.Classes {
		return fmt.Errorf("nn: network %q produces shape %v, want [%d]", n.ModelName, shape, n.Classes)
	}
	for _, p := range n.Params() {
		for _, v := range p.Value.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("nn: network %q carries a non-finite parameter (%v)", n.ModelName, v)
			}
		}
	}
	return nil
}

// Save atomically persists the network as a checksummed artifact
// container (see internal/artifact): the gob payload is wrapped in a
// header carrying the model's identity and a SHA-256, written to a
// temp file, fsynced, and renamed over path — a crash mid-save leaves
// any previous artifact intact.
func (n *Network) Save(path string) error {
	var buf bytes.Buffer
	if err := n.Encode(&buf); err != nil {
		return err
	}
	h := artifact.Header{
		Kind:       artifact.KindModel,
		ModelName:  n.ModelName,
		Classes:    n.Classes,
		InputShape: append([]int(nil), n.InShape...),
	}
	if err := artifact.WriteFile(path, h, buf.Bytes()); err != nil {
		return fmt.Errorf("nn: saving network: %w", err)
	}
	return nil
}

// Load reads a network saved by Save. Checksummed containers are
// verified (payload SHA-256, header↔payload identity cross-checks);
// legacy bare-gob files written before the container format load
// through a transparent fallback. Either way the decoded network is
// structurally validated before it is returned.
func Load(path string) (*Network, error) {
	info, payload, err := artifact.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("nn: loading network: %w", err)
	}
	n, err := Decode(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("nn: loading network from %s: %w", path, err)
	}
	if !info.Legacy {
		h := info.Header
		if h.Kind != artifact.KindModel {
			return nil, fmt.Errorf("nn: %s is a %q artifact, want %q", path, h.Kind, artifact.KindModel)
		}
		if h.ModelName != n.ModelName || h.Classes != n.Classes || !shapeEqual(h.InputShape, n.InShape) {
			return nil, fmt.Errorf("nn: %s header (%s, %d classes, shape %v) disagrees with its payload (%s, %d classes, shape %v)",
				path, h.ModelName, h.Classes, h.InputShape, n.ModelName, n.Classes, n.InShape)
		}
	}
	return n, nil
}

func shapeEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
