package nn

import (
	"fmt"
	"math/rand"

	"deepvalidation/internal/tensor"
)

// Dense is a fully connected layer over flat inputs: y = Wx + b.
type Dense struct {
	LayerName string
	In, Out   int
	Weight    *Param // (Out, In)
	Bias      *Param // (Out)
}

// NewDense constructs a fully connected layer with Glorot-initialized
// weights.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	w := tensor.New(out, in).FillGlorot(rng, in, out)
	b := tensor.New(out)
	return &Dense{
		LayerName: name,
		In:        in, Out: out,
		Weight: &Param{Name: name + ".weight", Value: w},
		Bias:   &Param{Name: name + ".bias", Value: b},
	}
}

// Name implements Layer.
func (l *Dense) Name() string { return l.LayerName }

// Params implements Layer.
func (l *Dense) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// OutShape implements Layer.
func (l *Dense) OutShape(in []int) []int {
	n := 1
	for _, d := range in {
		n *= d
	}
	if n != l.In {
		panic(fmt.Sprintf("nn: %s expects %d inputs, got shape %v", l.LayerName, l.In, in))
	}
	return []int{l.Out}
}

// Forward implements Layer.
func (l *Dense) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	if x.Len() != l.In {
		panic(fmt.Sprintf("nn: %s expects %d inputs, got %d", l.LayerName, l.In, x.Len()))
	}
	flat := x.Reshape(l.In)
	out := tensor.MatVec(l.Weight.Value, flat)
	out.AddInPlace(l.Bias.Value)
	ctx.put(l, flat)
	return out
}

// Backward implements Layer.
func (l *Dense) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	xv, ok := ctx.get(l)
	if !ok {
		panic("nn: " + l.LayerName + ": Backward before Forward")
	}
	x := xv.(*tensor.Tensor)

	// dW[o][i] = grad[o] * x[i]; db = grad; dX = Wᵀ grad.
	dW := tensor.New(l.Out, l.In)
	for o := 0; o < l.Out; o++ {
		g := grad.Data[o]
		if g == 0 {
			continue
		}
		row := dW.Data[o*l.In : (o+1)*l.In]
		for i, xi := range x.Data {
			row[i] = g * xi
		}
	}
	ctx.AddGrad(l.Weight, dW)
	ctx.AddGrad(l.Bias, grad.Reshape(l.Out))

	dX := tensor.New(l.In)
	for o := 0; o < l.Out; o++ {
		g := grad.Data[o]
		if g == 0 {
			continue
		}
		row := l.Weight.Value.Data[o*l.In : (o+1)*l.In]
		for i, w := range row {
			dX.Data[i] += g * w
		}
	}
	return dX
}
