package nn

import (
	"math"
	"math/rand"
	"testing"

	"deepvalidation/internal/tensor"
)

func TestReLUForward(t *testing.T) {
	x := tensor.From([]float64{-1, 0, 2, -3}, 4)
	y := NewReLU("r").Forward(x, NewContext(false, nil))
	want := []float64{0, 0, 2, 0}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("ReLU[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
	if x.Data[0] != -1 {
		t.Fatal("ReLU mutated its input")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		x := tensor.New(10).FillNormal(rng, 0, 5)
		y := SoftmaxVector(x)
		sum := 0.0
		for _, v := range y.Data {
			if v < 0 || v > 1 {
				t.Fatalf("softmax output %v outside [0,1]", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("softmax sums to %v", sum)
		}
		if y.ArgMax() != x.ArgMax() {
			t.Fatal("softmax must preserve argmax")
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	x := tensor.From([]float64{1000, 1001, 999}, 3)
	y := SoftmaxVector(x)
	if y.HasNaN() {
		t.Fatal("softmax overflowed on large logits")
	}
	if y.ArgMax() != 1 {
		t.Fatalf("softmax argmax = %d, want 1", y.ArgMax())
	}
}

func TestMaxPoolForward(t *testing.T) {
	x := tensor.From([]float64{
		1, 2, 5, 3,
		4, 0, 1, 1,
		0, 0, 9, 8,
		0, 7, 6, 5,
	}, 1, 4, 4)
	y := NewMaxPool2D("p", 2, 2).Forward(x, NewContext(false, nil))
	want := []float64{4, 5, 7, 9}
	if y.Shape[1] != 2 || y.Shape[2] != 2 {
		t.Fatalf("pool output shape %v, want (1,2,2)", y.Shape)
	}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("pool[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
}

func TestMaxPoolBackwardRoutesToArgmax(t *testing.T) {
	x := tensor.From([]float64{
		1, 2,
		4, 0,
	}, 1, 2, 2)
	p := NewMaxPool2D("p", 2, 2)
	ctx := NewContext(false, nil)
	p.Forward(x, ctx)
	g := p.Backward(tensor.From([]float64{10}, 1, 1, 1), ctx)
	want := []float64{0, 0, 10, 0}
	for i, w := range want {
		if g.Data[i] != w {
			t.Fatalf("pool grad[%d] = %v, want %v", i, g.Data[i], w)
		}
	}
}

func TestAvgPoolForward(t *testing.T) {
	x := tensor.From([]float64{
		1, 3,
		5, 7,
	}, 1, 2, 2)
	y := NewAvgPool2D("p", 2, 2).Forward(x, NewContext(false, nil))
	if y.Data[0] != 4 {
		t.Fatalf("avg pool = %v, want 4", y.Data[0])
	}
}

func TestGlobalAvgPoolForward(t *testing.T) {
	x := tensor.From([]float64{
		1, 2, 3, 4, // channel 0: mean 2.5
		10, 10, 10, 10, // channel 1: mean 10
	}, 2, 2, 2)
	y := NewGlobalAvgPool("g").Forward(x, NewContext(false, nil))
	if y.Data[0] != 2.5 || y.Data[1] != 10 {
		t.Fatalf("GAP = %v, want [2.5 10]", y.Data)
	}
}

func TestDropoutInferenceIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(100).FillNormal(rng, 0, 1)
	d := NewDropout("d", 0.5)
	y := d.Forward(x, NewContext(false, nil))
	if !y.AllClose(x, 0) {
		t.Fatal("dropout must be identity at inference")
	}
}

func TestDropoutTrainingStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDropout("d", 0.3)
	x := tensor.New(20000).Fill(1)
	y := d.Forward(x, NewContext(true, rng))
	zeros := 0
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		default:
			if math.Abs(v-1/0.7) > 1e-12 {
				t.Fatalf("survivor scaled to %v, want %v", v, 1/0.7)
			}
		}
	}
	rate := float64(zeros) / float64(x.Len())
	if math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("observed drop rate %v, want ~0.3", rate)
	}
	// Inverted dropout preserves expectation.
	if mean := y.Mean(); math.Abs(mean-1) > 0.03 {
		t.Fatalf("post-dropout mean %v, want ~1", mean)
	}
}

func TestDropoutBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rate 1.0")
		}
	}()
	NewDropout("d", 1.0)
}

func TestDropoutGradientMatchesMask(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDropout("d", 0.5)
	ctx := NewContext(true, rng)
	x := tensor.New(50).Fill(2)
	y := d.Forward(x, ctx)
	g := d.Backward(tensor.New(50).Fill(1), ctx)
	for i := range y.Data {
		if (y.Data[i] == 0) != (g.Data[i] == 0) {
			t.Fatalf("gradient mask disagrees with forward mask at %d", i)
		}
	}
}

func TestBatchNormForwardUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm("bn", 1)
	bn.RunMean.Data[0] = 2
	bn.RunVar.Data[0] = 4
	x := tensor.From([]float64{2, 4, 0, 2}, 1, 2, 2)
	y := bn.Forward(x, NewContext(false, nil))
	// (x-2)/sqrt(4+eps): approximately [0, 1, -1, 0].
	want := []float64{0, 1, -1, 0}
	for i, w := range want {
		if math.Abs(y.Data[i]-w) > 1e-3 {
			t.Fatalf("BN[%d] = %v, want ~%v", i, y.Data[i], w)
		}
	}
}

func TestBatchNormCalibration(t *testing.T) {
	bn := NewBatchNorm("bn", 1)
	bn.Momentum = 0 // single calibration sample fully replaces stats
	x := tensor.From([]float64{1, 3, 5, 7}, 1, 2, 2)
	ctx := NewCalibrationContext()
	bn.Forward(x, ctx)
	if got := bn.RunMean.Data[0]; got != 4 {
		t.Fatalf("calibrated mean = %v, want 4", got)
	}
	if got := bn.RunVar.Data[0]; got != 5 {
		t.Fatalf("calibrated variance = %v, want 5", got)
	}
}

func TestBatchNormInferenceDoesNotTouchStats(t *testing.T) {
	bn := NewBatchNorm("bn", 1)
	x := tensor.From([]float64{5, 5, 5, 5}, 1, 2, 2)
	bn.Forward(x, NewContext(false, nil))
	if bn.RunMean.Data[0] != 0 || bn.RunVar.Data[0] != 1 {
		t.Fatal("inference forward modified running statistics")
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten("f")
	ctx := NewContext(false, nil)
	x := tensor.New(2, 3, 4).FillNormal(rand.New(rand.NewSource(5)), 0, 1)
	y := f.Forward(x, ctx)
	if y.Rank() != 1 || y.Len() != 24 {
		t.Fatalf("flatten shape %v", y.Shape)
	}
	g := f.Backward(y, ctx)
	if g.Rank() != 3 || g.Shape[0] != 2 {
		t.Fatalf("flatten backward shape %v", g.Shape)
	}
}

func TestConcatChannels(t *testing.T) {
	a := tensor.From([]float64{1, 2, 3, 4}, 1, 2, 2)
	b := tensor.From([]float64{5, 6, 7, 8, 9, 10, 11, 12}, 2, 2, 2)
	c := concatChannels(a, b)
	if c.Shape[0] != 3 {
		t.Fatalf("concat channels = %d, want 3", c.Shape[0])
	}
	if c.At(0, 0, 0) != 1 || c.At(1, 0, 0) != 5 || c.At(2, 1, 1) != 12 {
		t.Fatal("concat layout wrong")
	}
}

func TestConcatChannelsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for spatial mismatch")
		}
	}()
	concatChannels(tensor.New(1, 2, 2), tensor.New(1, 3, 3))
}

func TestDenseBlockOutputShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := NewDenseBlock("b", 4, 3, 2, rng)
	if b.OutC() != 10 {
		t.Fatalf("OutC = %d, want 10", b.OutC())
	}
	x := tensor.New(4, 8, 8).FillNormal(rng, 0, 1)
	y := b.Forward(x, NewContext(false, nil))
	if y.Shape[0] != 10 || y.Shape[1] != 8 || y.Shape[2] != 8 {
		t.Fatalf("block output shape %v, want (10,8,8)", y.Shape)
	}
	want := b.OutShape([]int{4, 8, 8})
	if want[0] != 10 {
		t.Fatalf("OutShape = %v", want)
	}
}

func TestDenseBlockPreservesInputPrefix(t *testing.T) {
	// DenseNet's defining property: the block output's first channels
	// are the unmodified input.
	rng := rand.New(rand.NewSource(7))
	b := NewDenseBlock("b", 2, 2, 2, rng)
	x := tensor.New(2, 4, 4).FillNormal(rng, 0, 1)
	y := b.Forward(x, NewContext(false, nil))
	prefix := tensor.From(y.Data[:x.Len()], 2, 4, 4)
	if !prefix.AllClose(x, 0) {
		t.Fatal("dense block must carry its input through unchanged")
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	layers := []struct {
		name string
		l    Layer
		g    *tensor.Tensor
	}{
		{"conv", NewConv2D("c", 1, 1, 3, 1, 1, rng), tensor.New(1, 4, 4)},
		{"dense", NewDense("d", 4, 2, rng), tensor.New(2)},
		{"relu", NewReLU("r"), tensor.New(4)},
		{"softmax", NewSoftmax("s"), tensor.New(4)},
		{"maxpool", NewMaxPool2D("p", 2, 2), tensor.New(1, 1, 1)},
		{"flatten", NewFlatten("f"), tensor.New(4)},
		{"batchnorm", NewBatchNorm("b", 1), tensor.New(1, 2, 2)},
	}
	for _, tc := range layers {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.l.Backward(tc.g, NewContext(false, nil))
		})
	}
}

func TestSigmoidRange(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	x := tensor.New(50).FillNormal(rng, 0, 5)
	y := NewSigmoid("s").Forward(x, NewContext(false, nil))
	for _, v := range y.Data {
		if v <= 0 || v >= 1 {
			t.Fatalf("sigmoid output %v outside (0,1)", v)
		}
	}
	mid := NewSigmoid("s").Forward(tensor.From([]float64{0}, 1), NewContext(false, nil))
	if math.Abs(mid.Data[0]-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0) = %v", mid.Data[0])
	}
}

func TestTanhOddFunction(t *testing.T) {
	x := tensor.From([]float64{-2, -1, 0, 1, 2}, 5)
	y := NewTanh("t").Forward(x, NewContext(false, nil))
	if y.Data[2] != 0 {
		t.Fatal("tanh(0) != 0")
	}
	if math.Abs(y.Data[0]+y.Data[4]) > 1e-12 || math.Abs(y.Data[1]+y.Data[3]) > 1e-12 {
		t.Fatal("tanh not odd")
	}
}

func TestLeakyReLUNegativeSlope(t *testing.T) {
	x := tensor.From([]float64{-10, 10}, 2)
	y := NewLeakyReLU("l", 0.1).Forward(x, NewContext(false, nil))
	if y.Data[0] != -1 || y.Data[1] != 10 {
		t.Fatalf("leaky relu = %v", y.Data)
	}
}
