package nn

import (
	"fmt"

	"deepvalidation/internal/tensor"
)

// MaxPool2D downsamples each channel by taking the maximum over
// non-overlapping (or strided) windows.
type MaxPool2D struct {
	LayerName string
	K, Stride int
}

// NewMaxPool2D constructs a max-pooling layer with a k×k window.
func NewMaxPool2D(name string, k, stride int) *MaxPool2D {
	return &MaxPool2D{LayerName: name, K: k, Stride: stride}
}

// Name implements Layer.
func (l *MaxPool2D) Name() string { return l.LayerName }

// Params implements Layer.
func (l *MaxPool2D) Params() []*Param { return nil }

// OutShape implements Layer.
func (l *MaxPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: %s expects (C,H,W) input, got %v", l.LayerName, in))
	}
	return []int{
		in[0],
		tensor.ConvOutSize(in[1], l.K, l.Stride, 0),
		tensor.ConvOutSize(in[2], l.K, l.Stride, 0),
	}
}

type maxPoolCache struct {
	argmax  []int // flat input index chosen per output element
	inShape []int
}

// Forward implements Layer.
func (l *MaxPool2D) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	outShape := l.OutShape(x.Shape)
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh, ow := outShape[1], outShape[2]
	out := tensor.New(outShape...)
	argmax := make([]int, out.Len())
	oi := 0
	for ch := 0; ch < c; ch++ {
		plane := x.Data[ch*h*w : (ch+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := -1
				bestV := 0.0
				for ky := 0; ky < l.K; ky++ {
					iy := oy*l.Stride + ky
					if iy >= h {
						break
					}
					for kx := 0; kx < l.K; kx++ {
						ix := ox*l.Stride + kx
						if ix >= w {
							break
						}
						idx := iy*w + ix
						if best < 0 || plane[idx] > bestV {
							best, bestV = idx, plane[idx]
						}
					}
				}
				out.Data[oi] = bestV
				argmax[oi] = ch*h*w + best
				oi++
			}
		}
	}
	ctx.put(l, &maxPoolCache{argmax: argmax, inShape: x.Shape})
	return out
}

// Backward implements Layer.
func (l *MaxPool2D) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	cv, ok := ctx.get(l)
	if !ok {
		panic("nn: " + l.LayerName + ": Backward before Forward")
	}
	cache := cv.(*maxPoolCache)
	dX := tensor.New(cache.inShape...)
	for oi, ii := range cache.argmax {
		dX.Data[ii] += grad.Data[oi]
	}
	return dX
}

// AvgPool2D downsamples each channel by averaging over windows. It is
// used by the DenseNet transition layers.
type AvgPool2D struct {
	LayerName string
	K, Stride int
}

// NewAvgPool2D constructs an average-pooling layer with a k×k window.
func NewAvgPool2D(name string, k, stride int) *AvgPool2D {
	return &AvgPool2D{LayerName: name, K: k, Stride: stride}
}

// Name implements Layer.
func (l *AvgPool2D) Name() string { return l.LayerName }

// Params implements Layer.
func (l *AvgPool2D) Params() []*Param { return nil }

// OutShape implements Layer.
func (l *AvgPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: %s expects (C,H,W) input, got %v", l.LayerName, in))
	}
	return []int{
		in[0],
		tensor.ConvOutSize(in[1], l.K, l.Stride, 0),
		tensor.ConvOutSize(in[2], l.K, l.Stride, 0),
	}
}

// Forward implements Layer.
func (l *AvgPool2D) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	outShape := l.OutShape(x.Shape)
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh, ow := outShape[1], outShape[2]
	out := tensor.New(outShape...)
	inv := 1.0 / float64(l.K*l.K)
	oi := 0
	for ch := 0; ch < c; ch++ {
		plane := x.Data[ch*h*w : (ch+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				s := 0.0
				for ky := 0; ky < l.K; ky++ {
					iy := oy*l.Stride + ky
					if iy >= h {
						continue
					}
					for kx := 0; kx < l.K; kx++ {
						ix := ox*l.Stride + kx
						if ix >= w {
							continue
						}
						s += plane[iy*w+ix]
					}
				}
				out.Data[oi] = s * inv
				oi++
			}
		}
	}
	ctx.put(l, x.Shape)
	return out
}

// Backward implements Layer.
func (l *AvgPool2D) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	sv, ok := ctx.get(l)
	if !ok {
		panic("nn: " + l.LayerName + ": Backward before Forward")
	}
	inShape := sv.([]int)
	c, h, w := inShape[0], inShape[1], inShape[2]
	oh := tensor.ConvOutSize(h, l.K, l.Stride, 0)
	ow := tensor.ConvOutSize(w, l.K, l.Stride, 0)
	dX := tensor.New(inShape...)
	inv := 1.0 / float64(l.K*l.K)
	oi := 0
	for ch := 0; ch < c; ch++ {
		plane := dX.Data[ch*h*w : (ch+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := grad.Data[oi] * inv
				oi++
				for ky := 0; ky < l.K; ky++ {
					iy := oy*l.Stride + ky
					if iy >= h {
						continue
					}
					for kx := 0; kx < l.K; kx++ {
						ix := ox*l.Stride + kx
						if ix >= w {
							continue
						}
						plane[iy*w+ix] += g
					}
				}
			}
		}
	}
	return dX
}

// GlobalAvgPool averages each channel down to a single value, producing
// a flat (C) vector. DenseNet uses it ahead of the classifier head.
type GlobalAvgPool struct {
	LayerName string
}

// NewGlobalAvgPool constructs a global average pooling layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{LayerName: name} }

// Name implements Layer.
func (l *GlobalAvgPool) Name() string { return l.LayerName }

// Params implements Layer.
func (l *GlobalAvgPool) Params() []*Param { return nil }

// OutShape implements Layer.
func (l *GlobalAvgPool) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: %s expects (C,H,W) input, got %v", l.LayerName, in))
	}
	return []int{in[0]}
}

// Forward implements Layer.
func (l *GlobalAvgPool) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	out := tensor.New(c)
	inv := 1.0 / float64(h*w)
	for ch := 0; ch < c; ch++ {
		s := 0.0
		for _, v := range x.Data[ch*h*w : (ch+1)*h*w] {
			s += v
		}
		out.Data[ch] = s * inv
	}
	ctx.put(l, x.Shape)
	return out
}

// Backward implements Layer.
func (l *GlobalAvgPool) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	sv, ok := ctx.get(l)
	if !ok {
		panic("nn: " + l.LayerName + ": Backward before Forward")
	}
	inShape := sv.([]int)
	c, h, w := inShape[0], inShape[1], inShape[2]
	dX := tensor.New(inShape...)
	inv := 1.0 / float64(h*w)
	for ch := 0; ch < c; ch++ {
		g := grad.Data[ch] * inv
		plane := dX.Data[ch*h*w : (ch+1)*h*w]
		for i := range plane {
			plane[i] = g
		}
	}
	return dX
}
