// Inference-mode forward passes over reusable scratch arenas.
//
// The training-oriented Layer.Forward allocates its output (and its
// backward caches) on every call, which makes the scoring hot path
// allocation-bound: one tapped forward pass through the seven-layer CNN
// costs ~1 MB of garbage per sample. The InferenceLayer paths below
// write into per-layer buffers owned by a Scratch arena instead, so a
// warmed-up pass allocates nothing.
//
// Equivalence contract: every ForwardInfer performs exactly the same
// floating-point operations in the same order as the corresponding
// Forward — only the memory the results land in changes. Reused buffers
// are written element-for-element (never assumed zeroed), so stale
// contents cannot leak. TestForwardTappedScratchBitEquivalent pins this
// bit-for-bit against ForwardTapped for every layer type.
//
// Ownership rules (the scratch-arena discipline DESIGN.md §13 spells
// out):
//
//   - A Scratch must only ever be used by one goroutine at a time; pool
//     one per worker (core.Validator does this via sync.Pool).
//   - Tensors returned by ForwardInfer / ForwardTappedScratch alias
//     arena memory and are valid only until the next forward pass on
//     the same Scratch. Callers must copy anything they keep.
//   - Layers identify their buffers by (layer pointer, slot) keys, so
//     one arena can serve any number of networks without aliasing.
package nn

import (
	"math"

	"deepvalidation/internal/tensor"
)

// InferenceLayer is implemented by layers that can run their forward
// pass through a Scratch arena without allocating. The result must be
// bitwise identical to Forward with an inference Context.
type InferenceLayer interface {
	Layer
	ForwardInfer(x *tensor.Tensor, sc *Scratch) *tensor.Tensor
}

// skey addresses one reusable buffer: a layer may own several slots.
type skey struct {
	l    Layer
	slot int
}

// Scratch is a per-goroutine arena of reusable forward-pass buffers,
// keyed by layer identity. The zero value is not usable; construct with
// NewScratch. See the package comment for the ownership rules.
type Scratch struct {
	tens  map[skey]*tensor.Tensor
	views map[skey]*tensor.Tensor
	taps  []*tensor.Tensor
	ctx   *Context // fallback Context for layers without an inference path
}

// NewScratch returns an empty arena.
func NewScratch() *Scratch {
	return &Scratch{
		tens:  make(map[skey]*tensor.Tensor),
		views: make(map[skey]*tensor.Tensor),
	}
}

// forward routes one layer through its inference path, falling back to
// the allocating Forward for layer types outside this package.
func (sc *Scratch) forward(l Layer, x *tensor.Tensor) *tensor.Tensor {
	if il, ok := l.(InferenceLayer); ok {
		return il.ForwardInfer(x, sc)
	}
	if sc.ctx == nil {
		sc.ctx = NewContext(false, nil)
	}
	return l.Forward(x, sc.ctx)
}

// tensor1 returns the key's cached rank-1 buffer of length n,
// (re)allocating only when the length changed.
func (sc *Scratch) tensor1(k skey, n int) *tensor.Tensor {
	if t, ok := sc.tens[k]; ok && len(t.Shape) == 1 && t.Shape[0] == n {
		return t
	}
	t := tensor.New(n)
	sc.tens[k] = t
	return t
}

// tensor2 returns the key's cached rank-2 buffer of shape (r, c).
func (sc *Scratch) tensor2(k skey, r, c int) *tensor.Tensor {
	if t, ok := sc.tens[k]; ok && len(t.Shape) == 2 && t.Shape[0] == r && t.Shape[1] == c {
		return t
	}
	t := tensor.New(r, c)
	sc.tens[k] = t
	return t
}

// tensor3 returns the key's cached rank-3 buffer of shape (c, h, w).
func (sc *Scratch) tensor3(k skey, c, h, w int) *tensor.Tensor {
	if t, ok := sc.tens[k]; ok && len(t.Shape) == 3 && t.Shape[0] == c && t.Shape[1] == h && t.Shape[2] == w {
		return t
	}
	t := tensor.New(c, h, w)
	sc.tens[k] = t
	return t
}

// like returns the key's cached buffer with x's shape.
func (sc *Scratch) like(k skey, x *tensor.Tensor) *tensor.Tensor {
	if t, ok := sc.tens[k]; ok && t.SameShape(x) {
		return t
	}
	t := tensor.New(x.Shape...)
	sc.tens[k] = t
	return t
}

// viewOf3 returns a cached rank-3 tensor header sharing data,
// rebuilding the header only when the backing slice or shape changed.
// Views let a buffer serve both a matrix multiply (rank 2) and the
// layer contract (rank 3) without per-call Reshape allocations. The
// dimensions are passed as scalars, not a slice: a variadic shape would
// allocate on every call and break the steady-state zero-alloc budget
// (TestForwardTappedScratchSteadyStateAllocs pins it).
func (sc *Scratch) viewOf3(k skey, data []float64, c, h, w int) *tensor.Tensor {
	if v, ok := sc.views[k]; ok && len(v.Data) == len(data) &&
		(len(data) == 0 || &v.Data[0] == &data[0]) &&
		len(v.Shape) == 3 && v.Shape[0] == c && v.Shape[1] == h && v.Shape[2] == w {
		return v
	}
	v := tensor.From(data, c, h, w)
	sc.views[k] = v
	return v
}

// viewOf1 is viewOf3's rank-1 form: a cached flat header over data.
func (sc *Scratch) viewOf1(k skey, data []float64) *tensor.Tensor {
	if v, ok := sc.views[k]; ok && len(v.Data) == len(data) &&
		(len(data) == 0 || &v.Data[0] == &data[0]) && len(v.Shape) == 1 {
		return v
	}
	v := tensor.From(data, len(data))
	sc.views[k] = v
	return v
}

// ForwardTappedScratch is ForwardTapped running through sc's reusable
// buffers: a warmed-up arena allocates nothing, and the results are
// bitwise identical. The returned probabilities and taps alias arena
// memory and are valid only until the next forward pass on sc; callers
// must copy anything they retain.
func (n *Network) ForwardTappedScratch(x *tensor.Tensor, sc *Scratch) (probs *tensor.Tensor, taps []*tensor.Tensor) {
	taps = sc.taps[:0]
	for _, l := range n.Layers {
		x = sc.forward(l, x)
		taps = append(taps, x)
	}
	sc.taps = taps
	return x, taps
}

// ForwardInfer implements InferenceLayer.
func (l *Seq) ForwardInfer(x *tensor.Tensor, sc *Scratch) *tensor.Tensor {
	for _, c := range l.Children {
		x = sc.forward(c, x)
	}
	return x
}

// ForwardInfer implements InferenceLayer: im2col into a reused column
// buffer, a matrix multiply into a reused output buffer, and a cached
// rank-3 view — the same arithmetic as Forward without the three large
// allocations per call.
func (l *Conv2D) ForwardInfer(x *tensor.Tensor, sc *Scratch) *tensor.Tensor {
	if x.Rank() != 3 || x.Shape[0] != l.InC {
		panic("nn: " + l.LayerName + ": ForwardInfer input shape mismatch")
	}
	oh := tensor.ConvOutSize(x.Shape[1], l.KH, l.Stride, l.Pad)
	ow := tensor.ConvOutSize(x.Shape[2], l.KW, l.Stride, l.Pad)
	if l.Stride == 1 {
		return l.forwardInferDirect(x, sc, oh, ow)
	}
	area := oh * ow
	cols := sc.tensor2(skey{l, 0}, l.InC*l.KH*l.KW, area)
	tensor.Im2ColInto(cols, x, l.KH, l.KW, l.Stride, l.Pad)
	out := sc.tensor2(skey{l, 1}, l.OutC, area)
	tensor.MatMulInto(out, l.Weight.Value, cols)
	for f := 0; f < l.OutC; f++ {
		tensor.AddConstInto(out.Data[f*area:(f+1)*area], l.Bias.Value.Data[f])
	}
	return sc.viewOf3(skey{l, 2}, out.Data, l.OutC, oh, ow)
}

// forwardInferDirect convolves without materializing the im2col matrix.
// At stride 1 the im2col row for tap p = (c,ky,kx) is the zero-padded
// input plane read at a fixed flat offset, so each tap's contribution
// to a whole output plane is one contiguous multiply-add over a padded
// accumulator of row width pw = w+2·Pad. The accumulator's pad columns
// compute garbage that is dropped on copy-out; the real columns receive
// exactly the contributions of the im2col matmul — same values, same
// ascending-p order, same four-tap blocking and zero-weight skip — so
// the result is bit-identical to the im2col path.
func (l *Conv2D) forwardInferDirect(x *tensor.Tensor, sc *Scratch, oh, ow int) *tensor.Tensor {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	area := oh * ow
	ph, pw := h+2*l.Pad, w+2*l.Pad
	ld := (oh-1)*pw + ow // accumulator length; tap reads end exactly at the padded buffer's last element

	padded := sc.tensor1(skey{l, 3}, c*ph*pw)
	for ch := 0; ch < c; ch++ {
		pp := padded.Data[ch*ph*pw : (ch+1)*ph*pw]
		zeroFloats(pp[:l.Pad*pw])
		for y := 0; y < h; y++ {
			row := pp[(l.Pad+y)*pw : (l.Pad+y+1)*pw]
			zeroFloats(row[:l.Pad])
			copy(row[l.Pad:l.Pad+w], x.Data[ch*h*w+y*w:ch*h*w+(y+1)*w])
			zeroFloats(row[l.Pad+w:])
		}
		zeroFloats(pp[(l.Pad+h)*pw:])
	}

	tap := func(p int) []float64 {
		ch, r := p/(l.KH*l.KW), p%(l.KH*l.KW)
		off := ch*ph*pw + (r/l.KW)*pw + r%l.KW
		return padded.Data[off : off+ld]
	}

	acc := sc.tensor1(skey{l, 4}, l.OutC*ld)
	zeroFloats(acc.Data)
	k := l.InC * l.KH * l.KW
	wd := l.Weight.Value.Data
	p := 0
	for ; p+8 <= k; p += 8 {
		b0, b1, b2, b3 := tap(p), tap(p+1), tap(p+2), tap(p+3)
		b4, b5, b6, b7 := tap(p+4), tap(p+5), tap(p+6), tap(p+7)
		for f := 0; f < l.OutC; f++ {
			d := acc.Data[f*ld : (f+1)*ld]
			wr := wd[f*k+p : f*k+p+8]
			if wr[0] == 0 || wr[1] == 0 || wr[2] == 0 || wr[3] == 0 ||
				wr[4] == 0 || wr[5] == 0 || wr[6] == 0 || wr[7] == 0 {
				for q := p; q < p+8; q++ {
					if av := wd[f*k+q]; av != 0 {
						tensor.Axpy(d, tap(q), av)
					}
				}
				continue
			}
			tensor.Axpy8(d, b0, b1, b2, b3, b4, b5, b6, b7,
				wr[0], wr[1], wr[2], wr[3], wr[4], wr[5], wr[6], wr[7])
		}
	}
	for ; p+4 <= k; p += 4 {
		b0, b1, b2, b3 := tap(p), tap(p+1), tap(p+2), tap(p+3)
		for f := 0; f < l.OutC; f++ {
			d := acc.Data[f*ld : (f+1)*ld]
			a0, a1, a2, a3 := wd[f*k+p], wd[f*k+p+1], wd[f*k+p+2], wd[f*k+p+3]
			if a0 == 0 || a1 == 0 || a2 == 0 || a3 == 0 {
				for q := p; q < p+4; q++ {
					if av := wd[f*k+q]; av != 0 {
						tensor.Axpy(d, tap(q), av)
					}
				}
				continue
			}
			tensor.Axpy4(d, b0, b1, b2, b3, a0, a1, a2, a3)
		}
	}
	for ; p < k; p++ {
		brow := tap(p)
		for f := 0; f < l.OutC; f++ {
			if av := wd[f*k+p]; av != 0 {
				tensor.Axpy(acc.Data[f*ld:(f+1)*ld], brow, av)
			}
		}
	}

	out := sc.tensor2(skey{l, 1}, l.OutC, area)
	for f := 0; f < l.OutC; f++ {
		src := acc.Data[f*ld : (f+1)*ld]
		dst := out.Data[f*area : (f+1)*area]
		for oy := 0; oy < oh; oy++ {
			copy(dst[oy*ow:(oy+1)*ow], src[oy*pw:oy*pw+ow])
		}
		tensor.AddConstInto(dst, l.Bias.Value.Data[f])
	}
	return sc.viewOf3(skey{l, 2}, out.Data, l.OutC, oh, ow)
}

func zeroFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// ForwardInfer implements InferenceLayer: the same window maxima
// without recording the backward-pass argmax indices.
func (l *MaxPool2D) ForwardInfer(x *tensor.Tensor, sc *Scratch) *tensor.Tensor {
	if x.Rank() != 3 {
		panic("nn: " + l.LayerName + ": ForwardInfer expects (C,H,W) input")
	}
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh := tensor.ConvOutSize(h, l.K, l.Stride, 0)
	ow := tensor.ConvOutSize(w, l.K, l.Stride, 0)
	out := sc.tensor3(skey{l, 0}, c, oh, ow)
	oi := 0
	if l.K == 2 && l.Stride == 2 && h%2 == 0 && w%2 == 0 {
		// Every 2×2 window is fully in bounds: unrolled scan in the
		// same (ky,kx) order with the same strict > updates, so NaN
		// handling and results match the generic loop exactly.
		for ch := 0; ch < c; ch++ {
			plane := x.Data[ch*h*w : (ch+1)*h*w]
			for oy := 0; oy < oh; oy++ {
				r0 := plane[2*oy*w : 2*oy*w+w]
				r1 := plane[(2*oy+1)*w : (2*oy+1)*w+w]
				orow := out.Data[oi : oi+ow]
				for ox := range orow {
					x0 := 2 * ox
					best := r0[x0]
					if v := r0[x0+1]; v > best {
						best = v
					}
					if v := r1[x0]; v > best {
						best = v
					}
					if v := r1[x0+1]; v > best {
						best = v
					}
					orow[ox] = best
				}
				oi += ow
			}
		}
		return out
	}
	for ch := 0; ch < c; ch++ {
		plane := x.Data[ch*h*w : (ch+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := -1
				bestV := 0.0
				for ky := 0; ky < l.K; ky++ {
					iy := oy*l.Stride + ky
					if iy >= h {
						break
					}
					for kx := 0; kx < l.K; kx++ {
						ix := ox*l.Stride + kx
						if ix >= w {
							break
						}
						idx := iy*w + ix
						if best < 0 || plane[idx] > bestV {
							best, bestV = idx, plane[idx]
						}
					}
				}
				out.Data[oi] = bestV
				oi++
			}
		}
	}
	return out
}

// ForwardInfer implements InferenceLayer.
func (l *AvgPool2D) ForwardInfer(x *tensor.Tensor, sc *Scratch) *tensor.Tensor {
	if x.Rank() != 3 {
		panic("nn: " + l.LayerName + ": ForwardInfer expects (C,H,W) input")
	}
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh := tensor.ConvOutSize(h, l.K, l.Stride, 0)
	ow := tensor.ConvOutSize(w, l.K, l.Stride, 0)
	out := sc.tensor3(skey{l, 0}, c, oh, ow)
	inv := 1.0 / float64(l.K*l.K)
	oi := 0
	for ch := 0; ch < c; ch++ {
		plane := x.Data[ch*h*w : (ch+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				s := 0.0
				for ky := 0; ky < l.K; ky++ {
					iy := oy*l.Stride + ky
					if iy >= h {
						continue
					}
					for kx := 0; kx < l.K; kx++ {
						ix := ox*l.Stride + kx
						if ix >= w {
							continue
						}
						s += plane[iy*w+ix]
					}
				}
				out.Data[oi] = s * inv
				oi++
			}
		}
	}
	return out
}

// ForwardInfer implements InferenceLayer.
func (l *GlobalAvgPool) ForwardInfer(x *tensor.Tensor, sc *Scratch) *tensor.Tensor {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	out := sc.tensor1(skey{l, 0}, c)
	inv := 1.0 / float64(h*w)
	for ch := 0; ch < c; ch++ {
		s := 0.0
		for _, v := range x.Data[ch*h*w : (ch+1)*h*w] {
			s += v
		}
		out.Data[ch] = s * inv
	}
	return out
}

// ForwardInfer implements InferenceLayer. MatVec is length-based, so no
// flattening reshape is needed.
func (l *Dense) ForwardInfer(x *tensor.Tensor, sc *Scratch) *tensor.Tensor {
	out := sc.tensor1(skey{l, 0}, l.Out)
	tensor.MatVecInto(out, l.Weight.Value, x)
	out.AddInPlace(l.Bias.Value)
	return out
}

// ForwardInfer implements InferenceLayer: max(0, x) into a scratch
// buffer, no mask, no clone. It deliberately does not write in place —
// x may be a tap the caller still observes.
func (l *ReLU) ForwardInfer(x *tensor.Tensor, sc *Scratch) *tensor.Tensor {
	out := sc.like(skey{l, 0}, x)
	reluInto(out.Data, x.Data)
	return out
}

func reluInto(dst, src []float64) {
	tensor.ReLUInto(dst, src)
}

// ForwardInfer implements InferenceLayer with SoftmaxVector's exact
// arithmetic into a reused buffer.
func (l *Softmax) ForwardInfer(x *tensor.Tensor, sc *Scratch) *tensor.Tensor {
	out := sc.tensor1(skey{l, 0}, x.Len())
	m := x.Max()
	sum := 0.0
	for i, v := range x.Data {
		e := math.Exp(v - m)
		out.Data[i] = e
		sum += e
	}
	for i := range out.Data {
		out.Data[i] /= sum
	}
	return out
}

// ForwardInfer implements InferenceLayer.
func (l *Sigmoid) ForwardInfer(x *tensor.Tensor, sc *Scratch) *tensor.Tensor {
	out := sc.like(skey{l, 0}, x)
	for i, v := range x.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	return out
}

// ForwardInfer implements InferenceLayer.
func (l *Tanh) ForwardInfer(x *tensor.Tensor, sc *Scratch) *tensor.Tensor {
	out := sc.like(skey{l, 0}, x)
	for i, v := range x.Data {
		out.Data[i] = math.Tanh(v)
	}
	return out
}

// ForwardInfer implements InferenceLayer.
func (l *LeakyReLU) ForwardInfer(x *tensor.Tensor, sc *Scratch) *tensor.Tensor {
	out := sc.like(skey{l, 0}, x)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = l.Alpha * v
		}
	}
	return out
}

// ForwardInfer implements InferenceLayer: a cached flat view, the
// scratch analogue of Forward's Reshape.
func (l *Flatten) ForwardInfer(x *tensor.Tensor, sc *Scratch) *tensor.Tensor {
	return sc.viewOf1(skey{l, 0}, x.Data)
}

// ForwardInfer implements InferenceLayer: inverted dropout is the
// identity in inference mode.
func (l *Dropout) ForwardInfer(x *tensor.Tensor, sc *Scratch) *tensor.Tensor {
	return x
}

// ForwardInfer implements InferenceLayer: the frozen-statistics
// normalization without materializing the backward-pass xhat.
func (l *BatchNorm) ForwardInfer(x *tensor.Tensor, sc *Scratch) *tensor.Tensor {
	if x.Rank() != 3 || x.Shape[0] != l.C {
		panic("nn: " + l.LayerName + ": ForwardInfer input shape mismatch")
	}
	h, w := x.Shape[1], x.Shape[2]
	area := h * w
	out := sc.tensor3(skey{l, 0}, l.C, h, w)
	for ch := 0; ch < l.C; ch++ {
		mean := l.RunMean.Data[ch]
		invStd := 1 / math.Sqrt(l.RunVar.Data[ch]+l.Eps)
		g, b := l.Gamma.Value.Data[ch], l.Beta.Value.Data[ch]
		in := x.Data[ch*area : (ch+1)*area]
		o := out.Data[ch*area : (ch+1)*area]
		for i, v := range in {
			n := (v - mean) * invStd
			o[i] = g*n + b
		}
	}
	return out
}

// ForwardInfer implements InferenceLayer: the concatenation is built
// in place in one arena buffer (each sub-layer reads the prefix its
// training-mode counterpart would read from the growing concat chain),
// so the block performs no per-call concatenation copies beyond the
// sub-layer outputs themselves.
func (l *DenseBlock) ForwardInfer(x *tensor.Tensor, sc *Scratch) *tensor.Tensor {
	h, w := x.Shape[1], x.Shape[2]
	area := h * w
	cat := sc.tensor3(skey{l, 0}, l.OutC(), h, w)
	copy(cat.Data[:l.InC*area], x.Data)
	for i := range l.Convs {
		prefixC := l.InC + i*l.Growth
		prefix := sc.viewOf3(skey{l, 1 + i}, cat.Data[:prefixC*area], prefixC, h, w)
		hb := l.Norms[i].ForwardInfer(prefix, sc)
		// The ReLU buffer lives in the tens map under the same
		// (block, 1+i) key the prefix view uses in the views map — the
		// maps are disjoint, and keying by the block pointer avoids
		// boxing a per-call interface value (which would allocate).
		hr := sc.like(skey{l, 1 + i}, hb)
		reluInto(hr.Data, hb.Data)
		out := l.Convs[i].ForwardInfer(hr, sc)
		copy(cat.Data[prefixC*area:(prefixC+l.Growth)*area], out.Data)
	}
	return cat
}

// Interface compliance checks: every in-repo layer type must carry an
// inference path, so production scoring never falls back to the
// allocating Forward.
var (
	_ InferenceLayer = (*Seq)(nil)
	_ InferenceLayer = (*Conv2D)(nil)
	_ InferenceLayer = (*MaxPool2D)(nil)
	_ InferenceLayer = (*AvgPool2D)(nil)
	_ InferenceLayer = (*GlobalAvgPool)(nil)
	_ InferenceLayer = (*Dense)(nil)
	_ InferenceLayer = (*ReLU)(nil)
	_ InferenceLayer = (*Softmax)(nil)
	_ InferenceLayer = (*Sigmoid)(nil)
	_ InferenceLayer = (*Tanh)(nil)
	_ InferenceLayer = (*LeakyReLU)(nil)
	_ InferenceLayer = (*Flatten)(nil)
	_ InferenceLayer = (*Dropout)(nil)
	_ InferenceLayer = (*BatchNorm)(nil)
	_ InferenceLayer = (*DenseBlock)(nil)
)
