package nn

import (
	"math"
	"math/rand"
	"testing"

	"deepvalidation/internal/tensor"
)

// checkLayerGradients verifies a layer's analytic input and parameter
// gradients against central finite differences of the scalar loss
// L = <u, Forward(x)> for a fixed random u.
func checkLayerGradients(t *testing.T, l Layer, inShape []int, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	x := tensor.New(inShape...).FillNormal(rng, 0, 1)
	outShape := l.OutShape(inShape)
	u := tensor.New(outShape...).FillNormal(rng, 0, 1)

	loss := func() float64 {
		y := l.Forward(x, NewContext(false, nil))
		return y.Dot(u)
	}

	ctx := NewContext(false, nil)
	l.Forward(x, ctx)
	dX := l.Backward(u.Clone(), ctx)

	const h = 1e-5
	for i := 0; i < x.Len(); i++ {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp := loss()
		x.Data[i] = orig - h
		lm := loss()
		x.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-dX.Data[i]) > tol*(1+math.Abs(num)) {
			t.Fatalf("input grad [%d]: analytic %.8f vs numeric %.8f", i, dX.Data[i], num)
		}
	}

	for _, p := range l.Params() {
		g := ctx.Grad(p)
		if g == nil {
			t.Fatalf("no gradient recorded for %s", p.Name)
		}
		for i := 0; i < p.Value.Len(); i++ {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + h
			lp := loss()
			p.Value.Data[i] = orig - h
			lm := loss()
			p.Value.Data[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-g.Data[i]) > tol*(1+math.Abs(num)) {
				t.Fatalf("%s grad [%d]: analytic %.8f vs numeric %.8f", p.Name, i, g.Data[i], num)
			}
		}
	}
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	checkLayerGradients(t, NewConv2D("c", 2, 3, 3, 1, 1, rng), []int{2, 5, 5}, 1e-5)
}

func TestConv2DStridedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	checkLayerGradients(t, NewConv2D("c", 1, 2, 3, 2, 0, rng), []int{1, 7, 7}, 1e-5)
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	checkLayerGradients(t, NewDense("d", 6, 4, rng), []int{6}, 1e-5)
}

func TestReLUGradients(t *testing.T) {
	// Random normal inputs are almost surely away from the kink at 0.
	checkLayerGradients(t, NewReLU("r"), []int{3, 4, 4}, 1e-5)
}

func TestSoftmaxGradients(t *testing.T) {
	checkLayerGradients(t, NewSoftmax("s"), []int{7}, 1e-5)
}

func TestMaxPoolGradients(t *testing.T) {
	checkLayerGradients(t, NewMaxPool2D("p", 2, 2), []int{2, 6, 6}, 1e-5)
}

func TestAvgPoolGradients(t *testing.T) {
	checkLayerGradients(t, NewAvgPool2D("p", 2, 2), []int{2, 6, 6}, 1e-5)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	checkLayerGradients(t, NewGlobalAvgPool("g"), []int{3, 4, 4}, 1e-5)
}

func TestFlattenGradients(t *testing.T) {
	checkLayerGradients(t, NewFlatten("f"), []int{2, 3, 3}, 1e-7)
}

func TestBatchNormGradients(t *testing.T) {
	bn := NewBatchNorm("bn", 3)
	// Non-trivial running statistics exercise the full normalization.
	rng := rand.New(rand.NewSource(4))
	bn.RunMean.FillNormal(rng, 0, 1)
	bn.RunVar.FillUniform(rng, 0.5, 2)
	bn.Gamma.Value.FillNormal(rng, 1, 0.2)
	bn.Beta.Value.FillNormal(rng, 0, 0.2)
	checkLayerGradients(t, bn, []int{3, 4, 4}, 1e-5)
}

func TestSeqGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewSeq("s",
		NewConv2D("c", 1, 2, 3, 1, 1, rng),
		NewReLU("r"),
		NewMaxPool2D("p", 2, 2),
		NewFlatten("f"),
		NewDense("d", 2*3*3, 4, rng),
	)
	checkLayerGradients(t, l, []int{1, 6, 6}, 1e-5)
}

func TestDenseBlockGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := NewDenseBlock("b", 2, 2, 3, rng)
	// Give the inner batch norms non-trivial statistics.
	for _, n := range b.Norms {
		n.RunMean.FillNormal(rng, 0, 0.5)
		n.RunVar.FillUniform(rng, 0.5, 2)
	}
	checkLayerGradients(t, b, []int{2, 5, 5}, 1e-5)
}

func TestTransitionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checkLayerGradients(t, NewTransition("t", 4, 2, rng), []int{4, 6, 6}, 1e-5)
}

func TestNetworkInputGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net, err := NewSevenLayerCNN("m", 1, 8, 3, ArchConfig{Width: 2, FCWidth: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 8, 8).FillUniform(rng, 0, 1)
	label := 1
	g := net.InputGradient(x, label)

	const h = 1e-5
	loss := func() float64 {
		p := net.Forward(x)
		l, _ := CrossEntropy(p, label)
		return l
	}
	// Spot-check a sample of pixels; full coverage is too slow here and
	// the per-layer checks above cover each operator exhaustively.
	for _, i := range []int{0, 7, 13, 31, 40, 63} {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp := loss()
		x.Data[i] = orig - h
		lm := loss()
		x.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-g.Data[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("network input grad [%d]: analytic %.8f vs numeric %.8f", i, g.Data[i], num)
		}
	}
}

func TestSoftmaxCrossEntropyGradientIsPMinusOneHot(t *testing.T) {
	// The composition softmax → cross-entropy must produce the logit
	// gradient p - onehot(y); this is the identity the trainer depends
	// on for stability.
	rng := rand.New(rand.NewSource(9))
	logits := tensor.New(5).FillNormal(rng, 0, 2)
	sm := NewSoftmax("s")
	ctx := NewContext(false, nil)
	probs := sm.Forward(logits, ctx)
	_, gradProbs := CrossEntropy(probs, 2)
	gradLogits := sm.Backward(gradProbs, ctx)
	for i := 0; i < 5; i++ {
		want := probs.Data[i]
		if i == 2 {
			want -= 1
		}
		if math.Abs(gradLogits.Data[i]-want) > 1e-9 {
			t.Fatalf("logit grad [%d] = %.9f, want %.9f", i, gradLogits.Data[i], want)
		}
	}
}

func TestLogitGradientNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net, err := NewSevenLayerCNN("m", 1, 8, 3, ArchConfig{Width: 2, FCWidth: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 8, 8).FillUniform(rng, 0, 1)
	u := tensor.New(3).FillNormal(rng, 0, 1)

	ctx := NewContext(false, nil)
	net.ForwardToLogits(x, ctx)
	g := net.BackwardFromLogits(u.Clone(), ctx)

	loss := func() float64 { return net.Logits(x).Dot(u) }
	const h = 1e-5
	for _, i := range []int{0, 9, 17, 33, 63} {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp := loss()
		x.Data[i] = orig - h
		lm := loss()
		x.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-g.Data[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("logit grad [%d]: analytic %.8f vs numeric %.8f", i, g.Data[i], num)
		}
	}
}

func TestLogitsForwardBackwardConsistency(t *testing.T) {
	// ForwardToLogits followed by an explicit softmax must match
	// Forward exactly.
	rng := rand.New(rand.NewSource(11))
	net, err := NewSevenLayerCNN("m", 1, 8, 3, ArchConfig{Width: 2, FCWidth: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 8, 8).FillUniform(rng, 0, 1)
	z := net.ForwardToLogits(x, NewContext(false, nil))
	if !SoftmaxVector(z).AllClose(net.Forward(x), 1e-12) {
		t.Fatal("softmax(ForwardToLogits) != Forward")
	}
}

func TestSigmoidGradients(t *testing.T) {
	checkLayerGradients(t, NewSigmoid("s"), []int{2, 3, 3}, 1e-5)
}

func TestTanhGradients(t *testing.T) {
	checkLayerGradients(t, NewTanh("t"), []int{2, 3, 3}, 1e-5)
}

func TestLeakyReLUGradients(t *testing.T) {
	checkLayerGradients(t, NewLeakyReLU("l", 0.1), []int{2, 3, 3}, 1e-5)
}
