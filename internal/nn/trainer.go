package nn

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"deepvalidation/internal/tensor"
)

// Optimizer applies one update to a named parameter given its averaged
// gradient. Implementations live in internal/opt; the interface is
// defined here so nn does not depend on them.
type Optimizer interface {
	Step(name string, value, grad *tensor.Tensor)
}

// Trainer runs minibatch gradient descent over a network.
//
// Each batch fans out across Workers goroutines; every worker owns a
// Context and a derived random source, accumulates parameter gradients
// locally, and the reduction happens on the caller's goroutine in fixed
// worker order — so a given seed always produces the same model,
// independent of scheduling.
type Trainer struct {
	Net       *Network
	Optimizer Optimizer
	BatchSize int
	Workers   int
	Rng       *rand.Rand

	// WeightDecay adds L2 regularization to convolution and dense
	// weights (parameters named "*.weight"); biases and normalization
	// parameters are exempt, the usual convention. 0 disables it.
	WeightDecay float64

	// ClipNorm rescales each parameter's averaged gradient so its L2
	// norm does not exceed this bound, taming the occasional exploding
	// batch. 0 disables clipping.
	ClipNorm float64

	// CalibrateWith, when non-empty, is streamed through the network
	// after every epoch to refresh BatchNorm running statistics.
	CalibrateWith []*tensor.Tensor

	// OnEpoch, when non-nil, observes training progress.
	OnEpoch func(epoch int, meanLoss, accuracy float64)
}

// EpochStats summarizes one training epoch.
type EpochStats struct {
	Epoch    int
	MeanLoss float64
	Accuracy float64
}

// NewTrainer returns a trainer with sensible defaults: batch size 128
// (the paper's setting), workers = GOMAXPROCS.
func NewTrainer(net *Network, optimizer Optimizer, rng *rand.Rand) *Trainer {
	return &Trainer{
		Net:       net,
		Optimizer: optimizer,
		BatchSize: 128,
		Workers:   runtime.GOMAXPROCS(0),
		Rng:       rng,
	}
}

// Train runs the given number of epochs over (xs, ys) and returns
// per-epoch statistics. It returns an error on malformed input rather
// than panicking, since callers typically feed it external data.
func (t *Trainer) Train(xs []*tensor.Tensor, ys []int, epochs int) ([]EpochStats, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("nn: empty training set")
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("nn: %d samples but %d labels", len(xs), len(ys))
	}
	for i, y := range ys {
		if y < 0 || y >= t.Net.Classes {
			return nil, fmt.Errorf("nn: label %d out of range [0,%d) at index %d", y, t.Net.Classes, i)
		}
	}
	if t.BatchSize <= 0 {
		return nil, fmt.Errorf("nn: batch size %d must be positive", t.BatchSize)
	}
	workers := t.Workers
	if workers <= 0 {
		workers = 1
	}

	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	stats := make([]EpochStats, 0, epochs)
	for epoch := 0; epoch < epochs; epoch++ {
		t.Rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		lossSum := 0.0
		correct := 0
		for start := 0; start < len(idx); start += t.BatchSize {
			end := start + t.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			bl, bc := t.trainBatch(xs, ys, batch, workers)
			lossSum += bl
			correct += bc
		}
		st := EpochStats{
			Epoch:    epoch,
			MeanLoss: lossSum / float64(len(idx)),
			Accuracy: float64(correct) / float64(len(idx)),
		}
		stats = append(stats, st)
		if len(t.CalibrateWith) > 0 {
			t.Net.Calibrate(t.CalibrateWith)
		}
		if t.OnEpoch != nil {
			t.OnEpoch(epoch, st.MeanLoss, st.Accuracy)
		}
	}
	return stats, nil
}

// trainBatch processes one minibatch and applies a single optimizer
// step with gradients averaged over the batch. It returns the summed
// loss and the number of correct predictions.
func (t *Trainer) trainBatch(xs []*tensor.Tensor, ys []int, batch []int, workers int) (lossSum float64, correct int) {
	if workers > len(batch) {
		workers = len(batch)
	}
	type result struct {
		loss    float64
		correct int
		grads   map[*Param]*tensor.Tensor
	}
	results := make([]result, workers)
	seeds := make([]int64, workers)
	for w := range seeds {
		seeds[w] = t.Rng.Int63()
	}

	var wg sync.WaitGroup
	per := (len(batch) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(batch) {
			hi = len(batch)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seeds[w]))
			grads := make(map[*Param]*tensor.Tensor)
			loss := 0.0
			corr := 0
			for _, i := range batch[lo:hi] {
				ctx := NewContext(true, rng)
				probs := t.Net.ForwardCtx(xs[i], ctx)
				if probs.ArgMax() == ys[i] {
					corr++
				}
				l, g := CrossEntropy(probs, ys[i])
				loss += l
				t.Net.Backward(g, ctx)
				ctx.MergeGradsInto(grads, t.Net.Params())
			}
			results[w] = result{loss: loss, correct: corr, grads: grads}
		}(w, lo, hi)
	}
	wg.Wait()

	params := t.Net.Params()
	total := make(map[*Param]*tensor.Tensor, len(params))
	for w := range results {
		if results[w].grads == nil {
			continue
		}
		lossSum += results[w].loss
		correct += results[w].correct
		for _, p := range params {
			g, ok := results[w].grads[p]
			if !ok {
				continue
			}
			if acc, ok := total[p]; ok {
				acc.AddInPlace(g)
			} else {
				total[p] = g
			}
		}
	}
	inv := 1.0 / float64(len(batch))
	for _, p := range params {
		g, ok := total[p]
		if !ok {
			continue
		}
		g.ScaleInPlace(inv)
		if t.WeightDecay > 0 && strings.HasSuffix(p.Name, ".weight") {
			g.AxpyInPlace(t.WeightDecay, p.Value)
		}
		if t.ClipNorm > 0 {
			if norm := g.L2Norm(); norm > t.ClipNorm {
				g.ScaleInPlace(t.ClipNorm / norm)
			}
		}
		t.Optimizer.Step(p.Name, p.Value, g)
	}
	return lossSum, correct
}
