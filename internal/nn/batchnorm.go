package nn

import (
	"fmt"
	"math"

	"deepvalidation/internal/tensor"
)

// BatchNorm normalizes each channel of a (C,H,W) activation with
// *running* statistics and applies a learned affine transform.
//
// This is the frozen-statistics variant of batch normalization: the
// forward pass always uses the running mean/variance, gradients treat
// them as constants, and the statistics themselves are refreshed by an
// explicit single-threaded calibration pass (Network.Calibrate) between
// epochs. That choice keeps per-sample processing free of cross-sample
// coupling, so training parallelizes across goroutines and inference is
// bitwise deterministic — which Deep Validation's reference
// distributions depend on.
type BatchNorm struct {
	LayerName string
	C         int
	Gamma     *Param         // (C) scale
	Beta      *Param         // (C) shift
	RunMean   *tensor.Tensor // (C) running mean, refreshed by Calibrate
	RunVar    *tensor.Tensor // (C) running variance, refreshed by Calibrate
	Momentum  float64
	Eps       float64
}

// NewBatchNorm constructs a batch-normalization layer over c channels.
func NewBatchNorm(name string, c int) *BatchNorm {
	return &BatchNorm{
		LayerName: name,
		C:         c,
		Gamma:     &Param{Name: name + ".gamma", Value: tensor.New(c).Fill(1)},
		Beta:      &Param{Name: name + ".beta", Value: tensor.New(c)},
		RunMean:   tensor.New(c),
		RunVar:    tensor.New(c).Fill(1),
		Momentum:  0.9,
		Eps:       1e-5,
	}
}

// Name implements Layer.
func (l *BatchNorm) Name() string { return l.LayerName }

// Params implements Layer.
func (l *BatchNorm) Params() []*Param { return []*Param{l.Gamma, l.Beta} }

// OutShape implements Layer.
func (l *BatchNorm) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != l.C {
		panic(fmt.Sprintf("nn: %s expects input (%d,H,W), got %v", l.LayerName, l.C, in))
	}
	return append([]int(nil), in...)
}

// Forward implements Layer.
func (l *BatchNorm) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	if x.Rank() != 3 || x.Shape[0] != l.C {
		panic(fmt.Sprintf("nn: %s expects input (%d,H,W), got %v", l.LayerName, l.C, x.Shape))
	}
	if ctx.Calibrating() {
		l.UpdateStats(x)
	}
	h, w := x.Shape[1], x.Shape[2]
	area := h * w
	out := tensor.New(x.Shape...)
	xhat := tensor.New(x.Shape...)
	for ch := 0; ch < l.C; ch++ {
		mean := l.RunMean.Data[ch]
		invStd := 1 / math.Sqrt(l.RunVar.Data[ch]+l.Eps)
		g, b := l.Gamma.Value.Data[ch], l.Beta.Value.Data[ch]
		in := x.Data[ch*area : (ch+1)*area]
		xh := xhat.Data[ch*area : (ch+1)*area]
		o := out.Data[ch*area : (ch+1)*area]
		for i, v := range in {
			n := (v - mean) * invStd
			xh[i] = n
			o[i] = g*n + b
		}
	}
	ctx.put(l, xhat)
	return out
}

// Backward implements Layer.
func (l *BatchNorm) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	xv, ok := ctx.get(l)
	if !ok {
		panic("nn: " + l.LayerName + ": Backward before Forward")
	}
	xhat := xv.(*tensor.Tensor)
	area := grad.Len() / l.C
	dGamma := tensor.New(l.C)
	dBeta := tensor.New(l.C)
	dX := tensor.New(grad.Shape...)
	for ch := 0; ch < l.C; ch++ {
		invStd := 1 / math.Sqrt(l.RunVar.Data[ch]+l.Eps)
		g := l.Gamma.Value.Data[ch]
		gs := grad.Data[ch*area : (ch+1)*area]
		xs := xhat.Data[ch*area : (ch+1)*area]
		ds := dX.Data[ch*area : (ch+1)*area]
		sg, sb := 0.0, 0.0
		for i, gv := range gs {
			sg += gv * xs[i]
			sb += gv
			ds[i] = gv * g * invStd
		}
		dGamma.Data[ch] = sg
		dBeta.Data[ch] = sb
	}
	ctx.AddGrad(l.Gamma, dGamma)
	ctx.AddGrad(l.Beta, dBeta)
	return dX
}

// UpdateStats folds one sample's per-channel statistics into the running
// mean and variance with the layer's momentum. It must only be called
// from a single goroutine (Network.Calibrate guarantees this).
func (l *BatchNorm) UpdateStats(x *tensor.Tensor) {
	area := x.Len() / l.C
	m := l.Momentum
	for ch := 0; ch < l.C; ch++ {
		in := x.Data[ch*area : (ch+1)*area]
		mean := 0.0
		for _, v := range in {
			mean += v
		}
		mean /= float64(area)
		variance := 0.0
		for _, v := range in {
			variance += (v - mean) * (v - mean)
		}
		variance /= float64(area)
		l.RunMean.Data[ch] = m*l.RunMean.Data[ch] + (1-m)*mean
		l.RunVar.Data[ch] = m*l.RunVar.Data[ch] + (1-m)*variance
	}
}
