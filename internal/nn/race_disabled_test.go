//go:build !race

package nn

// See race_enabled_test.go.
const raceDetectorEnabled = false
