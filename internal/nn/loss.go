package nn

import (
	"math"

	"deepvalidation/internal/tensor"
)

// probFloor guards the cross-entropy logarithm and its gradient against
// vanishing probabilities.
const probFloor = 1e-12

// CrossEntropy computes the negative log-likelihood of the true label
// under a probability vector and the gradient of that loss with respect
// to the probabilities. Combined with Softmax.Backward the overall
// logit gradient is the familiar (p - onehot).
func CrossEntropy(probs *tensor.Tensor, label int) (loss float64, grad *tensor.Tensor) {
	p := probs.Data[label]
	if p < probFloor {
		p = probFloor
	}
	grad = tensor.New(probs.Len())
	grad.Data[label] = -1 / p
	return -math.Log(p), grad
}

// OneHot returns a length-n probability vector with all mass on label.
func OneHot(n, label int) *tensor.Tensor {
	t := tensor.New(n)
	t.Data[label] = 1
	return t
}
