package nn

import (
	"math"

	"deepvalidation/internal/tensor"
)

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	LayerName string
}

// NewReLU constructs a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{LayerName: name} }

// Name implements Layer.
func (l *ReLU) Name() string { return l.LayerName }

// Params implements Layer.
func (l *ReLU) Params() []*Param { return nil }

// OutShape implements Layer.
func (l *ReLU) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Layer.
func (l *ReLU) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	mask := make([]bool, x.Len())
	out := x.Clone()
	for i, v := range out.Data {
		if v > 0 {
			mask[i] = true
		} else {
			out.Data[i] = 0
		}
	}
	ctx.put(l, mask)
	return out
}

// Backward implements Layer.
func (l *ReLU) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	mv, ok := ctx.get(l)
	if !ok {
		panic("nn: " + l.LayerName + ": Backward before Forward")
	}
	mask := mv.([]bool)
	out := grad.Clone()
	for i := range out.Data {
		if !mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// Softmax converts logits to a probability vector. It is the final layer
// of every classifier in this repository (paper Section II-A: "the last
// layer is a softmax layer").
type Softmax struct {
	LayerName string
}

// NewSoftmax constructs a softmax output layer.
func NewSoftmax(name string) *Softmax { return &Softmax{LayerName: name} }

// Name implements Layer.
func (l *Softmax) Name() string { return l.LayerName }

// Params implements Layer.
func (l *Softmax) Params() []*Param { return nil }

// OutShape implements Layer.
func (l *Softmax) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Layer.
func (l *Softmax) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	out := SoftmaxVector(x)
	ctx.put(l, out.Clone())
	return out
}

// Backward implements Layer. It applies the full softmax Jacobian,
// dL/dz_i = y_i (g_i - Σ_j g_j y_j), so both the training loss and the
// attack objectives can backpropagate through probabilities.
func (l *Softmax) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	yv, ok := ctx.get(l)
	if !ok {
		panic("nn: " + l.LayerName + ": Backward before Forward")
	}
	y := yv.(*tensor.Tensor)
	dot := 0.0
	for i, g := range grad.Data {
		dot += g * y.Data[i]
	}
	out := tensor.New(y.Len())
	for i := range out.Data {
		out.Data[i] = y.Data[i] * (grad.Data[i] - dot)
	}
	return out
}

// SoftmaxVector computes a numerically stable softmax of a flat tensor
// without touching any layer state.
func SoftmaxVector(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(x.Len())
	m := x.Max()
	sum := 0.0
	for i, v := range x.Data {
		e := math.Exp(v - m)
		out.Data[i] = e
		sum += e
	}
	for i := range out.Data {
		out.Data[i] /= sum
	}
	return out
}
