package nn

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"deepvalidation/internal/tensor"
)

func testNet(t *testing.T) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	net, err := NewSevenLayerCNN("test", 1, 8, 4, ArchConfig{Width: 2, FCWidth: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestSevenLayerCNNStructure(t *testing.T) {
	net := testNet(t)
	if net.NumLayers() != 7 {
		t.Fatalf("NumLayers = %d, want 7 (paper Table II)", net.NumLayers())
	}
	x := tensor.New(1, 8, 8).FillUniform(rand.New(rand.NewSource(1)), 0, 1)
	probs, taps := net.ForwardTapped(x)
	if len(taps) != 7 {
		t.Fatalf("taps = %d, want 7", len(taps))
	}
	// Shape chain per Table II: conv keeps size, pools halve it.
	wantShapes := [][]int{
		{2, 8, 8}, {2, 4, 4}, {4, 4, 4}, {4, 2, 2}, {8}, {8}, {4},
	}
	for i, want := range wantShapes {
		got := taps[i].Shape
		if len(got) != len(want) {
			t.Fatalf("tap %d shape %v, want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("tap %d shape %v, want %v", i, got, want)
			}
		}
	}
	if probs != taps[6] {
		t.Fatal("final tap must alias the returned probabilities")
	}
	if math.Abs(probs.Sum()-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", probs.Sum())
	}
}

func TestNetworkShapeMismatchError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	_, err := NewNetwork("bad", []int{4}, 3,
		NewDense("d", 4, 5, rng), // produces 5, not 3
	)
	if err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestNetworkDuplicateNameError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	_, err := NewNetwork("dup", []int{4}, 4,
		NewReLU("same"),
		NewSeq("same", NewDense("d", 4, 4, rng), NewSoftmax("sm")),
	)
	if err == nil {
		t.Fatal("expected duplicate name error")
	}
}

func TestLogitsConsistentWithSoftmax(t *testing.T) {
	net := testNet(t)
	x := tensor.New(1, 8, 8).FillUniform(rand.New(rand.NewSource(4)), 0, 1)
	probs := net.Forward(x)
	logits := net.Logits(x)
	if logits.Len() != 4 {
		t.Fatalf("logits len = %d, want 4", logits.Len())
	}
	back := SoftmaxVector(logits)
	if !back.AllClose(probs, 1e-12) {
		t.Fatal("softmax(Logits(x)) must equal Forward(x)")
	}
}

func TestPredictReturnsArgmaxAndConfidence(t *testing.T) {
	net := testNet(t)
	x := tensor.New(1, 8, 8).FillUniform(rand.New(rand.NewSource(5)), 0, 1)
	label, conf := net.Predict(x)
	probs := net.Forward(x)
	if label != probs.ArgMax() {
		t.Fatal("Predict label disagrees with Forward argmax")
	}
	if conf != probs.Data[label] {
		t.Fatal("Predict confidence disagrees with Forward")
	}
}

func TestAccuracy(t *testing.T) {
	net := testNet(t)
	rng := rand.New(rand.NewSource(6))
	xs := make([]*tensor.Tensor, 10)
	ys := make([]int, 10)
	correct := 0
	for i := range xs {
		xs[i] = tensor.New(1, 8, 8).FillUniform(rng, 0, 1)
		pred, _ := net.Predict(xs[i])
		if i%2 == 0 {
			ys[i] = pred // force a hit
			correct++
		} else {
			ys[i] = (pred + 1) % 4 // force a miss
		}
	}
	acc, conf := net.Accuracy(xs, ys)
	if math.Abs(acc-float64(correct)/10) > 1e-12 {
		t.Fatalf("accuracy = %v, want %v", acc, float64(correct)/10)
	}
	if conf <= 0 || conf > 1 {
		t.Fatalf("mean confidence = %v out of range", conf)
	}
}

func TestAccuracyEmptySet(t *testing.T) {
	net := testNet(t)
	if acc, conf := net.Accuracy(nil, nil); acc != 0 || conf != 0 {
		t.Fatal("empty set should yield zeros, not NaN")
	}
}

func TestParamCountPositiveAndStable(t *testing.T) {
	net := testNet(t)
	c := net.ParamCount()
	if c <= 0 {
		t.Fatal("no parameters")
	}
	if c != net.ParamCount() {
		t.Fatal("ParamCount unstable")
	}
}

func TestCheckInput(t *testing.T) {
	net := testNet(t)
	if err := net.CheckInput(tensor.New(1, 8, 8)); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
	if err := net.CheckInput(tensor.New(3, 8, 8)); err == nil {
		t.Fatal("wrong-shaped input accepted")
	}
}

func TestDenseNetLiteBuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net, err := NewDenseNetLite("dn", 3, 16, 10, ArchConfig{Growth: 4, BlockConvs: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumLayers() != 8 {
		t.Fatalf("DenseNetLite taps = %d, want 8", net.NumLayers())
	}
	x := tensor.New(3, 16, 16).FillUniform(rng, 0, 1)
	probs, taps := net.ForwardTapped(x)
	if probs.Len() != 10 {
		t.Fatalf("output classes = %d", probs.Len())
	}
	if math.Abs(probs.Sum()-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", probs.Sum())
	}
	// Transitions halve the spatial size: 16 → 8 → 4.
	if s := taps[2].Shape; s[1] != 8 || s[2] != 8 {
		t.Fatalf("trans1 output %v, want spatial 8x8", s)
	}
	if s := taps[4].Shape; s[1] != 4 || s[2] != 4 {
		t.Fatalf("trans2 output %v, want spatial 4x4", s)
	}
}

func TestDenseNetLiteCalibrateChangesStats(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net, err := NewDenseNetLite("dn", 3, 16, 10, ArchConfig{Growth: 4, BlockConvs: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var xs []*tensor.Tensor
	for i := 0; i < 3; i++ {
		xs = append(xs, tensor.New(3, 16, 16).FillUniform(rng, 0, 1))
	}
	before := net.Forward(xs[0]).Clone()
	net.Calibrate(xs)
	// After calibration on non-centered data the BN stats moved, so the
	// output should change.
	after := net.Forward(xs[0])
	if after.AllClose(before, 1e-15) {
		t.Fatal("calibration had no effect on BatchNorm statistics")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	net := testNet(t)
	x := tensor.New(1, 8, 8).FillUniform(rand.New(rand.NewSource(9)), 0, 1)
	want := net.Forward(x)

	path := filepath.Join(t.TempDir(), "model.gob")
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ModelName != "test" || loaded.Classes != 4 {
		t.Fatalf("metadata lost: %q classes=%d", loaded.ModelName, loaded.Classes)
	}
	got := loaded.Forward(x)
	if !got.AllClose(want, 0) {
		t.Fatal("loaded model disagrees with original")
	}
}

func TestSaveLoadDenseNet(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net, err := NewDenseNetLite("dn", 3, 16, 10, ArchConfig{Growth: 4, BlockConvs: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(3, 16, 16).FillUniform(rng, 0, 1)
	net.Calibrate([]*tensor.Tensor{x})
	want := net.Forward(x)

	path := filepath.Join(t.TempDir(), "dn.gob")
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Forward(x); !got.AllClose(want, 0) {
		t.Fatal("loaded DenseNet disagrees with original (BN stats lost?)")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestOneHot(t *testing.T) {
	v := OneHot(5, 3)
	if v.Sum() != 1 || v.Data[3] != 1 {
		t.Fatalf("OneHot = %v", v.Data)
	}
}

func TestCrossEntropyFloorsProbability(t *testing.T) {
	p := tensor.From([]float64{1, 0, 0}, 3)
	loss, grad := CrossEntropy(p, 1) // true class has probability 0
	if math.IsInf(loss, 0) || math.IsNaN(loss) {
		t.Fatalf("loss = %v, must be finite", loss)
	}
	if math.IsInf(grad.Data[1], 0) {
		t.Fatal("gradient must be finite")
	}
}

func TestLoadCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.gob")
	if err := os.WriteFile(path, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("corrupt model file accepted")
	}
}

func TestEncodeDecodeStream(t *testing.T) {
	net := testNet(t)
	var buf bytes.Buffer
	if err := net.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 8, 8).FillUniform(rand.New(rand.NewSource(77)), 0, 1)
	if !dec.Forward(x).AllClose(net.Forward(x), 0) {
		t.Fatal("stream round trip changed the model")
	}
}

func TestLeNetBuildsAndClassifies(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	net, err := NewLeNet("lenet", 1, 28, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumLayers() != 5 {
		t.Fatalf("LeNet taps = %d, want 5", net.NumLayers())
	}
	x := tensor.New(1, 28, 28).FillUniform(rng, 0, 1)
	probs := net.Forward(x)
	if probs.Len() != 10 || math.Abs(probs.Sum()-1) > 1e-9 {
		t.Fatalf("probs len %d sum %v", probs.Len(), probs.Sum())
	}
	// Logits path works for attacks on LeNet too.
	z := net.Logits(x)
	if !SoftmaxVector(z).AllClose(probs, 1e-12) {
		t.Fatal("LeNet logits inconsistent")
	}
}

func TestLeNetTooSmall(t *testing.T) {
	if _, err := NewLeNet("l", 1, 8, 10, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("tiny input accepted")
	}
}
