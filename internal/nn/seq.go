package nn

import "deepvalidation/internal/tensor"

// Seq groups several layers into one composite unit. Deep Validation
// probes layer *outputs* at the granularity the paper's tables use
// (e.g. Table II counts "Convolution + ReLU + Max Pooling" as a single
// layer), so networks are assembled from Seq units whose boundaries are
// the validation tap points.
type Seq struct {
	LayerName string
	Children  []Layer
}

// NewSeq constructs a composite layer running children in order.
func NewSeq(name string, children ...Layer) *Seq {
	return &Seq{LayerName: name, Children: children}
}

// Name implements Layer.
func (l *Seq) Name() string { return l.LayerName }

// Params implements Layer.
func (l *Seq) Params() []*Param {
	var ps []*Param
	for _, c := range l.Children {
		ps = append(ps, c.Params()...)
	}
	return ps
}

// OutShape implements Layer.
func (l *Seq) OutShape(in []int) []int {
	shape := append([]int(nil), in...)
	for _, c := range l.Children {
		shape = c.OutShape(shape)
	}
	return shape
}

// Forward implements Layer.
func (l *Seq) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	for _, c := range l.Children {
		x = c.Forward(x, ctx)
	}
	return x
}

// Backward implements Layer.
func (l *Seq) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	for i := len(l.Children) - 1; i >= 0; i-- {
		grad = l.Children[i].Backward(grad, ctx)
	}
	return grad
}
