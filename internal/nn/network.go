package nn

import (
	"fmt"

	"deepvalidation/internal/metrics"
	"deepvalidation/internal/tensor"
)

// Network is a feed-forward classifier: a stack of layers whose final
// layer produces a probability vector (paper Eq. 1,
// f(x) = f_L(f_{L-1}(... f_1(x)))). Layer boundaries are the validation
// tap points used by Deep Validation.
type Network struct {
	ModelName string
	InShape   []int
	Classes   int
	Layers    []Layer
}

// NewNetwork assembles a network and verifies that the layer shapes
// chain correctly from the input shape to a Classes-long output.
func NewNetwork(name string, inShape []int, classes int, layers ...Layer) (*Network, error) {
	n := &Network{ModelName: name, InShape: append([]int(nil), inShape...), Classes: classes, Layers: layers}
	shape := inShape
	for _, l := range layers {
		func() {
			defer func() {
				if r := recover(); r != nil {
					panic(fmt.Sprintf("nn: layer %q rejects input %v: %v", l.Name(), shape, r))
				}
			}()
			shape = l.OutShape(shape)
		}()
	}
	if len(shape) != 1 || shape[0] != classes {
		return nil, fmt.Errorf("nn: network %q produces shape %v, want [%d]", name, shape, classes)
	}
	seen := make(map[string]bool, len(layers))
	for _, l := range layers {
		if seen[l.Name()] {
			return nil, fmt.Errorf("nn: duplicate layer name %q in network %q", l.Name(), name)
		}
		seen[l.Name()] = true
	}
	return n, nil
}

// NumLayers returns the number of tap-level layers (the paper's L).
func (n *Network) NumLayers() int { return len(n.Layers) }

// Params returns all learnable parameters in layer order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ParamCount returns the total number of scalar parameters.
func (n *Network) ParamCount() int {
	c := 0
	for _, p := range n.Params() {
		c += p.Value.Len()
	}
	return c
}

// ForwardCtx runs one sample through the network within ctx, returning
// the output probability vector.
func (n *Network) ForwardCtx(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, ctx)
	}
	return x
}

// Forward runs one sample through the network in inference mode.
func (n *Network) Forward(x *tensor.Tensor) *tensor.Tensor {
	return n.ForwardCtx(x, NewContext(false, nil))
}

// ForwardTapped runs one sample through the network in inference mode
// and returns both the output probabilities and every layer's output
// (taps[i] is the output of Layers[i]; taps[len-1] aliases the returned
// probabilities). This is the single-pass probe Deep Validation's
// Algorithm 2 relies on: hidden representations come for free with the
// prediction.
func (n *Network) ForwardTapped(x *tensor.Tensor) (probs *tensor.Tensor, taps []*tensor.Tensor) {
	taps = make([]*tensor.Tensor, 0, len(n.Layers))
	ctx := NewContext(false, nil)
	for _, l := range n.Layers {
		x = l.Forward(x, ctx)
		taps = append(taps, x)
	}
	return x, taps
}

// TapShapes returns the output shape of every tap-level layer for an
// input of the given shape, without running any data through the
// network. Deep Validation uses it to size its feature reducers before
// fanning the tapped forward passes across workers.
func (n *Network) TapShapes(in []int) [][]int {
	shapes := make([][]int, 0, len(n.Layers))
	shape := in
	for _, l := range n.Layers {
		shape = l.OutShape(shape)
		shapes = append(shapes, shape)
	}
	return shapes
}

// Logits runs one sample and returns the pre-softmax activations,
// assuming the final layer is (or ends with) a softmax. The white-box
// attacks of Section IV-D5 need these.
func (n *Network) Logits(x *tensor.Tensor) *tensor.Tensor {
	return n.ForwardToLogits(x, NewContext(false, nil))
}

// preSoftmax splits the computation of the final tap layer into the
// units to run before the softmax. It returns nil when the last unit is
// not a softmax (the network then has no separate logit stage).
func (n *Network) preSoftmax() []Layer {
	last := n.Layers[len(n.Layers)-1]
	if seq, ok := last.(*Seq); ok {
		if len(seq.Children) > 0 {
			if _, isSM := seq.Children[len(seq.Children)-1].(*Softmax); isSM {
				return seq.Children[:len(seq.Children)-1]
			}
		}
		return nil
	}
	if _, isSM := last.(*Softmax); isSM {
		return []Layer{}
	}
	return nil
}

// ForwardToLogits runs one sample up to (but excluding) the final
// softmax within ctx, returning the logits z (paper Section II-A). A
// later BackwardFromLogits with the same ctx propagates a logit
// gradient back to the input. It panics if the network does not end in
// a softmax, which is a programmer error for the classifiers here.
func (n *Network) ForwardToLogits(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	pre := n.preSoftmax()
	if pre == nil {
		panic(fmt.Sprintf("nn: network %q does not end in a softmax layer", n.ModelName))
	}
	for _, l := range n.Layers[:len(n.Layers)-1] {
		x = l.Forward(x, ctx)
	}
	for _, l := range pre {
		x = l.Forward(x, ctx)
	}
	return x
}

// BackwardFromLogits propagates grad (with respect to the logits) back
// to the input; ForwardToLogits must have been called with the same
// ctx.
func (n *Network) BackwardFromLogits(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	pre := n.preSoftmax()
	if pre == nil {
		panic(fmt.Sprintf("nn: network %q does not end in a softmax layer", n.ModelName))
	}
	for i := len(pre) - 1; i >= 0; i-- {
		grad = pre[i].Backward(grad, ctx)
	}
	for i := len(n.Layers) - 2; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad, ctx)
	}
	return grad
}

// Predict returns the predicted class label and its confidence for one
// sample.
func (n *Network) Predict(x *tensor.Tensor) (label int, confidence float64) {
	p := n.Forward(x)
	label = p.ArgMax()
	return label, p.Data[label]
}

// Backward propagates grad (with respect to the network output) back to
// the input, accumulating parameter gradients into ctx. ForwardCtx must
// have been called with the same ctx first.
func (n *Network) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad, ctx)
	}
	return grad
}

// InputGradient returns the gradient of the cross-entropy loss at the
// given label with respect to the input — the core primitive behind
// FGSM/BIM/JSMA.
func (n *Network) InputGradient(x *tensor.Tensor, label int) *tensor.Tensor {
	ctx := NewContext(false, nil)
	probs := n.ForwardCtx(x, ctx)
	_, grad := CrossEntropy(probs, label)
	return n.Backward(grad, ctx)
}

// Calibrate refreshes the running statistics of any BatchNorm layers by
// streaming the given samples through the network single-threaded. It
// is a no-op for networks without such layers.
func (n *Network) Calibrate(xs []*tensor.Tensor) {
	for _, x := range xs {
		ctx := NewCalibrationContext()
		n.ForwardCtx(x, ctx)
	}
}

// Accuracy evaluates top-1 accuracy and mean top-1 confidence over a
// labelled set, exactly the two columns of paper Table III.
func (n *Network) Accuracy(xs []*tensor.Tensor, ys []int) (accuracy, meanConfidence float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	correct := 0
	confSum := 0.0
	for i, x := range xs {
		label, conf := n.Predict(x)
		if label == ys[i] {
			correct++
		}
		confSum += conf
	}
	return float64(correct) / float64(len(xs)), confSum / float64(len(xs))
}

// Confusion builds the multi-class confusion matrix of the network over
// a labelled set.
func (n *Network) Confusion(xs []*tensor.Tensor, ys []int) *metrics.ClassConfusion {
	c := metrics.NewClassConfusion(n.Classes)
	for i, x := range xs {
		pred, _ := n.Predict(x)
		c.Add(ys[i], pred)
	}
	return c
}
