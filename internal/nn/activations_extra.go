package nn

import (
	"math"

	"deepvalidation/internal/tensor"
)

// Sigmoid applies 1/(1+e^{−x}) elementwise. The reference
// architectures use ReLU, but custom models assembled from this
// package may prefer saturating activations.
type Sigmoid struct {
	LayerName string
}

// NewSigmoid constructs a sigmoid activation layer.
func NewSigmoid(name string) *Sigmoid { return &Sigmoid{LayerName: name} }

// Name implements Layer.
func (l *Sigmoid) Name() string { return l.LayerName }

// Params implements Layer.
func (l *Sigmoid) Params() []*Param { return nil }

// OutShape implements Layer.
func (l *Sigmoid) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Layer.
func (l *Sigmoid) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	out := x.Map(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	ctx.put(l, out.Clone())
	return out
}

// Backward implements Layer.
func (l *Sigmoid) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	yv, ok := ctx.get(l)
	if !ok {
		panic("nn: " + l.LayerName + ": Backward before Forward")
	}
	y := yv.(*tensor.Tensor)
	out := grad.Clone()
	for i, g := range out.Data {
		out.Data[i] = g * y.Data[i] * (1 - y.Data[i])
	}
	return out
}

// Tanh applies the hyperbolic tangent elementwise.
type Tanh struct {
	LayerName string
}

// NewTanh constructs a tanh activation layer.
func NewTanh(name string) *Tanh { return &Tanh{LayerName: name} }

// Name implements Layer.
func (l *Tanh) Name() string { return l.LayerName }

// Params implements Layer.
func (l *Tanh) Params() []*Param { return nil }

// OutShape implements Layer.
func (l *Tanh) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Layer.
func (l *Tanh) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	out := x.Map(math.Tanh)
	ctx.put(l, out.Clone())
	return out
}

// Backward implements Layer.
func (l *Tanh) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	yv, ok := ctx.get(l)
	if !ok {
		panic("nn: " + l.LayerName + ": Backward before Forward")
	}
	y := yv.(*tensor.Tensor)
	out := grad.Clone()
	for i, g := range out.Data {
		out.Data[i] = g * (1 - y.Data[i]*y.Data[i])
	}
	return out
}

// LeakyReLU applies max(x, αx) elementwise, avoiding dead units in
// very narrow models.
type LeakyReLU struct {
	LayerName string
	Alpha     float64
}

// NewLeakyReLU constructs a leaky ReLU with slope alpha on the negative
// side.
func NewLeakyReLU(name string, alpha float64) *LeakyReLU {
	return &LeakyReLU{LayerName: name, Alpha: alpha}
}

// Name implements Layer.
func (l *LeakyReLU) Name() string { return l.LayerName }

// Params implements Layer.
func (l *LeakyReLU) Params() []*Param { return nil }

// OutShape implements Layer.
func (l *LeakyReLU) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Layer.
func (l *LeakyReLU) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	mask := make([]bool, x.Len())
	out := x.Clone()
	for i, v := range out.Data {
		if v > 0 {
			mask[i] = true
		} else {
			out.Data[i] = l.Alpha * v
		}
	}
	ctx.put(l, mask)
	return out
}

// Backward implements Layer.
func (l *LeakyReLU) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	mv, ok := ctx.get(l)
	if !ok {
		panic("nn: " + l.LayerName + ": Backward before Forward")
	}
	mask := mv.([]bool)
	out := grad.Clone()
	for i := range out.Data {
		if !mask[i] {
			out.Data[i] *= l.Alpha
		}
	}
	return out
}

// Interface compliance checks.
var (
	_ Layer = (*Sigmoid)(nil)
	_ Layer = (*Tanh)(nil)
	_ Layer = (*LeakyReLU)(nil)
)
