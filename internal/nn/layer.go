// Package nn is a from-scratch convolutional neural network substrate:
// layers, backpropagation, a concurrent trainer, and model serialization.
//
// It exists because Deep Validation instruments a *trained* CNN: the
// framework needs per-layer activation taps during inference (paper
// Algorithm 2) and input gradients for the white-box attacks of the
// evaluation (Section IV-D5). Both fall out of the Layer contract below.
//
// Concurrency model: layers hold parameters but no per-call state. All
// forward caches and per-sample parameter gradients live in a Context,
// so any number of samples can flow through the same network
// concurrently. The trainer reduces per-worker gradients in fixed
// parameter order, keeping training deterministic for a given seed.
package nn

import (
	"math/rand"

	"deepvalidation/internal/tensor"
)

// Param is a single learnable tensor with a stable name for
// serialization and optimizer state lookup.
type Param struct {
	Name  string
	Value *tensor.Tensor
}

// Layer is one component of a network. Forward computes the layer output
// for a single sample, recording whatever Backward will need in ctx.
// Backward consumes the upstream gradient, accumulates parameter
// gradients into ctx, and returns the gradient with respect to the
// layer input.
type Layer interface {
	// Name returns a short human-readable identifier, unique within a
	// network (the builder enforces uniqueness by suffixing).
	Name() string
	// OutShape returns the output shape for a given input shape,
	// allowing architectures to be assembled without running data
	// through them.
	OutShape(in []int) []int
	// Forward computes the output for one sample.
	Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor
	// Backward computes the input gradient for one sample; it must be
	// called after Forward with the same Context.
	Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor
	// Params returns the learnable parameters, or nil for stateless
	// layers.
	Params() []*Param
}

// Context carries per-sample forward caches and parameter gradients.
// A Context must not be shared between concurrently processed samples.
type Context struct {
	train     bool
	calibrate bool
	rng       *rand.Rand
	cache     map[Layer]any
	grads     map[*Param]*tensor.Tensor
}

// NewContext returns a Context for one forward/backward pass.
// train selects training behaviour (e.g. dropout active); rng supplies
// any stochastic layers and may be nil when train is false.
func NewContext(train bool, rng *rand.Rand) *Context {
	return &Context{
		train: train,
		rng:   rng,
		cache: make(map[Layer]any),
		grads: make(map[*Param]*tensor.Tensor),
	}
}

// NewCalibrationContext returns a Context for a statistics-calibration
// forward pass: layers with running statistics (BatchNorm) fold the
// sample into them. Calibration passes must run single-threaded.
func NewCalibrationContext() *Context {
	c := NewContext(false, nil)
	c.calibrate = true
	return c
}

// Training reports whether this pass runs in training mode.
func (c *Context) Training() bool { return c.train }

// Calibrating reports whether this pass should refresh running
// statistics.
func (c *Context) Calibrating() bool { return c.calibrate }

// Rand returns the context's random source (nil in inference contexts
// that were created without one).
func (c *Context) Rand() *rand.Rand { return c.rng }

// put stores a layer's forward cache.
func (c *Context) put(l Layer, v any) { c.cache[l] = v }

// get retrieves a layer's forward cache; ok is false if Forward was not
// called for l in this context.
func (c *Context) get(l Layer) (any, bool) {
	v, ok := c.cache[l]
	return v, ok
}

// AddGrad accumulates g into the gradient slot for p, allocating it on
// first use.
func (c *Context) AddGrad(p *Param, g *tensor.Tensor) {
	if acc, ok := c.grads[p]; ok {
		acc.AddInPlace(g)
		return
	}
	c.grads[p] = g.Clone()
}

// Grad returns the accumulated gradient for p, or nil if none was
// recorded.
func (c *Context) Grad(p *Param) *tensor.Tensor { return c.grads[p] }

// MergeGradsInto adds this context's parameter gradients into dst,
// keyed by parameter, allocating slots as needed. The caller controls
// iteration determinism by supplying the parameter order.
func (c *Context) MergeGradsInto(dst map[*Param]*tensor.Tensor, params []*Param) {
	for _, p := range params {
		g, ok := c.grads[p]
		if !ok {
			continue
		}
		if acc, ok := dst[p]; ok {
			acc.AddInPlace(g)
		} else {
			dst[p] = g.Clone()
		}
	}
}

// ResetGrads clears accumulated gradients but keeps forward caches,
// letting one context be reused across samples within a worker.
func (c *Context) ResetGrads() {
	for k := range c.grads {
		delete(c.grads, k)
	}
}

// ResetCache clears forward caches between samples.
func (c *Context) ResetCache() {
	for k := range c.cache {
		delete(c.cache, k)
	}
}
