package nn

import (
	"fmt"

	"deepvalidation/internal/tensor"
)

// Flatten reshapes a (C,H,W) activation to a flat vector so dense layers
// can follow convolutional ones.
type Flatten struct {
	LayerName string
}

// NewFlatten constructs a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{LayerName: name} }

// Name implements Layer.
func (l *Flatten) Name() string { return l.LayerName }

// Params implements Layer.
func (l *Flatten) Params() []*Param { return nil }

// OutShape implements Layer.
func (l *Flatten) OutShape(in []int) []int {
	n := 1
	for _, d := range in {
		n *= d
	}
	return []int{n}
}

// Forward implements Layer.
func (l *Flatten) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	ctx.put(l, x.Shape)
	return x.Reshape(x.Len())
}

// Backward implements Layer.
func (l *Flatten) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	sv, ok := ctx.get(l)
	if !ok {
		panic("nn: " + l.LayerName + ": Backward before Forward")
	}
	return grad.Reshape(sv.([]int)...)
}

// Dropout zeroes a random fraction Rate of activations during training
// and scales survivors by 1/(1-Rate) (inverted dropout), so inference
// needs no rescaling. In inference contexts it is the identity.
type Dropout struct {
	LayerName string
	Rate      float64
}

// NewDropout constructs a dropout layer; rate must be in [0, 1).
func NewDropout(name string, rate float64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v outside [0,1)", rate))
	}
	return &Dropout{LayerName: name, Rate: rate}
}

// Name implements Layer.
func (l *Dropout) Name() string { return l.LayerName }

// Params implements Layer.
func (l *Dropout) Params() []*Param { return nil }

// OutShape implements Layer.
func (l *Dropout) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Layer.
func (l *Dropout) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	if !ctx.Training() || l.Rate == 0 {
		ctx.put(l, []float64(nil))
		return x
	}
	rng := ctx.Rand()
	if rng == nil {
		panic("nn: " + l.LayerName + ": training context has no random source")
	}
	keep := 1 - l.Rate
	scale := 1 / keep
	mask := make([]float64, x.Len())
	out := x.Clone()
	for i := range out.Data {
		if rng.Float64() < keep {
			mask[i] = scale
			out.Data[i] *= scale
		} else {
			out.Data[i] = 0
		}
	}
	ctx.put(l, mask)
	return out
}

// Backward implements Layer.
func (l *Dropout) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	mv, ok := ctx.get(l)
	if !ok {
		panic("nn: " + l.LayerName + ": Backward before Forward")
	}
	mask := mv.([]float64)
	if mask == nil {
		return grad
	}
	out := grad.Clone()
	for i, m := range mask {
		out.Data[i] *= m
	}
	return out
}
