package nn

import (
	"fmt"
	"math/rand"

	"deepvalidation/internal/tensor"
)

// DenseBlock is a densely connected block in the DenseNet style (Huang
// et al., CVPR 2017): each internal convolution sees the channel
// concatenation of the block input and every earlier convolution's
// output, and the block output is the full concatenation.
//
// Paper Section IV-C leans on exactly this property: "thanks to the
// dense inter-connections between layers ... errors [that] happen in
// the early layers can also smoothly propagate to the latter ones",
// which justifies validating only the rear layers of the CIFAR-10
// model. The block is a single validation tap.
type DenseBlock struct {
	LayerName string
	InC       int
	Growth    int
	NConv     int
	Norms     []*BatchNorm
	Convs     []*Conv2D
}

// NewDenseBlock constructs a dense block with nConv BN→ReLU→Conv3×3
// sub-layers of the given growth rate.
func NewDenseBlock(name string, inC, growth, nConv int, rng *rand.Rand) *DenseBlock {
	b := &DenseBlock{LayerName: name, InC: inC, Growth: growth, NConv: nConv}
	for i := 0; i < nConv; i++ {
		c := inC + i*growth
		b.Norms = append(b.Norms, NewBatchNorm(fmt.Sprintf("%s.bn%d", name, i), c))
		b.Convs = append(b.Convs, NewConv2D(fmt.Sprintf("%s.conv%d", name, i), c, growth, 3, 1, 1, rng))
	}
	return b
}

// Name implements Layer.
func (l *DenseBlock) Name() string { return l.LayerName }

// Params implements Layer.
func (l *DenseBlock) Params() []*Param {
	var ps []*Param
	for i := range l.Convs {
		ps = append(ps, l.Norms[i].Params()...)
		ps = append(ps, l.Convs[i].Params()...)
	}
	return ps
}

// OutC returns the number of output channels of the block.
func (l *DenseBlock) OutC() int { return l.InC + l.NConv*l.Growth }

// OutShape implements Layer.
func (l *DenseBlock) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != l.InC {
		panic(fmt.Sprintf("nn: %s expects input (%d,H,W), got %v", l.LayerName, l.InC, in))
	}
	return []int{l.OutC(), in[1], in[2]}
}

// Forward implements Layer.
func (l *DenseBlock) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	cat := x
	for i := range l.Convs {
		h := l.Norms[i].Forward(cat, ctx)
		h = reluForwardKeyed(l, i, h, ctx)
		out := l.Convs[i].Forward(h, ctx)
		cat = concatChannels(cat, out)
	}
	ctx.put(l, x.Shape)
	return cat
}

// Backward implements Layer.
func (l *DenseBlock) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	if _, ok := ctx.get(l); !ok {
		panic("nn: " + l.LayerName + ": Backward before Forward")
	}
	h, w := grad.Shape[1], grad.Shape[2]
	area := h * w

	// acc holds the gradient with respect to the final concatenation
	// [x, out_0, ..., out_{n-1}]; peeling sub-layers from the back
	// accumulates their input gradients into the prefix.
	acc := grad.Clone()
	for i := l.NConv - 1; i >= 0; i-- {
		prefixC := l.InC + i*l.Growth
		gOut := tensor.From(acc.Data[prefixC*area:(prefixC+l.Growth)*area], l.Growth, h, w)
		g := l.Convs[i].Backward(gOut, ctx)
		g = reluBackwardKeyed(l, i, g, ctx)
		g = l.Norms[i].Backward(g, ctx)
		prefix := tensor.From(acc.Data[:prefixC*area], prefixC, h, w)
		prefix.AddInPlace(g)
		acc = tensor.From(acc.Data[:prefixC*area], prefixC, h, w)
	}
	return acc
}

// reluForwardKeyed applies ReLU, caching the mask under a composite key
// so each sub-layer's mask is distinct within the block.
func reluForwardKeyed(l *DenseBlock, i int, x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	mask := make([]bool, x.Len())
	out := x.Clone()
	for j, v := range out.Data {
		if v > 0 {
			mask[j] = true
		} else {
			out.Data[j] = 0
		}
	}
	ctx.put(blockReluKey{block: l, idx: i}, mask)
	return out
}

func reluBackwardKeyed(l *DenseBlock, i int, grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	mv, ok := ctx.get(blockReluKey{block: l, idx: i})
	if !ok {
		panic("nn: " + l.LayerName + ": ReLU Backward before Forward")
	}
	mask := mv.([]bool)
	out := grad.Clone()
	for j := range out.Data {
		if !mask[j] {
			out.Data[j] = 0
		}
	}
	return out
}

// blockReluKey lets a DenseBlock cache several ReLU masks in one
// Context. It satisfies Layer only so it can be used as a cache key;
// none of its methods are ever called.
type blockReluKey struct {
	block *DenseBlock
	idx   int
}

func (blockReluKey) Name() string                                         { return "denseblock.relu" }
func (blockReluKey) OutShape(in []int) []int                              { return in }
func (blockReluKey) Forward(x *tensor.Tensor, _ *Context) *tensor.Tensor  { return x }
func (blockReluKey) Backward(g *tensor.Tensor, _ *Context) *tensor.Tensor { return g }
func (blockReluKey) Params() []*Param                                     { return nil }

// concatChannels concatenates two (C,H,W) tensors along the channel
// axis; spatial dimensions must agree.
func concatChannels(a, b *tensor.Tensor) *tensor.Tensor {
	if a.Shape[1] != b.Shape[1] || a.Shape[2] != b.Shape[2] {
		panic(fmt.Sprintf("nn: concatChannels spatial mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := tensor.New(a.Shape[0]+b.Shape[0], a.Shape[1], a.Shape[2])
	copy(out.Data, a.Data)
	copy(out.Data[a.Len():], b.Data)
	return out
}

// NewTransition constructs the DenseNet between-block unit — BN → ReLU
// → 1×1 Conv (channel compression) → 2×2 average pooling — as a single
// composite validation tap.
func NewTransition(name string, inC, outC int, rng *rand.Rand) *Seq {
	return NewSeq(name,
		NewBatchNorm(name+".bn", inC),
		NewReLU(name+".relu"),
		NewConv2D(name+".conv", inC, outC, 1, 1, 0, rng),
		NewAvgPool2D(name+".pool", 2, 2),
	)
}
