package nn

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"deepvalidation/internal/tensor"
)

// stepOptimizer is a plain SGD step defined locally so the nn tests do
// not depend on internal/opt.
type stepOptimizer struct{ lr float64 }

func (o stepOptimizer) Step(_ string, value, grad *tensor.Tensor) {
	value.AxpyInPlace(-o.lr, grad)
}

// toyProblem builds a linearly separable 3-class problem on 1×6×6
// images: class k has a bright horizontal band in rows 2k..2k+1.
func toyProblem(rng *rand.Rand, n int) (xs []*tensor.Tensor, ys []int) {
	for i := 0; i < n; i++ {
		k := rng.Intn(3)
		img := tensor.New(1, 6, 6).FillUniform(rng, 0, 0.2)
		for y := 2 * k; y < 2*k+2; y++ {
			for x := 0; x < 6; x++ {
				img.Set(0.8+0.2*rng.Float64(), 0, y, x)
			}
		}
		xs = append(xs, img)
		ys = append(ys, k)
	}
	return xs, ys
}

func toyTrainer(t *testing.T, seed int64, workers int) (*Trainer, []*tensor.Tensor, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net, err := NewSevenLayerCNN("toy", 1, 6, 3, ArchConfig{Width: 2, FCWidth: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := toyProblem(rng, 120)
	tr := NewTrainer(net, stepOptimizer{lr: 0.2}, rand.New(rand.NewSource(seed+1)))
	tr.BatchSize = 16
	tr.Workers = workers
	return tr, xs, ys
}

func TestTrainerLearnsToyProblem(t *testing.T) {
	tr, xs, ys := toyTrainer(t, 100, 4)
	stats, err := tr.Train(xs, ys, 15)
	if err != nil {
		t.Fatal(err)
	}
	final := stats[len(stats)-1]
	if final.Accuracy < 0.95 {
		t.Fatalf("training accuracy after %d epochs = %v, want ≥ 0.95", len(stats), final.Accuracy)
	}
	if final.MeanLoss >= stats[0].MeanLoss {
		t.Fatalf("loss did not decrease: %v -> %v", stats[0].MeanLoss, final.MeanLoss)
	}
	// Generalization to fresh draws from the same distribution.
	testX, testY := toyProblem(rand.New(rand.NewSource(999)), 60)
	acc, _ := tr.Net.Accuracy(testX, testY)
	if acc < 0.9 {
		t.Fatalf("test accuracy = %v, want ≥ 0.9", acc)
	}
}

func TestTrainerDeterministicGivenSeed(t *testing.T) {
	run := func() []float64 {
		tr, xs, ys := toyTrainer(t, 200, 3)
		if _, err := tr.Train(xs, ys, 2); err != nil {
			t.Fatal(err)
		}
		var out []float64
		for _, p := range tr.Net.Params() {
			out = append(out, p.Value.Data...)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parameter %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTrainerBatchStepWorkerCountIndependent(t *testing.T) {
	// One full-set batch step must produce the same parameters whatever
	// the worker count — fan-out only changes float summation order.
	paramsAfterOneBatch := func(workers int) []float64 {
		tr, xs, ys := toyTrainer(t, 300, workers)
		tr.BatchSize = len(xs) // a single batch per epoch
		if _, err := tr.Train(xs, ys, 1); err != nil {
			t.Fatal(err)
		}
		var out []float64
		for _, p := range tr.Net.Params() {
			out = append(out, p.Value.Data...)
		}
		return out
	}
	a1, a4 := paramsAfterOneBatch(1), paramsAfterOneBatch(4)
	for i := range a1 {
		if math.Abs(a1[i]-a4[i]) > 1e-9 {
			t.Fatalf("param %d differs across worker counts: %v vs %v", i, a1[i], a4[i])
		}
	}
}

func TestTrainerInputValidation(t *testing.T) {
	tr, xs, ys := toyTrainer(t, 400, 1)
	if _, err := tr.Train(nil, nil, 1); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := tr.Train(xs, ys[:len(ys)-1], 1); err == nil {
		t.Error("mismatched labels accepted")
	}
	bad := append([]int(nil), ys...)
	bad[0] = 7
	if _, err := tr.Train(xs, bad, 1); err == nil {
		t.Error("out-of-range label accepted")
	}
	tr.BatchSize = 0
	if _, err := tr.Train(xs, ys, 1); err == nil {
		t.Error("zero batch size accepted")
	}
}

func TestTrainerOnEpochCallback(t *testing.T) {
	tr, xs, ys := toyTrainer(t, 500, 2)
	var calls int
	tr.OnEpoch = func(epoch int, loss, acc float64) {
		if epoch != calls {
			t.Errorf("epoch %d reported out of order", epoch)
		}
		calls++
	}
	if _, err := tr.Train(xs, ys, 3); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("OnEpoch called %d times, want 3", calls)
	}
}

func TestTrainerBatchLargerThanSet(t *testing.T) {
	tr, xs, ys := toyTrainer(t, 600, 4)
	tr.BatchSize = 1000 // larger than the 120-sample set
	if _, err := tr.Train(xs, ys, 1); err != nil {
		t.Fatal(err)
	}
}

func TestTrainerWithDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	net, err := NewSevenLayerCNN("toy", 1, 6, 3, ArchConfig{Width: 2, FCWidth: 8, Dropout: 0.25}, rng)
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := toyProblem(rng, 120)
	tr := NewTrainer(net, stepOptimizer{lr: 0.2}, rand.New(rand.NewSource(701)))
	tr.BatchSize = 16
	tr.Workers = 4
	stats, err := tr.Train(xs, ys, 20)
	if err != nil {
		t.Fatal(err)
	}
	if stats[len(stats)-1].Accuracy < 0.8 {
		t.Fatalf("dropout training accuracy = %v, want ≥ 0.8", stats[len(stats)-1].Accuracy)
	}
}

func TestTrainerWeightDecayShrinksWeights(t *testing.T) {
	weightNorm := func(decay float64) float64 {
		tr, xs, ys := toyTrainer(t, 800, 2)
		tr.WeightDecay = decay
		if _, err := tr.Train(xs, ys, 8); err != nil {
			t.Fatal(err)
		}
		norm := 0.0
		for _, p := range tr.Net.Params() {
			if strings.HasSuffix(p.Name, ".weight") {
				norm += p.Value.Dot(p.Value)
			}
		}
		return norm
	}
	plain := weightNorm(0)
	decayed := weightNorm(0.05)
	if decayed >= plain {
		t.Fatalf("weight decay did not shrink weights: %v vs %v", decayed, plain)
	}
}

func TestTrainerClipNormBoundsUpdates(t *testing.T) {
	// With an aggressive clip the first update's magnitude is bounded;
	// verify by comparing against a recording optimizer.
	tr, xs, ys := toyTrainer(t, 900, 1)
	maxNorm := 0.0
	tr.ClipNorm = 0.01
	tr.Optimizer = recordingOptimizer{maxNorm: &maxNorm}
	tr.BatchSize = len(xs)
	if _, err := tr.Train(xs, ys, 1); err != nil {
		t.Fatal(err)
	}
	if maxNorm > 0.01+1e-12 {
		t.Fatalf("gradient norm %v exceeded clip bound", maxNorm)
	}
	if maxNorm == 0 {
		t.Fatal("no gradients observed")
	}
}

// recordingOptimizer tracks the largest gradient norm it is handed.
type recordingOptimizer struct{ maxNorm *float64 }

func (o recordingOptimizer) Step(_ string, _, grad *tensor.Tensor) {
	if n := grad.L2Norm(); n > *o.maxNorm {
		*o.maxNorm = n
	}
}
