//go:build race

package nn

// raceDetectorEnabled reports whether this test binary was built with
// -race. The race detector's shadow-memory instrumentation adds heap
// allocations of its own, so testing.AllocsPerRun budgets are
// meaningless under it; the allocation-budget tests skip themselves.
const raceDetectorEnabled = true
