package nn

import (
	"fmt"
	"math/rand"

	"deepvalidation/internal/tensor"
)

// Conv2D is a 2-D convolution over (C,H,W) inputs with symmetric zero
// padding, implemented as im2col followed by a matrix multiply.
type Conv2D struct {
	LayerName   string
	InC, OutC   int
	KH, KW      int
	Stride, Pad int
	Weight      *Param // (OutC, InC*KH*KW)
	Bias        *Param // (OutC)
}

type convCache struct {
	cols    *tensor.Tensor
	inShape []int
}

// NewConv2D constructs a convolution layer with He-initialized weights.
func NewConv2D(name string, inC, outC, k, stride, pad int, rng *rand.Rand) *Conv2D {
	w := tensor.New(outC, inC*k*k).FillHe(rng, inC*k*k)
	b := tensor.New(outC)
	return &Conv2D{
		LayerName: name,
		InC:       inC, OutC: outC,
		KH: k, KW: k,
		Stride: stride, Pad: pad,
		Weight: &Param{Name: name + ".weight", Value: w},
		Bias:   &Param{Name: name + ".bias", Value: b},
	}
}

// Name implements Layer.
func (l *Conv2D) Name() string { return l.LayerName }

// Params implements Layer.
func (l *Conv2D) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// OutShape implements Layer.
func (l *Conv2D) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != l.InC {
		panic(fmt.Sprintf("nn: %s expects input (%d,H,W), got %v", l.LayerName, l.InC, in))
	}
	return []int{
		l.OutC,
		tensor.ConvOutSize(in[1], l.KH, l.Stride, l.Pad),
		tensor.ConvOutSize(in[2], l.KW, l.Stride, l.Pad),
	}
}

// Forward implements Layer.
func (l *Conv2D) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	outShape := l.OutShape(x.Shape)
	cols := tensor.Im2Col(x, l.KH, l.KW, l.Stride, l.Pad)
	out := tensor.MatMul(l.Weight.Value, cols) // (OutC, outH*outW)
	area := outShape[1] * outShape[2]
	for f := 0; f < l.OutC; f++ {
		b := l.Bias.Value.Data[f]
		row := out.Data[f*area : (f+1)*area]
		for i := range row {
			row[i] += b
		}
	}
	ctx.put(l, &convCache{cols: cols, inShape: x.Shape})
	return out.Reshape(outShape...)
}

// Backward implements Layer.
func (l *Conv2D) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	cv, ok := ctx.get(l)
	if !ok {
		panic("nn: " + l.LayerName + ": Backward before Forward")
	}
	cache := cv.(*convCache)
	area := grad.Len() / l.OutC
	g2 := grad.Reshape(l.OutC, area)

	// dW = g2 × colsᵀ ; db = row sums of g2.
	dW := tensor.MatMulTransB(g2, cache.cols)
	ctx.AddGrad(l.Weight, dW)
	db := tensor.New(l.OutC)
	for f := 0; f < l.OutC; f++ {
		s := 0.0
		for _, v := range g2.Data[f*area : (f+1)*area] {
			s += v
		}
		db.Data[f] = s
	}
	ctx.AddGrad(l.Bias, db)

	// dX via cols gradient scattered back through Col2Im.
	dCols := tensor.MatMulTransA(l.Weight.Value, g2)
	in := cache.inShape
	return tensor.Col2Im(dCols, in[0], in[1], in[2], l.KH, l.KW, l.Stride, l.Pad)
}
