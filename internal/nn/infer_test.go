package nn

import (
	"math"
	"math/rand"
	"testing"

	"deepvalidation/internal/tensor"
)

// allLayerNet builds a network that routes through every inference-path
// specialization: a stride-1 conv (direct-convolution path), a stride-2
// conv (im2col fallback), a 2×2/2 max pool on even dims (unrolled fast
// path), max and avg pools hitting the generic loops, BatchNorm,
// DenseBlock, Seq nesting, every activation, Dropout, Flatten, Dense,
// and Softmax.
func allLayerNet(t *testing.T) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(2024))
	net, err := NewNetwork("all-layers", []int{2, 13, 13}, 4,
		NewConv2D("conv_s1", 2, 4, 3, 1, 1, rng), // 4×13×13, direct path
		NewBatchNorm("bn1", 4),
		NewReLU("relu1"),
		NewConv2D("conv_s2", 4, 6, 3, 2, 1, rng), // 6×7×7, im2col path
		NewLeakyReLU("lrelu", 0.1),
		NewSeq("block",
			NewConv2D("conv_k1", 6, 6, 1, 1, 0, rng), // 1×1 kernel, direct
			NewTanh("tanh"),
		),
		NewMaxPool2D("pool_odd", 2, 2),     // 7×7 odd input → generic pool
		NewDenseBlock("dense_block", 6, 4, 2, rng),
		NewConv2D("conv_pad0", 14, 8, 3, 1, 0, rng), // pad 0, direct → 8×1×1... careful
		NewSigmoid("sigmoid"),
		NewFlatten("flatten"),
		NewDropout("dropout", 0.5),
		NewDense("fc", 8, 4, rng),
		NewSoftmax("softmax"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// evenPoolNet exercises the 2×2 stride-2 max-pool fast path on even
// spatial dims plus AvgPool and GlobalAvgPool inference paths.
func evenPoolNet(t *testing.T) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(2025))
	net, err := NewNetwork("pools", []int{1, 12, 12}, 3,
		NewConv2D("conv", 1, 5, 3, 1, 1, rng), // 5×12×12
		NewMaxPool2D("maxpool_even", 2, 2),    // even dims → fast path
		NewAvgPool2D("avgpool", 2, 2),         // 5×3×3
		NewGlobalAvgPool("gap"),               // 5
		NewDense("fc", 5, 3, rng),
		NewSoftmax("softmax"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func randImage(rng *rand.Rand, shape []int) *tensor.Tensor {
	x := tensor.New(shape...)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

func assertTensorBits(t *testing.T, name string, got, want *tensor.Tensor) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v, want %v", name, got.Shape, want.Shape)
	}
	for i := range want.Data {
		g, w := got.Data[i], want.Data[i]
		if math.Float64bits(g) != math.Float64bits(w) && !(math.IsNaN(g) && math.IsNaN(w)) {
			t.Fatalf("%s: [%d] got %x want %x", name, i, math.Float64bits(g), math.Float64bits(w))
		}
	}
}

// TestForwardTappedScratchBitEquivalent is the nn-side differential
// battery: the scratch-arena inference pass must reproduce the
// allocating ForwardTapped bit-for-bit — probabilities and every tap —
// across repeated passes on the same warm arena (so buffer reuse can
// never leak stale data) and across every layer specialization.
func TestForwardTappedScratchBitEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, tc := range []struct {
		name string
		net  *Network
	}{
		{"all-layers", allLayerNet(t)},
		{"pools", evenPoolNet(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc := NewScratch()
			for pass := 0; pass < 3; pass++ {
				x := randImage(rng, tc.net.InShape)
				wantProbs, wantTaps := tc.net.ForwardTapped(x)
				gotProbs, gotTaps := tc.net.ForwardTappedScratch(x, sc)
				assertTensorBits(t, "probs", gotProbs, wantProbs)
				if len(gotTaps) != len(wantTaps) {
					t.Fatalf("pass %d: %d taps, want %d", pass, len(gotTaps), len(wantTaps))
				}
				for i := range wantTaps {
					assertTensorBits(t, tc.net.Layers[i].Name(), gotTaps[i], wantTaps[i])
				}
			}
		})
	}
}

// TestForwardTappedScratchSpecialInputs runs the equivalence check with
// NaN/±Inf pixels: the direct-convolution and pooling fast paths must
// propagate non-finite activations exactly like the reference pass.
func TestForwardTappedScratchSpecialInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := evenPoolNet(t)
	sc := NewScratch()
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)}
	for pass := 0; pass < 4; pass++ {
		x := randImage(rng, net.InShape)
		for k := 0; k < 8; k++ {
			x.Data[rng.Intn(len(x.Data))] = specials[rng.Intn(len(specials))]
		}
		wantProbs, wantTaps := net.ForwardTapped(x)
		gotProbs, gotTaps := net.ForwardTappedScratch(x, sc)
		assertTensorBits(t, "probs", gotProbs, wantProbs)
		for i := range wantTaps {
			assertTensorBits(t, net.Layers[i].Name(), gotTaps[i], wantTaps[i])
		}
	}
}

// TestForwardTappedScratchSteadyStateAllocs is the arena's allocation
// budget: after one warm-up pass, a tapped scratch forward allocates
// nothing at all.
func TestForwardTappedScratchSteadyStateAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race-detector instrumentation allocates; budgets apply to plain builds")
	}
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		name string
		net  *Network
	}{
		{"all-layers", allLayerNet(t)},
		{"pools", evenPoolNet(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc := NewScratch()
			x := randImage(rng, tc.net.InShape)
			tc.net.ForwardTappedScratch(x, sc) // warm the arena
			if n := testing.AllocsPerRun(20, func() {
				tc.net.ForwardTappedScratch(x, sc)
			}); n != 0 {
				t.Errorf("warm scratch pass allocates %.1f/op, want 0", n)
			}
		})
	}
}

// TestScratchServesTwoNetworks pins the (layer, slot) keying: one arena
// alternating between two networks must keep their buffers apart and
// stay bit-equivalent to the reference on both.
func TestScratchServesTwoNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	netA := allLayerNet(t)
	netB := evenPoolNet(t)
	sc := NewScratch()
	for pass := 0; pass < 2; pass++ {
		xa := randImage(rng, netA.InShape)
		xb := randImage(rng, netB.InShape)
		wantA, _ := netA.ForwardTapped(xa)
		gotA, _ := netA.ForwardTappedScratch(xa, sc)
		assertTensorBits(t, "netA probs", gotA, wantA)
		wantB, _ := netB.ForwardTapped(xb)
		gotB, _ := netB.ForwardTappedScratch(xb, sc)
		assertTensorBits(t, "netB probs", gotB, wantB)
		// netA's results were computed before netB ran on the same
		// arena; recompute to confirm nothing was clobbered in a way
		// that survives to the next pass.
		gotA2, _ := netA.ForwardTappedScratch(xa, sc)
		assertTensorBits(t, "netA probs after netB", gotA2, wantA)
	}
}
