package experiment

import (
	"encoding/gob"
	"fmt"
	"os"

	"deepvalidation/internal/corner"
	"deepvalidation/internal/tensor"
)

// CornerSet is one kept transformation's corner cases over all seeds —
// a row of Table V plus the images behind it. Fields are concrete so
// the corpus serializes with plain gob.
type CornerSet struct {
	Family        string
	Config        string
	Images        []*tensor.Tensor
	SeedLabels    []int
	Preds         []int
	Confs         []float64
	SuccessRate   float64
	MeanWrongConf float64
}

// SCC returns the successful corner cases (misclassified seeds).
func (c CornerSet) SCC() []*tensor.Tensor {
	var out []*tensor.Tensor
	for i, img := range c.Images {
		if c.Preds[i] != c.SeedLabels[i] {
			out = append(out, img)
		}
	}
	return out
}

// FCC returns the failed corner cases.
func (c CornerSet) FCC() []*tensor.Tensor {
	var out []*tensor.Tensor
	for i, img := range c.Images {
		if c.Preds[i] == c.SeedLabels[i] {
			out = append(out, img)
		}
	}
	return out
}

// Corpus is the full evaluation dataset of Section IV-D1 for one
// scenario: every kept transformation's corner cases plus an equally
// sized clean sample.
type Corpus struct {
	Scenario string
	SeedX    []*tensor.Tensor
	SeedY    []int
	// Sets holds the kept single transformations plus the combined one.
	Sets []CornerSet
	// Dropped lists families that never reached the 30% success bar
	// (the "-" rows of Table V).
	Dropped []string
	// CleanX matches the corner-case count with clean test images.
	CleanX []*tensor.Tensor
}

// AllSCC pools the successful corner cases across sets.
func (c *Corpus) AllSCC() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, s := range c.Sets {
		out = append(out, s.SCC()...)
	}
	return out
}

// Set returns the named transformation set, or nil.
func (c *Corpus) Set(family string) *CornerSet {
	for i := range c.Sets {
		if c.Sets[i].Family == family {
			return &c.Sets[i]
		}
	}
	return nil
}

// Corpus synthesizes (or loads) the corner-case evaluation corpus for a
// scenario: the grid search of Section IV-B over all applicable
// families, one combined transformation, and the clean counterpart
// sample.
func (l *Lab) Corpus(s *Scenario) (*Corpus, error) {
	if c, ok := l.corpora[s.Name]; ok {
		return c, nil
	}
	if l.CacheDir != "" {
		if c, err := loadCorpus(l.cachePath("corpus", s.Name)); err == nil {
			l.logf("[%s] loaded cached corpus (%d sets)", s.Name, len(c.Sets))
			l.corpora[s.Name] = c
			return c, nil
		}
	}

	rng := seedRNG(s.Name)
	seedX, seedY, err := corner.SelectSeeds(s.Net, s.Dataset.TestX, s.Dataset.TestY, l.Scale.Seeds, rng)
	if err != nil {
		return nil, fmt.Errorf("experiment: %s: %w", s.Name, err)
	}

	l.logf("[%s] corner-case grid search over %d seeds", s.Name, len(seedX))
	results := corner.Search(s.Net, seedX, seedY, corner.Families(s.Grayscale))
	c := &Corpus{Scenario: s.Name, SeedX: seedX, SeedY: seedY}
	for _, r := range results {
		if !r.Kept {
			c.Dropped = append(c.Dropped, r.Family)
			l.logf("[%s]   %s: dropped (<%.0f%% success)", s.Name, r.Family, 100*corner.MinSuccess)
			continue
		}
		c.Sets = append(c.Sets, toSet(r.Best))
		l.logf("[%s]   %s: %s success %.3f", s.Name, r.Family, r.Best.Transform.Describe(), r.Best.SuccessRate)
	}
	if combined, ok := corner.CombineSearch(s.Net, seedX, seedY, results); ok {
		c.Sets = append(c.Sets, toSet(combined))
		l.logf("[%s]   combined: %s success %.3f", s.Name, combined.Transform.Describe(), combined.SuccessRate)
	}
	if len(c.Sets) == 0 {
		return nil, fmt.Errorf("experiment: %s: no transformation produced corner cases", s.Name)
	}

	// Clean counterpart: as many clean test images as corner cases
	// (Section IV-D1), drawn without replacement where possible.
	total := 0
	for _, set := range c.Sets {
		total += len(set.Images)
	}
	perm := rng.Perm(len(s.Dataset.TestX))
	for i := 0; i < total; i++ {
		c.CleanX = append(c.CleanX, s.Dataset.TestX[perm[i%len(perm)]])
	}

	if l.CacheDir != "" {
		if err := os.MkdirAll(l.CacheDir, 0o755); err != nil {
			return nil, fmt.Errorf("experiment: creating cache dir: %w", err)
		}
		if err := saveCorpus(l.cachePath("corpus", s.Name), c); err != nil {
			return nil, err
		}
	}
	l.corpora[s.Name] = c
	return c, nil
}

func toSet(g corner.Generated) CornerSet {
	return CornerSet{
		Family:        g.Family,
		Config:        g.Transform.Describe(),
		Images:        g.Images,
		SeedLabels:    g.SeedLabels,
		Preds:         g.Preds,
		Confs:         g.Confs,
		SuccessRate:   g.SuccessRate,
		MeanWrongConf: g.MeanWrongConfidence,
	}
}

func saveCorpus(path string, c *Corpus) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiment: saving corpus: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("experiment: closing %s: %w", path, cerr)
		}
	}()
	if err := gob.NewEncoder(f).Encode(c); err != nil {
		return fmt.Errorf("experiment: encoding corpus: %w", err)
	}
	return nil
}

func loadCorpus(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var c Corpus
	if err := gob.NewDecoder(f).Decode(&c); err != nil {
		return nil, fmt.Errorf("experiment: decoding corpus: %w", err)
	}
	return &c, nil
}

// FamilyOrder lists Table V's row order for rendering.
var FamilyOrder = []string{
	"brightness", "contrast", "rotation", "shear",
	"scale", "translation", "complement", "combined",
}
