package experiment

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The quick-scale lab is expensive to build (it trains real models), so
// all tests share one instance. Tests must treat it as read-only.
var labFixture struct {
	once sync.Once
	lab  *Lab
	err  error
}

func quickLab(t *testing.T) *Lab {
	t.Helper()
	labFixture.once.Do(func() {
		dir, err := os.MkdirTemp("", "dv-lab-*")
		if err != nil {
			labFixture.err = err
			return
		}
		labFixture.lab = NewLab(QuickScale(), dir)
	})
	if labFixture.err != nil {
		t.Fatal(labFixture.err)
	}
	return labFixture.lab
}

func TestScenarioDigitsTrainsWell(t *testing.T) {
	l := quickLab(t)
	s, err := l.Scenario("digits")
	if err != nil {
		t.Fatal(err)
	}
	if s.TestAcc < 0.9 {
		t.Fatalf("digits test accuracy %v too low for the detection experiments", s.TestAcc)
	}
	if s.Net.NumLayers() != 7 {
		t.Fatalf("digits model has %d taps, want 7 (Table II)", s.Net.NumLayers())
	}
	if got := len(s.Validator.LayerIdx); got != 6 {
		t.Fatalf("digits validator probes %d layers, want 6", got)
	}
	if !s.Grayscale {
		t.Fatal("digits should be greyscale")
	}
}

func TestScenarioCachedRoundTrip(t *testing.T) {
	l := quickLab(t)
	s1, err := l.Scenario("digits")
	if err != nil {
		t.Fatal(err)
	}
	// A fresh lab over the same cache dir must load, not retrain.
	l2 := NewLab(QuickScale(), l.CacheDir)
	s2, err := l2.Scenario("digits")
	if err != nil {
		t.Fatal(err)
	}
	if s2.TestAcc != s1.TestAcc {
		t.Fatalf("cached accuracy %v != fresh %v", s2.TestAcc, s1.TestAcc)
	}
	x := s1.Dataset.TestX[0]
	a := s1.Validator.Score(s1.Net, x)
	b := s2.Validator.Score(s2.Net, x)
	if a.Joint != b.Joint {
		t.Fatalf("cached validator scores differently: %v vs %v", a.Joint, b.Joint)
	}
}

func TestScenarioUnknownName(t *testing.T) {
	l := quickLab(t)
	if _, err := l.Scenario("imagenet"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestCorpusStructure(t *testing.T) {
	l := quickLab(t)
	s, err := l.Scenario("digits")
	if err != nil {
		t.Fatal(err)
	}
	c, err := l.Corpus(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sets) == 0 {
		t.Fatal("no corner-case sets")
	}
	total := 0
	for _, set := range c.Sets {
		if len(set.Images) != l.Scale.Seeds {
			t.Fatalf("%s has %d images, want %d", set.Family, len(set.Images), l.Scale.Seeds)
		}
		if set.SuccessRate < 0.3 {
			t.Fatalf("%s kept with success %v", set.Family, set.SuccessRate)
		}
		if got := len(set.SCC()) + len(set.FCC()); got != len(set.Images) {
			t.Fatalf("%s SCC+FCC = %d, want %d", set.Family, got, len(set.Images))
		}
		total += len(set.Images)
	}
	if len(c.CleanX) != total {
		t.Fatalf("clean set %d, want %d (Section IV-D1: equal counts)", len(c.CleanX), total)
	}
	// The greyscale scenario must consider complement.
	foundComplement := c.Set("complement") != nil
	droppedComplement := false
	for _, d := range c.Dropped {
		if d == "complement" {
			droppedComplement = true
		}
	}
	if !foundComplement && !droppedComplement {
		t.Fatal("complement neither kept nor dropped on greyscale data")
	}
}

func TestCorpusCachedRoundTrip(t *testing.T) {
	l := quickLab(t)
	s, err := l.Scenario("digits")
	if err != nil {
		t.Fatal(err)
	}
	c1, err := l.Corpus(s)
	if err != nil {
		t.Fatal(err)
	}
	l2 := NewLab(QuickScale(), l.CacheDir)
	s2, err := l2.Scenario("digits")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := l2.Corpus(s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Sets) != len(c1.Sets) {
		t.Fatalf("cached corpus has %d sets, fresh %d", len(c2.Sets), len(c1.Sets))
	}
	if !c2.Sets[0].Images[0].AllClose(c1.Sets[0].Images[0], 0) {
		t.Fatal("cached corpus images differ")
	}
}

func TestTable3(t *testing.T) {
	l := quickLab(t)
	tab, err := l.Table3("digits")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || tab.Rows[0][0] != "digits" {
		t.Fatalf("rows = %v", tab.Rows)
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	if !strings.Contains(buf.String(), "Table III") {
		t.Fatal("render missing title")
	}
}

func TestTable5(t *testing.T) {
	l := quickLab(t)
	tab, err := l.Table5("digits")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 4 {
		t.Fatalf("Table V has %d rows", len(tab.Rows))
	}
	// Success rates parse back into [0.3, 1] for kept rows.
	for _, row := range tab.Rows {
		if row[2] == "-" {
			continue
		}
		if !strings.HasPrefix(row[2], "0.") && !strings.HasPrefix(row[2], "1.") {
			t.Fatalf("unparsable success rate %q", row[2])
		}
	}
}

func TestFigure2WritesImages(t *testing.T) {
	l := quickLab(t)
	dir := t.TempDir()
	files, err := l.Figure2("digits", dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("Figure 2 wrote %d files", len(files))
	}
	for _, f := range files {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", f)
		}
		if filepath.Ext(f) != ".pgm" {
			t.Fatalf("digits figure should be PGM, got %s", f)
		}
	}
}

func TestFigure3SeparatesDistributions(t *testing.T) {
	l := quickLab(t)
	d, err := l.Figure3("digits")
	if err != nil {
		t.Fatal(err)
	}
	if d.MeanSCC <= d.MeanClean {
		t.Fatalf("SCC mean %v not above clean mean %v", d.MeanSCC, d.MeanClean)
	}
	if len(d.CleanHist.Counts) != 200 || len(d.SCCHist.Counts) != 200 {
		t.Fatal("Figure 3 uses 200 histogram bins")
	}
	if d.SuggestEps <= d.MeanClean || d.SuggestEps >= d.MeanSCC {
		t.Fatalf("suggested ε %v outside (%v, %v)", d.SuggestEps, d.MeanClean, d.MeanSCC)
	}
	tab := d.Summary()
	if len(tab.Rows) != 2 {
		t.Fatal("summary should have two rows")
	}
}

func TestTable6Structure(t *testing.T) {
	l := quickLab(t)
	tab, err := l.Table6("digits")
	if err != nil {
		t.Fatal(err)
	}
	// 6 single validators + best + joint.
	if len(tab.Rows) != 8 {
		t.Fatalf("Table VI has %d rows, want 8", len(tab.Rows))
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "Joint Validator" {
		t.Fatalf("last row %v", last)
	}
	// The joint validator's overall AUC (last cell) must be high on the
	// easy digits scenario.
	overall := last[len(last)-1]
	if !(strings.HasPrefix(overall, "0.9") || strings.HasPrefix(overall, "1.0")) {
		t.Fatalf("joint overall AUC %q unexpectedly low", overall)
	}
}

func TestTable7DVBeatsKDE(t *testing.T) {
	l := quickLab(t)
	tab, err := l.Table7("digits")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("Table VII has %d rows, want 3", len(tab.Rows))
	}
	var dv, kde float64
	for _, row := range tab.Rows {
		var v float64
		if _, err := fmtSscan(row[2], &v); err != nil {
			t.Fatalf("unparsable AUC %q", row[2])
		}
		switch row[1] {
		case "Deep Validation":
			dv = v
		case "Kernel Density Estimation":
			kde = v
		}
	}
	// The paper's headline comparison: DV must dominate KDE on
	// real-world corner cases.
	if dv <= kde {
		t.Fatalf("DV AUC %v not above KDE %v", dv, kde)
	}
	if dv < 0.85 {
		t.Fatalf("DV AUC %v too low on digits", dv)
	}
}

func TestFigure4TracksDistortion(t *testing.T) {
	l := quickLab(t)
	pts, err := l.Figure4("digits", 0.059)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 9 {
		t.Fatalf("sweep has %d points, want 9 (ratio 1.0..3.0 step 0.25)", len(pts))
	}
	if pts[0].ScaleRatio != 1.0 || pts[len(pts)-1].ScaleRatio != 3.0 {
		t.Fatal("sweep endpoints wrong")
	}
	// At ratio 1.0 the images are the (correctly classified) seeds.
	if pts[0].SuccessRate != 0 {
		t.Fatalf("success rate at ratio 1.0 = %v, want 0", pts[0].SuccessRate)
	}
	// Deep Validation must detect SCCs well once they exist, and large
	// distortions must produce high success rates.
	lastWithSCC := -1
	for i, p := range pts {
		if p.NumSCC > 0 {
			lastWithSCC = i
		}
	}
	if lastWithSCC < 0 {
		t.Fatal("no scale ratio produced SCCs")
	}
	if rate := pts[lastWithSCC].DVSCCRate; rate < 0.5 {
		t.Fatalf("DV SCC detection rate %v at ratio %v too low", rate, pts[lastWithSCC].ScaleRatio)
	}
	tab := Fig4Table("digits", 0.059, pts)
	if len(tab.Rows) != len(pts) {
		t.Fatal("Fig4Table row count mismatch")
	}
}

func TestAttackSuiteAndTable8(t *testing.T) {
	if testing.Short() {
		t.Skip("attack battery is CPU-heavy; skipped in -short mode")
	}
	l := quickLab(t)
	s, err := l.Scenario("digits")
	if err != nil {
		t.Fatal(err)
	}
	suite, err := l.AttackSuite(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 10 {
		t.Fatalf("attack suite has %d configurations, want 10 (Table VIII)", len(suite))
	}
	for _, o := range suite {
		if got := len(o.SAE) + len(o.FAE); got != l.Scale.AttackSeeds {
			t.Fatalf("%s (%s): %d samples, want %d", o.Method, o.Target, got, l.Scale.AttackSeeds)
		}
	}
	tab, err := l.Table8()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 11 { // 10 configs + overall
		t.Fatalf("Table VIII has %d rows", len(tab.Rows))
	}
	if tab.Rows[10][0] != "Overall" {
		t.Fatalf("missing overall row: %v", tab.Rows[10])
	}
}

func TestAblations(t *testing.T) {
	l := quickLab(t)
	tab, err := l.AblationWeightedJoint("digits")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("weighting ablation rows = %d", len(tab.Rows))
	}
	nuTab, err := l.AblationNu("digits", []float64{0.05, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(nuTab.Rows) != 2 {
		t.Fatalf("nu ablation rows = %d", len(nuTab.Rows))
	}
	rear, err := l.AblationRearLayers("digits")
	if err != nil {
		t.Fatal(err)
	}
	if len(rear.Rows) != 6 {
		t.Fatalf("rear-layer ablation rows = %d, want 6", len(rear.Rows))
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:  "test",
		Header: []string{"a", "long header"},
		Notes:  []string{"a note"},
	}
	tab.AddRow("x", 0.5)
	tab.AddRow(1, "-")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"test", "long header", "0.5000", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestScaleKeyDistinguishesScales(t *testing.T) {
	a := NewLab(QuickScale(), "")
	b := NewLab(FullScale(), "")
	if a.scaleKey() == b.scaleKey() {
		t.Fatal("different scales share a cache key")
	}
}

func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

func TestAblationNormalizedJoint(t *testing.T) {
	l := quickLab(t)
	tab, err := l.AblationNormalizedJoint("digits")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		var v float64
		if _, err := fmt.Sscan(row[1], &v); err != nil {
			t.Fatalf("unparsable AUC %q", row[1])
		}
		if v < 0.7 {
			t.Fatalf("%s AUC %v implausibly low", row[0], v)
		}
	}
}

func TestExtensionNovelTransforms(t *testing.T) {
	l := quickLab(t)
	tab, err := l.ExtensionNovelTransforms("digits")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestRenderHistograms(t *testing.T) {
	l := quickLab(t)
	d, err := l.Figure3("digits")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	d.RenderHistograms(&buf, 60, 8)
	out := buf.String()
	if !strings.Contains(out, "Figure 3") {
		t.Fatal("missing title")
	}
	// Clean marks must appear left of SCC marks on the whole: find the
	// mean column of each mark.
	meanCol := func(mark byte) float64 {
		sum, n := 0, 0
		for _, line := range strings.Split(out, "\n") {
			for i := 0; i < len(line); i++ {
				if line[i] == mark || (mark == '#' && line[i] == 'o') || (mark == 'x' && line[i] == 'o') {
					sum += i
					n++
				}
			}
		}
		if n == 0 {
			return -1
		}
		return float64(sum) / float64(n)
	}
	c, s := meanCol('#'), meanCol('x')
	if c < 0 || s < 0 {
		t.Fatal("one population has no marks")
	}
	if c >= s {
		t.Fatalf("clean marks (col %v) not left of SCC marks (col %v)", c, s)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "b"}, Notes: []string{"n"}}
	tab.AddRow("x", 1.0)
	var buf bytes.Buffer
	tab.RenderMarkdown(&buf)
	out := buf.String()
	for _, want := range []string{"### T", "| a | b |", "| --- | --- |", "| x | 1.0000 |", "*n*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestWriteReport(t *testing.T) {
	l := quickLab(t)
	var buf bytes.Buffer
	err := l.WriteReport(&buf, ReportConfig{
		Scenarios: []string{"digits"},
		Markdown:  true,
		// Attacks and ablations are covered by their own tests; keep
		// the report test light.
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table III", "Table V", "Figure 3", "Table VI", "Table VII", "Figure 4",
		"| --- |",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}
