package experiment

import (
	"fmt"
	"math"
	"path/filepath"

	"deepvalidation/internal/core"
	"deepvalidation/internal/dataset"
	"deepvalidation/internal/imgtrans"
	"deepvalidation/internal/kde"
	"deepvalidation/internal/metrics"
	"deepvalidation/internal/squeeze"
	"deepvalidation/internal/tensor"
)

// Table3 reproduces paper Table III: test accuracy and mean top-1
// prediction confidence. With no arguments it covers all three models;
// passing names restricts the scope (quick tests use the CNN
// scenarios only).
func (l *Lab) Table3(names ...string) (*Table, error) {
	if len(names) == 0 {
		names = ScenarioNames()
	}
	t := &Table{
		Title:  "Table III — model accuracy on test data",
		Header: []string{"Dataset", "Accuracy on Test Data", "Mean Top-1 Prediction Confidence"},
	}
	for _, name := range names {
		s, err := l.Scenario(name)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, s.TestAcc, s.TestConf)
	}
	t.Notes = append(t.Notes,
		"synthetic stand-ins: digits≈MNIST, objects≈CIFAR-10 (DenseNet-lite), streetdigits≈SVHN")
	return t, nil
}

// Table5 reproduces paper Table V for one scenario: the success rate
// and mean wrong-prediction confidence of every transformation family.
func (l *Lab) Table5(name string) (*Table, error) {
	s, err := l.Scenario(name)
	if err != nil {
		return nil, err
	}
	c, err := l.Corpus(s)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Table V — corner-case success rates (%s)", name),
		Header: []string{"Transformation", "Configuration", "Success Rate", "Mean Top-1 Prediction Confidence"},
	}
	for _, fam := range FamilyOrder {
		if set := c.Set(fam); set != nil {
			t.AddRow(fam, set.Config, set.SuccessRate, set.MeanWrongConf)
			continue
		}
		dropped := false
		for _, d := range c.Dropped {
			if d == fam {
				dropped = true
			}
		}
		if dropped || (fam == "complement" && !s.Grayscale) {
			t.AddRow(fam, "-", "-", "-")
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("search stops at %.0f%% success; families below %.0f%% are dropped (Section IV-B)",
			100*0.60, 100*0.30))
	return t, nil
}

// Figure2 exports one example corner case per kept transformation of a
// scenario as PGM/PPM files under dir, reproducing paper Figure 2.
func (l *Lab) Figure2(name, dir string) ([]string, error) {
	s, err := l.Scenario(name)
	if err != nil {
		return nil, err
	}
	c, err := l.Corpus(s)
	if err != nil {
		return nil, err
	}
	ext := ".ppm"
	if s.Grayscale {
		ext = ".pgm"
	}
	var written []string
	// The seed image anchors the figure.
	seedPath := filepath.Join(dir, name+"-seed"+ext)
	if err := dataset.SavePNM(seedPath, c.SeedX[0]); err != nil {
		return nil, err
	}
	written = append(written, seedPath)
	for _, set := range c.Sets {
		// Prefer a successful corner case derived from seed 0's family.
		img := set.Images[0]
		for i := range set.Images {
			if set.Preds[i] != set.SeedLabels[i] {
				img = set.Images[i]
				break
			}
		}
		p := filepath.Join(dir, fmt.Sprintf("%s-%s%s", name, set.Family, ext))
		if err := dataset.SavePNM(p, img); err != nil {
			return nil, err
		}
		written = append(written, p)
	}
	return written, nil
}

// Fig3Data carries Figure 3's discrepancy distributions: normalized
// joint discrepancies of clean images and SCCs plus their histograms.
type Fig3Data struct {
	Scenario   string
	CleanNorm  []float64
	SCCNorm    []float64
	CleanHist  *metrics.Histogram
	SCCHist    *metrics.Histogram
	MeanClean  float64
	MeanSCC    float64
	SuggestEps float64
}

// Figure3 reproduces paper Figure 3 for one scenario: the distribution
// of normalized joint discrepancies for legitimate images versus
// successful corner cases, over 200 histogram bins.
func (l *Lab) Figure3(name string) (*Fig3Data, error) {
	s, err := l.Scenario(name)
	if err != nil {
		return nil, err
	}
	c, err := l.Corpus(s)
	if err != nil {
		return nil, err
	}
	scc := c.AllSCC()
	cleanScores := core.JointScores(l.score(s, c.CleanX))
	sccScores := core.JointScores(l.score(s, scc))

	// Normalize jointly so both curves share the x-axis, as in the
	// paper's plots.
	all := append(append([]float64{}, cleanScores...), sccScores...)
	norm := metrics.Normalize(all)
	cleanNorm := norm[:len(cleanScores)]
	sccNorm := norm[len(cleanScores):]

	ch, err := metrics.NewHistogram(cleanNorm, 200)
	if err != nil {
		return nil, err
	}
	sh, err := metrics.NewHistogram(sccNorm, 200)
	if err != nil {
		return nil, err
	}
	return &Fig3Data{
		Scenario:   name,
		CleanNorm:  cleanNorm,
		SCCNorm:    sccNorm,
		CleanHist:  ch,
		SCCHist:    sh,
		MeanClean:  metrics.Mean(cleanNorm),
		MeanSCC:    metrics.Mean(sccNorm),
		SuggestEps: (metrics.Mean(cleanNorm) + metrics.Mean(sccNorm)) / 2,
	}, nil
}

// Summary renders Figure 3's content as a table (distribution centroids
// and the suggested threshold ε at their midpoint, Section IV-D3).
func (d *Fig3Data) Summary() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 3 — discrepancy distributions (%s)", d.Scenario),
		Header: []string{"Population", "N", "Mean (normalized)", "Suggested ε (midpoint)"},
	}
	t.AddRow("legitimate", len(d.CleanNorm), d.MeanClean, d.SuggestEps)
	t.AddRow("SCC", len(d.SCCNorm), d.MeanSCC, d.SuggestEps)
	return t
}

// Table6 reproduces paper Table VI for one scenario: ROC-AUC of every
// single validator per transformation, the best transformation-specific
// single validator, and the joint validator.
func (l *Lab) Table6(name string) (*Table, error) {
	s, err := l.Scenario(name)
	if err != nil {
		return nil, err
	}
	c, err := l.Corpus(s)
	if err != nil {
		return nil, err
	}

	// Score the full evaluation set once; reuse per-layer results.
	cleanRes := l.score(s, c.CleanX)
	sccRes := make(map[string][]core.Result, len(c.Sets))
	for _, set := range c.Sets {
		sccRes[set.Family] = l.score(s, set.SCC())
	}
	families := make([]string, 0, len(c.Sets))
	for _, fam := range FamilyOrder {
		if c.Set(fam) != nil {
			families = append(families, fam)
		}
	}

	nLayers := len(s.Validator.LayerIdx)
	t := &Table{
		Title:  fmt.Sprintf("Table VI — ROC-AUC of Deep Validation (%s)", name),
		Header: append(append([]string{"Validator", "Layer"}, families...), "Overall"),
	}

	// Single validators: one row per validated layer.
	bestPer := make([]float64, len(families))
	for i := range bestPer {
		bestPer[i] = math.Inf(-1)
	}
	bestOverall := math.Inf(-1)
	for p := 0; p < nLayers; p++ {
		row := []any{"Single Validator", fmt.Sprintf("%d", s.Validator.LayerIdx[p]+1)}
		cleanLayer := core.LayerScores(cleanRes, p)
		var pooled []float64
		for fi, fam := range families {
			sccLayer := core.LayerScores(sccRes[fam], p)
			auc := metrics.AUC(sccLayer, cleanLayer)
			if auc > bestPer[fi] {
				bestPer[fi] = auc
			}
			row = append(row, auc)
			pooled = append(pooled, sccLayer...)
		}
		overall := metrics.AUC(pooled, cleanLayer)
		if overall > bestOverall {
			bestOverall = overall
		}
		row = append(row, overall)
		t.AddRow(row...)
	}

	// Best transformation-specific single validator.
	row := []any{"Best Transformation-specific Single Validator", "-"}
	for _, b := range bestPer {
		row = append(row, b)
	}
	row = append(row, bestOverall)
	t.AddRow(row...)

	// Joint validator.
	row = []any{"Joint Validator", "-"}
	cleanJoint := core.JointScores(cleanRes)
	var pooledJoint []float64
	for _, fam := range families {
		sccJoint := core.JointScores(sccRes[fam])
		row = append(row, metrics.AUC(sccJoint, cleanJoint))
		pooledJoint = append(pooledJoint, sccJoint...)
	}
	row = append(row, metrics.AUC(pooledJoint, cleanJoint))
	t.AddRow(row...)

	// Operating point quoted in Section IV-D3: TPR at a small FPR.
	tpr, _ := metrics.TPRAtFPR(pooledJoint, cleanJoint, 0.05)
	t.Notes = append(t.Notes, fmt.Sprintf("joint validator TPR at 5%% FPR: %.4f", tpr))
	return t, nil
}

// Table7 reproduces paper Table VII: overall ROC-AUC on SCCs of Deep
// Validation versus feature squeezing and kernel density estimation.
// With no arguments it covers all three scenarios.
func (l *Lab) Table7(names ...string) (*Table, error) {
	if len(names) == 0 {
		names = ScenarioNames()
	}
	t := &Table{
		Title:  "Table VII — comparison with feature squeezing and kernel density estimation",
		Header: []string{"Dataset", "Method", "Overall ROC-AUC Score (SCCs)"},
	}
	for _, name := range names {
		s, err := l.Scenario(name)
		if err != nil {
			return nil, err
		}
		c, err := l.Corpus(s)
		if err != nil {
			return nil, err
		}
		scc := c.AllSCC()

		dvClean := core.JointScores(l.score(s, c.CleanX))
		dvSCC := core.JointScores(l.score(s, scc))
		t.AddRow(name, "Deep Validation", metrics.AUC(dvSCC, dvClean))

		fs := squeezerFor(s)
		fsClean := fs.ScoreBatch(s.Net, c.CleanX)
		fsSCC := fs.ScoreBatch(s.Net, scc)
		t.AddRow(name, "Feature Squeezing", metrics.AUC(fsSCC, fsClean))

		kd, err := kde.Fit(s.Net, s.Dataset.TrainX, s.Dataset.TrainY, kde.DefaultConfig())
		if err != nil {
			return nil, err
		}
		kdClean := kd.ScoreBatch(s.Net, c.CleanX)
		kdSCC := kd.ScoreBatch(s.Net, scc)
		t.AddRow(name, "Kernel Density Estimation", metrics.AUC(kdSCC, kdClean))
	}
	return t, nil
}

func squeezerFor(s *Scenario) *squeeze.Detector {
	if s.Grayscale {
		return squeeze.ForGreyscale()
	}
	return squeeze.ForColor()
}

// Fig4Point is one operating point of Figure 4's distortion sweep.
type Fig4Point struct {
	ScaleRatio  float64
	SuccessRate float64
	DVSCCRate   float64
	DVFCCRate   float64
	FSSCCRate   float64
	FSFCCRate   float64
	NumSCC      int
}

// Figure4 reproduces paper Figure 4: detection rates of Deep Validation
// and feature squeezing on SCCs and FCCs under growing scale ratios,
// with both detectors pinned to the same false positive rate on clean
// data (the paper uses 0.059).
func (l *Lab) Figure4(name string, fpr float64) ([]Fig4Point, error) {
	s, err := l.Scenario(name)
	if err != nil {
		return nil, err
	}
	c, err := l.Corpus(s)
	if err != nil {
		return nil, err
	}

	dvClean := core.JointScores(l.score(s, c.CleanX))
	fs := squeezerFor(s)
	fsClean := fs.ScoreBatch(s.Net, c.CleanX)
	dvThresh := metrics.ThresholdForFPR(dvClean, fpr)
	fsThresh := metrics.ThresholdForFPR(fsClean, fpr)

	var points []Fig4Point
	for ratio := 1.0; ratio <= 3.0+1e-9; ratio += 0.25 {
		tr := scaleTransform(ratio)
		var sccX, fccX []*tensor.Tensor
		for i, seed := range c.SeedX {
			img := tr.Apply(seed)
			pred, _ := s.Net.Predict(img)
			if pred != c.SeedY[i] {
				sccX = append(sccX, img)
			} else {
				fccX = append(fccX, img)
			}
		}
		p := Fig4Point{
			ScaleRatio:  ratio,
			SuccessRate: float64(len(sccX)) / float64(len(c.SeedX)),
			NumSCC:      len(sccX),
		}
		p.DVSCCRate = metrics.DetectionRate(core.JointScores(l.score(s, sccX)), dvThresh)
		p.DVFCCRate = metrics.DetectionRate(core.JointScores(l.score(s, fccX)), dvThresh)
		p.FSSCCRate = metrics.DetectionRate(fs.ScoreBatch(s.Net, sccX), fsThresh)
		p.FSFCCRate = metrics.DetectionRate(fs.ScoreBatch(s.Net, fccX), fsThresh)
		points = append(points, p)
	}
	return points, nil
}

// Fig4Table renders the sweep as a table.
func Fig4Table(name string, fpr float64, pts []Fig4Point) *Table {
	t := &Table{
		Title: fmt.Sprintf("Figure 4 — detection rate vs scale ratio (%s, FPR %.3f)", name, fpr),
		Header: []string{
			"Scale Ratio", "Success Rate", "#SCC",
			"DV SCC Rate", "DV FCC Rate", "FS SCC Rate", "FS FCC Rate",
		},
	}
	for _, p := range pts {
		t.AddRow(p.ScaleRatio, p.SuccessRate, p.NumSCC,
			p.DVSCCRate, p.DVFCCRate, p.FSSCCRate, p.FSFCCRate)
	}
	return t
}

// scaleTransform builds the Figure 4 sweep transformation.
func scaleTransform(ratio float64) imgtrans.Transform {
	return imgtrans.Scale(ratio, ratio)
}
