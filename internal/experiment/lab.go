// Package experiment reproduces every table and figure of the paper's
// evaluation (Section IV) on the synthetic dataset substitutes: model
// training (Table III), corner-case synthesis (Table V, Figure 2),
// Deep Validation scoring (Figure 3, Table VI), baseline comparisons
// (Table VII), white-box attacks (Table VIII), and the distortion sweep
// (Figure 4), plus the ablations DESIGN.md calls out.
//
// A Lab owns the expensive artifacts — trained classifiers, fitted
// validators, synthesized corner-case corpora — and caches them on disk
// so each experiment runs from the same inputs without retraining.
package experiment

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"deepvalidation/internal/core"
	"deepvalidation/internal/dataset"
	"deepvalidation/internal/nn"
	"deepvalidation/internal/opt"
	"deepvalidation/internal/telemetry"
	"deepvalidation/internal/tensor"
)

// Scale sizes every experiment. FullScale approximates the paper's
// setup at CPU-tractable sizes; QuickScale keeps tests and benchmarks
// fast.
type Scale struct {
	// TrainN/TestN size each generated dataset.
	TrainN, TestN int
	// EpochsCNN / EpochsDenseNet are the training budgets.
	EpochsCNN      int
	EpochsDenseNet int
	// Width / FCWidth / Growth / BlockConvs size the models.
	Width, FCWidth, Growth, BlockConvs int
	// Seeds is the corner-case seed count (paper: 200).
	Seeds int
	// AttackSeeds is the Table VIII seed count (paper: 200; reduced for
	// the CPU-bound CW/JSMA loops).
	AttackSeeds int
	// SVMPerClass / SVMFeatures cap Deep Validation's SVM training.
	SVMPerClass, SVMFeatures int
	// Nu is the one-class SVM ν.
	Nu float64
}

// FullScale returns the paper-faithful CPU configuration.
func FullScale() Scale {
	return Scale{
		TrainN: 2500, TestN: 800,
		EpochsCNN: 8, EpochsDenseNet: 24,
		Width: 8, FCWidth: 64, Growth: 8, BlockConvs: 4,
		Seeds:       200,
		AttackSeeds: 100,
		SVMPerClass: 200, SVMFeatures: 256,
		Nu: 0.1,
	}
}

// QuickScale returns a configuration small enough for unit tests and
// testing.B benchmarks; every code path is identical to FullScale.
// The CNN scenarios (digits, streetdigits) train to usable accuracy at
// this size; the DenseNet scenario needs FullScale to converge, so
// quick tests and benchmarks stick to the CNN scenarios.
func QuickScale() Scale {
	return Scale{
		TrainN: 1200, TestN: 300,
		EpochsCNN: 8, EpochsDenseNet: 8,
		Width: 6, FCWidth: 32, Growth: 6, BlockConvs: 2,
		Seeds:       40,
		AttackSeeds: 4,
		SVMPerClass: 60, SVMFeatures: 128,
		Nu: 0.1,
	}
}

// Scenario bundles a dataset with its trained classifier and fitted
// validator — everything the detection experiments consume.
type Scenario struct {
	Name      string
	Dataset   *dataset.Dataset
	Net       *nn.Network
	Validator *core.Validator
	Grayscale bool
	// TestAcc / TestConf are the Table III numbers, recorded at build
	// time.
	TestAcc, TestConf float64
}

// Lab builds, caches, and serves scenarios and runs experiments.
type Lab struct {
	Scale Scale
	// CacheDir persists trained artifacts between runs; empty disables
	// caching.
	CacheDir string
	// Log receives progress lines; nil silences them.
	Log io.Writer
	// Workers bounds the scoring and fitting worker pools
	// (0 = GOMAXPROCS, 1 = sequential). Results are identical for every
	// setting, so it is deliberately excluded from the artifact cache
	// fingerprint.
	Workers int
	// Telemetry, when non-nil, instruments every scenario validator
	// the lab builds or loads (score latency, per-layer discrepancy
	// histograms) and the fitting stages. Like Workers it never
	// affects results, so it too is excluded from the cache
	// fingerprint.
	Telemetry *telemetry.Registry

	scenarios map[string]*Scenario
	corpora   map[string]*Corpus
}

// NewLab returns a Lab at the given scale caching under dir.
func NewLab(scale Scale, dir string) *Lab {
	return &Lab{Scale: scale, CacheDir: dir, scenarios: map[string]*Scenario{}, corpora: map[string]*Corpus{}}
}

// score runs a scenario's fitted validator over xs with the lab's
// worker bound, preserving input order.
func (l *Lab) score(s *Scenario, xs []*tensor.Tensor) []core.Result {
	return s.Validator.ScoreBatchWorkers(s.Net, xs, l.Workers)
}

func (l *Lab) logf(format string, args ...any) {
	if l.Log != nil {
		fmt.Fprintf(l.Log, format+"\n", args...)
	}
}

// scaleKey fingerprints the scale so cached artifacts invalidate when
// the configuration changes.
func (l *Lab) scaleKey() string {
	h := fnv.New32a()
	fmt.Fprintf(h, "%+v", l.Scale)
	return fmt.Sprintf("%08x", h.Sum32())
}

func (l *Lab) cachePath(kind, name string) string {
	return filepath.Join(l.CacheDir, fmt.Sprintf("%s-%s-%s.gob", name, kind, l.scaleKey()))
}

// Scenario returns the named scenario ("digits", "objects",
// "streetdigits"), training the model and fitting the validator on
// first use (or loading both from cache).
func (l *Lab) Scenario(name string) (*Scenario, error) {
	if s, ok := l.scenarios[name]; ok {
		return s, nil
	}
	cfg := dataset.Config{TrainN: l.Scale.TrainN, TestN: l.Scale.TestN, Seed: 1}
	ds, err := dataset.ByName(name, cfg)
	if err != nil {
		return nil, err
	}
	s := &Scenario{Name: name, Dataset: ds, Grayscale: ds.InC == 1}

	if l.CacheDir != "" {
		if net, err := nn.Load(l.cachePath("model", name)); err == nil {
			if val, err := core.LoadValidator(l.cachePath("validator", name)); err == nil {
				s.Net = net
				s.Validator = val
				if l.Telemetry != nil {
					val.SetTelemetry(l.Telemetry)
				}
				s.TestAcc, s.TestConf = net.Accuracy(ds.TestX, ds.TestY)
				l.logf("[%s] loaded cached model (test acc %.4f)", name, s.TestAcc)
				l.scenarios[name] = s
				return s, nil
			}
		}
	}

	if err := l.build(s); err != nil {
		return nil, err
	}
	if l.CacheDir != "" {
		if err := os.MkdirAll(l.CacheDir, 0o755); err != nil {
			return nil, fmt.Errorf("experiment: creating cache dir: %w", err)
		}
		if err := s.Net.Save(l.cachePath("model", name)); err != nil {
			return nil, err
		}
		if err := s.Validator.Save(l.cachePath("validator", name)); err != nil {
			return nil, err
		}
	}
	l.scenarios[name] = s
	return s, nil
}

// build trains the scenario's classifier (Section IV-A) and fits its
// validator (Section IV-C).
func (l *Lab) build(s *Scenario) error {
	sc := l.Scale
	rng := rand.New(rand.NewSource(97))
	arch := nn.ArchConfig{
		Width: sc.Width, FCWidth: sc.FCWidth,
		Growth: sc.Growth, BlockConvs: sc.BlockConvs, StemStride: 2,
	}

	var net *nn.Network
	var epochs int
	var err error
	switch s.Name {
	case "objects":
		// The paper's CIFAR-10 model is DenseNet (Section IV-A).
		net, err = nn.NewDenseNetLite(s.Name, s.Dataset.InC, s.Dataset.Size, s.Dataset.Classes, arch, rng)
		epochs = sc.EpochsDenseNet
	default:
		// MNIST and SVHN use seven-layer CNNs (Table II).
		net, err = nn.NewSevenLayerCNN(s.Name, s.Dataset.InC, s.Dataset.Size, s.Dataset.Classes, arch, rng)
		epochs = sc.EpochsCNN
	}
	if err != nil {
		return err
	}

	// Paper Section IV-A: Adadelta, lr 1.0, decay 0.95, batch 128, no
	// data augmentation.
	tr := nn.NewTrainer(net, opt.NewAdadelta(1.0, 0.95), rand.New(rand.NewSource(98)))
	tr.BatchSize = 128
	if s.Name == "objects" {
		calN := 200
		if calN > len(s.Dataset.TrainX) {
			calN = len(s.Dataset.TrainX)
		}
		tr.CalibrateWith = s.Dataset.TrainX[:calN]
		net.Calibrate(tr.CalibrateWith)
	}
	l.logf("[%s] training %s (%d params) for %d epochs on %d samples",
		s.Name, net.ModelName, net.ParamCount(), epochs, len(s.Dataset.TrainX))
	stats, err := tr.Train(s.Dataset.TrainX, s.Dataset.TrainY, epochs)
	if err != nil {
		return err
	}
	l.logf("[%s] final train acc %.4f", s.Name, stats[len(stats)-1].Accuracy)
	s.Net = net
	s.TestAcc, s.TestConf = net.Accuracy(s.Dataset.TestX, s.Dataset.TestY)
	l.logf("[%s] test acc %.4f, mean confidence %.4f", s.Name, s.TestAcc, s.TestConf)

	// Fit Deep Validation. DenseNet validates only the rear six layers
	// (Section IV-C); the CNNs validate all hidden layers.
	vcfg := core.Config{
		Nu:          sc.Nu,
		MaxPerClass: sc.SVMPerClass,
		MaxFeatures: sc.SVMFeatures,
		Workers:     l.Workers,
		Telemetry:   l.Telemetry,
	}
	if s.Name == "objects" {
		vcfg.Layers = core.RearLayers(net, 6)
	}
	l.logf("[%s] fitting validator", s.Name)
	val, err := core.Fit(net, s.Dataset.TrainX, s.Dataset.TrainY, vcfg)
	if err != nil {
		return err
	}
	if l.Telemetry != nil {
		val.SetTelemetry(l.Telemetry)
	}
	s.Validator = val
	return nil
}

// ScenarioNames lists the three evaluation scenarios in paper order.
func ScenarioNames() []string { return []string{"digits", "objects", "streetdigits"} }

// seedRNG derives the seed-selection stream for a scenario.
func seedRNG(name string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprint(h, "seeds:", name)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}
