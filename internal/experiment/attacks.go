package experiment

import (
	"encoding/gob"
	"fmt"
	"os"

	"deepvalidation/internal/attack"
	"deepvalidation/internal/core"
	"deepvalidation/internal/metrics"
	"deepvalidation/internal/tensor"
)

// AttackOutcome records one attack configuration's crafted samples over
// all seeds, split into successful (SAE) and failed (FAE) adversarial
// examples as Section IV-D5 defines them.
type AttackOutcome struct {
	Method      string
	Target      string // "Untargeted", "Next", or "LL"
	SuccessRate float64
	SAE         []*tensor.Tensor
	FAE         []*tensor.Tensor
}

// AttackSuite runs (or loads) the Table VIII attack battery against a
// scenario: FGSM and BIM untargeted; CW∞, CW2, CW0, and JSMA targeted
// at the next and least-likely classes.
func (l *Lab) AttackSuite(s *Scenario) ([]AttackOutcome, error) {
	if l.CacheDir != "" {
		if out, err := loadAttacks(l.cachePath("attacks", s.Name)); err == nil {
			l.logf("[%s] loaded cached attack suite (%d configurations)", s.Name, len(out))
			return out, nil
		}
	}

	rng := seedRNG(s.Name + "-attacks")
	seedX, seedY, err := selectAttackSeeds(s, l.Scale.AttackSeeds, rng)
	if err != nil {
		return nil, err
	}

	cw := attack.DefaultCWConfig()
	type cfg struct {
		method string
		target string
		run    func(x *tensor.Tensor, y int) attack.Result
	}
	classes := s.Net.Classes
	configs := []cfg{
		{"FGSM", "Untargeted", func(x *tensor.Tensor, y int) attack.Result {
			return attack.FGSM(s.Net, x, y, 0.3)
		}},
		{"BIM", "Untargeted", func(x *tensor.Tensor, y int) attack.Result {
			return attack.BIM(s.Net, x, y, 0.3, 0.03, 10)
		}},
		{"CW∞", "Next", func(x *tensor.Tensor, y int) attack.Result {
			return attack.CWLInf(s.Net, x, y, attack.NextClass(y, classes), cw)
		}},
		{"CW∞", "LL", func(x *tensor.Tensor, y int) attack.Result {
			return attack.CWLInf(s.Net, x, y, attack.LeastLikely(s.Net, x), cw)
		}},
		{"CW2", "Next", func(x *tensor.Tensor, y int) attack.Result {
			return attack.CWL2(s.Net, x, y, attack.NextClass(y, classes), cw)
		}},
		{"CW2", "LL", func(x *tensor.Tensor, y int) attack.Result {
			return attack.CWL2(s.Net, x, y, attack.LeastLikely(s.Net, x), cw)
		}},
		{"CW0", "Next", func(x *tensor.Tensor, y int) attack.Result {
			return attack.CWL0(s.Net, x, y, attack.NextClass(y, classes), cw)
		}},
		{"CW0", "LL", func(x *tensor.Tensor, y int) attack.Result {
			return attack.CWL0(s.Net, x, y, attack.LeastLikely(s.Net, x), cw)
		}},
		{"JSMA", "Next", func(x *tensor.Tensor, y int) attack.Result {
			return attack.JSMA(s.Net, x, y, attack.NextClass(y, classes), 1.0, 0.15)
		}},
		{"JSMA", "LL", func(x *tensor.Tensor, y int) attack.Result {
			return attack.JSMA(s.Net, x, y, attack.LeastLikely(s.Net, x), 1.0, 0.15)
		}},
	}

	var out []AttackOutcome
	for _, c := range configs {
		o := AttackOutcome{Method: c.method, Target: c.target}
		wins := 0
		for i, x := range seedX {
			r := c.run(x, seedY[i])
			if r.Success {
				wins++
				o.SAE = append(o.SAE, r.Adversarial)
			} else {
				o.FAE = append(o.FAE, r.Adversarial)
			}
		}
		o.SuccessRate = float64(wins) / float64(len(seedX))
		l.logf("[%s] %s (%s): success %.3f over %d seeds", s.Name, c.method, c.target, o.SuccessRate, len(seedX))
		out = append(out, o)
	}

	if l.CacheDir != "" {
		if err := os.MkdirAll(l.CacheDir, 0o755); err != nil {
			return nil, fmt.Errorf("experiment: creating cache dir: %w", err)
		}
		if err := saveAttacks(l.cachePath("attacks", s.Name), out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// selectAttackSeeds draws correctly classified test images for the
// attack battery ("We utilize the same seed and clean images in the
// previous evaluation dataset for consistency" — we reuse the test
// split with a dedicated stream so attack and corner seeds stay
// reproducible independently).
func selectAttackSeeds(s *Scenario, n int, rng interface{ Perm(int) []int }) ([]*tensor.Tensor, []int, error) {
	perm := rng.Perm(len(s.Dataset.TestX))
	var xs []*tensor.Tensor
	var ys []int
	for _, i := range perm {
		if len(xs) == n {
			break
		}
		if pred, _ := s.Net.Predict(s.Dataset.TestX[i]); pred == s.Dataset.TestY[i] {
			xs = append(xs, s.Dataset.TestX[i])
			ys = append(ys, s.Dataset.TestY[i])
		}
	}
	if len(xs) < n {
		return nil, nil, fmt.Errorf("experiment: only %d of %d attack seeds available", len(xs), n)
	}
	return xs, ys, nil
}

// Table8 reproduces paper Table VIII on the greyscale scenario: attack
// success rates and the ROC-AUC of Deep Validation versus feature
// squeezing, counting first only SAEs and then all AEs as positives.
func (l *Lab) Table8() (*Table, error) {
	s, err := l.Scenario("digits")
	if err != nil {
		return nil, err
	}
	c, err := l.Corpus(s)
	if err != nil {
		return nil, err
	}
	suite, err := l.AttackSuite(s)
	if err != nil {
		return nil, err
	}

	fs := squeezerFor(s)
	dvClean := core.JointScores(l.score(s, c.CleanX))
	fsClean := fs.ScoreBatch(s.Net, c.CleanX)

	t := &Table{
		Title: "Table VIII — white-box attacks (digits): Deep Validation vs feature squeezing",
		Header: []string{
			"Attack", "Target", "Success Rate",
			"DV AUC (SAEs)", "FS AUC (SAEs)",
			"DV AUC (AEs)", "FS AUC (AEs)",
		},
	}

	var allSAEdv, allSAEfs, allAEdv, allAEfs []float64
	for _, o := range suite {
		dvSAE := core.JointScores(l.score(s, o.SAE))
		fsSAE := fs.ScoreBatch(s.Net, o.SAE)
		dvFAE := core.JointScores(l.score(s, o.FAE))
		fsFAE := fs.ScoreBatch(s.Net, o.FAE)

		dvAE := append(append([]float64{}, dvSAE...), dvFAE...)
		fsAE := append(append([]float64{}, fsSAE...), fsFAE...)

		t.AddRow(o.Method, o.Target, o.SuccessRate,
			metrics.AUC(dvSAE, dvClean), metrics.AUC(fsSAE, fsClean),
			metrics.AUC(dvAE, dvClean), metrics.AUC(fsAE, fsClean))

		allSAEdv = append(allSAEdv, dvSAE...)
		allSAEfs = append(allSAEfs, fsSAE...)
		allAEdv = append(allAEdv, dvAE...)
		allAEfs = append(allAEfs, fsAE...)
	}
	t.AddRow("Overall", "-", "-",
		metrics.AUC(allSAEdv, dvClean), metrics.AUC(allSAEfs, fsClean),
		metrics.AUC(allAEdv, dvClean), metrics.AUC(allAEfs, fsClean))
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d attack seeds per configuration (paper: 200); CW budget reduced to CPU scale", l.Scale.AttackSeeds))
	return t, nil
}

func saveAttacks(path string, out []AttackOutcome) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiment: saving attacks: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("experiment: closing %s: %w", path, cerr)
		}
	}()
	if err := gob.NewEncoder(f).Encode(out); err != nil {
		return fmt.Errorf("experiment: encoding attacks: %w", err)
	}
	return nil
}

func loadAttacks(path string) ([]AttackOutcome, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []AttackOutcome
	if err := gob.NewDecoder(f).Decode(&out); err != nil {
		return nil, fmt.Errorf("experiment: decoding attacks: %w", err)
	}
	return out, nil
}
