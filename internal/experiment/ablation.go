package experiment

import (
	"fmt"
	"math"

	"deepvalidation/internal/core"
	"deepvalidation/internal/corner"
	"deepvalidation/internal/imgtrans"
	"deepvalidation/internal/metrics"
)

// AblationWeightedJoint compares the paper's unweighted joint
// discrepancy (Eq. 3) against weighted variants — the improvement
// Section IV-D3 suggests ("carefully assigning different weights to
// different single validators"). Weights are derived on the evaluation
// data itself (an oracle upper bound) from each layer's standalone AUC.
func (l *Lab) AblationWeightedJoint(name string) (*Table, error) {
	s, err := l.Scenario(name)
	if err != nil {
		return nil, err
	}
	c, err := l.Corpus(s)
	if err != nil {
		return nil, err
	}
	scc := c.AllSCC()
	cleanRes := l.score(s, c.CleanX)
	sccRes := l.score(s, scc)

	nLayers := len(s.Validator.LayerIdx)
	// Per-layer standalone AUCs drive the weights.
	aucs := make([]float64, nLayers)
	for p := 0; p < nLayers; p++ {
		aucs[p] = metrics.AUC(core.LayerScores(sccRes, p), core.LayerScores(cleanRes, p))
	}

	variants := []struct {
		name    string
		weights []float64
	}{
		{"unweighted (paper Eq. 3)", uniform(nLayers)},
		{"AUC-proportional", normalize(aucs)},
		{"AUC-squared", normalize(squareAll(aucs))},
		{"best-layer only", oneHotMax(aucs)},
	}

	t := &Table{
		Title:  fmt.Sprintf("Ablation — joint discrepancy weighting (%s)", name),
		Header: []string{"Joint Function", "Overall ROC-AUC (SCCs)"},
	}
	for _, v := range variants {
		cs := weightedScores(cleanRes, v.weights)
		ss := weightedScores(sccRes, v.weights)
		t.AddRow(v.name, metrics.AUC(ss, cs))
	}
	t.Notes = append(t.Notes, "weights fitted on the evaluation data: an oracle upper bound, not a deployable detector")
	return t, nil
}

func weightedScores(rs []core.Result, w []float64) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.WeightedJoint(w)
	}
	return out
}

func uniform(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func normalize(xs []float64) []float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	out := make([]float64, len(xs))
	if s == 0 {
		return uniform(len(xs))
	}
	for i, v := range xs {
		out[i] = v * float64(len(xs)) / s
	}
	return out
}

func squareAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = v * v
	}
	return out
}

func oneHotMax(xs []float64) []float64 {
	out := make([]float64, len(xs))
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	out[best] = 1
	return out
}

// AblationRearLayers sweeps how many rear layers the DenseNet-style
// scenario validates, quantifying the Section IV-C design choice
// ("it may be enough to validate the inputs of the rear layers").
func (l *Lab) AblationRearLayers(name string) (*Table, error) {
	s, err := l.Scenario(name)
	if err != nil {
		return nil, err
	}
	c, err := l.Corpus(s)
	if err != nil {
		return nil, err
	}
	scc := c.AllSCC()
	hidden := s.Net.NumLayers() - 1

	t := &Table{
		Title:  fmt.Sprintf("Ablation — rear-layer validation sweep (%s)", name),
		Header: []string{"Rear Layers Validated", "Overall ROC-AUC (SCCs)", "SVMs Fitted"},
	}
	for k := 1; k <= hidden; k++ {
		val, err := core.Fit(s.Net, s.Dataset.TrainX, s.Dataset.TrainY, core.Config{
			Nu:          l.Scale.Nu,
			MaxPerClass: l.Scale.SVMPerClass,
			MaxFeatures: l.Scale.SVMFeatures,
			Layers:      core.RearLayers(s.Net, k),
		})
		if err != nil {
			return nil, err
		}
		cs := core.JointScores(val.ScoreBatchWorkers(s.Net, c.CleanX, l.Workers))
		ss := core.JointScores(val.ScoreBatchWorkers(s.Net, scc, l.Workers))
		t.AddRow(k, metrics.AUC(ss, cs), k*s.Net.Classes)
	}
	return t, nil
}

// AblationNu sweeps the one-class SVM ν, the sensitivity experiment
// behind the paper's fixed per-layer SVM parameters (Section IV-C).
func (l *Lab) AblationNu(name string, nus []float64) (*Table, error) {
	s, err := l.Scenario(name)
	if err != nil {
		return nil, err
	}
	c, err := l.Corpus(s)
	if err != nil {
		return nil, err
	}
	scc := c.AllSCC()

	t := &Table{
		Title:  fmt.Sprintf("Ablation — one-class SVM ν sensitivity (%s)", name),
		Header: []string{"ν", "Overall ROC-AUC (SCCs)"},
	}
	for _, nu := range nus {
		cfg := core.Config{
			Nu:          nu,
			MaxPerClass: l.Scale.SVMPerClass,
			MaxFeatures: l.Scale.SVMFeatures,
		}
		if name == "objects" {
			cfg.Layers = core.RearLayers(s.Net, 6)
		}
		val, err := core.Fit(s.Net, s.Dataset.TrainX, s.Dataset.TrainY, cfg)
		if err != nil {
			return nil, err
		}
		cs := core.JointScores(val.ScoreBatchWorkers(s.Net, c.CleanX, l.Workers))
		ss := core.JointScores(val.ScoreBatchWorkers(s.Net, scc, l.Workers))
		t.AddRow(nu, metrics.AUC(ss, cs))
	}
	return t, nil
}

// AblationNormalizedJoint compares the raw unweighted joint (Eq. 3)
// against the z-scored joint fitted on clean validation data — a
// deployable variant of the paper's weighting suggestion that needs no
// anomalous samples.
func (l *Lab) AblationNormalizedJoint(name string) (*Table, error) {
	s, err := l.Scenario(name)
	if err != nil {
		return nil, err
	}
	c, err := l.Corpus(s)
	if err != nil {
		return nil, err
	}
	scc := c.AllSCC()

	// Fit normalization on the first half of the clean evaluation set;
	// evaluate on the second half so the statistics are held out.
	half := len(c.CleanX) / 2
	if half < 2 {
		return nil, fmt.Errorf("experiment: clean set too small for normalization ablation")
	}
	val := s.Validator.Clone() // shallow copy so the scenario stays pristine
	if err := val.FitNormalization(s.Net, c.CleanX[:half]); err != nil {
		return nil, err
	}
	cleanRes := val.ScoreBatchWorkers(s.Net, c.CleanX[half:], l.Workers)
	sccRes := val.ScoreBatchWorkers(s.Net, scc, l.Workers)

	t := &Table{
		Title:  fmt.Sprintf("Ablation — raw vs normalized joint discrepancy (%s)", name),
		Header: []string{"Joint Function", "Overall ROC-AUC (SCCs)"},
	}
	t.AddRow("raw sum (paper Eq. 3)",
		metrics.AUC(core.JointScores(sccRes), core.JointScores(cleanRes)))
	t.AddRow("z-scored sum (clean-data normalization)",
		metrics.AUC(val.NormalizedJointScores(sccRes), val.NormalizedJointScores(cleanRes)))
	t.Notes = append(t.Notes, "normalization fitted on held-out clean data only; no anomalies involved")
	return t, nil
}

// ExtensionNovelTransforms probes the framework's scenario-agnosticism
// beyond the paper: corner cases from transformation families the
// generator never searched (blur, sensor noise, occlusion) should
// still be detected, because the validator models the training
// distribution rather than any anomaly family.
func (l *Lab) ExtensionNovelTransforms(name string) (*Table, error) {
	s, err := l.Scenario(name)
	if err != nil {
		return nil, err
	}
	c, err := l.Corpus(s)
	if err != nil {
		return nil, err
	}
	cleanScores := core.JointScores(l.score(s, c.CleanX))

	size := s.Dataset.Size
	novel := []imgtrans.Transform{
		imgtrans.GaussianBlur{Sigma: float64(size) / 12},
		imgtrans.AdditiveNoise{Sigma: 0.25, Seed: 5},
		imgtrans.Occlusion{X: size / 4, Y: size / 4, Size: size / 2, Fill: 0},
	}
	t := &Table{
		Title:  fmt.Sprintf("Extension — unseen transformation families (%s)", name),
		Header: []string{"Transformation", "Success Rate", "ROC-AUC (SCCs)"},
	}
	for _, tr := range novel {
		g := corner.Generate(s.Net, c.SeedX, c.SeedY, tr.Name(), tr)
		sccImgs, _ := g.SCC()
		auc := math.NaN()
		if len(sccImgs) > 0 {
			auc = metrics.AUC(core.JointScores(l.score(s, sccImgs)), cleanScores)
		}
		t.AddRow(tr.Describe(), g.SuccessRate, auc)
	}
	t.Notes = append(t.Notes, "these families were never part of the Table IV search; detection relies purely on the training-distribution model")
	return t, nil
}
