package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Table is a formatted result table mirroring one of the paper's
// tables or figures. Render produces aligned plain text.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes are printed under the table (substitutions, parameters).
	Notes []string
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	if v != v { // NaN: the paper's "-" cells
		return "-"
	}
	return fmt.Sprintf("%.4f", v)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = runeLen(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && runeLen(c) > widths[i] {
				widths[i] = runeLen(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	writeRow(w, t.Header, widths)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		writeRow(w, row, widths)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderMarkdown writes the table as GitHub-flavored markdown, used to
// assemble EXPERIMENTS.md from a lab run.
func (t *Table) RenderMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### %s\n\n", t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n*%s*\n", n)
	}
	fmt.Fprintln(w)
}

func writeRow(w io.Writer, cells []string, widths []int) {
	for i, c := range cells {
		pad := 0
		if i < len(widths) {
			pad = widths[i] - runeLen(c)
		}
		fmt.Fprint(w, c, strings.Repeat(" ", pad+2))
	}
	fmt.Fprintln(w)
}

func runeLen(s string) int { return len([]rune(s)) }
