package experiment

import (
	"fmt"
	"io"
)

// ReportConfig selects what WriteReport includes.
type ReportConfig struct {
	// Scenarios restricts per-dataset sections (nil = all three).
	Scenarios []string
	// Markdown switches table rendering from aligned text to markdown.
	Markdown bool
	// IncludeAttacks adds Table VIII (expensive: runs or loads the
	// attack battery).
	IncludeAttacks bool
	// IncludeAblations adds the ablation sections (expensive: refits
	// validators).
	IncludeAblations bool
}

// WriteReport runs the full evaluation and writes a self-contained
// report: every table in order, Figure 3's distribution plots, and the
// Figure 4 sweep. Artifacts come from the lab's cache when available,
// so regenerating a report after one full run is cheap.
func (l *Lab) WriteReport(w io.Writer, cfg ReportConfig) error {
	names := cfg.Scenarios
	if names == nil {
		names = ScenarioNames()
	}
	render := func(t *Table) {
		if cfg.Markdown {
			t.RenderMarkdown(w)
		} else {
			t.Render(w)
		}
	}

	t3, err := l.Table3(names...)
	if err != nil {
		return fmt.Errorf("experiment: report table3: %w", err)
	}
	render(t3)

	for _, name := range names {
		t5, err := l.Table5(name)
		if err != nil {
			return fmt.Errorf("experiment: report table5(%s): %w", name, err)
		}
		render(t5)
	}

	for _, name := range names {
		d, err := l.Figure3(name)
		if err != nil {
			return fmt.Errorf("experiment: report fig3(%s): %w", name, err)
		}
		if cfg.Markdown {
			fmt.Fprintln(w, "```")
		}
		d.RenderHistograms(w, 78, 10)
		if cfg.Markdown {
			fmt.Fprintln(w, "```")
		}
		fmt.Fprintln(w)
		render(d.Summary())
	}

	for _, name := range names {
		t6, err := l.Table6(name)
		if err != nil {
			return fmt.Errorf("experiment: report table6(%s): %w", name, err)
		}
		render(t6)
	}

	t7, err := l.Table7(names...)
	if err != nil {
		return fmt.Errorf("experiment: report table7: %w", err)
	}
	render(t7)

	if cfg.IncludeAttacks && contains(names, "digits") {
		t8, err := l.Table8()
		if err != nil {
			return fmt.Errorf("experiment: report table8: %w", err)
		}
		render(t8)
	}

	if contains(names, "digits") {
		const fpr = 0.059
		pts, err := l.Figure4("digits", fpr)
		if err != nil {
			return fmt.Errorf("experiment: report fig4: %w", err)
		}
		render(Fig4Table("digits", fpr, pts))
	}

	if cfg.IncludeAblations {
		for _, name := range names {
			aw, err := l.AblationWeightedJoint(name)
			if err != nil {
				return fmt.Errorf("experiment: report ablation-weights(%s): %w", name, err)
			}
			render(aw)
			an, err := l.AblationNormalizedJoint(name)
			if err != nil {
				return fmt.Errorf("experiment: report ablation-norm(%s): %w", name, err)
			}
			render(an)
			en, err := l.ExtensionNovelTransforms(name)
			if err != nil {
				return fmt.Errorf("experiment: report ext-novel(%s): %w", name, err)
			}
			render(en)
		}
	}
	return nil
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
