package experiment

import (
	"fmt"
	"io"
	"strings"

	"deepvalidation/internal/metrics"
)

// RenderHistograms draws Figure 3's two score distributions as a
// terminal plot: each row is one of `rows` intensity bands, columns
// span the normalized [0,1] score axis, '#' marks the clean density and
// 'x' the SCC density ('o' where they overlap).
func (d *Fig3Data) RenderHistograms(w io.Writer, cols, rows int) {
	if cols <= 0 {
		cols = 80
	}
	if rows <= 0 {
		rows = 12
	}
	clean := rebin(d.CleanHist, cols)
	scc := rebin(d.SCCHist, cols)
	peak := 0.0
	for i := 0; i < cols; i++ {
		if clean[i] > peak {
			peak = clean[i]
		}
		if scc[i] > peak {
			peak = scc[i]
		}
	}
	fmt.Fprintf(w, "Figure 3 — normalized joint discrepancy (%s): '#' clean, 'x' SCC, 'o' both\n", d.Scenario)
	if peak == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	for r := rows; r >= 1; r-- {
		level := float64(r) / float64(rows) * peak
		var b strings.Builder
		for i := 0; i < cols; i++ {
			c := clean[i] >= level
			s := scc[i] >= level
			switch {
			case c && s:
				b.WriteByte('o')
			case c:
				b.WriteByte('#')
			case s:
				b.WriteByte('x')
			default:
				b.WriteByte(' ')
			}
		}
		fmt.Fprintf(w, "|%s|\n", b.String())
	}
	fmt.Fprintf(w, "+%s+\n0%sscore%s1\n",
		strings.Repeat("-", cols),
		strings.Repeat(" ", (cols-5)/2), strings.Repeat(" ", cols-5-(cols-5)/2))
	fmt.Fprintf(w, "clean mean %.3f | SCC mean %.3f | suggested ε (midpoint) %.3f\n",
		d.MeanClean, d.MeanSCC, d.SuggestEps)
}

// rebin folds a histogram's counts into `cols` equal-width buckets
// normalized by total mass, so two populations of different sizes are
// comparable (the paper plots densities).
func rebin(h *metrics.Histogram, cols int) []float64 {
	out := make([]float64, cols)
	if h.Total == 0 {
		return out
	}
	n := len(h.Counts)
	for i, c := range h.Counts {
		// Map source bin center back to the global normalized axis.
		x := h.Min + (float64(i)+0.5)/float64(n)*(h.Max-h.Min)
		col := int(x * float64(cols))
		if col < 0 {
			col = 0
		} else if col >= cols {
			col = cols - 1
		}
		out[col] += float64(c) / float64(h.Total)
	}
	return out
}
