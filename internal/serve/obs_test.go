package serve

// End-to-end battery for the serving side of internal/obs: the wide
// event log on /debug/dv/events, the SLO engine on /debug/dv/slo and
// /readyz, breach events cross-linking trace IDs, and the byte-identity
// guard that pins the obs-disabled serving path to its pre-obs
// behavior.

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"deepvalidation"
	"deepvalidation/internal/obs"
	"deepvalidation/internal/telemetry"
	"deepvalidation/internal/trace"
)

// TestObsOffResponsesIdentical pins the zero-overhead contract from
// the obs side: a server with every obs feature disabled and one with
// the event log, runtime collector, and SLO engine all running serve
// byte-identical /v1/check and /v1/batch responses.
func TestObsOffResponsesIdentical(t *testing.T) {
	_, off := newTestServer(t, Config{FlightSize: -1, DriftWindow: -1})
	reg := telemetry.New()
	_, on := newTestServer(t, Config{
		Registry:    reg,
		Events:      obs.New(obs.Config{Registry: reg}),
		SLO:         SLOOptions{Enabled: true},
		TraceSample: 0, // header-less requests stay untraced so responses match
	})
	rt := obs.NewRuntime(reg, nil)
	rt.Collect()

	imgs, _ := testImages(43, 8)
	for i, img := range imgs {
		_, plain := post(t, off.URL+"/v1/check", checkBody(t, img))
		_, instrumented := post(t, on.URL+"/v1/check", checkBody(t, img))
		if plain != instrumented {
			t.Fatalf("image %d: instrumented body %q != plain body %q", i, instrumented, plain)
		}
	}
	_, plain := post(t, off.URL+"/v1/batch", batchBody(t, imgs))
	_, instrumented := post(t, on.URL+"/v1/batch", batchBody(t, imgs))
	if plain != instrumented {
		t.Fatalf("batch: instrumented body %q != plain body %q", instrumented, plain)
	}
}

// TestEventsEndpoint drives traffic through a server with the event
// log attached and exercises /debug/dv/events: unfiltered listing,
// each triage filter, and filter validation.
func TestEventsEndpoint(t *testing.T) {
	events := obs.New(obs.Config{})
	s, ts := newTestServer(t, Config{Events: events, TraceSample: 1})
	_ = s

	imgs, _ := testImages(51, 6)
	for _, img := range imgs {
		resp, body := post(t, ts.URL+"/v1/check", checkBody(t, img))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("check = %d body %q", resp.StatusCode, body)
		}
	}

	var er obs.EventsResponse
	if code := getJSON(t, ts.URL+"/debug/dv/events", &er); code != http.StatusOK {
		t.Fatalf("GET events = %d, want 200", code)
	}
	// The ring holds the 6 request events plus the server-ready
	// lifecycle event.
	reqEvents := 0
	for _, e := range er.Events {
		if e.Type == obs.TypeRequest {
			reqEvents++
			if e.TraceID == "" {
				t.Fatalf("request event carries no trace ID: %+v", e)
			}
			if e.Outcome != trace.OutcomeOK {
				t.Fatalf("request outcome = %q, want ok", e.Outcome)
			}
			if e.LatencySec <= 0 {
				t.Fatalf("request event latency = %v, want > 0", e.LatencySec)
			}
			if len(e.PerLayer) == 0 || len(e.Layers) != len(e.PerLayer) {
				t.Fatalf("request event missing per-layer payload: %+v", e)
			}
		}
	}
	if reqEvents != len(imgs) {
		t.Fatalf("ring holds %d request events, want %d", reqEvents, len(imgs))
	}
	// Newest first.
	for i := 1; i < len(er.Events); i++ {
		if er.Events[i].Seq >= er.Events[i-1].Seq {
			t.Fatalf("events not newest-first: seq %d then %d", er.Events[i-1].Seq, er.Events[i].Seq)
		}
	}

	// Type + limit filters compose.
	if code := getJSON(t, ts.URL+"/debug/dv/events?type=request&limit=2", &er); code != http.StatusOK {
		t.Fatalf("filtered GET = %d", code)
	}
	if len(er.Events) != 2 || er.Events[0].Type != obs.TypeRequest {
		t.Fatalf("type+limit filter returned %+v", er.Events)
	}
	// A lifecycle filter must exclude every request event.
	if code := getJSON(t, ts.URL+"/debug/dv/events?type=lifecycle", &er); code != http.StatusOK {
		t.Fatalf("lifecycle GET = %d", code)
	}
	for _, e := range er.Events {
		if e.Type != obs.TypeLifecycle {
			t.Fatalf("lifecycle filter returned %+v", e)
		}
	}
	// Contradictory filter: nothing was shed, so the combination of a
	// matching type and a non-occurring outcome matches nothing.
	if code := getJSON(t, ts.URL+"/debug/dv/events?type=request&outcome=shed", &er); code != http.StatusOK {
		t.Fatalf("contradictory GET = %d", code)
	}
	if len(er.Events) != 0 {
		t.Fatalf("outcome=shed matched %d events, want 0", len(er.Events))
	}

	// Malformed filters are 400s, not silent matches-everything.
	for _, q := range []string{"?valid=maybe", "?class=x", "?limit=many", "?level=shouty"} {
		if code := getJSON(t, ts.URL+"/debug/dv/events"+q, nil); code != http.StatusBadRequest {
			t.Fatalf("GET events%s = %d, want 400", q, code)
		}
	}
}

// TestEventsEndpointDisabled pins the 404 contract when no event log
// is attached.
func TestEventsEndpointDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code := getJSON(t, ts.URL+"/debug/dv/events", nil); code != http.StatusNotFound {
		t.Fatalf("events without a logger = %d, want 404", code)
	}
}

// TestReadyzStructuredBody checks the /readyz contract: plain-text
// status word on line 1 (probe greps), drift line 2, slo line 3, and a
// machine-parseable JSON summary on the final line.
func TestReadyzStructuredBody(t *testing.T) {
	reg := telemetry.New()
	_, ts := newTestServer(t, Config{
		Registry: reg,
		Events:   obs.New(obs.Config{Registry: reg}),
		SLO:      SLOOptions{Enabled: true},
	})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d body %q", resp.StatusCode, raw)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("readyz has %d lines %q, want 4", len(lines), raw)
	}
	if lines[0] != "ready" {
		t.Fatalf("line 1 = %q, want ready", lines[0])
	}
	if !strings.HasPrefix(lines[1], "drift: ") {
		t.Fatalf("line 2 = %q, want drift summary", lines[1])
	}
	if !strings.HasPrefix(lines[2], "slo: ") {
		t.Fatalf("line 3 = %q, want slo summary", lines[2])
	}
	var body struct {
		Status           string            `json:"status"`
		ReloadFailStreak int               `json:"reload_fail_streak"`
		Drift            trace.DriftStatus `json:"drift"`
		SLO              obs.Status        `json:"slo"`
	}
	if err := json.Unmarshal([]byte(lines[3]), &body); err != nil {
		t.Fatalf("line 4 is not JSON: %q: %v", lines[3], err)
	}
	if body.Status != "ready" || body.ReloadFailStreak != 0 {
		t.Fatalf("JSON body = %+v", body)
	}
	if !body.SLO.Enabled {
		t.Fatal("JSON body reports SLO disabled on an SLO-enabled server")
	}
}

// TestSLOEndpointAndMetrics checks /debug/dv/slo and the dv_slo_*
// series after a deterministic tick over healthy traffic.
func TestSLOEndpointAndMetrics(t *testing.T) {
	reg := telemetry.New()
	s, ts := newTestServer(t, Config{
		Registry: reg,
		SLO:      SLOOptions{Enabled: true},
	})
	imgs, _ := testImages(52, 4)
	for _, img := range imgs {
		post(t, ts.URL+"/v1/check", checkBody(t, img))
	}
	s.SLOTick()

	var st obs.Status
	if code := getJSON(t, ts.URL+"/debug/dv/slo", &st); code != http.StatusOK {
		t.Fatalf("GET slo = %d, want 200", code)
	}
	if !st.Enabled || st.Breaching {
		t.Fatalf("healthy status = %+v", st)
	}
	names := map[string]bool{}
	for _, o := range st.Objectives {
		names[o.Name] = true
		if o.Breach {
			t.Fatalf("objective %s breaching on healthy traffic: %+v", o.Name, o)
		}
		if len(o.Windows) != len(obs.DefaultWindows) {
			t.Fatalf("objective %s has %d windows", o.Name, len(o.Windows))
		}
	}
	for _, want := range []string{"availability", "latency", "quarantine"} {
		if !names[want] {
			t.Fatalf("objective %q missing from %v", want, names)
		}
	}

	snap := reg.Snapshot()
	for _, g := range []string{
		obs.MetricSLOObjective + `{slo="availability"}`,
		obs.MetricSLOBurnRate + `{slo="availability",window="5m"}`,
		obs.MetricSLOBreach + `{slo="latency"}`,
	} {
		if _, ok := snap.Gauges[g]; !ok {
			t.Fatalf("gauge %q missing from snapshot", g)
		}
	}
}

// TestSLOBreachEventCrossLinksTraces is the acceptance-criteria path
// in miniature: force 429 shedding, tick the engine, and require an
// availability burn-rate breach event whose payload cross-links at
// least one trace ID that /debug/dv/trace/{id} can resolve.
func TestSLOBreachEventCrossLinksTraces(t *testing.T) {
	reg := telemetry.New()
	events := obs.New(obs.Config{Registry: reg})
	s, ts := newTestServer(t, Config{
		QueueDepth: 1, MaxBatch: 1, Workers: 1,
		BatchWindow: -1, RequestTimeout: 30 * time.Second,
		Registry:    reg,
		Events:      events,
		TraceSample: 1,
		SLO:         SLOOptions{Enabled: true},
	})
	img, _ := testImages(17, 1)
	body := checkBody(t, img[0])

	// Baseline sample before the burst: burn rates difference against it.
	s.SLOTick()

	// Deterministic overload (the TestQueueFullSheds pattern): occupy
	// the single worker slot, let one request block at dispatch and one
	// fill the queue, then every further request sheds.
	s.sem <- struct{}{}
	type reply struct{ status int }
	async := func() chan reply {
		c := make(chan reply, 1)
		go func() {
			resp, _ := post(t, ts.URL+"/v1/check", body)
			c <- reply{resp.StatusCode}
		}()
		return c
	}
	a := async()
	waitFor(t, "batcher to pull request A", func() bool { return s.pulls.Load() == 1 })
	b := async()
	waitFor(t, "request B to queue", func() bool { return s.QueueLen() == 1 })
	shedIDs := 0
	for i := 0; i < 3; i++ {
		resp, _ := post(t, ts.URL+"/v1/check", body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("overload request %d = %d, want 429", i, resp.StatusCode)
		}
		if resp.Header.Get(trace.HeaderTraceID) != "" {
			shedIDs++
		}
	}
	if shedIDs == 0 {
		t.Fatal("no shed response carried a trace ID")
	}
	<-s.sem
	for _, c := range []chan reply{a, b} {
		select {
		case r := <-c:
			if r.status != http.StatusOK {
				t.Fatalf("held request finished with %d", r.status)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("held request did not finish")
		}
	}

	// Second sample: 3 sheds out of 6 requests burns the 0.1% budget
	// at ~500x on every window (each falls back to the baseline sample).
	s.SLOTick()

	st := s.SLOStatus()
	var avail *obs.ObjectiveStatus
	for i := range st.Objectives {
		if st.Objectives[i].Name == "availability" {
			avail = &st.Objectives[i]
		}
	}
	if avail == nil || !avail.Breach {
		t.Fatalf("availability not breaching after shed burst: %+v", st)
	}

	breaches := events.Snapshot(obs.Filter{Type: obs.TypeSLOBreach})
	var breach *obs.Event
	for i := range breaches {
		if breaches[i].SLO == "availability" && breaches[i].Level == obs.LevelError {
			breach = &breaches[i]
			break
		}
	}
	if breach == nil {
		t.Fatalf("no availability slo_breach event; got %+v", breaches)
	}
	if len(breach.TraceIDs) == 0 {
		t.Fatalf("breach event cross-links no trace IDs: %+v", breach)
	}
	for _, w := range obs.DefaultWindows {
		if breach.Burn[w.Name] < st.BurnThreshold {
			t.Fatalf("breach burn[%s] = %.1f below threshold %.1f", w.Name, breach.Burn[w.Name], st.BurnThreshold)
		}
	}
	// The cross-linked IDs must resolve on the trace endpoint.
	var tr trace.Trace
	if code := getJSON(t, ts.URL+"/debug/dv/trace/"+breach.TraceIDs[0], &tr); code != http.StatusOK {
		t.Fatalf("GET trace %s = %d, want 200", breach.TraceIDs[0], code)
	}
	if tr.ID != breach.TraceIDs[0] {
		t.Fatalf("trace id = %q, want %q", tr.ID, breach.TraceIDs[0])
	}

	// /debug/dv/events?type=slo_breach surfaces the same event over HTTP.
	var er obs.EventsResponse
	if code := getJSON(t, ts.URL+"/debug/dv/events?type=slo_breach&level=error", &er); code != http.StatusOK {
		t.Fatalf("GET events = %d", code)
	}
	if len(er.Events) == 0 || er.Events[0].SLO != "availability" {
		t.Fatalf("slo_breach filter returned %+v", er.Events)
	}
}

// TestReloadFailureEvent checks the non-request event sources on the
// serve path: a failed hot reload emits a reload error event.
func TestReloadFailureEvent(t *testing.T) {
	events := obs.New(obs.Config{})
	s, _ := newTestServer(t, Config{
		Events: events,
		Loader: func() (*deepvalidation.Detector, error) {
			return nil, errors.New("artifacts corrupted")
		},
	})
	if _, err := s.Reload(); err == nil {
		t.Fatal("reload with a failing loader succeeded")
	}
	evs := events.Snapshot(obs.Filter{Type: obs.TypeReload})
	if len(evs) == 0 {
		t.Fatal("no reload event emitted")
	}
	e := evs[0]
	if e.Level != obs.LevelError || e.Err == "" {
		t.Fatalf("reload failure event = %+v, want error level with message", e)
	}
	if e.Extra["fail_streak"] == nil {
		t.Fatalf("reload event missing fail_streak: %+v", e.Extra)
	}
}
