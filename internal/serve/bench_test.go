package serve

// TestBenchServeSnapshot records serving throughput into the repo's
// committed perf trajectory, BENCH_pipeline.json: the same concurrent
// client load is driven through an unbatched server (MaxBatch 1, no
// window — one dispatch per request) and a micro-batched one, and the
// requests-per-second of each plus the batched:unbatched speedup are
// merged into the snapshot under a "serving" key. Gated behind
// DV_BENCH_SNAPSHOT=1 like the pipeline snapshot (see `make snapshot`,
// which runs both in order so the merge never races).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"deepvalidation/internal/metrics"
	"deepvalidation/internal/telemetry"
)

const benchSnapshotPath = "../../BENCH_pipeline.json"

type serveBenchEntry struct {
	Name        string  `json:"name"`
	MaxBatch    int     `json:"max_batch"`
	WindowMs    float64 `json:"batch_window_ms"`
	Requests    int     `json:"requests"`
	Clients     int     `json:"clients"`
	RPS         float64 `json:"requests_per_second"`
	MeanBatch   float64 `json:"mean_batch_size"`
	SpeedupVsUB float64 `json:"speedup_vs_unbatched"`
}

// serveThroughput drives requests concurrent check requests through a
// fresh server at the given batching config and reports RPS plus the
// mean dispatched batch size (from the server's own histogram).
func serveThroughput(t *testing.T, cfg Config, clients, perClient int) (rps, meanBatch float64) {
	t.Helper()
	reg := cfg.Registry
	_, ts := newTestServer(t, cfg)
	imgs, _ := testImages(77, 32)
	bodies := make([][]byte, len(imgs))
	for i, img := range imgs {
		bodies[i] = checkBody(t, img)
	}
	client := ts.Client()

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				body := bodies[(c*31+j*7)%len(bodies)]
				resp, err := client.Post(ts.URL+"/v1/check", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d request %d: status %d", c, j, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := clients * perClient
	rps = float64(total) / elapsed.Seconds()
	snap := reg.Snapshot()
	if h, ok := snap.Histograms[MetricBatchSize]; ok && h.Count > 0 {
		meanBatch = h.Sum / float64(h.Count)
	}
	return rps, meanBatch
}

func TestBenchServeSnapshot(t *testing.T) {
	if os.Getenv("DV_BENCH_SNAPSHOT") == "" {
		t.Skip("set DV_BENCH_SNAPSHOT=1 to refresh BENCH_pipeline.json")
	}

	// Closed-loop clients: enough to keep more than MaxBatch requests
	// outstanding, so batches fill from the queue instead of waiting out
	// the window (with fewer clients than MaxBatch, the window is pure
	// added latency and the measurement would say nothing about batching).
	clients := 8 * runtime.GOMAXPROCS(0)
	if clients < 64 {
		clients = 64
	}
	perClient := 50
	settings := []struct {
		name     string
		maxBatch int
		window   time.Duration
	}{
		{"unbatched", 1, -1},
		{"batched", 32, 2 * time.Millisecond},
	}

	entries := make([]serveBenchEntry, 0, len(settings))
	for _, s := range settings {
		cfg := Config{
			MaxBatch:    s.maxBatch,
			BatchWindow: s.window,
			QueueDepth:  4096,
			Workers:     2,
			Registry:    telemetry.New(),
		}
		rps, meanBatch := serveThroughput(t, cfg, clients, perClient)
		winMs := float64(s.window) / float64(time.Millisecond)
		if s.window < 0 {
			winMs = 0
		}
		entries = append(entries, serveBenchEntry{
			Name:     s.name,
			MaxBatch: s.maxBatch,
			WindowMs: winMs,
			Requests: clients * perClient,
			Clients:  clients,
			RPS:      rps,
			MeanBatch: func() float64 {
				if s.maxBatch == 1 {
					return 1
				}
				return meanBatch
			}(),
		})
	}
	base := entries[0].RPS
	for i := range entries {
		entries[i].SpeedupVsUB = entries[i].RPS / base
	}
	speedup := entries[len(entries)-1].SpeedupVsUB

	note := "micro-batched vs per-request dispatch under the same concurrent load; " +
		"batching amortizes dispatch and rides the detector's parallel CheckBatch pool"
	if runtime.GOMAXPROCS(0) < 4 {
		note = fmt.Sprintf("snapshot machine exposes only %d CPU(s); micro-batching cannot fan scoring out, "+
			"so the recorded speedup reflects dispatch amortization only — rerun `make snapshot` on a multicore host",
			runtime.GOMAXPROCS(0))
	}

	// Merge under "serving" so the pipeline snapshot's fields survive.
	raw, err := os.ReadFile(benchSnapshotPath)
	if err != nil {
		t.Fatalf("pipeline snapshot must exist before the serving merge (run it first, as `make snapshot` does): %v", err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	serving, err := json.Marshal(struct {
		Note       string            `json:"note"`
		Benchmarks []serveBenchEntry `json:"benchmarks"`
		Speedup    float64           `json:"batched_speedup_vs_unbatched"`
	}{note, entries, speedup})
	if err != nil {
		t.Fatal(err)
	}
	doc["serving"] = serving
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(benchSnapshotPath, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, e := range entries {
		t.Logf("%-10s max_batch=%-3d window=%gms: %8.1f req/s (mean batch %.1f, %.2fx)",
			e.Name, e.MaxBatch, e.WindowMs, e.RPS, e.MeanBatch, e.SpeedupVsUB)
	}
	if runtime.GOMAXPROCS(0) >= 4 && speedup < 1 {
		t.Errorf("micro-batched throughput %.2fx below unbatched on a %d-way host",
			speedup, runtime.GOMAXPROCS(0))
	}
}

type workerBenchEntry struct {
	Workers     int     `json:"workers"`
	Requests    int     `json:"requests"`
	Clients     int     `json:"clients"`
	RPS         float64 `json:"requests_per_second"`
	SpeedupVsW1 float64 `json:"speedup_vs_workers1"`
}

// TestBenchServeWorkersSnapshot records micro-batched serving
// throughput at dispatch -workers 1, 2, and 4 into BENCH_pipeline.json
// under a "serving_workers" key — the multicore leg ROADMAP item 1
// calls for, so worker-pool wins register when the snapshot host has
// more than one CPU. Gated behind DV_BENCH_SNAPSHOT=1 like the other
// snapshot passes (see `make snapshot`).
func TestBenchServeWorkersSnapshot(t *testing.T) {
	if os.Getenv("DV_BENCH_SNAPSHOT") == "" {
		t.Skip("set DV_BENCH_SNAPSHOT=1 to refresh BENCH_pipeline.json")
	}

	clients := 8 * runtime.GOMAXPROCS(0)
	if clients < 64 {
		clients = 64
	}
	perClient := 50
	entries := make([]workerBenchEntry, 0, 3)
	for _, workers := range []int{1, 2, 4} {
		cfg := Config{
			MaxBatch:    32,
			BatchWindow: 2 * time.Millisecond,
			QueueDepth:  4096,
			Workers:     workers,
			Registry:    telemetry.New(),
		}
		rps, _ := serveThroughput(t, cfg, clients, perClient)
		entries = append(entries, workerBenchEntry{
			Workers:  workers,
			Requests: clients * perClient,
			Clients:  clients,
			RPS:      rps,
		})
	}
	base := entries[0].RPS
	for i := range entries {
		entries[i].SpeedupVsW1 = entries[i].RPS / base
		t.Logf("workers=%d: %8.1f req/s (%.2fx vs workers=1)",
			entries[i].Workers, entries[i].RPS, entries[i].SpeedupVsW1)
	}

	note := "micro-batched serving throughput across dispatch worker counts; verdicts are identical at any width"
	if runtime.GOMAXPROCS(0) < 4 {
		note = fmt.Sprintf("snapshot machine exposes only %d CPU(s), so extra dispatch workers measure pool overhead, "+
			"not speedup — rerun `make snapshot` on a multicore host to record the scaling curve",
			runtime.GOMAXPROCS(0))
	}

	raw, err := os.ReadFile(benchSnapshotPath)
	if err != nil {
		t.Fatalf("pipeline snapshot must exist before the workers merge (run it first, as `make snapshot` does): %v", err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	workersDoc, err := json.Marshal(struct {
		Note       string             `json:"note"`
		Benchmarks []workerBenchEntry `json:"benchmarks"`
	}{note, entries})
	if err != nil {
		t.Fatal(err)
	}
	doc["serving_workers"] = workersDoc
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(benchSnapshotPath, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

type traceBenchEntry struct {
	TraceSample float64 `json:"trace_sample"`
	Requests    int     `json:"requests"`
	Clients     int     `json:"clients"`
	RPS         float64 `json:"requests_per_second"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

// serveLatencies drives concurrent check requests through a fresh
// server and reports per-request latency percentiles plus RPS.
func serveLatencies(t *testing.T, cfg Config, clients, perClient int) (p50ms, p99ms, rps float64) {
	t.Helper()
	_, ts := newTestServer(t, cfg)
	imgs, _ := testImages(77, 32)
	bodies := make([][]byte, len(imgs))
	for i, img := range imgs {
		bodies[i] = checkBody(t, img)
	}
	client := ts.Client()

	lats := make([][]float64, clients)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lats[c] = make([]float64, 0, perClient)
			for j := 0; j < perClient; j++ {
				body := bodies[(c*31+j*7)%len(bodies)]
				t0 := time.Now()
				resp, err := client.Post(ts.URL+"/v1/check", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lats[c] = append(lats[c], time.Since(t0).Seconds())
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d request %d: status %d", c, j, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Float64s(all)
	qs := metrics.QuantilesSorted(all, []float64{0.5, 0.99})
	return qs[0] * 1e3, qs[1] * 1e3, float64(len(all)) / elapsed.Seconds()
}

// TestBenchTraceSnapshot records the serve-path latency cost of
// per-verdict tracing (p50/p99 at -trace-sample 0, 0.1, and 1.0 under
// the dvserve default flight+drift config) into BENCH_pipeline.json
// under a "tracing" key, and guards the hot path: with tracing fully
// disabled, the batch-scoring call the server actually makes
// (CheckBatchDetailed with no detail sinks) must stay within 3% of the
// plain CheckBatch it replaced.
func TestBenchTraceSnapshot(t *testing.T) {
	if os.Getenv("DV_BENCH_SNAPSHOT") == "" {
		t.Skip("set DV_BENCH_SNAPSHOT=1 to refresh BENCH_pipeline.json")
	}

	clients := 8 * runtime.GOMAXPROCS(0)
	if clients < 64 {
		clients = 64
	}
	perClient := 50
	entries := make([]traceBenchEntry, 0, 3)
	for _, sample := range []float64{0, 0.1, 1.0} {
		cfg := Config{
			MaxBatch:    32,
			BatchWindow: 2 * time.Millisecond,
			QueueDepth:  4096,
			Workers:     2,
			Registry:    telemetry.New(),
			TraceSample: sample,
		}
		p50, p99, rps := serveLatencies(t, cfg, clients, perClient)
		entries = append(entries, traceBenchEntry{
			TraceSample: sample,
			Requests:    clients * perClient,
			Clients:     clients,
			RPS:         rps,
			P50Ms:       p50,
			P99Ms:       p99,
		})
		t.Logf("trace_sample=%-4g: %8.1f req/s, p50 %.2fms, p99 %.2fms", sample, rps, p50, p99)
	}

	// Hot-path guard: the serving batcher with every observability sink
	// off calls CheckBatchDetailed(imgs, nil); it must not cost more
	// than plain CheckBatch. The batched scoring diet (PR 8) cut one
	// call to a few milliseconds, which put a wall-clock comparison of
	// the two under the noise floor of a shared host — the paths share
	// their entire implementation now, so the timing delta measured
	// only scheduler and GC luck. The enforced guard is therefore
	// allocation-based (deterministic for a fixed workload): the
	// sinks-off detailed path may not allocate beyond CheckBatch plus
	// the small fixed slack below, which fails loudly if tracing-era
	// machinery (Detail fills, span trees, ID generation — all of
	// which allocate) creeps back into the disabled path. The
	// interleaved min-of-runs wall-clock delta is still measured and
	// recorded in the snapshot, but as information, not a gate.
	det := loadDetector(t)
	imgs, _ := testImages(99, 256)
	warm := func(f func() error) {
		if err := f(); err != nil {
			t.Fatal(err)
		}
	}
	checkBatch := func() error { _, err := det.CheckBatch(imgs); return err }
	detailedNil := func() error { _, err := det.CheckBatchDetailed(imgs, nil); return err }
	warm(checkBatch)
	warm(detailedNil)
	baseAllocs := testing.AllocsPerRun(10, func() { warm(checkBatch) })
	instrAllocs := testing.AllocsPerRun(10, func() { warm(detailedNil) })
	// Slack: a handful of fixed-size bookkeeping allocations per batch
	// is invisible at serving granularity; per-image work is not.
	if instrAllocs > baseAllocs+8 {
		t.Errorf("sinks-off CheckBatchDetailed allocates %.0f/op vs CheckBatch %.0f/op; tracing work leaked into the disabled path",
			instrAllocs, baseAllocs)
	}
	const callsPerRun = 12
	timeOnce := func(f func() error) float64 {
		runtime.GC()
		t0 := time.Now()
		for c := 0; c < callsPerRun; c++ {
			warm(f)
		}
		return time.Since(t0).Seconds() / callsPerRun
	}
	base, instrumented := 0.0, 0.0
	for r := 0; r < 6; r++ {
		// Alternate which side runs first: whatever slow phase a round
		// lands in (GC assist debt, thermal dip) must not systematically
		// tax one side.
		first, second := checkBatch, detailedNil
		if r%2 == 1 {
			first, second = detailedNil, checkBatch
		}
		d1, d2 := timeOnce(first), timeOnce(second)
		if r%2 == 1 {
			d1, d2 = d2, d1
		}
		if base == 0 || d1 < base {
			base = d1
		}
		if instrumented == 0 || d2 < instrumented {
			instrumented = d2
		}
	}
	overheadPct := (instrumented - base) / base * 100
	t.Logf("ScoreBatch hot path: CheckBatch %.1fms/%.0f allocs, CheckBatchDetailed(nil) %.1fms/%.0f allocs, wall-clock delta %.2f%% (informational)",
		base*1e3, baseAllocs, instrumented*1e3, instrAllocs, overheadPct)

	raw, err := os.ReadFile(benchSnapshotPath)
	if err != nil {
		t.Fatalf("pipeline snapshot must exist before the tracing merge (run it first, as `make snapshot` does): %v", err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	tracing, err := json.Marshal(struct {
		Note        string            `json:"note"`
		Benchmarks  []traceBenchEntry `json:"benchmarks"`
		OverheadPct float64           `json:"scorebatch_overhead_pct_tracing_disabled"`
	}{
		"per-verdict tracing cost on the serve path (dvserve default flight+drift config); " +
			"the overhead figure is the detector-level batch-scoring wall-clock delta with every sink disabled " +
			"(informational — since PR 8 the enforced guard is allocation parity, deterministic where " +
			"millisecond-scale wall clock is not)",
		entries, overheadPct,
	})
	if err != nil {
		t.Fatal(err)
	}
	doc["tracing"] = tracing
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(benchSnapshotPath, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
