package serve

// FuzzCheckRequest hardens the serving subsystem's input path the way
// FuzzImageValidate hardens the library's: for arbitrary request
// bodies the JSON decoders must either reject cleanly or produce an
// image that passes Validate — and must never panic. Wired into the CI
// fuzz step next to FuzzImageValidate.

import (
	"testing"
)

func FuzzCheckRequest(f *testing.F) {
	f.Add([]byte(`{"channels":1,"height":2,"width":2,"pixels":[0,0.5,1,0.25]}`))
	f.Add([]byte(`{"channels":1,"height":2,"width":2,"pixels":[0,0.5,1]}`))                              // count mismatch
	f.Add([]byte(`{"channels":-1,"height":8,"width":8,"pixels":[]}`))                                    // negative dimension
	f.Add([]byte(`{"channels":4611686018427387904,"height":4611686018427387904,"width":4,"pixels":[]}`)) // overflow bait
	f.Add([]byte(`{"channels":1,"height":1,"width":1,"pixels":[1e309]}`))                                // float overflow literal
	f.Add([]byte(`{"channels":1,"height":1,"width":1,"pixels":[0],"x":1}`))                              // unknown field
	f.Add([]byte(`{"channels":1,`))                                                                      // truncated
	f.Add([]byte(`{"channels":1,"height":1,"width":1,"pixels":[0]} trailing`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"images":[{"channels":1,"height":1,"width":1,"pixels":[0.5]}]}`))
	f.Add([]byte(`{"images":[]}`))
	f.Add([]byte(`{"images":null}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		img, _, err := decodeCheckRequest(data)
		if err == nil {
			if verr := img.Validate(); verr != nil {
				t.Fatalf("decodeCheckRequest accepted an image Validate rejects: %v", verr)
			}
		}
		imgs, explains, err := decodeBatchRequest(data)
		if err == nil {
			if len(imgs) == 0 {
				t.Fatal("decodeBatchRequest accepted an empty batch")
			}
			if len(explains) != len(imgs) {
				t.Fatalf("decodeBatchRequest returned %d explain flags for %d images", len(explains), len(imgs))
			}
			for i, im := range imgs {
				if verr := im.Validate(); verr != nil {
					t.Fatalf("decodeBatchRequest accepted image %d that Validate rejects: %v", i, verr)
				}
			}
		}
	})
}
