package serve

// Chaos battery for the serving subsystem: reload under artifact
// corruption, degradation and recovery of /readyz, retrying reloads
// with backoff, geometry-change rejection, and the batch fallback
// path under fault injection. Throughout, the invariant is the one
// the paper's fail-safe deployment needs: no matter what happens to
// the artifacts on disk, the last good detector keeps answering with
// bit-identical verdicts.

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"deepvalidation"
	"deepvalidation/internal/faultinject"
	"deepvalidation/internal/telemetry"
)

// copyFile clones a fixture artifact into a writable location.
func copyFile(t testing.TB, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestReloadUnderCorruption is the headline chaos scenario: the
// validator artifact rots on disk, reloads fail until the server
// degrades, verdicts stay bit-identical throughout, and restoring the
// artifact heals everything.
func TestReloadUnderCorruption(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.gob")
	valPath := filepath.Join(dir, "validator.gob")
	copyFile(t, testModelPath, modelPath)
	copyFile(t, testValPath, valPath)

	reg := telemetry.New()
	s, ts := newTestServer(t, Config{
		BatchWindow: time.Millisecond,
		Registry:    reg,
		Loader: func() (*deepvalidation.Detector, error) {
			return deepvalidation.Load(modelPath, valPath)
		},
		ReloadMaxFailures: 3,
	})

	img, _ := testImages(41, 1)
	ref := loadDetector(t)
	want, err := ref.Check(img[0])
	if err != nil {
		t.Fatal(err)
	}
	checkOnce := func(ctx string) {
		resp, body := post(t, ts.URL+"/v1/check", checkBody(t, img[0]))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: check = %d (body %q)", ctx, resp.StatusCode, body)
		}
		var v VerdictResponse
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatal(err)
		}
		sameVerdict(t, v, want, ctx)
	}
	checkOnce("before corruption")

	// Rot a payload byte of the validator container: the checksum
	// catches it at the next reload.
	fi, err := os.Stat(valPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.FlipBit(valPath, fi.Size()-10, 4); err != nil {
		t.Fatal(err)
	}

	before := s.Detector()
	for i := 1; i <= 3; i++ {
		resp, body := post(t, ts.URL+"/v1/reload", nil)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("reload %d of corrupt artifact = %d (body %q), want 500", i, resp.StatusCode, body)
		}
		if got := reg.Counter(MetricReloadFailed).Value(); got != int64(i) {
			t.Fatalf("%s = %d after %d failures", MetricReloadFailed, got, i)
		}
		if s.Detector() != before {
			t.Fatal("failed reload swapped the detector")
		}
		checkOnce("between failed reloads")
	}

	if !s.Degraded() {
		t.Fatalf("server not degraded after 3 consecutive reload failures (streak %d)", s.FailStreak())
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256)
	n, _ := resp.Body.Read(data)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(data[:n]), "degraded") {
		t.Fatalf("degraded readyz = %d %q, want 503 degraded", resp.StatusCode, data[:n])
	}
	// Degraded is an orchestrator signal, not an outage: checks still
	// answer on the last good detector.
	checkOnce("while degraded")

	// Restore the artifact: the next reload succeeds and heals readyz.
	copyFile(t, testValPath, valPath)
	resp2, body := post(t, ts.URL+"/v1/reload", nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("reload of restored artifact = %d (body %q)", resp2.StatusCode, body)
	}
	if s.Degraded() || s.FailStreak() != 0 {
		t.Fatalf("degradation did not clear (streak %d)", s.FailStreak())
	}
	if g, ok := reg.Snapshot().Gauges[MetricReloadFailStreak]; !ok || g != 0 {
		t.Fatalf("%s gauge = %v after recovery, want 0", MetricReloadFailStreak, g)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after recovery = %d, want 200", resp.StatusCode)
	}
	checkOnce("after recovery")
}

// TestReloadWithBackoff drives the SIGHUP retry loop through a flaky
// fault: two injected failures, then success on the third attempt.
func TestReloadWithBackoff(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	reg := telemetry.New()
	s, _ := newTestServer(t, Config{
		BatchWindow: time.Millisecond,
		Registry:    reg,
		Loader: func() (*deepvalidation.Detector, error) {
			return deepvalidation.Load(testModelPath, testValPath)
		},
		ReloadRetries:    3,
		ReloadBackoff:    time.Millisecond,
		ReloadBackoffCap: 4 * time.Millisecond,
	})

	faultinject.ArmCount(faultinject.PointServeReload, 2)
	eps, err := s.ReloadWithBackoff(context.Background())
	if err != nil {
		t.Fatalf("flaky reload did not recover: %v", err)
	}
	if math.Float64bits(eps) != math.Float64bits(testEps) {
		t.Fatalf("recovered reload eps = %v, want %v", eps, testEps)
	}
	if got := reg.Counter(MetricReloadFailed).Value(); got != 2 {
		t.Fatalf("%s = %d, want 2 (the injected failures)", MetricReloadFailed, got)
	}
	if s.FailStreak() != 0 {
		t.Fatalf("streak = %d after eventual success, want 0", s.FailStreak())
	}

	// A permanently failing reload exhausts its retries and reports the
	// last failure.
	faultinject.Arm(faultinject.PointServeReload, nil)
	if _, err := s.ReloadWithBackoff(context.Background()); err == nil {
		t.Fatal("permanently failing reload reported success")
	}
}

// TestReloadRejectsGeometryChange: a loader that comes back with a
// detector of a different input geometry must be rejected — queued
// requests were admitted against the old shape.
func TestReloadRejectsGeometryChange(t *testing.T) {
	// A real detector with 16×16 inputs (the fixture serves 8×8).
	rng := rand.New(rand.NewSource(3))
	n := 90
	imgs := make([]deepvalidation.Image, 0, n)
	labels := make([]int, 0, n)
	for i := 0; i < n; i++ {
		k := rng.Intn(3)
		px := make([]float64, 256)
		for j := range px {
			px[j] = 0.15 * rng.Float64()
		}
		for y := 5 * k; y < 5*k+5; y++ {
			for x := 0; x < 16; x++ {
				px[y*16+x] = 0.8 + 0.2*rng.Float64()
			}
		}
		imgs = append(imgs, deepvalidation.Image{Channels: 1, Height: 16, Width: 16, Pixels: px})
		labels = append(labels, k)
	}
	big, err := deepvalidation.Build(imgs, labels, deepvalidation.BuildConfig{
		Classes: 3, Epochs: 6, Width: 4, FCWidth: 16,
		SVMPerClass: 30, SVMFeatures: 64, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, Config{
		BatchWindow: time.Millisecond,
		Loader:      func() (*deepvalidation.Detector, error) { return big, nil },
	})
	before := s.Detector()
	resp, body := post(t, ts.URL+"/v1/reload", nil)
	if resp.StatusCode != http.StatusInternalServerError || !strings.Contains(body, "geometry") {
		t.Fatalf("geometry-changing reload = %d (body %q), want 500 mentioning geometry", resp.StatusCode, body)
	}
	if s.Detector() != before {
		t.Fatal("geometry-changing reload swapped the detector")
	}
	img, _ := testImages(43, 1)
	if resp, _ := post(t, ts.URL+"/v1/check", checkBody(t, img[0])); resp.StatusCode != http.StatusOK {
		t.Fatalf("check after rejected reload = %d, want 200", resp.StatusCode)
	}
}

// TestBatchFallbackUnderFault arms the serve.batch point so every
// micro-batch "fails" and is re-scored singly; the per-request
// fallback must produce bit-identical verdicts, invisibly to clients.
func TestBatchFallbackUnderFault(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	_, ts := newTestServer(t, Config{MaxBatch: 8, BatchWindow: 5 * time.Millisecond})
	ref := loadDetector(t)
	imgs, _ := testImages(47, 4)
	want := make([]deepvalidation.Verdict, len(imgs))
	for i, img := range imgs {
		v, err := ref.Check(img)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}

	faultinject.Arm(faultinject.PointServeBatch, nil)
	resp, body := post(t, ts.URL+"/v1/batch", batchBody(t, imgs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch under fault = %d (body %q)", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal([]byte(body), &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Verdicts) != len(imgs) {
		t.Fatalf("got %d verdicts for %d images", len(br.Verdicts), len(imgs))
	}
	for i, v := range br.Verdicts {
		sameVerdict(t, v, want[i], "fallback path")
	}
	// Healthy verdicts must not carry the quarantined field on the wire
	// (omitempty keeps the happy-path format unchanged).
	if strings.Contains(body, "quarantined") {
		t.Fatalf("healthy batch response leaks the quarantined field: %s", body)
	}
}
