package serve

// Serving-path extension of the PR 1 determinism suite: GOMAXPROCS
// concurrent clients hammer the micro-batcher and every verdict that
// comes back over HTTP must be bit-identical to a sequential
// Detector.Check of the same image — at several MaxBatch/BatchWindow
// settings, including batching disabled. Run under -race by `make
// race` and CI, this doubles as the data-race proof for the admission
// queue, the batcher, and the atomic detector handle.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"deepvalidation"
)

// refVerdicts scores the pool sequentially through Detector.Check on a
// fresh detector — the ground truth every served verdict must match
// bit for bit.
func refVerdicts(t *testing.T, pool []deepvalidation.Image) []deepvalidation.Verdict {
	t.Helper()
	ref := loadDetector(t)
	out := make([]deepvalidation.Verdict, len(pool))
	for i, img := range pool {
		v, err := ref.Check(img)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = v
	}
	return out
}

func TestServeEquivalenceConcurrent(t *testing.T) {
	pool, _ := testImages(41, 40)
	want := refVerdicts(t, pool)

	settings := []struct {
		name string
		cfg  Config
	}{
		{"unbatched", Config{MaxBatch: 1, BatchWindow: -1, Workers: 1}},
		{"small window", Config{MaxBatch: 4, BatchWindow: time.Millisecond, Workers: 2}},
		{"wide batch", Config{MaxBatch: 32, BatchWindow: 5 * time.Millisecond, Workers: 4}},
	}
	for _, tc := range settings {
		t.Run(tc.name, func(t *testing.T) {
			_, ts := newTestServer(t, tc.cfg)
			clients := runtime.GOMAXPROCS(0)
			if clients < 2 {
				clients = 2
			}
			const perClient = 25
			errs := make(chan error, clients)
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					errs <- hammer(ts, pool, want, c, perClient)
				}(c)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// hammer issues perClient requests, alternating the single-check and
// batch endpoints, and verifies every verdict against the sequential
// reference.
func hammer(ts *httptest.Server, pool []deepvalidation.Image, want []deepvalidation.Verdict, client, perClient int) error {
	for j := 0; j < perClient; j++ {
		i := (client*31 + j*7) % len(pool)
		if j%3 == 2 {
			// Batch of three consecutive pool images.
			idx := []int{i, (i + 1) % len(pool), (i + 2) % len(pool)}
			imgs := make([]CheckRequest, len(idx))
			for k, p := range idx {
				img := pool[p]
				imgs[k] = CheckRequest{Channels: img.Channels, Height: img.Height, Width: img.Width, Pixels: img.Pixels}
			}
			body, err := json.Marshal(BatchRequest{Images: imgs})
			if err != nil {
				return err
			}
			var br BatchResponse
			if err := postJSON(ts.URL+"/v1/batch", body, &br); err != nil {
				return fmt.Errorf("client %d batch %d: %w", client, j, err)
			}
			if len(br.Verdicts) != len(idx) {
				return fmt.Errorf("client %d batch %d: %d verdicts for %d images", client, j, len(br.Verdicts), len(idx))
			}
			for k, p := range idx {
				if err := equalVerdict(br.Verdicts[k], want[p]); err != nil {
					return fmt.Errorf("client %d batch %d image %d: %w", client, j, p, err)
				}
			}
			continue
		}
		img := pool[i]
		body, err := json.Marshal(CheckRequest{Channels: img.Channels, Height: img.Height, Width: img.Width, Pixels: img.Pixels})
		if err != nil {
			return err
		}
		var v VerdictResponse
		if err := postJSON(ts.URL+"/v1/check", body, &v); err != nil {
			return fmt.Errorf("client %d check %d: %w", client, j, err)
		}
		if err := equalVerdict(v, want[i]); err != nil {
			return fmt.Errorf("client %d check %d (image %d): %w", client, j, i, err)
		}
	}
	return nil
}

func postJSON(url string, body []byte, out any) error {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func equalVerdict(got VerdictResponse, want deepvalidation.Verdict) error {
	if got.Label != want.Label || got.Valid != want.Valid ||
		math.Float64bits(got.Confidence) != math.Float64bits(want.Confidence) ||
		math.Float64bits(got.Discrepancy) != math.Float64bits(want.Discrepancy) {
		return fmt.Errorf("served verdict %+v != sequential %+v", got, want)
	}
	return nil
}

// TestConcurrentReloadUnderLoad swaps detectors while clients hammer
// the server: every request must still succeed with a bit-identical
// verdict (old and new detectors are loaded from the same artifacts),
// proving the atomic handle never exposes a half-built detector.
func TestConcurrentReloadUnderLoad(t *testing.T) {
	pool, _ := testImages(43, 20)
	want := refVerdicts(t, pool)
	cfg := Config{
		MaxBatch: 8, BatchWindow: time.Millisecond, Workers: 2,
		Loader: func() (*deepvalidation.Detector, error) {
			return deepvalidation.Load(testModelPath, testValPath)
		},
	}
	s, ts := newTestServer(t, cfg)

	stop := make(chan struct{})
	reloadErr := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				reloadErr <- nil
				return
			default:
				if _, err := s.Reload(); err != nil {
					reloadErr <- err
					return
				}
			}
		}
	}()

	clients := runtime.GOMAXPROCS(0)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			errs <- hammer(ts, pool, want, c, 15)
		}(c)
	}
	wg.Wait()
	close(stop)
	if err := <-reloadErr; err != nil {
		t.Fatalf("reload loop: %v", err)
	}
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
