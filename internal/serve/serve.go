// Package serve is the online serving subsystem: an HTTP/JSON front
// end that validates live inference traffic with a Deep Validation
// detector — the deployment mode the paper motivates with its
// camera-monitor scenario (Section I), where a fail-safe supervisor
// must flag corner-case inputs as they arrive.
//
// The core of the package is a micro-batcher. Requests admitted
// through a bounded queue are collected into batches of up to
// Config.MaxBatch, or for at most Config.BatchWindow (whichever fires
// first), and dispatched to Detector.CheckBatch on a bounded worker
// pool — so serving throughput rides the parallel scoring pipeline
// instead of paying per-request scoring cost, while verdicts stay
// bit-identical to sequential Detector.Check calls.
//
// Robustness properties, in order of importance:
//
//   - Bounded memory: the admission queue sheds load with 429 +
//     Retry-After once Config.QueueDepth requests are waiting, and
//     request bodies are capped at Config.MaxBodyBytes (413 beyond).
//   - Bounded latency: every request carries a context deadline
//     (Config.RequestTimeout); requests whose deadline expires before
//     a verdict is produced get 504 and are skipped by the batcher.
//   - Graceful drain: Drain stops admission, lets in-flight requests
//     finish on the still-running batcher, then stops it — no verdict
//     in flight is lost on SIGTERM.
//   - Zero-downtime reload: the detector sits behind an atomic
//     deepvalidation.Handle; Reload swaps in a freshly loaded
//     model+validator pair (carrying the live ε across) while checks
//     already running finish on the detector they started with.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"deepvalidation"
	"deepvalidation/internal/core"
	"deepvalidation/internal/faultinject"
	"deepvalidation/internal/obs"
	"deepvalidation/internal/telemetry"
	"deepvalidation/internal/trace"
)

// Metric names for the serving instruments, following the repository's
// Prometheus conventions (dv_ prefix, _total counters, _seconds
// timings). Endpoint-scoped families carry an endpoint label.
const (
	// MetricQueueDepth gauges the number of requests currently waiting
	// in the admission queue (shedding begins at Config.QueueDepth).
	MetricQueueDepth = "dv_serve_queue_depth"
	// MetricBatchSize histograms how many requests each dispatched
	// micro-batch carried — the batcher's effectiveness signal.
	MetricBatchSize = "dv_serve_batch_size"
	// MetricRequestLatency is the end-to-end handler latency
	// (decode + queue wait + scoring + encode), labeled by endpoint.
	MetricRequestLatency = "dv_serve_request_latency_seconds"
	// MetricRequests counts handled requests, labeled by endpoint.
	MetricRequests = "dv_serve_requests_total"
	// MetricShed counts requests rejected with 429 by the full queue.
	MetricShed = "dv_serve_shed_total"
	// MetricDeadline counts requests whose deadline expired before a
	// verdict was produced (504).
	MetricDeadline = "dv_serve_deadline_expired_total"
	// MetricReload counts successful detector hot-swaps.
	MetricReload = "dv_serve_reload_total"
	// MetricReloadFailed counts rejected hot-swaps (loader errors,
	// corrupt or incompatible artifacts). Every failure leaves the
	// previous detector serving.
	MetricReloadFailed = "dv_serve_reload_failed_total"
	// MetricReloadFailStreak gauges the consecutive reload failures
	// since the last success; /readyz degrades once it reaches
	// Config.ReloadMaxFailures.
	MetricReloadFailStreak = "dv_serve_reload_fail_streak"
)

// BatchSizeBuckets cover micro-batch sizes from singletons to the
// largest sensible MaxBatch.
var BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// Config tunes a Server. The zero value serves with the documented
// defaults.
type Config struct {
	// MaxBatch caps how many requests one micro-batch may carry
	// (default 32).
	MaxBatch int
	// BatchWindow is how long the batcher waits for a batch to fill
	// after the first request arrives. 0 means the default (2ms); a
	// negative value disables waiting entirely, so each batch carries
	// only the requests already queued at dispatch time.
	BatchWindow time.Duration
	// QueueDepth bounds the admission queue; requests beyond it are
	// shed with 429 (default 256).
	QueueDepth int
	// Workers bounds how many micro-batches are scored concurrently
	// (default 2). Each batch additionally fans across the detector's
	// own CheckBatch worker pool.
	Workers int
	// MaxBodyBytes caps request bodies; larger ones get 413
	// (default 8 MiB).
	MaxBodyBytes int64
	// RequestTimeout is the per-request deadline; requests that cannot
	// be answered in time get 504 (default 30s).
	RequestTimeout time.Duration
	// RetryAfter is advertised in the Retry-After header of 429
	// responses (default 1s, rounded up to whole seconds).
	RetryAfter time.Duration
	// Loader, when non-nil, enables POST /v1/reload and Reload: it
	// returns a freshly loaded detector to swap in. The server carries
	// the live ε across the swap, so loaders should not calibrate.
	Loader func() (*deepvalidation.Detector, error)
	// ReloadMaxFailures is how many consecutive reload failures flip
	// /readyz to degraded (default 3). The server keeps answering
	// checks on the last good detector either way; degradation is the
	// operator signal that the artifact pipeline is broken.
	ReloadMaxFailures int
	// ReloadRetries bounds the attempts of ReloadWithBackoff, the
	// SIGHUP-driven reload path (default 3).
	ReloadRetries int
	// ReloadBackoff is the initial retry delay of ReloadWithBackoff,
	// doubling per failure up to ReloadBackoffCap (defaults 500ms and
	// 10s).
	ReloadBackoff    time.Duration
	ReloadBackoffCap time.Duration
	// ArtifactInfo, when non-nil, reports the SHA-256 payload checksums
	// (model, validator) of the artifacts currently on disk. It is
	// consulted once at startup and again after every successful
	// reload, and the result is surfaced in the /readyz JSON tail so a
	// fronting gateway can verify rollout convergence without a second
	// endpoint. Callers may use it to refresh dv_build_info too.
	ArtifactInfo func() (modelSHA256, validatorSHA256 string)
	// Registry, when non-nil, receives the serving metrics and the
	// detector's own instruments (verdict counters, discrepancy and
	// latency histograms). Nil disables collection at zero cost.
	Registry *telemetry.Registry
	// TraceSample enables per-verdict tracing: the head-sampling rate
	// in (0, 1]. Client-supplied X-DV-Trace-Id headers are always
	// traced when sampling is on; generated IDs are kept at this rate
	// (deterministically, by ID hash). 0 — the default — disables
	// tracing entirely: no IDs, no spans, no per-request allocations.
	TraceSample float64
	// TraceStore bounds the ring of retained sampled traces served on
	// /debug/dv/trace/{id} (default 256).
	TraceStore int
	// FlightSize bounds the flight recorder of recent verdicts served
	// on /debug/dv/flight. 0 means the default (256); negative disables
	// the recorder.
	FlightSize int
	// DriftWindow sizes the sliding window the drift watch compares
	// against the validator's fit-time reference. 0 means the default
	// (trace.DefaultDriftWindow); negative disables the watch. A
	// detector without a fit-time reference (legacy artifact) degrades
	// to drift-disabled regardless.
	DriftWindow int
	// DriftThreshold is the per-layer quantile-shift score at which
	// dv_drift_alarm raises (0 means trace.DefaultDriftThreshold).
	DriftThreshold float64
	// Events, when non-nil, receives one wide event per request
	// outcome, reload attempt, drift-alarm transition, quarantined
	// verdict, and SLO breach transition, and is served on
	// GET /debug/dv/events. Nil disables event emission entirely; the
	// hot path then builds nothing.
	Events *obs.Logger
	// SLO configures the burn-rate engine over the serving objectives.
	// The zero value is disabled.
	SLO SLOOptions
}

// SLOOptions declares the serving objectives the SLO engine evaluates
// as multi-window burn rates (see internal/obs). Zero-value fields take
// the documented defaults when Enabled.
type SLOOptions struct {
	// Enabled turns the engine on; it also needs Config.Registry, which
	// carries the counters the objectives difference.
	Enabled bool
	// Availability is the goal fraction of requests answered without
	// shedding (429) or deadline expiry (504); default 0.999.
	Availability float64
	// LatencyTarget and LatencyGoal declare the latency objective: at
	// least LatencyGoal of single-check requests finish within
	// LatencyTarget (defaults 250ms and 0.99). The target snaps up to
	// the enclosing latency-histogram bucket edge.
	LatencyTarget time.Duration
	LatencyGoal   float64
	// QuarantineGoal is the goal fraction of verdicts not quarantined
	// by non-finite numerics; default 0.999.
	QuarantineGoal float64
	// Windows, Interval, and Burn tune the engine; zero values mean
	// obs.DefaultWindows, obs.DefaultSLOInterval, and
	// obs.DefaultBurnThreshold.
	Windows  []obs.Window
	Interval time.Duration
	Burn     float64
}

// sloDefaults fills unset objective goals in place.
func (o *SLOOptions) sloDefaults() {
	if o.Availability <= 0 || o.Availability >= 1 {
		o.Availability = 0.999
	}
	if o.LatencyTarget <= 0 {
		o.LatencyTarget = 250 * time.Millisecond
	}
	if o.LatencyGoal <= 0 || o.LatencyGoal >= 1 {
		o.LatencyGoal = 0.99
	}
	if o.QuarantineGoal <= 0 || o.QuarantineGoal >= 1 {
		o.QuarantineGoal = 0.999
	}
}

// defaults fills unset fields in place.
func (c *Config) defaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.ReloadMaxFailures <= 0 {
		c.ReloadMaxFailures = 3
	}
	if c.ReloadRetries <= 0 {
		c.ReloadRetries = 3
	}
	if c.ReloadBackoff <= 0 {
		c.ReloadBackoff = 500 * time.Millisecond
	}
	if c.ReloadBackoffCap <= 0 {
		c.ReloadBackoffCap = 10 * time.Second
	}
	if c.TraceSample < 0 {
		c.TraceSample = 0
	}
	if c.TraceSample > 1 {
		c.TraceSample = 1
	}
	if c.TraceStore <= 0 {
		c.TraceStore = 256
	}
	if c.FlightSize == 0 {
		c.FlightSize = 256
	}
	if c.SLO.Enabled {
		c.SLO.sloDefaults()
	}
}

// Server is the serving subsystem: admission queue, micro-batcher,
// worker pool, and HTTP handlers. Construct with New, mount Handler on
// an http.Server, and shut down with Drain (or Close when no HTTP
// server is involved).
type Server struct {
	cfg    Config
	handle *deepvalidation.Handle

	queue chan *pending
	depth atomic.Int64 // admitted but not yet dequeued; bounds the queue
	pulls atomic.Int64 // requests the batcher has dequeued (test sync point)
	sem   chan struct{}
	stop  chan struct{}
	wg    sync.WaitGroup // batcher goroutine + in-flight batch workers

	ready     atomic.Bool
	draining  atomic.Bool
	closed    atomic.Bool // Close is permanent; SetDrain(false) must not undo it
	closeOnce sync.Once

	reloadMu   sync.Mutex   // serializes Reload swaps
	failStreak atomic.Int64 // consecutive reload failures since the last success

	// artSHAs holds the {model, validator} payload checksums reported
	// by Config.ArtifactInfo, refreshed on successful reloads.
	artSHAs atomic.Pointer[[2]string]

	// Request-scoped observability; all nil when disabled, and every
	// consumer is nil-safe, so the disabled path allocates nothing.
	sampler *trace.Sampler
	traces  *trace.Store
	flight  *trace.Flight
	drift   atomic.Pointer[trace.DriftWatch] // rebuilt on hot reload
	events  *obs.Logger                      // nil disables wide events
	slo     *obs.Engine                      // nil disables the SLO engine

	// Instrument handles resolved once at New; all nil-safe.
	queueDepth  *telemetry.Gauge
	batchSize   *telemetry.Histogram
	latCheck    *telemetry.Histogram
	latBatch    *telemetry.Histogram
	reqCheck    *telemetry.Counter
	reqBatch    *telemetry.Counter
	shed        *telemetry.Counter
	deadlines   *telemetry.Counter
	reloads     *telemetry.Counter
	reloadFails *telemetry.Counter
	streakGauge *telemetry.Gauge
}

// New builds a server around the handle's detector, warms it (one
// throwaway check so the first request doesn't pay lazy-allocation
// cost), wires telemetry, and starts the batcher. The server is ready
// as soon as New returns.
func New(h *deepvalidation.Handle, cfg Config) (*Server, error) {
	if h == nil || h.Get() == nil {
		return nil, errors.New("serve: need a handle holding a detector")
	}
	cfg.defaults()
	reg := cfg.Registry
	s := &Server{
		cfg:    cfg,
		handle: h,
		queue:  make(chan *pending, cfg.QueueDepth),
		sem:    make(chan struct{}, cfg.Workers),
		stop:   make(chan struct{}),
		events: cfg.Events,

		queueDepth:  reg.Gauge(MetricQueueDepth),
		batchSize:   reg.Histogram(MetricBatchSize, BatchSizeBuckets),
		latCheck:    reg.Histogram(telemetry.Label(MetricRequestLatency, "endpoint", "check"), telemetry.DefLatencyBuckets),
		latBatch:    reg.Histogram(telemetry.Label(MetricRequestLatency, "endpoint", "batch"), telemetry.DefLatencyBuckets),
		reqCheck:    reg.Counter(telemetry.Label(MetricRequests, "endpoint", "check")),
		reqBatch:    reg.Counter(telemetry.Label(MetricRequests, "endpoint", "batch")),
		shed:        reg.Counter(MetricShed),
		deadlines:   reg.Counter(MetricDeadline),
		reloads:     reg.Counter(MetricReload),
		reloadFails: reg.Counter(MetricReloadFailed),
		streakGauge: reg.Gauge(MetricReloadFailStreak),
	}
	if cfg.TraceSample > 0 {
		s.sampler = trace.NewSampler(cfg.TraceSample)
		s.traces = trace.NewStore(cfg.TraceStore)
	}
	s.flight = trace.NewFlight(cfg.FlightSize) // nil when FlightSize < 0
	// Warm before attaching telemetry so the throwaway verdict doesn't
	// pollute the counters.
	if err := Warm(h.Get()); err != nil {
		return nil, fmt.Errorf("serve: warming detector: %w", err)
	}
	if err := WarmBatch(h.Get(), cfg.Workers); err != nil {
		return nil, fmt.Errorf("serve: warming detector batch path: %w", err)
	}
	h.Get().AttachTelemetry(reg)
	h.Get().AttachEvents(cfg.Events)
	s.refreshArtifactSHAs()
	s.rebuildDrift(h.Get())
	s.buildSLO()
	s.slo.Start()
	s.ready.Store(true)
	s.wg.Add(1)
	go s.runBatcher()
	s.events.Emit(obs.Event{
		Type: obs.TypeLifecycle, Level: obs.LevelInfo, Msg: "server ready",
		Extra: map[string]any{"workers": cfg.Workers, "max_batch": cfg.MaxBatch, "queue_depth": cfg.QueueDepth},
	})
	return s, nil
}

// buildSLO assembles the burn-rate engine over the serving objectives.
// All sources difference cumulative counters already maintained by the
// request path, so evaluation costs nothing per request.
func (s *Server) buildSLO() {
	o := s.cfg.SLO
	reg := s.cfg.Registry
	if !o.Enabled || reg == nil {
		return
	}
	// The quarantine objective reads the detector's own counters. They
	// live in the shared registry, so the handles survive hot reloads.
	checked := reg.Counter(core.MetricChecked)
	quarantined := reg.Counter(core.MetricQuarantined)
	target := o.LatencyTarget.Seconds()
	objectives := []obs.Objective{
		{
			Name:        "availability",
			Description: fmt.Sprintf("fraction of requests answered without shedding or deadline expiry (goal %g)", o.Availability),
			Goal:        o.Availability,
			Source: func() (float64, float64) {
				bad := float64(s.shed.Value() + s.deadlines.Value())
				tot := float64(s.reqCheck.Value() + s.reqBatch.Value())
				return bad, tot
			},
		},
		{
			Name:        "latency",
			Description: fmt.Sprintf("fraction of /v1/check requests under %v (goal %g)", o.LatencyTarget, o.LatencyGoal),
			Goal:        o.LatencyGoal,
			Source: func() (float64, float64) {
				return float64(s.latCheck.CountAbove(target)), float64(s.latCheck.Count())
			},
		},
		{
			Name:        "quarantine",
			Description: fmt.Sprintf("fraction of verdicts not quarantined by non-finite numerics (goal %g)", o.QuarantineGoal),
			Goal:        o.QuarantineGoal,
			Source: func() (float64, float64) {
				return float64(quarantined.Value()), float64(checked.Value())
			},
		},
	}
	s.slo = obs.NewEngine(obs.SLOConfig{
		Objectives: objectives,
		Windows:    o.Windows,
		Interval:   o.Interval,
		Burn:       o.Burn,
		Registry:   reg,
		Events:     s.events,
		TraceIDs:   s.sloTraceIDs(target),
	})
}

// sloTraceIDs builds the breach cross-linking callback: up to n recent
// flight-recorder trace IDs implicated in the named objective's bad
// events, so a breach event points straight at /debug/dv/trace/{id}.
func (s *Server) sloTraceIDs(latencyTarget float64) func(string, int) []string {
	return func(objective string, n int) []string {
		if s.flight == nil || n <= 0 {
			return nil
		}
		var outcomes []string
		switch objective {
		case "availability":
			outcomes = []string{trace.OutcomeShed, trace.OutcomeDeadline}
		case "quarantine":
			outcomes = []string{trace.OutcomeQuarantined}
		case "latency":
			outcomes = []string{trace.OutcomeOK}
		default:
			return nil
		}
		var ids []string
		for _, oc := range outcomes {
			for _, e := range s.flight.Snapshot(trace.Filter{Outcome: oc}) {
				if e.TraceID == "" {
					continue
				}
				if objective == "latency" && e.LatencySec <= latencyTarget {
					continue
				}
				ids = append(ids, e.TraceID)
				if len(ids) >= n {
					return ids
				}
			}
		}
		return ids
	}
}

// Warm runs one throwaway check on a zero image of the detector's
// input geometry, forcing lazy allocations before live traffic
// arrives. It counts one verdict into the detector's Stats (but not
// into telemetry when called before AttachTelemetry, as New does).
func Warm(det *deepvalidation.Detector) error {
	c, h, w := det.InputShape()
	if c <= 0 || h <= 0 || w <= 0 {
		return fmt.Errorf("serve: detector reports input shape (%d,%d,%d)", c, h, w)
	}
	img := deepvalidation.Image{Channels: c, Height: h, Width: w, Pixels: make([]float64, c*h*w)}
	_, err := det.Check(img)
	return err
}

// WarmBatch primes the batched scoring path: one throwaway CheckBatch
// of `width` zero images makes every concurrent scoring worker pull —
// and therefore allocate — its scratch arena from the validator's pool
// before live traffic arrives. Without it the first live batch pays
// one arena construction (forward-pass buffers, im2col scratch,
// flattened support vectors) per worker. Like Warm, the throwaway
// verdicts land in Stats but not in telemetry when called before
// AttachTelemetry.
func WarmBatch(det *deepvalidation.Detector, width int) error {
	if width < 2 {
		return nil // Warm already primed the single arena
	}
	c, h, w := det.InputShape()
	if c <= 0 || h <= 0 || w <= 0 {
		return fmt.Errorf("serve: detector reports input shape (%d,%d,%d)", c, h, w)
	}
	imgs := make([]deepvalidation.Image, width)
	for i := range imgs {
		imgs[i] = deepvalidation.Image{Channels: c, Height: h, Width: w, Pixels: make([]float64, c*h*w)}
	}
	_, err := det.CheckBatch(imgs)
	return err
}

// Detector returns the currently serving detector.
func (s *Server) Detector() *deepvalidation.Detector { return s.handle.Get() }

// Ready reports whether the server is loaded, warmed, and not
// draining — the /readyz predicate.
func (s *Server) Ready() bool { return s.ready.Load() && !s.draining.Load() }

// QueueLen returns the number of requests admitted but not yet pulled
// by the batcher.
func (s *Server) QueueLen() int { return int(s.depth.Load()) }

// Reload swaps in a freshly loaded detector from Config.Loader with
// zero downtime: the new detector is validated and warmed before the
// atomic swap, the live ε is carried across (Load does not persist
// calibration), and checks already in flight finish on the old
// detector. Returns the ε now serving.
//
// Reload is the validate-before-trust gate of the serving path: a
// loader error (corrupt or incompatible artifacts — Load checksums
// containers and cross-checks the model/validator pair), a geometry
// change that would strand queued requests, or a failed warm-up all
// reject the swap and leave the previous detector serving untouched.
// Each rejection increments dv_serve_reload_failed_total and the
// consecutive-failure streak; ReloadMaxFailures consecutive rejections
// flip /readyz to degraded until a reload succeeds.
func (s *Server) Reload() (epsilon float64, err error) {
	if s.cfg.Loader == nil {
		return 0, errors.New("serve: reload not configured (no Loader)")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	eps, err := s.tryReload()
	if err != nil {
		s.reloadFails.Inc()
		streak := s.failStreak.Add(1)
		s.streakGauge.Set(float64(streak))
		s.events.Emit(obs.Event{
			Type: obs.TypeReload, Level: obs.LevelError,
			Msg: "detector reload rejected; previous detector keeps serving",
			Err: err.Error(),
			Extra: map[string]any{
				"fail_streak": streak,
				"degraded":    int(streak) >= s.cfg.ReloadMaxFailures,
			},
		})
		return 0, err
	}
	s.failStreak.Store(0)
	s.streakGauge.Set(0)
	s.reloads.Inc()
	s.events.Emit(obs.Event{
		Type: obs.TypeReload, Level: obs.LevelInfo,
		Msg:   "detector hot-swapped",
		Extra: map[string]any{"epsilon": eps},
	})
	return eps, nil
}

// tryReload performs one validated swap attempt; callers hold
// reloadMu and account the outcome.
func (s *Server) tryReload() (float64, error) {
	if err := faultinject.Check(faultinject.PointServeReload); err != nil {
		return 0, fmt.Errorf("serve: reload: %w", err)
	}
	det, err := s.cfg.Loader()
	if err != nil {
		return 0, fmt.Errorf("serve: reload: %w", err)
	}
	old := s.handle.Get()
	oc, oh, ow := old.InputShape()
	if nc, nh, nw := det.InputShape(); nc != oc || nh != oh || nw != ow {
		return 0, fmt.Errorf("serve: reload rejected: input geometry changed from %dx%dx%d to %dx%dx%d (queued requests would be stranded; restart to change geometry)",
			oc, oh, ow, nc, nh, nw)
	}
	eps := old.Epsilon()
	det.SetEpsilon(eps)
	if err := Warm(det); err != nil {
		return 0, fmt.Errorf("serve: warming reloaded detector: %w", err)
	}
	if err := WarmBatch(det, s.cfg.Workers); err != nil {
		return 0, fmt.Errorf("serve: warming reloaded detector batch path: %w", err)
	}
	det.AttachTelemetry(s.cfg.Registry)
	det.AttachEvents(s.events)
	s.handle.Swap(det)
	s.refreshArtifactSHAs()
	// The drift reference travels with the validator, so a reloaded
	// detector gets a fresh watch (and a reloaded legacy artifact
	// degrades the watch to disabled).
	s.rebuildDrift(det)
	return eps, nil
}

// rebuildDrift installs the drift watch for det's fit-time reference,
// or nil when drift watching is off (negative DriftWindow) or the
// detector carries no reference.
func (s *Server) rebuildDrift(det *deepvalidation.Detector) {
	if s.cfg.DriftWindow < 0 {
		s.drift.Store(nil)
		return
	}
	layers, probs, ref, ok := det.DriftReference()
	if !ok {
		s.drift.Store(nil)
		return
	}
	var onAlarm func(trace.DriftStatus)
	if ev := s.events; ev != nil {
		onAlarm = func(st trace.DriftStatus) {
			e := obs.Event{
				Type: obs.TypeDriftAlarm, Level: obs.LevelWarn,
				Msg:      fmt.Sprintf("drift alarm raised: max score %.4f >= threshold %.4f", st.MaxScore, st.Threshold),
				Layers:   st.Layers,
				PerLayer: st.Scores,
				Extra:    map[string]any{"max_score": st.MaxScore, "threshold": st.Threshold, "fill": st.Fill},
			}
			if !st.Alarm {
				e.Level = obs.LevelInfo
				e.Msg = fmt.Sprintf("drift alarm cleared: max score %.4f < threshold %.4f", st.MaxScore, st.Threshold)
			}
			ev.Emit(e)
		}
	}
	s.drift.Store(trace.NewDriftWatch(trace.DriftConfig{
		Layers:    layers,
		Probs:     probs,
		Ref:       ref,
		Window:    s.cfg.DriftWindow,
		Threshold: s.cfg.DriftThreshold,
		Registry:  s.cfg.Registry,
		OnAlarm:   onAlarm,
	}))
}

// refreshArtifactSHAs re-reads Config.ArtifactInfo (when configured)
// and publishes the result for ArtifactSHAs / the /readyz JSON tail.
// Called at startup and after every successful reload, so the surfaced
// checksums always describe the artifacts the serving detector came
// from.
func (s *Server) refreshArtifactSHAs() {
	if s.cfg.ArtifactInfo == nil {
		return
	}
	m, v := s.cfg.ArtifactInfo()
	s.artSHAs.Store(&[2]string{m, v})
}

// ArtifactSHAs returns the SHA-256 payload checksums (model, validator)
// of the artifacts the serving detector was loaded from, or empty
// strings when Config.ArtifactInfo is not configured. This is the value
// a fronting gateway compares against a rollout target to verify
// convergence.
func (s *Server) ArtifactSHAs() (modelSHA256, validatorSHA256 string) {
	p := s.artSHAs.Load()
	if p == nil {
		return "", ""
	}
	return p[0], p[1]
}

// SetDrain toggles the reversible drain switch used by a fronting
// gateway during staged rollouts: while draining, /readyz answers 503
// (so the gateway takes the replica out of rotation) but the server
// keeps answering checks for traffic already routed to it. Unlike
// Drain/Close, SetDrain(false) restores readiness — unless the server
// has been closed, which is permanent.
func (s *Server) SetDrain(enable bool) error {
	if s.closed.Load() && !enable {
		return errors.New("serve: server closed; drain cannot be lifted")
	}
	prev := s.draining.Swap(enable)
	if prev != enable {
		s.events.Emit(obs.Event{
			Type: obs.TypeLifecycle, Level: obs.LevelInfo,
			Msg:   fmt.Sprintf("drain switch set to %v", enable),
			Extra: map[string]any{"draining": enable},
		})
	}
	return nil
}

// DriftStatus returns the current drift-watch summary (Enabled false
// when the watch is off or the detector has no fit-time reference).
func (s *Server) DriftStatus() trace.DriftStatus {
	return s.drift.Load().Status()
}

// SLOStatus returns the SLO engine's last evaluation (Enabled false
// when the engine is off).
func (s *Server) SLOStatus() obs.Status {
	return s.slo.Status()
}

// SLOTick forces one synchronous SLO evaluation — the deterministic
// hook tests and smoke drivers use instead of waiting out the engine's
// interval. Nil-safe when the engine is disabled.
func (s *Server) SLOTick() { s.slo.Tick() }

// Events returns the server's wide-event logger (nil when disabled).
func (s *Server) Events() *obs.Logger { return s.events }

// FailStreak returns the consecutive reload failures since the last
// successful swap (or since start).
func (s *Server) FailStreak() int { return int(s.failStreak.Load()) }

// Degraded reports whether the reload path has failed
// Config.ReloadMaxFailures or more consecutive times. A degraded
// server still answers checks — the last good detector keeps serving —
// but /readyz turns 503 so orchestrators stop routing fresh traffic to
// an instance whose artifacts cannot be refreshed.
func (s *Server) Degraded() bool {
	return int(s.failStreak.Load()) >= s.cfg.ReloadMaxFailures
}

// ReloadWithBackoff is the SIGHUP reload path: up to
// Config.ReloadRetries attempts, sleeping between failures with
// exponential backoff from Config.ReloadBackoff capped at
// Config.ReloadBackoffCap. It returns the first success or the last
// failure; ctx cancellation or server shutdown cut the retry loop
// short. Failure accounting (metrics, degradation) happens per
// attempt, inside Reload.
func (s *Server) ReloadWithBackoff(ctx context.Context) (epsilon float64, err error) {
	backoff := s.cfg.ReloadBackoff
	for attempt := 1; ; attempt++ {
		epsilon, err = s.Reload()
		if err == nil || attempt >= s.cfg.ReloadRetries {
			return epsilon, err
		}
		timer := time.NewTimer(backoff)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return 0, fmt.Errorf("serve: reload abandoned after %d attempts: %w (last failure: %v)", attempt, ctx.Err(), err)
		case <-s.stop:
			timer.Stop()
			return 0, fmt.Errorf("serve: server closed during reload retry (last failure: %v)", err)
		}
		if backoff *= 2; backoff > s.cfg.ReloadBackoffCap {
			backoff = s.cfg.ReloadBackoffCap
		}
	}
}

// Close stops the batcher after flushing any queued requests and waits
// for in-flight batches to complete. Admission stops immediately
// (handlers answer 503). When an http.Server fronts this Server,
// prefer Drain, which sequences the HTTP shutdown first.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		s.draining.Store(true)
		close(s.stop)
		s.slo.Stop()
		s.events.Emit(obs.Event{Type: obs.TypeLifecycle, Level: obs.LevelInfo, Msg: "server closing"})
	})
	s.wg.Wait()
}
