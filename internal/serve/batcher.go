package serve

import (
	"context"
	"time"

	"deepvalidation"
	"deepvalidation/internal/faultinject"
	"deepvalidation/internal/trace"
)

// result is the batcher's answer to one admitted request. d is the
// per-layer detail, present only when this request (or the server's
// flight recorder / drift watch) asked for it.
type result struct {
	v   deepvalidation.Verdict
	err error
	d   *deepvalidation.Detail
}

// reqTrace carries one traced request's stage timestamps through the
// batcher. The handler writes id/t0/enq before enqueueing; the batcher
// goroutine writes deq/scoreStart/scoreEnd; the handler reads them only
// after receiving on done (the channel receive is the happens-before
// edge), and never on the deadline path.
type reqTrace struct {
	id                   string
	t0, enq, deq         time.Time
	scoreStart, scoreEnd time.Time
}

// pending is one admitted request waiting for a verdict. done is
// buffered so a batch worker never blocks delivering to a handler that
// already gave up (deadline expiry between scoring and delivery).
type pending struct {
	img     deepvalidation.Image
	ctx     context.Context
	done    chan result
	explain bool      // caller asked for per-layer discrepancies
	tr      *reqTrace // non-nil when this request is traced
}

// tryEnqueue admits the requests all-or-nothing. The atomic depth
// counter is the real bound: it is incremented before the channel send
// and decremented at dequeue, so the channel (whose capacity equals
// QueueDepth) can never block an admitted sender, and admission beyond
// QueueDepth is refused here — the caller sheds with 429.
func (s *Server) tryEnqueue(ps ...*pending) bool {
	n := int64(len(ps))
	if s.depth.Add(n) > int64(s.cfg.QueueDepth) {
		s.depth.Add(-n)
		return false
	}
	s.queueDepth.Set(float64(s.depth.Load()))
	for _, p := range ps {
		s.queue <- p
	}
	return true
}

// dequeued accounts one request leaving the queue and stamps its
// dequeue time when traced.
func (s *Server) dequeued(p *pending) {
	s.queueDepth.Set(float64(s.depth.Add(-1)))
	s.pulls.Add(1)
	if p.tr != nil {
		p.tr.deq = time.Now()
	}
}

// runBatcher is the collection loop: pull the first waiting request,
// gather batch-mates up to MaxBatch or for BatchWindow, and hand the
// batch to the worker pool. On stop it flushes whatever is still
// queued (the graceful-drain tail) and exits.
func (s *Server) runBatcher() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			s.flush()
			return
		case first := <-s.queue:
			s.dequeued(first)
			s.dispatch(s.collect(first))
		}
	}
}

// collect gathers one micro-batch starting from first. With a positive
// window it waits up to BatchWindow for the batch to fill; with the
// window disabled it only sweeps requests already queued.
func (s *Server) collect(first *pending) []*pending {
	batch := []*pending{first}
	if s.cfg.MaxBatch <= 1 {
		return batch
	}
	if s.cfg.BatchWindow <= 0 {
		return s.sweep(batch)
	}
	timer := time.NewTimer(s.cfg.BatchWindow)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case p := <-s.queue:
			s.dequeued(p)
			batch = append(batch, p)
		case <-timer.C:
			return batch
		case <-s.stop:
			// Draining: stop waiting for the window, score what we have.
			return batch
		}
	}
	return batch
}

// sweep non-blockingly tops the batch up from the queue.
func (s *Server) sweep(batch []*pending) []*pending {
	for len(batch) < s.cfg.MaxBatch {
		select {
		case p := <-s.queue:
			s.dequeued(p)
			batch = append(batch, p)
		default:
			return batch
		}
	}
	return batch
}

// dispatch hands one batch to the bounded worker pool. It blocks while
// every worker is busy — that is the backpressure path: the queue
// fills behind the blocked batcher and admission starts shedding.
func (s *Server) dispatch(batch []*pending) {
	s.batchSize.Observe(float64(len(batch)))
	s.sem <- struct{}{}
	s.wg.Add(1)
	go func() {
		defer func() { <-s.sem; s.wg.Done() }()
		s.runBatch(batch)
	}()
}

// flush drains the queue after stop: every straggler still gets a
// verdict, batched as large as the leftover traffic allows.
func (s *Server) flush() {
	for {
		select {
		case p := <-s.queue:
			s.dequeued(p)
			s.dispatch(s.sweep([]*pending{p}))
		default:
			return
		}
	}
}

// runBatch scores one micro-batch. Requests whose context already
// expired are skipped (their handlers have answered 504). Verdicts are
// produced by Detector.CheckBatch, which is bit-identical to
// sequential Check calls; if the batch as a whole is rejected (e.g. an
// input geometry change racing a hot reload), members are re-scored
// singly so one poisoned request cannot fail its batch-mates.
//
// Per-layer detail is computed only when something will consume it —
// the flight recorder, the drift watch, an explain=1 request, or a
// traced request (which additionally gets stage timings). With all of
// those off, the path is exactly the pre-observability CheckBatch.
func (s *Server) runBatch(batch []*pending) {
	live := make([]*pending, 0, len(batch))
	imgs := make([]deepvalidation.Image, 0, len(batch))
	for _, p := range batch {
		if p.ctx.Err() != nil {
			continue
		}
		live = append(live, p)
		imgs = append(imgs, p.img)
	}
	if len(live) == 0 {
		return
	}
	drift := s.drift.Load()
	needDetail := s.flight != nil || drift != nil
	for _, p := range live {
		if p.explain || p.tr != nil {
			needDetail = true
			break
		}
	}
	var details []*deepvalidation.Detail
	if needDetail {
		details = make([]*deepvalidation.Detail, len(live))
		for i, p := range live {
			details[i] = &deepvalidation.Detail{Timed: p.tr != nil}
		}
	}
	det := s.handle.Get()
	now := time.Now()
	for _, p := range live {
		if p.tr != nil {
			p.tr.scoreStart = now
		}
	}
	vs, err := det.CheckBatchDetailed(imgs, details)
	if ferr := faultinject.Check(faultinject.PointServeBatch); ferr != nil {
		err = ferr // chaos seam: force the per-request fallback path
	}
	end := time.Now()
	for _, p := range live {
		if p.tr != nil {
			p.tr.scoreEnd = end
		}
	}
	if err == nil {
		for i, p := range live {
			var d *deepvalidation.Detail
			if details != nil {
				d = details[i]
				s.observeDrift(drift, vs[i], d)
			}
			p.done <- result{v: vs[i], d: d}
		}
		return
	}
	for _, p := range live {
		var d *deepvalidation.Detail
		if needDetail {
			d = &deepvalidation.Detail{Timed: p.tr != nil}
		}
		if p.tr != nil {
			p.tr.scoreStart = time.Now()
		}
		v, cerr := det.CheckDetailed(p.img, d)
		if p.tr != nil {
			p.tr.scoreEnd = time.Now()
		}
		if cerr == nil && d != nil {
			s.observeDrift(drift, v, d)
		}
		p.done <- result{v: v, err: cerr, d: d}
	}
}

// observeDrift feeds one verdict's per-layer discrepancies to the drift
// watch. Only accepted (Valid) verdicts enter the window: the fit-time
// reference is built from correctly classified training samples, so the
// comparable serve-time population is the traffic the detector accepts.
// Flagged corner cases score against the wrong-class SVM with huge d_i
// and would swamp the tail quantiles (sustained flagging is already
// watched by the alarm-rate stats); quarantined verdicts carry no
// distributional information at all.
func (s *Server) observeDrift(drift *trace.DriftWatch, v deepvalidation.Verdict, d *deepvalidation.Detail) {
	if drift == nil || !v.Valid {
		return
	}
	drift.Observe(d.PerLayer)
}
